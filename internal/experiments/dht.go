package experiments

import (
	"math"

	"repro/internal/dht"
	"repro/internal/stats"
	"repro/internal/word"
)

// DHTRow is one population size of experiment E15: Koorde lookups on
// the de Bruijn identifier ring.
type DHTRow struct {
	Nodes          int
	K              int
	MeanHops       float64
	MeanInjections float64
	MaxHops        int
	Log2N          float64
}

// DHT measures optimized Koorde lookup costs for growing node
// populations on the 2^k identifier ring.
func DHT(k int, populations []int, trials int, seed int64) ([]DHTRow, error) {
	rng := newRand(seed)
	var rows []DHTRow
	for _, n := range populations {
		ids := make([]word.Word, n)
		for i := range ids {
			ids[i] = word.Random(2, k, rng)
		}
		ring, err := dht.NewRing(2, k, ids)
		if err != nil {
			return nil, err
		}
		var hops, injections stats.Accumulator
		maxHops := 0
		for trial := 0; trial < trials; trial++ {
			key := word.Random(2, k, rng)
			start := ring.Nodes()[rng.Intn(ring.NumNodes())]
			res, err := ring.LookupOptimized(start, key)
			if err != nil {
				return nil, err
			}
			hops.Add(float64(res.Hops))
			injections.Add(float64(res.DeBruijnHops))
			if res.Hops > maxHops {
				maxHops = res.Hops
			}
		}
		rows = append(rows, DHTRow{
			Nodes:          ring.NumNodes(),
			K:              k,
			MeanHops:       hops.Mean(),
			MeanInjections: injections.Mean(),
			MaxHops:        maxHops,
			Log2N:          math.Log2(float64(ring.NumNodes())),
		})
	}
	return rows, nil
}

// DHTTable renders E15.
func DHTTable(k int, populations []int, trials int, seed int64) (*stats.Table, error) {
	rows, err := DHT(k, populations, trials, seed)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("nodes", "k", "meanHops", "meanInjections", "maxHops", "log2N")
	for _, r := range rows {
		t.AddRow(r.Nodes, r.K, r.MeanHops, r.MeanInjections, r.MaxHops, r.Log2N)
	}
	return t, nil
}
