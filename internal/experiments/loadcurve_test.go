package experiments

import (
	"strings"
	"testing"
)

func TestLoadCurveShape(t *testing.T) {
	rows, err := LoadCurve(2, 6, []float64{0.02, 0.10, 0.25}, 80, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.MeanSlowdown < 1 {
			t.Errorf("rate %v: slowdown %v below 1", r.Rate, r.MeanSlowdown)
		}
		if i > 0 && !rows[i].Saturated && !rows[i-1].Saturated {
			if rows[i].MeanLatency < rows[i-1].MeanLatency {
				t.Errorf("latency fell with load: %v → %v", rows[i-1].MeanLatency, rows[i].MeanLatency)
			}
		}
	}
	if rows[0].Saturated {
		t.Error("lowest rate saturated")
	}
}

func TestStretchSweepShape(t *testing.T) {
	rows, err := StretchSweep(2, 6, []int{0, 1, 2, 4}, 300, 6)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].MeanStretch != 1 || rows[0].MeanExtraHops != 0 {
		t.Errorf("fault-free stretch = %+v", rows[0])
	}
	for _, r := range rows {
		if r.MeanStretch < 1 {
			t.Errorf("failures=%d: stretch %v below 1", r.Failures, r.MeanStretch)
		}
		if r.MaxStretch < r.MeanStretch {
			t.Errorf("failures=%d: max %v below mean %v", r.Failures, r.MaxStretch, r.MeanStretch)
		}
	}
	last := rows[len(rows)-1]
	if last.MeanStretch < rows[0].MeanStretch {
		t.Error("stretch did not grow with failures")
	}
}

func TestLoadAndStretchTablesRender(t *testing.T) {
	lt, err := LoadCurveTable(2, 5, []float64{0.05}, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(lt.String(), "saturated") {
		t.Error("load table missing header")
	}
	st, err := StretchTable(2, 5, []int{1}, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(st.String(), "meanStretch") {
		t.Error("stretch table missing header")
	}
}
