package experiments

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/network"
	"repro/internal/stats"
	"repro/internal/word"
)

// Extended experiments beyond the paper's own artefacts: they quantify
// the §1 claims the paper makes by citation (near-optimal diameter via
// Imase–Itoh; versatility) and system-level properties of the
// simulator (broadcast cost, route diversity).

// OptimalityRow compares DG(d,k) against the Moore bound (E10).
type OptimalityRow struct {
	D, K       int
	N          int64
	Degree     int
	Diameter   int
	MooreDiam  int     // smallest diameter any degree-2d graph of N vertices could have
	Efficiency float64 // MooreDiam / Diameter (1 = optimal)
}

// Optimality quantifies the near-minimal diameter claim of §1.
func Optimality(dks [][2]int) ([]OptimalityRow, error) {
	var rows []OptimalityRow
	for _, dk := range dks {
		d, k := dk[0], dk[1]
		n, err := word.Count(d, k)
		if err != nil {
			return nil, err
		}
		moore := graph.MinDiameterFor(int64(n), 2*d)
		rows = append(rows, OptimalityRow{
			D: d, K: k, N: int64(n), Degree: 2 * d,
			Diameter:   k,
			MooreDiam:  moore,
			Efficiency: float64(moore) / float64(k),
		})
	}
	return rows, nil
}

// OptimalityTable renders E10.
func OptimalityTable(dks [][2]int) (*stats.Table, error) {
	rows, err := Optimality(dks)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("d", "k", "N", "degree", "diameter", "moore-min", "efficiency")
	for _, r := range rows {
		t.AddRow(r.D, r.K, r.N, r.Degree, r.Diameter, r.MooreDiam, r.Efficiency)
	}
	return t, nil
}

// BroadcastRow compares dissemination strategies on DN(d,k) (E11).
type BroadcastRow struct {
	D, K          int
	FloodMessages int
	FloodRounds   int
	TreeMessages  int
	TreeRounds    int
}

// Broadcast measures flooding vs spanning-tree broadcast from the
// all-zero site.
func Broadcast(dks [][2]int) ([]BroadcastRow, error) {
	var rows []BroadcastRow
	for _, dk := range dks {
		d, k := dk[0], dk[1]
		src, err := word.Zeros(d, k)
		if err != nil {
			return nil, err
		}
		n, err := network.New(network.Config{D: d, K: k})
		if err != nil {
			return nil, err
		}
		flood, err := n.FloodBroadcast(src)
		if err != nil {
			return nil, err
		}
		tree, err := n.TreeBroadcast(src)
		if err != nil {
			return nil, err
		}
		if flood.Reached != tree.Reached {
			return nil, fmt.Errorf("experiments: flood reached %d, tree %d", flood.Reached, tree.Reached)
		}
		rows = append(rows, BroadcastRow{
			D: d, K: k,
			FloodMessages: flood.Messages, FloodRounds: flood.Rounds,
			TreeMessages: tree.Messages, TreeRounds: tree.Rounds,
		})
	}
	return rows, nil
}

// BroadcastTable renders E11.
func BroadcastTable(dks [][2]int) (*stats.Table, error) {
	rows, err := Broadcast(dks)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("d", "k", "flood msgs", "flood rounds", "tree msgs", "tree rounds")
	for _, r := range rows {
		t.AddRow(r.D, r.K, r.FloodMessages, r.FloodRounds, r.TreeMessages, r.TreeRounds)
	}
	return t, nil
}

// DiversityRow summarizes shortest-path multiplicity in DG(d,k) (E12):
// the structural room the wildcard policies exploit.
type DiversityRow struct {
	D, K          int
	MeanPaths     float64 // mean number of shortest paths per ordered pair
	MaxPaths      int64
	MultiFraction float64 // fraction of pairs with ≥ 2 shortest paths
}

// Diversity measures shortest-path counts over all ordered pairs of
// the undirected DG(d,k).
func Diversity(dks [][2]int) ([]DiversityRow, error) {
	var rows []DiversityRow
	for _, dk := range dks {
		d, k := dk[0], dk[1]
		g, err := graph.DeBruijn(graph.Undirected, d, k)
		if err != nil {
			return nil, err
		}
		var acc stats.Accumulator
		var maxPaths int64
		multi := 0
		pairs := 0
		for src := 0; src < g.NumVertices(); src++ {
			counts, _, err := g.CountShortestPathsFrom(src)
			if err != nil {
				return nil, err
			}
			for dst, c := range counts {
				if dst == src {
					continue
				}
				pairs++
				acc.Add(float64(c))
				if c > maxPaths {
					maxPaths = c
				}
				if c >= 2 {
					multi++
				}
			}
		}
		rows = append(rows, DiversityRow{
			D: d, K: k,
			MeanPaths:     acc.Mean(),
			MaxPaths:      maxPaths,
			MultiFraction: float64(multi) / float64(pairs),
		})
	}
	return rows, nil
}

// DiversityTable renders E12.
func DiversityTable(dks [][2]int) (*stats.Table, error) {
	rows, err := Diversity(dks)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("d", "k", "mean paths", "max paths", "multi-path fraction")
	for _, r := range rows {
		t.AddRow(r.D, r.K, r.MeanPaths, r.MaxPaths, r.MultiFraction)
	}
	return t, nil
}

// DestinationRow verifies and times destination-based self-routing
// against source routing (E13): hop counts must coincide.
type DestinationRow struct {
	D, K       int
	Pairs      int
	SourceHops int
	DestHops   int
	Agree      bool
}

// DestinationRouting compares hop totals of the two forwarding modes
// over every ordered pair.
func DestinationRouting(dks [][2]int, unidirectional bool) ([]DestinationRow, error) {
	var rows []DestinationRow
	for _, dk := range dks {
		d, k := dk[0], dk[1]
		src, err := network.New(network.Config{D: d, K: k, Unidirectional: unidirectional})
		if err != nil {
			return nil, err
		}
		dst, err := network.New(network.Config{D: d, K: k, Unidirectional: unidirectional})
		if err != nil {
			return nil, err
		}
		var words []word.Word
		if _, err := word.ForEach(d, k, func(w word.Word) bool {
			words = append(words, w)
			return true
		}); err != nil {
			return nil, err
		}
		row := DestinationRow{D: d, K: k}
		for _, x := range words {
			for _, y := range words {
				a, err := src.Send(x, y, "")
				if err != nil {
					return nil, err
				}
				b, err := dst.SendDestinationRouted(x, y, "")
				if err != nil {
					return nil, err
				}
				if !a.Delivered || !b.Delivered {
					return nil, fmt.Errorf("experiments: drop at %v→%v", x, y)
				}
				row.Pairs++
				row.SourceHops += a.Hops
				row.DestHops += b.Hops
			}
		}
		row.Agree = row.SourceHops == row.DestHops
		rows = append(rows, row)
	}
	return rows, nil
}
