// Package experiments regenerates every quantitative artefact of the
// paper (DESIGN.md §4): each function produces one table of the
// experiment index E1–E18, shared by cmd/dbstats, the test suite
// (which asserts the paper's qualitative shapes hold) and
// EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/network"
	"repro/internal/stats"
	"repro/internal/word"
)

// Eq5Row is one measurement of experiment E3.
type Eq5Row struct {
	D, K    int
	Formula float64 // equation (5)
	Exact   float64 // enumerated mean (diagonal included)
	Gap     float64 // Formula - Exact (≥ 0; the nested-overlap bias)
}

// Eq5 measures the directed average distance against equation (5) for
// every d in ds and k = 1..maxK with at most 4096 vertices.
func Eq5(ds []int, maxK int) ([]Eq5Row, error) {
	var rows []Eq5Row
	for _, d := range ds {
		for k := 1; k <= maxK; k++ {
			n, err := word.Count(d, k)
			if err != nil || n > 4096 {
				break
			}
			res, err := core.DirectedMeanExact(d, k)
			if err != nil {
				return nil, err
			}
			f := core.DirectedMeanFormula(d, k)
			rows = append(rows, Eq5Row{D: d, K: k, Formula: f, Exact: res.Mean, Gap: f - res.Mean})
		}
	}
	return rows, nil
}

// Eq5Table renders E3.
func Eq5Table(ds []int, maxK int) (*stats.Table, error) {
	rows, err := Eq5(ds, maxK)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("d", "k", "eq(5)", "exact", "gap")
	for _, r := range rows {
		t.AddRow(r.D, r.K, r.Formula, r.Exact, r.Gap)
	}
	return t, nil
}

// Fig2Row is one point of the Figure 2 reproduction (E4).
type Fig2Row struct {
	D, K   int
	Mean   float64
	Exact  bool
	StdErr float64 // 0 when exact
}

// Figure2 computes the undirected average distance δ̄(d,k) for every d
// in ds and k = 1..maxK: exactly up to 4096 vertices, sampled above.
func Figure2(ds []int, maxK, samples int, seed int64) ([]Fig2Row, error) {
	var rows []Fig2Row
	for _, d := range ds {
		for k := 1; k <= maxK; k++ {
			if _, err := word.Count(d, k); err != nil {
				break
			}
			res, err := core.UndirectedMeanExact(d, k)
			if err != nil {
				res, err = core.UndirectedMeanSampled(d, k, samples, seed)
				if err != nil {
					return nil, err
				}
			}
			rows = append(rows, Fig2Row{D: d, K: k, Mean: res.Mean, Exact: res.Exact, StdErr: res.StdErr})
		}
	}
	return rows, nil
}

// Figure2Table renders E4.
func Figure2Table(ds []int, maxK, samples int, seed int64) (*stats.Table, error) {
	rows, err := Figure2(ds, maxK, samples, seed)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("d", "k", "mean", "mode", "stderr")
	for _, r := range rows {
		mode := "exact"
		if !r.Exact {
			mode = "sampled"
		}
		t.AddRow(r.D, r.K, r.Mean, mode, r.StdErr)
	}
	return t, nil
}

// CensusRow is one graph of experiment E1.
type CensusRow struct {
	Kind      graph.Kind
	D, K      int
	Vertices  int
	Edges     int
	Diameter  int
	Census    map[int]int
	Predicted map[int]int
	Match     bool
}

// Census builds DG(d,k) for each configuration and compares the
// measured degree census and diameter with the predictions.
func Census(kinds []graph.Kind, dks [][2]int) ([]CensusRow, error) {
	var rows []CensusRow
	for _, kind := range kinds {
		for _, dk := range dks {
			d, k := dk[0], dk[1]
			g, err := graph.DeBruijn(kind, d, k)
			if err != nil {
				return nil, err
			}
			dia, err := g.Diameter()
			if err != nil {
				return nil, err
			}
			row := CensusRow{Kind: kind, D: d, K: k, Vertices: g.NumVertices(), Edges: g.NumEdges(), Diameter: dia, Census: g.DegreeCensus()}
			if k >= 2 {
				row.Predicted, err = graph.DeBruijnDegreeCensusWant(kind, d, k)
				if err != nil {
					return nil, err
				}
				row.Match = censusEqual(row.Census, row.Predicted)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// CensusTable renders E1.
func CensusTable(kinds []graph.Kind, dks [][2]int) (*stats.Table, error) {
	rows, err := Census(kinds, dks)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("kind", "d", "k", "N", "edges", "diam", "census", "predicted")
	for _, r := range rows {
		pred := "-"
		if r.Predicted != nil {
			pred = censusString(r.Predicted)
			if !r.Match {
				pred += " MISMATCH"
			}
		}
		t.AddRow(r.Kind.String(), r.D, r.K, r.Vertices, r.Edges, r.Diameter, censusString(r.Census), pred)
	}
	return t, nil
}

func censusEqual(a, b map[int]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func censusString(c map[int]int) string {
	degs := make([]int, 0, len(c))
	for d := range c {
		degs = append(degs, d)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degs)))
	s := ""
	for i, d := range degs {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%d×deg%d", c[d], d)
	}
	return s
}

// CrossoverRow is one point of experiment E6: wall-clock time of the
// O(k²) Algorithm 2 versus the O(k) Algorithm 4 at diameter k.
type CrossoverRow struct {
	K          int
	Alg2PerOp  time.Duration
	Alg4PerOp  time.Duration
	Alg2Faster bool
}

// Crossover times both bi-directional routing algorithms on `trials`
// random pairs per k and reports which wins — quantifying the Section
// 4 remark that the conceptually simpler quadratic algorithm is
// competitive at small diameters.
func Crossover(ks []int, trials int, seed int64) ([]CrossoverRow, error) {
	if trials < 1 {
		return nil, fmt.Errorf("experiments: trials must be positive, got %d", trials)
	}
	var rows []CrossoverRow
	for _, k := range ks {
		pairs, err := randomPairs(2, k, trials, seed)
		if err != nil {
			return nil, err
		}
		t2 := timeRoute(core.RouteUndirected, pairs)
		t4 := timeRoute(core.RouteUndirectedLinear, pairs)
		rows = append(rows, CrossoverRow{
			K:          k,
			Alg2PerOp:  t2 / time.Duration(len(pairs)),
			Alg4PerOp:  t4 / time.Duration(len(pairs)),
			Alg2Faster: t2 < t4,
		})
	}
	return rows, nil
}

// CrossoverTable renders E6.
func CrossoverTable(ks []int, trials int, seed int64) (*stats.Table, error) {
	rows, err := Crossover(ks, trials, seed)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("k", "alg2/op", "alg4/op", "winner")
	for _, r := range rows {
		w := "alg4"
		if r.Alg2Faster {
			w = "alg2"
		}
		t.AddRow(r.K, r.Alg2PerOp.String(), r.Alg4PerOp.String(), w)
	}
	return t, nil
}

func timeRoute(route func(x, y word.Word) (core.Path, error), pairs [][2]word.Word) time.Duration {
	start := time.Now()
	for _, p := range pairs {
		if _, err := route(p[0], p[1]); err != nil {
			return time.Duration(1<<62 - 1) // poisoned; surfaced as absurd timing
		}
	}
	return time.Since(start)
}

func randomPairs(d, k, n int, seed int64) ([][2]word.Word, error) {
	// No d^k bound here: k is only a word length (crossover timing
	// sweeps k into the thousands); validate the alphabet and length
	// by constructing a probe word.
	if _, err := word.Zeros(d, k); err != nil {
		return nil, err
	}
	rng := newRand(seed)
	out := make([][2]word.Word, n)
	for i := range out {
		out[i] = [2]word.Word{word.Random(d, k, rng), word.Random(d, k, rng)}
	}
	return out, nil
}

// PolicyRow is one policy of experiment E7's balance comparison.
type PolicyRow struct {
	Policy      string
	Delivered   int
	MeanHops    float64
	MaxLinkLoad int
	LoadGini    float64
}

// PolicyComparison runs the same uniform workload under each wildcard
// policy on a bi-directional DN(d,k).
func PolicyComparison(d, k, messages int, seed int64) ([]PolicyRow, error) {
	var rows []PolicyRow
	for _, p := range []network.Policy{network.PolicyFirst{}, network.PolicyRandom{}, network.PolicyLeastLoaded{}} {
		n, err := network.New(network.Config{D: d, K: k, Policy: p, Seed: seed})
		if err != nil {
			return nil, err
		}
		sum, err := network.RunWorkload(n, network.Uniform{D: d, K: k}, messages)
		if err != nil {
			return nil, err
		}
		rows = append(rows, PolicyRow{
			Policy:      p.Name(),
			Delivered:   sum.Delivered,
			MeanHops:    sum.MeanHops,
			MaxLinkLoad: sum.Net.MaxLinkLoad,
			LoadGini:    sum.Net.LoadGini,
		})
	}
	return rows, nil
}

// PolicyTable renders E7's policy comparison.
func PolicyTable(d, k, messages int, seed int64) (*stats.Table, error) {
	rows, err := PolicyComparison(d, k, messages, seed)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("policy", "delivered", "meanHops", "maxLinkLoad", "gini")
	for _, r := range rows {
		t.AddRow(r.Policy, r.Delivered, r.MeanHops, r.MaxLinkLoad, r.LoadGini)
	}
	return t, nil
}

// HopsMatchDistance verifies, over every ordered pair of DN(d,k), that
// simulated delivery uses exactly the optimal hop count (E7's
// correctness half). Returns the number of pairs checked.
func HopsMatchDistance(d, k int, unidirectional bool) (int, error) {
	n, err := network.New(network.Config{D: d, K: k, Unidirectional: unidirectional})
	if err != nil {
		return 0, err
	}
	var words []word.Word
	if _, err := word.ForEach(d, k, func(w word.Word) bool {
		words = append(words, w)
		return true
	}); err != nil {
		return 0, err
	}
	checked := 0
	for _, x := range words {
		for _, y := range words {
			del, err := n.Send(x, y, "")
			if err != nil {
				return 0, err
			}
			if !del.Delivered {
				return 0, fmt.Errorf("experiments: %v→%v dropped: %s", x, y, del.DropReason)
			}
			var want int
			if unidirectional {
				want, err = core.DirectedDistance(x, y)
			} else {
				want, err = core.UndirectedDistance(x, y)
			}
			if err != nil {
				return 0, err
			}
			if del.Hops != want {
				return 0, fmt.Errorf("experiments: %v→%v took %d hops, want %d", x, y, del.Hops, want)
			}
			checked++
		}
	}
	return checked, nil
}

// FaultRow is one configuration of experiment E8.
type FaultRow struct {
	D, K         int
	MaxTolerated int // largest f with every f-subset leaving the graph connected
	Connectivity int // exact vertex connectivity (sampled pairs for large graphs)
}

// FaultSweep finds, for undirected DG(d,k), the largest exhaustively
// verified tolerated failure count and the measured connectivity.
func FaultSweep(dks [][2]int) ([]FaultRow, error) {
	var rows []FaultRow
	for _, dk := range dks {
		d, k := dk[0], dk[1]
		g, err := graph.DeBruijn(graph.Undirected, d, k)
		if err != nil {
			return nil, err
		}
		maxTol := -1
		for f := 0; f < g.NumVertices(); f++ {
			rep, err := fault.ExhaustiveTolerance(g, f)
			if err != nil {
				break // enumeration budget reached; stop the sweep
			}
			if !rep.Tolerated {
				break
			}
			maxTol = f
		}
		conn, err := fault.MinVertexConnectivity(g, 0, 0)
		if err != nil {
			return nil, err
		}
		rows = append(rows, FaultRow{D: d, K: k, MaxTolerated: maxTol, Connectivity: conn})
	}
	return rows, nil
}

// FaultTable renders E8.
func FaultTable(dks [][2]int) (*stats.Table, error) {
	rows, err := FaultSweep(dks)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("d", "k", "paper(d-1)", "tolerated", "connectivity(2d-2)")
	for _, r := range rows {
		t.AddRow(r.D, r.K, r.D-1, r.MaxTolerated, r.Connectivity)
	}
	return t, nil
}

// DistributionTable renders the exact distance distributions of
// DG(d,k) (supporting E2/E4): one row per distance value.
func DistributionTable(d, k int) (*stats.Table, error) {
	dir, err := core.DirectedDistanceDistribution(d, k)
	if err != nil {
		return nil, err
	}
	und, err := core.UndirectedDistanceDistribution(d, k)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("distance", "directed pairs", "undirected pairs")
	for i := 0; i <= k; i++ {
		t.AddRow(i, dir[i], und[i])
	}
	return t, nil
}
