package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/word"
)

// ClusterRow is one node of experiment E23: a seeded closed-loop
// workload replayed against a multi-node cluster, every request sent
// to a node chosen round-robin, so misses ride the de Bruijn fabric.
// HopsMean is the mean inter-node hop count of the forwarded queries
// this node answered; P99MS is the node's admission-to-answer p99.
type ClusterRow struct {
	Node        string
	Sent        int64
	Answered    int64
	Forwarded   int64
	ForwardedIn int64
	Shed        int64
	HopsMean    float64
	P99MS       float64
}

// ClusterRunConfig shapes the E23 replay. Zero values default to a
// CI-sized run: 4 nodes at R=2 on a DG(2,10) identifier space, four
// worker shards behind a bounded queue per node (a forward parks a
// worker for a round trip, so single-shard nodes collapse), driven
// closed-loop hard enough that the admission path is exercised, not
// just the kernels.
type ClusterRunConfig struct {
	Nodes             int   // default 4
	Replication       int   // default 2
	IDLen             int   // identifier length, default 10
	ClientsPerNode    int   // default 4
	RequestsPerClient int   // default 150
	QueueDepth        int   // per-node admission queue, default 64
	DeadlineMS        int64 // per-request budget, default 250
	Seed              int64
}

// ClusterSummary aggregates the run: the client-observed p99 across
// every request and the fabric-wide mean forward hop count.
type ClusterSummary struct {
	ClientP99MS float64
	MeanHops    float64
}

// ClusterRun boots an in-memory cluster and replays the workload.
// The returned rows are per node, in join order; the aggregate
// conservation identity over them is checked here (a broken identity
// is an error, not a data point).
func ClusterRun(cfg ClusterRunConfig) ([]ClusterRow, ClusterSummary, error) {
	if cfg.Nodes == 0 {
		cfg.Nodes = 4
	}
	if cfg.Replication == 0 {
		cfg.Replication = 2
	}
	if cfg.IDLen == 0 {
		cfg.IDLen = 10
	}
	if cfg.ClientsPerNode == 0 {
		cfg.ClientsPerNode = 4
	}
	if cfg.RequestsPerClient == 0 {
		cfg.RequestsPerClient = 150
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 64
	}
	if cfg.DeadlineMS == 0 {
		cfg.DeadlineMS = 250
	}
	h, err := cluster.NewHarness(cluster.HarnessConfig{
		Nodes:       cfg.Nodes,
		Seed:        cfg.Seed,
		IDLen:       cfg.IDLen,
		Replication: cfg.Replication,
		Serve: serve.Config{
			Shards:          4,
			QueueDepth:      cfg.QueueDepth,
			CacheSize:       512,
			DefaultDeadline: time.Duration(cfg.DeadlineMS) * time.Millisecond,
		},
	})
	if err != nil {
		return nil, ClusterSummary{}, err
	}
	defer h.Close()

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		lats    []time.Duration
		workErr error
	)
	for i := 0; i < cfg.Nodes; i++ {
		for j := 0; j < cfg.ClientsPerNode; j++ {
			c, err := h.Client(i)
			if err != nil {
				return nil, ClusterSummary{}, err
			}
			wg.Add(1)
			go func(i, j int, c *serve.Client) {
				defer wg.Done()
				defer c.Close()
				rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*131 + int64(j)))
				local := make([]time.Duration, 0, cfg.RequestsPerClient)
				for r := 0; r < cfg.RequestsPerClient; r++ {
					src := word.Random(2, 10, rng)
					dst := word.Random(2, 10, rng)
					var req serve.Request
					switch r % 3 {
					case 0:
						req = serve.DistanceRequest(src, dst, serve.Undirected)
					case 1:
						req = serve.RouteRequest(src, dst, serve.Undirected)
					default:
						req = serve.NextHopRequest(src, dst, serve.Undirected)
					}
					start := time.Now()
					if _, err := c.Do(context.Background(), req); err != nil {
						mu.Lock()
						workErr = err
						mu.Unlock()
						return
					}
					local = append(local, time.Since(start))
				}
				mu.Lock()
				lats = append(lats, local...)
				mu.Unlock()
			}(i, j, c)
		}
	}
	wg.Wait()
	if workErr != nil {
		return nil, ClusterSummary{}, workErr
	}

	var rows []ClusterRow
	agg := h.Counts()
	if !agg.Conserved() {
		return nil, ClusterSummary{}, fmt.Errorf("experiments: cluster conservation broken: %+v", agg)
	}
	var totalHopSum, totalHopCount int64
	for i := 0; i < cfg.Nodes; i++ {
		n := h.Node(i)
		counts := n.Counts()
		hopSum, hopCount := n.ForwardHopStats()
		totalHopSum += hopSum
		totalHopCount += hopCount
		var hopsMean float64
		if hopCount > 0 {
			hopsMean = float64(hopSum) / float64(hopCount)
		}
		p99 := h.Registry(i).Snapshot().Histogram("dn_serve_latency_ns").Quantile(0.99)
		rows = append(rows, ClusterRow{
			Node:        n.ID().String(),
			Sent:        counts.Sent,
			Answered:    counts.Answered,
			Forwarded:   counts.Forwarded,
			ForwardedIn: counts.ForwardedIn,
			Shed:        counts.Shed,
			HopsMean:    hopsMean,
			P99MS:       p99 / float64(time.Millisecond),
		})
	}
	sum := ClusterSummary{
		ClientP99MS: float64(percentileDur(lats, 0.99)) / float64(time.Millisecond),
	}
	if totalHopCount > 0 {
		sum.MeanHops = float64(totalHopSum) / float64(totalHopCount)
	}
	return rows, sum, nil
}

// percentileDur is the nearest-rank percentile of unsorted durations.
func percentileDur(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	for i := 1; i < len(sorted); i++ { // insertion sort: n is small
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// ClusterTable renders E23: one row per node plus a Σ row whose
// hops_mean is the fabric-wide mean and whose p99_ms column is the
// client-observed p99 across every request.
func ClusterTable(cfg ClusterRunConfig) (*stats.Table, error) {
	rows, sum, err := ClusterRun(cfg)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("node", "sent", "answered", "forwarded", "fwd_in", "shed", "hops_mean", "p99_ms")
	var total ClusterRow
	for _, r := range rows {
		t.AddRow(r.Node, r.Sent, r.Answered, r.Forwarded, r.ForwardedIn, r.Shed, r.HopsMean, r.P99MS)
		total.Sent += r.Sent
		total.Answered += r.Answered
		total.Forwarded += r.Forwarded
		total.ForwardedIn += r.ForwardedIn
		total.Shed += r.Shed
	}
	t.AddRow("Σ", total.Sent, total.Answered, total.Forwarded, total.ForwardedIn, total.Shed, sum.MeanHops, sum.ClientP99MS)
	return t, nil
}
