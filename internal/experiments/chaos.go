package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/word"
)

// ChaosRow is one cell of experiment E24: a workload shape driven
// through a fault schedule against a single-node server, plus one
// final churn-storm row measured against a whole cluster. The Sent /
// Answered / Degraded / Shed columns are the server-side outcome
// ledger; Errs counts client-observed transport failures (timeouts,
// severed connections); Conserved reports whether the ledger balanced
// exactly after drain — the experiment's claim is that it always does,
// no matter what the link did.
type ChaosRow struct {
	Shape     string
	Schedule  string
	Sent      int64
	Answered  int64
	Degraded  int64
	Shed      int64
	Errs      int64
	P99MS     float64
	Conserved bool
}

// ChaosRunConfig shapes the E24 sweep. Zero values default to a
// CI-sized run.
type ChaosRunConfig struct {
	Requests int // per cell, default 240
	Seed     int64
}

// chaosCellSchedule is one fault schedule of the sweep; the zero
// ChaosConfig row ("clean") is the control.
var chaosCellSchedules = []struct {
	name string
	cfg  serve.ChaosConfig
}{
	{"clean", serve.ChaosConfig{}},
	{"drop-corrupt", serve.ChaosConfig{Latency: 50 * time.Microsecond, DropFrac: 0.05, CorruptFrac: 0.05}},
	{"sever", serve.ChaosConfig{Latency: 50 * time.Microsecond, SeverFrac: 0.04}},
	{"slow-reader", serve.ChaosConfig{ReadChunk: 256, ReadDelay: 100 * time.Microsecond}},
}

// chaosCellShapes are the workload shapes of the sweep, as mutations
// of the base LoadConfig.
var chaosCellShapes = []struct {
	name  string
	apply func(cfg *serve.LoadConfig, requests int)
}{
	{"uniform", func(cfg *serve.LoadConfig, n int) {
		cfg.RequestsPerClient = n / cfg.Clients
	}},
	{"zipf-hotspot", func(cfg *serve.LoadConfig, n int) {
		cfg.RequestsPerClient = n / cfg.Clients
		cfg.ZipfS = 1.5
		cfg.HotspotFrac = 0.3
		cfg.HotSet = 64
	}},
	{"flash-crowd", func(cfg *serve.LoadConfig, n int) {
		rate := float64(n) / 0.6
		cfg.Schedule = []serve.RatePhase{
			{Rate: rate / 2, Duration: 100 * time.Millisecond},
			{Rate: rate * 2, Duration: 100 * time.Millisecond},
			{Rate: rate / 2, Duration: 100 * time.Millisecond},
		}
		cfg.MaxInFlight = 1024
	}},
	{"batch-mix", func(cfg *serve.LoadConfig, n int) {
		cfg.RequestsPerClient = n / cfg.Clients
		cfg.BatchSize = 8
		cfg.BatchFrac = 0.3
	}},
}

// ChaosRun sweeps the shape × schedule grid and appends the
// churn-storm row. A broken conservation identity is reported in the
// row, not returned as an error — the table exists to show the ledger
// holding under every schedule, so a violation is the data point.
func ChaosRun(cfg ChaosRunConfig) ([]ChaosRow, error) {
	if cfg.Requests == 0 {
		cfg.Requests = 240
	}
	var rows []ChaosRow
	for _, shape := range chaosCellShapes {
		for _, sched := range chaosCellSchedules {
			row, err := chaosCell(cfg, shape.name, sched.name, shape.apply, sched.cfg)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	storm, err := chaosStormRow(cfg)
	if err != nil {
		return nil, err
	}
	return append(rows, storm), nil
}

func chaosCell(cfg ChaosRunConfig, shape, sched string, apply func(*serve.LoadConfig, int), ccfg serve.ChaosConfig) (ChaosRow, error) {
	mem := serve.NewMemTransport()
	ln, err := mem.Listen("srv")
	if err != nil {
		return ChaosRow{}, err
	}
	defer ln.Close()
	srv := serve.NewServer(serve.Config{
		Shards: 4, QueueDepth: 512, CacheSize: 512,
		DefaultDeadline: 500 * time.Millisecond,
		WriteTimeout:    500 * time.Millisecond,
		Registry:        obs.NewRegistry(),
	})
	defer srv.Close()
	go srv.Serve(ln)

	ccfg.Seed = cfg.Seed + int64(len(shape))*1009 + int64(len(sched))*9973
	for _, c := range shape + "/" + sched {
		ccfg.Seed = ccfg.Seed*31 + int64(c)
	}
	ct := serve.NewChaosTransport(mem, ccfg)
	ct.SetEnabled(true)

	lcfg := serve.LoadConfig{
		D: 2, K: 8,
		Clients:        4,
		HotSet:         64,
		Seed:           ccfg.Seed ^ 0x5bd1,
		Transport:      ct,
		Addr:           "srv",
		RequestTimeout: 400 * time.Millisecond,
	}
	apply(&lcfg, cfg.Requests)
	res, err := serve.RunLoad(srv, lcfg)
	if err != nil {
		return ChaosRow{}, err
	}
	// Let tasks admitted from dying connections drain to their outcome
	// before snapshotting the ledger.
	counts := srv.Counts()
	for deadline := time.Now().Add(3 * time.Second); !counts.Conserved() && time.Now().Before(deadline); {
		time.Sleep(10 * time.Millisecond)
		counts = srv.Counts()
	}
	return ChaosRow{
		Shape:     shape,
		Schedule:  sched,
		Sent:      counts.Sent,
		Answered:  counts.Answered,
		Degraded:  counts.Degraded,
		Shed:      counts.Shed,
		Errs:      res.Errors,
		P99MS:     float64(res.P99) / float64(time.Millisecond),
		Conserved: counts.Conserved(),
	}, nil
}

// chaosStormRow boots a 6-node cluster on clean links, drives it from
// two protected nodes while a correlated kill burst plus joins tears
// through the rest, and reports the cluster-wide ledger with the
// victims' final counts folded in.
func chaosStormRow(cfg ChaosRunConfig) (ChaosRow, error) {
	h, err := cluster.NewHarness(cluster.HarnessConfig{
		Nodes:         6,
		Seed:          cfg.Seed + 77,
		IDLen:         10,
		Replication:   2,
		PeerIOTimeout: 500 * time.Millisecond,
		Serve: serve.Config{
			Shards: 4, QueueDepth: 512, CacheSize: 512,
			DefaultDeadline: 2 * time.Second,
			WriteTimeout:    500 * time.Millisecond,
		},
	})
	if err != nil {
		return ChaosRow{}, err
	}
	defer h.Close()

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		lats      []time.Duration
		errs      int64
		stormOnce sync.Once
		killed    []serve.Counts
		serr      error
	)
	const drivers = 2
	per := cfg.Requests / drivers
	for d := 0; d < drivers; d++ {
		c, err := h.Client(d)
		if err != nil {
			return ChaosRow{}, err
		}
		wg.Add(1)
		go func(d int, c *serve.Client) {
			defer wg.Done()
			defer c.Close()
			rng := newRand(cfg.Seed + int64(d)*131)
			for i := 0; i < per; i++ {
				if d == 0 && i == per/3 {
					stormOnce.Do(func() {
						killed, serr = h.Storm(2, 2, drivers)
					})
				}
				src := word.Random(2, 10, rng)
				dst := word.Random(2, 10, rng)
				ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
				start := time.Now()
				_, err := c.Do(ctx, serve.DistanceRequest(src, dst, serve.Undirected))
				cancel()
				mu.Lock()
				if err != nil {
					errs++
				} else {
					lats = append(lats, time.Since(start))
				}
				mu.Unlock()
			}
		}(d, c)
	}
	wg.Wait()
	if serr != nil {
		return ChaosRow{}, fmt.Errorf("experiments: chaos storm: %w", serr)
	}

	agg := h.Counts(killed...)
	for deadline := time.Now().Add(3 * time.Second); !agg.Conserved() && time.Now().Before(deadline); {
		time.Sleep(25 * time.Millisecond)
		agg = h.Counts(killed...)
	}
	return ChaosRow{
		Shape:     "churn-storm",
		Schedule:  "kill-burst",
		Sent:      agg.Sent,
		Answered:  agg.Answered,
		Degraded:  agg.Degraded,
		Shed:      agg.Shed,
		Errs:      errs,
		P99MS:     float64(percentileDur(lats, 0.99)) / float64(time.Millisecond),
		Conserved: agg.Conserved(),
	}, nil
}

// ChaosTable renders E24: one row per shape × schedule cell plus the
// churn-storm row.
func ChaosTable(cfg ChaosRunConfig) (*stats.Table, error) {
	rows, err := ChaosRun(cfg)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("shape", "schedule", "sent", "answered", "degraded", "shed", "errs", "p99_ms", "conserved")
	for _, r := range rows {
		t.AddRow(r.Shape, r.Schedule, r.Sent, r.Answered, r.Degraded, r.Shed, r.Errs, r.P99MS, r.Conserved)
	}
	return t, nil
}
