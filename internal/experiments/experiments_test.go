package experiments

import (
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestEq5ShapeClaims(t *testing.T) {
	// E3: equation (5) upper-bounds the exact mean; both increase in
	// k; the gap shrinks with d at fixed k.
	rows, err := Eq5([]int{2, 3, 4}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	byDK := map[[2]int]Eq5Row{}
	for _, r := range rows {
		if r.Gap < -1e-9 {
			t.Errorf("d=%d k=%d: formula below exact (gap %v)", r.D, r.K, r.Gap)
		}
		byDK[[2]int{r.D, r.K}] = r
	}
	for _, d := range []int{2, 3, 4} {
		prev := -1.0
		for k := 1; k <= 6; k++ {
			r, ok := byDK[[2]int{d, k}]
			if !ok {
				continue
			}
			if r.Exact <= prev {
				t.Errorf("d=%d: exact mean not increasing at k=%d", d, k)
			}
			prev = r.Exact
		}
	}
	// Larger d → smaller gap at k=4.
	if byDK[[2]int{3, 4}].Gap >= byDK[[2]int{2, 4}].Gap {
		t.Error("gap did not shrink from d=2 to d=3 at k=4")
	}
}

func TestFigure2ShapeClaims(t *testing.T) {
	// E4 (Figure 2): δ̄ grows roughly linearly in k with slope < 1,
	// increases in d at fixed k (the mean approaches the diameter as
	// the alphabet grows, exactly as eq. (5) shows for the directed
	// case), and sits below the directed mean.
	rows, err := Figure2([]int{2, 3}, 6, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	byDK := map[[2]int]Fig2Row{}
	for _, r := range rows {
		byDK[[2]int{r.D, r.K}] = r
	}
	for _, d := range []int{2, 3} {
		prev := -1.0
		for k := 1; k <= 6; k++ {
			r, ok := byDK[[2]int{d, k}]
			if !ok {
				continue
			}
			if r.Mean <= prev {
				t.Errorf("d=%d: Figure 2 series not increasing at k=%d", d, k)
			}
			if r.Mean-prev > 1.0+1e-9 && prev >= 0 {
				t.Errorf("d=%d k=%d: slope %v exceeds 1", d, k, r.Mean-prev)
			}
			prev = r.Mean
		}
	}
	if byDK[[2]int{3, 5}].Mean <= byDK[[2]int{2, 5}].Mean {
		t.Error("Figure 2: mean did not increase from d=2 to d=3 at k=5")
	}
	// Below the directed mean at the same (d,k).
	eq5rows, err := Eq5([]int{2}, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, er := range eq5rows {
		fr, ok := byDK[[2]int{er.D, er.K}]
		if ok && er.K >= 2 && fr.Mean > er.Exact+1e-9 {
			t.Errorf("d=%d k=%d: undirected mean %v above directed %v", er.D, er.K, fr.Mean, er.Exact)
		}
	}
}

func TestCensusMatchesPredictions(t *testing.T) {
	rows, err := Census([]graph.Kind{graph.Directed, graph.Undirected},
		[][2]int{{2, 3}, {2, 5}, {3, 3}, {4, 2}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Diameter != r.K {
			t.Errorf("%v DG(%d,%d): diameter %d != k", r.Kind, r.D, r.K, r.Diameter)
		}
		if r.Predicted != nil && !r.Match {
			t.Errorf("%v DG(%d,%d): census %v != predicted %v", r.Kind, r.D, r.K, r.Census, r.Predicted)
		}
	}
}

func TestCrossoverShape(t *testing.T) {
	// E6: at large k the linear algorithm must win.
	rows, err := Crossover([]int{4, 2048}, 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	last := rows[len(rows)-1]
	if last.Alg2Faster {
		t.Errorf("k=%d: Alg2 (%v) still beats Alg4 (%v)", last.K, last.Alg2PerOp, last.Alg4PerOp)
	}
	if _, err := Crossover([]int{4}, 0, 1); err == nil {
		t.Error("accepted zero trials")
	}
}

func TestPolicyComparisonShape(t *testing.T) {
	rows, err := PolicyComparison(2, 6, 1500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]PolicyRow{}
	for _, r := range rows {
		if r.Delivered != 1500 {
			t.Errorf("%s delivered %d", r.Policy, r.Delivered)
		}
		byName[r.Policy] = r
	}
	// All policies deliver with identical mean hops (routes are
	// optimal regardless of wildcard resolution).
	if byName["first"].MeanHops != byName["least-loaded"].MeanHops {
		t.Error("policies changed hop counts")
	}
	if byName["least-loaded"].LoadGini >= byName["first"].LoadGini {
		t.Errorf("least-loaded gini %v not below first %v",
			byName["least-loaded"].LoadGini, byName["first"].LoadGini)
	}
}

func TestHopsMatchDistance(t *testing.T) {
	for _, uni := range []bool{true, false} {
		n, err := HopsMatchDistance(2, 4, uni)
		if err != nil {
			t.Fatal(err)
		}
		if n != 256 {
			t.Errorf("checked %d pairs, want 256", n)
		}
	}
}

func TestFaultSweepShape(t *testing.T) {
	rows, err := FaultSweep([][2]int{{2, 3}, {3, 2}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Paper claim: tolerate d-1 failures. Measured: 2d-3, with
		// connectivity 2d-2.
		if r.MaxTolerated < r.D-1 {
			t.Errorf("DG(%d,%d): tolerated only %d failures, paper claims %d", r.D, r.K, r.MaxTolerated, r.D-1)
		}
		if r.MaxTolerated != 2*r.D-3 {
			t.Errorf("DG(%d,%d): tolerated %d, want 2d-3 = %d", r.D, r.K, r.MaxTolerated, 2*r.D-3)
		}
		if r.Connectivity != 2*r.D-2 {
			t.Errorf("DG(%d,%d): connectivity %d, want %d", r.D, r.K, r.Connectivity, 2*r.D-2)
		}
	}
}

func TestTablesRender(t *testing.T) {
	eq5, err := Eq5Table([]int{2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eq5.String(), "eq(5)") {
		t.Error("eq5 table missing header")
	}
	fig2, err := Figure2Table([]int{2}, 4, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig2.String(), "exact") {
		t.Error("fig2 table missing mode")
	}
	census, err := CensusTable([]graph.Kind{graph.Undirected}, [][2]int{{2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(census.String(), "deg") {
		t.Error("census table missing census")
	}
	cross, err := CrossoverTable([]int{4}, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cross.String(), "winner") {
		t.Error("crossover table missing winner")
	}
	pol, err := PolicyTable(2, 4, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pol.String(), "least-loaded") {
		t.Error("policy table missing policy")
	}
	ft, err := FaultTable([][2]int{{2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ft.String(), "connectivity") {
		t.Error("fault table missing connectivity")
	}
	dist, err := DistributionTable(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dist.String(), "distance") {
		t.Error("distribution table missing header")
	}
}
