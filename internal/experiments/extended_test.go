package experiments

import (
	"strings"
	"testing"
)

func TestOptimalityShape(t *testing.T) {
	rows, err := Optimality([][2]int{{2, 4}, {2, 8}, {3, 4}, {4, 3}, {8, 3}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.MooreDiam > r.Diameter {
			t.Errorf("DG(%d,%d): Moore bound %d above actual %d", r.D, r.K, r.MooreDiam, r.Diameter)
		}
		if r.Efficiency <= 0 || r.Efficiency > 1 {
			t.Errorf("DG(%d,%d): efficiency %v out of (0,1]", r.D, r.K, r.Efficiency)
		}
	}
	// Efficiency improves with d at fixed k=3: DG(8,3) closer to
	// optimal than DG(4,3)... both may round equal; check ≥.
	var e4, e8 float64
	for _, r := range rows {
		if r.D == 4 && r.K == 3 {
			e4 = r.Efficiency
		}
		if r.D == 8 && r.K == 3 {
			e8 = r.Efficiency
		}
	}
	if e8 < e4 {
		t.Errorf("efficiency fell from d=4 (%v) to d=8 (%v)", e4, e8)
	}
}

func TestBroadcastShape(t *testing.T) {
	rows, err := Broadcast([][2]int{{2, 4}, {2, 6}, {3, 3}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		n := 1
		for i := 0; i < r.K; i++ {
			n *= r.D
		}
		if r.TreeMessages != n-1 {
			t.Errorf("DN(%d,%d): tree used %d messages, want %d", r.D, r.K, r.TreeMessages, n-1)
		}
		if r.FloodMessages <= r.TreeMessages {
			t.Errorf("DN(%d,%d): flood %d not above tree %d", r.D, r.K, r.FloodMessages, r.TreeMessages)
		}
		if r.TreeRounds > r.K {
			t.Errorf("DN(%d,%d): %d rounds exceeds diameter", r.D, r.K, r.TreeRounds)
		}
	}
}

func TestDiversityShape(t *testing.T) {
	rows, err := Diversity([][2]int{{2, 3}, {2, 5}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.MeanPaths < 1 {
			t.Errorf("DG(%d,%d): mean paths %v below 1", r.D, r.K, r.MeanPaths)
		}
		if r.MaxPaths < 2 {
			t.Errorf("DG(%d,%d): no multipath pairs at all", r.D, r.K)
		}
		if r.MultiFraction <= 0 || r.MultiFraction >= 1 {
			t.Errorf("DG(%d,%d): multipath fraction %v", r.D, r.K, r.MultiFraction)
		}
	}
	// Diversity grows with k.
	if rows[1].MeanPaths <= rows[0].MeanPaths {
		t.Errorf("diversity did not grow with k: %v then %v", rows[0].MeanPaths, rows[1].MeanPaths)
	}
}

func TestDestinationRoutingAgrees(t *testing.T) {
	for _, uni := range []bool{true, false} {
		rows, err := DestinationRouting([][2]int{{2, 4}}, uni)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if !r.Agree {
				t.Errorf("uni=%v DG(%d,%d): source %d hops, destination %d", uni, r.D, r.K, r.SourceHops, r.DestHops)
			}
			if r.Pairs != 256 {
				t.Errorf("pairs = %d", r.Pairs)
			}
		}
	}
}

func TestExtendedTablesRender(t *testing.T) {
	opt, err := OptimalityTable([][2]int{{2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(opt.String(), "moore-min") {
		t.Error("optimality table missing header")
	}
	bc, err := BroadcastTable([][2]int{{2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(bc.String(), "flood msgs") {
		t.Error("broadcast table missing header")
	}
	div, err := DiversityTable([][2]int{{2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(div.String(), "multi-path") {
		t.Error("diversity table missing header")
	}
}
