package experiments

import "math/rand"

// newRand centralizes generator construction so every experiment is
// reproducible from its seed argument.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
