package experiments

import (
	"strings"
	"testing"
)

func TestDHTShape(t *testing.T) {
	rows, err := DHT(14, []int{8, 64, 512}, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		// Injections stay near log2 N, far below k for sparse rings.
		if r.MeanInjections > r.Log2N+3 {
			t.Errorf("N=%d: injections %v well above log2N %v", r.Nodes, r.MeanInjections, r.Log2N)
		}
		if r.MeanHops < r.MeanInjections {
			t.Errorf("N=%d: hops %v below injections %v", r.Nodes, r.MeanHops, r.MeanInjections)
		}
		if i > 0 && r.MeanInjections <= rows[i-1].MeanInjections {
			t.Errorf("injections did not grow with N: %v then %v", rows[i-1].MeanInjections, r.MeanInjections)
		}
	}
	// The sparsest ring must sit far below k.
	if rows[0].MeanInjections > float64(rows[0].K)/2 {
		t.Errorf("sparse ring injections %v not far below k=%d", rows[0].MeanInjections, rows[0].K)
	}
}

func TestDHTTableRenders(t *testing.T) {
	tbl, err := DHTTable(10, []int{16}, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "meanInjections") {
		t.Error("dht table missing header")
	}
}
