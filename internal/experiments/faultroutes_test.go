package experiments

import (
	"strings"
	"testing"
)

func TestFaultRouteSweepContract(t *testing.T) {
	rows, err := FaultRouteSweep(3, 3, 4, 60, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // Trees(3,3) = 3 → failure sizes 0..2
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if r.Pairs == 0 {
			t.Fatalf("failures=%d measured no pairs", r.Failures)
		}
		// The paper-level contract: every pair delivers below Trees
		// failures, with stretch at least 1.
		if r.DeliveryRate != 1.0 {
			t.Fatalf("failures=%d delivery rate %v, want 1.0", r.Failures, r.DeliveryRate)
		}
		if r.MeanStretch < 1 || r.MaxStretch < r.MeanStretch {
			t.Fatalf("failures=%d stretch out of order: %+v", r.Failures, r)
		}
		if r.BaselineStretch < 1 {
			t.Fatalf("failures=%d baseline stretch %v < 1", r.Failures, r.BaselineStretch)
		}
	}
	// No failures → no switches, optimal-length walks are possible but
	// tree walks need not be shortest; only the zero-switch claim holds.
	if rows[0].MeanSwitches != 0 {
		t.Fatalf("failures=0 had %v switches", rows[0].MeanSwitches)
	}
}

func TestFaultRoutesTable(t *testing.T) {
	tab, err := FaultRoutesTable([][2]int{{2, 4}, {3, 3}}, 2, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := tab.String()
	if !strings.Contains(s, "bfsStretch") || !strings.Contains(s, "delivered") {
		t.Fatalf("table missing columns:\n%s", s)
	}
	// 2 rows for DG(2,4) (Trees=2) + 3 for DG(3,3), plus header/rules.
	if got := strings.Count(s, "\n"); got < 5 {
		t.Fatalf("table too short:\n%s", s)
	}
}
