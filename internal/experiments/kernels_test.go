package experiments

import (
	"testing"
	"time"
)

func TestKernelsShape(t *testing.T) {
	rows, err := Kernels([][2]int{{2, 6}, {2, 64}, {5, 16}}, time.Millisecond, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	wantTier := map[[2]int]string{{2, 6}: "table", {2, 64}: "packed", {5, 16}: "scratch"}
	for _, r := range rows {
		if got := wantTier[[2]int{r.D, r.K}]; r.Tier != got {
			t.Errorf("DG(%d,%d): tier %q, want %q", r.D, r.K, r.Tier, got)
		}
		if r.ScratchNs <= 0 || r.TierNs <= 0 || r.BatchNs <= 0 {
			t.Errorf("DG(%d,%d): non-positive timing %+v", r.D, r.K, r)
		}
		if r.Speedup <= 0 {
			t.Errorf("DG(%d,%d): speedup %v", r.D, r.K, r.Speedup)
		}
	}
	tbl, err := KernelsTable([][2]int{{2, 6}}, time.Millisecond, 7)
	if err != nil {
		t.Fatal(err)
	}
	if tbl == nil {
		t.Fatal("nil table")
	}
}
