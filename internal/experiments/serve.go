package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/stats"
)

// ServeLoadRow is one offered-rate point of experiment E21: the
// route-query server driven open-loop through its admission queue and
// degrade ladder. SrvP50MS/SrvP99MS are admission-to-answer quantiles
// (the latency the ladder bounds); the client-observed quantiles grow
// without bound under open-loop overload by construction, so the
// server-side ones carry the E21 claim.
type ServeLoadRow struct {
	Rate       float64
	Sent       int64
	Answered   int64
	Degraded   int64
	Shed       int64
	Hits       int64
	SrvP50MS   float64
	SrvP99MS   float64
	Throughput float64
}

// ServeLoadConfig shapes the E21 sweep. Zero values default to a
// configuration small enough for CI and constrained enough that the
// top rates genuinely overload it: one worker shard behind a short
// queue, driven with batch requests so that one wire frame carries 64
// route computations (scalar frames bottleneck on transport long
// before the O(k) kernels saturate a shard).
type ServeLoadConfig struct {
	D, K       int           // network, default DG(2,10)
	Shards     int           // worker shards, default 1
	QueueDepth int           // admission queue, default 16
	CacheSize  int           // LRU answers, default 1024
	Clients    int           // connections, default 8
	HotSet     int           // skewed vertex pool, default 64
	BatchSize  int           // sub-queries per request, default 64
	DeadlineMS int64         // per-request budget, default 20
	Duration   time.Duration // per rate point, default 250ms
	Seed       int64
}

// ServeLoad sweeps offered rates against one server per point (fresh
// counters and cache, so points are independent).
func ServeLoad(cfg ServeLoadConfig, rates []float64) ([]ServeLoadRow, error) {
	if cfg.D == 0 {
		cfg.D = 2
	}
	if cfg.K == 0 {
		cfg.K = 10
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 16
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 1024
	}
	if cfg.Clients == 0 {
		cfg.Clients = 8
	}
	if cfg.HotSet == 0 {
		cfg.HotSet = 64
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 64
	}
	if cfg.DeadlineMS == 0 {
		cfg.DeadlineMS = 20
	}
	if cfg.Duration == 0 {
		cfg.Duration = 250 * time.Millisecond
	}
	var rows []ServeLoadRow
	for _, rate := range rates {
		s := serve.NewServer(serve.Config{
			Shards:          cfg.Shards,
			QueueDepth:      cfg.QueueDepth,
			CacheSize:       cfg.CacheSize,
			DefaultDeadline: time.Duration(cfg.DeadlineMS) * time.Millisecond,
			Registry:        obs.NewRegistry(),
		})
		res, err := serve.RunLoad(s, serve.LoadConfig{
			D: cfg.D, K: cfg.K,
			Clients:    cfg.Clients,
			Rate:       rate,
			Duration:   cfg.Duration,
			HotSet:     cfg.HotSet,
			BatchSize:  cfg.BatchSize,
			DeadlineMS: cfg.DeadlineMS,
			Seed:       cfg.Seed,
		})
		s.Close()
		if err != nil {
			return nil, err
		}
		rows = append(rows, ServeLoadRow{
			Rate:       rate,
			Sent:       res.Sent,
			Answered:   res.Answered,
			Degraded:   res.Degraded,
			Shed:       res.Shed,
			Hits:       res.Hits,
			SrvP50MS:   float64(res.ServerP50) / float64(time.Millisecond),
			SrvP99MS:   float64(res.ServerP99) / float64(time.Millisecond),
			Throughput: res.Throughput,
		})
	}
	return rows, nil
}

// ServeLoadTable renders E21.
func ServeLoadTable(cfg ServeLoadConfig, rates []float64) (*stats.Table, error) {
	rows, err := ServeLoad(cfg, rates)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("rate", "sent", "answered", "degraded", "shed", "hits", "srv_p50ms", "srv_p99ms", "throughput")
	for _, r := range rows {
		t.AddRow(r.Rate, r.Sent, r.Answered, r.Degraded, r.Shed, r.Hits, r.SrvP50MS, r.SrvP99MS, r.Throughput)
	}
	return t, nil
}

// FlightStorm is experiment E22: it replays the E21 saturation regime
// — one deliberately overloaded open-loop rate point — with tracing
// and the flight recorder enabled, and returns the postmortem the
// anomaly monitor froze. The recorder must trip (the degrade ladder
// engaging or the shed fraction spiking are both anomalies under this
// load); a storm that leaves it unfrozen is an error, since E22's
// claim is exactly that the recorder catches the anomaly unattended.
func FlightStorm(cfg ServeLoadConfig, rate float64) (obs.FlightSnapshot, error) {
	if cfg.D == 0 {
		cfg.D = 2
	}
	if cfg.K == 0 {
		cfg.K = 10
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 16
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 1024
	}
	if cfg.Clients == 0 {
		cfg.Clients = 8
	}
	if cfg.HotSet == 0 {
		cfg.HotSet = 64
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 64
	}
	if cfg.DeadlineMS == 0 {
		cfg.DeadlineMS = 20
	}
	if cfg.Duration == 0 {
		cfg.Duration = 250 * time.Millisecond
	}
	s := serve.NewServer(serve.Config{
		Shards:          cfg.Shards,
		QueueDepth:      cfg.QueueDepth,
		CacheSize:       cfg.CacheSize,
		DefaultDeadline: time.Duration(cfg.DeadlineMS) * time.Millisecond,
		Registry:        obs.NewRegistry(),
		TraceSample:     16,
		TraceSeed:       uint64(cfg.Seed),
		TraceBufferSize: 512,
		FlightSize:      256,
		MonitorInterval: 5 * time.Millisecond,
	})
	defer s.Close()
	if _, err := serve.RunLoad(s, serve.LoadConfig{
		D: cfg.D, K: cfg.K,
		Clients:    cfg.Clients,
		Rate:       rate,
		Duration:   cfg.Duration,
		HotSet:     cfg.HotSet,
		BatchSize:  cfg.BatchSize,
		DeadlineMS: cfg.DeadlineMS,
		Seed:       cfg.Seed,
		StampTrace: true,
	}); err != nil {
		return obs.FlightSnapshot{}, err
	}
	// The monitor freezes on its own tick; allow it a few windows past
	// the end of the load to process the final diff.
	for i := 0; i < 200 && !s.Flight().Frozen(); i++ {
		time.Sleep(5 * time.Millisecond)
	}
	snap := s.Flight().Snapshot()
	if !snap.Frozen {
		return snap, fmt.Errorf("overload at %.0f req/s did not trip the flight recorder", rate)
	}
	return snap, nil
}

// FlightTable renders E22 as a summary of the frozen postmortem: the
// trigger first, then every event family the ring retained with its
// count and most recent value.
func FlightTable(cfg ServeLoadConfig, rate float64) (*stats.Table, error) {
	snap, err := FlightStorm(cfg, rate)
	if err != nil {
		return nil, err
	}
	type key struct{ kind, name string }
	counts := make(map[key]int)
	last := make(map[key]float64)
	var keys []key
	for _, ev := range snap.Events {
		if ev.Kind == obs.FlightTrigger {
			continue // shown on its own row below
		}
		k := key{ev.Kind, ev.Name}
		if counts[k] == 0 {
			keys = append(keys, k)
		}
		counts[k]++
		last[k] = ev.Value
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].kind != keys[j].kind {
			return keys[i].kind < keys[j].kind
		}
		return keys[i].name < keys[j].name
	})
	t := stats.NewTable("kind", "event", "count", "last_value")
	if snap.Trigger != nil {
		t.AddRow(obs.FlightTrigger, snap.Trigger.Name, 1, snap.Trigger.Value)
	}
	for _, k := range keys {
		t.AddRow(k.kind, k.name, counts[k], last[k])
	}
	return t, nil
}
