package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/stats"
)

// E26 — fault routing: arc-disjoint arborescence failover vs the
// offline reroute baselines. E17 (RerouteStretch) prices failures by
// *recomputing* shortest paths on the faulted graph; E26 prices the
// online alternative that recomputes nothing: walk the precomputed
// destination arborescences and rotate structure on each failed arc,
// carrying one integer of failover state. The sweep reports, per
// failure count f < Trees, the delivery rate (the contract says 1.0),
// the walk's stretch over the clean shortest path, the number of
// structure switches actually performed, and the stretch an optimal
// recompute would have paid on the same faulted graph — the gap
// between the last two columns is the price of O(1) failover.

// FaultRouteRow is one failure-count cell of the E26 sweep.
type FaultRouteRow struct {
	D, K     int
	Failures int // failed directed arcs per trial
	Pairs    int // delivery attempts measured
	Delivered int
	DeliveryRate float64
	// MeanStretch/MaxStretch are walk hops over the clean (unfaulted)
	// shortest path, the same normalization E17 uses.
	MeanStretch float64
	MaxStretch  float64
	// MeanSwitches counts the O(1) failover events per delivery.
	MeanSwitches float64
	// BaselineStretch is the faulted-BFS shortest path over the clean
	// one: what full recomputation would pay on the same failures.
	BaselineStretch float64
}

// FaultRouteSweep measures DG(d,k) for every failure size below the
// arborescence count, drawing `sets` random arc-failure sets per size
// and walking `pairs` source→destination attempts per set.
func FaultRouteSweep(d, k, sets, pairs int, seed int64) ([]FaultRouteRow, error) {
	if sets < 1 || pairs < 1 {
		return nil, fmt.Errorf("experiments: fault route sweep needs sets ≥ 1 and pairs ≥ 1")
	}
	fr, err := core.NewFaultRouter(d, k)
	if err != nil {
		return nil, err
	}
	g, n := fr.Graph(), fr.NumVertices()
	rng := rand.New(rand.NewSource(seed))
	rows := make([]FaultRouteRow, 0, fr.Trees())
	for f := 0; f < fr.Trees(); f++ {
		row := FaultRouteRow{D: d, K: k, Failures: f}
		var stretch, switches, baseline stats.Accumulator
		for set := 0; set < sets; set++ {
			failed := make(map[[2]int]bool, f)
			for len(failed) < f {
				u := rng.Intn(n)
				nbs := g.OutNeighbors(u)
				if len(nbs) == 0 {
					continue
				}
				failed[[2]int{u, int(nbs[rng.Intn(len(nbs))])}] = true
			}
			failedFn := func(u, v int) bool { return failed[[2]int{u, v}] }
			dst := rng.Intn(n)
			clean, err := g.BFSFrom(dst) // undirected: row doubles as distance-to-dst
			if err != nil {
				return nil, err
			}
			faulted, err := g.BFSToAvoidingArcs(dst, failedFn)
			if err != nil {
				return nil, err
			}
			for p := 0; p < pairs; p++ {
				src := rng.Intn(n)
				if src == dst || clean[src] <= 0 {
					continue
				}
				w, err := fr.Walk(src, dst, failedFn)
				if err != nil {
					return nil, err
				}
				row.Pairs++
				if !w.Delivered {
					continue
				}
				row.Delivered++
				stretch.Add(float64(w.Hops) / float64(clean[src]))
				switches.Add(float64(w.Switches))
				if faulted[src] > 0 {
					baseline.Add(float64(faulted[src]) / float64(clean[src]))
				}
			}
		}
		if row.Pairs > 0 {
			row.DeliveryRate = float64(row.Delivered) / float64(row.Pairs)
		}
		row.MeanStretch = stretch.Mean()
		row.MaxStretch = stretch.Max()
		row.MeanSwitches = switches.Mean()
		row.BaselineStretch = baseline.Mean()
		rows = append(rows, row)
	}
	return rows, nil
}

// FaultRoutesTable renders E26 across the given graphs.
func FaultRoutesTable(dks [][2]int, sets, pairs int, seed int64) (*stats.Table, error) {
	t := stats.NewTable("d", "k", "failures", "pairs", "delivered", "meanStretch", "maxStretch", "switches", "bfsStretch")
	for _, dk := range dks {
		rows, err := FaultRouteSweep(dk[0], dk[1], sets, pairs, seed)
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			t.AddRow(r.D, r.K, r.Failures, r.Pairs, fmt.Sprintf("%.3f", r.DeliveryRate),
				fmt.Sprintf("%.3f", r.MeanStretch), fmt.Sprintf("%.2f", r.MaxStretch),
				fmt.Sprintf("%.2f", r.MeanSwitches), fmt.Sprintf("%.3f", r.BaselineStretch))
		}
	}
	return t, nil
}
