package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/word"
)

// KernelRow is one (d,k) point of E25: the measured per-call cost of
// the undirected distance on the scratch kernels versus the tier the
// default engine selects, and the resulting speedup.
type KernelRow struct {
	D, K      int
	Tier      string  // tier the default-config engine selects
	ScratchNs float64 // scratch-kernel distance, ns/op
	TierNs    float64 // tiered-engine distance, ns/op
	BatchNs   float64 // batch-frame distance, ns/op (amortized packing)
	Speedup   float64 // ScratchNs / TierNs
}

// kernelBench times fn over the pair pool until budget elapses and
// returns ns/op. It is a deliberately small harness — E25 reports
// magnitudes (2×, 15×, 300×), not benstat-grade confidence intervals;
// BENCH_core.json carries the gated numbers.
func kernelBench(pairs [][2]word.Word, budget time.Duration, fn func(x, y word.Word) error) (float64, error) {
	// One warm pass so pooled buffers and rank tables are built before
	// the clock starts.
	for _, p := range pairs {
		if err := fn(p[0], p[1]); err != nil {
			return 0, err
		}
	}
	var calls int
	start := time.Now()
	for time.Since(start) < budget {
		for _, p := range pairs {
			if err := fn(p[0], p[1]); err != nil {
				return 0, err
			}
		}
		calls += len(pairs)
	}
	return float64(time.Since(start).Nanoseconds()) / float64(calls), nil
}

// Kernels measures the tier ladder on each graph (E25): scratch
// versus the tier the default engine picks, plus the batch frame.
func Kernels(dks [][2]int, budget time.Duration, seed int64) ([]KernelRow, error) {
	if budget <= 0 {
		budget = 25 * time.Millisecond
	}
	var rows []KernelRow
	for _, dk := range dks {
		d, k := dk[0], dk[1]
		rng := rand.New(rand.NewSource(seed))
		pairs := make([][2]word.Word, 64)
		for i := range pairs {
			pairs[i] = [2]word.Word{word.Random(d, k, rng), word.Random(d, k, rng)}
		}
		scratch := core.NewKernels(core.KernelConfig{TableBudget: -1, DisablePacked: true})
		tiered := core.NewKernels(core.KernelConfig{SyncTableBuild: true})

		scratchNs, err := kernelBench(pairs, budget, func(x, y word.Word) error {
			_, err := scratch.UndirectedDistance(x, y)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: scratch DG(%d,%d): %w", d, k, err)
		}
		tierNs, err := kernelBench(pairs, budget, func(x, y word.Word) error {
			_, err := tiered.UndirectedDistance(x, y)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: tiered DG(%d,%d): %w", d, k, err)
		}

		// Batch frame: re-pack the pool once per pass, evaluate every
		// slot — the shape the serve worker produces per batch request.
		batchNs, err := kernelBench(pairs[:1], budget, func(word.Word, word.Word) error {
			fr := tiered.Frame()
			for _, p := range pairs {
				if _, err := fr.Add(p[0], p[1]); err != nil {
					return err
				}
			}
			for i := range pairs {
				if _, err := fr.UndirectedDistance(i); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: batch DG(%d,%d): %w", d, k, err)
		}
		batchNs /= float64(len(pairs)) // per evaluation, not per pass

		rows = append(rows, KernelRow{
			D: d, K: k,
			Tier:      tiered.TierFor(d, k).String(),
			ScratchNs: scratchNs,
			TierNs:    tierNs,
			BatchNs:   batchNs,
			Speedup:   scratchNs / tierNs,
		})
	}
	return rows, nil
}

// KernelsTable renders E25.
func KernelsTable(dks [][2]int, budget time.Duration, seed int64) (*stats.Table, error) {
	rows, err := Kernels(dks, budget, seed)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("d", "k", "tier", "scratch ns/op", "tier ns/op", "batch ns/op", "speedup")
	for _, r := range rows {
		t.AddRow(r.D, r.K, r.Tier, r.ScratchNs, r.TierNs, r.BatchNs, r.Speedup)
	}
	return t, nil
}
