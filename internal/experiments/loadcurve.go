package experiments

import (
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/network"
	"repro/internal/stats"
)

// LoadCurveRow is one offered-load point of experiment E16, the
// latency-vs-load characteristic of DN(d,k).
type LoadCurveRow struct {
	Rate         float64
	Offered      int
	MeanLatency  float64
	P95Latency   int
	MeanSlowdown float64
	Saturated    bool
}

// LoadCurve sweeps arrival rates through the open-loop engine.
func LoadCurve(d, k int, rates []float64, rounds int, seed int64) ([]LoadCurveRow, error) {
	var rows []LoadCurveRow
	for _, rate := range rates {
		res, err := network.RunOpenLoop(network.OpenLoopConfig{
			D: d, K: k, Rate: rate, Rounds: rounds, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, LoadCurveRow{
			Rate:         rate,
			Offered:      res.Offered,
			MeanLatency:  res.MeanLatency,
			P95Latency:   res.P95Latency,
			MeanSlowdown: res.MeanSlowdown,
			Saturated:    res.Saturated,
		})
	}
	return rows, nil
}

// LoadCurveTable renders E16.
func LoadCurveTable(d, k int, rates []float64, rounds int, seed int64) (*stats.Table, error) {
	rows, err := LoadCurve(d, k, rates, rounds, seed)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("rate", "offered", "meanLatency", "p95", "slowdown", "saturated")
	for _, r := range rows {
		t.AddRow(r.Rate, r.Offered, r.MeanLatency, r.P95Latency, r.MeanSlowdown, r.Saturated)
	}
	return t, nil
}

// StretchRow is one failure count of experiment E17: reroute cost as
// failures accumulate.
type StretchRow struct {
	Failures      int
	Pairs         int
	Disconnected  int
	MeanStretch   float64
	MaxStretch    float64
	MeanExtraHops float64
}

// StretchSweep measures reroute stretch on undirected DG(d,k) for
// growing random failure sets.
func StretchSweep(d, k int, failures []int, pairs int, seed int64) ([]StretchRow, error) {
	g, err := graph.DeBruijn(graph.Undirected, d, k)
	if err != nil {
		return nil, err
	}
	rng := newRand(seed)
	var rows []StretchRow
	for _, f := range failures {
		failed := make(map[int]bool, f)
		for len(failed) < f {
			failed[rng.Intn(g.NumVertices())] = true
		}
		set := make([]int, 0, f)
		for v := range failed {
			set = append(set, v)
		}
		res, err := fault.RerouteStretch(g, set, pairs, seed+int64(f))
		if err != nil {
			return nil, err
		}
		rows = append(rows, StretchRow{
			Failures:      f,
			Pairs:         res.Pairs,
			Disconnected:  res.Disconnected,
			MeanStretch:   res.MeanStretch,
			MaxStretch:    res.MaxStretch,
			MeanExtraHops: res.MeanExtraHops,
		})
	}
	return rows, nil
}

// StretchTable renders E17.
func StretchTable(d, k int, failures []int, pairs int, seed int64) (*stats.Table, error) {
	rows, err := StretchSweep(d, k, failures, pairs, seed)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("failures", "pairs", "disconnected", "meanStretch", "maxStretch", "extraHops")
	for _, r := range rows {
		t.AddRow(r.Failures, r.Pairs, r.Disconnected, r.MeanStretch, r.MaxStretch, r.MeanExtraHops)
	}
	return t, nil
}
