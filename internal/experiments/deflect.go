package experiments

import (
	"repro/internal/deflect"
	"repro/internal/network"
	"repro/internal/stats"
)

// DeflectRow is one (policy, offered-load) point of experiment E18,
// the bufferless deflection load/latency study. Policy "store-fwd"
// rows are the rate-matched store-and-forward baseline (the open-loop
// member of the Contention engine family, same Bernoulli arrivals),
// for which deflections and guard trips are identically zero.
type DeflectRow struct {
	Policy         string
	Rate           float64
	Offered        int
	Delivered      int
	MeanLatency    float64
	P99Latency     int
	DeflectionRate float64
	GuardTrips     int
}

// StoreFwdPolicy names the baseline rows of E18.
const StoreFwdPolicy = "store-fwd"

// DeflectSweep runs E18 on the undirected DN(d,k): for every offered
// load in rates, one open-loop run per deflection policy plus the
// store-and-forward baseline at the same rate.
func DeflectSweep(d, k int, rates []float64, rounds int, seed int64) ([]DeflectRow, error) {
	var rows []DeflectRow
	for _, rate := range rates {
		for _, pol := range deflect.Policies() {
			res, err := deflect.RunLoad(deflect.LoadConfig{
				D: d, K: k,
				Policy: pol,
				Rate:   rate,
				Rounds: rounds,
				Seed:   seed,
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, DeflectRow{
				Policy:         pol.Name(),
				Rate:           rate,
				Offered:        res.Offered,
				Delivered:      res.Delivered,
				MeanLatency:    res.MeanLatency,
				P99Latency:     res.P99Latency,
				DeflectionRate: res.DeflectionRate,
				GuardTrips:     res.GuardDropped,
			})
		}
		base, err := network.RunOpenLoop(network.OpenLoopConfig{
			D: d, K: k, Rate: rate, Rounds: rounds, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, DeflectRow{
			Policy:      StoreFwdPolicy,
			Rate:        rate,
			Offered:     base.Offered,
			Delivered:   base.Delivered,
			MeanLatency: base.MeanLatency,
			P99Latency:  base.P95Latency, // open-loop engine reports p95; see EXPERIMENTS.md deviation note
		})
	}
	return rows, nil
}

// DeflectTable renders E18.
func DeflectTable(d, k int, rates []float64, rounds int, seed int64) (*stats.Table, error) {
	rows, err := DeflectSweep(d, k, rates, rounds, seed)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("policy", "rate", "offered", "delivered", "meanLatency", "p99", "deflectRate", "guardTrips")
	for _, r := range rows {
		t.AddRow(r.Policy, r.Rate, r.Offered, r.Delivered, r.MeanLatency, r.P99Latency, r.DeflectionRate, r.GuardTrips)
	}
	return t, nil
}
