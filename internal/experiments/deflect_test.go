package experiments

import (
	"strings"
	"testing"

	"repro/internal/deflect"
)

// TestDeflectSweepShape certifies the E18 table the CLI prints with
// its default parameters (seed 1): per policy, mean latency and
// deflection rate rise from the lightest to the heaviest offered load,
// and the distance-aware policies dominate random at the heaviest
// load. These are the ISSUE acceptance criteria for the experiment.
func TestDeflectSweepShape(t *testing.T) {
	rates := []float64{0.05, 0.15, 0.30, 0.60, 0.90}
	rows, err := DeflectSweep(2, 6, rates, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	perPolicy := len(deflect.Policies()) + 1 // + store-fwd baseline
	if len(rows) != len(rates)*perPolicy {
		t.Fatalf("got %d rows, want %d", len(rows), len(rates)*perPolicy)
	}
	byPolicy := map[string][]DeflectRow{}
	for _, r := range rows {
		byPolicy[r.Policy] = append(byPolicy[r.Policy], r)
		if r.GuardTrips != 0 {
			t.Errorf("policy %s rate %v: %d guard trips under oldest-first", r.Policy, r.Rate, r.GuardTrips)
		}
		if r.Policy == StoreFwdPolicy && r.DeflectionRate != 0 {
			t.Errorf("store-and-forward baseline reports deflections: %+v", r)
		}
	}
	for _, pol := range deflect.Policies() {
		rs := byPolicy[pol.Name()]
		if len(rs) != len(rates) {
			t.Fatalf("policy %s: %d rows, want %d", pol.Name(), len(rs), len(rates))
		}
		first, last := rs[0], rs[len(rs)-1]
		if last.MeanLatency <= first.MeanLatency {
			t.Errorf("policy %s: mean latency did not rise with load (%.4f → %.4f)",
				pol.Name(), first.MeanLatency, last.MeanLatency)
		}
		if last.P99Latency <= first.P99Latency {
			t.Errorf("policy %s: p99 latency did not rise with load (%d → %d)",
				pol.Name(), first.P99Latency, last.P99Latency)
		}
		if last.DeflectionRate <= first.DeflectionRate {
			t.Errorf("policy %s: deflection rate did not rise with load (%.4f → %.4f)",
				pol.Name(), first.DeflectionRate, last.DeflectionRate)
		}
	}
	heaviest := func(policy string) DeflectRow {
		rs := byPolicy[policy]
		return rs[len(rs)-1]
	}
	random := heaviest("random")
	for _, policy := range []string{"min-increase", "layer-aware"} {
		if r := heaviest(policy); r.MeanLatency >= random.MeanLatency {
			t.Errorf("%s (%.4f) does not dominate random (%.4f) at the heaviest load",
				policy, r.MeanLatency, random.MeanLatency)
		}
	}
}

// TestDeflectTableShape checks the rendered table's column layout.
func TestDeflectTableShape(t *testing.T) {
	tab, err := DeflectTable(2, 4, []float64{0.2, 0.8}, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := tab.String()
	for _, col := range []string{"policy", "rate", "meanLatency", "p99", "deflectRate", "guardTrips"} {
		if !strings.Contains(s, col) {
			t.Fatalf("table missing column %q:\n%s", col, s)
		}
	}
}
