package experiments

import (
	"strings"
	"testing"
)

// TestChaosRunSmall sweeps a reduced E24 grid and requires every row —
// the adversarial schedules and the churn storm included — to conserve.
func TestChaosRunSmall(t *testing.T) {
	rows, err := ChaosRun(ChaosRunConfig{Requests: 80, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(chaosCellShapes)*len(chaosCellSchedules) + 1; len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	for _, r := range rows {
		if !r.Conserved {
			t.Errorf("cell %s/%s not conserved: %+v", r.Shape, r.Schedule, r)
		}
		if r.Sent == 0 {
			t.Errorf("cell %s/%s served nothing", r.Shape, r.Schedule)
		}
	}
	last := rows[len(rows)-1]
	if last.Shape != "churn-storm" {
		t.Fatalf("final row is %q, want the churn storm", last.Shape)
	}
	if last.Errs != 0 {
		t.Errorf("storm cost %d requests on protected driver nodes", last.Errs)
	}
}

// TestChaosTableShape pins the E24 render.
func TestChaosTableShape(t *testing.T) {
	tab, err := ChaosTable(ChaosRunConfig{Requests: 48, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	if out == "" {
		t.Fatal("empty table render")
	}
	for _, col := range []string{"shape", "schedule", "conserved", "churn-storm", "sever"} {
		if !strings.Contains(out, col) {
			t.Fatalf("table missing %q:\n%s", col, out)
		}
	}
}
