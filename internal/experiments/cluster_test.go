package experiments

import (
	"strings"
	"testing"
)

func TestClusterRunSmall(t *testing.T) {
	rows, sum, err := ClusterRun(ClusterRunConfig{
		Nodes: 3, Replication: 1,
		ClientsPerNode: 2, RequestsPerClient: 60,
		Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	var sent, answered, forwarded, fwdIn, shed int64
	for _, r := range rows {
		if r.Sent != r.Answered+r.Shed+r.Forwarded {
			t.Fatalf("node %s not conserved: %+v", r.Node, r)
		}
		sent += r.Sent
		answered += r.Answered
		forwarded += r.Forwarded
		fwdIn += r.ForwardedIn
		shed += r.Shed
	}
	if sent != answered+shed+forwarded {
		t.Fatalf("cluster not conserved: sent %d, answered %d, shed %d, forwarded %d",
			sent, answered, shed, forwarded)
	}
	// 3 nodes at R=1: every node misses ~2/3 of keys, so the fabric
	// must have carried load. Under closed-loop pressure some origins
	// shed on deadline after the peer already admitted the forward, so
	// hop-by-hop conservation is the inequality here (the check
	// oracle's unloaded steady scenario pins the exact identity).
	if forwarded == 0 {
		t.Fatal("nothing rode the fabric")
	}
	if forwarded > fwdIn {
		t.Fatalf("forwarded %d > forwarded_in %d", forwarded, fwdIn)
	}
	if sum.MeanHops <= 0 || sum.MeanHops > 10 {
		t.Fatalf("mean hops %.2f outside (0, idlen]", sum.MeanHops)
	}
	if sum.ClientP99MS <= 0 {
		t.Fatalf("client p99 %.3fms", sum.ClientP99MS)
	}
}

func TestClusterTableShape(t *testing.T) {
	tab, err := ClusterTable(ClusterRunConfig{
		Nodes: 3, Replication: 1,
		ClientsPerNode: 2, RequestsPerClient: 30,
		Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	if out == "" {
		t.Fatal("empty table render")
	}
	if !strings.Contains(out, "Σ") {
		t.Fatalf("table lacks the total row:\n%s", out)
	}
	if !strings.Contains(out, "hops_mean") {
		t.Fatalf("table lacks the hops column:\n%s", out)
	}
}
