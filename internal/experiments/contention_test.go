package experiments

import (
	"strings"
	"testing"
)

func TestLatencyShape(t *testing.T) {
	rows, err := Latency(2, 6, []int{100, 800}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	byKey := map[string]LatencyRow{}
	for _, r := range rows {
		if r.MeanSlowdown < 1 {
			t.Errorf("%s/%d: slowdown %v below 1", r.Policy, r.Messages, r.MeanSlowdown)
		}
		byKey[r.Policy+"/"+itoa(r.Messages)] = r
	}
	// More load → more contention → higher slowdown, for every policy.
	for _, p := range []string{"first", "random", "least-loaded"} {
		low := byKey[p+"/100"]
		high := byKey[p+"/800"]
		if high.MeanSlowdown < low.MeanSlowdown {
			t.Errorf("%s: slowdown fell with load: %v → %v", p, low.MeanSlowdown, high.MeanSlowdown)
		}
	}
	// Balanced planning helps at high load.
	if byKey["least-loaded/800"].MeanLatency > byKey["first/800"].MeanLatency {
		t.Errorf("least-loaded latency %v above first %v at high load",
			byKey["least-loaded/800"].MeanLatency, byKey["first/800"].MeanLatency)
	}
}

func TestLatencyTableRenders(t *testing.T) {
	tbl, err := LatencyTable(2, 5, []int{50}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "slowdown") {
		t.Error("latency table missing header")
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var digits []byte
	for v > 0 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
		v /= 10
	}
	return string(digits)
}
