package experiments

import (
	"testing"
	"time"
)

func TestServeLoadSmall(t *testing.T) {
	rows, err := ServeLoad(ServeLoadConfig{
		D: 2, K: 8,
		Duration: 50 * time.Millisecond,
		Seed:     11,
	}, []float64{200, 400})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Sent != r.Answered+r.Degraded+r.Shed {
			t.Fatalf("row %+v not conserved", r)
		}
		if r.Sent == 0 {
			t.Fatalf("row %+v sent nothing", r)
		}
	}
}

func TestServeLoadTable(t *testing.T) {
	tab, err := ServeLoadTable(ServeLoadConfig{
		D: 2, K: 8,
		Duration: 50 * time.Millisecond,
	}, []float64{200})
	if err != nil {
		t.Fatal(err)
	}
	if out := tab.String(); out == "" {
		t.Fatal("empty table render")
	}
}
