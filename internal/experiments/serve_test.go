package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

func TestServeLoadSmall(t *testing.T) {
	rows, err := ServeLoad(ServeLoadConfig{
		D: 2, K: 8,
		Duration: 50 * time.Millisecond,
		Seed:     11,
	}, []float64{200, 400})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Sent != r.Answered+r.Degraded+r.Shed {
			t.Fatalf("row %+v not conserved", r)
		}
		if r.Sent == 0 {
			t.Fatalf("row %+v sent nothing", r)
		}
	}
}

func TestServeLoadTable(t *testing.T) {
	tab, err := ServeLoadTable(ServeLoadConfig{
		D: 2, K: 8,
		Duration: 50 * time.Millisecond,
	}, []float64{200})
	if err != nil {
		t.Fatal(err)
	}
	if out := tab.String(); out == "" {
		t.Fatal("empty table render")
	}
}

func TestFlightStormFreezes(t *testing.T) {
	snap, err := FlightStorm(ServeLoadConfig{
		D: 2, K: 8,
		Duration: 100 * time.Millisecond,
		Seed:     11,
	}, 16000)
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Frozen || snap.Trigger == nil {
		t.Fatalf("storm left recorder unfrozen: %+v", snap)
	}
	switch snap.Trigger.Name {
	case serve.TriggerShedSpike, serve.TriggerDegrade, serve.TriggerP99Deadline:
	default:
		t.Fatalf("unexpected trigger %q", snap.Trigger.Name)
	}
	if len(snap.Events) == 0 {
		t.Fatal("frozen postmortem retained no events")
	}
	if snap.Events[len(snap.Events)-1].Kind != obs.FlightTrigger {
		t.Fatalf("trigger not last in postmortem: %+v", snap.Events[len(snap.Events)-1])
	}
}

func TestFlightTableShape(t *testing.T) {
	tab, err := FlightTable(ServeLoadConfig{
		D: 2, K: 8,
		Duration: 100 * time.Millisecond,
		Seed:     7,
	}, 16000)
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	if out == "" {
		t.Fatal("empty table render")
	}
	if !strings.Contains(out, "trigger") {
		t.Fatalf("table lacks a trigger row:\n%s", out)
	}
}
