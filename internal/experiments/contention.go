package experiments

import (
	"repro/internal/network"
	"repro/internal/stats"
)

// LatencyRow is one point of E14: batch latency under link contention.
type LatencyRow struct {
	Policy       string
	Messages     int
	PlannedMax   int
	Rounds       int
	MeanLatency  float64
	P95Latency   int
	MeanSlowdown float64
}

// Latency sweeps offered load (batch sizes) through the
// store-and-forward contention engine for each wildcard planning
// policy on the bi-directional DN(d,k) with unit link capacity.
func Latency(d, k int, batches []int, seed int64) ([]LatencyRow, error) {
	var rows []LatencyRow
	for _, p := range []network.ContentionPolicy{network.PlanFirst{}, network.PlanRandom{}, network.PlanLeastLoaded{}} {
		for _, batch := range batches {
			c, err := network.NewContention(network.ContentionConfig{D: d, K: k, Policy: p, Seed: seed})
			if err != nil {
				return nil, err
			}
			if err := c.AddUniform(batch); err != nil {
				return nil, err
			}
			plannedMax := c.PlannedMaxLinkLoad()
			res, err := c.Run()
			if err != nil {
				return nil, err
			}
			rows = append(rows, LatencyRow{
				Policy:       p.Name(),
				Messages:     batch,
				PlannedMax:   plannedMax,
				Rounds:       res.Rounds,
				MeanLatency:  res.MeanLatency,
				P95Latency:   res.P95Latency,
				MeanSlowdown: res.MeanSlowdown,
			})
		}
	}
	return rows, nil
}

// LatencyTable renders E14.
func LatencyTable(d, k int, batches []int, seed int64) (*stats.Table, error) {
	rows, err := Latency(d, k, batches, seed)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("policy", "messages", "plannedMax", "rounds", "meanLatency", "p95", "slowdown")
	for _, r := range rows {
		t.AddRow(r.Policy, r.Messages, r.PlannedMax, r.Rounds, r.MeanLatency, r.P95Latency, r.MeanSlowdown)
	}
	return t, nil
}
