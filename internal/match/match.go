// Package match implements the string-matching machinery of Section 3.2
// of the paper: the Morris–Pratt failure function and Algorithm 3, which
// generalizes it to compute the matching functions
//
//	l_{i,j}(X,Y) = max{ s : s ≤ j, s ≤ k-i+1,
//	                    x_i…x_{i+s-1} = y_{j-s+1}…y_j }
//	r_{i,j}(X,Y) = max{ s : s ≤ i, s ≤ k-j+1,
//	                    x_{i-s+1}…x_i = y_j…y_{j+s-1} }
//
// (equations (8) and (9); indices are 1-based in the paper, 0-based
// here). l_{i,j} is the length of the longest substring of X starting
// at position i that matches a substring of Y terminating at position
// j; r is its mirror image. The two are related by reversal:
//
//	r_{i,j}(X,Y) = l_{k+1-i, k+1-j}(X̄, Ȳ)
//
// which is how RMatrix and RRow are implemented.
//
// The paper's Algorithm 3 (line 11) falls back with "h = l_{i,i+h-1}";
// the fallback must use the failure function of the pattern,
// c_{i,i+h-1} — the classical Morris–Pratt step — which is what this
// implementation does. The quadratic Naive* functions act as the
// reference oracle in tests.
package match

// FailureFunction computes the Morris–Pratt failure function of the
// pattern p: fail[t] is the length of the longest proper border of
// p[0..t] (a border is a string that is both a proper prefix and a
// suffix). This is c_{1,t+1} of the paper for the pattern p.
// The returned slice has len(p) entries; fail[0] is always 0.
func FailureFunction(p []byte) []int {
	fail := make([]int, len(p))
	failureInto(fail, p)
	return fail
}

// MatchRow is Algorithm 3: it scans text with the Morris–Pratt
// automaton of pattern and returns row[j] = the length of the longest
// prefix of pattern that is a suffix of text[0..j], for every j.
// With pattern = X[i..] and text = Y this is the row l_{i+1, ·}(X,Y).
// Runs in O(len(pattern) + len(text)) time.
func MatchRow(pattern, text []byte) []int {
	row := make([]int, len(text))
	if len(pattern) == 0 {
		return row
	}
	s := GetScratch()
	s.fail = grow(s.fail, len(pattern))
	matchRowInto(s.fail, row, pattern, text)
	PutScratch(s)
	return row
}

// LRow returns the row l_{i+1, ·}(X,Y) for the given 0-based start
// index i: out[j] = l_{i+1, j+1}(X,Y).
func LRow(x, y []byte, i int) []int {
	return MatchRow(x[i:], y)
}

// RRow returns the row r_{i+1, ·}(X,Y) for the given 0-based index i:
// out[j] = r_{i+1, j+1}(X,Y). The reversal identity
// r_{i,j}(X,Y) = l_{k+1-i, k+1-j}(X̄,Ȳ) is evaluated by index
// arithmetic on the original words — no reversed copies are
// materialized (matchRowRevInto).
func RRow(x, y []byte, i int) []int {
	out := make([]int, len(y))
	s := GetScratch()
	s.fail = grow(s.fail, i+1)
	matchRowRevInto(s.fail, out, x, i, y)
	PutScratch(s)
	return out
}

// LMatrix computes the full matrix L[i][j] = l_{i+1,j+1}(X,Y) in
// O(k²) time — the cost profile of the paper's Algorithm 2.
func LMatrix(x, y []byte) [][]int {
	m := make([][]int, len(x))
	for i := range m {
		m[i] = LRow(x, y, i)
	}
	return m
}

// RMatrix computes the full matrix R[i][j] = r_{i+1,j+1}(X,Y) in O(k²)
// time via the reversal identity, one reversed-index scan per row.
func RMatrix(x, y []byte) [][]int {
	m := make([][]int, len(x))
	for i := range m {
		m[i] = RRow(x, y, i)
	}
	return m
}

// Overlap returns the largest s such that the length-s suffix of x
// equals the length-s prefix of y — the quantity l of equation (2),
// equal to r_{k,1}(X,Y). Linear time: one Morris–Pratt scan of x with
// pattern y. This is the engine of Algorithm 1.
func Overlap(x, y []byte) int {
	// The overlap may not exceed either length; the scan caps at
	// len(y), and s ≤ len(x) holds because at most len(x) text
	// characters were consumed. Allocation-free via the pool.
	sc := GetScratch()
	s := sc.Overlap(x, y)
	PutScratch(sc)
	return s
}

// NaiveL computes l_{i+1,j+1}(X,Y) directly from definition (8) in
// O(k) per query; reference oracle for tests.
func NaiveL(x, y []byte, i, j int) int {
	maxS := j + 1
	if m := len(x) - i; m < maxS {
		maxS = m
	}
	for s := maxS; s >= 1; s-- {
		if eq(x[i:i+s], y[j-s+1:j+1]) {
			return s
		}
	}
	return 0
}

// NaiveR computes r_{i+1,j+1}(X,Y) directly from definition (9);
// reference oracle for tests.
func NaiveR(x, y []byte, i, j int) int {
	maxS := i + 1
	if m := len(y) - j; m < maxS {
		maxS = m
	}
	for s := maxS; s >= 1; s-- {
		if eq(x[i-s+1:i+1], y[j:j+s]) {
			return s
		}
	}
	return 0
}

// Find returns the 0-based start indices of every occurrence of
// pattern in text, using the Morris–Pratt automaton. An empty pattern
// matches nowhere. General substrate, also used by the embedding
// package to locate window occurrences in de Bruijn sequences.
func Find(pattern, text []byte) []int {
	if len(pattern) == 0 || len(pattern) > len(text) {
		return nil
	}
	var hits []int
	row := MatchRow(pattern, text)
	for j, h := range row {
		if h == len(pattern) {
			hits = append(hits, j-len(pattern)+1)
		}
	}
	return hits
}

// Borders returns every border length of p in decreasing order,
// starting with len(p) itself (every string borders itself); used by
// the sequence package for period analysis.
func Borders(p []byte) []int {
	if len(p) == 0 {
		return nil
	}
	fail := FailureFunction(p)
	out := []int{len(p)}
	for b := fail[len(p)-1]; b > 0; b = fail[b-1] {
		out = append(out, b)
	}
	return out
}

// Period returns the smallest period of p: the least q ≥ 1 such that
// p[t] == p[t+q] for all valid t. Computed as len(p) minus the longest
// proper border.
func Period(p []byte) int {
	if len(p) == 0 {
		return 0
	}
	fail := FailureFunction(p)
	return len(p) - fail[len(p)-1]
}

func eq(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
