package match

import "sync"

// Scratch holds the reusable working storage of the matching kernels:
// one failure table, two matching rows and a Z-array, each grown on
// demand and retained across calls. A Scratch makes every kernel in
// this package allocation-free after warm-up, which is what the §4
// remark ("the constant factors of our linear algorithms are low
// enough to make these algorithms of practical use") demands of the
// forwarding hot path. The zero value is ready to use. Not safe for
// concurrent use; give each goroutine its own Scratch (or use the
// package-level pool via the one-shot functions).
type Scratch struct {
	fail []int
	row  []int
	rrow []int
	z    []int
}

// scratchPool backs the one-shot package functions: they borrow a
// Scratch per call, so repeated one-shot calls stop allocating working
// storage once the pool is warm.
var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch borrows a Scratch from the package pool.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch returns a Scratch to the package pool. The caller must
// not use s, or any row previously returned by its methods, afterwards.
func PutScratch(s *Scratch) { scratchPool.Put(s) }

func grow(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// FailureFunction computes the Morris–Pratt failure function of p into
// scratch storage. The returned slice is valid until the next call on
// this Scratch.
func (s *Scratch) FailureFunction(p []byte) []int {
	s.fail = grow(s.fail, len(p))
	failureInto(s.fail, p)
	return s.fail
}

// failureInto fills fail[:len(p)] with the Morris–Pratt failure
// function of p; fail must have at least len(p) entries.
func failureInto(fail []int, p []byte) {
	h := 0
	if len(p) > 0 {
		fail[0] = 0
	}
	for t := 1; t < len(p); t++ {
		for h > 0 && p[h] != p[t] {
			h = fail[h-1]
		}
		if p[h] == p[t] {
			h++
		}
		fail[t] = h
	}
}

// matchRowInto runs the Morris–Pratt scan of text against pattern,
// writing the matching row into row[:len(text)] using fail (at least
// len(pattern) entries) as failure-table storage: the allocation-free
// core of Algorithm 3 shared by every call path in this package.
func matchRowInto(fail, row []int, pattern, text []byte) {
	if len(pattern) == 0 {
		for i := range row[:len(text)] {
			row[i] = 0
		}
		return
	}
	failureInto(fail, pattern)
	h := 0
	for j := 0; j < len(text); j++ {
		if h == len(pattern) {
			// Full pattern matched at the previous position; restart
			// from the border of the whole pattern (paper line 10).
			h = fail[len(pattern)-1]
		}
		for h > 0 && pattern[h] != text[j] {
			h = fail[h-1]
		}
		if pattern[h] == text[j] {
			h++
		}
		row[j] = h
	}
}

// matchRowRevInto computes the same matching row over the REVERSED
// words by index arithmetic, never materializing a reversed copy:
// with P[t] = x[i-t] (t = 0..i, the reversal of x[0..i]) and
// T[j] = y[len(y)-1-j], it writes out[len(y)-1-j] = the automaton
// state after consuming T[j]. By the reversal identity
// r_{i,j} = l_{k+1-i,k+1-j}(X̄,Ȳ), the filled out slice is exactly the
// R-row r_{i+1, ·}(X,Y). fail needs i+1 entries, out len(y).
func matchRowRevInto(fail, out []int, x []byte, i int, y []byte) {
	plen := i + 1
	h := 0
	fail[0] = 0
	for t := 1; t < plen; t++ {
		for h > 0 && x[i-h] != x[i-t] {
			h = fail[h-1]
		}
		if x[i-h] == x[i-t] {
			h++
		}
		fail[t] = h
	}
	n := len(y)
	h = 0
	for j := 0; j < n; j++ {
		c := y[n-1-j]
		if h == plen {
			h = fail[plen-1]
		}
		for h > 0 && x[i-h] != c {
			h = fail[h-1]
		}
		if x[i-h] == c {
			h++
		}
		out[n-1-j] = h
	}
}

// MatchRow is the scratch variant of the package-level MatchRow. The
// returned row aliases scratch storage and is valid until the next
// MatchRow/LRow call on this Scratch.
func (s *Scratch) MatchRow(pattern, text []byte) []int {
	s.fail = grow(s.fail, len(pattern))
	s.row = grow(s.row, len(text))
	matchRowInto(s.fail, s.row, pattern, text)
	return s.row
}

// LRow is the scratch variant of the package-level LRow: out[j] =
// l_{i+1, j+1}(X,Y). The returned row aliases scratch storage and is
// valid until the next MatchRow/LRow call on this Scratch.
func (s *Scratch) LRow(x, y []byte, i int) []int {
	return s.MatchRow(x[i:], y)
}

// RRow is the scratch variant of the package-level RRow: out[j] =
// r_{i+1, j+1}(X,Y), computed by the reversed-index scan (no reversed
// copies). The returned row aliases scratch storage distinct from
// LRow's, so one LRow and one RRow may be held simultaneously; it is
// valid until the next RRow call on this Scratch.
func (s *Scratch) RRow(x, y []byte, i int) []int {
	s.fail = grow(s.fail, i+1)
	s.rrow = grow(s.rrow, len(y))
	matchRowRevInto(s.fail, s.rrow, x, i, y)
	return s.rrow
}

// Algorithm3 is the scratch variant of the package-level Algorithm3.
// Both returned slices alias scratch storage and are valid until the
// next call on this Scratch.
func (s *Scratch) Algorithm3(x, y []byte, i1 int) (c []int, l []int) {
	k := len(x)
	s.fail = grow(s.fail, k)
	s.row = grow(s.row, k)
	algorithm3Into(s.fail, s.row, x, y, i1)
	return s.fail, s.row
}

// Overlap is the scratch variant of the package-level Overlap;
// allocation-free.
func (s *Scratch) Overlap(x, y []byte) int {
	if len(x) == 0 || len(y) == 0 {
		return 0
	}
	row := s.MatchRow(y, x)
	return row[len(x)-1]
}

// ZFunction is the scratch variant of the package-level ZFunction. The
// returned array aliases scratch storage and is valid until the next
// ZFunction call on this Scratch.
func (s *Scratch) ZFunction(b []byte) []int {
	s.z = grow(s.z, len(b))
	zFunctionInto(s.z, b)
	return s.z
}
