package match

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFailureFunctionKnown(t *testing.T) {
	cases := []struct {
		p    string
		want []int
	}{
		{"a", []int{0}},
		{"aa", []int{0, 1}},
		{"ab", []int{0, 0}},
		{"abab", []int{0, 0, 1, 2}},
		{"aabaa", []int{0, 1, 0, 1, 2}},
		{"abcabcab", []int{0, 0, 0, 1, 2, 3, 4, 5}},
		{"aaaa", []int{0, 1, 2, 3}},
	}
	for _, c := range cases {
		got := FailureFunction([]byte(c.p))
		if !intsEq(got, c.want) {
			t.Errorf("FailureFunction(%q) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestFailureFunctionIsLongestProperBorder(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 300; iter++ {
		p := randWord(rng, 2+rng.Intn(3), 1+rng.Intn(14))
		fail := FailureFunction(p)
		for tpos := range p {
			want := naiveBorder(p[:tpos+1])
			if fail[tpos] != want {
				t.Fatalf("fail[%d] of %v = %d, want %d", tpos, p, fail[tpos], want)
			}
		}
	}
}

// naiveBorder returns the longest proper border of p by brute force.
func naiveBorder(p []byte) int {
	for s := len(p) - 1; s >= 1; s-- {
		if bytesEq(p[:s], p[len(p)-s:]) {
			return s
		}
	}
	return 0
}

func TestMatchRowEmptyPattern(t *testing.T) {
	row := MatchRow(nil, []byte{0, 1, 0})
	if !intsEq(row, []int{0, 0, 0}) {
		t.Errorf("MatchRow(empty) = %v", row)
	}
}

func TestMatchRowKnown(t *testing.T) {
	// pattern "aba", text "ababa": suffix-of-text-prefix matches.
	row := MatchRow([]byte("aba"), []byte("ababa"))
	want := []int{1, 2, 3, 2, 3}
	if !intsEq(row, want) {
		t.Errorf("MatchRow = %v, want %v", row, want)
	}
}

func TestLRowAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 200; iter++ {
		k := 1 + rng.Intn(12)
		x := randWord(rng, 2+rng.Intn(3), k)
		y := randWord(rng, int(maxByte(x))+1, k)
		for i := 0; i < k; i++ {
			row := LRow(x, y, i)
			for j := 0; j < k; j++ {
				if want := NaiveL(x, y, i, j); row[j] != want {
					t.Fatalf("l_{%d,%d}(%v,%v) = %d, want %d", i+1, j+1, x, y, row[j], want)
				}
			}
		}
	}
}

func TestRRowAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 200; iter++ {
		k := 1 + rng.Intn(12)
		x := randWord(rng, 2+rng.Intn(3), k)
		y := randWord(rng, int(maxByte(x))+1, k)
		for i := 0; i < k; i++ {
			row := RRow(x, y, i)
			for j := 0; j < k; j++ {
				if want := NaiveR(x, y, i, j); row[j] != want {
					t.Fatalf("r_{%d,%d}(%v,%v) = %d, want %d", i+1, j+1, x, y, row[j], want)
				}
			}
		}
	}
}

func TestMatricesAgreeWithRows(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 50; iter++ {
		k := 1 + rng.Intn(10)
		x, y := randWord(rng, 2, k), randWord(rng, 2, k)
		lm, rm := LMatrix(x, y), RMatrix(x, y)
		for i := 0; i < k; i++ {
			if !intsEq(lm[i], LRow(x, y, i)) {
				t.Fatalf("LMatrix row %d mismatch", i)
			}
			if !intsEq(rm[i], RRow(x, y, i)) {
				t.Fatalf("RMatrix row %d mismatch", i)
			}
		}
	}
}

func TestMatchingFunctionBoundsRespected(t *testing.T) {
	// Definition (8): l_{i,j} ≤ j and l_{i,j} ≤ k-i+1 (1-based).
	rng := rand.New(rand.NewSource(6))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(15)
		x, y := randWord(r, 2, k), randWord(r, 2, k)
		lm := LMatrix(x, y)
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				if lm[i][j] > j+1 || lm[i][j] > k-i {
					return false
				}
			}
		}
		return true
	}
	_ = rng
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOverlapKnown(t *testing.T) {
	cases := []struct {
		x, y string
		want int
	}{
		{"0110", "0110", 4},
		{"0110", "1101", 3},
		{"0110", "1010", 2},
		{"0000", "1111", 0},
		{"10", "01", 1},
	}
	for _, c := range cases {
		if got := Overlap(digits(c.x), digits(c.y)); got != c.want {
			t.Errorf("Overlap(%s,%s) = %d, want %d", c.x, c.y, got, c.want)
		}
	}
}

func TestOverlapEqualsNaiveR(t *testing.T) {
	// Overlap = r_{k,1} (0-based: NaiveR(x, y, k-1, 0)).
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 500; iter++ {
		k := 1 + rng.Intn(16)
		x, y := randWord(rng, 2+rng.Intn(3), k), randWord(rng, 2, k)
		if got, want := Overlap(x, y), NaiveR(x, y, k-1, 0); got != want {
			t.Fatalf("Overlap(%v,%v) = %d, want %d", x, y, got, want)
		}
	}
}

func TestOverlapEmpty(t *testing.T) {
	if Overlap(nil, []byte{1}) != 0 || Overlap([]byte{1}, nil) != 0 {
		t.Error("Overlap with empty operand nonzero")
	}
}

func TestFind(t *testing.T) {
	hits := Find([]byte("aba"), []byte("abababa"))
	if !intsEq(hits, []int{0, 2, 4}) {
		t.Errorf("Find = %v", hits)
	}
	if Find([]byte("x"), []byte("abc")) != nil {
		t.Error("Find found absent pattern")
	}
	if Find(nil, []byte("abc")) != nil {
		t.Error("Find matched empty pattern")
	}
	if Find([]byte("abcd"), []byte("ab")) != nil {
		t.Error("Find matched pattern longer than text")
	}
}

func TestFindAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for iter := 0; iter < 300; iter++ {
		p := randWord(rng, 2, 1+rng.Intn(4))
		txt := randWord(rng, 2, 1+rng.Intn(20))
		got := Find(p, txt)
		var want []int
		for i := 0; i+len(p) <= len(txt); i++ {
			if bytesEq(txt[i:i+len(p)], p) {
				want = append(want, i)
			}
		}
		if !intsEq(got, want) {
			t.Fatalf("Find(%v,%v) = %v, want %v", p, txt, got, want)
		}
	}
}

func TestBorders(t *testing.T) {
	got := Borders([]byte("aabaabaa"))
	// borders of aabaabaa: itself (8), aabaa (5), aa (2), a (1).
	want := []int{8, 5, 2, 1}
	if !intsEq(got, want) {
		t.Errorf("Borders = %v, want %v", got, want)
	}
	if Borders(nil) != nil {
		t.Error("Borders(empty) non-nil")
	}
}

func TestPeriod(t *testing.T) {
	cases := []struct {
		p    string
		want int
	}{
		{"aaaa", 1}, {"abab", 2}, {"abcabc", 3}, {"abca", 3}, {"abcd", 4}, {"a", 1},
	}
	for _, c := range cases {
		if got := Period([]byte(c.p)); got != c.want {
			t.Errorf("Period(%q) = %d, want %d", c.p, got, c.want)
		}
	}
	if Period(nil) != 0 {
		t.Error("Period(empty) nonzero")
	}
}

func TestPeriodProperty(t *testing.T) {
	// p[t] == p[t+Period(p)] for all valid t.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randWord(r, 2+r.Intn(2), 1+r.Intn(20))
		q := Period(p)
		if q < 1 || q > len(p) {
			return false
		}
		for t := 0; t+q < len(p); t++ {
			if p[t] != p[t+q] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func randWord(rng *rand.Rand, base, k int) []byte {
	w := make([]byte, k)
	for i := range w {
		w[i] = byte(rng.Intn(base))
	}
	return w
}

func maxByte(s []byte) byte {
	var m byte
	for _, v := range s {
		if v > m {
			m = v
		}
	}
	if m < 1 {
		m = 1
	}
	return m
}

func digits(s string) []byte {
	out := make([]byte, len(s))
	for i := range s {
		out[i] = s[i] - '0'
	}
	return out
}

func intsEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func bytesEq(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
