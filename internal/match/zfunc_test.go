package match

import (
	"math/rand"
	"testing"
)

func TestZFunctionKnown(t *testing.T) {
	cases := []struct {
		s    string
		want []int
	}{
		{"", nil},
		{"a", []int{1}},
		{"aaaaa", []int{5, 4, 3, 2, 1}},
		{"aabaab", []int{6, 1, 0, 3, 1, 0}},
		{"abacaba", []int{7, 0, 1, 0, 3, 0, 1}},
	}
	for _, c := range cases {
		got := ZFunction([]byte(c.s))
		if len(c.want) == 0 && len(got) == 0 {
			continue
		}
		if !intsEq(got, c.want) {
			t.Errorf("Z(%q) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestZFunctionAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for iter := 0; iter < 400; iter++ {
		n := 1 + rng.Intn(24)
		s := make([]byte, n)
		for i := range s {
			s[i] = byte(rng.Intn(2 + rng.Intn(2)))
		}
		z := ZFunction(s)
		for i := range s {
			want := 0
			for i+want < n && s[want] == s[i+want] {
				want++
			}
			if z[i] != want {
				t.Fatalf("Z(%v)[%d] = %d, want %d", s, i, z[i], want)
			}
		}
	}
}

func TestOverlapZMatchesOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(132))
	for iter := 0; iter < 800; iter++ {
		k := 1 + rng.Intn(16)
		base := 2 + rng.Intn(3)
		x, y := randWord(rng, base, k), randWord(rng, base, k)
		if got, want := OverlapZ(x, y), Overlap(x, y); got != want {
			t.Fatalf("OverlapZ(%v,%v) = %d, Overlap = %d", x, y, got, want)
		}
	}
	if OverlapZ(nil, []byte{1}) != 0 || OverlapZ([]byte{1}, nil) != 0 {
		t.Error("empty operand overlap nonzero")
	}
}
