//go:build race

package match

// raceEnabled gates allocation-budget assertions: the race detector
// instruments sync.Pool (randomly dropping items) and adds shadow
// allocations, so AllocsPerRun numbers are not meaningful under -race.
const raceEnabled = true
