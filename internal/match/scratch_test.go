package match

import (
	"math/rand"
	"testing"
)

// TestScratchRowsMatchOneShot pins every scratch kernel to its
// one-shot sibling across seeded words, reusing ONE Scratch for the
// whole sweep so stale-buffer bugs (a previous, longer row leaking
// into a shorter one) would surface.
func TestScratchRowsMatchOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	var s Scratch
	for iter := 0; iter < 300; iter++ {
		d := 2 + rng.Intn(4)
		k := 1 + rng.Intn(24)
		x, y := randWord(rng, d, k), randWord(rng, d, k)
		for i := 0; i < k; i++ {
			if got, want := s.LRow(x, y, i), LRow(x, y, i); !intsEq(got, want) {
				t.Fatalf("Scratch.LRow(%v,%v,%d) = %v, want %v", x, y, i, got, want)
			}
			if got, want := s.RRow(x, y, i), RRow(x, y, i); !intsEq(got, want) {
				t.Fatalf("Scratch.RRow(%v,%v,%d) = %v, want %v", x, y, i, got, want)
			}
			for j := 0; j < k; j++ {
				if got, want := s.RRow(x, y, i)[j], NaiveR(x, y, i, j); got != want {
					t.Fatalf("Scratch.RRow(%v,%v,%d)[%d] = %d, NaiveR %d", x, y, i, j, got, want)
				}
			}
			gc, gl := s.Algorithm3(x, y, i+1)
			wc, wl := Algorithm3(x, y, i+1)
			if !intsEq(gc, wc) || !intsEq(gl, wl) {
				t.Fatalf("Scratch.Algorithm3(%v,%v,%d) = (%v,%v), want (%v,%v)", x, y, i+1, gc, gl, wc, wl)
			}
		}
		if got, want := s.Overlap(x, y), OverlapZ(x, y); got != want {
			t.Fatalf("Scratch.Overlap(%v,%v) = %d, want %d", x, y, got, want)
		}
		if got, want := s.ZFunction(x), ZFunction(x); !intsEq(got, want) {
			t.Fatalf("Scratch.ZFunction(%v) = %v, want %v", x, got, want)
		}
		if got, want := s.MatchRow(x, y), MatchRow(x, y); !intsEq(got, want) {
			t.Fatalf("Scratch.MatchRow(%v,%v) = %v, want %v", x, got, want, y)
		}
		if got, want := s.FailureFunction(x), FailureFunction(x); !intsEq(got, want) {
			t.Fatalf("Scratch.FailureFunction(%v) = %v, want %v", x, got, want)
		}
	}
}

// TestScratchRowsIndependent holds one LRow and one RRow at the same
// time — the documented aliasing contract (distinct buffers).
func TestScratchRowsIndependent(t *testing.T) {
	var s Scratch
	x := []byte{0, 1, 0, 1, 1}
	y := []byte{1, 1, 0, 1, 0}
	l := s.LRow(x, y, 1)
	r := s.RRow(x, y, 3)
	if !intsEq(l, LRow(x, y, 1)) {
		t.Errorf("LRow invalidated by RRow: %v, want %v", l, LRow(x, y, 1))
	}
	if !intsEq(r, RRow(x, y, 3)) {
		t.Errorf("RRow wrong: %v, want %v", r, RRow(x, y, 3))
	}
}

// TestScratchKernelsAllocFree pins the scratch kernels at zero
// steady-state allocations — the property the routing hot paths buy.
func TestScratchKernelsAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	rng := rand.New(rand.NewSource(72))
	x, y := randWord(rng, 2, 64), randWord(rng, 2, 64)
	var s Scratch
	if allocs := testing.AllocsPerRun(100, func() {
		s.LRow(x, y, 7)
		s.RRow(x, y, 7)
		s.Overlap(x, y)
		s.ZFunction(x)
	}); allocs > 0 {
		t.Errorf("scratch kernels allocate %v per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		Overlap(x, y)
	}); allocs > 0 {
		t.Errorf("one-shot Overlap allocates %v per run, want 0", allocs)
	}
	// One-shot rows keep their caller-owned-result contract: exactly
	// the returned slice is allocated once the pool is warm.
	if allocs := testing.AllocsPerRun(100, func() {
		RRow(x, y, 31)
	}); allocs > 1 {
		t.Errorf("one-shot RRow allocates %v per run, want ≤ 1", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		LRow(x, y, 31)
	}); allocs > 1 {
		t.Errorf("one-shot LRow allocates %v per run, want ≤ 1", allocs)
	}
}

// TestOneShotResultsAreCallerOwned pins that pooled scratch reuse can
// never alias two one-shot results.
func TestOneShotResultsAreCallerOwned(t *testing.T) {
	x := []byte{0, 1, 1, 0, 1}
	y := []byte{1, 0, 1, 1, 0}
	a := RRow(x, y, 2)
	cp := append([]int(nil), a...)
	_ = RRow(y, x, 4)
	_ = MatchRow(x, y)
	if !intsEq(a, cp) {
		t.Errorf("one-shot RRow result mutated by later calls: %v, want %v", a, cp)
	}
}
