package match

// Algorithm3 is a line-by-line transcription of the paper's Algorithm
// 3, computing the failure functions c_{i,i..k} of the pattern
// x_i…x_k and the matching-function row l_{i,1..k}(X,Y), with the
// paper's 1-based indices mapped to 0-based slices. Lines 1–8 build
// the failure table; lines 9–15 run the matcher.
//
// One repair, noted in DESIGN.md: the report's line 11 reads
// "h = l_{i,i+h-1}", indexing the matching function; the fallback must
// consult the *failure* function of the pattern, c_{i,i+h-1} — the
// classical Morris–Pratt step (and the quantity line 4 uses in the
// identical situation). With the literal l the algorithm reads matcher
// state as automaton state and produces wrong rows; the tests pin both
// facts (agreement of the repaired version with MatchRow, and a
// counter-example for the literal reading).
//
// MatchRow is the streaming equivalent used by the hot paths; this
// function exists to document fidelity and serves as another oracle.
func Algorithm3(x, y []byte, i1 int) (c []int, l []int) {
	c = make([]int, len(x))
	l = make([]int, len(x))
	algorithm3Into(c, l, x, y, i1)
	return c, l
}

// algorithm3Into is Algorithm3 writing into caller-provided storage
// (at least len(x) entries each); the scratch variant's kernel.
// c[j-1] holds c_{i,j} for j = i..k, entries before j = i are reset to
// zero; l[j-1] holds l_{i,j} for j = 1..k.
func algorithm3Into(c, l []int, x, y []byte, i1 int) {
	k := len(x)
	i := i1 // 1-based start index of the pattern x_i…x_k
	for t := 0; t < i-1; t++ {
		c[t] = 0 // unused entries, kept zero for the documented layout
	}

	// Line 1: c_{i,i} = 0.
	c[i-1] = 0
	// Lines 2–8: failure function of x_i…x_k.
	for j := i + 1; j <= k; j++ {
		h := c[j-2]                       // line 3: h = c_{i,j-1}
		for h > 0 && x[i+h-1] != x[j-1] { // line 4 guard (x_{i+h} ≠ x_j)
			h = c[i+h-2] // line 4: h = c_{i,i+h-1}
		}
		if h == 0 && x[i+h-1] != x[j-1] { // line 5
			c[j-1] = 0 // line 6
		} else {
			c[j-1] = h + 1 // line 7
		}
	}
	// Line 8: l_{i,1}.
	if x[i-1] == y[0] {
		l[0] = 1
	} else {
		l[0] = 0
	}
	// Lines 9–15: the matcher.
	for j := 2; j <= k; j++ {
		var h int
		if l[j-2] == k-i+1 { // line 10: full pattern previously matched
			h = c[k-1]
		} else {
			h = l[j-2]
		}
		for h > 0 && x[i+h-1] != y[j-1] { // line 11 (repaired: c, not l)
			h = c[i+h-2]
		}
		if h == 0 && x[i+h-1] != y[j-1] { // line 12
			l[j-1] = 0 // line 13
		} else {
			l[j-1] = h + 1 // line 14
		}
	}
}
