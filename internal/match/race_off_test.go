//go:build !race

package match

// See race_on_test.go.
const raceEnabled = false
