package match

// ZFunction computes the Z-array of s: z[i] is the length of the
// longest common prefix of s and s[i:], with z[0] = len(s). Linear
// time. A third, independent string-matching primitive used to
// cross-check the Morris–Pratt machinery (and available as a
// substrate in its own right).
func ZFunction(s []byte) []int {
	z := make([]int, len(s))
	zFunctionInto(z, s)
	return z
}

// zFunctionInto fills z[:len(s)] with the Z-array of s; the scratch
// variant's kernel.
func zFunctionInto(z []int, s []byte) {
	n := len(s)
	if n == 0 {
		return
	}
	z[0] = n
	l, r := 0, 0
	for i := 1; i < n; i++ {
		if i < r {
			if zi := z[i-l]; zi < r-i {
				z[i] = zi
				continue
			}
			z[i] = r - i
		} else {
			z[i] = 0 // the buffer may be reused scratch, not zeroed
		}
		for i+z[i] < n && s[z[i]] == s[i+z[i]] {
			z[i]++
		}
		if i+z[i] > r {
			l, r = i, i+z[i]
		}
	}
}

// OverlapZ computes the suffix(x)/prefix(y) overlap — the quantity l
// of equation (2) — via the Z-array of y ⧺ 0xFF ⧺ x. Independent of
// Overlap's Morris–Pratt scan; each is the other's oracle in tests.
func OverlapZ(x, y []byte) int {
	if len(x) == 0 || len(y) == 0 {
		return 0
	}
	s := make([]byte, 0, len(x)+len(y)+1)
	s = append(s, y...)
	s = append(s, 0xFF)
	s = append(s, x...)
	z := ZFunction(s)
	// Position p in the x-part corresponds to x-suffix x[p-len(y)-1:];
	// it is a suffix/prefix overlap of length s iff the Z-box reaches
	// the end of the string: z[p] == len(s) - p.
	for p := len(y) + 1; p < len(s); p++ {
		if z[p] == len(s)-p {
			return len(s) - p
		}
	}
	return 0
}
