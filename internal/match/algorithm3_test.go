package match

import (
	"math/rand"
	"testing"
)

func TestAlgorithm3MatchesStreamingImplementation(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for iter := 0; iter < 500; iter++ {
		k := 1 + rng.Intn(14)
		base := 2 + rng.Intn(3)
		x, y := randWord(rng, base, k), randWord(rng, base, k)
		for i := 1; i <= k; i++ {
			_, l := Algorithm3(x, y, i)
			want := LRow(x, y, i-1)
			for j := 0; j < k; j++ {
				if l[j] != want[j] {
					t.Fatalf("Algorithm3(%v,%v,i=%d): l[%d] = %d, want %d", x, y, i, j, l[j], want[j])
				}
			}
		}
	}
}

func TestAlgorithm3FailureTableIsBorders(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for iter := 0; iter < 300; iter++ {
		k := 1 + rng.Intn(12)
		x := randWord(rng, 2, k)
		y := randWord(rng, 2, k)
		for i := 1; i <= k; i++ {
			c, _ := Algorithm3(x, y, i)
			fail := FailureFunction(x[i-1:])
			for j := i; j <= k; j++ {
				if c[j-1] != fail[j-i] {
					t.Fatalf("c_{%d,%d} of %v = %d, want border %d", i, j, x, c[j-1], fail[j-i])
				}
			}
		}
	}
}

// TestPaperLine11LiteralIsWrong documents the transcription repair:
// running line 11's fallback through the matching function l instead
// of the failure function c either diverges (h need not decrease) or
// yields a wrong row. A witness exists within 4-digit binary inputs.
func TestPaperLine11LiteralIsWrong(t *testing.T) {
	found := false
	for n := 0; n < 1<<8 && !found; n++ {
		var xs, ys [4]byte
		for b := 0; b < 4; b++ {
			xs[b] = byte(n >> b & 1)
			ys[b] = byte(n >> (b + 4) & 1)
		}
		found = literalRowBroken(xs[:], ys[:])
	}
	if !found {
		t.Error("literal line 11 behaved correctly everywhere; DESIGN.md note would be wrong")
	}
}

// literalRowBroken runs the literal line-11 variant (i = 1) with a
// step guard and reports divergence or disagreement with the oracle.
func literalRowBroken(x, y []byte) bool {
	k := len(x)
	i := 1
	want := LRow(x, y, 0)
	c := make([]int, k)
	l := make([]int, k)
	for j := i + 1; j <= k; j++ {
		h := c[j-2]
		for h > 0 && x[i+h-1] != x[j-1] {
			h = c[i+h-2]
		}
		if h == 0 && x[i+h-1] != x[j-1] {
			c[j-1] = 0
		} else {
			c[j-1] = h + 1
		}
	}
	if x[i-1] == y[0] {
		l[0] = 1
	}
	for j := 2; j <= k; j++ {
		var h int
		if l[j-2] == k-i+1 {
			h = c[k-1]
		} else {
			h = l[j-2]
		}
		steps := 0
		for h > 0 && x[i+h-1] != y[j-1] {
			h = l[i+h-2] // the report's literal line 11
			steps++
			if steps > 4*k {
				return true // diverged: h does not decrease
			}
		}
		if h == 0 && x[i+h-1] != y[j-1] {
			l[j-1] = 0
		} else {
			l[j-1] = h + 1
		}
	}
	for j := range want {
		if l[j] != want[j] {
			return true
		}
	}
	return false
}

func TestAlgorithm3SingleCharacter(t *testing.T) {
	c, l := Algorithm3([]byte{1}, []byte{1}, 1)
	if c[0] != 0 || l[0] != 1 {
		t.Errorf("c=%v l=%v", c, l)
	}
	_, l = Algorithm3([]byte{1}, []byte{0}, 1)
	if l[0] != 0 {
		t.Errorf("l=%v", l)
	}
}
