package check

import "testing"

// TestClusterOracleClean runs the cluster conservation oracle at a
// reduced query volume and requires a clean verdict.
func TestClusterOracleClean(t *testing.T) {
	rep, err := Cluster(ClusterOptions{Seed: 1, Queries: 240})
	if err != nil {
		t.Fatalf("Cluster: %v", err)
	}
	if !rep.OK() {
		for _, f := range rep.Findings {
			t.Errorf("finding: %s", f)
		}
		t.Fatalf("cluster oracle not clean (%d findings, truncated=%v)", len(rep.Findings), rep.Truncated)
	}
	if rep.Checked == 0 {
		t.Fatal("oracle checked nothing")
	}
	if rep.Mode != "cluster" {
		t.Fatalf("mode %q", rep.Mode)
	}
}

// TestClusterOracleDeterministic pins the seeded reproducibility of
// the verdict.
func TestClusterOracleDeterministic(t *testing.T) {
	a, err := Cluster(ClusterOptions{Seed: 7, Queries: 120})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cluster(ClusterOptions{Seed: 7, Queries: 120})
	if err != nil {
		t.Fatal(err)
	}
	if a.Checked != b.Checked || len(a.Findings) != len(b.Findings) {
		t.Fatalf("same seed, different verdicts: %+v vs %+v", a, b)
	}
}
