package check

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/word"
)

// TestRoutesClean runs the exhaustive route oracle on a spread of
// small graphs, including the k=1 complete graph and the k≤2 edge
// cases from the saturated-sentinel audit.
func TestRoutesClean(t *testing.T) {
	for _, tc := range []struct{ d, k int }{
		{2, 1}, {2, 2}, {2, 3}, {2, 5}, {3, 1}, {3, 2}, {3, 3}, {4, 2}, {5, 2}, {7, 1}, {2, 7},
	} {
		rep, err := Routes(tc.d, tc.k, RoutesOptions{Seed: 1})
		if err != nil {
			t.Fatalf("Routes(%d,%d): %v", tc.d, tc.k, err)
		}
		if !rep.OK() {
			for _, f := range rep.Findings {
				t.Errorf("DG(%d,%d): %s", tc.d, tc.k, f)
			}
		}
		if rep.Sampled {
			t.Errorf("DG(%d,%d): sampled, want exhaustive", tc.d, tc.k)
		}
		n, _ := word.Count(tc.d, tc.k)
		if rep.Checked != n*n {
			t.Errorf("DG(%d,%d): checked %d pairs, want %d", tc.d, tc.k, rep.Checked, n*n)
		}
	}
}

// TestRoutesSampled exercises the seeded-sample branch, including
// sample sizes that don't divide into the per-source grouping (the
// remainder must be checked, not silently dropped).
func TestRoutesSampled(t *testing.T) {
	for _, pairs := range []int{256, 100, 65, 17} {
		rep, err := Routes(2, 6, RoutesOptions{Seed: 2, SampleAbove: 32, SamplePairs: pairs})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Sampled {
			t.Fatal("expected a sampled report above the threshold")
		}
		if rep.Checked != pairs {
			t.Fatalf("checked %d pairs, want %d", rep.Checked, pairs)
		}
		if !rep.OK() {
			t.Fatalf("findings on DG(2,6): %v", rep.Findings)
		}
	}
}

// TestRoutesDetectsCorruptPath proves the replay oracle fires: a path
// with a wrong digit, a wrong hop type, or a truncated tail must be
// reported, not silently accepted.
func TestRoutesDetectsCorruptPath(t *testing.T) {
	const d, k = 2, 4
	ug, err := graph.DeBruijn(graph.Undirected, d, k)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := graph.DeBruijn(graph.Directed, d, k)
	if err != nil {
		t.Fatal(err)
	}
	x := mustWord(t, d, "0110")
	y := mustWord(t, d, "1011")
	p, err := core.RouteUndirected(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) == 0 {
		t.Fatal("need a non-trivial path")
	}
	corrupt := func(mutate func(core.Path) core.Path) []Finding {
		f := newFindings(8)
		sc := newRouteScan(d, k, dg, ug, RoutesOptions{Seed: 3}, f, 0)
		if err := sc.openSource(x); err != nil {
			t.Fatal(err)
		}
		q := append(core.Path(nil), p...)
		sc.replay("alg2", ug, mutate(q), y, len(p))
		return f.list
	}

	if got := corrupt(func(q core.Path) core.Path { return q }); len(got) != 0 {
		t.Fatalf("pristine path reported: %v", got)
	}
	if got := corrupt(func(q core.Path) core.Path {
		q[0].Digit = 1 - q[0].Digit
		q[0].Wildcard = false
		return q
	}); len(got) == 0 {
		t.Error("flipped digit not reported")
	}
	if got := corrupt(func(q core.Path) core.Path { return q[:len(q)-1] }); len(got) == 0 {
		t.Error("truncated path not reported")
	} else if !strings.Contains(got[0].Oracle, "route-length") {
		t.Errorf("truncated path reported as %q, want a route-length finding", got[0].Oracle)
	}
	if got := corrupt(func(q core.Path) core.Path {
		q[0].Digit = byte(d)
		q[0].Wildcard = false
		return q
	}); len(got) == 0 {
		t.Error("out-of-base digit not reported")
	}
}

// TestRoutesDetectsSelfMove proves the edge-set replay rejects a
// phantom self-move: at a constant word the left shift by the same
// digit "moves" to the same vertex, and DG(d,k) has no self-loops.
func TestRoutesDetectsSelfMove(t *testing.T) {
	const d, k = 2, 3
	ug, err := graph.DeBruijn(graph.Undirected, d, k)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := graph.DeBruijn(graph.Directed, d, k)
	if err != nil {
		t.Fatal(err)
	}
	x := mustWord(t, d, "000")
	y := mustWord(t, d, "001")
	f := newFindings(8)
	sc := newRouteScan(d, k, dg, ug, RoutesOptions{Seed: 4}, f, 0)
	if err := sc.openSource(x); err != nil {
		t.Fatal(err)
	}
	// A fake 2-hop path whose first hop shifts 000 onto itself.
	fake := core.Path{{Type: core.TypeL, Digit: 0}, {Type: core.TypeL, Digit: 1}}
	sc.replay("fake", ug, fake, y, 2)
	if len(f.list) == 0 {
		t.Fatal("self-move path not reported")
	}
	if !strings.Contains(f.list[0].Oracle, "route-replay") {
		t.Fatalf("self-move reported as %q, want a route-replay finding", f.list[0].Oracle)
	}
}

// TestEnginesClean cross-checks the two engines on small graphs.
func TestEnginesClean(t *testing.T) {
	for _, tc := range []struct{ d, k int }{{2, 2}, {2, 4}, {3, 2}} {
		rep, err := Engines(tc.d, tc.k, EnginesOptions{Seed: 5, Messages: 200})
		if err != nil {
			t.Fatalf("Engines(%d,%d): %v", tc.d, tc.k, err)
		}
		if !rep.OK() {
			for _, f := range rep.Findings {
				t.Errorf("DN(%d,%d): %s", tc.d, tc.k, f)
			}
		}
		if rep.Checked != 400 { // 200 messages × two directionalities
			t.Errorf("DN(%d,%d): checked %d messages, want 400", tc.d, tc.k, rep.Checked)
		}
	}
}

// TestEnginesDetectsDivergence proves diffOutcomes fires on every
// field of an outcome.
func TestEnginesDetectsDivergence(t *testing.T) {
	x := mustWord(t, 2, "01")
	y := mustWord(t, 2, "10")
	base := outcome{src: x, dst: y, delivered: true, hops: 2}
	for _, tc := range []struct {
		name   string
		mutate func(*outcome)
	}{
		{"delivered", func(o *outcome) { o.delivered = false; o.dropReason = "site_failed" }},
		{"hops", func(o *outcome) { o.hops++ }},
		{"reason", func(o *outcome) { o.delivered = false; o.dropReason = "ttl_exceeded" }},
	} {
		f := newFindings(8)
		other := base
		tc.mutate(&other)
		diffOutcomes(2, 2, false, []outcome{base}, []outcome{base}, []outcome{other}, f)
		if len(f.list) != 1 {
			t.Errorf("%s divergence: got %d findings, want 1", tc.name, len(f.list))
		}
	}
	// Agreement must stay silent.
	f := newFindings(8)
	diffOutcomes(2, 2, false, []outcome{base}, []outcome{base}, []outcome{base}, f)
	if len(f.list) != 0 {
		t.Errorf("identical outcomes reported: %v", f.list)
	}
}

// TestInvariantsClean balances the books on small graphs.
func TestInvariantsClean(t *testing.T) {
	for _, tc := range []struct{ d, k int }{{2, 2}, {2, 4}, {3, 2}} {
		rep, err := Invariants(tc.d, tc.k, InvariantsOptions{Seed: 6, Messages: 200, Rounds: 40})
		if err != nil {
			t.Fatalf("Invariants(%d,%d): %v", tc.d, tc.k, err)
		}
		if !rep.OK() {
			for _, f := range rep.Findings {
				t.Errorf("DN(%d,%d): %s", tc.d, tc.k, f)
			}
		}
		if rep.Checked == 0 {
			t.Errorf("DN(%d,%d): no invariants asserted", tc.d, tc.k)
		}
	}
}

// TestInvariantsDetectImbalance proves balanceBooks fires on cooked
// books: a snapshot whose counters don't sum must be reported.
func TestInvariantsDetectImbalance(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("dn_messages_sent_total").Add(10)
	reg.Counter("dn_messages_delivered_total").Add(6)
	reg.Counter("dn_messages_dropped_total").Add(3) // 6+3 ≠ 10
	reg.Counter(obs.Label("dn_drops_total", "reason", "x")).Add(2)
	for i := 0; i < 6; i++ {
		reg.Histogram("dn_hops", nil).Observe(1)
	}
	iv := &invariantScan{d: 2, k: 2, n: 4, f: newFindings(8)}
	iv.balanceBooks("cooked", reg.Snapshot(),
		"dn_messages_sent_total", "dn_messages_delivered_total",
		"dn_messages_dropped_total", "dn_drops_total", "dn_hops", 10)
	// sent ≠ delivered+dropped AND dropped ≠ Σ by-reason.
	if len(iv.f.list) != 2 {
		t.Fatalf("cooked books: got %d findings, want 2: %v", len(iv.f.list), iv.f.list)
	}
}

// TestWorkloadSaltDistinct pins that scenarios whose names merely
// share a length (the old salt) still get distinct RNG streams.
func TestWorkloadSaltDistinct(t *testing.T) {
	iv := &invariantScan{d: 2, k: 3, opt: InvariantsOptions{Seed: 1, Messages: 16}}
	_, a := iv.workload("stepped/static-faults")
	_, b := iv.workload("stepped/midrun-faults")
	same := true
	for i := range a {
		if a[i].String() != b[i].String() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("scenarios with same-length names drew identical message plans")
	}
}

// TestReportOK pins the verdict semantics.
func TestReportOK(t *testing.T) {
	if ok := (Report{}).OK(); !ok {
		t.Error("empty report must be OK")
	}
	if ok := (Report{Findings: []Finding{{Oracle: "x", Detail: "y"}}}).OK(); ok {
		t.Error("report with findings must not be OK")
	}
	if ok := (Report{Truncated: true}).OK(); ok {
		t.Error("truncated report must not be OK")
	}
}

// TestFindingsCap pins the truncation behaviour.
func TestFindingsCap(t *testing.T) {
	f := newFindings(2)
	for i := 0; i < 5; i++ {
		f.addf("o", "finding %d", i)
	}
	if len(f.list) != 2 || !f.full() {
		t.Fatalf("cap not enforced: %d findings, full=%v", len(f.list), f.full())
	}
}

func mustWord(t *testing.T, d int, s string) word.Word {
	t.Helper()
	w, err := word.Parse(d, s)
	if err != nil {
		t.Fatal(err)
	}
	return w
}
