package check

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/internal/word"
)

// ClusterOptions parameterizes the cluster conservation oracle.
type ClusterOptions struct {
	// Seed drives node identifiers and workloads.
	Seed int64
	// Queries per scenario (0 means 600).
	Queries int
	// MaxFindings caps the findings per report (0 means 32).
	MaxFindings int
}

// Cluster boots seeded in-memory clusters — real nodes, real wire
// frames, channel-link transport — and re-derives the cluster-wide
// conservation laws the package documents:
//
//	per node and in sum:  sent = answered + degraded + shed + forwarded,
//	hop-by-hop, quiesced: Σ forwarded = Σ forwarded_in,
//	under churn:          Σ forwarded ≤ Σ forwarded_in,
//
// plus the serving contract around them: a cluster answers exactly
// what a single node answers (differential sample), forwards follow
// the Koorde fabric within the identifier-length hop bound, and a
// mid-run crash plus join loses no request — every client call still
// resolves to exactly one outcome.
//
// The identifier space is fixed at DG(2,10): cluster behavior does
// not vary with the query graph, so unlike the other modes this
// oracle runs once, not per (d,k).
func Cluster(opt ClusterOptions) (Report, error) {
	const idLen = 10
	rep := Report{Mode: "cluster", D: 2, K: idLen}
	if opt.Queries <= 0 {
		opt.Queries = 600
	}
	f := newFindings(opt.MaxFindings)
	cs := &clusterScan{opt: opt, idLen: idLen, f: f}
	for _, unit := range []func() error{cs.steady, cs.differential, cs.churn} {
		if err := unit(); err != nil {
			return rep, err
		}
		if f.full() {
			break
		}
	}
	rep.Checked = cs.checked
	rep.Findings = f.result()
	rep.Truncated = f.full()
	return rep, nil
}

type clusterScan struct {
	opt     ClusterOptions
	idLen   int
	f       *findings
	checked int
}

func (cs *clusterScan) assert(ok bool, format string, args ...any) {
	cs.checked++
	if !ok {
		cs.f.addf("cluster-conservation", format, args...)
	}
}

// harness boots a converged in-memory cluster for one scenario.
func (cs *clusterScan) harness(scenario string, nodes, replication int) (*cluster.Harness, error) {
	seed := cs.opt.Seed
	for _, c := range scenario {
		seed = seed*31 + int64(c)
	}
	return cluster.NewHarness(cluster.HarnessConfig{
		Nodes:       nodes,
		Seed:        seed,
		IDLen:       cs.idLen,
		Replication: replication,
		Serve: serve.Config{
			Shards: 4, QueueDepth: 512, CacheSize: 512,
			DefaultDeadline: 5 * time.Second,
		},
	})
}

// queries yields a seeded stream of scalar requests over DG(2,5).
func (cs *clusterScan) queries(scenario string, n int) []serve.Request {
	seed := cs.opt.Seed
	for _, c := range scenario {
		seed = seed*37 + int64(c)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]serve.Request, n)
	for i := range out {
		src := word.Random(2, 5, rng)
		dst := word.Random(2, 5, rng)
		mode := serve.Undirected
		if rng.Intn(2) == 1 {
			mode = serve.Directed
		}
		switch i % 3 {
		case 0:
			out[i] = serve.DistanceRequest(src, dst, mode)
		case 1:
			out[i] = serve.RouteRequest(src, dst, mode)
		default:
			out[i] = serve.NextHopRequest(src, dst, mode)
		}
	}
	return out
}

// steady drives a failure-free cluster and checks the exact
// identities after quiescing.
func (cs *clusterScan) steady() error {
	h, err := cs.harness("steady", 4, 1)
	if err != nil {
		return fmt.Errorf("check: cluster steady: %w", err)
	}
	defer h.Close()
	c, err := h.Client(0)
	if err != nil {
		return err
	}
	defer c.Close()
	ctx := context.Background()
	for _, req := range cs.queries("steady", cs.opt.Queries) {
		resp, err := c.Do(ctx, req)
		if err != nil {
			return fmt.Errorf("check: cluster steady: %w", err)
		}
		cs.assert(resp.Status == serve.StatusOK, "steady: %s %s→%s answered %q (%s%s)",
			req.Kind, req.Src, req.Dst, resp.Status, resp.ShedReason, resp.Error)
		if cs.f.full() {
			return nil
		}
	}
	agg := h.Counts()
	for i, per := range agg.PerNode {
		cs.assert(per.Conserved(), "steady: node %d identity broken: %+v", i, per)
	}
	cs.assert(agg.Conserved(), "steady: cluster identity broken: %+v", agg)
	cs.assert(agg.HopConserved(), "steady: forwarded %d ≠ forwarded_in %d in a quiesced failure-free run",
		agg.Forwarded, agg.ForwardedIn)
	cs.assert(agg.Forwarded > 0, "steady: nothing rode the fabric; the scenario proved nothing")
	var hopSum, hopCount int64
	for _, n := range h.Live() {
		s, c := n.ForwardHopStats()
		hopSum, hopCount = hopSum+s, hopCount+c
	}
	if hopCount > 0 {
		mean := float64(hopSum) / float64(hopCount)
		cs.assert(mean <= float64(cs.idLen), "steady: mean forward hops %.2f exceeds identifier length %d",
			mean, cs.idLen)
	}
	return nil
}

// differential compares a sample of cluster answers against a
// single-node server.
func (cs *clusterScan) differential() error {
	h, err := cs.harness("differential", 3, 1)
	if err != nil {
		return fmt.Errorf("check: cluster differential: %w", err)
	}
	defer h.Close()
	single := serve.NewServer(serve.Config{Shards: 2, QueueDepth: 512, CacheSize: 512, DefaultDeadline: 5 * time.Second})
	defer single.Close()
	oracle, err := single.SelfClient()
	if err != nil {
		return err
	}
	defer oracle.Close()
	c, err := h.Client(0)
	if err != nil {
		return err
	}
	defer c.Close()
	ctx := context.Background()
	canon := func(r serve.Response) string {
		return fmt.Sprintf("%s|%s|%d|%v|%s|%v|%v|%s|%s",
			r.Status, r.Degrade, r.Distance, r.Path, r.NextHop, r.Done, r.Bounds, r.ShedReason, r.Error)
	}
	for _, req := range cs.queries("differential", cs.opt.Queries/2) {
		want, err := oracle.Do(ctx, req)
		if err != nil {
			return err
		}
		got, err := c.Do(ctx, req)
		if err != nil {
			return err
		}
		cs.assert(canon(got) == canon(want), "differential: %s %s %s→%s: cluster %s, single %s",
			req.Kind, req.Mode, req.Src, req.Dst, canon(got), canon(want))
		if cs.f.full() {
			return nil
		}
	}
	return nil
}

// churn drives load through a crash and a join and checks that the
// identities still balance exactly and no request is lost.
func (cs *clusterScan) churn() error {
	h, err := cs.harness("churn", 5, 2)
	if err != nil {
		return fmt.Errorf("check: cluster churn: %w", err)
	}
	defer h.Close()
	var clients []*serve.Client
	for i := 0; i < 2; i++ {
		c, err := h.Client(i)
		if err != nil {
			return err
		}
		defer c.Close()
		clients = append(clients, c)
	}
	reqs := cs.queries("churn", cs.opt.Queries)
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		responses int
		doErr     error
		churnOnce sync.Once
	)
	killedCh := make(chan serve.Counts, 1)
	const drivers = 4
	per := len(reqs) / drivers
	for d := 0; d < drivers; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			c := clients[d%len(clients)]
			for i, req := range reqs[d*per : (d+1)*per] {
				if d == 0 && i == per/3 {
					churnOnce.Do(func() {
						counts, kerr := h.Kill(4)
						if kerr == nil {
							killedCh <- counts
							_, kerr = h.Join()
						}
						if kerr != nil {
							mu.Lock()
							doErr = kerr
							mu.Unlock()
						}
					})
				}
				resp, err := c.Do(context.Background(), req)
				if err != nil {
					mu.Lock()
					doErr = err
					mu.Unlock()
					return
				}
				_ = resp
				mu.Lock()
				responses++
				mu.Unlock()
			}
		}(d)
	}
	wg.Wait()
	if doErr != nil {
		return fmt.Errorf("check: cluster churn: %w", doErr)
	}
	killed := <-killedCh
	cs.assert(killed.Conserved(), "churn: killed node identity broken: %+v", killed)
	agg := h.Counts(killed)
	for i, p := range agg.PerNode {
		cs.assert(p.Conserved(), "churn: node %d identity broken: %+v", i, p)
	}
	cs.assert(agg.Conserved(), "churn: cluster identity broken: %+v", agg)
	cs.assert(agg.Forwarded <= agg.ForwardedIn,
		"churn: more forwarded outcomes (%d) than admitted forwards (%d)", agg.Forwarded, agg.ForwardedIn)
	cs.assert(responses == drivers*per, "churn: %d responses for %d requests", responses, drivers*per)
	return nil
}
