package check

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/word"
)

// RoutesOptions parameterizes the route oracle.
type RoutesOptions struct {
	// Seed drives pair sampling and the random wildcard chooser.
	Seed int64
	// SampleAbove is the vertex count N above which the pair set is a
	// seeded sample instead of exhaustive. 0 means 4096 (the paper-scale
	// bound the CI sweep checks exhaustively).
	SampleAbove int
	// SamplePairs is the sample size when sampling. 0 means 4096.
	SamplePairs int
	// DistanceStride thins the explicit distance-function checks
	// (UndirectedDistance, Corollary 4, the linear-tree evaluation) to
	// every stride-th pair on graphs above 1024 vertices; the route
	// length checks — which pin all three path constructions to BFS on
	// every pair — are never thinned. 0 means 16.
	DistanceStride int
	// MaxFindings caps the findings per report. 0 means 32.
	MaxFindings int
	// Workers sets the scan parallelism. ≤ 1 runs the historical
	// sequential scan bit-for-bit (use 1 to reproduce the E19 wall-clock
	// rows); above 1 the pair set is sharded by source across a worker
	// pool, and the merged verdict is identical for every parallel
	// worker count — shards are self-contained and merged in source
	// order. On a clean tree the parallel verdict also matches the
	// sequential one (same Checked, same empty findings); when findings
	// exist the two modes may sample different random wildcard digits
	// and stop at different points, so reproduce findings with the mode
	// that found them.
	Workers int
}

func (o *RoutesOptions) defaults() {
	if o.SampleAbove == 0 {
		o.SampleAbove = 4096
	}
	if o.SamplePairs == 0 {
		o.SamplePairs = 4096
	}
	if o.DistanceStride <= 0 {
		o.DistanceStride = 16
	}
}

// Routes runs the route oracle on DG(d,k), both directed and
// undirected: every checked pair must satisfy
//
//	DirectedDistance == BFS, and the Algorithm 1 path replays through
//	the directed graph in exactly that many arcs;
//
//	len(RouteUndirected) == len(RouteUndirectedLinear) ==
//	len(Router.Route) == BFS, and each path replays through the
//	undirected graph in exactly that many edges under every wildcard
//	chooser (digit 0, digit d-1, and seeded-random — the resolutions
//	the engines use);
//
//	the three closed-form undirected distance evaluations (Theorem 2
//	quadratic, Corollary 4, linear tree) equal BFS.
func Routes(d, k int, opt RoutesOptions) (Report, error) {
	opt.defaults()
	rep := Report{Mode: "routes", D: d, K: k}
	n, err := word.Count(d, k)
	if err != nil {
		return rep, fmt.Errorf("check: DG(%d,%d): %w", d, k, err)
	}
	dg, err := graph.DeBruijn(graph.Directed, d, k)
	if err != nil {
		return rep, fmt.Errorf("check: %w", err)
	}
	ug, err := graph.DeBruijn(graph.Undirected, d, k)
	if err != nil {
		return rep, fmt.Errorf("check: %w", err)
	}
	if opt.Workers > 1 {
		return routesParallel(rep, d, k, n, dg, ug, opt)
	}
	f := newFindings(opt.MaxFindings)
	sc := newRouteScan(d, k, dg, ug, opt, f, 0)

	if n > opt.SampleAbove {
		rep.Sampled = true
		rng := rand.New(rand.NewSource(opt.Seed))
		// Group sampled pairs by source so each source pays one BFS;
		// the last source absorbs the division remainder so exactly
		// SamplePairs pairs are checked.
		perSource := 64
		sources := opt.SamplePairs / perSource
		rem := opt.SamplePairs % perSource
		if sources < 1 {
			sources, perSource, rem = 1, opt.SamplePairs, 0
		}
		for s := 0; s < sources && !f.full(); s++ {
			x := word.Random(d, k, rng)
			if err := sc.openSource(x); err != nil {
				return rep, err
			}
			pairs := perSource
			if s == sources-1 {
				pairs += rem
			}
			for t := 0; t < pairs && !f.full(); t++ {
				sc.checkPair(word.Random(d, k, rng))
				rep.Checked++
			}
		}
	} else {
		var scanErr error // openSource/inner failures escape the closures here
		if _, err := word.ForEach(d, k, func(x word.Word) bool {
			if err := sc.openSource(x); err != nil {
				scanErr = err
				return false
			}
			_, inner := word.ForEach(d, k, func(y word.Word) bool {
				sc.checkPair(y)
				rep.Checked++
				return !f.full()
			})
			if inner != nil {
				scanErr = fmt.Errorf("check: %w", inner)
				return false
			}
			return !f.full()
		}); err != nil {
			return rep, fmt.Errorf("check: %w", err)
		}
		if scanErr != nil {
			return rep, scanErr
		}
	}
	rep.Findings = f.result()
	rep.Truncated = f.full()
	return rep, nil
}

// routeScan holds the per-graph state of one Routes run: the two
// explicit graphs, the reusable Router, the rank-based replayer, and
// the BFS rows of the current source.
type routeScan struct {
	d, k     int
	dg, ug   *graph.Graph
	router   *core.Router
	rng      *rand.Rand
	opt      RoutesOptions
	f        *findings
	checked  int
	x        word.Word
	xv       int
	distDir  []int // BFS row from x in the directed graph
	distUndi []int // BFS row from x in the undirected graph
}

func newRouteScan(d, k int, dg, ug *graph.Graph, opt RoutesOptions, f *findings, salt int64) *routeScan {
	return &routeScan{
		d: d, k: k, dg: dg, ug: ug,
		router: core.NewRouter(k),
		rng:    rand.New(rand.NewSource((opt.Seed ^ 0x1e3779b97f4a7c15) + salt)),
		opt:    opt, f: f,
	}
}

// routesParallel shards the pair set by source: one self-contained
// shard per source (exhaustive mode) or per sampled source group,
// each with its own findings accumulator, Router, scratch and RNG
// stream, merged back in source order. The shard decomposition is
// fixed by the options alone, so the verdict does not depend on the
// worker count or on goroutine scheduling.
func routesParallel(rep Report, d, k, n int, dg, ug *graph.Graph, opt RoutesOptions) (Report, error) {
	if n > opt.SampleAbove {
		rep.Sampled = true
		perSource := 64
		sources := opt.SamplePairs / perSource
		rem := opt.SamplePairs % perSource
		if sources < 1 {
			sources, perSource, rem = 1, opt.SamplePairs, 0
		}
		results := make([]shardResult, sources)
		runShards(opt.Workers, sources, func(s int) {
			results[s] = routesSampledShard(d, k, dg, ug, opt, s, sources, perSource, rem)
		})
		err := mergeShards(&rep, results, opt.MaxFindings)
		return rep, err
	}
	results := make([]shardResult, n)
	runShards(opt.Workers, n, func(s int) {
		results[s] = routesSourceShard(d, k, dg, ug, opt, uint64(s))
	})
	err := mergeShards(&rep, results, opt.MaxFindings)
	return rep, err
}

// routesSourceShard checks every pair with the source of the given
// rank — one BFS, one full target sweep.
func routesSourceShard(d, k int, dg, ug *graph.Graph, opt RoutesOptions, rank uint64) (res shardResult) {
	f := newFindings(opt.MaxFindings)
	sc := newRouteScan(d, k, dg, ug, opt, f, int64(rank)+1)
	x, err := word.Unrank(d, k, rank)
	if err != nil {
		res.err = fmt.Errorf("check: %w", err)
		return res
	}
	if err := sc.openSource(x); err != nil {
		res.err = err
		return res
	}
	if _, err := word.ForEach(d, k, func(y word.Word) bool {
		sc.checkPair(y)
		res.checked++
		return !f.full()
	}); err != nil {
		res.err = fmt.Errorf("check: %w", err)
		return res
	}
	res.findings, res.full = f.result(), f.full()
	return res
}

// routesSampledShard checks one sampled source group: the s-th source
// word and its perSource seeded targets (the last group absorbs the
// division remainder so the shards jointly check exactly SamplePairs
// pairs, as the sequential sampler does).
func routesSampledShard(d, k int, dg, ug *graph.Graph, opt RoutesOptions, s, sources, perSource, rem int) (res shardResult) {
	f := newFindings(opt.MaxFindings)
	sc := newRouteScan(d, k, dg, ug, opt, f, int64(s)+1)
	rng := rand.New(rand.NewSource(opt.Seed + int64(s)*0x2545F4914F6CDD1D))
	x := word.Random(d, k, rng)
	if err := sc.openSource(x); err != nil {
		res.err = err
		return res
	}
	pairs := perSource
	if s == sources-1 {
		pairs += rem
	}
	for t := 0; t < pairs && !f.full(); t++ {
		sc.checkPair(word.Random(d, k, rng))
		res.checked++
	}
	res.findings, res.full = f.result(), f.full()
	return res
}

// openSource fixes the pair source and computes its BFS rows.
func (sc *routeScan) openSource(x word.Word) error {
	sc.x = x
	sc.xv = graph.DeBruijnVertex(x)
	var err error
	if sc.distDir, err = sc.dg.BFSFrom(sc.xv); err != nil {
		return fmt.Errorf("check: %w", err)
	}
	if sc.distUndi, err = sc.ug.BFSFrom(sc.xv); err != nil {
		return fmt.Errorf("check: %w", err)
	}
	return nil
}

// checkPair runs the full oracle battery on the pair (sc.x, y).
func (sc *routeScan) checkPair(y word.Word) {
	x, f := sc.x, sc.f
	yv := graph.DeBruijnVertex(y)
	sc.checked++

	// Directed: Property 1 and Algorithm 1 against BFS.
	wantDir := sc.distDir[yv]
	dd, err := core.DirectedDistance(x, y)
	if err != nil {
		sc.fail(err)
		return
	}
	if dd != wantDir {
		f.addf("directed-distance", "DG(%d,%d) D(%v,%v) = %d, BFS %d", sc.d, sc.k, x, y, dd, wantDir)
	}
	p1, err := core.RouteDirected(x, y)
	if err != nil {
		sc.fail(err)
		return
	}
	if !p1.OnlyLeftShifts() {
		f.addf("directed-route-shape", "DG(%d,%d) %v→%v: Algorithm 1 path %v uses a type-R hop", sc.d, sc.k, x, y, p1)
	}
	sc.replay("alg1", sc.dg, p1, y, wantDir)

	// Undirected: Theorem 2 and Algorithms 2/4 against BFS.
	wantUndi := sc.distUndi[yv]
	p2, err := core.RouteUndirected(x, y)
	if err != nil {
		sc.fail(err)
		return
	}
	p4, err := core.RouteUndirectedLinear(x, y)
	if err != nil {
		sc.fail(err)
		return
	}
	pr, err := sc.router.Route(x, y)
	if err != nil {
		sc.fail(err)
		return
	}
	sc.replay("alg2", sc.ug, p2, y, wantUndi)
	sc.replay("alg4", sc.ug, p4, y, wantUndi)
	sc.replay("router", sc.ug, pr, y, wantUndi)

	// Explicit distance evaluations (route lengths already pin the
	// constructions; these pin the standalone closed forms). Thinned on
	// big graphs, where they would otherwise dominate the sweep.
	if sc.ug.NumVertices() > 1024 && sc.checked%sc.opt.DistanceStride != 0 {
		return
	}
	quad, err := core.UndirectedDistance(x, y)
	if err != nil {
		sc.fail(err)
		return
	}
	lin, err := core.UndirectedDistanceLinear(x, y)
	if err != nil {
		sc.fail(err)
		return
	}
	cor, err := core.UndirectedDistanceCorollary(x, y)
	if err != nil {
		sc.fail(err)
		return
	}
	rd, err := sc.router.Distance(x, y)
	if err != nil {
		sc.fail(err)
		return
	}
	if quad != wantUndi || lin != wantUndi || cor != wantUndi || rd != wantUndi {
		f.addf("undirected-distance",
			"DG(%d,%d) D(%v,%v): quadratic %d, linear %d, corollary %d, router %d, BFS %d",
			sc.d, sc.k, x, y, quad, lin, cor, rd, wantUndi)
	}
}

// fail records a routing call that returned a hard error — itself a
// divergence (the oracle inputs are all valid words of one DG(d,k)) —
// without aborting the rest of the scan.
func (sc *routeScan) fail(err error) {
	sc.f.addf("error", "%v", err)
}

// replay walks p from sc.x through g and verifies it reaches y in
// exactly want real link crossings. Paths with wildcard hops are
// replayed once per chooser the engines use: digit 0 (PolicyFirst and
// the cluster default), digit d-1, and a seeded random digit
// (PolicyRandom / Cluster.RandomWildcard).
func (sc *routeScan) replay(alg string, g *graph.Graph, p core.Path, y word.Word, want int) {
	if len(p) != want {
		sc.f.addf(kindOracle(g, "route-length"),
			"DG(%d,%d) %v→%v: %s path %v has %d hops, BFS distance %d",
			sc.d, sc.k, sc.x, y, alg, p, len(p), want)
		return
	}
	if !p.HasWildcard() {
		sc.replayConcrete(alg, "concrete", g, p, y, func(int) byte { return 0 })
		return
	}
	sc.replayConcrete(alg, "chooser=zero", g, p, y, func(int) byte { return 0 })
	sc.replayConcrete(alg, "chooser=max", g, p, y, func(int) byte { return byte(sc.d - 1) })
	sc.replayConcrete(alg, "chooser=random", g, p, y, func(int) byte { return byte(sc.rng.Intn(sc.d)) })
}

// replayConcrete is the hop-by-hop walk on vertex ranks: rank
// arithmetic implements both shift moves in O(1) without allocating,
// and every crossing is checked against the explicit edge set — which
// catches phantom self-moves (self loops are removed from DG(d,k)) as
// well as outright non-edges. choose resolves the i-th hop's wildcard.
func (sc *routeScan) replayConcrete(alg, how string, g *graph.Graph, p core.Path, y word.Word, choose func(i int) byte) {
	d64, n64 := uint64(sc.d), uint64(g.NumVertices())
	hi := n64 / d64 // d^(k-1)
	cur := uint64(sc.xv)
	for i, h := range p {
		digit := h.Digit
		if h.Wildcard {
			digit = choose(i)
		}
		if uint64(digit) >= d64 {
			sc.f.addf(kindOracle(g, "route-digit"),
				"DG(%d,%d) %v→%v: %s path %v hop %d digit %d outside base %d",
				sc.d, sc.k, sc.x, y, alg, p, i, digit, sc.d)
			return
		}
		var next uint64
		switch h.Type {
		case core.TypeL:
			next = (cur*d64)%n64 + uint64(digit)
		case core.TypeR:
			next = uint64(digit)*hi + cur/d64
		default:
			sc.f.addf(kindOracle(g, "route-hop-type"),
				"DG(%d,%d) %v→%v: %s path %v hop %d has invalid type", sc.d, sc.k, sc.x, y, alg, p, i)
			return
		}
		if !g.HasEdge(int(cur), int(next)) {
			sc.f.addf(kindOracle(g, "route-replay"),
				"DG(%d,%d) %v→%v: %s path %v (%s) hop %d crosses %s→%s, not a link of the graph",
				sc.d, sc.k, sc.x, y, alg, p, how, i, sc.label(cur), sc.label(next))
			return
		}
		cur = next
	}
	if cur != uint64(graph.DeBruijnVertex(y)) {
		sc.f.addf(kindOracle(g, "route-endpoint"),
			"DG(%d,%d) %v→%v: %s path %v (%s) ends at %s", sc.d, sc.k, sc.x, y, alg, p, how, sc.label(cur))
	}
}

func (sc *routeScan) label(v uint64) string {
	w, err := word.Unrank(sc.d, sc.k, v)
	if err != nil {
		return fmt.Sprintf("#%d", v)
	}
	return w.String()
}

func kindOracle(g *graph.Graph, suffix string) string {
	if g.Kind() == graph.Directed {
		return "directed-" + suffix
	}
	return "undirected-" + suffix
}
