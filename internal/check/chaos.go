package check

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/word"
)

// ChaosOptions parameterizes the adversarial-serving oracle.
type ChaosOptions struct {
	// Seed drives the chaos schedules and workloads; a fixed seed makes
	// the whole sweep — fault timing included — reproducible, and the
	// verdict byte-identical across runs.
	Seed int64
	// Requests per grid cell (0 means 300).
	Requests int
	// MaxFindings caps the findings per report (0 means 32).
	MaxFindings int
}

// Chaos sweeps a grid of workload shapes × fault schedules through the
// ChaosTransport and re-derives the serving contract under each cell:
//
//   - every admitted request resolves to exactly one labelled outcome
//     (sent = answered + degraded + shed, exactly, after drain), and
//     the client-side ledger balances too;
//   - no answer lies: a full-fidelity or distance-degraded response
//     matches a clean engine exactly, a bounds-degraded response
//     brackets the true distance, and a cached answer is never
//     degraded;
//   - the process drains: once the load and the server are gone, the
//     goroutine count returns to its pre-cell baseline — a wedged
//     writer or a parked reader is a leak, not an accident.
//
// The grid crosses four load shapes (uniform closed-loop, Zipf+hotspot
// skew, a flash-crowd rate schedule, a batch/scalar mix) with four
// fault schedules (latency+jitter, drop+corrupt, sever-mid-frame,
// slow-reader throttling). Two cluster cells extend the sweep to the
// fabric: chaos on every link of a live cluster (outcome conservation
// stays exact per node; the hop identity relaxes to Σ forwarded ≤
// Σ forwarded_in), and a churn storm — a correlated kill burst plus
// joins under load on clean links — where the same relaxed identities
// must hold with the victims' final counts folded in.
//
// Serving behavior does not vary with the query graph, so like the
// cluster oracle this mode runs once on DG(2,8), not per (d,k). Every
// cell contributes a fixed number of assertions, so Checked — and a
// clean Report — is deterministic for a fixed seed.
func Chaos(opt ChaosOptions) (Report, error) {
	rep := Report{Mode: "chaos", D: 2, K: 8}
	if opt.Requests <= 0 {
		opt.Requests = 300
	}
	f := newFindings(opt.MaxFindings)
	x := &chaosScan{opt: opt, f: f}
	for _, unit := range []func() error{x.grid, x.fabric, x.storm} {
		if err := unit(); err != nil {
			return rep, err
		}
		if f.full() {
			break
		}
	}
	rep.Checked = x.checked
	rep.Findings = f.result()
	rep.Truncated = f.full()
	return rep, nil
}

type chaosScan struct {
	opt     ChaosOptions
	f       *findings
	checked int
}

func (x *chaosScan) assert(ok bool, format string, args ...any) {
	x.checked++
	if !ok {
		x.f.addf("chaos-serving", format, args...)
	}
}

// cellSeed derives a per-cell seed so each cell's chaos and workload
// are independent but reproducible.
func (x *chaosScan) cellSeed(name string) int64 {
	seed := x.opt.Seed
	for _, c := range name {
		seed = seed*31 + int64(c)
	}
	return seed
}

// chaosShape is one workload shape: a mutation of the base LoadConfig.
type chaosShape struct {
	name  string
	apply func(cfg *serve.LoadConfig, requests int)
}

// chaosSched is one fault schedule (Seed filled per cell).
type chaosSched struct {
	name string
	cfg  serve.ChaosConfig
}

func chaosShapes() []chaosShape {
	return []chaosShape{
		{"uniform", func(cfg *serve.LoadConfig, n int) {
			cfg.RequestsPerClient = n / cfg.Clients
		}},
		{"zipf-hotspot", func(cfg *serve.LoadConfig, n int) {
			cfg.RequestsPerClient = n / cfg.Clients
			cfg.ZipfS = 1.5
			cfg.HotspotFrac = 0.3
			cfg.HotSet = 64
		}},
		{"flash-crowd", func(cfg *serve.LoadConfig, n int) {
			// A low/high/low staircase whose spike offers ~4× the
			// shoulders; total offered ≈ n requests.
			rate := float64(n) / 0.6
			cfg.Schedule = []serve.RatePhase{
				{Rate: rate / 2, Duration: 100 * time.Millisecond},
				{Rate: rate * 2, Duration: 100 * time.Millisecond},
				{Rate: rate / 2, Duration: 100 * time.Millisecond},
			}
			cfg.MaxInFlight = 1024
		}},
		{"batch-mix", func(cfg *serve.LoadConfig, n int) {
			cfg.RequestsPerClient = n / cfg.Clients
			cfg.BatchSize = 8
			cfg.BatchFrac = 0.3
		}},
	}
}

func chaosScheds() []chaosSched {
	return []chaosSched{
		{"latency-jitter", serve.ChaosConfig{
			Latency: 200 * time.Microsecond,
			Jitter:  300 * time.Microsecond,
		}},
		{"drop-corrupt", serve.ChaosConfig{
			Latency:     50 * time.Microsecond,
			DropFrac:    0.05,
			CorruptFrac: 0.05,
		}},
		{"sever", serve.ChaosConfig{
			Latency:   50 * time.Microsecond,
			SeverFrac: 0.04,
		}},
		{"slow-reader", serve.ChaosConfig{
			ReadChunk: 256,
			ReadDelay: 100 * time.Microsecond,
		}},
	}
}

// grid runs every shape × schedule cell on a single-node server.
func (x *chaosScan) grid() error {
	for _, shape := range chaosShapes() {
		for _, sched := range chaosScheds() {
			if err := x.cell(shape, sched); err != nil {
				return err
			}
			if x.f.full() {
				return nil
			}
		}
	}
	return nil
}

// cell boots a fresh server behind a chaotic link, drives one shaped
// load through it, and asserts the fixed contract: conservation on
// both ledgers, no lying answers, no leaked goroutines.
func (x *chaosScan) cell(shape chaosShape, sched chaosSched) error {
	name := shape.name + "/" + sched.name
	before := runtime.NumGoroutine()

	mem := serve.NewMemTransport()
	ln, err := mem.Listen("srv")
	if err != nil {
		return fmt.Errorf("check: chaos %s: %w", name, err)
	}
	srv := serve.NewServer(serve.Config{
		Shards: 4, QueueDepth: 512, CacheSize: 512,
		DefaultDeadline: 500 * time.Millisecond,
		WriteTimeout:    500 * time.Millisecond,
		Registry:        obs.NewRegistry(),
	})
	go srv.Serve(ln)
	ccfg := sched.cfg
	ccfg.Seed = x.cellSeed(name)
	ct := serve.NewChaosTransport(mem, ccfg)
	ct.SetEnabled(true)

	v := newRespValidator()
	cfg := serve.LoadConfig{
		D: 2, K: 8,
		Clients:        4,
		HotSet:         64,
		Seed:           x.cellSeed("load/" + name),
		Transport:      ct,
		Addr:           "srv",
		RequestTimeout: 400 * time.Millisecond,
		Observer:       v.observe,
	}
	shape.apply(&cfg, x.opt.Requests)
	res, err := serve.RunLoad(srv, cfg)
	if err != nil {
		srv.Close()
		ln.Close()
		return fmt.Errorf("check: chaos %s: %w", name, err)
	}

	x.assert(res.Conserved(), "%s: client ledger broken: %+v", name, res)
	x.assert(res.Completed > 0, "%s: nothing completed through the chaotic link", name)
	counts, settled := pollServeConserved(srv, 15*time.Second)
	x.assert(settled, "%s: server ledger never balanced after drain: %+v", name, counts)
	x.assert(v.cachedDegraded == 0, "%s: %d cached answers served degraded (first: %s)",
		name, v.cachedDegraded, v.firstCached)
	x.assert(v.wrong == 0, "%s: %d answers disagree with the clean engine (first: %s)",
		name, v.wrong, v.firstWrong)
	x.assert(v.invalid == 0, "%s: %d malformed responses (first: %s)",
		name, v.invalid, v.firstInvalid)

	srv.Close()
	ln.Close()
	x.assert(goroutinesSettle(before, 15*time.Second),
		"%s: goroutines leaked: %d running, baseline %d", name, runtime.NumGoroutine(), before)
	return nil
}

// pollServeConserved waits for the server's outcome ledger to balance:
// after RunLoad returns, tasks admitted from dying connections may
// still be draining toward their shed-canceled outcome.
func pollServeConserved(srv *serve.Server, timeout time.Duration) (serve.Counts, bool) {
	deadline := time.Now().Add(timeout)
	for {
		c := srv.Counts()
		if c.Conserved() {
			return c, true
		}
		if time.Now().After(deadline) {
			return c, false
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// goroutinesSettle reports whether the goroutine count returns to the
// baseline (plus scheduler slack) before the timeout.
func goroutinesSettle(baseline int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline+3 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// respValidator checks every client-observed response against a clean
// engine. Violations are counted, not asserted per response, so each
// cell contributes a fixed number of assertions regardless of load
// variance — that is what keeps the verdict byte-identical for a
// fixed seed.
type respValidator struct {
	mu     sync.Mutex
	engine *serve.Engine

	cachedDegraded int
	wrong          int
	invalid        int
	firstCached    string
	firstWrong     string
	firstInvalid   string
}

func newRespValidator() *respValidator {
	return &respValidator{engine: serve.NewEngine(nil)}
}

// observe is the LoadConfig.Observer hook: called once per completed
// request, from many client goroutines.
func (v *respValidator) observe(req serve.Request, resp serve.Response) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if req.Kind == "batch" {
		if resp.Status != serve.StatusOK {
			v.scalar(req, resp) // shed/error envelopes validate as scalars
			return
		}
		if len(resp.Batch) != len(req.Batch) {
			v.invalidf("batch of %d answered with %d sub-responses", len(req.Batch), len(resp.Batch))
			return
		}
		for i, sub := range req.Batch {
			v.scalar(sub, resp.Batch[i])
		}
		return
	}
	v.scalar(req, resp)
}

func (v *respValidator) scalar(req serve.Request, resp serve.Response) {
	switch resp.Status {
	case serve.StatusShed:
		if resp.ShedReason == "" {
			v.invalidf("shed response without a reason (%s %s→%s)", req.Kind, req.Src, req.Dst)
		}
		return
	case serve.StatusError:
		if resp.Error == "" {
			v.invalidf("error response without a message (%s %s→%s)", req.Kind, req.Src, req.Dst)
		}
		return
	case serve.StatusOK:
	default:
		v.invalidf("unknown status %q (%s %s→%s)", resp.Status, req.Kind, req.Src, req.Dst)
		return
	}
	if resp.Cached && resp.Degrade != "" {
		v.cachedDegraded++
		if v.firstCached == "" {
			v.firstCached = fmt.Sprintf("%s %s→%s cached at degrade %q", req.Kind, req.Src, req.Dst, resp.Degrade)
		}
	}
	q, err := serve.ParseQuery(req)
	if err != nil {
		v.invalidf("ok response to an unparseable request (%s %s→%s): %v", req.Kind, req.Src, req.Dst, err)
		return
	}
	a, _, err := v.engine.Answer(q, serve.LevelFull)
	if err != nil {
		v.invalidf("ok response where the clean engine errors (%s %s→%s): %v", req.Kind, req.Src, req.Dst, err)
		return
	}
	switch resp.Degrade {
	case "", "distance":
		if resp.Distance != a.Distance {
			v.wrongf("%s %s→%s: distance %d, clean engine %d", req.Kind, req.Src, req.Dst, resp.Distance, a.Distance)
		}
	case "bounds":
		if resp.Bounds == nil || resp.Bounds.Lo > a.Distance || a.Distance > resp.Bounds.Hi {
			v.wrongf("%s %s→%s: bounds %+v exclude true distance %d", req.Kind, req.Src, req.Dst, resp.Bounds, a.Distance)
		}
	default:
		v.invalidf("unknown degrade rung %q (%s %s→%s)", resp.Degrade, req.Kind, req.Src, req.Dst)
	}
}

func (v *respValidator) invalidf(format string, args ...any) {
	v.invalid++
	if v.firstInvalid == "" {
		v.firstInvalid = fmt.Sprintf(format, args...)
	}
}

func (v *respValidator) wrongf(format string, args ...any) {
	v.wrong++
	if v.firstWrong == "" {
		v.firstWrong = fmt.Sprintf(format, args...)
	}
}

// fabric drives a live cluster whose every link — peer fabric and
// client connections alike — runs through the chaos decorator, and
// checks the relaxed identities: outcome conservation stays exact per
// node once drained, while the hop identity holds in ≤-form (a lost
// forward response makes the origin fall back, so a peer can admit a
// forward whose origin never labels the outcome forwarded).
func (x *chaosScan) fabric() error {
	before := runtime.NumGoroutine()
	h, err := cluster.NewHarness(cluster.HarnessConfig{
		Nodes:         4,
		Seed:          x.cellSeed("fabric"),
		IDLen:         10,
		Replication:   1,
		PeerIOTimeout: 300 * time.Millisecond,
		Chaos: &serve.ChaosConfig{
			Seed:      x.cellSeed("fabric/chaos"),
			Latency:   100 * time.Microsecond,
			Jitter:    100 * time.Microsecond,
			SeverFrac: 0.02,
		},
		Serve: serve.Config{
			Shards: 4, QueueDepth: 512, CacheSize: 512,
			DefaultDeadline: 2 * time.Second,
			WriteTimeout:    500 * time.Millisecond,
		},
	})
	if err != nil {
		return fmt.Errorf("check: chaos fabric: %w", err)
	}
	h.Chaos.SetEnabled(true)

	// Drivers redial on failure: a severed client connection is part of
	// the schedule, not a finding. What must hold is the ledger.
	reqs := chaosQueries(x.cellSeed("fabric/load"), x.opt.Requests)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		resolved int
		derr     error
	)
	const drivers = 2
	per := len(reqs) / drivers
	for d := 0; d < drivers; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			c, err := h.Client(d)
			if err != nil {
				mu.Lock()
				derr = err
				mu.Unlock()
				return
			}
			defer func() { c.Close() }()
			for _, req := range reqs[d*per : (d+1)*per] {
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				_, err := c.Do(ctx, req)
				cancel()
				if err != nil {
					// The link died under us; redial and move on.
					c.Close()
					if c, err = h.Client(d); err != nil {
						mu.Lock()
						derr = err
						mu.Unlock()
						return
					}
					continue
				}
				mu.Lock()
				resolved++
				mu.Unlock()
			}
		}(d)
	}
	wg.Wait()
	if derr != nil {
		h.Close()
		return fmt.Errorf("check: chaos fabric: %w", derr)
	}

	x.assert(resolved > 0, "fabric: no request survived the chaotic links")
	agg, settled := x.pollClusterConserved(h, nil, 15*time.Second)
	x.assert(settled, "fabric: cluster ledger never balanced after drain: %+v", agg)
	x.assert(perNodeConserved(agg), "fabric: a node's ledger is broken: %+v", agg.PerNode)
	x.assert(agg.Forwarded <= agg.ForwardedIn,
		"fabric: more forwarded outcomes (%d) than admitted forwards (%d)", agg.Forwarded, agg.ForwardedIn)
	h.Close()
	x.assert(goroutinesSettle(before, 15*time.Second),
		"fabric: goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), before)
	return nil
}

// storm runs the churn-storm cell: a correlated kill burst plus joins
// under live load, on clean links, with driver-facing nodes protected.
func (x *chaosScan) storm() error {
	before := runtime.NumGoroutine()
	h, err := cluster.NewHarness(cluster.HarnessConfig{
		Nodes:         6,
		Seed:          x.cellSeed("storm"),
		IDLen:         10,
		Replication:   2,
		PeerIOTimeout: 500 * time.Millisecond,
		Serve: serve.Config{
			Shards: 4, QueueDepth: 512, CacheSize: 512,
			DefaultDeadline: 2 * time.Second,
			WriteTimeout:    500 * time.Millisecond,
		},
	})
	if err != nil {
		return fmt.Errorf("check: chaos storm: %w", err)
	}

	reqs := chaosQueries(x.cellSeed("storm/load"), x.opt.Requests)
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		resolved  int
		derrs     int
		firstDerr string
		stormOnce sync.Once
		killed    []serve.Counts
		serr      error
	)
	const drivers = 2
	per := len(reqs) / drivers
	for d := 0; d < drivers; d++ {
		c, err := h.Client(d)
		if err != nil {
			h.Close()
			return fmt.Errorf("check: chaos storm: %w", err)
		}
		wg.Add(1)
		go func(d int, c *serve.Client) {
			defer wg.Done()
			defer c.Close()
			for i, req := range reqs[d*per : (d+1)*per] {
				if d == 0 && i == per/3 {
					stormOnce.Do(func() {
						killed, serr = h.Storm(2, 2, drivers)
					})
				}
				ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
				_, err := c.Do(ctx, req)
				cancel()
				mu.Lock()
				if err != nil {
					derrs++
					if firstDerr == "" {
						firstDerr = err.Error()
					}
				} else {
					resolved++
				}
				mu.Unlock()
			}
		}(d, c)
	}
	wg.Wait()
	if serr != nil {
		h.Close()
		return fmt.Errorf("check: chaos storm: %w", serr)
	}

	// The drivers attach to protected nodes, so the storm must not cost
	// them a single request: forwards to dead peers fall back locally.
	x.assert(derrs == 0, "storm: %d driver requests failed on protected nodes (first: %s)", derrs, firstDerr)
	x.assert(resolved+derrs == len(reqs)/drivers*drivers,
		"storm: %d outcomes for %d requests", resolved+derrs, len(reqs)/drivers*drivers)
	killedOK := true
	for _, kc := range killed {
		killedOK = killedOK && kc.Conserved()
	}
	x.assert(killedOK, "storm: a victim's final ledger is broken: %+v", killed)
	agg, settled := x.pollClusterConserved(h, killed, 15*time.Second)
	x.assert(settled, "storm: cluster ledger never balanced after drain: %+v", agg)
	x.assert(perNodeConserved(agg), "storm: a node's ledger is broken: %+v", agg.PerNode)
	x.assert(agg.Forwarded <= agg.ForwardedIn,
		"storm: more forwarded outcomes (%d) than admitted forwards (%d)", agg.Forwarded, agg.ForwardedIn)
	x.assert(h.WaitConverged(30*time.Second) == nil, "storm: membership never re-converged")
	h.Close()
	x.assert(goroutinesSettle(before, 15*time.Second),
		"storm: goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), before)
	return nil
}

// pollClusterConserved waits for the cluster-wide outcome ledger —
// live nodes plus retained victim counts — to balance exactly.
func (x *chaosScan) pollClusterConserved(h *cluster.Harness, extra []serve.Counts, timeout time.Duration) (cluster.ClusterCounts, bool) {
	deadline := time.Now().Add(timeout)
	for {
		agg := h.Counts(extra...)
		if agg.Conserved() && perNodeConserved(agg) {
			return agg, true
		}
		if time.Now().After(deadline) {
			return agg, false
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func perNodeConserved(agg cluster.ClusterCounts) bool {
	for _, pn := range agg.PerNode {
		if !pn.Conserved() {
			return false
		}
	}
	return true
}

// chaosQueries yields a seeded stream of scalar requests over DG(2,8).
func chaosQueries(seed int64, n int) []serve.Request {
	rng := rand.New(rand.NewSource(seed))
	out := make([]serve.Request, n)
	for i := range out {
		src := word.Random(2, 8, rng)
		dst := word.Random(2, 8, rng)
		mode := serve.Undirected
		if rng.Intn(2) == 1 {
			mode = serve.Directed
		}
		switch i % 3 {
		case 0:
			out[i] = serve.DistanceRequest(src, dst, mode)
		case 1:
			out[i] = serve.RouteRequest(src, dst, mode)
		default:
			out[i] = serve.NextHopRequest(src, dst, mode)
		}
	}
	return out
}
