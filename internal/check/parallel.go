package check

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the worker count the Options' Workers field
// resolves to when negative: one worker per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// resolveWorkers maps an Options.Workers field to an effective worker
// count: ≤ 0 means sequential (the historical single-threaded scan,
// bit-for-bit), capped by the number of independent shards.
func resolveWorkers(workers, shards int) int {
	if workers < 1 {
		workers = 1
	}
	if workers > shards {
		workers = shards
	}
	return workers
}

// runShards evaluates fn(0..shards-1) on up to workers goroutines.
// Shards are self-contained units writing only to their own result
// slot, so the dynamic shard→worker assignment never affects the
// merged output: reports are byte-stable for a fixed configuration
// regardless of scheduling. workers ≤ 1 degenerates to a plain loop on
// the calling goroutine.
func runShards(workers, shards int, fn func(shard int)) {
	workers = resolveWorkers(workers, shards)
	if workers <= 1 {
		for i := 0; i < shards; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= shards {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// shardResult is the output of one self-contained verification shard.
type shardResult struct {
	checked  int
	findings []Finding
	full     bool // the shard's own findings cap was reached
	err      error
}

// mergeShards folds shard results into rep in shard order — the order
// the sequential scan would have produced — truncating the combined
// findings at max. The first shard error (in shard order) wins.
func mergeShards(rep *Report, results []shardResult, max int) error {
	if max <= 0 {
		max = 32
	}
	f := newFindings(max)
	truncated := false
	for _, r := range results {
		if r.err != nil {
			return r.err
		}
		rep.Checked += r.checked
		for _, fd := range r.findings {
			if f.full() {
				truncated = true
				break
			}
			f.list = append(f.list, fd)
		}
		if r.full {
			truncated = true
		}
	}
	rep.Findings = f.result()
	rep.Truncated = truncated || f.full()
	return nil
}
