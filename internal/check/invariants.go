package check

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strconv"

	"repro/internal/deflect"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/word"
)

// InvariantsOptions parameterizes the conservation-invariant oracle.
type InvariantsOptions struct {
	// Seed drives workloads and fault plans.
	Seed int64
	// Messages per engine scenario. 0 means min(4·N, 1024).
	Messages int
	// Rounds bounds the deflection run. 0 means 64·k.
	Rounds int
	// MaxFindings caps the findings per report. 0 means 32.
	MaxFindings int
	// Workers sets the scan parallelism. The eleven scenario units
	// (five stepped, three cluster, three deflection policies) are
	// independent — each derives its RNG stream from its own scenario
	// name — so above 1 they run concurrently and the merged report is
	// identical to the sequential one.
	Workers int
}

// Invariants re-derives, from obs registry snapshots taken after
// seeded runs, the conservation laws every engine documents:
//
//	stepped and cluster store-and-forward engines:
//	    sent = delivered + dropped,
//	    dropped = Σ dn_drops_total{reason=…},
//	    hop-histogram count = delivered,
//	    and (cluster) the inflight gauge reads 0 after Drain;
//
//	bufferless deflection engine:
//	    injected = delivered + guard trips + inflight,
//	    with Engine.Stats and the registry in exact agreement.
//
// The scenarios deliberately provoke every drop path the accounting
// must balance: healthy traffic, static faults, mid-run faults with
// and without adaptive rerouting, and sustained deflection load past
// the age guard.
func Invariants(d, k int, opt InvariantsOptions) (Report, error) {
	rep := Report{Mode: "invariants", D: d, K: k}
	n, err := word.Count(d, k)
	if err != nil {
		return rep, fmt.Errorf("check: DG(%d,%d): %w", d, k, err)
	}
	if opt.Messages <= 0 {
		opt.Messages = 4 * n
		if opt.Messages > 1024 {
			opt.Messages = 1024
		}
	}
	if opt.Rounds <= 0 {
		opt.Rounds = 64 * k
	}
	units := invariantUnits()
	if opt.Workers > 1 {
		results := make([]shardResult, len(units))
		runShards(opt.Workers, len(units), func(i int) {
			uf := newFindings(opt.MaxFindings)
			iv := &invariantScan{d: d, k: k, n: n, opt: opt, f: uf}
			err := units[i](iv)
			results[i] = shardResult{checked: iv.checked, findings: uf.result(), full: uf.full(), err: err}
		})
		err := mergeShards(&rep, results, opt.MaxFindings)
		return rep, err
	}
	f := newFindings(opt.MaxFindings)
	iv := &invariantScan{d: d, k: k, n: n, opt: opt, f: f}
	for _, unit := range units {
		if err := unit(iv); err != nil {
			return rep, err
		}
	}
	rep.Checked = iv.checked
	rep.Findings = f.result()
	rep.Truncated = f.full()
	return rep, nil
}

// invariantUnits enumerates the independent scenario units in the
// canonical (sequential) order. Each unit owns its RNG stream, engine
// and obs registry, so units may run concurrently on distinct
// invariantScans and merge back into the sequential report.
func invariantUnits() []func(iv *invariantScan) error {
	var units []func(iv *invariantScan) error
	for _, s := range []struct {
		name              string
		uni, adaptive     bool
		faults, midFaults bool
	}{
		{name: "healthy", faults: false},
		{name: "uni-faults", uni: true, faults: true},
		{name: "static-faults", faults: true},
		{name: "midrun-faults", faults: true, midFaults: true},
		{name: "adaptive-midrun", adaptive: true, faults: true, midFaults: true},
	} {
		s := s
		units = append(units, func(iv *invariantScan) error {
			return iv.stepped(s.name, s.uni, s.adaptive, s.faults, s.midFaults)
		})
	}
	for _, s := range []struct {
		name   string
		uni    bool
		faults bool
	}{
		{name: "healthy"},
		{name: "uni", uni: true},
		{name: "faults", faults: true},
	} {
		s := s
		units = append(units, func(iv *invariantScan) error {
			return iv.cluster(s.name, s.uni, s.faults)
		})
	}
	for _, pol := range []deflect.Policy{deflect.PolicyRandom{}, deflect.PolicyMinIncrease{}, deflect.PolicyLayerAware{}} {
		pol := pol
		units = append(units, func(iv *invariantScan) error {
			return iv.deflect(pol)
		})
	}
	return units
}

type invariantScan struct {
	d, k, n int
	opt     InvariantsOptions
	f       *findings
	checked int
}

// assert records one invariant evaluation, as a finding when violated.
func (iv *invariantScan) assert(ok bool, format string, args ...any) {
	iv.checked++
	if !ok {
		iv.f.addf("conservation", format, args...)
	}
}

// workload derives the scenario's RNG stream and message plan. The
// salt is a hash of the full scenario name — not its length, which
// collides (e.g. "static-faults" vs "midrun-faults") and would hand
// distinct scenarios identical streams.
func (iv *invariantScan) workload(scenario string) (*rand.Rand, []word.Word) {
	h := fnv.New64a()
	_, _ = h.Write([]byte(scenario))
	rng := rand.New(rand.NewSource(iv.opt.Seed + int64(h.Sum64())))
	plan := make([]word.Word, 2*iv.opt.Messages)
	for i := range plan {
		plan[i] = word.Random(iv.d, iv.k, rng)
	}
	return rng, plan
}

// stepped runs one scenario through network.Network and balances the
// dn_messages_* / dn_drops_total / dn_hops books.
func (iv *invariantScan) stepped(name string, uni, adaptive, faults, midFaults bool) error {
	reg := obs.NewRegistry()
	nw, err := network.New(network.Config{
		D: iv.d, K: iv.k,
		Unidirectional: uni,
		Adaptive:       adaptive,
		Seed:           iv.opt.Seed,
		Obs:            reg,
	})
	if err != nil {
		return fmt.Errorf("check: %w", err)
	}
	rng, plan := iv.workload("stepped/" + name)
	if faults && !midFaults {
		if err := iv.failSome(rng, nw.FailSite); err != nil {
			return err
		}
	}
	for i := 0; i < iv.opt.Messages; i++ {
		if midFaults && i == iv.opt.Messages/2 {
			if err := iv.failSome(rng, nw.FailSite); err != nil {
				return err
			}
		}
		if _, err := nw.Send(plan[2*i], plan[2*i+1], strconv.Itoa(i)); err != nil {
			return fmt.Errorf("check: stepped %s send: %w", name, err)
		}
	}
	snap := reg.Snapshot()
	iv.balanceBooks("stepped/"+name, snap,
		"dn_messages_sent_total", "dn_messages_delivered_total",
		"dn_messages_dropped_total", "dn_drops_total", "dn_hops",
		int64(iv.opt.Messages))
	st := nw.Stats()
	iv.assert(int64(st.Delivered) == snap.Counter("dn_messages_delivered_total") &&
		int64(st.Dropped) == snap.Counter("dn_messages_dropped_total"),
		"DN(%d,%d) stepped/%s: Stats{delivered %d, dropped %d} disagrees with registry {%d, %d}",
		iv.d, iv.k, name, st.Delivered, st.Dropped,
		snap.Counter("dn_messages_delivered_total"), snap.Counter("dn_messages_dropped_total"))
	return nil
}

// cluster runs one scenario through network.Cluster and balances the
// dn_cluster_* books, including the post-Drain inflight gauge.
func (iv *invariantScan) cluster(name string, uni, faults bool) error {
	reg := obs.NewRegistry()
	c, err := network.NewCluster(network.ClusterConfig{
		D: iv.d, K: iv.k,
		Unidirectional: uni,
		Seed:           iv.opt.Seed,
		RandomWildcard: true,
		Obs:            reg,
	})
	if err != nil {
		return fmt.Errorf("check: %w", err)
	}
	rng, plan := iv.workload("cluster/" + name)
	failed := map[string]bool{}
	if faults {
		if err := iv.failSome(rng, func(w word.Word) error {
			failed[w.String()] = true
			return c.FailSite(w)
		}); err != nil {
			return err
		}
	}
	c.Start()
	defer c.Stop()
	sent := 0
	for i := 0; i < iv.opt.Messages; i++ {
		if failed[plan[2*i].String()] {
			continue // the cluster refuses Send from a failed source
		}
		if err := c.Send(plan[2*i], plan[2*i+1], strconv.Itoa(i)); err != nil {
			return fmt.Errorf("check: cluster %s send: %w", name, err)
		}
		sent++
	}
	c.Drain()
	snap := reg.Snapshot()
	iv.balanceBooks("cluster/"+name, snap,
		"dn_cluster_messages_sent_total", "dn_cluster_messages_delivered_total",
		"dn_cluster_messages_dropped_total", "dn_cluster_drops_total", "dn_cluster_hops",
		int64(sent))
	iv.assert(snap.Gauge("dn_cluster_inflight") == 0,
		"DN(%d,%d) cluster/%s: inflight gauge reads %v after Drain",
		iv.d, iv.k, name, snap.Gauge("dn_cluster_inflight"))
	return nil
}

// balanceBooks asserts the store-and-forward conservation laws common
// to both engines from one snapshot.
func (iv *invariantScan) balanceBooks(scen string, snap obs.Snapshot, sentC, delC, dropC, dropsBase, hopsH string, wantSent int64) {
	sent := snap.Counter(sentC)
	del := snap.Counter(delC)
	drop := snap.Counter(dropC)
	byReason := snap.CounterSum(dropsBase)
	iv.assert(sent == wantSent,
		"DN(%d,%d) %s: %s = %d, but %d messages were injected", iv.d, iv.k, scen, sentC, sent, wantSent)
	iv.assert(sent == del+drop,
		"DN(%d,%d) %s: sent %d ≠ delivered %d + dropped %d", iv.d, iv.k, scen, sent, del, drop)
	iv.assert(drop == byReason,
		"DN(%d,%d) %s: dropped %d ≠ Σ %s{reason} = %d", iv.d, iv.k, scen, drop, dropsBase, byReason)
	hops := snap.Histograms[hopsH].Count
	iv.assert(hops == del,
		"DN(%d,%d) %s: %s has %d observations, delivered %d", iv.d, iv.k, scen, hopsH, hops, del)
}

// deflect drives the bufferless engine under open-loop load — past the
// age guard so guard trips are exercised, stopping mid-flight so the
// inflight term is nonzero — and balances injected against its three
// sinks, in Stats and in the registry.
func (iv *invariantScan) deflect(pol deflect.Policy) error {
	name := fmt.Sprintf("deflect/%T", pol)
	reg := obs.NewRegistry()
	e, err := deflect.New(deflect.Config{
		D: iv.d, K: iv.k,
		Policy: pol,
		Seed:   iv.opt.Seed,
		MaxAge: 4 * iv.k, // low guard: make guard trips reachable within the round budget
		Obs:    reg,
	})
	if err != nil {
		return fmt.Errorf("check: %w", err)
	}
	rng, plan := iv.workload(name)
	// Small destination pool: distance layers are memoized per
	// destination, so a pool keeps the run cheap on big graphs while
	// still contending every link class.
	dests := plan[:min(len(plan), 8)]
	next := 0
	for r := 0; r < iv.opt.Rounds; r++ {
		// Open-loop injection: a few messages per round from random
		// sources, refusals allowed (capacity is finite by design).
		for i := 0; i < 4; i++ {
			src := word.Random(iv.d, iv.k, rng)
			if _, err := e.Inject(src, dests[next%len(dests)]); err != nil {
				return fmt.Errorf("check: %s inject: %w", name, err)
			}
			next++
		}
		if err := e.Step(); err != nil {
			return fmt.Errorf("check: %s step: %w", name, err)
		}
	}
	st := e.Stats()
	iv.assert(st.Injected == st.Delivered+st.GuardDropped+st.Inflight,
		"DN(%d,%d) %s: injected %d ≠ delivered %d + guard %d + inflight %d",
		iv.d, iv.k, name, st.Injected, st.Delivered, st.GuardDropped, st.Inflight)
	iv.assert(st.Inflight == e.Inflight(),
		"DN(%d,%d) %s: Stats.Inflight %d ≠ Engine.Inflight %d", iv.d, iv.k, name, st.Inflight, e.Inflight())
	snap := reg.Snapshot()
	for _, c := range []struct {
		metric string
		want   int
	}{
		{"dn_deflect_injected_total", st.Injected},
		{"dn_deflect_refused_total", st.Refused},
		{"dn_deflect_delivered_total", st.Delivered},
		{"dn_deflect_guard_trips_total", st.GuardDropped},
	} {
		iv.assert(snap.Counter(c.metric) == int64(c.want),
			"DN(%d,%d) %s: %s = %d, Stats says %d", iv.d, iv.k, name, c.metric, snap.Counter(c.metric), c.want)
	}
	iv.assert(snap.Gauge("dn_deflect_inflight") == float64(st.Inflight),
		"DN(%d,%d) %s: inflight gauge %v, Stats says %d", iv.d, iv.k, name, snap.Gauge("dn_deflect_inflight"), st.Inflight)
	iv.assert(snap.Histograms["dn_deflect_latency_rounds"].Count == int64(st.Delivered),
		"DN(%d,%d) %s: latency histogram has %d observations, delivered %d",
		iv.d, iv.k, name, snap.Histograms["dn_deflect_latency_rounds"].Count, st.Delivered)
	return nil
}

// failSome marks a seeded minority of sites failed (at least one,
// never the majority on graphs with more than two vertices).
func (iv *invariantScan) failSome(rng *rand.Rand, fail func(word.Word) error) error {
	want := iv.n / 10
	if want < 1 {
		want = 1
	}
	if want > iv.n/2 {
		want = iv.n / 2
	}
	if want < 1 {
		want = 1 // two-vertex graphs: fail one site, the other keeps sending
	}
	seen := map[string]bool{}
	for len(seen) < want {
		w := word.Random(iv.d, iv.k, rng)
		if seen[w.String()] {
			continue
		}
		seen[w.String()] = true
		if err := fail(w); err != nil {
			return fmt.Errorf("check: %w", err)
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
