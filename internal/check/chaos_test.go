package check

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/serve"
	"repro/internal/word"
)

// TestChaosOracleClean runs the full adversarial grid at a reduced
// request volume and requires a clean verdict: conservation, honest
// answers and drained goroutines under every shape × schedule cell,
// the chaotic fabric, and the churn storm.
func TestChaosOracleClean(t *testing.T) {
	rep, err := Chaos(ChaosOptions{Seed: 1, Requests: 160})
	if err != nil {
		t.Fatalf("Chaos: %v", err)
	}
	if !rep.OK() {
		for _, f := range rep.Findings {
			t.Errorf("finding: %s", f)
		}
		t.Fatalf("chaos oracle not clean (%d findings, truncated=%v)", len(rep.Findings), rep.Truncated)
	}
	if rep.Mode != "chaos" {
		t.Fatalf("mode %q", rep.Mode)
	}
	// 16 grid cells × 7 assertions + fabric (5) + storm (8).
	if want := 16*7 + 5 + 8; rep.Checked != want {
		t.Fatalf("checked %d assertions, want the fixed grid total %d", rep.Checked, want)
	}
}

// TestChaosOracleByteIdentical pins the acceptance criterion directly:
// two runs with the same options marshal to byte-identical verdicts —
// fault timing, load variance and all.
func TestChaosOracleByteIdentical(t *testing.T) {
	a, err := Chaos(ChaosOptions{Seed: 9, Requests: 96})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Chaos(ChaosOptions{Seed: 9, Requests: 96})
	if err != nil {
		t.Fatal(err)
	}
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatalf("same options, different verdict bytes:\n%s\n%s", ja, jb)
	}
}

// TestChaosValidatorCatchesLies pins the validator itself: a fabricated
// wrong answer, a degraded cache hit, excluding bounds and a malformed
// status must each be counted.
func TestChaosValidatorCatchesLies(t *testing.T) {
	v := newRespValidator()
	req := serve.DistanceRequest(word.MustParse(2, "00000000"), word.MustParse(2, "11111111"), serve.Undirected)
	q, err := serve.ParseQuery(req)
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := serve.NewEngine(nil).Answer(q, serve.LevelFull)
	if err != nil {
		t.Fatal(err)
	}
	clean := a.Distance

	v.observe(req, serve.Response{Status: serve.StatusOK, Distance: clean})
	if v.wrong != 0 || v.invalid != 0 || v.cachedDegraded != 0 {
		t.Fatalf("honest answer flagged: wrong=%d invalid=%d cached=%d", v.wrong, v.invalid, v.cachedDegraded)
	}
	v.observe(req, serve.Response{Status: serve.StatusOK, Distance: clean + 1})
	if v.wrong != 1 {
		t.Fatalf("wrong distance not caught: wrong=%d", v.wrong)
	}
	v.observe(req, serve.Response{Status: serve.StatusOK, Degrade: "distance", Cached: true, Distance: clean})
	if v.cachedDegraded != 1 {
		t.Fatalf("degraded cache hit not caught: %d", v.cachedDegraded)
	}
	v.observe(req, serve.Response{Status: serve.StatusOK, Degrade: "bounds",
		Bounds: &serve.Bounds{Lo: clean + 1, Hi: clean + 2}})
	if v.wrong != 2 {
		t.Fatalf("excluding bounds not caught: wrong=%d", v.wrong)
	}
	v.observe(req, serve.Response{Status: "bogus"})
	if v.invalid != 1 {
		t.Fatalf("bogus status not caught: %d", v.invalid)
	}
}
