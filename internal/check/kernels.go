package check

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/word"
)

// KernelsOptions parameterizes the kernel-tier differential oracle.
type KernelsOptions struct {
	// Seed drives the pair sample on graphs too large to sweep
	// exhaustively.
	Seed int64
	// Pairs is the sample size above the exhaustive threshold. 0
	// means 2048.
	Pairs int
	// SampleAbove is the vertex count beyond which ordered pairs are
	// sampled instead of enumerated. 0 means 128 (exhaustive pair
	// sweeps are quadratic in N).
	SampleAbove int
	// MaxFindings caps the findings per report. 0 means 32.
	MaxFindings int
}

func (o *KernelsOptions) defaults() {
	if o.Pairs == 0 {
		o.Pairs = 2048
	}
	if o.SampleAbove == 0 {
		o.SampleAbove = 128
	}
}

// Kernels runs the tier-differential oracle on DG(d,k): the same
// query evaluated by every rung of the kernel ladder must produce
// byte-identical answers. Four evaluators run side by side — the
// scratch-forced engine (T3, the reference), the packed engine (T2
// where the alphabet packs), the table-admitting engine (T1 where the
// pair matrix fits the default budget, built synchronously), and the
// packed engine's batch frame — and every directed distance,
// undirected distance, canonical route (hop for hop) and next hop is
// compared across them. The ladder's contract is exact equality, not
// mere optimality: tier selection must be semantically invisible.
func Kernels(d, k int, opt KernelsOptions) (Report, error) {
	opt.defaults()
	rep := Report{Mode: "kernels", D: d, K: k}
	n, err := word.Count(d, k)
	if err != nil {
		return rep, fmt.Errorf("check: DG(%d,%d): %w", d, k, err)
	}
	engines := []struct {
		name string
		kn   *core.Kernels
	}{
		{"packed", core.NewKernels(core.KernelConfig{TableBudget: -1})},
		{"table", core.NewKernels(core.KernelConfig{SyncTableBuild: true})},
	}
	ref := core.NewKernels(core.KernelConfig{TableBudget: -1, DisablePacked: true})
	f := newFindings(opt.MaxFindings)

	var pairs [][2]word.Word
	if n <= opt.SampleAbove {
		words := make([]word.Word, 0, n)
		word.ForEach(d, k, func(w word.Word) bool {
			words = append(words, w)
			return true
		})
		for _, x := range words {
			for _, y := range words {
				pairs = append(pairs, [2]word.Word{x, y})
			}
		}
	} else {
		rep.Sampled = true
		rng := rand.New(rand.NewSource(opt.Seed))
		for i := 0; i < opt.Pairs; i++ {
			pairs = append(pairs, [2]word.Word{word.Random(d, k, rng), word.Random(d, k, rng)})
		}
	}

	for _, p := range pairs {
		if f.full() {
			rep.Truncated = true
			break
		}
		x, y := p[0], p[1]
		wantU, err := ref.UndirectedDistance(x, y)
		if err != nil {
			return rep, fmt.Errorf("check: reference UndirectedDistance(%v,%v): %w", x, y, err)
		}
		wantD, err := ref.DirectedDistance(x, y)
		if err != nil {
			return rep, fmt.Errorf("check: reference DirectedDistance(%v,%v): %w", x, y, err)
		}
		wantP, err := ref.RouteUndirected(x, y)
		if err != nil {
			return rep, fmt.Errorf("check: reference RouteUndirected(%v,%v): %w", x, y, err)
		}
		wantH, wantOK, err := ref.NextHopUndirected(x, y)
		if err != nil {
			return rep, fmt.Errorf("check: reference NextHopUndirected(%v,%v): %w", x, y, err)
		}
		for _, e := range engines {
			compareKernel(f, e.name, e.kn, x, y, wantU, wantD, wantP, wantH, wantOK)
			compareFrame(f, e.name, e.kn, x, y, wantU, wantD, wantP, wantH, wantOK)
		}
		rep.Checked++
	}
	rep.Findings = f.result()
	rep.Truncated = rep.Truncated || f.full()
	return rep, nil
}

func compareKernel(f *findings, name string, kn *core.Kernels, x, y word.Word, wantU, wantD int, wantP core.Path, wantH core.Hop, wantOK bool) {
	gotU, err := kn.UndirectedDistance(x, y)
	if err != nil || gotU != wantU {
		f.addf("kernel-udist", "%s: D(%v,%v) = %d (err %v), scratch %d", name, x, y, gotU, err, wantU)
	}
	gotD, err := kn.DirectedDistance(x, y)
	if err != nil || gotD != wantD {
		f.addf("kernel-ddist", "%s: D→(%v,%v) = %d (err %v), scratch %d", name, x, y, gotD, err, wantD)
	}
	gotP, err := kn.RouteUndirected(x, y)
	if err != nil || !pathsEqual(gotP, wantP) {
		f.addf("kernel-route", "%s: route(%v,%v) = %v (err %v), scratch %v", name, x, y, gotP, err, wantP)
	}
	gotH, gotOK, err := kn.NextHopUndirected(x, y)
	if err != nil || gotOK != wantOK || gotH != wantH {
		f.addf("kernel-nexthop", "%s: hop(%v,%v) = %v,%v (err %v), scratch %v,%v", name, x, y, gotH, gotOK, err, wantH, wantOK)
	}
}

func compareFrame(f *findings, name string, kn *core.Kernels, x, y word.Word, wantU, wantD int, wantP core.Path, wantH core.Hop, wantOK bool) {
	fr := kn.Frame()
	i, err := fr.Add(x, y)
	if err != nil {
		f.addf("frame-add", "%s: Add(%v,%v): %v", name, x, y, err)
		return
	}
	gotU, err := fr.UndirectedDistance(i)
	if err != nil || gotU != wantU {
		f.addf("frame-udist", "%s: D(%v,%v) = %d (err %v), scratch %d", name, x, y, gotU, err, wantU)
	}
	gotD, err := fr.DirectedDistance(i)
	if err != nil || gotD != wantD {
		f.addf("frame-ddist", "%s: D→(%v,%v) = %d (err %v), scratch %d", name, x, y, gotD, err, wantD)
	}
	gotP, err := fr.RouteUndirected(i)
	if err != nil || !pathsEqual(gotP, wantP) {
		f.addf("frame-route", "%s: route(%v,%v) = %v (err %v), scratch %v", name, x, y, gotP, err, wantP)
	}
	gotH, gotOK, err := fr.NextHopUndirected(i)
	if err != nil || gotOK != wantOK || gotH != wantH {
		f.addf("frame-nexthop", "%s: hop(%v,%v) = %v,%v (err %v), scratch %v,%v", name, x, y, gotH, gotOK, err, wantH, wantOK)
	}
}

func pathsEqual(a, b core.Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
