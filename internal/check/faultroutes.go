package check

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
)

// FaultRoutesOptions parameterizes the fault-routing oracle.
type FaultRoutesOptions struct {
	// Seed drives root, source and failure-set sampling. The whole
	// sweep is a pure function of (d, k, options): the arborescence
	// decompositions themselves are seeded per destination by the
	// router, so verdicts are byte-identical across processes.
	Seed int64
	// Roots is the number of destinations checked when the graph has
	// more than RootsAbove vertices (below that, every destination is
	// checked). 0 means 8.
	Roots int
	// RootsAbove is the exhaustive-roots threshold. 0 means 64.
	RootsAbove int
	// SetsPerSize is the number of random failure sets drawn per
	// failure size ≥ 1 (size 0 needs only one). 0 means 2.
	SetsPerSize int
	// Sources is the number of sources walked per (root, failure set)
	// when the graph has more than SourcesAbove vertices. 0 means 24.
	Sources int
	// SourcesAbove is the exhaustive-sources threshold. 0 means 64.
	SourcesAbove int
	// MaxFindings caps the findings per report. 0 means 32.
	MaxFindings int
}

func (o *FaultRoutesOptions) defaults() {
	if o.Roots == 0 {
		o.Roots = 8
	}
	if o.RootsAbove == 0 {
		o.RootsAbove = 64
	}
	if o.SetsPerSize == 0 {
		o.SetsPerSize = 2
	}
	if o.Sources == 0 {
		o.Sources = 24
	}
	if o.SourcesAbove == 0 {
		o.SourcesAbove = 64
	}
}

// FaultRoutes runs the fault-routing oracle on the undirected DG(d,k).
// For each checked destination it independently re-validates the
// arborescence decomposition (spanning, cycle-free, arc-disjoint,
// rooted), then for every failure size f < Trees draws random sets of
// f failed directed arcs and walks sources to the destination,
// asserting the paper-level contract against BFS on the faulted graph:
//
//   - a delivered walk replays hop by hop over real, live arcs, ends
//     at the destination, and uses at most HopBound = n·Trees hops
//     (the documented stretch bound) — and never fewer hops than the
//     faulted shortest path;
//
//   - any pair still connected in the faulted graph IS delivered —
//     with f < Trees arc failures the arc-disjoint family guarantees
//     a live parent arc everywhere, so non-delivery of a reachable
//     pair is a routing bug, not bad luck;
//
//   - a non-delivered pair must be unreachable, and the walk must say
//     why with one of the documented reasons.
func FaultRoutes(d, k int, opt FaultRoutesOptions) (Report, error) {
	opt.defaults()
	rep := Report{Mode: "faultroutes", D: d, K: k}
	fr, err := core.NewFaultRouter(d, k)
	if err != nil {
		return rep, fmt.Errorf("check: %w", err)
	}
	g, n, trees := fr.Graph(), fr.NumVertices(), fr.Trees()
	f := newFindings(opt.MaxFindings)
	rng := rand.New(rand.NewSource(opt.Seed ^ 0x5DEECE66D))

	roots := make([]int, 0, opt.Roots)
	if n <= opt.RootsAbove {
		for r := 0; r < n; r++ {
			roots = append(roots, r)
		}
	} else {
		rep.Sampled = true
		seen := make(map[int]bool, opt.Roots)
		for len(roots) < opt.Roots && len(roots) < n {
			r := rng.Intn(n)
			if !seen[r] {
				seen[r] = true
				roots = append(roots, r)
			}
		}
	}

	for _, root := range roots {
		if f.full() {
			break
		}
		dec, err := fr.Decomposition(root)
		if err != nil {
			return rep, fmt.Errorf("check: %w", err)
		}
		if err := graph.ValidateArborescences(g, root, dec); err != nil {
			f.addf("fault-decomposition", "DG(%d,%d) root %d: %v", d, k, root, err)
			continue
		}
		rep.Checked++ // one validated decomposition

		for size := 0; size < trees && !f.full(); size++ {
			sets := opt.SetsPerSize
			if size == 0 {
				sets = 1
			}
			for set := 0; set < sets && !f.full(); set++ {
				failed := drawArcSet(g, size, rng)
				failedFn := func(u, v int) bool { return failed[[2]int{u, v}] }
				dist, err := g.BFSToAvoidingArcs(root, failedFn)
				if err != nil {
					return rep, fmt.Errorf("check: %w", err)
				}
				sources := sourceSet(n, opt, rng)
				for _, src := range sources {
					if f.full() {
						break
					}
					checkFaultWalk(f, fr, g, d, k, root, src, size, failed, failedFn, dist)
					rep.Checked++
				}
			}
		}
	}
	rep.Findings = f.result()
	rep.Truncated = f.full()
	return rep, nil
}

// checkFaultWalk runs one (src → root, failure set) probe.
func checkFaultWalk(f *findings, fr *core.FaultRouter, g *graph.Graph, d, k, root, src, size int, failed map[[2]int]bool, failedFn func(u, v int) bool, dist []int) {
	w, err := fr.Walk(src, root, failedFn)
	if err != nil {
		f.addf("error", "%v", err)
		return
	}
	reachable := dist[src] >= 0
	if !w.Delivered {
		if reachable {
			f.addf("fault-delivery",
				"DG(%d,%d) %d→%d under %d failed arcs %v: not delivered (%q) but faulted-BFS distance is %d",
				d, k, src, root, size, arcList(failed), w.Reason, dist[src])
			return
		}
		if w.Reason != core.WalkReasonNoLiveArc && w.Reason != core.WalkReasonHopBudget {
			f.addf("fault-drop-reason",
				"DG(%d,%d) %d→%d under %d failed arcs: undocumented drop reason %q", d, k, src, root, size, w.Reason)
		}
		return
	}
	if !reachable {
		f.addf("fault-phantom-delivery",
			"DG(%d,%d) %d→%d under %d failed arcs %v: delivered in %d hops but faulted-BFS says unreachable",
			d, k, src, root, size, arcList(failed), w.Hops)
		return
	}
	// Replay: the walk's vertex trace must start at src, end at root,
	// cross only live real links, and respect the documented bounds.
	if len(w.Verts) != w.Hops+1 || int(w.Verts[0]) != src || int(w.Verts[len(w.Verts)-1]) != root {
		f.addf("fault-replay",
			"DG(%d,%d) %d→%d: walk trace %v inconsistent with %d hops", d, k, src, root, w.Verts, w.Hops)
		return
	}
	for i := 1; i < len(w.Verts); i++ {
		u, v := int(w.Verts[i-1]), int(w.Verts[i])
		if !g.HasEdge(u, v) {
			f.addf("fault-replay",
				"DG(%d,%d) %d→%d: hop %d crosses %d→%d, not a link", d, k, src, root, i-1, u, v)
			return
		}
		if failedFn(u, v) {
			f.addf("fault-replay",
				"DG(%d,%d) %d→%d: hop %d crosses failed arc %d→%d", d, k, src, root, i-1, u, v)
			return
		}
	}
	if w.Hops > fr.HopBound() {
		f.addf("fault-stretch",
			"DG(%d,%d) %d→%d under %d failed arcs: %d hops exceeds bound %d", d, k, src, root, size, w.Hops, fr.HopBound())
	}
	if w.Hops < dist[src] {
		f.addf("fault-stretch",
			"DG(%d,%d) %d→%d: walk took %d hops, below the faulted shortest path %d (broken replay)",
			d, k, src, root, w.Hops, dist[src])
	}
}

// drawArcSet samples size distinct directed arcs of g.
func drawArcSet(g *graph.Graph, size int, rng *rand.Rand) map[[2]int]bool {
	failed := make(map[[2]int]bool, size)
	n := g.NumVertices()
	for len(failed) < size {
		u := rng.Intn(n)
		nbs := g.OutNeighbors(u)
		if len(nbs) == 0 {
			continue
		}
		v := int(nbs[rng.Intn(len(nbs))])
		failed[[2]int{u, v}] = true
	}
	return failed
}

// sourceSet picks the walked sources: exhaustive on small graphs,
// seeded distinct sample above the threshold.
func sourceSet(n int, opt FaultRoutesOptions, rng *rand.Rand) []int {
	if n <= opt.SourcesAbove {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, 0, opt.Sources)
	seen := make(map[int]bool, opt.Sources)
	for len(out) < opt.Sources {
		s := rng.Intn(n)
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// arcList renders a failure set deterministically (insertion order is
// lost in the map, so sort by the packed arc id).
func arcList(failed map[[2]int]bool) [][2]int {
	out := make([][2]int, 0, len(failed))
	for a := range failed {
		out = append(out, a)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && (out[j][0] < out[j-1][0] || (out[j][0] == out[j-1][0] && out[j][1] < out[j-1][1])); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
