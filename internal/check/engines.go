package check

import (
	"fmt"
	"math/rand"
	"strconv"

	"repro/internal/graph"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/word"
)

// EnginesOptions parameterizes the engine-equivalence oracle.
type EnginesOptions struct {
	// Seed drives the message plan and the fault plan.
	Seed int64
	// Messages per directionality. 0 means min(4·N, 2048).
	Messages int
	// FailFraction of sites marked failed before traffic (at least one
	// site, never the majority). 0 means 0.05; negative disables faults.
	FailFraction float64
	// MaxFindings caps the findings per report. 0 means 32.
	MaxFindings int
	// Workers sets the scan parallelism. The two directionality units
	// (bidirectional, unidirectional) are independent — each seeds its
	// own RNG stream — so above 1 they run concurrently and the merged
	// report is identical to the sequential one.
	Workers int
}

// outcome is the engine-independent fate of one planned message.
type outcome struct {
	src, dst   word.Word
	delivered  bool
	hops       int
	dropReason string
}

func (o outcome) String() string {
	if o.delivered {
		return fmt.Sprintf("%v→%v delivered in %d hops", o.src, o.dst, o.hops)
	}
	return fmt.Sprintf("%v→%v dropped (%q) after %d hops", o.src, o.dst, o.dropReason, o.hops)
}

// Engines runs the same seeded message plan — identical sources,
// destinations and fault plan, deterministic digit-0 wildcard
// resolution — through the stepped engine (network.Network) and the
// goroutine-per-site cluster engine (network.Cluster), in both the
// uni- and bi-directional network, and requires identical per-message
// outcomes: delivered flag, hop count and drop reason. Both engines
// claim to implement the one Section 3 forwarding rule; any
// disagreement is a bug in one of them.
func Engines(d, k int, opt EnginesOptions) (Report, error) {
	rep := Report{Mode: "engines", D: d, K: k}
	n, err := word.Count(d, k)
	if err != nil {
		return rep, fmt.Errorf("check: DG(%d,%d): %w", d, k, err)
	}
	if opt.Messages <= 0 {
		opt.Messages = 4 * n
		if opt.Messages > 2048 {
			opt.Messages = 2048
		}
	}
	if opt.FailFraction == 0 {
		opt.FailFraction = 0.05
	}
	if opt.Workers > 1 {
		results := make([]shardResult, 2)
		runShards(opt.Workers, 2, func(i int) {
			uf := newFindings(opt.MaxFindings)
			checked, err := enginePair(d, k, i == 1, opt, uf)
			results[i] = shardResult{checked: checked, findings: uf.result(), full: uf.full(), err: err}
		})
		err := mergeShards(&rep, results, opt.MaxFindings)
		return rep, err
	}
	f := newFindings(opt.MaxFindings)
	for _, uni := range []bool{false, true} {
		checked, err := enginePair(d, k, uni, opt, f)
		rep.Checked += checked
		if err != nil {
			return rep, err
		}
	}
	rep.Findings = f.result()
	rep.Truncated = f.full()
	return rep, nil
}

// enginePair compares the two engines for one directionality.
func enginePair(d, k int, uni bool, opt EnginesOptions, f *findings) (int, error) {
	n, _ := word.Count(d, k)
	rng := rand.New(rand.NewSource(opt.Seed + boolSalt(uni)))

	// Fault plan: a seeded minority of sites. Sources are drawn from
	// the survivors — the stepped engine records an injection at a
	// failed source as a DropSourceFailed delivery while the cluster
	// refuses the Send outright, so failed sources have no common
	// observable outcome to compare.
	failed := map[int]bool{}
	if opt.FailFraction > 0 {
		want := int(float64(n) * opt.FailFraction)
		if want < 1 {
			want = 1
		}
		if want > n/2 {
			want = n / 2
		}
		for len(failed) < want {
			failed[rng.Intn(n)] = true
		}
	}
	plan := make([]outcome, 0, opt.Messages)
	for len(plan) < opt.Messages {
		src := rng.Intn(n)
		if failed[src] {
			continue
		}
		sw, err := graph.DeBruijnWord(d, k, src)
		if err != nil {
			return 0, fmt.Errorf("check: %w", err)
		}
		dw, err := graph.DeBruijnWord(d, k, rng.Intn(n))
		if err != nil {
			return 0, fmt.Errorf("check: %w", err)
		}
		plan = append(plan, outcome{src: sw, dst: dw})
	}

	stepped, err := runStepped(d, k, uni, opt.Seed, failed, plan)
	if err != nil {
		return 0, err
	}
	cluster, err := runCluster(d, k, uni, opt.Seed, failed, plan)
	if err != nil {
		return 0, err
	}
	diffOutcomes(d, k, uni, plan, stepped, cluster, f)
	return len(plan), nil
}

// runStepped sends the plan through the deterministic stepped engine.
func runStepped(d, k int, uni bool, seed int64, failed map[int]bool, plan []outcome) ([]outcome, error) {
	nw, err := network.New(network.Config{
		D: d, K: k,
		Unidirectional: uni,
		Policy:         network.PolicyFirst{}, // digit 0: matches the cluster's deterministic resolution
		Seed:           seed,
		Obs:            obs.NewRegistry(),
	})
	if err != nil {
		return nil, fmt.Errorf("check: %w", err)
	}
	if err := failSites(d, k, failed, nw.FailSite); err != nil {
		return nil, err
	}
	out := make([]outcome, len(plan))
	for i, m := range plan {
		del, err := nw.Send(m.src, m.dst, strconv.Itoa(i))
		if err != nil {
			return nil, fmt.Errorf("check: stepped send %v→%v: %w", m.src, m.dst, err)
		}
		out[i] = outcome{src: m.src, dst: m.dst, delivered: del.Delivered, hops: del.Hops, dropReason: del.DropReason}
	}
	return out, nil
}

// runCluster sends the plan through the goroutine-per-site engine and
// reassembles per-message outcomes from the unordered delivery log via
// the index payload.
func runCluster(d, k int, uni bool, seed int64, failed map[int]bool, plan []outcome) ([]outcome, error) {
	c, err := network.NewCluster(network.ClusterConfig{
		D: d, K: k,
		Unidirectional: uni,
		Seed:           seed,
		RandomWildcard: false, // digit 0, as in the stepped run
		Obs:            obs.NewRegistry(),
	})
	if err != nil {
		return nil, fmt.Errorf("check: %w", err)
	}
	if err := failSites(d, k, failed, c.FailSite); err != nil {
		return nil, err
	}
	c.Start()
	defer c.Stop()
	for i, m := range plan {
		if err := c.Send(m.src, m.dst, strconv.Itoa(i)); err != nil {
			return nil, fmt.Errorf("check: cluster send %v→%v: %w", m.src, m.dst, err)
		}
	}
	c.Drain()
	out := make([]outcome, len(plan))
	seen := make([]bool, len(plan))
	for _, del := range c.Deliveries() {
		i, err := strconv.Atoi(del.Msg.Payload)
		if err != nil || i < 0 || i >= len(plan) {
			return nil, fmt.Errorf("check: cluster delivery with foreign payload %q", del.Msg.Payload)
		}
		if seen[i] {
			return nil, fmt.Errorf("check: cluster delivered message %d twice", i)
		}
		seen[i] = true
		out[i] = outcome{src: del.Msg.Source, dst: del.Msg.Dest, delivered: del.Delivered, hops: del.Hops, dropReason: del.DropReason}
	}
	for i, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("check: cluster lost message %d (%v→%v): no delivery record after Drain",
				i, plan[i].src, plan[i].dst)
		}
	}
	return out, nil
}

func failSites(d, k int, failed map[int]bool, fail func(word.Word) error) error {
	for v := range failed {
		w, err := graph.DeBruijnWord(d, k, v)
		if err != nil {
			return fmt.Errorf("check: %w", err)
		}
		if err := fail(w); err != nil {
			return fmt.Errorf("check: %w", err)
		}
	}
	return nil
}

// diffOutcomes records a finding for every message the two engines
// disagree on.
func diffOutcomes(d, k int, uni bool, plan, stepped, cluster []outcome, f *findings) {
	dir := "bidirectional"
	if uni {
		dir = "unidirectional"
	}
	for i := range plan {
		s, c := stepped[i], cluster[i]
		if s.delivered != c.delivered || s.hops != c.hops || s.dropReason != c.dropReason {
			f.addf("engine-equivalence",
				"DN(%d,%d) %s message %d: stepped %v, cluster %v", d, k, dir, i, s, c)
			if f.full() {
				return
			}
		}
	}
}

func boolSalt(b bool) int64 {
	if b {
		return 0x5bf03635
	}
	return 0
}
