// Package check is the differential-verification harness of the
// reproduction: every independent implementation of the paper's route
// and distance computations is cross-checked against an oracle, and
// every engine is cross-checked against its sibling and its own
// accounting.
//
// The paper proves that three different algorithms (1, 2 and 4)
// compute the *same* optimal routes — Theorem 2's distance is the
// invariant all of them must satisfy — which makes the codebase ideal
// for differential testing: BFS on the explicit graph (internal/graph)
// is the ground truth, and any disagreement between it and a closed
// form, between two route constructions, or between two engines run on
// identical inputs is a bug by definition. Three oracle families are
// provided:
//
//   - Routes: for every ordered pair of DG(d,k) (seeded sample above
//     Options.SampleAbove vertices), Algorithm 1, Algorithm 2, the
//     linear-tree Algorithm 4 and the reusable core.Router must agree
//     with BFS distance, and every emitted Path is replayed hop by hop
//     through the explicit graph — under every wildcard chooser the
//     engines use — to prove it walks X→Y in exactly D(X,Y) real link
//     crossings (no phantom self-moves, no non-edges).
//
//   - Engines: the deterministic stepped engine (network.Network) and
//     the goroutine-per-site cluster engine (network.Cluster) must
//     produce identical per-message outcomes — delivered flag, hop
//     count, drop reason — under identical seeds and fault plans.
//
//   - Invariants: the conservation laws every engine promises are
//     re-derived from obs registry snapshots after seeded runs:
//     sent = delivered + Σ drops-by-reason for both store-and-forward
//     engines, and injected = delivered + guard trips + inflight for
//     the bufferless deflection engine.
//
// cmd/dbcheck exposes the harness as a CLI with machine-readable JSON
// verdicts; CI runs the full sweep on every graph with at most 4096
// vertices as the standing gate for routing-stack changes.
package check

import "fmt"

// Finding is one divergence: a statement the harness proved false,
// with enough context to reproduce it.
type Finding struct {
	// Oracle names the violated check, e.g. "undirected-route-replay".
	Oracle string `json:"oracle"`
	// Detail is the reproduction context (graph, pair, got/want).
	Detail string `json:"detail"`
}

func (f Finding) String() string { return f.Oracle + ": " + f.Detail }

// Report is the verdict of one checker mode on one graph.
type Report struct {
	Mode string `json:"mode"` // routes | engines | invariants
	D    int    `json:"d"`
	K    int    `json:"k"`
	// Checked counts verified units: ordered pairs (routes), messages
	// (engines) or asserted invariants (invariants).
	Checked int `json:"checked"`
	// Sampled reports that the pair set was a seeded sample rather
	// than exhaustive (routes mode above Options sample threshold).
	Sampled bool `json:"sampled,omitempty"`
	// Findings lists every divergence, capped at the configured
	// maximum; Truncated is set when the cap stopped the scan early.
	Findings  []Finding `json:"findings"`
	Truncated bool      `json:"truncated,omitempty"`
}

// OK reports a clean verdict.
func (r Report) OK() bool { return len(r.Findings) == 0 && !r.Truncated }

// findings accumulates divergences up to a cap.
type findings struct {
	list []Finding
	max  int
}

func newFindings(max int) *findings {
	if max <= 0 {
		max = 32
	}
	return &findings{max: max}
}

// full reports that the cap was reached (the scan should stop).
func (f *findings) full() bool { return len(f.list) >= f.max }

// result returns the list, never nil — JSON verdicts render a clean
// report as "findings": [].
func (f *findings) result() []Finding {
	if f.list == nil {
		return []Finding{}
	}
	return f.list
}

func (f *findings) addf(oracle, format string, args ...any) {
	if f.full() {
		return
	}
	f.list = append(f.list, Finding{Oracle: oracle, Detail: fmt.Sprintf(format, args...)})
}
