package check

import "testing"

// FuzzCheckRoutes lets the fuzzer pick the graph and the sampling
// seed; the route oracle itself is the property — any finding on any
// valid DG(d,k) is a routing-stack bug.
func FuzzCheckRoutes(f *testing.F) {
	f.Add(2, 3, int64(1))
	f.Add(3, 2, int64(2))
	f.Add(2, 1, int64(3))
	f.Add(5, 1, int64(4))
	f.Fuzz(func(t *testing.T, d, k int, seed int64) {
		if d < 2 || d > 8 || k < 1 || k > 8 {
			t.Skip()
		}
		n := 1
		for i := 0; i < k; i++ {
			n *= d
			if n > 512 {
				t.Skip()
			}
		}
		rep, err := Routes(d, k, RoutesOptions{Seed: seed, SampleAbove: 256, SamplePairs: 512})
		if err != nil {
			t.Fatalf("Routes(%d,%d): %v", d, k, err)
		}
		if !rep.OK() {
			t.Fatalf("Routes(%d,%d) seed %d: %v", d, k, seed, rep.Findings)
		}
	})
}

// FuzzEngineEquivalence lets the fuzzer pick the graph, the traffic
// seed and the fault density; the two engines must agree on every
// message either way.
func FuzzEngineEquivalence(f *testing.F) {
	f.Add(2, 3, int64(1), uint8(5))
	f.Add(3, 2, int64(2), uint8(0))
	f.Add(2, 4, int64(3), uint8(20))
	f.Fuzz(func(t *testing.T, d, k int, seed int64, failPct uint8) {
		if d < 2 || d > 6 || k < 1 || k > 6 {
			t.Skip()
		}
		n := 1
		for i := 0; i < k; i++ {
			n *= d
			if n > 256 {
				t.Skip()
			}
		}
		frac := float64(failPct%45) / 100
		if frac == 0 {
			frac = -1 // EnginesOptions: negative disables faults
		}
		rep, err := Engines(d, k, EnginesOptions{Seed: seed, Messages: 128, FailFraction: frac})
		if err != nil {
			t.Fatalf("Engines(%d,%d): %v", d, k, err)
		}
		if !rep.OK() {
			t.Fatalf("Engines(%d,%d) seed %d fail %.2f: %v", d, k, seed, frac, rep.Findings)
		}
	})
}
