package check

import (
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/core"
)

// TestFaultRoutesClean: the oracle passes on representative graphs —
// every decomposition validates and every reachable pair delivers
// within the bound under every sampled failure set of size < Trees.
func TestFaultRoutesClean(t *testing.T) {
	for _, dk := range [][2]int{{2, 3}, {2, 6}, {3, 3}, {4, 2}, {5, 1}} {
		d, k := dk[0], dk[1]
		rep, err := FaultRoutes(d, k, FaultRoutesOptions{Seed: 1})
		if err != nil {
			t.Fatalf("DG(%d,%d): %v", d, k, err)
		}
		if !rep.OK() {
			t.Fatalf("DG(%d,%d) findings: %v", d, k, rep.Findings)
		}
		if rep.Mode != "faultroutes" || rep.Checked == 0 {
			t.Fatalf("DG(%d,%d) report: %+v", d, k, rep)
		}
	}
}

// TestFaultRoutesDeterministic: the verdict is a pure function of
// (d, k, options) — byte-identical JSON across runs, the property the
// CI job diffs on.
func TestFaultRoutesDeterministic(t *testing.T) {
	opt := FaultRoutesOptions{Seed: 42, Roots: 4, Sources: 12}
	a, err := FaultRoutes(3, 4, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FaultRoutes(3, 4, opt)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("verdicts differ:\n%s\n%s", ja, jb)
	}
	if a.Sampled != (3*3*3*3 > 64) {
		t.Fatalf("Sampled = %v on %d vertices", a.Sampled, 81)
	}
}

// TestFaultRoutesOversize: graphs beyond the fault-routing bound are
// a hard error (the sweep driver skips them), wrapping ErrFaultRoute.
func TestFaultRoutesOversize(t *testing.T) {
	if _, err := FaultRoutes(2, 17, FaultRoutesOptions{}); !errors.Is(err, core.ErrFaultRoute) {
		t.Fatalf("DG(2,17) error = %v, want ErrFaultRoute", err)
	}
}
