package check

import (
	"reflect"
	"testing"
)

// reportsEqual compares everything except wall-clock-dependent fields
// (Report has none today, so this is full struct equality).
func reportsEqual(a, b Report) bool { return reflect.DeepEqual(a, b) }

// TestRoutesParallelMatchesSequential pins the sharded route scan to
// the sequential one on clean graphs, for several worker counts —
// including counts above the shard count — in both exhaustive and
// sampled modes.
func TestRoutesParallelMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		d, k int
		opt  RoutesOptions
	}{
		{2, 4, RoutesOptions{Seed: 7}},
		{3, 3, RoutesOptions{Seed: 7}},
		// Force sampled mode on a tiny graph to keep the test fast.
		{2, 5, RoutesOptions{Seed: 11, SampleAbove: 16, SamplePairs: 256}},
	} {
		seq, err := Routes(tc.d, tc.k, tc.opt)
		if err != nil {
			t.Fatalf("Routes(%d,%d) sequential: %v", tc.d, tc.k, err)
		}
		if !seq.OK() {
			t.Fatalf("Routes(%d,%d) sequential found divergences: %+v", tc.d, tc.k, seq.Findings)
		}
		for _, workers := range []int{2, 3, 64} {
			opt := tc.opt
			opt.Workers = workers
			par, err := Routes(tc.d, tc.k, opt)
			if err != nil {
				t.Fatalf("Routes(%d,%d) workers=%d: %v", tc.d, tc.k, workers, err)
			}
			if !reportsEqual(seq, par) {
				t.Errorf("Routes(%d,%d) workers=%d report %+v differs from sequential %+v",
					tc.d, tc.k, workers, par, seq)
			}
		}
	}
}

// TestEnginesParallelMatchesSequential pins the concurrent
// directionality units to the sequential report.
func TestEnginesParallelMatchesSequential(t *testing.T) {
	opt := EnginesOptions{Seed: 5, Messages: 96}
	seq, err := Engines(2, 3, opt)
	if err != nil {
		t.Fatalf("Engines sequential: %v", err)
	}
	if !seq.OK() {
		t.Fatalf("Engines sequential found divergences: %+v", seq.Findings)
	}
	opt.Workers = 4
	par, err := Engines(2, 3, opt)
	if err != nil {
		t.Fatalf("Engines workers=4: %v", err)
	}
	if !reportsEqual(seq, par) {
		t.Errorf("Engines workers=4 report %+v differs from sequential %+v", par, seq)
	}
}

// TestInvariantsParallelMatchesSequential pins the concurrent scenario
// units to the sequential report.
func TestInvariantsParallelMatchesSequential(t *testing.T) {
	opt := InvariantsOptions{Seed: 5, Messages: 64, Rounds: 48}
	seq, err := Invariants(2, 3, opt)
	if err != nil {
		t.Fatalf("Invariants sequential: %v", err)
	}
	if !seq.OK() {
		t.Fatalf("Invariants sequential found divergences: %+v", seq.Findings)
	}
	opt.Workers = 4
	par, err := Invariants(2, 3, opt)
	if err != nil {
		t.Fatalf("Invariants workers=4: %v", err)
	}
	if !reportsEqual(seq, par) {
		t.Errorf("Invariants workers=4 report %+v differs from sequential %+v", par, seq)
	}
}

// TestRoutesParallelWorkerCountInvariance pins the documented stronger
// property of the sharded scan: for ANY parallel worker count the
// shard decomposition — and hence the verdict — is the same.
func TestRoutesParallelWorkerCountInvariance(t *testing.T) {
	base, err := Routes(2, 4, RoutesOptions{Seed: 9, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{3, 5, 16} {
		rep, err := Routes(2, 4, RoutesOptions{Seed: 9, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reportsEqual(base, rep) {
			t.Errorf("workers=%d report %+v differs from workers=2 report %+v", workers, rep, base)
		}
	}
}

// TestMergeShards exercises the merge on synthetic shard results:
// ordering, cap truncation, checked summation, first-error-wins.
func TestMergeShards(t *testing.T) {
	mk := func(oracle string) []Finding { return []Finding{{Oracle: oracle, Detail: "x"}} }

	rep := Report{}
	err := mergeShards(&rep, []shardResult{
		{checked: 3, findings: mk("a")},
		{checked: 4, findings: []Finding{}},
		{checked: 5, findings: mk("b")},
	}, 32)
	if err != nil {
		t.Fatalf("mergeShards: %v", err)
	}
	if rep.Checked != 12 || rep.Truncated {
		t.Errorf("merged report = %+v, want Checked 12, not truncated", rep)
	}
	if len(rep.Findings) != 2 || rep.Findings[0].Oracle != "a" || rep.Findings[1].Oracle != "b" {
		t.Errorf("merged findings %+v not in shard order", rep.Findings)
	}

	// Cap truncation: 3 findings into a cap of 2.
	rep = Report{}
	if err := mergeShards(&rep, []shardResult{
		{findings: append(mk("a"), mk("b")...)},
		{findings: mk("c")},
	}, 2); err != nil {
		t.Fatalf("mergeShards: %v", err)
	}
	if len(rep.Findings) != 2 || !rep.Truncated {
		t.Errorf("capped merge = %+v, want 2 findings and truncated", rep)
	}

	// A shard that hit its own cap marks the report truncated even if
	// the merged list has room.
	rep = Report{}
	if err := mergeShards(&rep, []shardResult{{findings: mk("a"), full: true}}, 32); err != nil {
		t.Fatalf("mergeShards: %v", err)
	}
	if !rep.Truncated {
		t.Errorf("merge of a full shard = %+v, want truncated", rep)
	}

	// First shard error in shard order wins.
	rep = Report{}
	errA := errShard("a")
	if err := mergeShards(&rep, []shardResult{{err: errA}, {err: errShard("b")}}, 32); err != errA {
		t.Errorf("mergeShards error = %v, want %v", err, errA)
	}
}

type errShard string

func (e errShard) Error() string { return string(e) }
