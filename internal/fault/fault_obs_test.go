package fault

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/obs"
)

func TestFaultObserver(t *testing.T) {
	g, err := graph.DeBruijn(graph.Undirected, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	SetObserver(reg)
	defer SetObserver(nil)

	rep, err := SampledTolerance(g, 1, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Tolerated {
		t.Fatalf("DN(2,4) should tolerate 1 failure: %+v", rep)
	}
	res, err := RerouteStretch(g, []int{0}, 8, 11)
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if got := snap.Counter("fault_sets_examined_total"); got != 5 {
		t.Errorf("sets examined = %d, want 5", got)
	}
	if got := snap.Counter("fault_disconnecting_sets_total"); got != 0 {
		t.Errorf("disconnecting sets = %d, want 0", got)
	}
	if got := snap.Counter("fault_stretch_pairs_total"); got != int64(res.Pairs) {
		t.Errorf("stretch pairs = %d, want %d", got, res.Pairs)
	}
	if got := snap.Counter("fault_disconnected_pairs_total"); got != int64(res.Disconnected) {
		t.Errorf("disconnected pairs = %d, want %d", got, res.Disconnected)
	}
}
