package fault

import (
	"testing"

	"repro/internal/graph"
)

func deBruijn(t *testing.T, kind graph.Kind, d, k int) *graph.Graph {
	t.Helper()
	g, err := graph.DeBruijn(kind, d, k)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPradhanReddyToleranceExhaustive(t *testing.T) {
	// E8: the paper (§1, citing Pradhan–Reddy) claims tolerance of up
	// to d-1 failures; the claim concerns the bi-directional network.
	// Undirected DG(d,k) has vertex connectivity 2d-2, so every
	// failure set of size ≤ 2d-3 (⊇ the paper's ≤ d-1) leaves it
	// connected.
	for _, dk := range [][2]int{{2, 3}, {2, 4}, {3, 2}, {3, 3}, {4, 2}, {5, 2}} {
		d, k := dk[0], dk[1]
		g := deBruijn(t, graph.Undirected, d, k)
		for f := 0; f <= 2*d-3; f++ {
			rep, err := ExhaustiveTolerance(g, f)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Tolerated {
				t.Errorf("undirected DG(%d,%d) disconnected by %d failures: %v", d, k, f, rep.CounterExample)
			}
		}
	}
}

func TestDirectedToleranceIsDMinus2(t *testing.T) {
	// The uni-directional network is weaker: constant vertices have
	// out-degree d-1, so strong connectivity is d-1 and only d-2
	// failures are tolerated. Removing all out-neighbors of 0^k (the
	// d-1 vertices 0^{k-1}a, a ≠ 0) silences it.
	for _, dk := range [][2]int{{2, 3}, {3, 2}, {3, 3}, {4, 2}, {5, 2}} {
		d, k := dk[0], dk[1]
		g := deBruijn(t, graph.Directed, d, k)
		for f := 0; f <= d-2; f++ {
			rep, err := ExhaustiveTolerance(g, f)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Tolerated {
				t.Errorf("directed DG(%d,%d) disconnected by %d failures: %v", d, k, f, rep.CounterExample)
			}
		}
		if d >= 3 { // d-1 ≥ 2 failures: find the counterexample
			rep, err := ExhaustiveTolerance(g, d-1)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Tolerated {
				t.Errorf("directed DG(%d,%d) unexpectedly survived all %d-failure sets", d, k, d-1)
			}
		}
	}
}

func TestUndirectedConnectivityCounterexampleAt2dMinus2(t *testing.T) {
	// Removing the 2d-2 neighbors of a constant vertex isolates it.
	for _, dk := range [][2]int{{2, 3}, {3, 2}, {3, 3}} {
		d, k := dk[0], dk[1]
		g := deBruijn(t, graph.Undirected, d, k)
		rep, err := ExhaustiveTolerance(g, 2*d-2)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Tolerated {
			t.Errorf("undirected DG(%d,%d) survived all %d-failure sets", d, k, 2*d-2)
		}
	}
}

func TestToleranceBreaksAtSomePoint(t *testing.T) {
	// DG(2,3) undirected: vertices 000 and 111 have degree 2, so some
	// 2-failure set disconnects them.
	g := deBruijn(t, graph.Undirected, 2, 3)
	rep, err := ExhaustiveTolerance(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tolerated {
		t.Error("DG(2,3) survived all 2-failure sets; expected a counterexample")
	}
	if len(rep.CounterExample) != 2 {
		t.Errorf("counterexample = %v", rep.CounterExample)
	}
}

func TestExhaustiveToleranceValidates(t *testing.T) {
	g := deBruijn(t, graph.Undirected, 2, 3)
	if _, err := ExhaustiveTolerance(g, -1); err == nil {
		t.Error("accepted negative failure count")
	}
	if _, err := ExhaustiveTolerance(g, 8); err == nil {
		t.Error("accepted failure count = N")
	}
	big := deBruijn(t, graph.Undirected, 2, 10)
	if _, err := ExhaustiveTolerance(big, 5); err == nil {
		t.Error("accepted over-budget enumeration")
	}
}

func TestSampledTolerance(t *testing.T) {
	g := deBruijn(t, graph.Undirected, 2, 6)
	rep, err := SampledTolerance(g, 1, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Tolerated || rep.Sets != 200 {
		t.Errorf("report = %+v", rep)
	}
	if _, err := SampledTolerance(g, 1, 0, 1); err == nil {
		t.Error("accepted zero trials")
	}
	if _, err := SampledTolerance(g, 64, 1, 1); err == nil {
		t.Error("accepted failure count = N")
	}
}

func TestSampledToleranceFindsWeakCut(t *testing.T) {
	// A path graph is disconnected by any interior failure; sampling
	// must find one quickly.
	g, err := graph.New(graph.Undirected, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := g.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := SampledTolerance(g, 1, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tolerated {
		t.Error("sampling missed an obvious cut vertex")
	}
}

func TestMinVertexConnectivity(t *testing.T) {
	// Undirected DG(2,3): minimum degree 2 bounds connectivity by 2;
	// Pradhan–Reddy guarantees ≥ d-1 = 1; exact value is 2.
	g := deBruijn(t, graph.Undirected, 2, 3)
	conn, err := MinVertexConnectivity(g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if conn != 2 {
		t.Errorf("connectivity = %d, want 2", conn)
	}
	// Sampled variant lower-bounds nothing but must not exceed exact.
	sampled, err := MinVertexConnectivity(g, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	if sampled < conn {
		t.Errorf("sampled connectivity %d below exact %d", sampled, conn)
	}
}

func TestMinVertexConnectivityDirected(t *testing.T) {
	g := deBruijn(t, graph.Directed, 3, 2)
	conn, err := MinVertexConnectivity(g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Directed DG(3,2): constants have in/out degree d-1 = 2.
	if conn != 2 {
		t.Errorf("connectivity = %d, want 2", conn)
	}
}

func TestRerouteStretch(t *testing.T) {
	g := deBruijn(t, graph.Undirected, 2, 5)
	res, err := RerouteStretch(g, []int{3, 17}, 200, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs+res.Disconnected != 200 {
		t.Errorf("measured %d pairs", res.Pairs+res.Disconnected)
	}
	if res.MeanStretch < 1 {
		t.Errorf("mean stretch %v below 1", res.MeanStretch)
	}
	if res.MaxStretch < res.MeanStretch {
		t.Errorf("max %v below mean %v", res.MaxStretch, res.MeanStretch)
	}
}

func TestRerouteStretchNoFailuresIsUnity(t *testing.T) {
	g := deBruijn(t, graph.Undirected, 2, 4)
	res, err := RerouteStretch(g, nil, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanStretch != 1 || res.MaxStretch != 1 || res.MeanExtraHops != 0 {
		t.Errorf("fault-free stretch = %+v", res)
	}
	if res.Disconnected != 0 {
		t.Errorf("fault-free disconnections: %d", res.Disconnected)
	}
}

func TestRerouteStretchValidates(t *testing.T) {
	g := deBruijn(t, graph.Undirected, 2, 3)
	if _, err := RerouteStretch(g, []int{99}, 10, 1); err == nil {
		t.Error("accepted out-of-range failure")
	}
	if _, err := RerouteStretch(g, nil, 0, 1); err == nil {
		t.Error("accepted zero pairs")
	}
	if _, err := RerouteStretch(g, []int{0, 1, 2, 3, 4, 5, 6, 7}, 10, 1); err == nil {
		t.Error("accepted all vertices failed")
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct{ n, k, want int }{
		{5, 0, 1}, {5, 1, 5}, {5, 2, 10}, {5, 5, 1}, {5, 6, 0}, {10, 3, 120},
	}
	for _, c := range cases {
		if got := binomial(c.n, c.k); got != c.want {
			t.Errorf("C(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}
