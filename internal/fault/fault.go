// Package fault implements the fault-tolerance experiments behind the
// paper's Section 1 claim (via Pradhan–Reddy [8]) that de Bruijn
// networks tolerate up to d-1 processor failures: every failure set of
// size < d leaves the surviving network connected, so messages can
// still be routed — at some stretch — around the failed sites.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/stats"
)

// Fault metric names (README.md § Observability).
const (
	metricSetsExamined  = "fault_sets_examined_total"
	metricDisconnecting = "fault_disconnecting_sets_total"
	metricStretchPairs  = "fault_stretch_pairs_total"
	metricDisconnected  = "fault_disconnected_pairs_total"
)

// observer is the package-wide registry: the tolerance checks are
// free functions over graphs, so the hook is package level rather
// than per-object. Atomic so concurrent sweeps may run while tests
// attach their own registry.
var observer atomic.Pointer[obs.Registry]

// SetObserver attaches a metrics registry counting failure-set
// examinations, disconnecting sets found, and reroute-stretch pair
// outcomes. Pass nil to detach.
func SetObserver(reg *obs.Registry) { observer.Store(reg) }

func obsReg() *obs.Registry { return observer.Load() }

// ErrTooManySets is returned when exhaustive enumeration of failure
// sets would exceed the configured budget.
var ErrTooManySets = errors.New("fault: too many failure sets, use SampledTolerance")

// Report summarizes a tolerance check.
type Report struct {
	Failures  int  // size of each failure set tried
	Sets      int  // number of failure sets examined
	Tolerated bool // true when every examined set left the graph connected
	// CounterExample holds a disconnecting failure set when
	// Tolerated is false.
	CounterExample []int
}

// maxExhaustiveSets caps the work of ExhaustiveTolerance.
const maxExhaustiveSets = 2_000_000

// ExhaustiveTolerance checks every failure set of exactly f vertices:
// the graph must stay (strongly) connected after their removal.
func ExhaustiveTolerance(g *graph.Graph, f int) (Report, error) {
	n := g.NumVertices()
	if f < 0 || f >= n {
		return Report{}, fmt.Errorf("fault: failure count %d out of range [0,%d)", f, n)
	}
	total := binomial(n, f)
	if total < 0 || total > maxExhaustiveSets {
		return Report{}, fmt.Errorf("%w: C(%d,%d)", ErrTooManySets, n, f)
	}
	reg := obsReg()
	rep := Report{Failures: f, Tolerated: true}
	set := make([]int, f)
	var rec func(start, idx int) bool
	rec = func(start, idx int) bool {
		if idx == f {
			rep.Sets++
			reg.Counter(metricSetsExamined).Inc()
			blocked := make(map[int]bool, f)
			for _, v := range set {
				blocked[v] = true
			}
			if !g.IsConnectedAvoiding(blocked) {
				rep.Tolerated = false
				rep.CounterExample = append([]int(nil), set...)
				reg.Counter(metricDisconnecting).Inc()
				return false
			}
			return true
		}
		for v := start; v < n; v++ {
			set[idx] = v
			if !rec(v+1, idx+1) {
				return false
			}
		}
		return true
	}
	rec(0, 0)
	return rep, nil
}

// SampledTolerance checks `trials` uniformly random failure sets of
// exactly f vertices.
func SampledTolerance(g *graph.Graph, f, trials int, seed int64) (Report, error) {
	n := g.NumVertices()
	if f < 0 || f >= n {
		return Report{}, fmt.Errorf("fault: failure count %d out of range [0,%d)", f, n)
	}
	if trials < 1 {
		return Report{}, fmt.Errorf("fault: need at least one trial, got %d", trials)
	}
	reg := obsReg()
	rng := rand.New(rand.NewSource(seed))
	rep := Report{Failures: f, Tolerated: true}
	for trial := 0; trial < trials; trial++ {
		blocked := make(map[int]bool, f)
		for len(blocked) < f {
			blocked[rng.Intn(n)] = true
		}
		rep.Sets++
		reg.Counter(metricSetsExamined).Inc()
		if !g.IsConnectedAvoiding(blocked) {
			rep.Tolerated = false
			rep.CounterExample = keys(blocked)
			reg.Counter(metricDisconnecting).Inc()
			return rep, nil
		}
	}
	return rep, nil
}

// MinVertexConnectivity returns the minimum over sampled vertex pairs
// of the number of vertex-disjoint paths — a Menger upper bound on the
// failures needed to disconnect the graph. With pairs ≤ 0 every
// ordered pair is examined.
func MinVertexConnectivity(g *graph.Graph, pairs int, seed int64) (int, error) {
	n := g.NumVertices()
	if n < 2 {
		return 0, errors.New("fault: connectivity needs at least two vertices")
	}
	best := n
	if pairs <= 0 {
		for s := 0; s < n; s++ {
			for t := 0; t < n; t++ {
				if s == t {
					continue
				}
				k, err := g.VertexDisjointPaths(s, t)
				if err != nil {
					return 0, err
				}
				if k < best {
					best = k
				}
			}
		}
		return best, nil
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < pairs; i++ {
		s := rng.Intn(n)
		t := rng.Intn(n)
		if s == t {
			continue
		}
		k, err := g.VertexDisjointPaths(s, t)
		if err != nil {
			return 0, err
		}
		if k < best {
			best = k
		}
	}
	return best, nil
}

// StretchResult reports rerouting cost under failures.
type StretchResult struct {
	Pairs         int     // pairs measured (reachable, distinct, alive)
	Disconnected  int     // pairs that became unreachable
	MeanStretch   float64 // mean of (faulty distance) / (fault-free distance)
	MaxStretch    float64
	MeanExtraHops float64 // mean additive detour
}

// RerouteStretch measures how much longer shortest routes become when
// the vertices in failed are removed, over `pairs` random ordered
// pairs of surviving vertices.
func RerouteStretch(g *graph.Graph, failed []int, pairs int, seed int64) (StretchResult, error) {
	if pairs < 1 {
		return StretchResult{}, fmt.Errorf("fault: need at least one pair, got %d", pairs)
	}
	n := g.NumVertices()
	blocked := make(map[int]bool, len(failed))
	for _, v := range failed {
		if v < 0 || v >= n {
			return StretchResult{}, fmt.Errorf("fault: failed vertex %d out of range", v)
		}
		blocked[v] = true
	}
	if len(blocked) >= n {
		return StretchResult{}, errors.New("fault: all vertices failed")
	}
	rng := rand.New(rand.NewSource(seed))
	var res StretchResult
	var stretch, extra stats.Accumulator
	for res.Pairs+res.Disconnected < pairs {
		s := rng.Intn(n)
		t := rng.Intn(n)
		if s == t || blocked[s] || blocked[t] {
			continue
		}
		base, err := g.BFSFrom(s)
		if err != nil {
			return StretchResult{}, err
		}
		if base[t] <= 0 {
			continue // unreachable even without failures, or s == t
		}
		avoid, err := g.BFSFromAvoiding(s, blocked)
		if err != nil {
			return StretchResult{}, err
		}
		if avoid[t] < 0 {
			res.Disconnected++
			obsReg().Counter(metricDisconnected).Inc()
			continue
		}
		res.Pairs++
		obsReg().Counter(metricStretchPairs).Inc()
		stretch.Add(float64(avoid[t]) / float64(base[t]))
		extra.Add(float64(avoid[t] - base[t]))
	}
	res.MeanStretch = stretch.Mean()
	res.MaxStretch = stretch.Max()
	res.MeanExtraHops = extra.Mean()
	return res, nil
}

func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	res := 1
	for i := 0; i < k; i++ {
		res = res * (n - i) / (i + 1)
		if res > maxExhaustiveSets*4 {
			return -1 // overflow guard; caller treats as too many
		}
	}
	return res
}

func keys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	return out
}
