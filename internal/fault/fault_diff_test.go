package fault

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// TestStretchVsArborescenceFailover reconciles the two failure models
// that now coexist: RerouteStretch counts a pair `disconnected` when
// BFS avoiding the failed vertices finds no path, while the failover
// kernel walks the arc-disjoint arborescences, treating a failed site
// as every arc into it being dead. Their verdicts must never cross in
// the direction that would mark one of them wrong:
//
//   - a walk that delivers traverses only live vertices, so the pair
//     is BFS-reachable — it must NOT be counted disconnected;
//   - a BFS-disconnected pair has no surviving path at all, so the
//     walk must NOT claim delivery.
//
// The converse (reachable ⟹ delivered) is deliberately not asserted:
// one failed site kills up to 2d arcs, which can exceed the walk's
// arc-disjointness tolerance while leaving the pair BFS-reachable.
func TestStretchVsArborescenceFailover(t *testing.T) {
	for _, dk := range [][2]int{{2, 4}, {2, 5}, {3, 3}, {4, 2}} {
		d, k := dk[0], dk[1]
		g := deBruijn(t, graph.Undirected, d, k)
		fr, err := core.NewFaultRouter(d, k)
		if err != nil {
			t.Fatal(err)
		}
		n := g.NumVertices()
		rng := rand.New(rand.NewSource(int64(100*d + k)))
		for trial := 0; trial < 6; trial++ {
			nfail := 1 + trial%3
			blocked := make(map[int]bool, nfail)
			for len(blocked) < nfail {
				blocked[rng.Intn(n)] = true
			}
			failedArc := func(u, v int) bool { return blocked[u] || blocked[v] }

			var delivered, reachable, disagree int
			for s := 0; s < n; s++ {
				if blocked[s] {
					continue
				}
				avoid, err := g.BFSFromAvoiding(s, blocked)
				if err != nil {
					t.Fatal(err)
				}
				for u := 0; u < n; u++ {
					if u == s || blocked[u] {
						continue
					}
					w, err := fr.Walk(s, u, failedArc)
					if err != nil {
						t.Fatal(err)
					}
					if w.Delivered {
						delivered++
					}
					if avoid[u] >= 0 {
						reachable++
					}
					if w.Delivered && avoid[u] < 0 {
						disagree++
						t.Errorf("DG(%d,%d) failures %v: pair (%d,%d) delivered by failover but counted disconnected by stretch sweep",
							d, k, keys(blocked), s, u)
					}
					if disagree > 3 {
						t.Fatalf("too many disagreements, aborting sweep")
					}
				}
			}
			if reachable < delivered {
				t.Fatalf("DG(%d,%d) failures %v: %d delivered > %d reachable",
					d, k, keys(blocked), delivered, reachable)
			}
		}
	}
}

// TestStretchAccountingExact pins RerouteStretch's conservation:
// measured + disconnected pairs sum exactly to the requested count,
// and single-site failure sweeps on the undirected network (vertex
// connectivity 2d−2 ≥ 2) never report a disconnection at all.
func TestStretchAccountingExact(t *testing.T) {
	g := deBruijn(t, graph.Undirected, 3, 3)
	for v := 0; v < 9; v++ {
		res, err := RerouteStretch(g, []int{v * 3}, 64, int64(v))
		if err != nil {
			t.Fatal(err)
		}
		if res.Pairs+res.Disconnected != 64 {
			t.Fatalf("failed {%d}: %d measured + %d disconnected ≠ 64", v*3, res.Pairs, res.Disconnected)
		}
		if res.Disconnected != 0 {
			t.Fatalf("failed {%d}: single site disconnected %d pairs on a 2d-2 connected graph", v*3, res.Disconnected)
		}
		if res.MaxStretch < 1 || res.MeanStretch < 1 {
			t.Fatalf("failed {%d}: stretch below 1: %+v", v*3, res)
		}
	}
}
