package routetable

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/word"
)

func TestTableEntriesMatchNextHopFunctions(t *testing.T) {
	site := word.MustParse(2, "0110")
	// Canonical next-hop oracle on the scratch-forced tier: tables are
	// built through the tiered kernels, so the reference must share
	// their canonical tie-break while exercising a different tier.
	refKn := core.NewKernels(core.KernelConfig{TableBudget: -1, DisablePacked: true})
	for _, uni := range []bool{true, false} {
		tbl, err := Build(site, uni)
		if err != nil {
			t.Fatal(err)
		}
		if tbl.Entries() != 16 || tbl.MemoryBytes() != 16 {
			t.Errorf("entries = %d", tbl.Entries())
		}
		if _, err := word.ForEach(2, 4, func(dst word.Word) bool {
			got, more, err := tbl.NextHop(dst)
			if err != nil {
				t.Fatal(err)
			}
			var want core.Hop
			var wantMore bool
			if uni {
				want, wantMore, err = core.NextHopDirected(site, dst)
			} else {
				want, wantMore, err = refKn.NextHopUndirected(site, dst)
			}
			if err != nil {
				t.Fatal(err)
			}
			if more != wantMore || (more && got != want) {
				t.Fatalf("uni=%v dst=%v: table %v/%v, function %v/%v", uni, dst, got, more, want, wantMore)
			}
			return true
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestNetworkRouteIsOptimalExhaustive(t *testing.T) {
	net, err := BuildAll(2, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(71))
	chooser := func(int, word.Word, core.Hop) byte { return byte(rng.Intn(2)) }
	if _, err := word.ForEach(2, 4, func(src word.Word) bool {
		if _, err := word.ForEach(2, 4, func(dst word.Word) bool {
			walk, err := net.Route(src, dst, chooser)
			if err != nil {
				t.Fatal(err)
			}
			want, err := core.UndirectedDistance(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			if len(walk)-1 != want {
				t.Fatalf("%v→%v: %d hops, want %d", src, dst, len(walk)-1, want)
			}
			if !walk[len(walk)-1].Equal(dst) {
				t.Fatalf("walk ends at %v", walk[len(walk)-1])
			}
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkRouteUnidirectional(t *testing.T) {
	net, err := BuildAll(3, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := word.ForEach(3, 2, func(src word.Word) bool {
		if _, err := word.ForEach(3, 2, func(dst word.Word) bool {
			walk, err := net.Route(src, dst, nil)
			if err != nil {
				t.Fatal(err)
			}
			want, err := core.DirectedDistance(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			if len(walk)-1 != want {
				t.Fatalf("%v→%v: %d hops, want %d", src, dst, len(walk)-1, want)
			}
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkMemoryScalesQuadratically(t *testing.T) {
	net3, err := BuildAll(2, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	net4, err := BuildAll(2, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if net3.TotalMemoryBytes() != 64 || net4.TotalMemoryBytes() != 256 {
		t.Errorf("memory: %d, %d", net3.TotalMemoryBytes(), net4.TotalMemoryBytes())
	}
}

func TestValidation(t *testing.T) {
	if _, err := Build(word.Word{}, false); err == nil {
		t.Error("accepted zero-value site")
	}
	tbl, err := Build(word.MustParse(2, "01"), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tbl.NextHop(word.MustParse(3, "01")); err == nil {
		t.Error("accepted wrong-base destination")
	}
	if _, more, err := tbl.NextHop(word.MustParse(2, "01")); err != nil || more {
		t.Error("self lookup should report done")
	}
	net, err := BuildAll(2, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Table(word.MustParse(2, "011")); err == nil {
		t.Error("accepted wrong-length site")
	}
	if _, err := net.Route(word.MustParse(2, "011"), word.MustParse(2, "01"), nil); err == nil {
		t.Error("accepted wrong-length source")
	}
	if _, err := BuildAll(2, 80, false); err == nil {
		t.Error("accepted overflowing size")
	}
}

func TestTableSiteAccessor(t *testing.T) {
	site := word.MustParse(2, "010")
	tbl, err := Build(site, true)
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Site().Equal(site) {
		t.Error("Site accessor wrong")
	}
}

// buildLegacy is the pre-kernel Build: one pooled one-shot next-hop
// computation per destination, kept as the benchmark baseline for the
// tiered rebuild.
func buildLegacy(b *testing.B, site word.Word, unidirectional bool) {
	b.Helper()
	d, k := site.Base(), site.Len()
	if _, err := word.ForEach(d, k, func(dst word.Word) bool {
		if dst.Equal(site) {
			return true
		}
		var err error
		var more bool
		if unidirectional {
			_, more, err = core.NextHopDirected(site, dst)
		} else {
			_, more, err = core.NextHopUndirected(site, dst)
		}
		if err != nil || !more {
			b.Fatalf("next hop for %v: more=%v err=%v", dst, more, err)
		}
		return true
	}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkBuild is the regression benchmark of the tiered rebuild:
// Build (packed kernels) and BuildAll (shared rank table) against the
// legacy per-destination one-shot loop.
func BenchmarkBuild(b *testing.B) {
	site := word.MustParse(2, "01101001")
	b.Run("legacy/site-2-8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			buildLegacy(b, site, false)
		}
	})
	b.Run("kernels/site-2-8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Build(site, false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("kernels/all-2-8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := BuildAll(2, 8, false); err != nil {
				b.Fatal(err)
			}
		}
	})
}
