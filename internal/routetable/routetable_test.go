package routetable

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/word"
)

func TestTableEntriesMatchNextHopFunctions(t *testing.T) {
	site := word.MustParse(2, "0110")
	for _, uni := range []bool{true, false} {
		tbl, err := Build(site, uni)
		if err != nil {
			t.Fatal(err)
		}
		if tbl.Entries() != 16 || tbl.MemoryBytes() != 16 {
			t.Errorf("entries = %d", tbl.Entries())
		}
		if _, err := word.ForEach(2, 4, func(dst word.Word) bool {
			got, more, err := tbl.NextHop(dst)
			if err != nil {
				t.Fatal(err)
			}
			var want core.Hop
			var wantMore bool
			if uni {
				want, wantMore, err = core.NextHopDirected(site, dst)
			} else {
				want, wantMore, err = core.NextHopUndirected(site, dst)
			}
			if err != nil {
				t.Fatal(err)
			}
			if more != wantMore || (more && got != want) {
				t.Fatalf("uni=%v dst=%v: table %v/%v, function %v/%v", uni, dst, got, more, want, wantMore)
			}
			return true
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestNetworkRouteIsOptimalExhaustive(t *testing.T) {
	net, err := BuildAll(2, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(71))
	chooser := func(int, word.Word, core.Hop) byte { return byte(rng.Intn(2)) }
	if _, err := word.ForEach(2, 4, func(src word.Word) bool {
		if _, err := word.ForEach(2, 4, func(dst word.Word) bool {
			walk, err := net.Route(src, dst, chooser)
			if err != nil {
				t.Fatal(err)
			}
			want, err := core.UndirectedDistance(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			if len(walk)-1 != want {
				t.Fatalf("%v→%v: %d hops, want %d", src, dst, len(walk)-1, want)
			}
			if !walk[len(walk)-1].Equal(dst) {
				t.Fatalf("walk ends at %v", walk[len(walk)-1])
			}
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkRouteUnidirectional(t *testing.T) {
	net, err := BuildAll(3, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := word.ForEach(3, 2, func(src word.Word) bool {
		if _, err := word.ForEach(3, 2, func(dst word.Word) bool {
			walk, err := net.Route(src, dst, nil)
			if err != nil {
				t.Fatal(err)
			}
			want, err := core.DirectedDistance(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			if len(walk)-1 != want {
				t.Fatalf("%v→%v: %d hops, want %d", src, dst, len(walk)-1, want)
			}
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkMemoryScalesQuadratically(t *testing.T) {
	net3, err := BuildAll(2, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	net4, err := BuildAll(2, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if net3.TotalMemoryBytes() != 64 || net4.TotalMemoryBytes() != 256 {
		t.Errorf("memory: %d, %d", net3.TotalMemoryBytes(), net4.TotalMemoryBytes())
	}
}

func TestValidation(t *testing.T) {
	if _, err := Build(word.Word{}, false); err == nil {
		t.Error("accepted zero-value site")
	}
	tbl, err := Build(word.MustParse(2, "01"), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tbl.NextHop(word.MustParse(3, "01")); err == nil {
		t.Error("accepted wrong-base destination")
	}
	if _, more, err := tbl.NextHop(word.MustParse(2, "01")); err != nil || more {
		t.Error("self lookup should report done")
	}
	net, err := BuildAll(2, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Table(word.MustParse(2, "011")); err == nil {
		t.Error("accepted wrong-length site")
	}
	if _, err := net.Route(word.MustParse(2, "011"), word.MustParse(2, "01"), nil); err == nil {
		t.Error("accepted wrong-length source")
	}
	if _, err := BuildAll(2, 80, false); err == nil {
		t.Error("accepted overflowing size")
	}
}

func TestTableSiteAccessor(t *testing.T) {
	site := word.MustParse(2, "010")
	tbl, err := Build(site, true)
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Site().Equal(site) {
		t.Error("Site accessor wrong")
	}
}
