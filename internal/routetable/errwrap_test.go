package routetable

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/word"
)

// TestNextHopFailure is the regression test for the Build error path
// that used to report "next hop for %v: <nil>" whenever the next-hop
// function returned more == false without an error: the two failure
// shapes must be distinguished, and a real error must stay reachable
// through errors.Is/As.
func TestNextHopFailure(t *testing.T) {
	dst := word.MustParse(2, "0110")

	sentinel := errors.New("boom")
	err := nextHopFailure(dst, sentinel, true)
	if !errors.Is(err, sentinel) {
		t.Fatalf("herr not wrapped: %v", err)
	}
	if strings.Contains(err.Error(), "<nil>") {
		t.Fatalf("error mentions <nil>: %v", err)
	}

	err = nextHopFailure(dst, nil, false)
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("no-progress failure = %v, want ErrUnreachable", err)
	}
	if !strings.Contains(err.Error(), dst.String()) {
		t.Fatalf("unreachable error does not name the destination: %v", err)
	}
	if strings.Contains(err.Error(), "<nil>") {
		t.Fatalf("error mentions <nil>: %v", err)
	}

	// When herr and !more coincide, the error wins (it explains why no
	// progress was possible).
	err = nextHopFailure(dst, sentinel, false)
	if !errors.Is(err, sentinel) || errors.Is(err, ErrUnreachable) {
		t.Fatalf("combined failure = %v, want the wrapped error", err)
	}

	if err := nextHopFailure(dst, nil, true); err != nil {
		t.Fatalf("success shape produced %v", err)
	}
}

// TestBuildErrorsWrap checks Build's own failure modes stay typed.
func TestBuildErrorsWrap(t *testing.T) {
	if _, err := Build(word.Word{}, false); err == nil {
		t.Fatal("zero site accepted")
	}
	// Oversized networks overflow word.Count and must wrap its error.
	big := word.MustParse(36, strings.Repeat("z", 13))
	if _, err := Build(big, false); err == nil {
		t.Fatal("overflowing network accepted")
	} else if !strings.HasPrefix(err.Error(), "routetable: ") {
		t.Fatalf("unprefixed error: %v", err)
	}
}
