// Package routetable precomputes per-site forwarding tables for the
// de Bruijn network: for every destination, the optimal next hop.
// This is the classical space/time alternative to the paper's on-line
// algorithms — O(N) memory per site and O(1) forwarding versus O(1)
// memory and O(k) (or O(k²)) per-hop computation. The paper's
// algorithms make the tables unnecessary; this package quantifies what
// they replace (benchmarked at the repository root).
package routetable

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/word"
)

// Table is one site's forwarding table.
type Table struct {
	site           word.Word
	unidirectional bool
	// next[r] is the optimal next hop toward the destination of rank
	// r; the entry for the site itself is the zero Hop with self[r].
	next []core.Hop
	self int // rank of the site
}

// ErrUnreachable reports a destination the next-hop function refused
// to make progress toward (more == false with no error) — impossible
// on a healthy DG(d,k), so surfacing it beats a table that silently
// drops traffic.
var ErrUnreachable = errors.New("routetable: destination unreachable")

// nextHopFailure distinguishes the two ways a next-hop computation can
// fail while building a table: a real error (wrapped, so callers can
// errors.Is/As into it) or no progress without an error, which
// previously produced a misleading "next hop for v: <nil>" message.
func nextHopFailure(dst word.Word, herr error, more bool) error {
	if herr != nil {
		return fmt.Errorf("routetable: next hop for %v: %w", dst, herr)
	}
	if !more {
		return fmt.Errorf("%w: %v", ErrUnreachable, dst)
	}
	return nil
}

// Build computes the table of one site in O(N·k): one next-hop
// computation per destination, through a tiered kernel engine
// (core.Kernels) so small alphabets run on the bit-packed kernels.
// The rank-table tier is left off here — a single site doesn't
// amortize a full pair-matrix build; BuildAll, which does, turns it
// on.
func Build(site word.Word, unidirectional bool) (*Table, error) {
	return buildWith(site, unidirectional, core.NewKernels(core.KernelConfig{TableBudget: -1}))
}

// buildWith is Build on a caller-owned kernel engine, so BuildAll can
// share one engine — and, on table-eligible graphs, the one shared
// rank table — across every site.
func buildWith(site word.Word, unidirectional bool, kn *core.Kernels) (*Table, error) {
	if site.IsZero() {
		return nil, errors.New("routetable: zero-value site")
	}
	d, k := site.Base(), site.Len()
	n, err := word.Count(d, k)
	if err != nil {
		return nil, fmt.Errorf("routetable: %w", err)
	}
	t := &Table{
		site:           site,
		unidirectional: unidirectional,
		next:           make([]core.Hop, n),
		self:           int(site.MustRank()),
	}
	if _, err := word.ForEach(d, k, func(dst word.Word) bool {
		r := int(dst.MustRank())
		if r == t.self {
			return true
		}
		var h core.Hop
		var more bool
		var herr error
		if unidirectional {
			h, more, herr = kn.NextHopDirected(site, dst)
		} else {
			h, more, herr = kn.NextHopUndirected(site, dst)
		}
		if herr != nil || !more {
			err = nextHopFailure(dst, herr, more)
			return false
		}
		t.next[r] = h
		return true
	}); err != nil {
		return nil, err
	}
	return t, nil
}

// Site returns the table's owner.
func (t *Table) Site() word.Word { return t.site }

// NextHop looks up the optimal next hop toward dst in O(1). The
// boolean is false when dst is the site itself.
func (t *Table) NextHop(dst word.Word) (core.Hop, bool, error) {
	if dst.Base() != t.site.Base() || dst.Len() != t.site.Len() {
		return core.Hop{}, false, fmt.Errorf("routetable: %v does not address this network", dst)
	}
	r := int(dst.MustRank())
	if r == t.self {
		return core.Hop{}, false, nil
	}
	return t.next[r], true, nil
}

// Entries returns the number of destinations covered (N).
func (t *Table) Entries() int { return len(t.next) }

// MemoryBytes estimates the table's storage: one route entry (type +
// digit + wildcard flag packed into a byte) per destination.
func (t *Table) MemoryBytes() int { return len(t.next) }

// Network is the full set of tables, one per site — what a de Bruijn
// deployment would install if it did not use the paper's algorithms.
type Network struct {
	d, k   int
	tables []*Table
}

// BuildAll computes every site's table: O(N²·k) total on the packed
// and scratch tiers. On table-eligible graphs the shared engine builds
// one rank table and every site's entries become O(1) lookups into it,
// so the whole network costs one pair-matrix pass.
func BuildAll(d, k int, unidirectional bool) (*Network, error) {
	n, err := word.Count(d, k)
	if err != nil {
		return nil, fmt.Errorf("routetable: %w", err)
	}
	kn := core.NewKernels(core.KernelConfig{SyncTableBuild: true})
	net := &Network{d: d, k: k, tables: make([]*Table, n)}
	if _, err := word.ForEach(d, k, func(site word.Word) bool {
		t, berr := buildWith(site, unidirectional, kn)
		if berr != nil {
			err = berr
			return false
		}
		net.tables[int(site.MustRank())] = t
		return true
	}); err != nil {
		return nil, err
	}
	return net, nil
}

// Table returns the forwarding table of the given site.
func (n *Network) Table(site word.Word) (*Table, error) {
	if site.Base() != n.d || site.Len() != n.k {
		return nil, fmt.Errorf("routetable: %v does not address DN(%d,%d)", site, n.d, n.k)
	}
	return n.tables[int(site.MustRank())], nil
}

// TotalMemoryBytes sums the storage of all tables: Θ(N²).
func (n *Network) TotalMemoryBytes() int {
	total := 0
	for _, t := range n.tables {
		total += t.MemoryBytes()
	}
	return total
}

// Route walks a message from src to dst using table lookups only,
// resolving wildcard entries with choose (digit 0 when nil), and
// returns the visited sites. The walk is guaranteed optimal because
// every entry came from the paper's next-hop functions.
func (n *Network) Route(src, dst word.Word, choose core.Chooser) ([]word.Word, error) {
	if src.Base() != n.d || src.Len() != n.k || dst.Base() != n.d || dst.Len() != n.k {
		return nil, fmt.Errorf("routetable: addresses do not match DN(%d,%d)", n.d, n.k)
	}
	walk := []word.Word{src}
	cur := src
	for hops := 0; !cur.Equal(dst); hops++ {
		if hops > 4*n.k {
			return nil, fmt.Errorf("routetable: walk from %v to %v did not converge", src, dst)
		}
		t := n.tables[int(cur.MustRank())]
		h, more, err := t.NextHop(dst)
		if err != nil {
			return nil, err
		}
		if !more {
			break
		}
		if h.Wildcard {
			digit := byte(0)
			if choose != nil {
				digit = choose(hops, cur, h)
			}
			h = core.Hop{Type: h.Type, Digit: digit}
		}
		cur, err = core.Path{h}.Apply(cur, nil)
		if err != nil {
			return nil, err
		}
		walk = append(walk, cur)
	}
	return walk, nil
}
