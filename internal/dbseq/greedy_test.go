package dbseq

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/word"
)

func TestSequenceGreedyIsDeBruijn(t *testing.T) {
	for _, dn := range [][2]int{{2, 1}, {2, 2}, {2, 5}, {2, 8}, {3, 3}, {4, 3}, {5, 2}} {
		seq, err := SequenceGreedy(dn[0], dn[1])
		if err != nil {
			t.Fatal(err)
		}
		if !IsDeBruijn(dn[0], dn[1], seq) {
			t.Errorf("greedy B(%d,%d) fails verification", dn[0], dn[1])
		}
	}
}

func TestSequenceGreedyKnownBinary(t *testing.T) {
	// Martin's prefer-one from 000: 0001110100... for n=3 the cyclic
	// sequence is 00011101.
	seq, err := SequenceGreedy(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	got := ""
	for _, v := range seq {
		got += string('0' + v)
	}
	if got != "00011101" {
		t.Errorf("greedy B(2,3) = %s, want 00011101", got)
	}
}

func TestSequenceGreedyDiffersFromFKM(t *testing.T) {
	// The constructions genuinely differ (multiple Hamiltonian
	// cycles, §1).
	fkm, err := Sequence(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := SequenceGreedy(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if string(fkm) == string(greedy) {
		t.Error("greedy and FKM coincide on B(2,4)")
	}
}

func TestDistinctHamiltonianCycles(t *testing.T) {
	for _, dk := range [][2]int{{2, 4}, {3, 3}} {
		d, k := dk[0], dk[1]
		cycles, err := DistinctHamiltonianCycles(d, k, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(cycles) < 2 {
			t.Fatalf("DG(%d,%d): only %d distinct cycles", d, k, len(cycles))
		}
		g, err := graph.DeBruijn(graph.Directed, d, k)
		if err != nil {
			t.Fatal(err)
		}
		keys := make(map[string]bool)
		for _, cycle := range cycles {
			if len(cycle) != g.NumVertices()+1 {
				t.Fatalf("cycle length %d", len(cycle))
			}
			for i := 1; i < len(cycle); i++ {
				if !g.HasEdge(graph.DeBruijnVertex(cycle[i-1]), graph.DeBruijnVertex(cycle[i])) {
					t.Fatalf("cycle step %v→%v not an arc", cycle[i-1], cycle[i])
				}
			}
			key := canonicalCycleKey(cycle)
			if keys[key] {
				t.Fatal("duplicate cycle returned")
			}
			keys[key] = true
		}
	}
}

func TestDistinctHamiltonianCyclesValidates(t *testing.T) {
	if _, err := DistinctHamiltonianCycles(2, 3, 0); err == nil {
		t.Error("accepted want=0")
	}
	if _, err := DistinctHamiltonianCycles(1, 3, 1); err == nil {
		t.Error("accepted d=1")
	}
}

func TestCanonicalCycleKeyPhaseInvariant(t *testing.T) {
	cycle, err := HamiltonianCycle(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	body := cycle[:len(cycle)-1]
	// Rotate the cycle by 3 positions and re-close it: same cycle,
	// different phase, same canonical key.
	rotated := make([]word.Word, 0, len(cycle))
	for i := 0; i < len(body); i++ {
		rotated = append(rotated, body[(i+3)%len(body)])
	}
	rotated = append(rotated, rotated[0])
	if canonicalCycleKey(cycle) != canonicalCycleKey(rotated) {
		t.Error("canonical key not phase invariant")
	}
}
