// Package dbseq implements de Bruijn sequences and the Eulerian /
// Hamiltonian structure of de Bruijn graphs — the "multiple
// Hamiltonian paths" property the paper's introduction cites (de
// Bruijn [2], Etzion–Lempel [3]) and the basis of the ring and linear
// array embeddings of package embed.
//
// Two independent constructions are provided: the
// Fredricksen–Kessler–Maiorana concatenation of Lyndon words, and an
// Eulerian circuit (Hierholzer) on the order-(n-1) de Bruijn
// multigraph. Each is the oracle for the other in the tests.
package dbseq

import (
	"errors"
	"fmt"

	"repro/internal/word"
)

// ErrNotEulerian is returned when a multigraph has no Eulerian circuit.
var ErrNotEulerian = errors.New("dbseq: graph is not Eulerian")

// Sequence returns the lexicographically least de Bruijn sequence
// B(d,n): a cyclic d-ary sequence of length d^n in which every d-ary
// word of length n occurs exactly once as a cyclic window. Uses the
// Fredricksen–Kessler–Maiorana construction (concatenation of Lyndon
// words of length dividing n), O(d^n) time.
func Sequence(d, n int) ([]byte, error) {
	total, err := word.Count(d, n)
	if err != nil {
		return nil, err
	}
	seq := make([]byte, 0, total)
	a := make([]byte, n+1)
	var db func(t, p int)
	db = func(t, p int) {
		if t > n {
			if n%p == 0 {
				seq = append(seq, a[1:p+1]...)
			}
			return
		}
		a[t] = a[t-p]
		db(t+1, p)
		for j := int(a[t-p]) + 1; j < d; j++ {
			a[t] = byte(j)
			db(t+1, t)
		}
	}
	db(1, 1)
	if len(seq) != total {
		return nil, fmt.Errorf("dbseq: FKM produced %d symbols, want %d", len(seq), total)
	}
	return seq, nil
}

// MultiGraph is a directed multigraph (parallel arcs and self loops
// allowed) supporting Eulerian circuits; the order-(n-1) de Bruijn
// graph with all Nd arcs kept is its main instantiation.
type MultiGraph struct {
	adj  [][]int32
	arcs int
}

// NewMultiGraph returns an empty multigraph on n vertices.
func NewMultiGraph(n int) (*MultiGraph, error) {
	if n < 1 {
		return nil, fmt.Errorf("dbseq: need at least one vertex, got %d", n)
	}
	return &MultiGraph{adj: make([][]int32, n)}, nil
}

// NumArcs returns the number of arcs added.
func (g *MultiGraph) NumArcs() int { return g.arcs }

// AddArc inserts the arc u→v; duplicates and self loops are kept.
func (g *MultiGraph) AddArc(u, v int) error {
	n := len(g.adj)
	if u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("dbseq: arc (%d,%d) out of range n=%d", u, v, n)
	}
	g.adj[u] = append(g.adj[u], int32(v))
	g.arcs++
	return nil
}

// EulerianCircuit returns a closed walk from start using every arc
// exactly once (Hierholzer's algorithm, O(arcs)). Returns
// ErrNotEulerian when in-degree ≠ out-degree somewhere or some arc is
// unreachable from start.
func (g *MultiGraph) EulerianCircuit(start int) ([]int, error) {
	n := len(g.adj)
	if start < 0 || start >= n {
		return nil, fmt.Errorf("dbseq: start %d out of range", start)
	}
	indeg := make([]int, n)
	for _, outs := range g.adj {
		for _, v := range outs {
			indeg[v]++
		}
	}
	for v := 0; v < n; v++ {
		if indeg[v] != len(g.adj[v]) {
			return nil, fmt.Errorf("%w: vertex %d has in %d out %d", ErrNotEulerian, v, indeg[v], len(g.adj[v]))
		}
	}
	if g.arcs == 0 {
		return []int{start}, nil
	}
	if len(g.adj[start]) == 0 {
		return nil, fmt.Errorf("%w: start %d has no arcs", ErrNotEulerian, start)
	}
	ptr := make([]int, n)
	stack := make([]int32, 0, g.arcs+1)
	stack = append(stack, int32(start))
	circuit := make([]int, 0, g.arcs+1)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		if ptr[v] < len(g.adj[v]) {
			next := g.adj[v][ptr[v]]
			ptr[v]++
			stack = append(stack, next)
		} else {
			circuit = append(circuit, int(v))
			stack = stack[:len(stack)-1]
		}
	}
	if len(circuit) != g.arcs+1 {
		return nil, fmt.Errorf("%w: circuit covers %d arcs of %d (graph disconnected)", ErrNotEulerian, len(circuit)-1, g.arcs)
	}
	// Hierholzer emits the circuit reversed.
	for i, j := 0, len(circuit)-1; i < j; i, j = i+1, j-1 {
		circuit[i], circuit[j] = circuit[j], circuit[i]
	}
	return circuit, nil
}

// SequenceViaEuler constructs a de Bruijn sequence B(d,n) from an
// Eulerian circuit of the order-(n-1) de Bruijn multigraph (every
// n-word is an arc prefix→suffix; the circuit's arc labels spell the
// sequence). Independent of the FKM construction.
func SequenceViaEuler(d, n int) ([]byte, error) {
	if _, err := word.Count(d, n); err != nil {
		return nil, err
	}
	if n == 1 {
		seq := make([]byte, d)
		for i := range seq {
			seq[i] = byte(i)
		}
		return seq, nil
	}
	nv, err := word.Count(d, n-1)
	if err != nil {
		return nil, err
	}
	g, err := NewMultiGraph(nv)
	if err != nil {
		return nil, err
	}
	// Arc for every n-word w = (prefix, last digit): prefix(w) → suffix(w).
	if _, err := word.ForEach(d, n-1, func(w word.Word) bool {
		u := int(w.MustRank())
		for a := 0; a < d; a++ {
			v := int(w.ShiftLeft(byte(a)).MustRank())
			if err := g.AddArc(u, v); err != nil {
				panic(err) // unreachable: ranks in range
			}
		}
		return true
	}); err != nil {
		return nil, err
	}
	circuit, err := g.EulerianCircuit(0)
	if err != nil {
		return nil, err
	}
	// Each step u→v contributes v's last digit.
	seq := make([]byte, 0, g.NumArcs())
	for i := 1; i < len(circuit); i++ {
		w, err := word.Unrank(d, n-1, uint64(circuit[i]))
		if err != nil {
			return nil, err
		}
		seq = append(seq, w.Digit(n-2))
	}
	return seq, nil
}

// IsDeBruijn verifies that seq is a de Bruijn sequence B(d,n): length
// d^n, digits in range, and all d^n cyclic windows distinct.
func IsDeBruijn(d, n int, seq []byte) bool {
	total, err := word.Count(d, n)
	if err != nil || len(seq) != total {
		return false
	}
	for _, v := range seq {
		if int(v) >= d {
			return false
		}
	}
	seen := make(map[uint64]bool, total)
	for i := 0; i < total; i++ {
		var r uint64
		for j := 0; j < n; j++ {
			r = r*uint64(d) + uint64(seq[(i+j)%total])
		}
		if seen[r] {
			return false
		}
		seen[r] = true
	}
	return true
}

// HamiltonianCycle returns a Hamiltonian cycle of the directed
// DG(d,k) as a vertex sequence of length d^k + 1 (first == last): the
// consecutive length-k windows of a de Bruijn sequence B(d,k), each
// step being a left-shift arc.
func HamiltonianCycle(d, k int) ([]word.Word, error) {
	seq, err := Sequence(d, k)
	if err != nil {
		return nil, err
	}
	total := len(seq)
	cycle := make([]word.Word, 0, total+1)
	window := make([]byte, k)
	for i := 0; i <= total; i++ {
		for j := 0; j < k; j++ {
			window[j] = seq[(i+j)%total]
		}
		w, err := word.New(d, window)
		if err != nil {
			return nil, err
		}
		cycle = append(cycle, w)
	}
	return cycle, nil
}

// HamiltonianPath returns a Hamiltonian path of the directed DG(d,k):
// the cycle with its closing arc dropped.
func HamiltonianPath(d, k int) ([]word.Word, error) {
	cycle, err := HamiltonianCycle(d, k)
	if err != nil {
		return nil, err
	}
	return cycle[:len(cycle)-1], nil
}
