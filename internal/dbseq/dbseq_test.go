package dbseq

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/word"
)

func TestSequenceKnownB2(t *testing.T) {
	// The lexicographically least binary de Bruijn sequences.
	cases := []struct {
		n    int
		want string
	}{
		{1, "01"},
		{2, "0011"},
		{3, "00010111"},
		{4, "0000100110101111"},
	}
	for _, c := range cases {
		seq, err := Sequence(2, c.n)
		if err != nil {
			t.Fatal(err)
		}
		got := ""
		for _, v := range seq {
			got += string('0' + v)
		}
		if got != c.want {
			t.Errorf("B(2,%d) = %s, want %s", c.n, got, c.want)
		}
	}
}

func TestSequenceIsDeBruijn(t *testing.T) {
	for _, dn := range [][2]int{{2, 1}, {2, 5}, {2, 8}, {3, 3}, {3, 4}, {4, 3}, {5, 2}, {6, 2}} {
		seq, err := Sequence(dn[0], dn[1])
		if err != nil {
			t.Fatal(err)
		}
		if !IsDeBruijn(dn[0], dn[1], seq) {
			t.Errorf("FKM B(%d,%d) fails verification", dn[0], dn[1])
		}
	}
}

func TestSequenceViaEulerIsDeBruijn(t *testing.T) {
	for _, dn := range [][2]int{{2, 1}, {2, 2}, {2, 5}, {2, 8}, {3, 3}, {4, 3}, {5, 2}} {
		seq, err := SequenceViaEuler(dn[0], dn[1])
		if err != nil {
			t.Fatal(err)
		}
		if !IsDeBruijn(dn[0], dn[1], seq) {
			t.Errorf("Euler B(%d,%d) fails verification", dn[0], dn[1])
		}
	}
}

func TestIsDeBruijnRejects(t *testing.T) {
	if IsDeBruijn(2, 2, []byte{0, 0, 1}) {
		t.Error("accepted wrong length")
	}
	if IsDeBruijn(2, 2, []byte{0, 0, 1, 2}) {
		t.Error("accepted out-of-alphabet digit")
	}
	if IsDeBruijn(2, 2, []byte{0, 1, 0, 1}) {
		t.Error("accepted repeated window")
	}
	if IsDeBruijn(2, 70, nil) {
		t.Error("accepted overflowing parameters")
	}
}

func TestEulerianCircuitSimple(t *testing.T) {
	// Triangle 0→1→2→0.
	g, err := NewMultiGraph(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, arc := range [][2]int{{0, 1}, {1, 2}, {2, 0}} {
		if err := g.AddArc(arc[0], arc[1]); err != nil {
			t.Fatal(err)
		}
	}
	circ, err := g.EulerianCircuit(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(circ) != 4 || circ[0] != 0 || circ[3] != 0 {
		t.Errorf("circuit = %v", circ)
	}
}

func TestEulerianCircuitWithLoopsAndParallels(t *testing.T) {
	g, err := NewMultiGraph(2)
	if err != nil {
		t.Fatal(err)
	}
	// loop at 0, two parallel 0→1, two parallel 1→0, loop at 1.
	for _, arc := range [][2]int{{0, 0}, {0, 1}, {0, 1}, {1, 0}, {1, 0}, {1, 1}} {
		if err := g.AddArc(arc[0], arc[1]); err != nil {
			t.Fatal(err)
		}
	}
	circ, err := g.EulerianCircuit(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(circ) != 7 {
		t.Fatalf("circuit = %v", circ)
	}
	// Every arc used exactly once.
	used := map[[2]int]int{}
	for i := 1; i < len(circ); i++ {
		used[[2]int{circ[i-1], circ[i]}]++
	}
	want := map[[2]int]int{{0, 0}: 1, {0, 1}: 2, {1, 0}: 2, {1, 1}: 1}
	for arc, n := range want {
		if used[arc] != n {
			t.Errorf("arc %v used %d times, want %d", arc, used[arc], n)
		}
	}
}

func TestEulerianCircuitRejectsUnbalanced(t *testing.T) {
	g, _ := NewMultiGraph(2)
	_ = g.AddArc(0, 1)
	if _, err := g.EulerianCircuit(0); err == nil {
		t.Error("accepted unbalanced graph")
	}
}

func TestEulerianCircuitRejectsDisconnected(t *testing.T) {
	g, _ := NewMultiGraph(4)
	// Two separate 2-cycles.
	for _, arc := range [][2]int{{0, 1}, {1, 0}, {2, 3}, {3, 2}} {
		_ = g.AddArc(arc[0], arc[1])
	}
	if _, err := g.EulerianCircuit(0); err == nil {
		t.Error("accepted disconnected Eulerian components")
	}
}

func TestEulerianCircuitEmptyAndBadStart(t *testing.T) {
	g, _ := NewMultiGraph(2)
	circ, err := g.EulerianCircuit(1)
	if err != nil || len(circ) != 1 || circ[0] != 1 {
		t.Errorf("empty circuit = %v, %v", circ, err)
	}
	if _, err := g.EulerianCircuit(5); err == nil {
		t.Error("accepted out-of-range start")
	}
	_ = g.AddArc(0, 0)
	if _, err := g.EulerianCircuit(1); err == nil {
		t.Error("accepted start with no arcs while arcs exist elsewhere")
	}
	if _, err := NewMultiGraph(0); err == nil {
		t.Error("accepted empty multigraph")
	}
	if err := g.AddArc(0, 9); err == nil {
		t.Error("accepted out-of-range arc")
	}
}

func TestHamiltonianCycleVisitsEveryVertexOnce(t *testing.T) {
	for _, dk := range [][2]int{{2, 3}, {2, 6}, {3, 3}, {4, 2}} {
		d, k := dk[0], dk[1]
		cycle, err := HamiltonianCycle(d, k)
		if err != nil {
			t.Fatal(err)
		}
		n, _ := word.Count(d, k)
		if len(cycle) != n+1 {
			t.Fatalf("DG(%d,%d): cycle length %d, want %d", d, k, len(cycle), n+1)
		}
		if !cycle[0].Equal(cycle[len(cycle)-1]) {
			t.Error("cycle not closed")
		}
		seen := make(map[string]bool)
		for _, w := range cycle[:len(cycle)-1] {
			if seen[w.String()] {
				t.Fatalf("vertex %v repeated", w)
			}
			seen[w.String()] = true
		}
		if len(seen) != n {
			t.Fatalf("cycle visits %d vertices, want %d", len(seen), n)
		}
	}
}

func TestHamiltonianCycleUsesGraphArcs(t *testing.T) {
	d, k := 2, 5
	g, err := graph.DeBruijn(graph.Directed, d, k)
	if err != nil {
		t.Fatal(err)
	}
	cycle, err := HamiltonianCycle(d, k)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(cycle); i++ {
		u := graph.DeBruijnVertex(cycle[i-1])
		v := graph.DeBruijnVertex(cycle[i])
		if !g.HasEdge(u, v) {
			t.Fatalf("step %v→%v is not an arc", cycle[i-1], cycle[i])
		}
	}
}

func TestHamiltonianPath(t *testing.T) {
	p, err := HamiltonianPath(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 16 {
		t.Fatalf("path length %d, want 16", len(p))
	}
	if p[0].Equal(p[len(p)-1]) {
		t.Error("path endpoints coincide")
	}
}

func TestSequenceRejectsBadParams(t *testing.T) {
	if _, err := Sequence(1, 3); err == nil {
		t.Error("accepted d=1")
	}
	if _, err := Sequence(2, 0); err == nil {
		t.Error("accepted n=0")
	}
	if _, err := SequenceViaEuler(2, 0); err == nil {
		t.Error("Euler accepted n=0")
	}
}

func TestTwoConstructionsSameWindowSets(t *testing.T) {
	// Both constructions are de Bruijn sequences of the same order:
	// their cyclic window sets are identical (all d^n words).
	for _, dn := range [][2]int{{2, 4}, {3, 3}} {
		a, err := Sequence(dn[0], dn[1])
		if err != nil {
			t.Fatal(err)
		}
		b, err := SequenceViaEuler(dn[0], dn[1])
		if err != nil {
			t.Fatal(err)
		}
		if !IsDeBruijn(dn[0], dn[1], a) || !IsDeBruijn(dn[0], dn[1], b) {
			t.Fatal("construction failed verification")
		}
		if len(a) != len(b) {
			t.Errorf("lengths differ: %d vs %d", len(a), len(b))
		}
	}
}
