package dbseq

import (
	"fmt"

	"repro/internal/word"
)

// SequenceGreedy constructs a de Bruijn sequence B(d,n) with the
// classical "prefer-largest" greedy rule (the binary case is Martin's
// prefer-one construction): start from n zeros and repeatedly append
// the largest digit that does not recreate an already-seen length-n
// window; finally drop the last n-1 symbols (they wrap onto the
// zero prefix). A third independent construction — the Etzion–Lempel
// reference of §1 concerns generating many distinct full-length
// sequences; the three constructions here (FKM, Eulerian, greedy)
// demonstrate that multiplicity concretely.
func SequenceGreedy(d, n int) ([]byte, error) {
	total, err := word.Count(d, n)
	if err != nil {
		return nil, err
	}
	if n == 1 {
		seq := make([]byte, d)
		for i := range seq {
			seq[i] = byte(d - 1 - i)
		}
		return seq, nil
	}
	seen := make(map[uint64]bool, total)
	seq := make([]byte, n) // n zeros
	rank := func(window []byte) uint64 {
		var r uint64
		for _, v := range window {
			r = r*uint64(d) + uint64(v)
		}
		return r
	}
	seen[rank(seq)] = true
	for len(seen) < total {
		appended := false
		for a := d - 1; a >= 0; a-- {
			window := make([]byte, 0, n)
			window = append(window, seq[len(seq)-n+1:]...)
			window = append(window, byte(a))
			r := rank(window)
			if !seen[r] {
				seen[r] = true
				seq = append(seq, byte(a))
				appended = true
				break
			}
		}
		if !appended {
			return nil, fmt.Errorf("dbseq: greedy construction stuck after %d windows (internal error)", len(seen))
		}
	}
	// The linear sequence has total + n - 1 symbols; the cyclic
	// sequence drops the trailing n-1 zeros that wrap around.
	seq = seq[:total]
	if !IsDeBruijn(d, n, seq) {
		return nil, fmt.Errorf("dbseq: greedy construction produced an invalid sequence (internal error)")
	}
	return seq, nil
}

// DistinctHamiltonianCycles returns `want` pairwise-distinct
// Hamiltonian cycles of the directed DG(d,k), demonstrating the §1
// multiplicity property. Cycles come from the three sequence
// constructions plus digit-permuted variants of the FKM sequence;
// fewer may be returned if the constructions coincide (they do not,
// for d ≥ 2 and k ≥ 3).
func DistinctHamiltonianCycles(d, k, want int) ([][]word.Word, error) {
	if want < 1 {
		return nil, fmt.Errorf("dbseq: want %d cycles", want)
	}
	var seqs [][]byte
	fkm, err := Sequence(d, k)
	if err != nil {
		return nil, err
	}
	seqs = append(seqs, fkm)
	if eu, err := SequenceViaEuler(d, k); err == nil {
		seqs = append(seqs, eu)
	}
	if gr, err := SequenceGreedy(d, k); err == nil {
		seqs = append(seqs, gr)
	}
	// Digit relabelings of the FKM sequence are de Bruijn sequences
	// too; cyclic shifts of any sequence give further cycles (the
	// same cycle with a different start is NOT distinct as a cycle,
	// so only relabelings are used).
	for swap := 1; swap < d && len(seqs) < 4*want; swap++ {
		perm := make([]byte, len(fkm))
		for i, v := range fkm {
			switch int(v) {
			case 0:
				perm[i] = byte(swap)
			case swap:
				perm[i] = 0
			default:
				perm[i] = v
			}
		}
		seqs = append(seqs, perm)
	}
	var cycles [][]word.Word
	seenKey := make(map[string]bool)
	for _, s := range seqs {
		if len(cycles) == want {
			break
		}
		if !IsDeBruijn(d, k, s) {
			continue
		}
		cycle, err := cycleFromSequence(d, k, s)
		if err != nil {
			return nil, err
		}
		key := canonicalCycleKey(cycle)
		if !seenKey[key] {
			seenKey[key] = true
			cycles = append(cycles, cycle)
		}
	}
	return cycles, nil
}

func cycleFromSequence(d, k int, seq []byte) ([]word.Word, error) {
	total := len(seq)
	cycle := make([]word.Word, 0, total+1)
	window := make([]byte, k)
	for i := 0; i <= total; i++ {
		for j := 0; j < k; j++ {
			window[j] = seq[(i+j)%total]
		}
		w, err := word.New(d, window)
		if err != nil {
			return nil, err
		}
		cycle = append(cycle, w)
	}
	return cycle, nil
}

// canonicalCycleKey rotates the cycle to start at its smallest vertex
// so that the same cycle with different phases compares equal.
func canonicalCycleKey(cycle []word.Word) string {
	body := cycle[:len(cycle)-1]
	best := 0
	for i := 1; i < len(body); i++ {
		if body[i].Compare(body[best]) < 0 {
			best = i
		}
	}
	key := ""
	for i := 0; i < len(body); i++ {
		key += body[(best+i)%len(body)].String() + "|"
	}
	return key
}
