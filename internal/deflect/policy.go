package deflect

// Policy selects which free output link a message takes when more than
// one candidate remains after the advancing/deflecting split: among
// free advancing links when any exist, otherwise among all free links
// (a deflection). Implementations return an index into candidates.
//
// The candidates slice holds the next-hop vertices in the adjacency
// order of the graph; it is scratch owned by the engine and must not
// be retained. Policies may use the engine's seeded generator (e.rng
// via helpers) so runs stay reproducible.
type Policy interface {
	// Choose returns the index of the chosen candidate. ly is the
	// layer decomposition toward the message's destination and from is
	// the current site's vertex.
	Choose(e *Engine, ly *Layers, from int, candidates []int32) (int, error)
	// Name is the stable identifier used in CLI flags and E18 rows.
	Name() string
}

// PolicyRandom picks uniformly among the candidates. It is the
// baseline E18 policy: oblivious to distance, so deflections can move
// a message arbitrarily far from its destination.
type PolicyRandom struct{}

// Name implements Policy.
func (PolicyRandom) Name() string { return "random" }

// Choose implements Policy.
func (PolicyRandom) Choose(e *Engine, _ *Layers, _ int, candidates []int32) (int, error) {
	return e.rng.Intn(len(candidates)), nil
}

// PolicyMinIncrease evaluates the closed-form distance function
// (Property 1 directed, Theorem 2 undirected) at each candidate and
// takes the first candidate of minimal distance. A deflection under
// this policy costs the least distance increase the free links allow;
// the first-of-minima tie-break makes the policy fully deterministic.
type PolicyMinIncrease struct{}

// Name implements Policy.
func (PolicyMinIncrease) Name() string { return "min-increase" }

// Choose implements Policy.
func (PolicyMinIncrease) Choose(e *Engine, ly *Layers, _ int, candidates []int32) (int, error) {
	best, bestDist := 0, -1
	for i, u := range candidates {
		d, err := e.distanceTo(int(u), ly.Dst())
		if err != nil {
			return 0, err
		}
		if bestDist < 0 || d < bestDist {
			best, bestDist = i, d
		}
	}
	return best, nil
}

// PolicyLayerAware reads each candidate's layer index from the
// precomputed decomposition (an O(1) lookup instead of an O(k)/O(k²)
// distance evaluation) and picks uniformly among the candidates in the
// lowest layer. It never concedes distance to PolicyMinIncrease — the
// chosen layer is the same minimum — but the randomized tie-break
// spreads contending traffic across equivalent links instead of
// repeatedly colliding on the first one.
type PolicyLayerAware struct{}

// Name implements Policy.
func (PolicyLayerAware) Name() string { return "layer-aware" }

// Choose implements Policy.
func (PolicyLayerAware) Choose(e *Engine, ly *Layers, _ int, candidates []int32) (int, error) {
	minIdx := e.minIdx[:0]
	bestDist := -1
	for i, u := range candidates {
		d := ly.Dist(int(u))
		switch {
		case bestDist < 0 || d < bestDist:
			bestDist = d
			minIdx = append(minIdx[:0], i)
		case d == bestDist:
			minIdx = append(minIdx, i)
		}
	}
	e.minIdx = minIdx
	if len(minIdx) == 1 {
		return minIdx[0], nil
	}
	return minIdx[e.rng.Intn(len(minIdx))], nil
}

// Policies lists the built-in policies in presentation order.
func Policies() []Policy {
	return []Policy{PolicyRandom{}, PolicyMinIncrease{}, PolicyLayerAware{}}
}

// PolicyByName resolves a CLI policy name; nil when unknown.
func PolicyByName(name string) Policy {
	for _, p := range Policies() {
		if p.Name() == name {
			return p
		}
	}
	return nil
}
