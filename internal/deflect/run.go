package deflect

import (
	"fmt"
	"math/rand"

	"repro/internal/obs"
	"repro/internal/word"
)

// LoadConfig describes an open-loop offered-load run: for Rounds
// rounds, every site independently offers a message to a uniform
// random destination with probability Rate per round (the same
// Bernoulli arrival process as network.RunOpenLoop, so the
// store-and-forward comparison in E18 is rate-matched), then the
// network drains.
type LoadConfig struct {
	D, K           int
	Unidirectional bool
	// Policy deflects contention losers; PolicyRandom when nil.
	Policy Policy
	// Rate is the per-site per-round injection probability, in (0, 1].
	Rate float64
	// Rounds is the injection window length.
	Rounds int
	// MaxAge, Seed, Obs are passed through to the engine (Seed also
	// drives the arrival process, on an independent stream).
	MaxAge int
	Seed   int64
	Obs    *obs.Registry
}

// LoadResult is the outcome of one offered-load run. Offered counts
// injection attempts (accepted + refused); the embedded Stats cover
// the whole run including the drain.
type LoadResult struct {
	Offered int
	// DrainRounds is how many rounds past the injection window the
	// network needed to empty.
	DrainRounds int
	Stats
}

// RunLoad executes the open-loop experiment and drains the network.
// The age guard bounds the drain, so RunLoad always terminates.
func RunLoad(cfg LoadConfig) (LoadResult, error) {
	var res LoadResult
	if cfg.Rate <= 0 || cfg.Rate > 1 {
		return res, fmt.Errorf("deflect: rate %v outside (0, 1]", cfg.Rate)
	}
	if cfg.Rounds < 1 {
		return res, fmt.Errorf("deflect: rounds %d < 1", cfg.Rounds)
	}
	e, err := New(Config{
		D: cfg.D, K: cfg.K,
		Unidirectional: cfg.Unidirectional,
		Policy:         cfg.Policy,
		Seed:           cfg.Seed,
		MaxAge:         cfg.MaxAge,
		Obs:            cfg.Obs,
	})
	if err != nil {
		return res, err
	}
	// Arrivals draw from their own stream so changing a policy's
	// random-consumption pattern never perturbs the offered traffic.
	arr := rand.New(rand.NewSource(cfg.Seed ^ 0x5e3779b97f4a7c15))
	n := e.NumSites()
	for r := 0; r < cfg.Rounds; r++ {
		for v := 0; v < n; v++ {
			if arr.Float64() >= cfg.Rate {
				continue
			}
			dst := word.Random(cfg.D, cfg.K, arr)
			res.Offered++
			if _, err := e.Inject(e.Word(v), dst); err != nil {
				return res, err
			}
		}
		if err := e.Step(); err != nil {
			return res, err
		}
	}
	// Drain: the age guard removes any message within MaxAge rounds of
	// its injection, so the bound below is unreachable unless the
	// engine itself is broken.
	limit := e.Config().MaxAge + 1
	for e.Inflight() > 0 {
		if res.DrainRounds++; res.DrainRounds > limit {
			return res, fmt.Errorf("deflect: drain exceeded the age-guard bound of %d rounds", limit)
		}
		if err := e.Step(); err != nil {
			return res, err
		}
	}
	res.Stats = e.Stats()
	return res, nil
}
