package deflect

import "testing"

// FuzzDeflectInvariant fuzzes the open-loop driver over topology,
// policy, load, and seed, asserting the conservation invariant: the
// network never loses or duplicates a message — every injected message
// is either delivered or dropped by the age guard, nothing stays in
// flight after the drain, and offered = injected + refused.
func FuzzDeflectInvariant(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(4), uint8(0), uint8(0), uint8(50), uint8(20))
	f.Add(int64(7), uint8(3), uint8(3), uint8(1), uint8(1), uint8(100), uint8(30))
	f.Add(int64(42), uint8(2), uint8(6), uint8(0), uint8(2), uint8(80), uint8(10))
	f.Add(int64(-9), uint8(3), uint8(2), uint8(1), uint8(0), uint8(5), uint8(40))
	f.Fuzz(func(t *testing.T, seed int64, d, k, uni, polByte, ratePct, rounds uint8) {
		dd := 2 + int(d)%2                       // 2..3
		kk := 2 + int(k)%4                       // 2..5
		rate := (float64(ratePct%100) + 1) / 100 // (0, 1]
		nr := 1 + int(rounds)%40
		pols := Policies()
		cfg := LoadConfig{
			D: dd, K: kk,
			Unidirectional: uni%2 == 1,
			Policy:         pols[int(polByte)%len(pols)],
			Rate:           rate,
			Rounds:         nr,
			Seed:           seed,
		}
		res, err := RunLoad(cfg)
		if err != nil {
			t.Fatalf("RunLoad(%+v): %v", cfg, err)
		}
		if res.Injected != res.Delivered+res.GuardDropped {
			t.Fatalf("lost or duplicated messages: injected %d, delivered %d, guard %d (cfg %+v)",
				res.Injected, res.Delivered, res.GuardDropped, cfg)
		}
		if res.Inflight != 0 {
			t.Fatalf("%d messages in flight after drain (cfg %+v)", res.Inflight, cfg)
		}
		if res.Offered != res.Injected+res.Refused {
			t.Fatalf("offered %d ≠ injected %d + refused %d (cfg %+v)",
				res.Offered, res.Injected, res.Refused, cfg)
		}
	})
}
