package deflect

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/word"
)

// stepUntilEmpty drives the engine until no message is in flight,
// failing the test if that takes more than limit rounds.
func stepUntilEmpty(t *testing.T, e *Engine, limit int) {
	t.Helper()
	for i := 0; e.Inflight() > 0; i++ {
		if i > limit {
			t.Fatalf("network not empty after %d rounds (%d in flight)", limit, e.Inflight())
		}
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestZeroContentionExactDistance is the satellite correctness test:
// with a single message in the network there is never contention, so
// every policy delivers in exactly D(X,Y) hops — Property 1 distances
// on the directed graph, Theorem 2 distances on the undirected one.
// Exhaustive over all ordered pairs of DN(2,4), both kinds, all
// policies.
func TestZeroContentionExactDistance(t *testing.T) {
	const d, k = 2, 4
	for _, uni := range []bool{true, false} {
		for _, pol := range Policies() {
			e, err := New(Config{D: d, K: k, Unidirectional: uni, Policy: pol, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			var delivered int
			if _, err := word.ForEach(d, k, func(src word.Word) bool {
				_, err := word.ForEach(d, k, func(dst word.Word) bool {
					var want int
					var derr error
					if uni {
						want, derr = core.DirectedDistance(src, dst)
					} else {
						want, derr = core.UndirectedDistance(src, dst)
					}
					if derr != nil {
						t.Fatal(derr)
					}
					before := e.Stats()
					ok, err := e.Inject(src, dst)
					if err != nil {
						t.Fatal(err)
					}
					if !ok {
						t.Fatalf("empty network refused %v→%v", src, dst)
					}
					stepUntilEmpty(t, e, 2*k+2)
					after := e.Stats()
					if after.Delivered != before.Delivered+1 {
						t.Fatalf("%v→%v (uni=%v): not delivered", src, dst, uni)
					}
					if got := after.HopsMoved - before.HopsMoved; got != int64(want) {
						t.Fatalf("%v→%v (uni=%v, policy=%s): took %d hops, D(X,Y)=%d",
							src, dst, uni, pol.Name(), got, want)
					}
					if after.Deflections != before.Deflections {
						t.Fatalf("%v→%v (uni=%v): deflected with zero contention", src, dst, uni)
					}
					delivered++
					return true
				})
				if err != nil {
					t.Fatal(err)
				}
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if s := e.Stats(); s.Delivered != delivered || s.GuardDropped != 0 || s.Refused != 0 {
				t.Fatalf("uni=%v policy=%s: stats %+v after %d clean deliveries", uni, pol.Name(), s, delivered)
			}
		}
	}
}

// TestZeroContentionRandomPairs spot-checks larger graphs: DN(2,6) and
// DN(3,4), 60 random pairs each, both kinds.
func TestZeroContentionRandomPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, dk := range []struct{ d, k int }{{2, 6}, {3, 4}} {
		for _, uni := range []bool{true, false} {
			e, err := New(Config{D: dk.d, K: dk.k, Unidirectional: uni, Policy: PolicyLayerAware{}, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 60; i++ {
				src := word.Random(dk.d, dk.k, rng)
				dst := word.Random(dk.d, dk.k, rng)
				var want int
				if uni {
					want, err = core.DirectedDistance(src, dst)
				} else {
					want, err = core.UndirectedDistance(src, dst)
				}
				if err != nil {
					t.Fatal(err)
				}
				before := e.Stats()
				if _, err := e.Inject(src, dst); err != nil {
					t.Fatal(err)
				}
				stepUntilEmpty(t, e, 2*dk.k+2)
				after := e.Stats()
				if got := after.HopsMoved - before.HopsMoved; got != int64(want) {
					t.Fatalf("DN(%d,%d) uni=%v %v→%v: %d hops, want %d", dk.d, dk.k, uni, src, dst, got, want)
				}
			}
		}
	}
}

// TestNoLivelockSaturatingLoad is the satellite property test: on
// DN(2,6) and DN(3,4) under a saturating offered load (rate 1.0 —
// every site offers a message every round of the window), the
// oldest-first priority rule delivers every injected message; the age
// guard never fires and nothing is left in flight after the drain.
func TestNoLivelockSaturatingLoad(t *testing.T) {
	for _, dk := range []struct{ d, k int }{{2, 6}, {3, 4}} {
		for _, uni := range []bool{true, false} {
			for _, pol := range Policies() {
				res, err := RunLoad(LoadConfig{
					D: dk.d, K: dk.k,
					Unidirectional: uni,
					Policy:         pol,
					Rate:           1.0,
					Rounds:         50,
					Seed:           11,
				})
				if err != nil {
					t.Fatalf("DN(%d,%d) uni=%v policy=%s: %v", dk.d, dk.k, uni, pol.Name(), err)
				}
				if res.GuardDropped != 0 {
					t.Fatalf("DN(%d,%d) uni=%v policy=%s: %d guard trips under oldest-first",
						dk.d, dk.k, uni, pol.Name(), res.GuardDropped)
				}
				if res.Inflight != 0 {
					t.Fatalf("DN(%d,%d) uni=%v policy=%s: %d still in flight after drain",
						dk.d, dk.k, uni, pol.Name(), res.Inflight)
				}
				if res.Delivered != res.Injected {
					t.Fatalf("DN(%d,%d) uni=%v policy=%s: injected %d, delivered %d",
						dk.d, dk.k, uni, pol.Name(), res.Injected, res.Delivered)
				}
				if res.Offered != res.Injected+res.Refused {
					t.Fatalf("offered %d ≠ injected %d + refused %d", res.Offered, res.Injected, res.Refused)
				}
				if res.Injected == 0 || res.Refused == 0 {
					t.Fatalf("saturating load should both inject and refuse (injected=%d refused=%d)",
						res.Injected, res.Refused)
				}
			}
		}
	}
}

// TestSelfAddressedAbsorbedImmediately verifies the zero-hop path.
func TestSelfAddressedAbsorbedImmediately(t *testing.T) {
	e, err := New(Config{D: 2, K: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	w := word.MustParse(2, "0110")
	ok, err := e.Inject(w, w)
	if err != nil || !ok {
		t.Fatalf("Inject(w,w) = %v, %v", ok, err)
	}
	s := e.Stats()
	if s.Delivered != 1 || s.Inflight != 0 || s.HopsMoved != 0 || s.MeanLatency != 0 {
		t.Fatalf("self-addressed message not absorbed at zero cost: %+v", s)
	}
}

// TestInjectRefusedAtCapacity verifies bufferless backpressure: a site
// holds at most one message per output link.
func TestInjectRefusedAtCapacity(t *testing.T) {
	e, err := New(Config{D: 2, K: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	src := word.MustParse(2, "0110")
	dst := word.MustParse(2, "1001")
	cap, err := e.Capacity(src)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cap; i++ {
		ok, err := e.Inject(src, dst)
		if err != nil || !ok {
			t.Fatalf("inject %d/%d: %v, %v", i+1, cap, ok, err)
		}
	}
	ok, err := e.Inject(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("site accepted %d messages with only %d output links", cap+1, cap)
	}
	if s := e.Stats(); s.Refused != 1 || s.Inflight != cap {
		t.Fatalf("stats after overfill: %+v", s)
	}
	stepUntilEmpty(t, e, e.Config().MaxAge+1)
}

// TestRejectsForeignWords verifies address validation.
func TestRejectsForeignWords(t *testing.T) {
	e, err := New(Config{D: 2, K: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Inject(word.MustParse(2, "011"), word.MustParse(2, "1001")); err == nil {
		t.Fatal("accepted a source of the wrong length")
	}
	if _, err := e.Inject(word.MustParse(2, "0110"), word.MustParse(3, "1001")); err == nil {
		t.Fatal("accepted a destination of the wrong base")
	}
}

// TestConfigValidation covers MaxAge and policy defaulting.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{D: 2, K: 6, MaxAge: 3}); err == nil {
		t.Fatal("accepted MaxAge below the diameter")
	}
	e, err := New(Config{D: 2, K: 6})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Config(); got.MaxAge != 64*6 || got.Policy == nil {
		t.Fatalf("defaults not resolved: %+v", got)
	}
}

// TestGuardTripsCounted forces the age guard with a tiny MaxAge and a
// policy that refuses to advance, proving livelock is counted rather
// than silent.
type neverAdvance struct{}

func (neverAdvance) Name() string { return "never-advance" }
func (neverAdvance) Choose(e *Engine, ly *Layers, _ int, candidates []int32) (int, error) {
	// Pick the candidate farthest from the destination.
	worst, worstDist := 0, -1
	for i, u := range candidates {
		if d := ly.Dist(int(u)); d > worstDist {
			worst, worstDist = i, d
		}
	}
	return worst, nil
}

func TestGuardTripsCounted(t *testing.T) {
	const d, k = 2, 6
	e, err := New(Config{D: d, K: k, Policy: neverAdvance{}, MaxAge: k, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Saturate one round so contention forces deflections, then run out
	// the age guard.
	rng := rand.New(rand.NewSource(8))
	for v := 0; v < e.NumSites(); v++ {
		if _, err := e.Inject(e.Word(v), word.Random(d, k, rng)); err != nil {
			t.Fatal(err)
		}
	}
	stepUntilEmpty(t, e, 4*k)
	s := e.Stats()
	if s.GuardDropped == 0 {
		t.Fatal("expected guard trips under an adversarial policy with MaxAge = k")
	}
	if s.Injected != s.Delivered+s.GuardDropped {
		t.Fatalf("accounting broken: injected %d ≠ delivered %d + guard %d",
			s.Injected, s.Delivered, s.GuardDropped)
	}
}

// TestMetricsMatchStats checks every dn_deflect_* series against the
// engine's own counters after a loaded run.
func TestMetricsMatchStats(t *testing.T) {
	reg := obs.NewRegistry()
	res, err := RunLoad(LoadConfig{
		D: 2, K: 6,
		Policy: PolicyMinIncrease{},
		Rate:   0.5,
		Rounds: 40,
		Seed:   21,
		Obs:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for name, want := range map[string]int64{
		metricInjected:    int64(res.Injected),
		metricRefused:     int64(res.Refused),
		metricDelivered:   int64(res.Delivered),
		metricGuardTrips:  int64(res.GuardDropped),
		metricDeflections: res.Deflections,
		metricHopsMoved:   res.HopsMoved,
		metricRounds:      int64(res.Rounds),
	} {
		if got := snap.Counter(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := snap.Gauge(metricInflight); got != 0 {
		t.Errorf("%s = %v after drain, want 0", metricInflight, got)
	}
	if got, want := snap.Gauge(metricThroughput), res.Throughput; got != want {
		t.Errorf("%s = %v, want %v", metricThroughput, got, want)
	}
	if h, ok := snap.Histograms[metricLatency]; !ok || h.Count != int64(res.Delivered) {
		t.Errorf("%s count = %+v, want %d observations", metricLatency, h, res.Delivered)
	}
	if h, ok := snap.Histograms[metricMsgDeflections]; !ok || h.Count != int64(res.Delivered) {
		t.Errorf("%s count = %+v, want %d observations", metricMsgDeflections, h, res.Delivered)
	}
}

// TestRunLoadDeterministic: identical configs produce identical
// results — the repo-wide seeded-determinism convention.
func TestRunLoadDeterministic(t *testing.T) {
	cfg := LoadConfig{D: 3, K: 4, Policy: PolicyLayerAware{}, Rate: 0.7, Rounds: 30, Seed: 17}
	a, err := RunLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

// TestPolicyByName covers the CLI resolution path.
func TestPolicyByName(t *testing.T) {
	for _, p := range Policies() {
		got := PolicyByName(p.Name())
		if got == nil || got.Name() != p.Name() {
			t.Fatalf("PolicyByName(%q) = %v", p.Name(), got)
		}
	}
	if PolicyByName("nope") != nil {
		t.Fatal("PolicyByName accepted an unknown name")
	}
}

// TestRunLoadValidation covers the driver's config checks.
func TestRunLoadValidation(t *testing.T) {
	if _, err := RunLoad(LoadConfig{D: 2, K: 4, Rate: 0, Rounds: 10}); err == nil {
		t.Fatal("accepted rate 0")
	}
	if _, err := RunLoad(LoadConfig{D: 2, K: 4, Rate: 1.5, Rounds: 10}); err == nil {
		t.Fatal("accepted rate > 1")
	}
	if _, err := RunLoad(LoadConfig{D: 2, K: 4, Rate: 0.5, Rounds: 0}); err == nil {
		t.Fatal("accepted zero rounds")
	}
}
