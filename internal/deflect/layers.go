// Package deflect implements bufferless deflection (hot-potato)
// routing on the de Bruijn network DN(d,k) — the routing regime in
// which a site has no message queues at all: every round each site
// emits all resident messages, one per output link, and messages that
// lose the contention for a distance-decreasing link are deflected
// onto a free link instead of being buffered.
//
// The paper's distance function is exactly the primitive this regime
// needs. Property 1 (directed) and Theorem 2 (undirected) tell every
// site, in O(k) work and with no global state, how far each neighbor
// is from any destination — so a site can classify each of its output
// links as *advancing* (distance-decreasing) or *deflecting* for a
// given destination, and a deflection policy can bound the cost of
// losing a contention. Fàbrega, Martí-Farré & Muñoz (PAPERS.md,
// arXiv:2203.09918) formalize this as the distance-layer structure
// B_0..B_k of the de Bruijn digraph; Layers materializes that
// decomposition from the closed-form distance function and the tests
// validate it against BFS on the explicit graph.
//
// The engine (engine.go) is synchronous and slotted: per round, each
// directed channel carries at most one message, contention is resolved
// oldest-first, and losers are deflected by a pluggable policy
// (random, min-distance-increase, layer-aware). An age guard makes
// livelock detectable and counted rather than silent. Experiment E18
// (cmd/dbstats -table deflect) sweeps offered load × policy against
// the store-and-forward engines of internal/network.
package deflect

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/word"
)

// Link is one classified output link of a site, relative to a fixed
// destination.
type Link struct {
	// To is the vertex the link leads to.
	To int32
	// Advancing reports whether taking the link decreases the distance
	// to the destination (dist(To) == dist(from) - 1); a non-advancing
	// link is a deflection.
	Advancing bool
}

// Layers is the distance-layer decomposition of DG(d,k) relative to
// one destination Y: the partition of the vertex set into layers
// B_i = {X : D(X,Y) = i}, i = 0..k, with every output link of every
// site classified as advancing or deflecting. Distances come from the
// paper's closed-form functions (Property 1 for the directed graph,
// Theorem 2 for the undirected one), not from graph search; the tests
// assert the two agree on every graph up to 4096 vertices.
type Layers struct {
	dst    word.Word
	dstV   int
	dist   []int32   // dist[v] = D(v, dst)
	layers [][]int32 // layers[i] = sorted vertices of B_i
	links  [][]Link  // links[v] = classified out-links of v
}

// NewLayers computes the decomposition of g — a de Bruijn graph built
// by graph.DeBruijn with matching d and k — toward dst. Directed
// graphs use Property 1, undirected ones Theorem 2 (evaluated with a
// reusable core.Router, the low-constant-factor form of the §4
// remark). Cost: O(N·k) directed, O(N·k²) undirected.
func NewLayers(g *graph.Graph, dst word.Word) (*Layers, error) {
	n, err := word.Count(dst.Base(), dst.Len())
	if err != nil {
		return nil, fmt.Errorf("deflect: %w", err)
	}
	if g.NumVertices() != n {
		return nil, fmt.Errorf("deflect: graph has %d vertices, DG(%d,%d) needs %d",
			g.NumVertices(), dst.Base(), dst.Len(), n)
	}
	k := dst.Len()
	ly := &Layers{
		dst:    dst,
		dstV:   graph.DeBruijnVertex(dst),
		dist:   make([]int32, n),
		layers: make([][]int32, k+1),
		links:  make([][]Link, n),
	}
	var router *core.Router
	if g.Kind() == graph.Undirected {
		router = core.NewRouter(k)
	}
	var derr error
	if _, err := word.ForEach(dst.Base(), k, func(w word.Word) bool {
		v := graph.DeBruijnVertex(w)
		var dv int
		if router != nil {
			dv, derr = router.Distance(w, dst)
		} else {
			dv, derr = core.DirectedDistance(w, dst)
		}
		if derr != nil {
			return false
		}
		ly.dist[v] = int32(dv)
		ly.layers[dv] = append(ly.layers[dv], int32(v))
		return true
	}); err != nil {
		return nil, fmt.Errorf("deflect: %w", err)
	}
	if derr != nil {
		return nil, fmt.Errorf("deflect: %w", derr)
	}
	for v := 0; v < n; v++ {
		outs := g.OutNeighbors(v)
		links := make([]Link, len(outs))
		for i, u := range outs {
			links[i] = Link{To: u, Advancing: ly.dist[u] == ly.dist[v]-1}
		}
		ly.links[v] = links
	}
	return ly, nil
}

// Dst returns the destination the decomposition is relative to.
func (l *Layers) Dst() word.Word { return l.dst }

// DstVertex returns the destination's vertex number.
func (l *Layers) DstVertex() int { return l.dstV }

// Dist returns D(v, dst) per the closed-form distance function.
func (l *Layers) Dist(v int) int { return int(l.dist[v]) }

// NumLayers returns k+1, the number of (possibly empty) layers B_0..B_k.
func (l *Layers) NumLayers() int { return len(l.layers) }

// Layer returns the vertices of B_i in ascending order. The returned
// slice must not be modified.
func (l *Layers) Layer(i int) []int32 { return l.layers[i] }

// Links returns the classified out-links of v, in the adjacency order
// of the underlying graph (ascending neighbor). The returned slice
// must not be modified.
func (l *Layers) Links(v int) []Link { return l.links[v] }

// Advancing returns how many out-links of v decrease the distance —
// the shortest-path out-diversity the deflection engine can exploit.
func (l *Layers) Advancing(v int) int {
	n := 0
	for _, lk := range l.links[v] {
		if lk.Advancing {
			n++
		}
	}
	return n
}

// LayerCache lazily builds and memoizes one Layers per destination.
// The deflection engine resolves every contention through it, so each
// destination pays the O(N·k) (directed) or O(N·k²) (undirected)
// decomposition exactly once per run. Not safe for concurrent use.
type LayerCache struct {
	g *graph.Graph
	m map[int]*Layers
}

// NewLayerCache returns an empty cache over g.
func NewLayerCache(g *graph.Graph) *LayerCache {
	return &LayerCache{g: g, m: make(map[int]*Layers)}
}

// For returns the (possibly newly computed) decomposition toward dst.
func (c *LayerCache) For(dst word.Word) (*Layers, error) {
	v := graph.DeBruijnVertex(dst)
	if ly, ok := c.m[v]; ok {
		return ly, nil
	}
	ly, err := NewLayers(c.g, dst)
	if err != nil {
		return nil, err
	}
	c.m[v] = ly
	return ly, nil
}

// Size returns the number of destinations decomposed so far.
func (c *LayerCache) Size() int { return len(c.m) }
