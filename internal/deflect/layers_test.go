package deflect

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/word"
)

// smallGraphs enumerates every DG(d,k) with d^k ≤ 4096 and k ≥ 2, the
// family the acceptance criteria require the layer decomposition to be
// BFS-validated on.
func smallGraphs() []struct{ d, k int } {
	var out []struct{ d, k int }
	for d := 2; d <= 5; d++ {
		for k := 2; ; k++ {
			n, err := word.Count(d, k)
			if err != nil || n > 4096 {
				break
			}
			out = append(out, struct{ d, k int }{d, k})
		}
	}
	return out
}

// bfsToDst returns the BFS distance from every vertex TO dst: forward
// BFS for undirected graphs, reverse BFS (along in-neighbors) for
// directed ones.
func bfsToDst(t *testing.T, g *graph.Graph, dst int) []int {
	t.Helper()
	if g.Kind() == graph.Undirected {
		dist, err := g.BFSFrom(dst)
		if err != nil {
			t.Fatalf("BFSFrom(%d): %v", dst, err)
		}
		return dist
	}
	n := g.NumVertices()
	dist := make([]int, n)
	for v := range dist {
		dist[v] = -1
	}
	dist[dst] = 0
	queue := []int{dst}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.InNeighbors(v) {
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				queue = append(queue, int(u))
			}
		}
	}
	return dist
}

// TestLayersAgreeWithBFS is the acceptance-criteria assertion: on every
// de Bruijn graph with at most 4096 vertices (both kinds), the
// closed-form layer decomposition matches BFS distances exactly, the
// layers partition the vertex set, link classification is consistent,
// and every non-destination site has at least one advancing link — so
// the engine deflects only under contention, never for lack of a
// shortest-path move.
func TestLayersAgreeWithBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, kind := range []graph.Kind{graph.Directed, graph.Undirected} {
		for _, dk := range smallGraphs() {
			g, err := graph.DeBruijn(kind, dk.d, dk.k)
			if err != nil {
				t.Fatalf("DeBruijn(%v,%d,%d): %v", kind, dk.d, dk.k, err)
			}
			n := g.NumVertices()
			var dests []int
			if n <= 128 {
				for v := 0; v < n; v++ {
					dests = append(dests, v)
				}
			} else {
				dests = append(dests, 0) // the constant word 0^k
				for i := 0; i < 6; i++ {
					dests = append(dests, rng.Intn(n))
				}
			}
			for _, dv := range dests {
				dw, err := graph.DeBruijnWord(dk.d, dk.k, dv)
				if err != nil {
					t.Fatal(err)
				}
				ly, err := NewLayers(g, dw)
				if err != nil {
					t.Fatalf("NewLayers(%v, DG(%v,%d,%d)): %v", dw, kind, dk.d, dk.k, err)
				}
				want := bfsToDst(t, g, dv)
				total := 0
				for i := 0; i < ly.NumLayers(); i++ {
					total += len(ly.Layer(i))
					for _, v := range ly.Layer(i) {
						if ly.Dist(int(v)) != i {
							t.Fatalf("DG(%v,%d,%d) dst %v: vertex %d in layer %d but Dist=%d",
								kind, dk.d, dk.k, dw, v, i, ly.Dist(int(v)))
						}
					}
				}
				if total != n {
					t.Fatalf("DG(%v,%d,%d) dst %v: layers cover %d of %d vertices",
						kind, dk.d, dk.k, dw, total, n)
				}
				for v := 0; v < n; v++ {
					if ly.Dist(v) != want[v] {
						t.Fatalf("DG(%v,%d,%d): closed-form D(%d,%v)=%d, BFS says %d",
							kind, dk.d, dk.k, v, dw, ly.Dist(v), want[v])
					}
					adv := 0
					for _, lk := range ly.Links(v) {
						wantAdv := ly.Dist(int(lk.To)) == ly.Dist(v)-1
						if lk.Advancing != wantAdv {
							t.Fatalf("DG(%v,%d,%d) dst %v: link %d→%d classified %v, want %v",
								kind, dk.d, dk.k, dw, v, lk.To, lk.Advancing, wantAdv)
						}
						if lk.Advancing {
							adv++
						}
					}
					if adv != ly.Advancing(v) {
						t.Fatalf("Advancing(%d)=%d, counted %d", v, ly.Advancing(v), adv)
					}
					if v != dv && adv == 0 {
						t.Fatalf("DG(%v,%d,%d) dst %v: site %d at distance %d has no advancing link",
							kind, dk.d, dk.k, dw, v, ly.Dist(v))
					}
				}
			}
		}
	}
}

func TestLayerCacheMemoizes(t *testing.T) {
	g, err := graph.DeBruijn(graph.Undirected, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	c := NewLayerCache(g)
	dst := word.MustParse(2, "10110")
	a, err := c.For(dst)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.For(dst)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("cache rebuilt the decomposition for a seen destination")
	}
	if c.Size() != 1 {
		t.Fatalf("Size() = %d, want 1", c.Size())
	}
	if _, err := c.For(word.MustParse(2, "00000")); err != nil {
		t.Fatal(err)
	}
	if c.Size() != 2 {
		t.Fatalf("Size() = %d, want 2", c.Size())
	}
}

func TestNewLayersRejectsMismatchedGraph(t *testing.T) {
	g, err := graph.DeBruijn(graph.Directed, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLayers(g, word.MustParse(2, "10101")); err == nil {
		t.Fatal("NewLayers accepted a destination word of the wrong length")
	}
}
