package deflect

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/word"
)

// Engine is the synchronous slotted bufferless simulator. Sites hold
// no queues: a site's capacity is its output-link count, every round
// it emits all resident messages (one per directed channel; undirected
// edges are full-duplex, one message per direction), and a message
// that loses the contention for an advancing link is deflected onto a
// free link by the configured policy instead of waiting. Contention is
// resolved oldest-first (injection round, then injection order), which
// in practice starves no message: the globally oldest message wins
// every contention it enters and advances monotonically. The age
// guard (Config.MaxAge) makes any residual livelock detectable — aged
// messages are removed and counted in dn_deflect_guard_trips_total,
// never silently retained.
//
// The engine is deterministic given its configuration: sites are
// processed in vertex order, residents in priority order, and every
// random choice draws from the seeded generator. Not safe for
// concurrent use.
type Engine struct {
	cfg    Config
	g      *graph.Graph
	rng    *rand.Rand
	sites  []word.Word // vertex → word
	cache  *LayerCache
	router *core.Router // undirected Theorem-2 evals for PolicyMinIncrease

	resident [][]*msg
	inflight int
	nextID   int
	round    int

	injected, refused, delivered, guardDropped int
	deflections, hopsMoved                     int64
	latHist, defHist                           stats.Histogram
	maxLatency                                 int

	m deflectMetrics

	// per-Step scratch, reused to keep the round loop allocation-light
	free    []int32
	cand    []int32
	candIdx []int
	minIdx  []int
	moves   []move
}

type msg struct {
	id          int
	dst         word.Word
	dstV        int
	born        int // round at injection
	hops        int
	deflections int
}

type move struct {
	m  *msg
	to int
}

// Config parameterizes a deflection engine.
type Config struct {
	D, K int
	// Unidirectional restricts links to type-L (left-shift) moves and
	// distances to Property 1; otherwise the undirected DG(d,k) with
	// Theorem 2 distances.
	Unidirectional bool
	// Policy deflects contention losers; PolicyRandom when nil.
	Policy Policy
	// Seed drives every random choice (policies); runs are reproducible.
	Seed int64
	// MaxAge is the livelock guard: a message older than MaxAge rounds
	// is removed and counted (dn_deflect_guard_trips_total). 0 means
	// 64·k. Must be at least k (the diameter) to be satisfiable.
	MaxAge int
	// Obs receives dn_deflect_* metrics; nil disables instrumentation
	// at the cost of one nil check per event.
	Obs *obs.Registry
}

// New validates the configuration and builds the engine.
func New(cfg Config) (*Engine, error) {
	kind := graph.Undirected
	if cfg.Unidirectional {
		kind = graph.Directed
	}
	g, err := graph.DeBruijn(kind, cfg.D, cfg.K)
	if err != nil {
		return nil, fmt.Errorf("deflect: %w", err)
	}
	if cfg.Policy == nil {
		cfg.Policy = PolicyRandom{}
	}
	if cfg.MaxAge == 0 {
		cfg.MaxAge = 64 * cfg.K
	}
	if cfg.MaxAge < cfg.K {
		return nil, fmt.Errorf("deflect: MaxAge %d below diameter %d", cfg.MaxAge, cfg.K)
	}
	n := g.NumVertices()
	sites := make([]word.Word, n)
	if _, err := word.ForEach(cfg.D, cfg.K, func(w word.Word) bool {
		sites[graph.DeBruijnVertex(w)] = w
		return true
	}); err != nil {
		return nil, fmt.Errorf("deflect: %w", err)
	}
	return &Engine{
		cfg:      cfg,
		g:        g,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		sites:    sites,
		cache:    NewLayerCache(g),
		router:   core.NewRouter(cfg.K),
		resident: make([][]*msg, n),
		m:        newDeflectMetrics(cfg.Obs),
	}, nil
}

// Config returns the configuration with defaults resolved.
func (e *Engine) Config() Config { return e.cfg }

// Graph exposes the underlying topology (read-only use).
func (e *Engine) Graph() *graph.Graph { return e.g }

// NumSites returns d^k.
func (e *Engine) NumSites() int { return len(e.sites) }

// Word returns the address of vertex v.
func (e *Engine) Word(v int) word.Word { return e.sites[v] }

// Round returns the number of completed rounds.
func (e *Engine) Round() int { return e.round }

// Inflight returns the number of messages currently resident.
func (e *Engine) Inflight() int { return e.inflight }

// Capacity returns the output-slot count of the site addressed by w —
// the number of messages it can hold between rounds.
func (e *Engine) Capacity(w word.Word) (int, error) {
	v, err := e.vertex(w)
	if err != nil {
		return 0, err
	}
	return len(e.g.OutNeighbors(v)), nil
}

func (e *Engine) vertex(w word.Word) (int, error) {
	if w.Base() != e.cfg.D || w.Len() != e.cfg.K {
		return 0, fmt.Errorf("deflect: word %v does not address DN(%d,%d)", w, e.cfg.D, e.cfg.K)
	}
	return graph.DeBruijnVertex(w), nil
}

// Inject offers one message at src bound for dst. A bufferless site
// can hold at most one message per output link, so injection is
// refused (false, counted in dn_deflect_refused_total) when src has no
// free slot this round. A self-addressed message is absorbed
// immediately with zero hops.
func (e *Engine) Inject(src, dst word.Word) (bool, error) {
	sv, err := e.vertex(src)
	if err != nil {
		return false, err
	}
	dv, err := e.vertex(dst)
	if err != nil {
		return false, err
	}
	if sv == dv {
		e.injected++
		e.m.injected.Inc()
		e.deliver(&msg{dstV: dv, born: e.round})
		return true, nil
	}
	if len(e.resident[sv]) >= len(e.g.OutNeighbors(sv)) {
		e.refused++
		e.m.refused.Inc()
		return false, nil
	}
	m := &msg{id: e.nextID, dst: dst, dstV: dv, born: e.round}
	e.nextID++
	e.resident[sv] = append(e.resident[sv], m)
	e.inflight++
	e.injected++
	e.m.injected.Inc()
	e.m.inflight.Set(float64(e.inflight))
	return true, nil
}

// Step advances one synchronous round: every site emits all resident
// messages in oldest-first priority order, winners take advancing
// links, losers are deflected onto free links by the policy, arrivals
// at their destination are absorbed, and over-age messages trip the
// livelock guard.
func (e *Engine) Step() error {
	e.round++
	e.m.rounds.Inc()
	moves := e.moves[:0]
	for v := 0; v < len(e.resident); v++ {
		rs := e.resident[v]
		if len(rs) == 0 {
			continue
		}
		sort.Slice(rs, func(i, j int) bool {
			if rs[i].born != rs[j].born {
				return rs[i].born < rs[j].born
			}
			return rs[i].id < rs[j].id
		})
		free := append(e.free[:0], e.g.OutNeighbors(v)...)
		for _, m := range rs {
			if len(free) == 0 {
				return fmt.Errorf("deflect: site %v holds more messages than output links (internal invariant)", e.sites[v])
			}
			ly, err := e.cache.For(m.dst)
			if err != nil {
				return err
			}
			// Candidate links: the free advancing ones, else (a
			// deflection) every free link.
			cand, candIdx := e.cand[:0], e.candIdx[:0]
			dv := ly.dist[v]
			for i, u := range free {
				if ly.dist[u] == dv-1 {
					cand = append(cand, u)
					candIdx = append(candIdx, i)
				}
			}
			deflected := len(cand) == 0
			if deflected {
				for i, u := range free {
					cand = append(cand, u)
					candIdx = append(candIdx, i)
				}
			}
			choice := 0
			if len(cand) > 1 {
				choice, err = e.cfg.Policy.Choose(e, ly, v, cand)
				if err != nil {
					return err
				}
				if choice < 0 || choice >= len(cand) {
					return fmt.Errorf("deflect: policy %s chose %d of %d candidates", e.cfg.Policy.Name(), choice, len(cand))
				}
			}
			to := int(cand[choice])
			fi := candIdx[choice]
			free = append(free[:fi], free[fi+1:]...)
			m.hops++
			e.hopsMoved++
			e.m.hopsMoved.Inc()
			if deflected {
				m.deflections++
				e.deflections++
				e.m.deflections.Inc()
			}
			moves = append(moves, move{m: m, to: to})
		}
		e.resident[v] = rs[:0]
	}
	for _, mv := range moves {
		m := mv.m
		switch {
		case mv.to == m.dstV:
			e.inflight--
			e.deliver(m)
		case e.round-m.born >= e.cfg.MaxAge:
			e.inflight--
			e.guardDropped++
			e.m.guardTrips.Inc()
		default:
			e.resident[mv.to] = append(e.resident[mv.to], m)
		}
	}
	e.moves = moves[:0]
	e.m.inflight.Set(float64(e.inflight))
	e.m.throughput.Set(float64(e.delivered) / float64(e.round))
	return nil
}

// deliver absorbs m (already removed from the resident sets) at its
// destination and records the latency and per-message deflections.
func (e *Engine) deliver(m *msg) {
	lat := e.round - m.born
	e.delivered++
	e.m.delivered.Inc()
	e.m.latency.Observe(float64(lat))
	e.m.msgDeflections.Observe(float64(m.deflections))
	// stats.Histogram rejects only negatives; lat and deflections are ≥ 0.
	_ = e.latHist.Add(lat)
	_ = e.defHist.Add(m.deflections)
	if lat > e.maxLatency {
		e.maxLatency = lat
	}
}

// distanceTo evaluates the closed-form distance from vertex v to dst:
// Property 1 (directed) or Theorem 2 via the reusable router
// (undirected). PolicyMinIncrease ranks deflection candidates with it.
func (e *Engine) distanceTo(v int, dst word.Word) (int, error) {
	if e.cfg.Unidirectional {
		return core.DirectedDistance(e.sites[v], dst)
	}
	return e.router.Distance(e.sites[v], dst)
}

// Stats summarizes the run so far.
type Stats struct {
	Rounds int
	// Injected = Delivered + GuardDropped + Inflight, exactly.
	Injected, Refused, Delivered, GuardDropped, Inflight int
	// Deflections counts non-advancing link crossings; HopsMoved all
	// crossings.
	Deflections, HopsMoved int64
	// MeanLatency, P99Latency, MaxLatency are over delivered messages,
	// in rounds from injection to absorption.
	MeanLatency            float64
	P99Latency, MaxLatency int
	// MeanDeflections is the mean deflection count per delivered
	// message; DeflectionRate is deflections per link crossing.
	MeanDeflections float64
	DeflectionRate  float64
	// Throughput is delivered messages per round.
	Throughput float64
}

// Stats computes the current counters.
func (e *Engine) Stats() Stats {
	s := Stats{
		Rounds:          e.round,
		Injected:        e.injected,
		Refused:         e.refused,
		Delivered:       e.delivered,
		GuardDropped:    e.guardDropped,
		Inflight:        e.inflight,
		Deflections:     e.deflections,
		HopsMoved:       e.hopsMoved,
		MeanLatency:     e.latHist.Mean(),
		P99Latency:      e.latHist.Quantile(0.99),
		MaxLatency:      e.maxLatency,
		MeanDeflections: e.defHist.Mean(),
	}
	if e.hopsMoved > 0 {
		s.DeflectionRate = float64(e.deflections) / float64(e.hopsMoved)
	}
	if e.round > 0 {
		s.Throughput = float64(e.delivered) / float64(e.round)
	}
	return s
}
