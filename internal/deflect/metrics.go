package deflect

import "repro/internal/obs"

// Registry metric names of the deflection engine (prefix dn_deflect_),
// following the internal/obs conventions of the other engines.
// Documented in README.md § Observability. The accounting invariant is
//
//	dn_deflect_injected_total =
//	    dn_deflect_delivered_total
//	  + dn_deflect_guard_trips_total
//	  + inflight (dn_deflect_inflight gauge)
//
// at every round boundary; offered = injected + refused.
const (
	// metricInjected counts messages accepted into the network.
	metricInjected = "dn_deflect_injected_total"
	// metricRefused counts injection attempts refused because the
	// source site had no free output slot (bufferless backpressure).
	metricRefused = "dn_deflect_refused_total"
	// metricDelivered counts messages absorbed at their destination.
	metricDelivered = "dn_deflect_delivered_total"
	// metricDeflections counts link crossings that did not decrease
	// the distance to the destination.
	metricDeflections = "dn_deflect_deflections_total"
	// metricGuardTrips counts messages removed by the age guard — the
	// engine's detectable-livelock signal.
	metricGuardTrips = "dn_deflect_guard_trips_total"
	// metricRounds counts synchronous rounds executed.
	metricRounds = "dn_deflect_rounds_total"
	// metricHopsMoved counts all link crossings (advancing + deflected).
	metricHopsMoved = "dn_deflect_hops_moved_total"
	// metricLatency is the delivered-latency histogram in rounds.
	metricLatency = "dn_deflect_latency_rounds"
	// metricMsgDeflections is the per-delivered-message deflection
	// count histogram.
	metricMsgDeflections = "dn_deflect_msg_deflections"
	// metricInflight gauges messages currently resident in the network.
	metricInflight = "dn_deflect_inflight"
	// metricThroughput gauges delivered messages per round, refreshed
	// every Step.
	metricThroughput = "dn_deflect_throughput"
)

// deflectMetrics are the engine's pre-resolved instrument handles; all
// nil with a nil registry, so the disabled cost is one nil check per
// event (the repo-wide observability pattern).
type deflectMetrics struct {
	injected, refused, delivered *obs.Counter
	deflections, guardTrips      *obs.Counter
	rounds, hopsMoved            *obs.Counter
	latency, msgDeflections      *obs.Histogram
	inflight, throughput         *obs.Gauge
}

func newDeflectMetrics(reg *obs.Registry) deflectMetrics {
	return deflectMetrics{
		injected:       reg.Counter(metricInjected),
		refused:        reg.Counter(metricRefused),
		delivered:      reg.Counter(metricDelivered),
		deflections:    reg.Counter(metricDeflections),
		guardTrips:     reg.Counter(metricGuardTrips),
		rounds:         reg.Counter(metricRounds),
		hopsMoved:      reg.Counter(metricHopsMoved),
		latency:        reg.Histogram(metricLatency, obs.HopBuckets),
		msgDeflections: reg.Histogram(metricMsgDeflections, obs.HopBuckets),
		inflight:       reg.Gauge(metricInflight),
		throughput:     reg.Gauge(metricThroughput),
	}
}
