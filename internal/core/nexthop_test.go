package core

import (
	"math/rand"
	"testing"

	"repro/internal/word"
)

func TestSelfRouteDirectedExhaustive(t *testing.T) {
	// Destination-based forwarding matches Property 1 distances on
	// every ordered pair.
	for _, dk := range [][2]int{{2, 4}, {3, 3}} {
		d, k := dk[0], dk[1]
		words := allWords(t, d, k)
		for _, x := range words {
			for _, y := range words {
				walk, err := SelfRoute(x, y, NextHopDirected, nil, 4*k)
				if err != nil {
					t.Fatal(err)
				}
				want, err := DirectedDistance(x, y)
				if err != nil {
					t.Fatal(err)
				}
				if len(walk)-1 != want {
					t.Fatalf("self-route %v→%v took %d hops, want %d", x, y, len(walk)-1, want)
				}
				if !walk[len(walk)-1].Equal(y) {
					t.Fatalf("self-route ended at %v, want %v", walk[len(walk)-1], y)
				}
			}
		}
	}
}

func TestSelfRouteUndirectedExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	chooser := func(int, word.Word, Hop) byte { return byte(rng.Intn(2)) }
	for _, dk := range [][2]int{{2, 4}} {
		d, k := dk[0], dk[1]
		_ = d
		words := allWords(t, 2, k)
		for _, x := range words {
			for _, y := range words {
				walk, err := SelfRoute(x, y, NextHopUndirected, chooser, 4*k)
				if err != nil {
					t.Fatal(err)
				}
				want, err := UndirectedDistance(x, y)
				if err != nil {
					t.Fatal(err)
				}
				if len(walk)-1 != want {
					t.Fatalf("self-route %v→%v took %d hops, want %d", x, y, len(walk)-1, want)
				}
			}
		}
	}
}

func TestSelfRouteContractsByOneEachHop(t *testing.T) {
	// Per-hop recomputation with ANY wildcard resolution lands at
	// distance exactly D-1: every wildcard digit keeps the remaining
	// route valid.
	rng := rand.New(rand.NewSource(62))
	for iter := 0; iter < 100; iter++ {
		d := 2 + rng.Intn(3)
		k := 2 + rng.Intn(10)
		x, y := word.Random(d, k, rng), word.Random(d, k, rng)
		cur := x
		dist, err := UndirectedDistance(cur, y)
		if err != nil {
			t.Fatal(err)
		}
		for dist > 0 {
			h, more, err := NextHopUndirected(cur, y)
			if err != nil || !more {
				t.Fatal(err, more)
			}
			if h.Wildcard {
				h = Hop{Type: h.Type, Digit: byte(rng.Intn(d))}
			}
			cur, err = Path{h}.Apply(cur, nil)
			if err != nil {
				t.Fatal(err)
			}
			next, err := UndirectedDistance(cur, y)
			if err != nil {
				t.Fatal(err)
			}
			if next != dist-1 {
				t.Fatalf("hop did not contract: %d → %d (cur %v dst %v)", dist, next, cur, y)
			}
			dist = next
		}
		if !cur.Equal(y) {
			t.Fatalf("ended at %v, want %v", cur, y)
		}
	}
}

func TestNextHopValidation(t *testing.T) {
	x := word.MustParse(2, "01")
	if _, _, err := NextHopDirected(x, word.MustParse(3, "01")); err == nil {
		t.Error("NextHopDirected accepted mixed bases")
	}
	if _, _, err := NextHopUndirected(x, word.MustParse(2, "011")); err == nil {
		t.Error("NextHopUndirected accepted mixed lengths")
	}
	if _, more, err := NextHopDirected(x, x); err != nil || more {
		t.Error("NextHopDirected at destination should report done")
	}
	if _, more, err := NextHopUndirected(x, x); err != nil || more {
		t.Error("NextHopUndirected at destination should report done")
	}
}

func TestSelfRouteGuards(t *testing.T) {
	x := word.MustParse(2, "01")
	y := word.MustParse(2, "10")
	if _, err := SelfRoute(x, y, nil, nil, 10); err == nil {
		t.Error("accepted nil next-hop function")
	}
	// A non-contracting next function must hit the hop guard.
	loop := func(cur, dst word.Word) (Hop, bool, error) {
		return L(cur.Digit(0)), true, nil
	}
	if _, err := SelfRoute(x, y, loop, nil, 8); err == nil {
		t.Error("runaway next-hop function not caught")
	}
}

func TestSelfRouteAtDestination(t *testing.T) {
	x := word.MustParse(2, "0101")
	walk, err := SelfRoute(x, x, NextHopUndirected, nil, 16)
	if err != nil || len(walk) != 1 {
		t.Errorf("walk = %v, %v", walk, err)
	}
}
