package core

import (
	"fmt"

	"repro/internal/word"
)

// HopBetween identifies the shift move turning u into its neighbor v:
// a type-L hop when v = u⁻(b), otherwise a type-R hop when v = u⁺(b).
// Left shifts are preferred when both realize the move (alternating
// words). The boolean is false when v is not a neighbor of u.
func HopBetween(u, v word.Word) (Hop, bool) {
	if u.Base() != v.Base() || u.Len() != v.Len() || u.Len() == 0 {
		return Hop{}, false
	}
	k := u.Len()
	if b := v.Digit(k - 1); u.ShiftLeft(b).Equal(v) {
		return L(b), true
	}
	if b := v.Digit(0); u.ShiftRight(b).Equal(v) {
		return R(b), true
	}
	return Hop{}, false
}

// PathFromVertices converts an explicit vertex walk (as produced by a
// BFS reroute) into a routing path. Every consecutive pair must be a
// shift move.
func PathFromVertices(walk []word.Word) (Path, error) {
	if len(walk) == 0 {
		return nil, fmt.Errorf("core: empty walk")
	}
	p := make(Path, 0, len(walk)-1)
	for i := 1; i < len(walk); i++ {
		h, ok := HopBetween(walk[i-1], walk[i])
		if !ok {
			return nil, fmt.Errorf("core: step %v→%v is not a shift move", walk[i-1], walk[i])
		}
		p = append(p, h)
	}
	return p, nil
}

// Vertices expands a concrete path from src into the full vertex walk
// (length Len()+1, starting at src). Wildcard hops are rejected;
// resolve them first with Concrete.
func (p Path) Vertices(src word.Word) ([]word.Word, error) {
	out := make([]word.Word, 0, len(p)+1)
	out = append(out, src)
	cur := src
	for i, h := range p {
		if h.Wildcard {
			return nil, fmt.Errorf("core: hop %d is a wildcard; call Concrete first", i)
		}
		next, err := Path{h}.Apply(cur, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, next)
		cur = next
	}
	return out, nil
}
