package core

import (
	"fmt"

	"repro/internal/match"
	"repro/internal/word"
)

// RouteDirected is Algorithm 1: a shortest routing path from X to Y in
// the uni-directional de Bruijn network DN(d,k). The path is the digit
// sequence y_{l+1}, ..., y_k applied as left shifts, where l is the
// longest suffix-of-X/prefix-of-Y overlap; O(k) time and space.
func RouteDirected(x, y word.Word) (Path, error) {
	if err := validatePair(x, y); err != nil {
		return nil, err
	}
	if x.Equal(y) {
		return Path{}, nil
	}
	l := match.Overlap(rawDigits(x), rawDigits(y))
	k := y.Len()
	p := make(Path, 0, k-l)
	for j := l; j < k; j++ {
		p = append(p, L(y.Digit(j)))
	}
	return p, nil
}

// RouteUndirected is Algorithm 2: a shortest routing path from X to Y
// in the bi-directional de Bruijn network DN(d,k), computed with the
// failure-function machinery of Algorithm 3 in O(k²) time and O(k)
// space. Arbitrary-digit positions are emitted as wildcard hops
// ((a,*) in the paper's remark); resolve them with Path.Concrete or a
// Chooser when applying.
func RouteUndirected(x, y word.Word) (Path, error) {
	sc := getScratch()
	p, err := sc.RouteUndirected(x, y)
	putScratch(sc)
	return p, err
}

// undirectedPathLen returns the exact hop count buildUndirectedPath
// will produce for the given anchors — the distance bound (≤ 2k-1)
// known before construction, used to size the path in one allocation.
func undirectedPathLen(k int, aL, aR anchor) int {
	if aL.dist >= k && aR.dist >= k {
		return k
	}
	if aL.dist <= aR.dist {
		return aL.dist
	}
	return aR.dist
}

// buildUndirectedPath realizes lines 5–9 of Algorithm 2 from the two
// minimizing anchors, allocating the path exactly once at its known
// final length. All anchor coordinates are 1-based, matching the
// paper.
func buildUndirectedPath(y word.Word, aL, aR anchor) Path {
	return appendUndirectedPath(make(Path, 0, undirectedPathLen(y.Len(), aL, aR)), y, aL, aR)
}

// appendUndirectedPath appends the Algorithm 2 path to p and returns
// it — the construction kernel shared by the one-shot builders (which
// hand it an exactly-sized fresh path) and the scratch next-hop query
// (which hands it a reused hop buffer).
func appendUndirectedPath(p Path, y word.Word, aL, aR anchor) Path {
	k := y.Len()
	d1, d2 := aL.dist, aR.dist
	if d1 >= k && d2 >= k {
		// Line 6: the trivial directed path (0,y_1)...(0,y_k).
		// (Both minima are ≤ k whenever anchors come from full-range
		// minimization; linear-tree anchors may report k as a
		// saturated sentinel, hence ≥.)
		for j := 0; j < k; j++ {
			p = append(p, L(y.Digit(j)))
		}
		return p
	}
	if d1 <= d2 {
		return appendLine8(p, y, aL)
	}
	return appendLine9(p, y, aR)
}

// buildLine8 realizes line 8 of Algorithm 2: s-1 arbitrary left
// shifts; right shifts inserting y_{t-θ}, ..., y_1 then k-t arbitrary
// digits; left shifts appending y_{t+1}, ..., y_k.
func buildLine8(y word.Word, a anchor) Path {
	return appendLine8(make(Path, 0, a.dist), y, a)
}

func appendLine8(p Path, y word.Word, a anchor) Path {
	k := y.Len()
	s, t, th := a.s, a.t, a.theta
	for i := 0; i < s-1; i++ {
		p = append(p, LStar())
	}
	for j := t - th; j >= 1; j-- {
		p = append(p, R(y.Digit(j-1)))
	}
	for i := 0; i < k-t; i++ {
		p = append(p, RStar())
	}
	for j := t + 1; j <= k; j++ {
		p = append(p, L(y.Digit(j-1)))
	}
	return p
}

// buildLine9 realizes line 9 of Algorithm 2: k-s arbitrary right
// shifts; left shifts appending y_{t+θ}, ..., y_k then t-1 arbitrary
// digits; right shifts inserting y_{t-1}, ..., y_1.
func buildLine9(y word.Word, a anchor) Path {
	return appendLine9(make(Path, 0, a.dist), y, a)
}

func appendLine9(p Path, y word.Word, a anchor) Path {
	k := y.Len()
	s, t, th := a.s, a.t, a.theta
	for i := 0; i < k-s; i++ {
		p = append(p, RStar())
	}
	for j := t + th; j <= k; j++ {
		p = append(p, L(y.Digit(j-1)))
	}
	for i := 0; i < t-1; i++ {
		p = append(p, LStar())
	}
	for j := t - 1; j >= 1; j-- {
		p = append(p, R(y.Digit(j-1)))
	}
	return p
}

// mustLen double-checks that a constructed path has the promised
// length; used by tests via RouteUndirectedChecked.
func mustLen(p Path, want int) error {
	if len(p) != want {
		return fmt.Errorf("core: constructed path has %d hops, want %d", len(p), want)
	}
	return nil
}
