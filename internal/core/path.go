// Package core implements the paper's contribution: the distance
// functions of the directed and undirected de Bruijn graphs (Property
// 1, Theorem 2, Corollary 4), the optimal routing algorithms
// (Algorithms 1, 2 and 4), and the average-distance analysis of
// Section 2 (equation (5) and the Figure 2 numerics).
//
// Vertices are d-ary words of length k (package word). A routing path
// is the Section 3 sequence of pairs (a_i, b_i): a_i selects the
// neighbor type (0 = type-L, reached by a left shift; 1 = type-R,
// reached by a right shift) and b_i the inserted digit. The special
// digit "*" of the paper's remark — any neighbor of the given type —
// is represented by Hop.Wildcard, enabling the traffic balancing
// exercised in the network simulator.
package core

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/word"
)

// HopType selects which shift a hop performs, the a_i of the paper.
type HopType byte

const (
	// TypeL is a left shift to X⁻(b): the paper's a = 0.
	TypeL HopType = 0
	// TypeR is a right shift to X⁺(b): the paper's a = 1.
	TypeR HopType = 1
)

func (t HopType) String() string {
	switch t {
	case TypeL:
		return "L"
	case TypeR:
		return "R"
	default:
		return fmt.Sprintf("HopType(%d)", byte(t))
	}
}

// Hop is one element (a_i, b_i) of a routing path. When Wildcard is
// set the Digit is immaterial: the forwarding site may choose any
// neighbor of the given type (the paper's "(a,*)" extension).
type Hop struct {
	Type     HopType
	Digit    byte
	Wildcard bool
}

// L returns a concrete type-L hop inserting digit b.
func L(b byte) Hop { return Hop{Type: TypeL, Digit: b} }

// R returns a concrete type-R hop inserting digit b.
func R(b byte) Hop { return Hop{Type: TypeR, Digit: b} }

// LStar returns the wildcard type-L hop (0,*).
func LStar() Hop { return Hop{Type: TypeL, Wildcard: true} }

// RStar returns the wildcard type-R hop (1,*).
func RStar() Hop { return Hop{Type: TypeR, Wildcard: true} }

func (h Hop) String() string {
	b := "*"
	if !h.Wildcard {
		b = string("0123456789abcdefghijklmnopqrstuvwxyz"[h.Digit])
	}
	return fmt.Sprintf("(%d,%s)", byte(h.Type), b)
}

// Path is a routing path {(a_1,b_1), ..., (a_n,b_n)}; its length is
// the number of hops.
type Path []Hop

// Errors reported when applying paths.
var (
	ErrBadChooser = errors.New("core: wildcard hop needs a chooser")
	ErrBadDigit   = errors.New("core: hop digit out of alphabet")
)

// Chooser resolves a wildcard hop at walk position i to a concrete
// digit; the network simulator plugs load-balancing policies in here.
type Chooser func(i int, at word.Word, h Hop) byte

// FirstDigit is the trivial chooser: always insert digit 0.
func FirstDigit(int, word.Word, Hop) byte { return 0 }

// Len returns the number of hops.
func (p Path) Len() int { return len(p) }

// String renders the path in the paper's pair notation.
func (p Path) String() string {
	if len(p) == 0 {
		return "{}"
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, h := range p {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(h.String())
	}
	b.WriteByte('}')
	return b.String()
}

// HasWildcard reports whether any hop is a wildcard.
func (p Path) HasWildcard() bool {
	for _, h := range p {
		if h.Wildcard {
			return true
		}
	}
	return false
}

// Apply walks the path from the given source, resolving wildcard hops
// with choose (required if any hop is a wildcard; concrete paths may
// pass nil), and returns the final vertex.
func (p Path) Apply(from word.Word, choose Chooser) (word.Word, error) {
	cur := from
	for i, h := range p {
		digit := h.Digit
		if h.Wildcard {
			if choose == nil {
				return word.Word{}, fmt.Errorf("%w: hop %d", ErrBadChooser, i)
			}
			digit = choose(i, cur, h)
		}
		if int(digit) >= cur.Base() {
			return word.Word{}, fmt.Errorf("%w: hop %d digit %d base %d", ErrBadDigit, i, digit, cur.Base())
		}
		switch h.Type {
		case TypeL:
			cur = cur.ShiftLeft(digit)
		case TypeR:
			cur = cur.ShiftRight(digit)
		default:
			return word.Word{}, fmt.Errorf("core: hop %d has invalid type %d", i, h.Type)
		}
	}
	return cur, nil
}

// Concrete returns a copy of p with every wildcard hop resolved by
// choose (or digit 0 if choose is nil).
func (p Path) Concrete(from word.Word, choose Chooser) (Path, error) {
	out := make(Path, len(p))
	cur := from
	for i, h := range p {
		digit := h.Digit
		if h.Wildcard {
			if choose == nil {
				digit = 0
			} else {
				digit = choose(i, cur, h)
			}
		}
		if int(digit) >= cur.Base() {
			return nil, fmt.Errorf("%w: hop %d digit %d base %d", ErrBadDigit, i, digit, cur.Base())
		}
		out[i] = Hop{Type: h.Type, Digit: digit}
		switch h.Type {
		case TypeL:
			cur = cur.ShiftLeft(digit)
		case TypeR:
			cur = cur.ShiftRight(digit)
		default:
			return nil, fmt.Errorf("core: hop %d has invalid type %d", i, h.Type)
		}
	}
	return out, nil
}

// OnlyLeftShifts reports whether the path uses type-L hops
// exclusively, i.e. is realizable in the uni-directional network.
func (p Path) OnlyLeftShifts() bool {
	for _, h := range p {
		if h.Type != TypeL {
			return false
		}
	}
	return true
}

func validatePair(x, y word.Word) error {
	if x.IsZero() || y.IsZero() {
		return errors.New("core: zero-value word")
	}
	if x.Base() != y.Base() {
		return fmt.Errorf("core: mixed bases %d and %d", x.Base(), y.Base())
	}
	if x.Len() != y.Len() {
		return fmt.Errorf("core: mixed lengths %d and %d", x.Len(), y.Len())
	}
	return nil
}
