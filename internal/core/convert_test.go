package core

import (
	"math/rand"
	"testing"

	"repro/internal/word"
)

func TestHopBetween(t *testing.T) {
	u := word.MustParse(2, "0110")
	if h, ok := HopBetween(u, word.MustParse(2, "1101")); !ok || h.Type != TypeL || h.Digit != 1 {
		t.Errorf("HopBetween L = %v %v", h, ok)
	}
	if h, ok := HopBetween(u, word.MustParse(2, "1011")); !ok || h.Type != TypeR || h.Digit != 1 {
		t.Errorf("HopBetween R = %v %v", h, ok)
	}
	if _, ok := HopBetween(u, word.MustParse(2, "1111")); ok {
		t.Error("HopBetween accepted non-neighbor")
	}
	if _, ok := HopBetween(u, word.MustParse(3, "0110")); ok {
		t.Error("HopBetween accepted mixed base")
	}
	if _, ok := HopBetween(u, word.MustParse(2, "011")); ok {
		t.Error("HopBetween accepted mixed length")
	}
}

func TestHopBetweenPrefersLeftOnAlternating(t *testing.T) {
	// 0101 → 1010 is both a left shift (insert 0) and a right shift
	// (insert 1).
	u := word.MustParse(2, "0101")
	v := word.MustParse(2, "1010")
	h, ok := HopBetween(u, v)
	if !ok || h.Type != TypeL {
		t.Errorf("HopBetween = %v %v, want type-L", h, ok)
	}
	got, err := (Path{h}).Apply(u, nil)
	if err != nil || !got.Equal(v) {
		t.Errorf("apply = %v, %v", got, err)
	}
}

func TestPathFromVerticesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for iter := 0; iter < 200; iter++ {
		d := 2 + rng.Intn(3)
		k := 1 + rng.Intn(10)
		x, y := word.Random(d, k, rng), word.Random(d, k, rng)
		p, err := RouteUndirectedLinear(x, y)
		if err != nil {
			t.Fatal(err)
		}
		conc, err := p.Concrete(x, func(int, word.Word, Hop) byte { return byte(rng.Intn(d)) })
		if err != nil {
			t.Fatal(err)
		}
		walk, err := conc.Vertices(x)
		if err != nil {
			t.Fatal(err)
		}
		if len(walk) != conc.Len()+1 || !walk[0].Equal(x) || !walk[len(walk)-1].Equal(y) {
			t.Fatalf("walk %v for path %v", walk, conc)
		}
		back, err := PathFromVertices(walk)
		if err != nil {
			t.Fatal(err)
		}
		end, err := back.Apply(x, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !end.Equal(y) {
			t.Fatalf("reconstructed path ends at %v, want %v", end, y)
		}
		if back.Len() != conc.Len() {
			t.Fatalf("reconstructed length %d, want %d", back.Len(), conc.Len())
		}
	}
}

func TestPathFromVerticesRejects(t *testing.T) {
	if _, err := PathFromVertices(nil); err == nil {
		t.Error("accepted empty walk")
	}
	walk := []word.Word{word.MustParse(2, "00"), word.MustParse(2, "11")}
	if _, err := PathFromVertices(walk); err == nil {
		t.Error("accepted non-shift step")
	}
}

func TestVerticesRejectsWildcard(t *testing.T) {
	if _, err := (Path{LStar()}).Vertices(word.MustParse(2, "01")); err == nil {
		t.Error("Vertices accepted wildcard hop")
	}
}

func TestVerticesSingleVertex(t *testing.T) {
	x := word.MustParse(2, "01")
	walk, err := (Path{}).Vertices(x)
	if err != nil || len(walk) != 1 || !walk[0].Equal(x) {
		t.Errorf("walk = %v, %v", walk, err)
	}
}
