package core

import (
	"repro/internal/match"
	"repro/internal/word"
)

// MultiRouteUndirected returns up to limit *distinct* shortest routing
// paths from X to Y in the bi-directional network, one per optimal
// matching-function anchor (every (i,j) whose l- or r-term attains the
// Theorem 2 minimum yields its own line-8/line-9 construction), plus
// the trivial path when the distance is k. Distinctness is up to the
// wildcard pattern: each returned path has its own hop-type/digit
// shape, and every concrete realization of any of them is a shortest
// path. Multipath senders spread load across these.
//
// The enumeration is not exhaustive — the graph may contain shortest
// paths outside Algorithm 2's two canonical shapes — but every
// returned path is optimal, which is what multipath forwarding needs.
// O(k²) time, like Algorithm 2.
func MultiRouteUndirected(x, y word.Word, limit int) ([]Path, error) {
	if err := validatePair(x, y); err != nil {
		return nil, err
	}
	if limit < 1 {
		limit = 1
	}
	if x.Equal(y) {
		return []Path{{}}, nil
	}
	xd, yd := rawDigits(x), rawDigits(y)
	k := x.Len()
	dist, err := UndirectedDistance(x, y)
	if err != nil {
		return nil, err
	}
	var out []Path
	seen := make(map[string]bool)
	add := func(p Path) bool {
		key := p.String()
		if seen[key] {
			return len(out) < limit
		}
		seen[key] = true
		out = append(out, p)
		return len(out) < limit
	}
	if dist == k {
		// Line 6: the trivial directed path.
		p := make(Path, 0, k)
		for j := 0; j < k; j++ {
			p = append(p, L(y.Digit(j)))
		}
		if !add(p) {
			return out, nil
		}
	}
	// Every optimal l-anchor.
	for i := 1; i <= k; i++ {
		row := match.LRow(xd, yd, i-1)
		for j := 1; j <= k; j++ {
			if 2*k-1+i-j-row[j-1] == dist {
				a := anchor{s: i, t: j, theta: row[j-1], dist: dist}
				if !add(buildLine8(y, a)) {
					return out, nil
				}
			}
		}
	}
	// Every optimal r-anchor.
	for i := 1; i <= k; i++ {
		row := match.RRow(xd, yd, i-1)
		for j := 1; j <= k; j++ {
			if 2*k-1-i+j-row[j-1] == dist {
				a := anchor{s: i, t: j, theta: row[j-1], dist: dist}
				if !add(buildLine9(y, a)) {
					return out, nil
				}
			}
		}
	}
	return out, nil
}
