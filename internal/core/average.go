package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/word"
)

// DirectedMeanFormula evaluates equation (5) of the paper:
//
//	δ(d,k) = k - (1-α^k)·α/ᾱ,  α = 1/d, ᾱ = 1-α,
//
// the paper's closed form for the average distance over ordered vertex
// pairs (diagonal pairs included, contributing distance 0) in the
// directed DG(d,k). For d = 2 this is k - 1 + 2^{-k}.
//
// The derivation assumes Pr[D = i] = α^{k-i}·ᾱ, which treats the
// suffix-prefix overlap events as nested; they are not (X = 01, Y = 01
// overlaps at length 2 but not 1), so equation (5) slightly
// overestimates the exact mean. Experiment E3 quantifies the gap,
// which vanishes as k grows.
func DirectedMeanFormula(d, k int) float64 {
	alpha := 1.0 / float64(d)
	return float64(k) - (1-math.Pow(alpha, float64(k)))*alpha/(1-alpha)
}

// MeanResult reports an average-distance measurement.
type MeanResult struct {
	Mean  float64 // average over ordered pairs, diagonal included
	Pairs int     // number of pairs measured
	Exact bool    // true when every ordered pair was enumerated
	// StdErr is the standard error of the sampled mean (0 when Exact).
	StdErr float64
}

// maxExactPairs bounds the work of exact enumeration: N² pairs, each
// O(k) (directed) or O(k²) (undirected).
const maxExactVertices = 4096

// ErrTooLarge signals that exact enumeration was refused; callers
// should sample instead.
var ErrTooLarge = errors.New("core: graph too large for exact enumeration")

// DirectedMeanExact computes the exact average directed distance over
// all N² ordered pairs using Property 1. Refuses graphs with more
// than 4096 vertices (use DirectedMeanSampled).
func DirectedMeanExact(d, k int) (MeanResult, error) {
	return meanExact(d, k, DirectedDistance)
}

// UndirectedMeanExact computes the exact average undirected distance
// over all N² ordered pairs using Theorem 2 — the Figure 2 quantity.
// Refuses graphs with more than 4096 vertices.
func UndirectedMeanExact(d, k int) (MeanResult, error) {
	return meanExact(d, k, UndirectedDistance)
}

func meanExact(d, k int, dist func(x, y word.Word) (int, error)) (MeanResult, error) {
	n, err := word.Count(d, k)
	if err != nil {
		return MeanResult{}, err
	}
	if n > maxExactVertices {
		return MeanResult{}, fmt.Errorf("%w: N=%d", ErrTooLarge, n)
	}
	words := make([]word.Word, 0, n)
	if _, err := word.ForEach(d, k, func(w word.Word) bool {
		words = append(words, w)
		return true
	}); err != nil {
		return MeanResult{}, err
	}
	var sum float64
	for _, x := range words {
		for _, y := range words {
			dd, err := dist(x, y)
			if err != nil {
				return MeanResult{}, err
			}
			sum += float64(dd)
		}
	}
	return MeanResult{Mean: sum / float64(n*n), Pairs: n * n, Exact: true}, nil
}

// DirectedMeanSampled estimates the average directed distance from
// `samples` uniform ordered pairs drawn with the given seed.
func DirectedMeanSampled(d, k, samples int, seed int64) (MeanResult, error) {
	return meanSampled(d, k, samples, seed, DirectedDistance)
}

// UndirectedMeanSampled estimates the average undirected distance from
// `samples` uniform ordered pairs drawn with the given seed; the
// Figure 2 estimator beyond 4096 vertices.
func UndirectedMeanSampled(d, k, samples int, seed int64) (MeanResult, error) {
	return meanSampled(d, k, samples, seed, UndirectedDistance)
}

func meanSampled(d, k, samples int, seed int64, dist func(x, y word.Word) (int, error)) (MeanResult, error) {
	if samples < 1 {
		return MeanResult{}, fmt.Errorf("core: need at least one sample, got %d", samples)
	}
	if _, err := word.Count(d, k); err != nil {
		return MeanResult{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	var sum, sumSq float64
	for i := 0; i < samples; i++ {
		x := word.Random(d, k, rng)
		y := word.Random(d, k, rng)
		dd, err := dist(x, y)
		if err != nil {
			return MeanResult{}, err
		}
		sum += float64(dd)
		sumSq += float64(dd) * float64(dd)
	}
	mean := sum / float64(samples)
	variance := sumSq/float64(samples) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return MeanResult{
		Mean:   mean,
		Pairs:  samples,
		StdErr: math.Sqrt(variance / float64(samples)),
	}, nil
}

// DirectedDistanceDistribution returns count[i] = number of ordered
// pairs at directed distance i (0..k), by exact enumeration.
func DirectedDistanceDistribution(d, k int) ([]int, error) {
	return distanceDistribution(d, k, DirectedDistance)
}

// UndirectedDistanceDistribution returns count[i] = number of ordered
// pairs at undirected distance i (0..k), by exact enumeration.
func UndirectedDistanceDistribution(d, k int) ([]int, error) {
	return distanceDistribution(d, k, UndirectedDistance)
}

func distanceDistribution(d, k int, dist func(x, y word.Word) (int, error)) ([]int, error) {
	n, err := word.Count(d, k)
	if err != nil {
		return nil, err
	}
	if n > maxExactVertices {
		return nil, fmt.Errorf("%w: N=%d", ErrTooLarge, n)
	}
	words := make([]word.Word, 0, n)
	if _, err := word.ForEach(d, k, func(w word.Word) bool {
		words = append(words, w)
		return true
	}); err != nil {
		return nil, err
	}
	counts := make([]int, k+1)
	for _, x := range words {
		for _, y := range words {
			dd, err := dist(x, y)
			if err != nil {
				return nil, err
			}
			if dd < 0 || dd > k {
				return nil, fmt.Errorf("core: distance %d outside [0,%d]", dd, k)
			}
			counts[dd]++
		}
	}
	return counts, nil
}
