package core

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/word"
)

// Router metric names (README.md § Observability).
const (
	metricRoutesBuilt   = "core_routes_built_total"
	metricDistanceEvals = "core_distance_evals_total"
	metricAnchorRows    = "core_anchor_rows_total"
	metricRouterRouteNs = "core_router_route_ns"
)

// routerMetrics are pre-resolved instrument handles; all nil when
// observation is off, so the hot path pays one nil check per call.
type routerMetrics struct {
	routesBuilt   *obs.Counter
	distanceEvals *obs.Counter
	anchorRows    *obs.Counter
	routeNs       *obs.Histogram
}

// Router is the §4 remark made concrete: "appropriately implemented,
// the constant factors of our linear algorithms are low enough to make
// these algorithms of practical use". It evaluates Theorem 2 and
// builds Algorithm 2 routes with preallocated scratch, so repeated
// routing on one DN(d,k) — the forwarding hot path — performs no
// per-query heap allocation beyond the returned path. Not safe for
// concurrent use; give each forwarding goroutine its own Router.
type Router struct {
	k    int
	fail []int // failure function scratch (one row)
	row  []int // matching row scratch
	xrev []byte
	yrev []byte
	xd   []byte
	yd   []byte
	m    routerMetrics
}

// NewRouter returns a Router for words of length k.
func NewRouter(k int) *Router {
	return &Router{
		k:    k,
		fail: make([]int, k),
		row:  make([]int, k),
		xrev: make([]byte, k),
		yrev: make([]byte, k),
		xd:   make([]byte, k),
		yd:   make([]byte, k),
	}
}

// SetObserver attaches a metrics registry: routes built, Theorem-2
// distance evaluations, anchor-scan rows, and per-route latency land
// in it. A nil registry detaches (the default — instrumentation then
// costs one nil check per operation).
func (r *Router) SetObserver(reg *obs.Registry) {
	if reg == nil {
		r.m = routerMetrics{}
		return
	}
	r.m = routerMetrics{
		routesBuilt:   reg.Counter(metricRoutesBuilt),
		distanceEvals: reg.Counter(metricDistanceEvals),
		anchorRows:    reg.Counter(metricAnchorRows),
		routeNs:       reg.Histogram(metricRouterRouteNs, obs.NsBuckets),
	}
}

// matchRowInto runs the Morris–Pratt scan of text against pattern,
// writing the matching row into r.row (reusing r.fail): the
// allocation-free core of Algorithm 3.
func (r *Router) matchRowInto(pattern, text []byte) []int {
	row := r.row[:len(text)]
	if len(pattern) == 0 {
		for i := range row {
			row[i] = 0
		}
		return row
	}
	fail := r.fail[:len(pattern)]
	h := 0
	fail[0] = 0
	for t := 1; t < len(pattern); t++ {
		for h > 0 && pattern[h] != pattern[t] {
			h = fail[h-1]
		}
		if pattern[h] == pattern[t] {
			h++
		}
		fail[t] = h
	}
	h = 0
	for j := 0; j < len(text); j++ {
		if h == len(pattern) {
			h = fail[len(pattern)-1]
		}
		for h > 0 && pattern[h] != text[j] {
			h = fail[h-1]
		}
		if pattern[h] == text[j] {
			h++
		}
		row[j] = h
	}
	return row
}

// anchors computes the two minimizing anchors of Theorem 2 in O(k²)
// time and O(k) space with no allocation.
func (r *Router) anchors(xd, yd []byte) (aL, aR anchor) {
	k := len(xd)
	// 2k Morris–Pratt rows per evaluation (k per anchor direction).
	r.m.anchorRows.Add(int64(2 * k))
	aL = anchor{dist: 1 << 30}
	aR = anchor{dist: 1 << 30}
	for i := 1; i <= k; i++ {
		row := r.matchRowInto(xd[i-1:], yd)
		for j := 1; j <= k; j++ {
			if d := 2*k - 1 + i - j - row[j-1]; d < aL.dist {
				aL = anchor{s: i, t: j, theta: row[j-1], dist: d}
			}
		}
	}
	// r-part via the reversal identity r_{i,j} = l_{k+1-i,k+1-j}(X̄,Ȳ).
	for i := 0; i < k; i++ {
		r.xrev[i] = xd[k-1-i]
		r.yrev[i] = yd[k-1-i]
	}
	for ir := 1; ir <= k; ir++ { // ir = k+1-i
		row := r.matchRowInto(r.xrev[ir-1:], r.yrev)
		i := k + 1 - ir
		for jr := 1; jr <= k; jr++ {
			j := k + 1 - jr
			if d := 2*k - 1 - i + j - row[jr-1]; d < aR.dist {
				aR = anchor{s: i, t: j, theta: row[jr-1], dist: d}
			}
		}
	}
	return aL, aR
}

// Distance evaluates Theorem 2 without allocating.
func (r *Router) Distance(x, y word.Word) (int, error) {
	if err := r.load(x, y); err != nil {
		return 0, err
	}
	r.m.distanceEvals.Inc()
	if x.Equal(y) {
		return 0, nil
	}
	aL, aR := r.anchors(r.xd, r.yd)
	if aR.dist < aL.dist {
		return aR.dist, nil
	}
	return aL.dist, nil
}

// Route builds an Algorithm 2 shortest path, allocating only the
// returned Path.
func (r *Router) Route(x, y word.Word) (Path, error) {
	var start time.Time
	if r.m.routeNs != nil {
		start = time.Now()
	}
	if err := r.load(x, y); err != nil {
		return nil, err
	}
	r.m.routesBuilt.Inc()
	if x.Equal(y) {
		return Path{}, nil
	}
	aL, aR := r.anchors(r.xd, r.yd)
	p := buildUndirectedPath(y, aL, aR)
	if r.m.routeNs != nil {
		r.m.routeNs.Observe(float64(time.Since(start)))
	}
	return p, nil
}

func (r *Router) load(x, y word.Word) error {
	if err := validatePair(x, y); err != nil {
		return err
	}
	if x.Len() != r.k {
		return wrongLenError(r.k, x.Len())
	}
	for i := 0; i < r.k; i++ {
		r.xd[i] = x.Digit(i)
		r.yd[i] = y.Digit(i)
	}
	return nil
}

func wrongLenError(want, got int) error {
	return fmt.Errorf("core: router built for length %d, got %d", want, got)
}
