package core

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/word"
)

// Router metric names (README.md § Observability).
const (
	metricRoutesBuilt   = "core_routes_built_total"
	metricDistanceEvals = "core_distance_evals_total"
	metricAnchorRows    = "core_anchor_rows_total"
	metricRouterRouteNs = "core_router_route_ns"
)

// routerMetrics are pre-resolved instrument handles; all nil when
// observation is off, so the hot path pays one nil check per call.
type routerMetrics struct {
	routesBuilt   *obs.Counter
	distanceEvals *obs.Counter
	anchorRows    *obs.Counter
	routeNs       *obs.Histogram
}

// Router is the §4 remark made concrete: "appropriately implemented,
// the constant factors of our linear algorithms are low enough to make
// these algorithms of practical use". It evaluates Theorem 2 and
// builds Algorithm 2 routes on a private Scratch, so repeated routing
// on one DN(d,k) — the forwarding hot path — performs no per-query
// heap allocation beyond the returned path, and adds the metrics layer
// the bare Scratch omits. Not safe for concurrent use; give each
// forwarding goroutine its own Router.
type Router struct {
	k  int
	sc *Scratch
	m  routerMetrics
}

// NewRouter returns a Router for words of length k.
func NewRouter(k int) *Router {
	return &Router{k: k, sc: NewScratch()}
}

// SetObserver attaches a metrics registry: routes built, Theorem-2
// distance evaluations, anchor-scan rows, and per-route latency land
// in it. A nil registry detaches (the default — instrumentation then
// costs one nil check per operation).
func (r *Router) SetObserver(reg *obs.Registry) {
	if reg == nil {
		r.m = routerMetrics{}
		return
	}
	r.m = routerMetrics{
		routesBuilt:   reg.Counter(metricRoutesBuilt),
		distanceEvals: reg.Counter(metricDistanceEvals),
		anchorRows:    reg.Counter(metricAnchorRows),
		routeNs:       reg.Histogram(metricRouterRouteNs, obs.NsBuckets),
	}
}

// anchors computes the two minimizing anchors of Theorem 2 in O(k²)
// time and O(k) space with no allocation, in bestL/RQuadratic's
// minimization order (so the Router's anchors — and hence its paths —
// are byte-identical to the package-level RouteUndirected's).
func (r *Router) anchors(xd, yd []byte) (aL, aR anchor) {
	// 2k Morris–Pratt rows per evaluation (k per anchor direction).
	r.m.anchorRows.Add(int64(2 * len(xd)))
	return r.sc.anchorsQuadratic(xd, yd)
}

// Distance evaluates Theorem 2 without allocating.
func (r *Router) Distance(x, y word.Word) (int, error) {
	if err := r.load(x, y); err != nil {
		return 0, err
	}
	r.m.distanceEvals.Inc()
	if x.Equal(y) {
		return 0, nil
	}
	aL, aR := r.anchors(r.sc.xd, r.sc.yd)
	if aR.dist < aL.dist {
		return aR.dist, nil
	}
	return aL.dist, nil
}

// Route builds an Algorithm 2 shortest path, allocating only the
// returned Path.
func (r *Router) Route(x, y word.Word) (Path, error) {
	var start time.Time
	if r.m.routeNs != nil {
		start = time.Now()
	}
	if err := r.load(x, y); err != nil {
		return nil, err
	}
	r.m.routesBuilt.Inc()
	if x.Equal(y) {
		return Path{}, nil
	}
	aL, aR := r.anchors(r.sc.xd, r.sc.yd)
	p := buildUndirectedPath(y, aL, aR)
	if r.m.routeNs != nil {
		r.m.routeNs.Observe(float64(time.Since(start)))
	}
	return p, nil
}

func (r *Router) load(x, y word.Word) error {
	if err := validatePair(x, y); err != nil {
		return err
	}
	if x.Len() != r.k {
		return wrongLenError(r.k, x.Len())
	}
	r.sc.loadDigits(x, y)
	return nil
}

func wrongLenError(want, got int) error {
	return fmt.Errorf("core: router built for length %d, got %d", want, got)
}
