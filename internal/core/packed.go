package core

import (
	"math/bits"

	"repro/internal/word"
)

// Bit-packed kernels (tier T2 of the kernel ladder, see kernels.go).
//
// For d ≤ 4 a word's digits pack into machine words (word.AppendPacked)
// and Theorem 2 reduces to run arithmetic on shift-aligned agreement
// masks. Write c for the alignment shift (y-position = x-position + c,
// 1-based, c ∈ [-(k-1), k-1]) and L_c for the longest agreement run at
// shift c. A matching pair (i, j, θ) with j = i + c - θ + 1 … after
// minimization over each shift only the longest run matters, and
//
//	bestL = min(k, min_c 2k - 2L_c - c)
//	bestR = min(k, min_c 2k - 2L_c + c)
//
// reproduces bestLWith/bestRWith exactly — including the argmin anchors:
// the quadratic sweep's row-major tie-break (i ascending, then j) maps
// to "first longest run of the qualifying shift, shifts compared by
// their candidate (s, t)", with the trivial pairs (1,k) / (k,1), θ = 0
// as sentinels when the minimum saturates at k. The equivalence is
// pinned by TestPackedAnchorsMatchQuadratic and the fuzz target.
//
// Two evaluation depths:
//
//   - distance only: a run that could improve the running minimum is
//     longer than half its window (both minima start at k, the trivial
//     bound), hence spans the window's center digit — so the longest
//     relevant run comes from two trailing/leading-zero counts around
//     the center, branch-free, no loop (packedDistance1/N).
//   - full anchors: ties at the saturated value k involve runs of
//     exactly half the window, which need not span the center, so the
//     anchor kernel computes every shift's exact longest run with the
//     m &= m<<b reduction (packedAnchors1). Exact anchors are kept to
//     the single-word regime (k·b ≤ 64); beyond it route construction
//     stays on the scratch kernels.

// maxPackedBits bounds the packed operand size the bit tier accepts
// for distance evaluation; beyond it (k > 1024 at d=2, k > 512 at
// d=3/4) the scratch kernels take over.
const maxPackedBits = 1024

// packedSingleWord reports whether DG(d,k) operands fit one uint64 —
// the regime with the full packed kernel set (distance, anchors,
// routes, directed overlap).
func packedSingleWord(d, k int) bool {
	b := word.PackedBits(d)
	return b != 0 && k*b <= 64
}

// packedEligible reports whether the packed tier evaluates distances
// for DG(d,k) at all (single- or multi-word).
func packedEligible(d, k int) bool {
	b := word.PackedBits(d)
	return b != 0 && k*b <= maxPackedBits
}

// packedScratch holds the packed operand and bookkeeping buffers of
// one Kernels instance. Zero value ready; buffers grow on first use.
type packedScratch struct {
	x, y []uint64
	lens []int16 // per-shift longest run, indexed c+k-1
}

// load packs both operands, reusing the scratch vectors.
func (ps *packedScratch) load(x, y word.Word) {
	ps.x = x.AppendPacked(ps.x[:0])
	ps.y = y.AppendPacked(ps.y[:0])
}

// packedAgree1 returns the filled agreement mask of two packed
// single-word operands: every agreeing digit contributes b set bits,
// so runs of agreeing digits are runs of set bits and all run
// arithmetic works in bit space with stride b. The caller masks the
// result to the alignment window.
func packedAgree1(x, y uint64, b int) uint64 {
	v := x ^ y
	if b == 1 {
		return ^v
	}
	t := ^(v | v>>1) & 0x5555555555555555
	return t | t<<1
}

// runThrough1 returns the length (in digits) of the agreement run
// containing the digit whose low bit is at position bit, 0 if that
// digit disagrees. Branch-free: the mask is filled, so the two scans
// count whole digits.
func runThrough1(g uint64, bit, b int) int {
	up := bits.TrailingZeros64(^(g >> uint(bit)))
	dn := bits.LeadingZeros64(^(g << uint(64-bit)))
	return (up + dn) / b
}

// packedDistance1 evaluates Theorem 2's two minima on single-word
// packed operands. Every shift is scanned, but only via the center
// digit of its window: a run short of half the window cannot beat the
// running minima (both start at the trivial bound k), and a longer
// run necessarily spans the center, where runThrough1 measures it
// exactly. Underestimates for non-qualifying runs only produce values
// that are ≥ k and therefore harmless. Returns the unclamped minima;
// the distance is min(k, dL, dR).
func packedDistance1(x, y uint64, k, b int) (dL, dR int) {
	kb := uint(k * b)
	full := ^uint64(0)
	if kb < 64 {
		full = uint64(1)<<kb - 1
	}
	dL, dR = k, k
	{
		g := packedAgree1(x, y, b) & full
		n := runThrough1(g, (k>>1)*b, b)
		if v := 2 * (k - n); v < dL {
			dL = v
			dR = v
		}
	}
	digMask := uint64(1)<<uint(b) - 1
	low := uint64(0)
	for a := 1; a <= k-1; a++ {
		ab := uint(a * b)
		low = low<<uint(b) | digMask
		w := k - a
		gp := packedAgree1(x, y>>ab, b) & (full >> ab)
		gm := packedAgree1(x, y<<ab, b) & full &^ low
		np := runThrough1(gp, (w>>1)*b, b)
		nm := runThrough1(gm, (a+w>>1)*b, b)
		if v := 2*(k-np) - a; v < dL {
			dL = v
		}
		if v := 2*(k-np) + a; v < dR {
			dR = v
		}
		if v := 2*(k-nm) + a; v < dL {
			dL = v
		}
		if v := 2*(k-nm) - a; v < dR {
			dR = v
		}
	}
	return dL, dR
}

// packedAnchors1 computes the exact Theorem 2 anchors on single-word
// packed operands, byte-identical to anchorsQuadratic. Pass 1 records
// every shift's exact longest run (the m &= m<<b reduction, its +c
// and -c dependency chains interleaved); pass 2 revisits only the
// qualifying shifts and resolves the row-major tie-break: the first
// longest run of each qualifying shift yields candidate (s, t, θ),
// the lexicographic minimum by (s, then t) wins, and the trivial pair
// competes as a sentinel when the minimum saturates at k.
func packedAnchors1(x, y uint64, k, b int, lens []int16) (aL, aR anchor) {
	kb := uint(k * b)
	full := ^uint64(0)
	if kb < 64 {
		full = uint64(1)<<kb - 1
	}
	dL, dR := k, k
	{
		g := packedAgree1(x, y, b) & full
		n := 0
		for g != 0 {
			g &= g << uint(b)
			n++
		}
		lens[k-1] = int16(n)
		if n > 0 {
			if v := 2 * (k - n); v < dL {
				dL = v
				dR = v
			}
		}
	}
	digMask := uint64(1)<<uint(b) - 1
	low := uint64(0)
	for a := 1; a <= k-1; a++ {
		ab := uint(a * b)
		low = low<<uint(b) | digMask
		gp := packedAgree1(x, y>>ab, b) & (full >> ab)
		gm := packedAgree1(x, y<<ab, b) & full &^ low
		np, nm := 0, 0
		for gp != 0 && gm != 0 {
			gp &= gp << uint(b)
			gm &= gm << uint(b)
			np++
			nm++
		}
		for gp != 0 {
			gp &= gp << uint(b)
			np++
		}
		for gm != 0 {
			gm &= gm << uint(b)
			nm++
		}
		lens[a+k-1] = int16(np)
		lens[k-1-a] = int16(nm)
		if np > 0 {
			if v := 2*(k-np) - a; v < dL {
				dL = v
			}
			if v := 2*(k-np) + a; v < dR {
				dR = v
			}
		}
		if nm > 0 {
			if v := 2*(k-nm) + a; v < dL {
				dL = v
			}
			if v := 2*(k-nm) - a; v < dR {
				dR = v
			}
		}
	}
	const inf = 1 << 30
	aL = anchor{s: inf, t: inf, dist: inf}
	aR = anchor{s: inf, t: inf, dist: inf}
	if dL == k {
		aL = anchor{s: 1, t: k, theta: 0, dist: k}
	}
	if dR == k {
		aR = anchor{s: k, t: 1, theta: 0, dist: k}
	}
	for c := -(k - 1); c <= k-1; c++ {
		n := int(lens[c+k-1])
		if n == 0 {
			continue
		}
		okL := 2*(k-n)-c == dL
		okR := 2*(k-n)+c == dR
		if !okL && !okR {
			continue
		}
		var g uint64
		if c >= 0 {
			cb := uint(c * b)
			g = packedAgree1(x, y>>cb, b) & (full >> cb)
		} else {
			cb := uint(-c * b)
			g = packedAgree1(x, y<<cb, b) & full &^ (uint64(1)<<cb - 1)
		}
		r := g
		for i := 1; i < n; i++ {
			r &= r << uint(b)
		}
		e := bits.TrailingZeros64(r) / b // 0-based end digit of first longest run
		a0 := e - n + 1                  // 0-based start digit
		if okL {
			cand := anchor{s: a0 + 1, t: e + 1 + c, theta: n, dist: dL}
			if cand.s < aL.s || (cand.s == aL.s && cand.t < aL.t) {
				aL = cand
			}
		}
		if okR {
			cand := anchor{s: e + 1, t: a0 + 1 + c, theta: n, dist: dR}
			if cand.s < aR.s || (cand.s == aR.s && cand.t < aR.t) {
				aR = cand
			}
		}
	}
	return aL, aR
}

// packedOverlap1 is Property 1's suffix/prefix overlap on single-word
// packed operands: the largest s < k with suffix_s(x) = prefix_s(y).
// The overlap value is unique, so this agrees with the Morris–Pratt
// scan by definition. Callers handle x = y (overlap k) beforehand.
func packedOverlap1(x, y uint64, k, b int) int {
	for s := k - 1; s >= 1; s-- {
		m := uint64(1)<<uint(s*b) - 1
		if x>>uint((k-s)*b) == y&m {
			return s
		}
	}
	return 0
}

// shiftView is one alignment of the multi-word distance scan: the
// agreement between x and y shifted by sbits (toward lower positions
// when plus, higher when minus), windowed to [loBit, hiBit).
type shiftView struct {
	x, y         []uint64
	b            int
	sbits        int
	plus         bool
	loBit, hiBit int
}

// agreeWord materializes word i of the view's filled agreement mask.
func (sv *shiftView) agreeWord(i int) uint64 {
	base := i << 6
	if base >= sv.hiBit || base+64 <= sv.loBit {
		return 0
	}
	var yw uint64
	off, sh := sv.sbits>>6, uint(sv.sbits&63)
	if sv.plus {
		j := i + off
		if j < len(sv.y) {
			yw = sv.y[j] >> sh
			if sh != 0 && j+1 < len(sv.y) {
				yw |= sv.y[j+1] << (64 - sh)
			}
		}
	} else {
		j := i - off
		if j >= 0 {
			yw = sv.y[j] << sh
		}
		if sh != 0 && j-1 >= 0 {
			yw |= sv.y[j-1] >> (64 - sh)
		}
	}
	g := packedAgree1(sv.x[i], yw, sv.b)
	if lo := sv.loBit - base; lo > 0 {
		g &= ^uint64(0) << uint(lo)
	}
	if hi := sv.hiBit - base; hi < 64 {
		g &= uint64(1)<<uint(hi) - 1
	}
	return g
}

// runThrough returns the digit length of the agreement run containing
// the digit at absolute bit position bit, materializing only the
// words the run actually touches (typically one).
func (sv *shiftView) runThrough(bit int) int {
	wi, wb := bit>>6, uint(bit&63)
	g := sv.agreeWord(wi)
	up := bits.TrailingZeros64(^(g >> wb))
	if int(wb)+up == 64 {
		for j := wi + 1; (j << 6) < sv.hiBit; j++ {
			t := bits.TrailingZeros64(^sv.agreeWord(j))
			up += t
			if t < 64 {
				break
			}
		}
	}
	dn := 0
	if wb > 0 {
		dn = bits.LeadingZeros64(^(g << (64 - wb)))
	}
	if dn == int(wb) && bit > int(wb) {
		for j := wi - 1; j >= 0; j-- {
			t := bits.LeadingZeros64(^sv.agreeWord(j))
			dn += t
			if t < 64 {
				break
			}
		}
	}
	return (up + dn) / sv.b
}

// packedDistanceN evaluates Theorem 2's two minima on multi-word
// packed operands with the same center-digit argument as
// packedDistance1; each shift materializes only the agreement words
// around its window center. Returns the unclamped minima.
func (ps *packedScratch) packedDistanceN(k, b int) (dL, dR int) {
	dL, dR = k, k
	sv := shiftView{x: ps.x, y: ps.y, b: b}
	{
		sv.sbits, sv.plus, sv.loBit, sv.hiBit = 0, true, 0, k*b
		n := sv.runThrough((k >> 1) * b)
		if v := 2 * (k - n); v < dL {
			dL = v
			dR = v
		}
	}
	for a := 1; a <= k-1; a++ {
		w := k - a
		sv.sbits, sv.plus, sv.loBit, sv.hiBit = a*b, true, 0, w*b
		np := sv.runThrough((w >> 1) * b)
		sv.plus, sv.loBit, sv.hiBit = false, a*b, k*b
		nm := sv.runThrough((a + w>>1) * b)
		if v := 2*(k-np) - a; v < dL {
			dL = v
		}
		if v := 2*(k-np) + a; v < dR {
			dR = v
		}
		if v := 2*(k-nm) + a; v < dL {
			dL = v
		}
		if v := 2*(k-nm) - a; v < dR {
			dR = v
		}
	}
	return dL, dR
}
