package core

import (
	"math/rand"
	"testing"

	"repro/internal/obs"
	"repro/internal/word"
)

func benchPairs(k, n int) [][2]word.Word {
	rng := rand.New(rand.NewSource(17))
	out := make([][2]word.Word, n)
	for i := range out {
		out[i] = [2]word.Word{word.Random(2, k, rng), word.Random(2, k, rng)}
	}
	return out
}

// BenchmarkRoute is the §4 constant-factor guard: the observability
// acceptance bar is that BenchmarkRouteInstrumented stays within 5%
// of this disabled baseline (run both with -benchmem and compare).
func BenchmarkRoute(b *testing.B) {
	const k = 64
	r := NewRouter(k)
	pairs := benchPairs(k, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		if _, err := r.Route(p[0], p[1]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouteInstrumented is BenchmarkRoute with a live registry.
func BenchmarkRouteInstrumented(b *testing.B) {
	const k = 64
	r := NewRouter(k)
	r.SetObserver(obs.NewRegistry())
	pairs := benchPairs(k, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		if _, err := r.Route(p[0], p[1]); err != nil {
			b.Fatal(err)
		}
	}
}
