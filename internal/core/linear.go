package core

import (
	"fmt"

	"repro/internal/suffixtree"
	"repro/internal/word"
)

// Endmarkers of Algorithm 4's strings: ⊥ and ⊤, distinct from every
// digit (digits are < 36).
const (
	markBot = 0xFE // ⊥
	markTop = 0xFF // ⊤
)

// buildS assembles S = X ⊥ Y ⊤.
//
// Faithfulness note (Section 3.3, DESIGN.md): the report's Algorithm 4
// builds two trees, over X⊥Ȳ⊤ and X̄⊥Ȳ⊤, and combines leaf minima via
// p(v)+q(v)-D(v). As transcribed, the LCP of an X-leaf and a Ȳ-leaf in
// that string matches X forward against Y backward, which is not the
// matching function l_{i,j} of definition (8) that Theorem 2 needs
// (counter-example in the tests). The reduction below is the repaired
// version with the same data structure and the same O(k) bounds, and
// needs only ONE tree:
//
// Both halves of Theorem 2 minimize over substring matches anchored at
// one start and one end. Re-anchoring at the two starts (m = j-s+1 for
// the l-part, m = i-s+1 for the r-part) turns both into forward-forward
// common substrings of X and Y, which are exactly the internal vertices
// of the compact prefix tree of S = X⊥Y⊤:
//
//	min_{i,j}(i-j-l_{i,j})   = min_v( minX(v) - maxY(v) - 2D(v) + 1 )
//	min_{i,j}(-i+j-r_{i,j})  = min_v( minY(v) - maxX(v) - 2D(v) + 1 )
//
// over internal vertices v with D(v) ≥ 1 having at least one X-leaf
// and one Y-leaf below, where minX/maxX (minY/maxY) are the smallest
// and largest 1-based X-positions (Y-positions) of leaves in v's
// subtree — the role played by the paper's p(v) and q(v). Matches with
// s = 0 never beat the trivial length-k path, which lines 5–6 of
// Algorithm 2 already handle.
func buildS(x, y []byte) []byte {
	s := make([]byte, 0, 2*len(x)+2)
	s = append(s, x...)
	s = append(s, markBot)
	s = append(s, y...)
	s = append(s, markTop)
	return s
}

// treeAnchors walks the compact prefix tree of S = X⊥Y⊤ once,
// computing the subtree position extrema and returning the minimizing
// anchors of both halves of Theorem 2. O(k) time and space; evaluated
// on pooled arena scratch (Scratch.treeAnchors), so steady-state calls
// do not allocate. treeAnchorsPointer below is the original
// pointer-tree recursion, kept as the structural oracle the tests pin
// the arena walk against anchor-for-anchor.
func treeAnchors(x, y []byte) (aL, aR anchor, err error) {
	sc := getScratch()
	aL, aR, err = sc.treeAnchors(x, y)
	putScratch(sc)
	return aL, aR, err
}

// treeAnchorsPointer is the recursive reference implementation over
// the pointer suffix tree, allocating one tree per call.
func treeAnchorsPointer(x, y []byte) (aL, aR anchor, err error) {
	k := len(x)
	tree, err := suffixtree.Build(buildS(x, y))
	if err != nil {
		return anchor{}, anchor{}, fmt.Errorf("core: building prefix tree: %w", err)
	}
	const inf = 1 << 30
	aL = anchor{dist: inf}
	aR = anchor{dist: inf}

	type extrema struct {
		minX, maxX, minY, maxY int // 1-based positions; minima inf / maxima 0 when absent
	}
	var visit func(n *suffixtree.Node) extrema
	visit = func(n *suffixtree.Node) extrema {
		if n.IsLeaf() {
			e := extrema{minX: inf, minY: inf}
			pos := n.LeafPos // 0-based position in S
			switch {
			case pos < k: // inside X
				e.minX, e.maxX = pos+1, pos+1
			case pos >= k+1 && pos < 2*k+1: // inside Y
				e.minY, e.maxY = pos-k, pos-k
			}
			return e
		}
		e := extrema{minX: inf, minY: inf}
		// Deterministic traversal: tie-breaks in the argmin below must
		// not depend on map iteration order.
		for _, c := range suffixtree.SortedChildren(n) {
			ce := visit(c)
			if ce.minX < e.minX {
				e.minX = ce.minX
			}
			if ce.maxX > e.maxX {
				e.maxX = ce.maxX
			}
			if ce.minY < e.minY {
				e.minY = ce.minY
			}
			if ce.maxY > e.maxY {
				e.maxY = ce.maxY
			}
		}
		if n.Depth >= 1 && e.minX < inf && e.maxY > 0 {
			// l-part candidate: i = minX, j = maxY + D - 1, θ = D.
			d := 2*k - 1 + e.minX - e.maxY - 2*n.Depth + 1
			if d < aL.dist {
				aL = anchor{s: e.minX, t: e.maxY + n.Depth - 1, theta: n.Depth, dist: d}
			}
			// r-part candidate: i = maxX + D - 1, j = minY, θ = D.
			d = 2*k - 1 + e.minY - e.maxX - 2*n.Depth + 1
			if d < aR.dist {
				aR = anchor{s: e.maxX + n.Depth - 1, t: e.minY, theta: n.Depth, dist: d}
			}
		}
		return e
	}
	visit(tree.Root())
	if aL.dist > k {
		aL = anchor{dist: k} // trivial-path sentinel (line 5)
	}
	if aR.dist > k {
		aR = anchor{dist: k}
	}
	return aL, aR, nil
}

// UndirectedDistanceLinear evaluates Theorem 2's distance in O(k) time
// via the compact prefix tree — the distance computation inside
// Algorithm 4.
func UndirectedDistanceLinear(x, y word.Word) (int, error) {
	sc := getScratch()
	d, err := sc.UndirectedDistanceLinear(x, y)
	putScratch(sc)
	return d, err
}

// RouteUndirectedLinear is Algorithm 4: a shortest routing path from X
// to Y in the bi-directional de Bruijn network in O(k) time and space,
// using Weiner's compact prefix tree in place of the O(k²)
// failure-function sweep of Algorithm 2. The path-construction step
// (lines 5–9) is shared with Algorithm 2.
func RouteUndirectedLinear(x, y word.Word) (Path, error) {
	sc := getScratch()
	p, err := sc.RouteUndirectedLinear(x, y)
	putScratch(sc)
	return p, err
}
