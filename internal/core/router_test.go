package core

import (
	"math/rand"
	"testing"

	"repro/internal/word"
)

func TestRouterMatchesBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	for _, k := range []int{1, 2, 5, 9, 16} {
		r := NewRouter(k)
		for iter := 0; iter < 200; iter++ {
			d := 2 + rng.Intn(3)
			x, y := word.Random(d, k, rng), word.Random(d, k, rng)
			wantD, err := UndirectedDistance(x, y)
			if err != nil {
				t.Fatal(err)
			}
			gotD, err := r.Distance(x, y)
			if err != nil {
				t.Fatal(err)
			}
			if gotD != wantD {
				t.Fatalf("k=%d: Router.Distance(%v,%v) = %d, want %d", k, x, y, gotD, wantD)
			}
			p, err := r.Route(x, y)
			if err != nil {
				t.Fatal(err)
			}
			if p.Len() != wantD {
				t.Fatalf("k=%d: route length %d, want %d", k, p.Len(), wantD)
			}
			end, err := p.Apply(x, FirstDigit)
			if err != nil {
				t.Fatal(err)
			}
			if !end.Equal(y) {
				t.Fatalf("k=%d: route ends at %v, want %v", k, end, y)
			}
		}
	}
}

func TestRouterReuseIsClean(t *testing.T) {
	// Back-to-back queries must not leak state between each other:
	// interleave pairs and compare against fresh computations.
	r := NewRouter(8)
	rng := rand.New(rand.NewSource(142))
	pairs := make([][2]word.Word, 30)
	for i := range pairs {
		pairs[i] = [2]word.Word{word.Random(2, 8, rng), word.Random(2, 8, rng)}
	}
	for pass := 0; pass < 3; pass++ {
		for _, pr := range pairs {
			want, err := UndirectedDistance(pr[0], pr[1])
			if err != nil {
				t.Fatal(err)
			}
			got, err := r.Distance(pr[0], pr[1])
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("pass %d: %v→%v = %d, want %d", pass, pr[0], pr[1], got, want)
			}
		}
	}
}

func TestRouterValidates(t *testing.T) {
	r := NewRouter(4)
	if _, err := r.Distance(word.MustParse(2, "01"), word.MustParse(2, "01")); err == nil {
		t.Error("accepted wrong length")
	}
	if _, err := r.Route(word.MustParse(2, "0101"), word.MustParse(3, "0101")); err == nil {
		t.Error("accepted mixed bases")
	}
	if _, err := r.Route(word.Word{}, word.MustParse(2, "0101")); err == nil {
		t.Error("accepted zero value")
	}
	p, err := r.Route(word.MustParse(2, "0101"), word.MustParse(2, "0101"))
	if err != nil || p.Len() != 0 {
		t.Errorf("identity route = %v, %v", p, err)
	}
}

func TestRouterDistanceAllocFree(t *testing.T) {
	r := NewRouter(16)
	rng := rand.New(rand.NewSource(143))
	x, y := word.Random(2, 16, rng), word.Random(2, 16, rng)
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := r.Distance(x, y); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("Router.Distance allocates %v per run, want 0", allocs)
	}
}
