package core

import (
	"fmt"
	"sync"

	"repro/internal/word"
)

// Rank-indexed tables (tier T1 of the kernel ladder): when d^k is
// small enough that every (src, dst) pair fits a memory budget, all
// answers precompute into flat arrays indexed by vertex rank and a
// query costs two Rank evaluations plus array reads. This generalizes
// the per-site shape of internal/routetable into the full pair matrix
// with both orientations, exact distances, and enough anchor state to
// reconstruct the canonical Algorithm 2 path — so the tier is
// byte-identical to the kernels it caches, not an approximation.
//
// Tables are immutable once built and shared process-wide: the store
// is keyed by (d,k), a build runs once (asynchronously by default —
// queries fall through to the packed/scratch tiers meanwhile, which
// produce identical answers), and every Kernels whose budget admits
// the size uses the same table.

// tableEntryBytes is the storage per (src, dst) pair: undirected and
// directed distance, next hop, path side, and the winning anchor's
// (s, t, θ) — all ≤ k ≤ 255 at any table-eligible size.
const tableEntryBytes = 7

// tableStoreCap bounds the total bytes of all tables in the process,
// whatever the per-engine budgets say. When a new (d,k) would
// overflow it, completed tables are evicted least-recently-used
// first; a table too large to ever fit stays on the lower tiers. A
// variable (not a const) so the eviction tests can shrink it.
var tableStoreCap = int64(64 << 20)

// Path-side encoding of rankTable.uside.
const (
	sideL       = 0 // line 8, anchor from the l-part
	sideR       = 1 // line 9, anchor from the r-part
	sideTrivial = 2 // line 6, the trivial k-hop directed path
)

// tableSize returns the byte size of a DG(d,k) pair table and whether
// it is representable at all (d^k small enough to square within
// range; distances, anchors and ranks all fit their encodings).
func tableSize(d, k int) (int64, bool) {
	if k > 255 {
		return 0, false
	}
	n, err := word.Count(d, k)
	if err != nil || n > 1<<20 {
		return 0, false
	}
	return int64(n) * int64(n) * tableEntryBytes, true
}

// rankTable is one (d,k)'s precomputed pair matrix.
type rankTable struct {
	d, k  int
	n     int
	udist []uint8 // undirected distance
	ddist []uint8 // directed distance
	uhop  []uint8 // packed first hop of the canonical undirected path
	uside []uint8 // which Algorithm 2 line builds the path
	as    []uint8 // winning anchor s (1-based; unused for sideTrivial)
	at    []uint8 // winning anchor t
	ath   []uint8 // winning anchor θ
}

func (t *rankTable) index(x, y word.Word) int {
	return int(x.MustRank())*t.n + int(y.MustRank())
}

func packHop(h Hop) uint8 {
	v := uint8(h.Type) | h.Digit<<2
	if h.Wildcard {
		v |= 2
	}
	return v
}

func unpackHop(v uint8) Hop {
	return Hop{Type: HopType(v & 1), Digit: v >> 2, Wildcard: v&2 != 0}
}

// nextHop returns the stored first hop of the canonical path.
func (t *rankTable) nextHop(x, y word.Word) Hop {
	return unpackHop(t.uhop[t.index(x, y)])
}

// appendRoute reconstructs the canonical Algorithm 2 path from the
// stored side and anchor, allocating exactly once when p is nil.
func (t *rankTable) appendRoute(p Path, x, y word.Word) Path {
	i := t.index(x, y)
	if p == nil {
		p = make(Path, 0, int(t.udist[i]))
	}
	switch t.uside[i] {
	case sideTrivial:
		for j := 0; j < t.k; j++ {
			p = append(p, L(y.Digit(j)))
		}
	case sideL:
		p = appendLine8(p, y, anchor{s: int(t.as[i]), t: int(t.at[i]), theta: int(t.ath[i])})
	default:
		p = appendLine9(p, y, anchor{s: int(t.as[i]), t: int(t.at[i]), theta: int(t.ath[i])})
	}
	return p
}

// buildRankTable computes the full pair matrix with the canonical
// kernels (packed where the alphabet packs, scratch otherwise — the
// table must read identically whoever builds it, so the builder's
// config is fixed).
func buildRankTable(d, k int) (*rankTable, error) {
	n, err := word.Count(d, k)
	if err != nil {
		return nil, fmt.Errorf("core: table build: %w", err)
	}
	words := make([]word.Word, 0, n)
	if _, err := word.ForEach(d, k, func(w word.Word) bool {
		words = append(words, w)
		return true
	}); err != nil {
		return nil, fmt.Errorf("core: table build: %w", err)
	}
	t := &rankTable{
		d: d, k: k, n: n,
		udist: make([]uint8, n*n),
		ddist: make([]uint8, n*n),
		uhop:  make([]uint8, n*n),
		uside: make([]uint8, n*n),
		as:    make([]uint8, n*n),
		at:    make([]uint8, n*n),
		ath:   make([]uint8, n*n),
	}
	kn := NewKernels(KernelConfig{TableBudget: -1})
	var path Path
	for i, x := range words {
		for j, y := range words {
			if i == j {
				continue
			}
			idx := i*n + j
			dd, err := kn.DirectedDistance(x, y)
			if err != nil {
				return nil, fmt.Errorf("core: table build %v->%v: %w", x, y, err)
			}
			t.ddist[idx] = uint8(dd)
			aL, aR, err := kn.canonicalAnchors(x, y)
			if err != nil {
				return nil, fmt.Errorf("core: table build %v->%v: %w", x, y, err)
			}
			switch {
			case aL.dist >= k && aR.dist >= k:
				t.uside[idx] = sideTrivial
			case aL.dist <= aR.dist:
				t.uside[idx] = sideL
				t.as[idx], t.at[idx], t.ath[idx] = uint8(aL.s), uint8(aL.t), uint8(aL.theta)
			default:
				t.uside[idx] = sideR
				t.as[idx], t.at[idx], t.ath[idx] = uint8(aR.s), uint8(aR.t), uint8(aR.theta)
			}
			path = appendUndirectedPath(path[:0], y, aL, aR)
			if len(path) == 0 {
				return nil, fmt.Errorf("core: table build %v->%v: empty path", x, y)
			}
			t.udist[idx] = uint8(len(path))
			t.uhop[idx] = packHop(path[0])
		}
	}
	return t, nil
}

// tableEntry is one (d,k) slot of the shared store: done closes when
// the build finishes; t stays nil if it failed. size, lastUse, and
// built are guarded by the store mutex; t is published by the close
// of done.
type tableEntry struct {
	done    chan struct{}
	t       *rankTable
	size    int64
	lastUse int64
	built   bool
}

type tableKey struct{ d, k int }

var tableStore = struct {
	sync.Mutex
	m     map[tableKey]*tableEntry
	bytes int64
	clock int64
}{m: map[tableKey]*tableEntry{}}

// evictTablesLocked frees space for need more bytes by removing
// completed entries in least-recently-used order. In-flight builds
// are never evicted (their goroutine still owns the slot). Reports
// whether the store now has room; callers hold the store mutex.
func evictTablesLocked(need int64) bool {
	for tableStore.bytes+need > tableStoreCap {
		var victimKey tableKey
		var victim *tableEntry
		for key, e := range tableStore.m {
			if !e.built {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victim, victimKey = e, key
			}
		}
		if victim == nil {
			return false
		}
		delete(tableStore.m, victimKey)
		tableStore.bytes -= victim.size
	}
	return true
}

// getTable returns the shared DG(d,k) table, starting a build if none
// exists and the global cap (after LRU eviction of idle tables)
// admits it. The second result reports a build still in flight (the
// caller should not memoize its fallback). With wait set, a pending
// build is waited for instead.
func getTable(d, k int, size int64, wait bool) (*rankTable, bool) {
	key := tableKey{d, k}
	tableStore.Lock()
	e := tableStore.m[key]
	if e == nil {
		if size > tableStoreCap || !evictTablesLocked(size) {
			tableStore.Unlock()
			return nil, false
		}
		tableStore.clock++
		e = &tableEntry{done: make(chan struct{}), size: size, lastUse: tableStore.clock}
		tableStore.m[key] = e
		tableStore.bytes += size
		tableStore.Unlock()
		build := func() {
			t, err := buildRankTable(d, k)
			tableStore.Lock()
			if err == nil {
				e.t = t
			} else {
				// A failed build keeps its slot as a zero-byte
				// negative cache so the size isn't charged twice.
				tableStore.bytes -= size
				e.size = 0
			}
			e.built = true
			tableStore.Unlock()
			close(e.done)
		}
		if wait {
			build()
			return e.t, false
		}
		go build()
		return nil, true
	}
	tableStore.clock++
	e.lastUse = tableStore.clock
	tableStore.Unlock()
	select {
	case <-e.done:
		return e.t, false
	default:
	}
	if wait {
		<-e.done
		return e.t, false
	}
	return nil, true
}
