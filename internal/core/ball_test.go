package core

import (
	"math"
	"testing"

	"repro/internal/word"
)

func TestBallSizesDirectedLowerBound(t *testing.T) {
	// |ball(X,i)| ≥ d^i always (the formula's value), with equality
	// failing somewhere for small d.
	for _, dk := range [][2]int{{2, 3}, {2, 5}, {3, 3}} {
		d, k := dk[0], dk[1]
		anyExcess := false
		if _, err := word.ForEach(d, k, func(x word.Word) bool {
			sizes, err := BallSizesDirected(x)
			if err != nil {
				t.Fatal(err)
			}
			pow := 1
			for i := 0; i <= k; i++ {
				if sizes[i] < pow {
					t.Fatalf("ball(%v,%d) = %d below d^i = %d", x, i, sizes[i], pow)
				}
				if sizes[i] > pow {
					anyExcess = true
				}
				if i < k {
					pow *= d
				}
			}
			if sizes[k] != pow {
				t.Fatalf("full ball of %v = %d, want N = %d", x, sizes[k], pow)
			}
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if !anyExcess {
			t.Errorf("DG(%d,%d): no ball ever exceeded d^i; eq (5) would be exact", d, k)
		}
	}
}

func TestBallSizesUndirectedDominateDirected(t *testing.T) {
	x := word.MustParse(2, "01101")
	dir, err := BallSizesDirected(x)
	if err != nil {
		t.Fatal(err)
	}
	und, err := BallSizesUndirected(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dir {
		if und[i] < dir[i] {
			t.Errorf("undirected ball(%d) = %d below directed %d", i, und[i], dir[i])
		}
	}
}

func TestMeanBallSizesExplainEq5Gap(t *testing.T) {
	// The measured mean ball excess accounts exactly for the formula
	// bias: δ_formula − δ_exact = Σ_i (meanBall[i] − d^i) / d^k... the
	// division by d^k is already folded into meanBall's normalization
	// per source, so the identity is Σ_{i<k}(meanBall[i] − d^i)/d^k
	// with meanBall a per-source mean: rescale accordingly.
	d, k := 2, 5
	mean, err := MeanBallSizesDirected(d, k)
	if err != nil {
		t.Fatal(err)
	}
	n := math.Pow(float64(d), float64(k))
	var excess float64
	pow := 1.0
	for i := 0; i < k; i++ {
		excess += (mean[i] - pow) / n
		pow *= float64(d)
	}
	formula := DirectedMeanFormula(d, k)
	exact, err := DirectedMeanExact(d, k)
	if err != nil {
		t.Fatal(err)
	}
	gap := formula - exact.Mean
	if math.Abs(gap-excess) > 1e-9 {
		t.Errorf("gap %v != ball excess %v", gap, excess)
	}
}

func TestBallSizesValidation(t *testing.T) {
	if _, err := BallSizesDirected(word.Word{}); err == nil {
		t.Error("accepted zero-value word")
	}
	if _, err := MeanBallSizesDirected(2, 13); err == nil {
		t.Error("accepted oversized graph")
	}
	if _, err := MeanBallSizesDirected(2, 0); err == nil {
		t.Error("accepted k=0")
	}
}
