package core

import (
	"fmt"

	"repro/internal/word"
)

// Ball growth analysis. Equation (5)'s derivation implicitly assumes
// the directed ball |{Y : D(X,Y) ≤ i}| equals d^i exactly — the
// number of words whose (k-i)-prefix matches X's (k-i)-suffix. The
// true ball also contains words reachable through *longer* overlaps
// that do not extend (X = 01 reaches Y = 01 at distance 0 although
// their length-1 overlap fails), so it can only be larger. These
// functions measure the truth; experiment E3b tabulates it.

// BallSizesDirected returns sizes[i] = |{Y : D(X,Y) ≤ i}| for
// i = 0..k in the directed DG(d,k), by enumeration (O(N·k) time).
func BallSizesDirected(x word.Word) ([]int, error) {
	return ballSizes(x, DirectedDistance)
}

// BallSizesUndirected is the undirected counterpart (O(N·k²) time).
func BallSizesUndirected(x word.Word) ([]int, error) {
	return ballSizes(x, UndirectedDistance)
}

func ballSizes(x word.Word, dist func(a, b word.Word) (int, error)) ([]int, error) {
	if x.IsZero() {
		return nil, fmt.Errorf("core: zero-value word")
	}
	d, k := x.Base(), x.Len()
	n, err := word.Count(d, k)
	if err != nil {
		return nil, err
	}
	if n > maxExactVertices {
		return nil, fmt.Errorf("%w: N=%d", ErrTooLarge, n)
	}
	counts := make([]int, k+1)
	if _, err := word.ForEach(d, k, func(y word.Word) bool {
		dd, derr := dist(x, y)
		if derr != nil {
			err = derr
			return false
		}
		counts[dd]++
		return true
	}); err != nil {
		return nil, err
	}
	sizes := make([]int, k+1)
	cum := 0
	for i := 0; i <= k; i++ {
		cum += counts[i]
		sizes[i] = cum
	}
	return sizes, nil
}

// MeanBallSizesDirected averages BallSizesDirected over every source
// X of DG(d,k): out[i] is the mean |ball(X, i)|. The formula's
// assumption corresponds to out[i] = d^i; the measured excess is
// exactly the bias of equation (5):
//
//	δ_formula − δ_exact = Σ_{i=0}^{k-1} (out[i] − d^i) / d^k.
func MeanBallSizesDirected(d, k int) ([]float64, error) {
	n, err := word.Count(d, k)
	if err != nil {
		return nil, err
	}
	if n > maxExactVertices {
		return nil, fmt.Errorf("%w: N=%d", ErrTooLarge, n)
	}
	sums := make([]float64, k+1)
	if _, err := word.ForEach(d, k, func(x word.Word) bool {
		sizes, serr := BallSizesDirected(x)
		if serr != nil {
			err = serr
			return false
		}
		for i, s := range sizes {
			sums[i] += float64(s)
		}
		return true
	}); err != nil {
		return nil, err
	}
	for i := range sums {
		sums[i] /= float64(n)
	}
	return sums, nil
}
