package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/word"
)

func TestMultiRouteAllPathsOptimalExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	for _, dk := range [][2]int{{2, 4}, {3, 2}} {
		d, k := dk[0], dk[1]
		words := allWords(t, d, k)
		bfs := bfsAll(t, graph.Undirected, d, k)
		g, err := graph.DeBruijn(graph.Undirected, d, k)
		if err != nil {
			t.Fatal(err)
		}
		for i, x := range words {
			for j, y := range words {
				routes, err := MultiRouteUndirected(x, y, 16)
				if err != nil {
					t.Fatal(err)
				}
				if len(routes) == 0 {
					t.Fatalf("no routes for %v→%v", x, y)
				}
				seen := make(map[string]bool)
				for _, p := range routes {
					if seen[p.String()] {
						t.Fatalf("duplicate route %v", p)
					}
					seen[p.String()] = true
					checkUndirectedRoute(t, g, x, y, p, bfs[i][j], rng)
				}
			}
		}
	}
}

func TestMultiRouteIdentity(t *testing.T) {
	x := word.MustParse(2, "0101")
	routes, err := MultiRouteUndirected(x, x, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != 1 || routes[0].Len() != 0 {
		t.Errorf("routes = %v", routes)
	}
}

func TestMultiRouteLimit(t *testing.T) {
	x := word.MustParse(2, "000000")
	y := word.MustParse(2, "111111")
	routes, err := MultiRouteUndirected(x, y, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) > 2 {
		t.Errorf("limit not respected: %d routes", len(routes))
	}
	// Nonpositive limits are clamped to 1.
	routes, err = MultiRouteUndirected(x, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != 1 {
		t.Errorf("clamped limit gave %d routes", len(routes))
	}
}

func TestMultiRouteFindsDiversityWhenGraphHasIt(t *testing.T) {
	// Across all pairs of DG(2,5), whenever the graph has ≥2 shortest
	// paths the anchor enumeration should often find ≥2 shapes; check
	// it finds at least some multipath pairs in aggregate.
	words := allWords(t, 2, 5)
	multi := 0
	for _, x := range words {
		for _, y := range words {
			routes, err := MultiRouteUndirected(x, y, 8)
			if err != nil {
				t.Fatal(err)
			}
			if len(routes) >= 2 {
				multi++
			}
		}
	}
	if multi < 100 {
		t.Errorf("only %d pairs yielded multiple route shapes", multi)
	}
}

func TestMultiRouteValidates(t *testing.T) {
	if _, err := MultiRouteUndirected(word.MustParse(2, "01"), word.MustParse(3, "01"), 3); err == nil {
		t.Error("accepted mixed bases")
	}
}
