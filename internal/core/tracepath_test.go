package core

import (
	"math/rand"
	"testing"

	"repro/internal/obs"
	"repro/internal/word"
)

func TestTraceEventsStructure(t *testing.T) {
	x := word.MustParse(2, "0010")
	y := word.MustParse(2, "1011")
	p, err := RouteUndirectedLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := TraceEvents(x, p, p.Len())
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != p.Len()+2 {
		t.Fatalf("trace has %d events, want inject + %d forwards + deliver", len(tr), p.Len())
	}
	if tr[0].Cause != obs.CauseInject || tr[0].Site != x.String() || tr[0].Layer != p.Len() {
		t.Errorf("inject = %+v, want site %s layer %d", tr[0], x, p.Len())
	}
	last := tr[len(tr)-1]
	if last.Cause != obs.CauseDeliver || last.Site != y.String() || last.Hop != p.Len() {
		t.Errorf("deliver = %+v, want site %s after %d hops", last, y, p.Len())
	}
	// Each forward descends exactly one distance layer.
	for i := 1; i <= p.Len(); i++ {
		ev := tr[i]
		if ev.Cause != obs.CauseForward || ev.Hop != i {
			t.Fatalf("event %d = %+v, want forward hop %d", i, ev, i)
		}
		if want := p.Len() - i; ev.Layer != want {
			t.Errorf("forward %d layer = %d, want %d", i, ev.Layer, want)
		}
	}
	// Sites() matches the path walk — the shared-vocabulary contract.
	sites := tr.Sites()
	cur := x
	if sites[0] != cur.String() {
		t.Errorf("sites[0] = %s, want %s", sites[0], cur)
	}
	for i, h := range p {
		switch h.Type {
		case TypeL:
			cur = cur.ShiftLeft(h.Digit)
		case TypeR:
			cur = cur.ShiftRight(h.Digit)
		}
		if sites[i+1] != cur.String() {
			t.Errorf("sites[%d] = %s, want %s", i+1, sites[i+1], cur)
		}
	}
	if tr.Hops() != p.Len() {
		t.Errorf("Hops = %d, want %d", tr.Hops(), p.Len())
	}
}

func TestTraceEventsRandomAgainstApply(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 300; iter++ {
		d := 2 + rng.Intn(3)
		k := 1 + rng.Intn(8)
		x, y := word.Random(d, k, rng), word.Random(d, k, rng)
		p, err := RouteUndirectedLinear(x, y)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := TraceEvents(x, p, p.Len())
		if err != nil {
			t.Fatal(err)
		}
		if got := tr[len(tr)-1].Site; got != y.String() {
			t.Fatalf("d=%d k=%d %s->%s: trace ends at %s", d, k, x, y, got)
		}
		// Wildcard paths resolve like Concrete with a nil chooser.
		if p.HasWildcard() {
			conc, err := p.Concrete(x, nil)
			if err != nil {
				t.Fatal(err)
			}
			end, err := conc.Apply(x, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got := tr[len(tr)-1].Site; got != end.String() {
				t.Fatalf("wildcard trace ends at %s, Concrete walk at %s", got, end)
			}
		}
	}
}

func TestTraceEventsWildcardMark(t *testing.T) {
	x := word.MustParse(2, "010")
	p := Path{LStar(), L(1)}
	tr, err := TraceEvents(x, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !tr[1].Wildcard || tr[1].Digit != 0 {
		t.Errorf("wildcard forward = %+v, want Wildcard with digit 0", tr[1])
	}
	if tr[2].Wildcard {
		t.Errorf("concrete forward marked wildcard: %+v", tr[2])
	}
}

func TestTraceEventsErrors(t *testing.T) {
	x := word.MustParse(2, "010")
	if _, err := TraceEvents(x, Path{L(1)}, 2); err == nil {
		t.Error("distance/length mismatch accepted")
	}
	if _, err := TraceEvents(x, Path{L(7)}, 1); err == nil {
		t.Error("out-of-alphabet digit accepted")
	}
}
