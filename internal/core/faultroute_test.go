package core

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/word"
)

// arcSet is a test-side failure set over directed arcs.
type arcSet map[[2]int]bool

func (s arcSet) failed(u, v int) bool { return s[[2]int{u, v}] }

// sampleArcs draws f distinct directed arcs of fr's graph.
func sampleArcs(fr *FaultRouter, f int, rng *rand.Rand) arcSet {
	g := fr.Graph()
	set := arcSet{}
	for len(set) < f {
		u := rng.Intn(fr.NumVertices())
		nbrs := g.OutNeighbors(u)
		if len(nbrs) == 0 {
			continue
		}
		v := int(nbrs[rng.Intn(len(nbrs))])
		set[[2]int{u, v}] = true
	}
	return set
}

func TestFaultWalkNoFailures(t *testing.T) {
	for _, dk := range [][2]int{{2, 3}, {3, 2}, {2, 5}, {4, 2}, {3, 1}} {
		fr, err := NewFaultRouter(dk[0], dk[1])
		if err != nil {
			t.Fatalf("NewFaultRouter(%v): %v", dk, err)
		}
		n := fr.NumVertices()
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				w, err := fr.Walk(src, dst, nil)
				if err != nil {
					t.Fatalf("DG%v walk %d→%d: %v", dk, src, dst, err)
				}
				if !w.Delivered {
					t.Fatalf("DG%v walk %d→%d not delivered without failures: %s", dk, src, dst, w.Reason)
				}
				if w.Switches != 0 {
					t.Fatalf("DG%v walk %d→%d switched trees without failures", dk, src, dst)
				}
				if w.Hops > fr.HopBound() {
					t.Fatalf("DG%v walk %d→%d took %d hops, bound %d", dk, src, dst, w.Hops, fr.HopBound())
				}
			}
		}
	}
}

// The delivery guarantee: any static failure set smaller than Trees
// leaves every pair deliverable within HopBound hops, over live real
// arcs only.
func TestFaultWalkDeliversUnderFailures(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dk := range [][2]int{{2, 4}, {3, 3}, {4, 2}, {5, 2}, {4, 1}} {
		fr, err := NewFaultRouter(dk[0], dk[1])
		if err != nil {
			t.Fatal(err)
		}
		n, g := fr.NumVertices(), fr.Graph()
		for f := 0; f < fr.Trees(); f++ {
			for rep := 0; rep < 4; rep++ {
				set := sampleArcs(fr, f, rng)
				for trial := 0; trial < 40; trial++ {
					src, dst := rng.Intn(n), rng.Intn(n)
					w, err := fr.Walk(src, dst, set.failed)
					if err != nil {
						t.Fatal(err)
					}
					if !w.Delivered {
						t.Fatalf("DG%v %d→%d stranded under %d < %d failures: %s", dk, src, dst, f, fr.Trees(), w.Reason)
					}
					if w.Hops > fr.HopBound() {
						t.Fatalf("DG%v %d→%d: %d hops exceeds bound %d", dk, src, dst, w.Hops, fr.HopBound())
					}
					for i := 1; i < len(w.Verts); i++ {
						u, v := int(w.Verts[i-1]), int(w.Verts[i])
						if !g.HasEdge(u, v) {
							t.Fatalf("DG%v walk crossed non-arc %d→%d", dk, u, v)
						}
						if set.failed(u, v) {
							t.Fatalf("DG%v walk crossed failed arc %d→%d", dk, u, v)
						}
					}
				}
			}
		}
	}
}

// Failing every parent arc at the source (Trees arcs, one per tree)
// must strand it with the explicit no-live-arc reason.
func TestFaultWalkNoLiveArc(t *testing.T) {
	fr, err := NewFaultRouter(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	dst := 4
	dec, err := fr.Decomposition(dst)
	if err != nil {
		t.Fatal(err)
	}
	src := 7
	set := arcSet{}
	for tr := 0; tr < fr.Trees(); tr++ {
		set[[2]int{src, int(dec[tr][src])}] = true
	}
	w, err := fr.Walk(src, dst, set.failed)
	if err != nil {
		t.Fatal(err)
	}
	if w.Delivered || w.Reason != WalkReasonNoLiveArc {
		t.Fatalf("walk with all parent arcs failed: delivered=%v reason=%q", w.Delivered, w.Reason)
	}
	if w.Hops != 0 {
		t.Fatalf("stranded walk moved %d hops", w.Hops)
	}
}

// DetourPath must emit a concrete hop path that replays from src to
// dst through the word shifts.
func TestDetourPathApplies(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dk := range [][2]int{{2, 5}, {3, 3}} {
		d, k := dk[0], dk[1]
		fr, err := NewFaultRouter(d, k)
		if err != nil {
			t.Fatal(err)
		}
		n := fr.NumVertices()
		set := sampleArcs(fr, fr.Trees()-1, rng)
		for trial := 0; trial < 60; trial++ {
			sv, tv := rng.Intn(n), rng.Intn(n)
			src, err := word.Unrank(d, k, uint64(sv))
			if err != nil {
				t.Fatal(err)
			}
			dst, err := word.Unrank(d, k, uint64(tv))
			if err != nil {
				t.Fatal(err)
			}
			p, w, err := fr.DetourPath(src, dst, set.failed)
			if err != nil {
				t.Fatal(err)
			}
			if !w.Delivered {
				t.Fatalf("DG(%d,%d) %v→%v stranded under %d failures", d, k, src, dst, fr.Trees()-1)
			}
			if len(p) != w.Hops {
				t.Fatalf("path length %d != walk hops %d", len(p), w.Hops)
			}
			end, err := p.Apply(src, nil)
			if err != nil {
				t.Fatalf("detour path does not apply: %v", err)
			}
			if !end.Equal(dst) {
				t.Fatalf("detour path ends at %v, want %v", end, dst)
			}
		}
	}
}

func TestFaultRouterErrors(t *testing.T) {
	if _, err := NewFaultRouter(2, 64); !errors.Is(err, ErrFaultRoute) {
		t.Fatalf("huge graph accepted: %v", err)
	}
	fr, err := NewFaultRouter(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fr.Walk(-1, 0, nil); !errors.Is(err, ErrFaultRoute) {
		t.Fatalf("bad src accepted: %v", err)
	}
	if _, err := fr.Decomposition(99); !errors.Is(err, ErrFaultRoute) {
		t.Fatalf("bad root accepted: %v", err)
	}
	w8, _ := word.New(2, []byte{0, 0, 0, 0})
	w3, _ := word.New(2, []byte{0, 0, 0})
	if _, _, err := fr.DetourPath(w8, w3, nil); !errors.Is(err, ErrFaultRoute) {
		t.Fatalf("mismatched word accepted: %v", err)
	}
}

// Decompositions are deterministic per (d,k,root) — the property the
// byte-identical dbcheck verdicts and cross-process agreement rest on.
func TestDecompositionDeterministic(t *testing.T) {
	build := func() [][]int32 {
		fr, err := NewFaultRouter(3, 3)
		if err != nil {
			t.Fatal(err)
		}
		// Bypass the cache for the second build by evicting first.
		decompStore.Lock()
		decompStore.m = map[decompKey]*decompEntry{}
		decompStore.bytes = 0
		decompStore.Unlock()
		dec, err := fr.Decomposition(11)
		if err != nil {
			t.Fatal(err)
		}
		return dec
	}
	a, b := build(), build()
	for tr := range a {
		for v := range a[tr] {
			if a[tr][v] != b[tr][v] {
				t.Fatalf("decomposition diverged at tree %d vertex %d", tr, v)
			}
		}
	}
}

// The decomposition store stays under its byte budget while cycling
// through more destinations than fit.
func TestDecompositionStoreBounded(t *testing.T) {
	decompStore.Lock()
	oldCap := decompStoreCap
	decompStore.m = map[decompKey]*decompEntry{}
	decompStore.bytes = 0
	decompStore.Unlock()
	defer func() {
		decompStore.Lock()
		decompStoreCap = oldCap
		decompStore.m = map[decompKey]*decompEntry{}
		decompStore.bytes = 0
		decompStore.Unlock()
	}()

	fr, err := NewFaultRouter(2, 6) // 64 vertices, 2 trees: 512 B/root
	if err != nil {
		t.Fatal(err)
	}
	perRoot := int64(fr.Trees()) * int64(fr.NumVertices()) * 4
	decompStore.Lock()
	decompStoreCap = 3 * perRoot
	decompStore.Unlock()

	for round := 0; round < 3; round++ {
		for root := 0; root < 8; root++ {
			if _, err := fr.Decomposition(root); err != nil {
				t.Fatal(err)
			}
			decompStore.Lock()
			bytes, entries := decompStore.bytes, len(decompStore.m)
			decompStore.Unlock()
			if bytes > 3*perRoot {
				t.Fatalf("decomp store at %d bytes, cap %d", bytes, 3*perRoot)
			}
			if entries > 3 {
				t.Fatalf("decomp store holds %d entries, cap admits 3", entries)
			}
		}
	}
}

// Satellite: structure-switch routing with failures injected while
// walks are in flight (run under -race in CI). Concurrent walkers
// share one mutating failure set; every attempt must either deliver
// or drop with an explicit reason, and the conservation count must be
// exact. Mid-walk mutation voids the static delivery guarantee — a
// walk may straddle several failure sets — but never the safety
// contract: no walk may exceed the hop bound, crash, or end in a
// state that is neither delivered nor explained.
func TestFaultWalkConcurrentFailures(t *testing.T) {
	fr, err := NewFaultRouter(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	n := fr.NumVertices()
	g := fr.Graph()

	var mu sync.RWMutex
	live := arcSet{}
	failed := func(u, v int) bool {
		mu.RLock()
		defer mu.RUnlock()
		return live[[2]int{u, v}]
	}

	const walkers = 8
	const perWalker = 400
	var delivered, dropped [walkers]int
	done := make(chan struct{})

	var injWG, walkWG sync.WaitGroup
	injWG.Add(1)
	go func() { // injector: churn the failure set while walks run
		defer injWG.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			u := rng.Intn(n)
			nbrs := g.OutNeighbors(u)
			arc := [2]int{u, int(nbrs[rng.Intn(len(nbrs))])}
			mu.Lock()
			if len(live) >= fr.Trees()-1 || (len(live) > 0 && i%3 == 0) {
				for k := range live {
					delete(live, k)
					break
				}
			} else {
				live[arc] = true
			}
			mu.Unlock()
		}
	}()

	for wk := 0; wk < walkers; wk++ {
		walkWG.Add(1)
		go func(wk int) {
			defer walkWG.Done()
			rng := rand.New(rand.NewSource(int64(wk)))
			for i := 0; i < perWalker; i++ {
				src, dst := rng.Intn(n), rng.Intn(n)
				w, err := fr.Walk(src, dst, failed)
				if err != nil {
					t.Errorf("walker %d: %v", wk, err)
					return
				}
				switch {
				case w.Delivered:
					if w.Reason != "" {
						t.Errorf("delivered walk carries reason %q", w.Reason)
						return
					}
					delivered[wk]++
				case w.Reason == WalkReasonNoLiveArc || w.Reason == WalkReasonHopBudget:
					dropped[wk]++
				default:
					t.Errorf("walk neither delivered nor explained: %+v", w)
					return
				}
				if w.Hops > fr.HopBound() {
					t.Errorf("walk exceeded hop bound: %d > %d", w.Hops, fr.HopBound())
					return
				}
			}
		}(wk)
	}

	walkWG.Wait()
	close(done)
	injWG.Wait()

	if t.Failed() {
		return
	}
	sum := 0
	for wk := 0; wk < walkers; wk++ {
		sum += delivered[wk] + dropped[wk]
	}
	if sum != walkers*perWalker {
		t.Fatalf("conservation broken: delivered+dropped = %d, attempts = %d", sum, walkers*perWalker)
	}
}
