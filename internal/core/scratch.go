package core

import (
	"fmt"
	"sync"

	"repro/internal/match"
	"repro/internal/suffixtree"
	"repro/internal/word"
)

// Scratch bundles every reusable buffer the routing algorithms need —
// digit buffers, Morris–Pratt tables, the suffix-tree arena, the
// generalized-string assembly, and the tree-walk bookkeeping — so that
// repeated distance evaluation and route construction on one DG(d,k)
// perform no per-query heap allocation beyond returned paths. The zero
// value is ready to use. Not safe for concurrent use; give each
// worker its own Scratch (the verification harness does exactly that).
//
// The package-level one-shot functions (UndirectedDistance,
// RouteUndirectedLinear, NextHopUndirected, …) keep their signatures
// and route through an internal sync.Pool of these, so casual callers
// get the same near-zero allocation profile without holding state.
type Scratch struct {
	ms     match.Scratch      // failure tables + matching rows
	ts     suffixtree.Scratch // node arena for Algorithm 4's tree
	sbuf   []byte             // X⊥Y⊤ assembly
	xd, yd []byte             // digit buffers (no word.Digits copies)
	ext    []extrema          // per-node subtree extrema, arena-indexed
	frames []aframe           // iterative post-order stack
	path   Path               // hop buffer for next-hop queries
}

// NewScratch returns an empty Scratch. Buffers grow on first use and
// are retained across calls.
func NewScratch() *Scratch { return &Scratch{} }

var corePool = sync.Pool{New: func() any { return NewScratch() }}

func getScratch() *Scratch   { return corePool.Get().(*Scratch) }
func putScratch(sc *Scratch) { corePool.Put(sc) }

// extrema carries the 1-based X- and Y-position extrema of the leaves
// below one tree vertex (minima saturate high, maxima at 0 when the
// respective side is absent) — the role of the paper's p(v), q(v).
type extrema struct {
	minX, maxX, minY, maxY int
}

// aframe is one frame of the iterative post-order tree walk: the
// vertex and the next child to descend into.
type aframe struct {
	id, child int32
}

// loadDigits fills sc.xd/sc.yd with the digits of x and y without
// allocating (word.Digits copies; AppendDigits reuses the buffer).
func (sc *Scratch) loadDigits(x, y word.Word) {
	sc.xd = x.AppendDigits(sc.xd[:0])
	sc.yd = y.AppendDigits(sc.yd[:0])
}

// DirectedDistance is Property 1 (see the package-level function)
// evaluated with scratch buffers: zero allocation.
func (sc *Scratch) DirectedDistance(x, y word.Word) (int, error) {
	if err := validatePair(x, y); err != nil {
		return 0, err
	}
	sc.loadDigits(x, y)
	return x.Len() - sc.ms.Overlap(sc.xd, sc.yd), nil
}

// UndirectedDistance is Theorem 2 via the O(k²) failure-function sweep
// (Algorithm 2's distance step) with scratch buffers: zero allocation.
func (sc *Scratch) UndirectedDistance(x, y word.Word) (int, error) {
	if err := validatePair(x, y); err != nil {
		return 0, err
	}
	if x.Equal(y) {
		return 0, nil
	}
	sc.loadDigits(x, y)
	aL, aR := sc.anchorsQuadratic(sc.xd, sc.yd)
	if aR.dist < aL.dist {
		return aR.dist, nil
	}
	return aL.dist, nil
}

// UndirectedDistanceLinear is Theorem 2 via the compact prefix tree
// (Algorithm 4's distance step) with scratch buffers: zero allocation.
func (sc *Scratch) UndirectedDistanceLinear(x, y word.Word) (int, error) {
	if err := validatePair(x, y); err != nil {
		return 0, err
	}
	if x.Equal(y) {
		return 0, nil
	}
	sc.loadDigits(x, y)
	aL, aR, err := sc.treeAnchors(sc.xd, sc.yd)
	if err != nil {
		return 0, err
	}
	if aR.dist < aL.dist {
		return aR.dist, nil
	}
	return aL.dist, nil
}

// RouteUndirected is Algorithm 2 with scratch buffers; only the
// returned path is allocated (exactly sized from the anchor distance).
func (sc *Scratch) RouteUndirected(x, y word.Word) (Path, error) {
	if err := validatePair(x, y); err != nil {
		return nil, err
	}
	if x.Equal(y) {
		return Path{}, nil
	}
	sc.loadDigits(x, y)
	aL, aR := sc.anchorsQuadratic(sc.xd, sc.yd)
	return buildUndirectedPath(y, aL, aR), nil
}

// RouteUndirectedLinear is Algorithm 4 with scratch buffers; only the
// returned path is allocated.
func (sc *Scratch) RouteUndirectedLinear(x, y word.Word) (Path, error) {
	if err := validatePair(x, y); err != nil {
		return nil, err
	}
	if x.Equal(y) {
		return Path{}, nil
	}
	sc.loadDigits(x, y)
	aL, aR, err := sc.treeAnchors(sc.xd, sc.yd)
	if err != nil {
		return nil, err
	}
	return buildUndirectedPath(y, aL, aR), nil
}

// NextHopUndirected returns the first hop of an Algorithm 4 route with
// zero allocation: the path is materialized into the scratch hop
// buffer, not the heap. The returned Hop is a value; it remains valid
// after the next call.
func (sc *Scratch) NextHopUndirected(cur, dst word.Word) (Hop, bool, error) {
	if err := validatePair(cur, dst); err != nil {
		return Hop{}, false, err
	}
	if cur.Equal(dst) {
		return Hop{}, false, nil
	}
	sc.loadDigits(cur, dst)
	aL, aR, err := sc.treeAnchors(sc.xd, sc.yd)
	if err != nil {
		return Hop{}, false, err
	}
	sc.path = appendUndirectedPath(sc.path[:0], dst, aL, aR)
	if len(sc.path) == 0 {
		return Hop{}, false, fmt.Errorf("core: empty route for distinct vertices %v, %v", cur, dst)
	}
	return sc.path[0], true, nil
}

// anchorsQuadratic computes both Theorem 2 anchors with the O(k²)
// sweep, in bestLQuadratic/bestRQuadratic's exact minimization order
// (i ascending, then j ascending, strict improvement) so anchors — and
// therefore constructed paths — are byte-identical to the one-shot
// API's.
func (sc *Scratch) anchorsQuadratic(xd, yd []byte) (aL, aR anchor) {
	return bestLWith(&sc.ms, xd, yd), bestRWith(&sc.ms, xd, yd)
}

// treeAnchors is treeAnchorsPointer on the arena tree: one iterative
// post-order walk of the compact prefix tree of S = X⊥Y⊤ computing
// subtree extrema and the two minimizing anchors. Children are visited
// in increasing edge-symbol order and candidates checked at each
// internal vertex after its children, replicating the recursive walk's
// traversal — and hence its argmin tie-breaks — exactly. O(k) time,
// zero allocation once the scratch is warm.
func (sc *Scratch) treeAnchors(x, y []byte) (aL, aR anchor, err error) {
	k := len(x)
	sc.sbuf = append(sc.sbuf[:0], x...)
	sc.sbuf = append(sc.sbuf, markBot)
	sc.sbuf = append(sc.sbuf, y...)
	sc.sbuf = append(sc.sbuf, markTop)
	tree, err := sc.ts.Build(sc.sbuf)
	if err != nil {
		return anchor{}, anchor{}, fmt.Errorf("core: building prefix tree: %w", err)
	}
	nodes := tree.Nodes
	if cap(sc.ext) < len(nodes) {
		sc.ext = make([]extrema, len(nodes))
	}
	ext := sc.ext[:len(nodes)]

	const inf = 1 << 30
	aL = anchor{dist: inf}
	aR = anchor{dist: inf}

	ext[suffixtree.RootID] = extrema{minX: inf, minY: inf}
	sc.frames = append(sc.frames[:0], aframe{suffixtree.RootID, nodes[suffixtree.RootID].FirstChild})
	for len(sc.frames) > 0 {
		f := &sc.frames[len(sc.frames)-1]
		if f.child != suffixtree.NoANode {
			c := f.child
			n := &nodes[c]
			f.child = n.NextSibling
			if n.IsLeaf() {
				e := extrema{minX: inf, minY: inf}
				pos := int(n.LeafPos)
				switch {
				case pos < k: // inside X
					e.minX, e.maxX = pos+1, pos+1
				case pos >= k+1 && pos < 2*k+1: // inside Y
					e.minY, e.maxY = pos-k, pos-k
				}
				mergeExtrema(&ext[f.id], e)
				continue
			}
			ext[c] = extrema{minX: inf, minY: inf}
			sc.frames = append(sc.frames, aframe{c, n.FirstChild})
			continue
		}
		// Children exhausted: candidate check, then fold into parent.
		id := f.id
		e := ext[id]
		if depth := int(nodes[id].Depth); depth >= 1 && e.minX < inf && e.maxY > 0 {
			// l-part candidate: i = minX, j = maxY + D - 1, θ = D.
			d := 2*k - 1 + e.minX - e.maxY - 2*depth + 1
			if d < aL.dist {
				aL = anchor{s: e.minX, t: e.maxY + depth - 1, theta: depth, dist: d}
			}
			// r-part candidate: i = maxX + D - 1, j = minY, θ = D.
			d = 2*k - 1 + e.minY - e.maxX - 2*depth + 1
			if d < aR.dist {
				aR = anchor{s: e.maxX + depth - 1, t: e.minY, theta: depth, dist: d}
			}
		}
		sc.frames = sc.frames[:len(sc.frames)-1]
		if len(sc.frames) > 0 {
			mergeExtrema(&ext[sc.frames[len(sc.frames)-1].id], e)
		}
	}
	if aL.dist > k {
		aL = anchor{dist: k} // trivial-path sentinel (line 5)
	}
	if aR.dist > k {
		aR = anchor{dist: k}
	}
	return aL, aR, nil
}

func mergeExtrema(dst *extrema, e extrema) {
	if e.minX < dst.minX {
		dst.minX = e.minX
	}
	if e.maxX > dst.maxX {
		dst.maxX = e.maxX
	}
	if e.minY < dst.minY {
		dst.minY = e.minY
	}
	if e.maxY > dst.maxY {
		dst.maxY = e.maxY
	}
}
