package core

import (
	"math/rand"
	"testing"

	"repro/internal/word"
)

// TestScratchEquivalence pins every Scratch method to its one-shot
// sibling — byte-identical paths, equal distances and hops — across
// seeded pairs on every DG(d,k) with at most 4096 vertices, reusing
// ONE Scratch throughout so cross-query buffer contamination would
// surface.
func TestScratchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	sc := NewScratch()
	for d := 2; d <= 6; d++ {
		for k := 1; ; k++ {
			n, err := word.Count(d, k)
			if err != nil || n > 4096 {
				break
			}
			pairs := 40
			if n*n < pairs {
				pairs = n * n
			}
			for p := 0; p < pairs; p++ {
				x := word.Random(d, k, rng)
				y := word.Random(d, k, rng)

				if got, _ := sc.DirectedDistance(x, y); true {
					want, _ := DirectedDistance(x, y)
					if got != want {
						t.Fatalf("Scratch.DirectedDistance(%v,%v) = %d, want %d", x, y, got, want)
					}
				}
				if got, _ := sc.UndirectedDistance(x, y); true {
					want, _ := UndirectedDistance(x, y)
					if got != want {
						t.Fatalf("Scratch.UndirectedDistance(%v,%v) = %d, want %d", x, y, got, want)
					}
				}
				if got, _ := sc.UndirectedDistanceLinear(x, y); true {
					want, _ := UndirectedDistanceLinear(x, y)
					if got != want {
						t.Fatalf("Scratch.UndirectedDistanceLinear(%v,%v) = %d, want %d", x, y, got, want)
					}
				}
				gp, err := sc.RouteUndirected(x, y)
				if err != nil {
					t.Fatalf("Scratch.RouteUndirected(%v,%v): %v", x, y, err)
				}
				wp, _ := RouteUndirected(x, y)
				if gp.String() != wp.String() {
					t.Fatalf("Scratch.RouteUndirected(%v,%v) = %v, want %v", x, y, gp, wp)
				}
				gp, err = sc.RouteUndirectedLinear(x, y)
				if err != nil {
					t.Fatalf("Scratch.RouteUndirectedLinear(%v,%v): %v", x, y, err)
				}
				wp, _ = RouteUndirectedLinear(x, y)
				if gp.String() != wp.String() {
					t.Fatalf("Scratch.RouteUndirectedLinear(%v,%v) = %v, want %v", x, y, gp, wp)
				}
				gh, gok, err := sc.NextHopUndirected(x, y)
				if err != nil {
					t.Fatalf("Scratch.NextHopUndirected(%v,%v): %v", x, y, err)
				}
				wh, wok, _ := NextHopUndirected(x, y)
				if gh != wh || gok != wok {
					t.Fatalf("Scratch.NextHopUndirected(%v,%v) = (%v,%v), want (%v,%v)", x, y, gh, gok, wh, wok)
				}
			}
		}
	}
}

// TestTreeAnchorsMatchesPointerWalk pins the arena tree walk to the
// recursive pointer-tree reference anchor-for-anchor (not just
// distance-for-distance): same s, t, θ on every pair of two exhaustive
// small graphs plus larger random words. This is the determinism
// contract that keeps Algorithm 4 paths byte-identical across the
// scratch refactor.
func TestTreeAnchorsMatchesPointerWalk(t *testing.T) {
	sc := NewScratch()
	checkPair := func(xd, yd []byte) {
		t.Helper()
		gL, gR, err := sc.treeAnchors(xd, yd)
		if err != nil {
			t.Fatalf("scratch treeAnchors(%v,%v): %v", xd, yd, err)
		}
		wL, wR, err := treeAnchorsPointer(xd, yd)
		if err != nil {
			t.Fatalf("treeAnchorsPointer(%v,%v): %v", xd, yd, err)
		}
		if gL != wL || gR != wR {
			t.Fatalf("treeAnchors(%v,%v) = (%+v,%+v), pointer walk (%+v,%+v)", xd, yd, gL, gR, wL, wR)
		}
	}
	for _, g := range []struct{ d, k int }{{2, 4}, {3, 3}} {
		word.ForEach(g.d, g.k, func(x word.Word) bool {
			word.ForEach(g.d, g.k, func(y word.Word) bool {
				checkPair(x.Digits(), y.Digits())
				return true
			})
			return true
		})
	}
	rng := rand.New(rand.NewSource(92))
	for iter := 0; iter < 200; iter++ {
		d := 2 + rng.Intn(4)
		k := 1 + rng.Intn(40)
		x, y := word.Random(d, k, rng), word.Random(d, k, rng)
		checkPair(x.Digits(), y.Digits())
	}
}

// TestOneShotAllocBudgets pins the allocation budgets the PR's perf
// work establishes: distance and next-hop queries are allocation-free
// once the scratch pool is warm, and route construction allocates only
// the returned exactly-sized path.
func TestOneShotAllocBudgets(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	rng := rand.New(rand.NewSource(93))
	for _, k := range []int{8, 64} {
		x, y := word.Random(2, k, rng), word.Random(2, k, rng)
		budgets := []struct {
			name string
			max  float64
			fn   func()
		}{
			{"DirectedDistance", 0, func() { DirectedDistance(x, y) }},
			{"UndirectedDistance", 0, func() { UndirectedDistance(x, y) }},
			{"UndirectedDistanceLinear", 0, func() { UndirectedDistanceLinear(x, y) }},
			{"NextHopUndirected", 0, func() { NextHopUndirected(x, y) }},
			{"RouteUndirected", 2, func() { RouteUndirected(x, y) }},
			{"RouteUndirectedLinear", 2, func() { RouteUndirectedLinear(x, y) }},
		}
		for _, b := range budgets {
			b.fn() // warm the pool
			if allocs := testing.AllocsPerRun(100, b.fn); allocs > b.max {
				t.Errorf("k=%d: %s allocates %v per run, want ≤ %v", k, b.name, allocs, b.max)
			}
		}
	}
}

// TestRouterRouteAllocBudget pins Router.Route at one allocation per
// query (the returned path) at both benchmark word lengths.
func TestRouterRouteAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	rng := rand.New(rand.NewSource(94))
	for _, k := range []int{8, 64} {
		r := NewRouter(k)
		x, y := word.Random(2, k, rng), word.Random(2, k, rng)
		if allocs := testing.AllocsPerRun(100, func() {
			if _, err := r.Route(x, y); err != nil {
				t.Fatal(err)
			}
		}); allocs > 1 {
			t.Errorf("k=%d: Router.Route allocates %v per run, want ≤ 1", k, allocs)
		}
	}
}
