package core

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/word"
)

// TraceEvents renders a routing path as the hop-event sequence of
// package obs — the same vocabulary the network engines attach to
// Delivery.Trace — annotated with the distance-layer index of the
// Fàbrega et al. decomposition: the source sits in layer B_dist around
// the destination and every hop of an optimal path descends one layer,
// reaching B_0 at delivery. The serving stack attaches the result to
// sampled route answers, so obs.Trace.Sites() recovers the visited
// sites of a served query exactly as it does for a simulated message.
//
// dist is the number of path hops (the optimal distance); wildcard
// hops are resolved with digit 0, mirroring Path.Concrete's nil-chooser
// default, and keep their Wildcard mark on the event.
func TraceEvents(src word.Word, p Path, dist int) (obs.Trace, error) {
	if dist != p.Len() {
		return nil, fmt.Errorf("core: trace distance %d != path length %d", dist, p.Len())
	}
	out := make(obs.Trace, 0, p.Len()+2)
	out = append(out, obs.HopEvent{
		Hop:   0,
		Cause: obs.CauseInject,
		Site:  src.String(),
		Digit: -1,
		Layer: dist,
	})
	cur := src
	for i, h := range p {
		digit := h.Digit
		if h.Wildcard {
			digit = 0
		}
		if int(digit) >= cur.Base() {
			return nil, fmt.Errorf("%w: hop %d digit %d base %d", ErrBadDigit, i, digit, cur.Base())
		}
		switch h.Type {
		case TypeL:
			cur = cur.ShiftLeft(digit)
		case TypeR:
			cur = cur.ShiftRight(digit)
		default:
			return nil, fmt.Errorf("core: hop %d has invalid type %d", i, h.Type)
		}
		out = append(out, obs.HopEvent{
			Hop:      i + 1,
			Cause:    obs.CauseForward,
			Site:     cur.String(),
			Link:     h.Type.String(),
			Digit:    int(digit),
			Wildcard: h.Wildcard,
			Layer:    dist - (i + 1),
		})
	}
	out = append(out, obs.HopEvent{
		Hop:   p.Len(),
		Cause: obs.CauseDeliver,
		Site:  cur.String(),
		Digit: -1,
	})
	return out, nil
}
