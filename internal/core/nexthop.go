package core

import (
	"fmt"

	"repro/internal/word"
)

// Self-routing: Section 3's message format carries the whole routing
// path, but the distance functions also support destination-based
// forwarding, where each site derives just the next hop from (current
// site, destination) and the message header needs no path field. This
// file provides those per-hop decisions; the network simulator's
// DestinationRouting mode exercises them end to end.

// NextHopDirected returns the optimal next hop at cur toward dst in
// the uni-directional network: the left shift inserting y_{l+1}, where
// l is the current suffix/prefix overlap (Property 1). Iterating it
// reaches dst in exactly D(cur,dst) hops — each hop extends the
// overlap by one, so the distance decreases by one. The boolean is
// false when cur == dst.
func NextHopDirected(cur, dst word.Word) (Hop, bool, error) {
	if err := validatePair(cur, dst); err != nil {
		return Hop{}, false, err
	}
	if cur.Equal(dst) {
		return Hop{}, false, nil
	}
	sc := getScratch()
	sc.loadDigits(cur, dst)
	l := sc.ms.Overlap(sc.xd, sc.yd)
	putScratch(sc)
	return L(dst.Digit(l)), true, nil
}

// NextHopUndirected returns an optimal next hop at cur toward dst in
// the bi-directional network: the first hop of an Algorithm 4 route,
// recomputed locally at each site in O(k). The hop may be a wildcard
// (any neighbor of that type lies on some shortest path); resolve it
// with a policy. The boolean is false when cur == dst.
func NextHopUndirected(cur, dst word.Word) (Hop, bool, error) {
	sc := getScratch()
	h, ok, err := sc.NextHopUndirected(cur, dst)
	putScratch(sc)
	return h, ok, err
}

// SelfRoute iterates a next-hop function from src until dst is
// reached, resolving wildcards with choose (digit 0 when nil), and
// returns the walk. maxHops guards against a non-contracting next-hop
// function (programmer error in custom functions).
func SelfRoute(src, dst word.Word, next func(cur, dst word.Word) (Hop, bool, error), choose Chooser, maxHops int) ([]word.Word, error) {
	if next == nil {
		return nil, fmt.Errorf("core: nil next-hop function")
	}
	walk := []word.Word{src}
	cur := src
	for hops := 0; ; hops++ {
		h, more, err := next(cur, dst)
		if err != nil {
			return nil, err
		}
		if !more {
			return walk, nil
		}
		if hops >= maxHops {
			return nil, fmt.Errorf("core: self-routing exceeded %d hops from %v to %v", maxHops, src, dst)
		}
		if h.Wildcard {
			digit := byte(0)
			if choose != nil {
				digit = choose(hops, cur, h)
			}
			h = Hop{Type: h.Type, Digit: digit}
		}
		cur, err = Path{h}.Apply(cur, nil)
		if err != nil {
			return nil, err
		}
		walk = append(walk, cur)
	}
}
