package core

import (
	"repro/internal/match"
	"repro/internal/word"
)

// DirectedDistance implements Property 1: the distance from X to Y in
// the directed DG(d,k) is k - l, where l is the largest s such that
// the length-s suffix of X equals the length-s prefix of Y (equation
// (2)). Computed in O(k) with one Morris–Pratt scan.
func DirectedDistance(x, y word.Word) (int, error) {
	sc := getScratch()
	d, err := sc.DirectedDistance(x, y)
	putScratch(sc)
	return d, err
}

// anchor captures the minimizing tuple of one half of Theorem 2's
// distance expression, using the paper's 1-based coordinates:
// for the l-part, dist = 2k-1+s-t-theta with theta = l_{s,t}(X,Y);
// for the r-part, dist = 2k-1-s+t-theta with theta = r_{s,t}(X,Y).
type anchor struct {
	s, t, theta int
	dist        int
}

// bestLQuadratic minimizes 2k-1+i-j-l_{i,j} over all 1 ≤ i,j ≤ k by
// computing each matching-function row with Algorithm 3: the O(k²)
// step of Algorithm 2 (lines 3), in O(k) space as Section 3.2's
// rewritten loop prescribes.
func bestLQuadratic(x, y []byte) anchor {
	s := match.GetScratch()
	best := bestLWith(s, x, y)
	match.PutScratch(s)
	return best
}

// bestLWith is bestLQuadratic on caller-provided scratch storage:
// allocation-free, identical minimization order (i ascending, then j
// ascending, strict improvement).
func bestLWith(s *match.Scratch, x, y []byte) anchor {
	k := len(x)
	best := anchor{dist: 1 << 30}
	for i := 1; i <= k; i++ {
		row := s.LRow(x, y, i-1) // row[j-1] = l_{i,j}
		for j := 1; j <= k; j++ {
			d := 2*k - 1 + i - j - row[j-1]
			if d < best.dist {
				best = anchor{s: i, t: j, theta: row[j-1], dist: d}
			}
		}
	}
	return best
}

// bestRQuadratic minimizes 2k-1-i+j-r_{i,j} over all 1 ≤ i,j ≤ k,
// the line-4 counterpart of bestLQuadratic.
func bestRQuadratic(x, y []byte) anchor {
	s := match.GetScratch()
	best := bestRWith(s, x, y)
	match.PutScratch(s)
	return best
}

// bestRWith is bestRQuadratic on caller-provided scratch storage.
func bestRWith(s *match.Scratch, x, y []byte) anchor {
	k := len(x)
	best := anchor{dist: 1 << 30}
	for i := 1; i <= k; i++ {
		row := s.RRow(x, y, i-1) // row[j-1] = r_{i,j}
		for j := 1; j <= k; j++ {
			d := 2*k - 1 - i + j - row[j-1]
			if d < best.dist {
				best = anchor{s: i, t: j, theta: row[j-1], dist: d}
			}
		}
	}
	return best
}

// UndirectedDistance implements Theorem 2: the distance between X and
// Y in the undirected DG(d,k) is
//
//	2k-1 + min{ min_{i,j}(i-j-l_{i,j}), min_{i,j}(-i+j-r_{i,j}) }.
//
// This is the O(k²) evaluation used by Algorithm 2; the O(k)
// evaluation via the compact prefix tree is UndirectedDistanceLinear.
func UndirectedDistance(x, y word.Word) (int, error) {
	sc := getScratch()
	d, err := sc.UndirectedDistance(x, y)
	putScratch(sc)
	return d, err
}

// UndirectedDistanceCorollary implements Corollary 4, which restricts
// the minimization ranges: the l-part needs only i ≤ j and the r-part
// only j ≤ i (pairs outside those ranges cannot beat the trivial
// length-k path). The report's rendering of the corollary garbles the
// second range; the restriction used here is re-derived from the
// bounds l_{i,j} ≤ min(j, k-i+1) and r_{i,j} ≤ min(i, k-j+1) and is
// verified against the full-range Theorem 2 in the tests.
func UndirectedDistanceCorollary(x, y word.Word) (int, error) {
	if err := validatePair(x, y); err != nil {
		return 0, err
	}
	if x.Equal(y) {
		return 0, nil
	}
	xd, yd := rawDigits(x), rawDigits(y)
	k := x.Len()
	best := 1 << 30
	for i := 1; i <= k; i++ {
		lrow := match.LRow(xd, yd, i-1)
		for j := i; j <= k; j++ {
			if d := 2*k - 1 + i - j - lrow[j-1]; d < best {
				best = d
			}
		}
		rrow := match.RRow(xd, yd, i-1)
		for j := 1; j <= i; j++ {
			if d := 2*k - 1 - i + j - rrow[j-1]; d < best {
				best = d
			}
		}
	}
	return best, nil
}

// rawDigits returns the digit slice of w. Words are immutable from the
// outside, so the copy made by Digits keeps call sites honest; the
// distance functions are hot paths, so they share one copy per call.
func rawDigits(w word.Word) []byte { return w.Digits() }
