package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/word"
)

func TestRouteDirectedExhaustive(t *testing.T) {
	// Algorithm 1: path length equals the BFS distance, the walk ends
	// at Y, and only left shifts are used.
	for _, dk := range smallCases {
		d, k := dk[0], dk[1]
		words := allWords(t, d, k)
		bfs := bfsAll(t, graph.Directed, d, k)
		for i, x := range words {
			for j, y := range words {
				p, err := RouteDirected(x, y)
				if err != nil {
					t.Fatal(err)
				}
				if p.Len() != bfs[i][j] {
					t.Fatalf("DG(%d,%d): |P(%v,%v)| = %d, BFS = %d", d, k, x, y, p.Len(), bfs[i][j])
				}
				if !p.OnlyLeftShifts() {
					t.Fatalf("Algorithm 1 produced a right shift: %v", p)
				}
				if p.HasWildcard() {
					t.Fatalf("Algorithm 1 produced a wildcard: %v", p)
				}
				end, err := p.Apply(x, nil)
				if err != nil {
					t.Fatal(err)
				}
				if !end.Equal(y) {
					t.Fatalf("walk of %v from %v ends at %v, want %v", p, x, end, y)
				}
			}
		}
	}
}

// checkUndirectedRoute validates one bi-directional route against the
// graph: correct length, lands on Y under adversarial wildcard
// resolution, and every hop crosses a real edge.
func checkUndirectedRoute(t *testing.T, g *graph.Graph, x, y word.Word, p Path, wantLen int, rng *rand.Rand) {
	t.Helper()
	if p.Len() != wantLen {
		t.Fatalf("|P(%v,%v)| = %d, want %d (path %v)", x, y, p.Len(), wantLen, p)
	}
	// Resolve wildcards three ways: zeros, random, max digit.
	choosers := []Chooser{
		nil,
		func(int, word.Word, Hop) byte { return byte(x.Base() - 1) },
		func(int, word.Word, Hop) byte { return byte(rng.Intn(x.Base())) },
	}
	for ci, choose := range choosers {
		conc, err := p.Concrete(x, choose)
		if err != nil {
			t.Fatal(err)
		}
		if conc.HasWildcard() {
			t.Fatal("Concrete left a wildcard")
		}
		cur := x
		for hi, h := range conc {
			next, err := Path{h}.Apply(cur, nil)
			if err != nil {
				t.Fatal(err)
			}
			u := graph.DeBruijnVertex(cur)
			v := graph.DeBruijnVertex(next)
			if u == v {
				t.Fatalf("chooser %d: hop %d of %v is a self loop at %v", ci, hi, conc, cur)
			}
			if !g.HasEdge(u, v) {
				t.Fatalf("chooser %d: hop %d of %v crosses a non-edge %v–%v", ci, hi, conc, cur, next)
			}
			cur = next
		}
		if !cur.Equal(y) {
			t.Fatalf("chooser %d: walk of %v from %v ends at %v, want %v", ci, conc, x, cur, y)
		}
	}
}

func TestRouteUndirectedExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, dk := range smallCases {
		d, k := dk[0], dk[1]
		words := allWords(t, d, k)
		bfs := bfsAll(t, graph.Undirected, d, k)
		g, err := graph.DeBruijn(graph.Undirected, d, k)
		if err != nil {
			t.Fatal(err)
		}
		for i, x := range words {
			for j, y := range words {
				p, err := RouteUndirected(x, y)
				if err != nil {
					t.Fatal(err)
				}
				checkUndirectedRoute(t, g, x, y, p, bfs[i][j], rng)
			}
		}
	}
}

func TestRouteUndirectedLinearExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, dk := range smallCases {
		d, k := dk[0], dk[1]
		words := allWords(t, d, k)
		bfs := bfsAll(t, graph.Undirected, d, k)
		g, err := graph.DeBruijn(graph.Undirected, d, k)
		if err != nil {
			t.Fatal(err)
		}
		for i, x := range words {
			for j, y := range words {
				p, err := RouteUndirectedLinear(x, y)
				if err != nil {
					t.Fatal(err)
				}
				checkUndirectedRoute(t, g, x, y, p, bfs[i][j], rng)
			}
		}
	}
}

func TestRouteUndirectedLargeKConsistency(t *testing.T) {
	// For k beyond exhaustive reach: both algorithms yield paths of
	// the same (Theorem 2) length that land on Y.
	rng := rand.New(rand.NewSource(43))
	for iter := 0; iter < 200; iter++ {
		d := 2 + rng.Intn(4)
		k := 1 + rng.Intn(48)
		x, y := word.Random(d, k, rng), word.Random(d, k, rng)
		want, err := UndirectedDistance(x, y)
		if err != nil {
			t.Fatal(err)
		}
		for name, route := range map[string]func(a, b word.Word) (Path, error){
			"quadratic": RouteUndirected,
			"linear":    RouteUndirectedLinear,
		} {
			p, err := route(x, y)
			if err != nil {
				t.Fatal(err)
			}
			if err := mustLen(p, want); err != nil {
				t.Fatalf("%s: %v for (%v,%v)", name, err, x, y)
			}
			end, err := p.Apply(x, func(int, word.Word, Hop) byte { return byte(rng.Intn(d)) })
			if err != nil {
				t.Fatal(err)
			}
			if !end.Equal(y) {
				t.Fatalf("%s: walk ends at %v, want %v", name, end, y)
			}
		}
	}
}

func TestRouteTrivialAndIdentity(t *testing.T) {
	x := word.MustParse(2, "0101")
	for name, route := range map[string]func(a, b word.Word) (Path, error){
		"directed":  RouteDirected,
		"quadratic": RouteUndirected,
		"linear":    RouteUndirectedLinear,
	} {
		p, err := route(x, x)
		if err != nil {
			t.Fatal(err)
		}
		if p.Len() != 0 {
			t.Errorf("%s: route X→X has %d hops", name, p.Len())
		}
	}
	// 0000 → 1111 must be the trivial path of k left shifts.
	zeros := word.MustParse(2, "0000")
	ones := word.MustParse(2, "1111")
	p, err := RouteUndirected(zeros, ones)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 4 || !p.OnlyLeftShifts() {
		t.Errorf("trivial route = %v", p)
	}
}

func TestRouteValidatesOperands(t *testing.T) {
	x := word.MustParse(2, "01")
	for name, route := range map[string]func(a, b word.Word) (Path, error){
		"directed":  RouteDirected,
		"quadratic": RouteUndirected,
		"linear":    RouteUndirectedLinear,
	} {
		if _, err := route(x, word.MustParse(3, "01")); err == nil {
			t.Errorf("%s accepted mixed bases", name)
		}
		if _, err := route(x, word.MustParse(2, "011")); err == nil {
			t.Errorf("%s accepted mixed lengths", name)
		}
	}
}

func TestPathApplyWildcardNeedsChooser(t *testing.T) {
	x := word.MustParse(2, "01")
	p := Path{LStar()}
	if _, err := p.Apply(x, nil); err == nil {
		t.Error("Apply resolved wildcard without chooser")
	}
	got, err := p.Apply(x, FirstDigit)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "10" {
		t.Errorf("Apply = %v", got)
	}
}

func TestPathApplyRejectsBadDigit(t *testing.T) {
	x := word.MustParse(2, "01")
	if _, err := (Path{L(2)}).Apply(x, nil); err == nil {
		t.Error("Apply accepted out-of-alphabet digit")
	}
	if _, err := (Path{LStar()}).Apply(x, func(int, word.Word, Hop) byte { return 5 }); err == nil {
		t.Error("Apply accepted chooser returning bad digit")
	}
	if _, err := (Path{{Type: HopType(7)}}).Apply(x, nil); err == nil {
		t.Error("Apply accepted invalid hop type")
	}
}

func TestPathString(t *testing.T) {
	p := Path{L(1), RStar(), R(0)}
	if got := p.String(); got != "{(0,1),(1,*),(1,0)}" {
		t.Errorf("String = %q", got)
	}
	if got := (Path{}).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

func TestPathConcreteNilChooserUsesZero(t *testing.T) {
	x := word.MustParse(2, "01")
	conc, err := Path{RStar()}.Concrete(x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if conc[0].Digit != 0 || conc[0].Wildcard {
		t.Errorf("Concrete = %v", conc)
	}
}
