package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/word"
)

// The engines resolve wildcard hops with three choosers: digit 0
// (network.PolicyFirst and the cluster default), a seeded uniform
// digit (network.PolicyRandom, ClusterConfig.RandomWildcard), and a
// load-dependent digit (network.PolicyLeastLoaded) that can be any
// value in [0, d). The paper's remark permits this freedom only
// because every resolution yields a shortest path; the tests below
// pin that directly at the Chooser level.

// TestChooserTableKeepsShortest walks table pairs whose Algorithm 2
// and Algorithm 4 paths contain LStar/RStar hops, resolves them with
// each engine-equivalent chooser, and requires the walk to end at Y
// after exactly D(X,Y) real link crossings.
func TestChooserTableKeepsShortest(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct {
		d    int
		x, y string
	}{
		// Wildcards of both star types, both algorithms (comments show
		// the emitted Algorithm 2 path).
		{2, "00000", "01001"},   // {(1,1),(1,0),(1,*),(0,1)}
		{2, "00000", "10011"},   // {(0,1),(0,1),(0,*),(1,1)}
		{2, "00001", "10001"},   // {(0,*),(1,1)}
		{2, "000000", "011001"}, // {(1,1),(1,1),(1,0),(1,*),(0,1)}
		{3, "0000", "2001"},     // {(1,2),(1,*),(0,1)}
		{3, "0001", "2001"},     // {(0,*),(1,2)}
		{4, "0000", "1003"},     // {(1,1),(1,*),(0,3)}
		{4, "0001", "2001"},     // {(0,*),(1,2)}
	} {
		x := mustParse(t, tc.d, tc.x)
		y := mustParse(t, tc.d, tc.y)
		want, err := UndirectedDistance(x, y)
		if err != nil {
			t.Fatal(err)
		}
		g, err := graph.DeBruijn(graph.Undirected, tc.d, x.Len())
		if err != nil {
			t.Fatal(err)
		}
		for _, route := range []struct {
			alg string
			fn  func(word.Word, word.Word) (Path, error)
		}{
			{"alg2", RouteUndirected},
			{"alg4", RouteUndirectedLinear},
		} {
			p, err := route.fn(x, y)
			if err != nil {
				t.Fatal(err)
			}
			if !p.HasWildcard() {
				t.Fatalf("%s %v→%v: table pair has no wildcard hop; pick another pair", route.alg, x, y)
			}
			if len(p) != want {
				t.Fatalf("%s %v→%v: %d hops, want %d", route.alg, x, y, len(p), want)
			}
			for _, ch := range []struct {
				name   string
				choose Chooser
			}{
				{"first-digit", FirstDigit},
				{"max-digit", func(int, word.Word, Hop) byte { return byte(tc.d - 1) }},
				{"position-varying", func(i int, _ word.Word, _ Hop) byte { return byte(i % tc.d) }},
				{"seeded-random", func(int, word.Word, Hop) byte { return byte(rng.Intn(tc.d)) }},
			} {
				walkShortest(t, g, route.alg+"/"+ch.name, x, y, p, ch.choose, want)
			}
		}
	}
}

// TestChooserEveryDigitKeepsShortest goes further than the named
// choosers: on small graphs every per-wildcard digit assignment is a
// valid resolution, exhaustively — the freedom the remark grants is
// total, not just for the resolutions the engines happen to use.
func TestChooserEveryDigitKeepsShortest(t *testing.T) {
	for _, tc := range []struct{ d, k int }{{2, 4}, {3, 3}} {
		g, err := graph.DeBruijn(graph.Undirected, tc.d, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := word.ForEach(tc.d, tc.k, func(x word.Word) bool {
			_, err := word.ForEach(tc.d, tc.k, func(y word.Word) bool {
				p, err := RouteUndirected(x, y)
				if err != nil {
					t.Fatal(err)
				}
				wilds := 0
				for _, h := range p {
					if h.Wildcard {
						wilds++
					}
				}
				if wilds == 0 || wilds > 4 {
					return true // nothing to resolve / too many to enumerate
				}
				want, err := UndirectedDistance(x, y)
				if err != nil {
					t.Fatal(err)
				}
				combos := 1
				for i := 0; i < wilds; i++ {
					combos *= tc.d
				}
				for c := 0; c < combos; c++ {
					digits := make([]byte, 0, wilds)
					for v := c; len(digits) < wilds; v /= tc.d {
						digits = append(digits, byte(v%tc.d))
					}
					next := 0
					choose := func(int, word.Word, Hop) byte {
						b := digits[next]
						next++
						return b
					}
					walkShortest(t, g, "exhaustive", x, y, p, choose, want)
				}
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			return true
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// walkShortest applies p from x under choose and asserts the walk
// crosses only real links of g and ends at y after exactly want hops.
func walkShortest(t *testing.T, g *graph.Graph, how string, x, y word.Word, p Path, choose Chooser, want int) {
	t.Helper()
	if len(p) != want {
		t.Errorf("%s %v→%v: %d hops, want %d", how, x, y, len(p), want)
		return
	}
	cur := x
	for i, h := range p {
		digit := h.Digit
		if h.Wildcard {
			digit = choose(i, cur, h)
		}
		var next word.Word
		if h.Type == TypeL {
			next = cur.ShiftLeft(digit)
		} else {
			next = cur.ShiftRight(digit)
		}
		if !g.HasEdge(graph.DeBruijnVertex(cur), graph.DeBruijnVertex(next)) {
			t.Errorf("%s %v→%v: hop %d crosses %v→%v, not a link", how, x, y, i, cur, next)
			return
		}
		cur = next
	}
	if !cur.Equal(y) {
		t.Errorf("%s %v→%v: walk ends at %v", how, x, y, cur)
	}
}
