package core

import (
	"testing"

	"repro/internal/word"
)

// The linear-tree anchor search excludes θ=0 candidates (the tree
// minimization only visits nodes of depth ≥ 1), so when X and Y share
// no common substring the anchors come back as the saturated sentinel
// anchor{dist: k} and buildUndirectedPath takes the line-6 trivial
// path. The tests below audit that branch: the sentinel can never
// shadow a genuinely shorter line-8/line-9 path, because a θ=0
// candidate's best value is exactly k (i=1, j=k in 2k-1+i-j-θ) —
// anything shorter needs θ ≥ 1 and is therefore visible to the tree.

// TestTreeAnchorsMatchQuadratic pins the per-side equality
// treeAnchors.dist == bestL/RQuadratic.dist on every pair of every
// small graph, k ≤ 2 and d ≥ 2 edge cases included. The quadratic
// side minimizes over the full range including θ=0, so equality is
// exactly the no-shadowing property.
func TestTreeAnchorsMatchQuadratic(t *testing.T) {
	for _, tc := range []struct{ d, k int }{
		{2, 1}, {2, 2}, {3, 1}, {3, 2}, {4, 1}, {4, 2}, {5, 2}, {7, 2},
		{2, 3}, {2, 4}, {2, 5}, {3, 3}, {3, 4}, {4, 3},
	} {
		sentinels := 0
		if _, err := word.ForEach(tc.d, tc.k, func(x word.Word) bool {
			_, err := word.ForEach(tc.d, tc.k, func(y word.Word) bool {
				if x.Equal(y) {
					return true
				}
				xd, yd := rawDigits(x), rawDigits(y)
				qL, qR := bestLQuadratic(xd, yd), bestRQuadratic(xd, yd)
				tL, tR, err := treeAnchors(xd, yd)
				if err != nil {
					t.Fatalf("treeAnchors(%v,%v): %v", x, y, err)
				}
				if tL.dist != qL.dist || tR.dist != qR.dist {
					t.Errorf("DG(%d,%d) %v→%v: tree anchors (%d,%d), quadratic (%d,%d)",
						tc.d, tc.k, x, y, tL.dist, tR.dist, qL.dist, qR.dist)
				}
				if tL.dist >= tc.k && tR.dist >= tc.k {
					sentinels++
					// The saturated branch must produce the trivial
					// path, and the true distance must be exactly k —
					// nothing shorter was shadowed.
					if qL.dist < tc.k || qR.dist < tc.k {
						t.Errorf("DG(%d,%d) %v→%v: sentinel shadows quadratic distance %d",
							tc.d, tc.k, x, y, min2(qL.dist, qR.dist))
					}
					p, err := RouteUndirectedLinear(x, y)
					if err != nil {
						t.Fatal(err)
					}
					if len(p) != tc.k || !p.OnlyLeftShifts() || p.HasWildcard() {
						t.Errorf("DG(%d,%d) %v→%v: saturated branch built %v, want the trivial %d-hop directed path",
							tc.d, tc.k, x, y, p, tc.k)
					}
					if got, err := p.Apply(x, nil); err != nil || !got.Equal(y) {
						t.Errorf("DG(%d,%d) %v→%v: trivial path ends at %v (%v)", tc.d, tc.k, x, y, got, err)
					}
				}
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if tc.k <= 2 && sentinels == 0 {
			t.Errorf("DG(%d,%d): no sentinel pair exercised; the audit needs the branch to fire", tc.d, tc.k)
		}
	}
}

// TestSaturatedSentinelTable pins concrete sentinel cases: pairs with
// no common substring, where both tree anchors saturate and line 6
// must emit the trivial path whose length equals Theorem 2's distance.
func TestSaturatedSentinelTable(t *testing.T) {
	for _, tc := range []struct {
		d    int
		x, y string
	}{
		{2, "0", "1"},     // k=1: no depth-1 match possible between distinct words
		{2, "00", "11"},   // k=2: disjoint digit sets
		{3, "00", "12"},   // k=2, d=3
		{3, "01", "22"},   // k=2, mixed
		{4, "012", "333"}, // k=3, d=4
	} {
		x := mustParse(t, tc.d, tc.x)
		y := mustParse(t, tc.d, tc.y)
		k := x.Len()
		aL, aR, err := treeAnchors(rawDigits(x), rawDigits(y))
		if err != nil {
			t.Fatal(err)
		}
		if aL != (anchor{dist: k}) || aR != (anchor{dist: k}) {
			t.Errorf("%v→%v: anchors (%+v, %+v), want saturated sentinels {dist:%d}", x, y, aL, aR, k)
		}
		want, err := UndirectedDistance(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if want != k {
			t.Fatalf("%v→%v: Theorem 2 distance %d, table expects a saturated case (= %d)", x, y, want, k)
		}
		p, err := RouteUndirectedLinear(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if len(p) != k {
			t.Errorf("%v→%v: path %v has %d hops, want %d", x, y, p, len(p), k)
		}
		if got, err := p.Apply(x, nil); err != nil || !got.Equal(y) {
			t.Errorf("%v→%v: path ends at %v (%v)", x, y, got, err)
		}
	}
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func mustParse(t *testing.T, d int, s string) word.Word {
	t.Helper()
	w, err := word.Parse(d, s)
	if err != nil {
		t.Fatal(err)
	}
	return w
}
