package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/word"
)

// allWords enumerates the vertices of DG(d,k).
func allWords(t *testing.T, d, k int) []word.Word {
	t.Helper()
	var out []word.Word
	if _, err := word.ForEach(d, k, func(w word.Word) bool {
		out = append(out, w)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// bfsAll computes all-pairs BFS distances on the de Bruijn graph.
func bfsAll(t *testing.T, kind graph.Kind, d, k int) [][]int {
	t.Helper()
	g, err := graph.DeBruijn(kind, d, k)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]int, g.NumVertices())
	for v := range out {
		dist, err := g.BFSFrom(v)
		if err != nil {
			t.Fatal(err)
		}
		out[v] = dist
	}
	return out
}

var smallCases = [][2]int{{2, 1}, {2, 2}, {2, 3}, {2, 4}, {2, 5}, {3, 1}, {3, 2}, {3, 3}, {4, 2}, {5, 2}}

func TestDirectedDistanceVsBFS(t *testing.T) {
	// E2: Property 1 agrees with BFS on every ordered pair.
	for _, dk := range smallCases {
		d, k := dk[0], dk[1]
		words := allWords(t, d, k)
		bfs := bfsAll(t, graph.Directed, d, k)
		for i, x := range words {
			for j, y := range words {
				got, err := DirectedDistance(x, y)
				if err != nil {
					t.Fatal(err)
				}
				if got != bfs[i][j] {
					t.Fatalf("DG(%d,%d): D(%v,%v) = %d, BFS = %d", d, k, x, y, got, bfs[i][j])
				}
			}
		}
	}
}

func TestUndirectedDistanceVsBFS(t *testing.T) {
	// E2: Theorem 2 agrees with BFS on every ordered pair.
	for _, dk := range smallCases {
		d, k := dk[0], dk[1]
		words := allWords(t, d, k)
		bfs := bfsAll(t, graph.Undirected, d, k)
		for i, x := range words {
			for j, y := range words {
				got, err := UndirectedDistance(x, y)
				if err != nil {
					t.Fatal(err)
				}
				if got != bfs[i][j] {
					t.Fatalf("DG(%d,%d): D(%v,%v) = %d, BFS = %d", d, k, x, y, got, bfs[i][j])
				}
			}
		}
	}
}

func TestUndirectedDistanceLinearMatchesQuadratic(t *testing.T) {
	// Exhaustive equality of the prefix-tree evaluation (Algorithm 4)
	// with the failure-function evaluation (Algorithm 2).
	for _, dk := range smallCases {
		d, k := dk[0], dk[1]
		words := allWords(t, d, k)
		for _, x := range words {
			for _, y := range words {
				quad, err := UndirectedDistance(x, y)
				if err != nil {
					t.Fatal(err)
				}
				lin, err := UndirectedDistanceLinear(x, y)
				if err != nil {
					t.Fatal(err)
				}
				if quad != lin {
					t.Fatalf("DG(%d,%d): quadratic %d != linear %d for (%v,%v)", d, k, quad, lin, x, y)
				}
			}
		}
	}
}

func TestUndirectedDistanceLinearMatchesQuadraticLargeK(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 300; iter++ {
		d := 2 + rng.Intn(4)
		k := 1 + rng.Intn(40)
		x, y := word.Random(d, k, rng), word.Random(d, k, rng)
		quad, err := UndirectedDistance(x, y)
		if err != nil {
			t.Fatal(err)
		}
		lin, err := UndirectedDistanceLinear(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if quad != lin {
			t.Fatalf("quadratic %d != linear %d for (%v,%v)", quad, lin, x, y)
		}
	}
}

func TestUndirectedDistanceCorollaryMatchesTheorem(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for iter := 0; iter < 500; iter++ {
		d := 2 + rng.Intn(3)
		k := 1 + rng.Intn(16)
		x, y := word.Random(d, k, rng), word.Random(d, k, rng)
		full, err := UndirectedDistance(x, y)
		if err != nil {
			t.Fatal(err)
		}
		restricted, err := UndirectedDistanceCorollary(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if full != restricted {
			t.Fatalf("Corollary 4 %d != Theorem 2 %d for (%v,%v)", restricted, full, x, y)
		}
	}
}

func TestDistanceKnownValues(t *testing.T) {
	// Hand-checked examples on DG(2,3), Figure 1.
	p := func(s string) word.Word { return word.MustParse(2, s) }
	// Directed: 000 → 111 must take 3 steps; 010 → 101 takes 1 (left
	// shift inserting 1); 101 → 010 takes 1.
	cases := []struct {
		x, y string
		want int
	}{
		{"000", "111", 3},
		{"010", "101", 1},
		{"101", "010", 1},
		{"000", "000", 0},
		{"000", "001", 1},
		// 001→000: no suffix of 001 is a prefix of 000 ("1", "01",
		// "001" all fail), so l = 0 and D = k = 3.
		{"001", "000", 3},
		{"011", "110", 1},
	}
	for _, c := range cases {
		got, err := DirectedDistance(p(c.x), p(c.y))
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("directed D(%s,%s) = %d, want %d", c.x, c.y, got, c.want)
		}
	}
	// Undirected: 001 → 000 is 1 hop (right shift inserting 0).
	got, err := UndirectedDistance(p("001"), p("000"))
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("undirected D(001,000) = %d, want 1", got)
	}
}

func TestDistanceSymmetryUndirected(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for iter := 0; iter < 500; iter++ {
		d := 2 + rng.Intn(3)
		k := 1 + rng.Intn(12)
		x, y := word.Random(d, k, rng), word.Random(d, k, rng)
		a, err := UndirectedDistance(x, y)
		if err != nil {
			t.Fatal(err)
		}
		b, err := UndirectedDistance(y, x)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("undirected distance not symmetric: %d vs %d for (%v,%v)", a, b, x, y)
		}
	}
}

func TestDistanceBounds(t *testing.T) {
	// 0 ≤ D ≤ k; D = 0 iff X = Y; undirected ≤ directed.
	rng := rand.New(rand.NewSource(34))
	for iter := 0; iter < 1000; iter++ {
		d := 2 + rng.Intn(3)
		k := 1 + rng.Intn(14)
		x, y := word.Random(d, k, rng), word.Random(d, k, rng)
		dd, err := DirectedDistance(x, y)
		if err != nil {
			t.Fatal(err)
		}
		ud, err := UndirectedDistance(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if dd < 0 || dd > k || ud < 0 || ud > k {
			t.Fatalf("distance out of [0,%d]: directed %d undirected %d", k, dd, ud)
		}
		if ud > dd {
			t.Fatalf("undirected %d exceeds directed %d for (%v,%v)", ud, dd, x, y)
		}
		if (dd == 0) != x.Equal(y) || (ud == 0) != x.Equal(y) {
			t.Fatalf("zero distance iff equality violated for (%v,%v)", x, y)
		}
	}
}

func TestDistanceValidatesOperands(t *testing.T) {
	x := word.MustParse(2, "01")
	if _, err := DirectedDistance(x, word.MustParse(3, "01")); err == nil {
		t.Error("DirectedDistance accepted mixed bases")
	}
	if _, err := UndirectedDistance(x, word.MustParse(2, "011")); err == nil {
		t.Error("UndirectedDistance accepted mixed lengths")
	}
	if _, err := UndirectedDistanceLinear(x, word.Word{}); err == nil {
		t.Error("UndirectedDistanceLinear accepted zero value")
	}
	if _, err := UndirectedDistanceCorollary(word.Word{}, x); err == nil {
		t.Error("UndirectedDistanceCorollary accepted zero value")
	}
}

// TestPaperPrefixTreeStringIsInconsistent documents why Algorithm 4 is
// implemented over S = X⊥Y⊤ rather than the report's X⊥Ȳ⊤: in the
// report's string, the LCP of the X-leaf at i and the Ȳ-leaf at
// 2k+2-j matches X forward against Y *backward*, which differs from
// the matching function l_{i,j} of definition (8) that Theorem 2 uses.
func TestPaperPrefixTreeStringIsInconsistent(t *testing.T) {
	// X = 010, Y = 001: l_{1,3} = 2 because x1x2 = "01" = y2y3.
	x := []byte{0, 1, 0}
	y := []byte{0, 0, 1}
	if got := match.NaiveL(x, y, 0, 2); got != 2 {
		t.Fatalf("l_{1,3} = %d, want 2", got)
	}
	// The report's S = X⊥Ȳ⊤ = 010⊥100⊤; LCP(position 1, position
	// 2k+2-j = 5) compares "010⊥…" with "00⊤" → 1 ≠ l_{1,3}.
	s := []byte{0, 1, 0, markBot, 1, 0, 0, markTop}
	lcp := 0
	for s[lcp] == s[4+lcp] {
		lcp++
	}
	if lcp == 2 {
		t.Fatal("report's construction unexpectedly matches l_{i,j}; revisit DESIGN.md note")
	}
}
