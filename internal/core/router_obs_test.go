package core

import (
	"math/rand"
	"testing"

	"repro/internal/obs"
	"repro/internal/word"
)

func TestRouterObserver(t *testing.T) {
	const k = 6
	reg := obs.NewRegistry()
	r := NewRouter(k)
	r.SetObserver(reg)
	rng := rand.New(rand.NewSource(41))

	routes := 0
	for i := 0; i < 20; i++ {
		x, y := word.Random(2, k, rng), word.Random(2, k, rng)
		if x.Equal(y) {
			continue
		}
		if _, err := r.Route(x, y); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Distance(x, y); err != nil {
			t.Fatal(err)
		}
		routes++
	}
	snap := reg.Snapshot()
	if got := snap.Counter("core_routes_built_total"); got != int64(routes) {
		t.Errorf("routes built = %d, want %d", got, routes)
	}
	if got := snap.Counter("core_distance_evals_total"); got != int64(routes) {
		t.Errorf("distance evals = %d, want %d", got, routes)
	}
	// Each Route and each Distance scans 2k anchor rows.
	if got := snap.Counter("core_anchor_rows_total"); got != int64(4*k*routes) {
		t.Errorf("anchor rows = %d, want %d", got, 4*k*routes)
	}
	if got := snap.Histograms["core_router_route_ns"].Count; got != int64(routes) {
		t.Errorf("route ns observations = %d, want %d", got, routes)
	}

	// Detaching freezes the counters.
	r.SetObserver(nil)
	if _, err := r.Route(word.MustParse(2, "010101"), word.MustParse(2, "101010")); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counter("core_routes_built_total"); got != int64(routes) {
		t.Errorf("detached router still counted: %d", got)
	}
}
