package core

import (
	"fmt"

	"repro/internal/word"
)

// Tier identifies which kernel implementation answers queries for one
// (d,k), selected per graph by Kernels. The ladder, fastest first:
//
//	T1 TierTable   — rank-indexed precomputed tables, O(1) per query,
//	                 when 7·(d^k)² bytes fit the memory budget.
//	T2 TierPacked  — bit-packed shift-XOR kernels (packed.go) for
//	                 d ≤ 4 with k·b ≤ 1024 packed bits.
//	T3 TierScratch — the byte-digit scratch kernels, any (d,k).
//
// Every tier returns byte-identical answers: for a given (d,k) there
// is one canonical result set (distances are Theorem 2's values;
// anchors and paths follow the quadratic sweep's row-major tie-break
// when operands fit one machine word, the suffix-tree walk's
// otherwise), and each tier reproduces it exactly. internal/check's
// kernels oracle and FuzzKernelTierEquivalence enforce this.
type Tier uint8

const (
	// TierScratch is T3, the general fallback (scratch.go).
	TierScratch Tier = iota
	// TierPacked is T2, the bit-packed kernels (packed.go).
	TierPacked
	// TierTable is T1, the rank-indexed tables (table.go).
	TierTable
)

// String names the tier as reported by dbstats and the check oracle.
func (t Tier) String() string {
	switch t {
	case TierTable:
		return "table"
	case TierPacked:
		return "packed"
	default:
		return "scratch"
	}
}

// DefaultTableBudget is the per-(d,k) memory budget of the table tier
// when KernelConfig.TableBudget is zero: 1 MiB holds the full pair
// tables of DG(2,8), DG(3,5) or DG(4,4) with room to spare, and one
// table build at this size stays in the low tens of milliseconds.
const DefaultTableBudget = 1 << 20

// KernelConfig selects and parameterizes the kernel tiers.
type KernelConfig struct {
	// TableBudget is the per-(d,k) byte budget of the table tier:
	// DG(d,k) is table-eligible when its 7·(d^k)² pair bytes fit.
	// 0 means DefaultTableBudget; negative disables the tier.
	TableBudget int64
	// DisablePacked turns off the bit-packed tier (T2); eligible
	// queries fall through to the scratch kernels. Answers do not
	// change — the scratch path reproduces the packed tier's
	// canonical anchors.
	DisablePacked bool
	// SyncTableBuild makes the first query of a table-eligible (d,k)
	// block until its table is built. The default is asynchronous:
	// queries are answered by the packed/scratch tiers while the
	// build runs, which is semantically invisible (identical
	// answers) but makes tier observation racy — tests and
	// benchmarks that pin TierTable set this.
	SyncTableBuild bool
}

func (c KernelConfig) tableBudget() int64 {
	if c.TableBudget == 0 {
		return DefaultTableBudget
	}
	return c.TableBudget
}

// Kernels is the tiered kernel engine: one instance bundles the
// scratch and packed buffers plus the tier-selection memo, and
// dispatches each query to the fastest tier covering its (d,k).
// Construction is cheap; tables are shared process-wide (table.go),
// so many Kernels over the same graphs pay for one build. Not safe
// for concurrent use — give each worker its own, exactly like
// Scratch.
type Kernels struct {
	cfg KernelConfig
	sc  Scratch
	ps  packedScratch
	fr  Frame

	// Single-entry tier memo: serve workers overwhelmingly stay on
	// one DG(d,k), and resolving a tier can take the table-store
	// lock. Only stable resolutions are memoized (see resolveSlow).
	memoD, memoK int
	memoInfo     tierInfo
}

// tierInfo is one resolved (d,k) → tier decision.
type tierInfo struct {
	tier   Tier
	tab    *rankTable // non-nil iff tier == TierTable
	b      int        // packed bits per digit (tier == TierPacked)
	single bool       // packed operands fit one uint64
}

// NewKernels returns a tiered engine with the given configuration.
func NewKernels(cfg KernelConfig) *Kernels {
	return &Kernels{cfg: cfg, memoD: -1}
}

// Config returns the engine's configuration.
func (kn *Kernels) Config() KernelConfig { return kn.cfg }

// TierFor reports the tier that would answer a DG(d,k) query right
// now. With asynchronous table builds the answer can upgrade from
// TierPacked/TierScratch to TierTable once the build finishes; under
// SyncTableBuild the first call blocks until the table exists, so the
// report is final.
func (kn *Kernels) TierFor(d, k int) Tier { return kn.resolve(d, k).tier }

func (kn *Kernels) resolve(d, k int) tierInfo {
	if d == kn.memoD && k == kn.memoK {
		return kn.memoInfo
	}
	ti, stable := kn.resolveSlow(d, k)
	if stable {
		kn.memoD, kn.memoK, kn.memoInfo = d, k, ti
	}
	return ti
}

// resolveSlow walks the ladder: table if eligible and built, packed
// if the alphabet packs, scratch otherwise. While an asynchronous
// table build is pending the fallback decision is not memoized, so
// the upgrade is observed on a later query.
func (kn *Kernels) resolveSlow(d, k int) (tierInfo, bool) {
	pending := false
	if size, ok := tableSize(d, k); ok && size <= kn.cfg.tableBudget() {
		tab, bldg := getTable(d, k, size, kn.cfg.SyncTableBuild)
		if tab != nil {
			return tierInfo{tier: TierTable, tab: tab}, true
		}
		pending = bldg
	}
	if !kn.cfg.DisablePacked && packedEligible(d, k) {
		b := word.PackedBits(d)
		return tierInfo{tier: TierPacked, b: b, single: k*b <= 64}, !pending
	}
	return tierInfo{tier: TierScratch}, !pending
}

// canonicalAnchors returns the anchors that define this (d,k)'s paths:
// the quadratic sweep's in the single-word regime, the suffix-tree
// walk's otherwise. The packed kernel computes the former when
// enabled; the scratch fallback reproduces them exactly.
func (kn *Kernels) canonicalAnchors(x, y word.Word) (anchor, anchor, error) {
	d, k := x.Base(), x.Len()
	if packedSingleWord(d, k) {
		if !kn.cfg.DisablePacked {
			kn.ps.load(x, y)
			aL, aR := packedAnchors1(kn.ps.x[0], kn.ps.y[0], k, word.PackedBits(d), kn.lens(k))
			return aL, aR, nil
		}
		kn.sc.loadDigits(x, y)
		aL, aR := kn.sc.anchorsQuadratic(kn.sc.xd, kn.sc.yd)
		return aL, aR, nil
	}
	kn.sc.loadDigits(x, y)
	return kn.sc.treeAnchors(kn.sc.xd, kn.sc.yd)
}

func (kn *Kernels) lens(k int) []int16 {
	if cap(kn.ps.lens) < 2*k-1 {
		kn.ps.lens = make([]int16, 2*k-1)
	}
	return kn.ps.lens[:2*k-1]
}

// DirectedDistance is Property 1 through the tier ladder.
func (kn *Kernels) DirectedDistance(x, y word.Word) (int, error) {
	if err := validatePair(x, y); err != nil {
		return 0, err
	}
	if x.Equal(y) {
		return 0, nil
	}
	k := x.Len()
	ti := kn.resolve(x.Base(), k)
	switch {
	case ti.tier == TierTable:
		return int(ti.tab.ddist[ti.tab.index(x, y)]), nil
	case ti.tier == TierPacked && ti.single:
		kn.ps.load(x, y)
		return k - packedOverlap1(kn.ps.x[0], kn.ps.y[0], k, ti.b), nil
	default:
		return kn.sc.DirectedDistance(x, y)
	}
}

// UndirectedDistance is Theorem 2 through the tier ladder.
func (kn *Kernels) UndirectedDistance(x, y word.Word) (int, error) {
	if err := validatePair(x, y); err != nil {
		return 0, err
	}
	if x.Equal(y) {
		return 0, nil
	}
	k := x.Len()
	ti := kn.resolve(x.Base(), k)
	switch ti.tier {
	case TierTable:
		return int(ti.tab.udist[ti.tab.index(x, y)]), nil
	case TierPacked:
		kn.ps.load(x, y)
		var dL, dR int
		if ti.single {
			dL, dR = packedDistance1(kn.ps.x[0], kn.ps.y[0], k, ti.b)
		} else {
			dL, dR = kn.ps.packedDistanceN(k, ti.b)
		}
		return clampDist(k, dL, dR), nil
	default:
		return kn.sc.UndirectedDistanceLinear(x, y)
	}
}

func clampDist(k, dL, dR int) int {
	d := dL
	if dR < d {
		d = dR
	}
	if k < d {
		d = k
	}
	return d
}

// RouteUndirected is Algorithm 2 through the tier ladder; only the
// returned path is allocated.
func (kn *Kernels) RouteUndirected(x, y word.Word) (Path, error) {
	if err := validatePair(x, y); err != nil {
		return nil, err
	}
	if x.Equal(y) {
		return Path{}, nil
	}
	ti := kn.resolve(x.Base(), x.Len())
	if ti.tier == TierTable {
		return ti.tab.appendRoute(nil, x, y), nil
	}
	aL, aR, err := kn.canonicalAnchors(x, y)
	if err != nil {
		return nil, err
	}
	return buildUndirectedPath(y, aL, aR), nil
}

// NextHopUndirected returns the first hop of the canonical Algorithm 2
// path with zero allocation.
func (kn *Kernels) NextHopUndirected(x, y word.Word) (Hop, bool, error) {
	if err := validatePair(x, y); err != nil {
		return Hop{}, false, err
	}
	if x.Equal(y) {
		return Hop{}, false, nil
	}
	ti := kn.resolve(x.Base(), x.Len())
	if ti.tier == TierTable {
		return ti.tab.nextHop(x, y), true, nil
	}
	aL, aR, err := kn.canonicalAnchors(x, y)
	if err != nil {
		return Hop{}, false, err
	}
	kn.sc.path = appendUndirectedPath(kn.sc.path[:0], y, aL, aR)
	if len(kn.sc.path) == 0 {
		return Hop{}, false, fmt.Errorf("core: empty route for distinct vertices %v, %v", x, y)
	}
	return kn.sc.path[0], true, nil
}

// NextHopDirected returns the optimal Algorithm 1 next hop with zero
// allocation.
func (kn *Kernels) NextHopDirected(x, y word.Word) (Hop, bool, error) {
	dist, err := kn.DirectedDistance(x, y)
	if err != nil || dist == 0 {
		return Hop{}, false, err
	}
	return L(y.Digit(y.Len() - dist)), true, nil
}

// Frame returns the engine's reusable batch frame, reset to empty.
// The frame shares the engine's buffers; use it from one goroutine,
// and do not interleave two frames on one engine.
func (kn *Kernels) Frame() *Frame {
	kn.fr.kn = kn
	kn.fr.reset()
	return &kn.fr
}

// Frame is batch-aware evaluation: Add packs each sub-query's
// operands once up front — deduplicating against the previous
// sub-query, so a batch walking one destination set packs each
// operand once — and the per-index evaluators reuse the packed forms
// instead of re-packing per call. Tiers and answers are identical to
// the scalar methods; the frame only amortizes operand preparation.
type Frame struct {
	kn    *Kernels
	buf   []uint64
	slots []frameSlot
}

// frameSlot is one added (src, dst) pair; px/py index the packed
// operands in the frame buffer, -1 when the pair's tier doesn't pack.
type frameSlot struct {
	x, y   word.Word
	px, py int32
	nw     int32
}

func (f *Frame) reset() {
	f.buf = f.buf[:0]
	f.slots = f.slots[:0]
}

// Len returns the number of added pairs.
func (f *Frame) Len() int { return len(f.slots) }

// Add appends a (src, dst) pair and returns its index. Packing is
// skipped when the pair's tier doesn't want packed operands and
// reused when src or dst repeats the previous pair's.
func (f *Frame) Add(x, y word.Word) (int, error) {
	if err := validatePair(x, y); err != nil {
		return 0, err
	}
	s := frameSlot{x: x, y: y, px: -1, py: -1}
	ti := f.kn.resolve(x.Base(), x.Len())
	if ti.tier == TierPacked {
		nw := int32(word.PackedWords(x.Base(), x.Len()))
		s.nw = nw
		if prev := f.prev(); prev != nil && prev.px >= 0 && prev.x.Equal(x) {
			s.px = prev.px
		} else {
			s.px = int32(len(f.buf))
			f.buf = x.AppendPacked(f.buf)
		}
		if prev := f.prev(); prev != nil && prev.py >= 0 && prev.y.Equal(y) {
			s.py = prev.py
		} else {
			s.py = int32(len(f.buf))
			f.buf = y.AppendPacked(f.buf)
		}
	}
	f.slots = append(f.slots, s)
	return len(f.slots) - 1, nil
}

func (f *Frame) prev() *frameSlot {
	if len(f.slots) == 0 {
		return nil
	}
	return &f.slots[len(f.slots)-1]
}

func (f *Frame) packed(s *frameSlot) (x, y []uint64) {
	return f.buf[s.px : s.px+s.nw], f.buf[s.py : s.py+s.nw]
}

// UndirectedDistance answers pair i, reusing its packed operands.
func (f *Frame) UndirectedDistance(i int) (int, error) {
	s := &f.slots[i]
	if s.x.Equal(s.y) {
		return 0, nil
	}
	k := s.x.Len()
	ti := f.kn.resolve(s.x.Base(), k)
	switch {
	case ti.tier == TierTable:
		return int(ti.tab.udist[ti.tab.index(s.x, s.y)]), nil
	case ti.tier == TierPacked && s.px >= 0:
		px, py := f.packed(s)
		var dL, dR int
		if ti.single {
			dL, dR = packedDistance1(px[0], py[0], k, ti.b)
		} else {
			sv := packedScratch{x: px, y: py}
			dL, dR = sv.packedDistanceN(k, ti.b)
		}
		return clampDist(k, dL, dR), nil
	default:
		return f.kn.UndirectedDistance(s.x, s.y)
	}
}

// DirectedDistance answers pair i, reusing its packed operands.
func (f *Frame) DirectedDistance(i int) (int, error) {
	s := &f.slots[i]
	if s.x.Equal(s.y) {
		return 0, nil
	}
	k := s.x.Len()
	ti := f.kn.resolve(s.x.Base(), k)
	switch {
	case ti.tier == TierTable:
		return int(ti.tab.ddist[ti.tab.index(s.x, s.y)]), nil
	case ti.tier == TierPacked && ti.single && s.px >= 0:
		px, py := f.packed(s)
		return k - packedOverlap1(px[0], py[0], k, ti.b), nil
	default:
		return f.kn.DirectedDistance(s.x, s.y)
	}
}

// RouteUndirected answers pair i; only the returned path allocates.
func (f *Frame) RouteUndirected(i int) (Path, error) {
	s := &f.slots[i]
	if s.x.Equal(s.y) {
		return Path{}, nil
	}
	ti := f.kn.resolve(s.x.Base(), s.x.Len())
	if ti.tier == TierTable {
		return ti.tab.appendRoute(nil, s.x, s.y), nil
	}
	aL, aR, err := f.anchors(s, ti)
	if err != nil {
		return nil, err
	}
	return buildUndirectedPath(s.y, aL, aR), nil
}

// NextHopUndirected answers pair i with zero allocation.
func (f *Frame) NextHopUndirected(i int) (Hop, bool, error) {
	s := &f.slots[i]
	if s.x.Equal(s.y) {
		return Hop{}, false, nil
	}
	ti := f.kn.resolve(s.x.Base(), s.x.Len())
	if ti.tier == TierTable {
		return ti.tab.nextHop(s.x, s.y), true, nil
	}
	aL, aR, err := f.anchors(s, ti)
	if err != nil {
		return Hop{}, false, err
	}
	kn := f.kn
	kn.sc.path = appendUndirectedPath(kn.sc.path[:0], s.y, aL, aR)
	if len(kn.sc.path) == 0 {
		return Hop{}, false, fmt.Errorf("core: empty route for distinct vertices %v, %v", s.x, s.y)
	}
	return kn.sc.path[0], true, nil
}

func (f *Frame) anchors(s *frameSlot, ti tierInfo) (anchor, anchor, error) {
	if ti.tier == TierPacked && ti.single && s.px >= 0 {
		px, py := f.packed(s)
		k := s.x.Len()
		aL, aR := packedAnchors1(px[0], py[0], k, ti.b, f.kn.lens(k))
		return aL, aR, nil
	}
	return f.kn.canonicalAnchors(s.x, s.y)
}
