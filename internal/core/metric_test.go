package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/word"
)

// Metric axioms of the distance functions: Theorem 2's distance is a
// metric on the vertex set; Property 1's directed distance is a
// quasimetric (no symmetry).

func TestUndirectedTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(3)
		k := 1 + rng.Intn(10)
		x := word.Random(d, k, rng)
		y := word.Random(d, k, rng)
		z := word.Random(d, k, rng)
		dxz, err := UndirectedDistance(x, z)
		if err != nil {
			return false
		}
		dxy, err := UndirectedDistance(x, y)
		if err != nil {
			return false
		}
		dyz, err := UndirectedDistance(y, z)
		if err != nil {
			return false
		}
		return dxz <= dxy+dyz
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDirectedTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(3)
		k := 1 + rng.Intn(10)
		x := word.Random(d, k, rng)
		y := word.Random(d, k, rng)
		z := word.Random(d, k, rng)
		dxz, err := DirectedDistance(x, z)
		if err != nil {
			return false
		}
		dxy, err := DirectedDistance(x, y)
		if err != nil {
			return false
		}
		dyz, err := DirectedDistance(y, z)
		if err != nil {
			return false
		}
		return dxz <= dxy+dyz
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOneHopChangesDistanceByAtMostOne(t *testing.T) {
	// |D(X,Z) - D(X',Z)| ≤ 1 for any neighbor X' of X (undirected).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(3)
		k := 1 + rng.Intn(10)
		x := word.Random(d, k, rng)
		z := word.Random(d, k, rng)
		var nb word.Word
		a := byte(rng.Intn(d))
		if rng.Intn(2) == 0 {
			nb = x.ShiftLeft(a)
		} else {
			nb = x.ShiftRight(a)
		}
		dx, err := UndirectedDistance(x, z)
		if err != nil {
			return false
		}
		dn, err := UndirectedDistance(nb, z)
		if err != nil {
			return false
		}
		diff := dx - dn
		if diff < 0 {
			diff = -diff
		}
		// A shift that lands on X itself (constant word) changes
		// nothing; otherwise the step is one edge.
		return diff <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestAllWildcardRealizationsAreShortest enumerates every concrete
// realization of a wildcard-bearing optimal path and checks each is a
// valid shortest path — the basis of the traffic-balancing remark.
func TestAllWildcardRealizationsAreShortest(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	tried := 0
	for tried < 60 {
		d := 2 + rng.Intn(2)
		k := 2 + rng.Intn(6)
		x, y := word.Random(d, k, rng), word.Random(d, k, rng)
		p, err := RouteUndirectedLinear(x, y)
		if err != nil {
			t.Fatal(err)
		}
		var stars []int
		for i, h := range p {
			if h.Wildcard {
				stars = append(stars, i)
			}
		}
		if len(stars) == 0 || len(stars) > 6 {
			continue
		}
		tried++
		want, err := UndirectedDistance(x, y)
		if err != nil {
			t.Fatal(err)
		}
		total := 1
		for range stars {
			total *= d
		}
		for mask := 0; mask < total; mask++ {
			conc := make(Path, len(p))
			copy(conc, p)
			m := mask
			for _, idx := range stars {
				conc[idx] = Hop{Type: p[idx].Type, Digit: byte(m % d)}
				m /= d
			}
			end, err := conc.Apply(x, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !end.Equal(y) {
				t.Fatalf("realization %v of %v does not reach %v", conc, p, y)
			}
			if conc.Len() != want {
				t.Fatalf("realization has %d hops, want %d", conc.Len(), want)
			}
		}
	}
}

// TestDistanceHammingUpperBound checks D(X,Y) ≤ k against a trivially
// different metric: distances never exceed the diameter even for
// adversarially similar words.
func TestDistanceDiameterBoundAdversarial(t *testing.T) {
	// Words differing in exactly one digit.
	rng := rand.New(rand.NewSource(64))
	for iter := 0; iter < 200; iter++ {
		d := 2 + rng.Intn(3)
		k := 1 + rng.Intn(12)
		x := word.Random(d, k, rng)
		digits := x.Digits()
		pos := rng.Intn(k)
		digits[pos] = byte((int(digits[pos]) + 1) % d)
		y, err := word.New(d, digits)
		if err != nil {
			t.Fatal(err)
		}
		ud, err := UndirectedDistance(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if ud < 1 || ud > k {
			t.Fatalf("one-digit change: distance %d outside [1,%d]", ud, k)
		}
		// Changing digit at position pos (0-based) needs at least
		// enough shifts to expose it: min(pos+1, k-pos) left-or-right
		// round trips — loose sanity: ≤ 2·min(pos+1, k-pos).
		reach := pos + 1
		if k-pos < reach {
			reach = k - pos
		}
		if ud > 2*reach {
			t.Fatalf("one-digit change at %d: distance %d exceeds 2·%d", pos, ud, reach)
		}
	}
}
