package core

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func TestDirectedMeanFormulaBinaryClosedForm(t *testing.T) {
	// For d = 2 equation (5) reduces to k - 1 + 2^{-k}.
	for k := 1; k <= 12; k++ {
		want := float64(k) - 1 + math.Pow(2, -float64(k))
		got := DirectedMeanFormula(2, k)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("δ(2,%d) = %v, want %v", k, got, want)
		}
	}
}

func TestDirectedMeanExactKnown(t *testing.T) {
	// Hand-enumerated DG(2,2): distance sum over the 16 ordered pairs
	// is 18, mean 1.125 (equation (5) gives 1.25 — see doc comment).
	res, err := DirectedMeanExact(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || res.Pairs != 16 {
		t.Fatalf("res = %+v", res)
	}
	if math.Abs(res.Mean-1.125) > 1e-12 {
		t.Errorf("exact δ(2,2) = %v, want 1.125", res.Mean)
	}
}

func TestDirectedMeanFormulaUpperBoundsExact(t *testing.T) {
	// The nested-overlap approximation can only overestimate: the true
	// ball sizes |{Y : D ≤ i}| are at least the formula's d^i.
	for _, dk := range [][2]int{{2, 2}, {2, 3}, {2, 4}, {2, 5}, {2, 6}, {3, 2}, {3, 3}, {4, 2}} {
		d, k := dk[0], dk[1]
		res, err := DirectedMeanExact(d, k)
		if err != nil {
			t.Fatal(err)
		}
		formula := DirectedMeanFormula(d, k)
		if res.Mean > formula+1e-12 {
			t.Errorf("DG(%d,%d): exact %v exceeds formula %v", d, k, res.Mean, formula)
		}
		// The overestimate stays below one hop (the union-bound
		// correction Σ_i [P(D ≤ i) - α^{k-i}] is < 1; measured gaps:
		// ≈0.55 at d=2,k=6, shrinking quickly as d grows — see
		// EXPERIMENTS.md E3).
		if formula-res.Mean >= 1.0 {
			t.Errorf("DG(%d,%d): gap %v unexpectedly large", d, k, formula-res.Mean)
		}
	}
}

func TestMeansAgreeWithGraphBFS(t *testing.T) {
	// The distance-function means must equal graph BFS means. Graph
	// AvgDistance excludes the diagonal; convert denominators.
	for _, dk := range [][2]int{{2, 3}, {2, 4}, {3, 2}, {3, 3}} {
		d, k := dk[0], dk[1]
		for _, kind := range []graph.Kind{graph.Directed, graph.Undirected} {
			g, err := graph.DeBruijn(kind, d, k)
			if err != nil {
				t.Fatal(err)
			}
			bfsMean, err := g.AvgDistance()
			if err != nil {
				t.Fatal(err)
			}
			var res MeanResult
			if kind == graph.Directed {
				res, err = DirectedMeanExact(d, k)
			} else {
				res, err = UndirectedMeanExact(d, k)
			}
			if err != nil {
				t.Fatal(err)
			}
			n := float64(g.NumVertices())
			want := bfsMean * (n * (n - 1)) / (n * n)
			if math.Abs(res.Mean-want) > 1e-9 {
				t.Errorf("%v DG(%d,%d): mean %v, BFS-derived %v", kind, d, k, res.Mean, want)
			}
		}
	}
}

func TestUndirectedMeanBelowDirected(t *testing.T) {
	for _, dk := range [][2]int{{2, 3}, {2, 5}, {3, 3}, {4, 2}} {
		dRes, err := DirectedMeanExact(dk[0], dk[1])
		if err != nil {
			t.Fatal(err)
		}
		uRes, err := UndirectedMeanExact(dk[0], dk[1])
		if err != nil {
			t.Fatal(err)
		}
		if uRes.Mean > dRes.Mean+1e-12 {
			t.Errorf("DG(%d,%d): undirected mean %v above directed %v", dk[0], dk[1], uRes.Mean, dRes.Mean)
		}
	}
}

func TestMeanExactRefusesLargeGraphs(t *testing.T) {
	if _, err := DirectedMeanExact(2, 13); err == nil {
		t.Error("exact mean accepted 8192 vertices")
	}
	if _, err := UndirectedDistanceDistribution(2, 13); err == nil {
		t.Error("distribution accepted 8192 vertices")
	}
}

func TestSampledMeanConvergesToExact(t *testing.T) {
	exact, err := UndirectedMeanExact(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := UndirectedMeanSampled(2, 6, 20000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if sampled.Exact {
		t.Error("sampled result claims exactness")
	}
	if diff := math.Abs(sampled.Mean - exact.Mean); diff > 5*sampled.StdErr+0.02 {
		t.Errorf("sampled %v vs exact %v: diff %v, stderr %v", sampled.Mean, exact.Mean, diff, sampled.StdErr)
	}
	if sampled.StdErr <= 0 {
		t.Error("sampled stderr not positive")
	}
}

func TestSampledMeanDeterministicGivenSeed(t *testing.T) {
	a, err := DirectedMeanSampled(3, 8, 500, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DirectedMeanSampled(3, 8, 500, 99)
	if err != nil {
		t.Fatal(err)
	}
	if a.Mean != b.Mean {
		t.Error("sampled mean not deterministic for equal seeds")
	}
	if _, err := DirectedMeanSampled(3, 8, 0, 1); err == nil {
		t.Error("accepted zero samples")
	}
}

func TestDistributionsSumToAllPairs(t *testing.T) {
	for _, dk := range [][2]int{{2, 3}, {2, 5}, {3, 3}} {
		d, k := dk[0], dk[1]
		n := 1
		for i := 0; i < k; i++ {
			n *= d
		}
		for name, f := range map[string]func(d, k int) ([]int, error){
			"directed":   DirectedDistanceDistribution,
			"undirected": UndirectedDistanceDistribution,
		} {
			counts, err := f(d, k)
			if err != nil {
				t.Fatal(err)
			}
			sum := 0
			for _, c := range counts {
				sum += c
			}
			if sum != n*n {
				t.Errorf("%s DG(%d,%d): distribution sums to %d, want %d", name, d, k, sum, n*n)
			}
			if counts[0] != n {
				t.Errorf("%s DG(%d,%d): %d pairs at distance 0, want %d", name, d, k, counts[0], n)
			}
		}
	}
}

func TestDirectedDistributionMatchesOverlapCounting(t *testing.T) {
	// Property 1 structure: the number of ordered pairs with D ≤ i is
	// at least N·d^i (Y agreeing with X on the length k-i overlap).
	counts, err := DirectedDistanceDistribution(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	n := 16
	cum := 0
	pow := 1
	for i := 0; i <= 4; i++ {
		cum += counts[i]
		if cum < n*pow {
			t.Errorf("cumulative pairs at D ≤ %d is %d, below N·d^i = %d", i, cum, n*pow)
		}
		pow *= 2
	}
	if cum != n*n {
		t.Errorf("total %d", cum)
	}
}
