package core

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/word"
)

// TestPackedAnchorsMatchQuadratic pins the packed anchor kernel to the
// quadratic sweep byte for byte — distances, the winning (s, t, θ), and
// the row-major tie-break — exhaustively on small graphs and on random
// plus adversarial near-periodic operands at single-word sizes.
func TestPackedAnchorsMatchQuadratic(t *testing.T) {
	var sc Scratch
	var ps packedScratch
	check := func(x, y word.Word) {
		t.Helper()
		if x.Equal(y) {
			return // handled before the kernels in every caller
		}
		d, k := x.Base(), x.Len()
		sc.loadDigits(x, y)
		wantL, wantR := sc.anchorsQuadratic(sc.xd, sc.yd)
		ps.load(x, y)
		lens := make([]int16, 2*k-1)
		gotL, gotR := packedAnchors1(ps.x[0], ps.y[0], k, word.PackedBits(d), lens)
		if gotL != wantL || gotR != wantR {
			t.Fatalf("DG(%d,%d) %v -> %v:\n  packed L=%+v R=%+v\n  quad   L=%+v R=%+v",
				d, k, x, y, gotL, gotR, wantL, wantR)
		}
	}

	for _, tc := range []struct{ d, maxK int }{{2, 8}, {3, 4}, {4, 4}} {
		for k := 1; k <= tc.maxK; k++ {
			words := allWords(t, tc.d, k)
			for _, x := range words {
				for _, y := range words {
					check(x, y)
				}
			}
		}
	}

	rng := rand.New(rand.NewSource(11))
	for _, tc := range []struct{ d, k, n int }{
		{2, 64, 500}, {2, 63, 300}, {2, 33, 300}, {2, 17, 300},
		{3, 32, 300}, {3, 20, 300}, {4, 32, 300}, {4, 15, 300},
	} {
		for i := 0; i < tc.n; i++ {
			check(word.Random(tc.d, tc.k, rng), word.Random(tc.d, tc.k, rng))
		}
	}

	// Near-periodic words maximize run counts and tie density.
	for _, k := range []int{64, 63, 48, 32} {
		for _, p := range []int{1, 2, 3, 4, 8} {
			xd := make([]byte, k)
			yd := make([]byte, k)
			zd := make([]byte, k)
			for i := range xd {
				xd[i] = byte(i / p % 2)
				yd[i] = byte((i + 1) / p % 2)
				zd[i] = byte(i / p % 2)
			}
			zd[k-1] ^= 1
			x, y, z := word.MustNew(2, xd), word.MustNew(2, yd), word.MustNew(2, zd)
			check(x, y)
			check(y, x)
			check(x, z)
			check(z, x)
		}
	}
}

// TestPackedDistanceMatchesLinear pins both center-digit distance
// kernels (single- and multi-word) to the linear scratch evaluation.
// The single-word sizes also run through the multi-word path, so its
// window edge cases are exercised where a second oracle exists.
func TestPackedDistanceMatchesLinear(t *testing.T) {
	var sc Scratch
	var ps packedScratch
	check := func(x, y word.Word) {
		t.Helper()
		if x.Equal(y) {
			return
		}
		d, k := x.Base(), x.Len()
		b := word.PackedBits(d)
		want, err := sc.UndirectedDistanceLinear(x, y)
		if err != nil {
			t.Fatal(err)
		}
		ps.load(x, y)
		if packedSingleWord(d, k) {
			dL, dR := packedDistance1(ps.x[0], ps.y[0], k, b)
			if got := clampDist(k, dL, dR); got != want {
				t.Fatalf("packedDistance1 DG(%d,%d) %v -> %v: got %d, want %d", d, k, x, y, got, want)
			}
		}
		dL, dR := ps.packedDistanceN(k, b)
		if got := clampDist(k, dL, dR); got != want {
			t.Fatalf("packedDistanceN DG(%d,%d) %v -> %v: got %d, want %d", d, k, x, y, got, want)
		}
	}

	for _, tc := range []struct{ d, maxK int }{{2, 8}, {3, 4}, {4, 4}} {
		for k := 1; k <= tc.maxK; k++ {
			words := allWords(t, tc.d, k)
			for _, x := range words {
				for _, y := range words {
					check(x, y)
				}
			}
		}
	}

	rng := rand.New(rand.NewSource(13))
	for _, tc := range []struct{ d, k, n int }{
		{2, 64, 400}, {2, 65, 200}, {2, 100, 200}, {2, 128, 100},
		{2, 129, 100}, {2, 511, 50}, {2, 1024, 30},
		{3, 32, 200}, {3, 33, 100}, {3, 100, 100}, {3, 512, 30},
		{4, 32, 200}, {4, 33, 100}, {4, 200, 50}, {4, 512, 30},
	} {
		for i := 0; i < tc.n; i++ {
			check(word.Random(tc.d, tc.k, rng), word.Random(tc.d, tc.k, rng))
		}
	}

	// Near-periodic operands at multi-word sizes: long runs crossing
	// element boundaries.
	for _, tc := range []struct{ d, k int }{{2, 100}, {2, 130}, {4, 40}, {3, 70}} {
		for _, p := range []int{1, 2, 7, 13} {
			xd := make([]byte, tc.k)
			yd := make([]byte, tc.k)
			for i := range xd {
				xd[i] = byte(i / p % 2)
				yd[i] = byte((i + 3) / p % 2)
			}
			check(word.MustNew(tc.d, xd), word.MustNew(tc.d, yd))
		}
	}
}

// TestPackedOverlapMatchesDirected pins the packed suffix/prefix scan
// to Property 1's Morris-Pratt evaluation.
func TestPackedOverlapMatchesDirected(t *testing.T) {
	var sc Scratch
	var ps packedScratch
	check := func(x, y word.Word) {
		t.Helper()
		if x.Equal(y) {
			return
		}
		d, k := x.Base(), x.Len()
		want, err := sc.DirectedDistance(x, y)
		if err != nil {
			t.Fatal(err)
		}
		ps.load(x, y)
		if got := k - packedOverlap1(ps.x[0], ps.y[0], k, word.PackedBits(d)); got != want {
			t.Fatalf("packedOverlap1 DG(%d,%d) %v -> %v: got %d, want %d", d, k, x, y, got, want)
		}
	}
	for _, tc := range []struct{ d, maxK int }{{2, 8}, {3, 4}, {4, 4}} {
		for k := 1; k <= tc.maxK; k++ {
			words := allWords(t, tc.d, k)
			for _, x := range words {
				for _, y := range words {
					check(x, y)
				}
			}
		}
	}
	rng := rand.New(rand.NewSource(17))
	for _, tc := range []struct{ d, k, n int }{{2, 64, 400}, {2, 40, 200}, {3, 32, 200}, {4, 32, 200}} {
		for i := 0; i < tc.n; i++ {
			x, y := word.Random(tc.d, tc.k, rng), word.Random(tc.d, tc.k, rng)
			check(x, y)
			// Force large overlaps: y = shifted x.
			for a := 0; a < tc.d; a++ {
				check(x, x.ShiftLeft(byte(a)))
			}
		}
	}
}

// TestKernelsTierSelection pins the ladder: exact tier per (d, k,
// budget) permutation.
func TestKernelsTierSelection(t *testing.T) {
	def := NewKernels(KernelConfig{SyncTableBuild: true})
	for _, tc := range []struct {
		d, k int
		want Tier
	}{
		{2, 6, TierTable},   // 7·64² = 28 KiB fits the default MiB
		{3, 4, TierTable},   // 7·81² = 45 KiB
		{2, 64, TierPacked}, // 7·(2^64)² overflows; 64 bits pack
		{2, 1024, TierPacked},
		{2, 1025, TierScratch}, // past maxPackedBits
		{3, 512, TierPacked},   // 1024 packed bits exactly
		{3, 513, TierScratch},
		{4, 512, TierPacked},
		{5, 4, TierScratch}, // 7·625² = 2.7 MiB over budget; base 5 doesn't pack
		{7, 30, TierScratch},
	} {
		if got := def.TierFor(tc.d, tc.k); got != tc.want {
			t.Errorf("default budget: TierFor(%d,%d) = %v, want %v", tc.d, tc.k, got, tc.want)
		}
	}

	noTable := NewKernels(KernelConfig{TableBudget: -1})
	if got := noTable.TierFor(2, 6); got != TierPacked {
		t.Errorf("TableBudget<0: TierFor(2,6) = %v, want packed", got)
	}
	scratchOnly := NewKernels(KernelConfig{TableBudget: -1, DisablePacked: true})
	if got := scratchOnly.TierFor(2, 6); got != TierScratch {
		t.Errorf("scratch-only: TierFor(2,6) = %v, want scratch", got)
	}

	// The budget boundary is exact: DG(2,6) needs 7·64² = 28672 bytes.
	size, ok := tableSize(2, 6)
	if !ok || size != 28672 {
		t.Fatalf("tableSize(2,6) = %d,%v, want 28672,true", size, ok)
	}
	under := NewKernels(KernelConfig{TableBudget: size - 1, SyncTableBuild: true})
	if got := under.TierFor(2, 6); got != TierPacked {
		t.Errorf("budget size-1: TierFor(2,6) = %v, want packed", got)
	}
	at := NewKernels(KernelConfig{TableBudget: size, SyncTableBuild: true})
	if got := at.TierFor(2, 6); got != TierTable {
		t.Errorf("budget size: TierFor(2,6) = %v, want table", got)
	}

	// Asynchronous build: the first query may fall back, but the tier
	// upgrades once the build lands — the pending fallback must not be
	// memoized.
	async := NewKernels(KernelConfig{})
	deadline := time.Now().Add(5 * time.Second)
	for async.TierFor(2, 5) != TierTable {
		if time.Now().After(deadline) {
			t.Fatal("async table build for DG(2,5) never landed")
		}
		time.Sleep(time.Millisecond)
	}
}

// kernelRefRoute is the canonical Algorithm 2 path for DG(d,k): the
// quadratic sweep's in the single-word regime, the suffix-tree walk's
// otherwise — computed entirely outside the tier engine.
func kernelRefRoute(t testing.TB, x, y word.Word) Path {
	t.Helper()
	var p Path
	var err error
	if packedSingleWord(x.Base(), x.Len()) {
		p, err = RouteUndirected(x, y)
	} else {
		p, err = RouteUndirectedLinear(x, y)
	}
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestKernelsMatchScratch runs the full engine over every tier and
// compares each answer with the tier-free reference evaluations.
func TestKernelsMatchScratch(t *testing.T) {
	var sc Scratch
	rng := rand.New(rand.NewSource(23))
	for _, tc := range []struct {
		name string
		d, k int
		cfg  KernelConfig
		want Tier
	}{
		{"table-2-6", 2, 6, KernelConfig{SyncTableBuild: true}, TierTable},
		{"table-3-4", 3, 4, KernelConfig{SyncTableBuild: true}, TierTable},
		{"packed-2-12", 2, 12, KernelConfig{TableBudget: -1}, TierPacked},
		{"packed-2-64", 2, 64, KernelConfig{TableBudget: -1}, TierPacked},
		{"packed-4-20", 4, 20, KernelConfig{TableBudget: -1}, TierPacked},
		{"packed-3-25", 3, 25, KernelConfig{TableBudget: -1}, TierPacked},
		{"packed-multi-2-100", 2, 100, KernelConfig{TableBudget: -1}, TierPacked},
		{"packed-multi-4-40", 4, 40, KernelConfig{TableBudget: -1}, TierPacked},
		{"scratch-5-4", 5, 4, KernelConfig{TableBudget: -1}, TierScratch},
		{"scratch-2-12", 2, 12, KernelConfig{TableBudget: -1, DisablePacked: true}, TierScratch},
	} {
		t.Run(tc.name, func(t *testing.T) {
			kn := NewKernels(tc.cfg)
			if got := kn.TierFor(tc.d, tc.k); got != tc.want {
				t.Fatalf("TierFor(%d,%d) = %v, want %v", tc.d, tc.k, got, tc.want)
			}
			var pairs [][2]word.Word
			if n, _ := word.Count(tc.d, tc.k); n > 0 && n <= 100 {
				words := allWords(t, tc.d, tc.k)
				for _, x := range words {
					for _, y := range words {
						pairs = append(pairs, [2]word.Word{x, y})
					}
				}
			} else {
				for i := 0; i < 200; i++ {
					x := word.Random(tc.d, tc.k, rng)
					y := word.Random(tc.d, tc.k, rng)
					pairs = append(pairs, [2]word.Word{x, y}, [2]word.Word{x, x})
				}
			}
			for _, p := range pairs {
				x, y := p[0], p[1]
				wantU, err := sc.UndirectedDistanceLinear(x, y)
				if err != nil {
					t.Fatal(err)
				}
				if x.Equal(y) {
					wantU = 0
				}
				gotU, err := kn.UndirectedDistance(x, y)
				if err != nil {
					t.Fatal(err)
				}
				if gotU != wantU {
					t.Fatalf("UndirectedDistance %v -> %v: got %d, want %d", x, y, gotU, wantU)
				}
				wantD, err := sc.DirectedDistance(x, y)
				if err != nil {
					t.Fatal(err)
				}
				gotD, err := kn.DirectedDistance(x, y)
				if err != nil {
					t.Fatal(err)
				}
				if gotD != wantD {
					t.Fatalf("DirectedDistance %v -> %v: got %d, want %d", x, y, gotD, wantD)
				}
				gotP, err := kn.RouteUndirected(x, y)
				if err != nil {
					t.Fatal(err)
				}
				if x.Equal(y) {
					if len(gotP) != 0 {
						t.Fatalf("RouteUndirected %v -> %v: non-empty %v", x, y, gotP)
					}
				} else {
					wantP := kernelRefRoute(t, x, y)
					if !reflect.DeepEqual(gotP, wantP) {
						t.Fatalf("RouteUndirected %v -> %v:\n  got  %v\n  want %v", x, y, gotP, wantP)
					}
					gotH, ok, err := kn.NextHopUndirected(x, y)
					if err != nil || !ok {
						t.Fatalf("NextHopUndirected %v -> %v: ok=%v err=%v", x, y, ok, err)
					}
					if gotH != wantP[0] {
						t.Fatalf("NextHopUndirected %v -> %v: got %v, want %v", x, y, gotH, wantP[0])
					}
					wantDH, wantOK, err := NextHopDirected(x, y)
					if err != nil {
						t.Fatal(err)
					}
					gotDH, gotOK, err := kn.NextHopDirected(x, y)
					if err != nil || gotOK != wantOK || gotDH != wantDH {
						t.Fatalf("NextHopDirected %v -> %v: got %v,%v,%v want %v,%v", x, y, gotDH, gotOK, err, wantDH, wantOK)
					}
				}
			}
		})
	}
}

// TestFrameMatchesScalar pins the batch frame to the scalar methods on
// every tier, and checks operand dedup actually shares packed forms.
func TestFrameMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for _, tc := range []struct {
		name string
		d, k int
		cfg  KernelConfig
	}{
		{"packed-2-64", 2, 64, KernelConfig{TableBudget: -1}},
		{"packed-multi-2-100", 2, 100, KernelConfig{TableBudget: -1}},
		{"packed-4-20", 4, 20, KernelConfig{TableBudget: -1}},
		{"table-2-6", 2, 6, KernelConfig{SyncTableBuild: true}},
		{"scratch-5-4", 5, 4, KernelConfig{TableBudget: -1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			kn := NewKernels(tc.cfg)
			ref := NewKernels(tc.cfg)
			// A batch shaped like real traffic: one source against a
			// run of destinations, consecutive repeats included.
			src := word.Random(tc.d, tc.k, rng)
			var qs [][2]word.Word
			prev := src
			for i := 0; i < 12; i++ {
				dst := word.Random(tc.d, tc.k, rng)
				qs = append(qs, [2]word.Word{src, dst}, [2]word.Word{src, dst}, [2]word.Word{prev, dst})
				prev = dst
			}
			qs = append(qs, [2]word.Word{src, src})
			f := kn.Frame()
			for _, q := range qs {
				if _, err := f.Add(q[0], q[1]); err != nil {
					t.Fatal(err)
				}
			}
			if f.Len() != len(qs) {
				t.Fatalf("Len = %d, want %d", f.Len(), len(qs))
			}
			if kn.TierFor(tc.d, tc.k) == TierPacked {
				// Slots 0 and 1 share src and dst; slot 1 must reuse
				// both packed forms.
				if f.slots[1].px != f.slots[0].px || f.slots[1].py != f.slots[0].py {
					t.Fatalf("consecutive identical pair not deduped: %+v vs %+v", f.slots[1], f.slots[0])
				}
			}
			for i, q := range qs {
				x, y := q[0], q[1]
				wantU, err := ref.UndirectedDistance(x, y)
				if err != nil {
					t.Fatal(err)
				}
				gotU, err := f.UndirectedDistance(i)
				if err != nil || gotU != wantU {
					t.Fatalf("frame UndirectedDistance[%d] %v -> %v: got %d,%v want %d", i, x, y, gotU, err, wantU)
				}
				wantD, err := ref.DirectedDistance(x, y)
				if err != nil {
					t.Fatal(err)
				}
				gotD, err := f.DirectedDistance(i)
				if err != nil || gotD != wantD {
					t.Fatalf("frame DirectedDistance[%d] %v -> %v: got %d,%v want %d", i, x, y, gotD, err, wantD)
				}
				wantP, err := ref.RouteUndirected(x, y)
				if err != nil {
					t.Fatal(err)
				}
				gotP, err := f.RouteUndirected(i)
				if err != nil || !reflect.DeepEqual(gotP, wantP) {
					t.Fatalf("frame RouteUndirected[%d] %v -> %v:\n  got  %v (%v)\n  want %v", i, x, y, gotP, err, wantP)
				}
				wantH, wantOK, err := ref.NextHopUndirected(x, y)
				if err != nil {
					t.Fatal(err)
				}
				gotH, gotOK, err := f.NextHopUndirected(i)
				if err != nil || gotOK != wantOK || gotH != wantH {
					t.Fatalf("frame NextHopUndirected[%d] %v -> %v: got %v,%v,%v want %v,%v", i, x, y, gotH, gotOK, err, wantH, wantOK)
				}
			}
			// Reset reuses the buffers and clears the slots.
			f2 := kn.Frame()
			if f2.Len() != 0 {
				t.Fatalf("fresh frame Len = %d", f2.Len())
			}
		})
	}
}

// TestKernelAllocBudgets pins the hot paths to their allocation
// budgets: zero for distances and next hops on the packed and table
// tiers, one (the returned path) for routes.
func TestKernelAllocBudgets(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	type probe struct {
		name string
		kn   *Kernels
		x, y word.Word
	}
	probes := []probe{
		{"packed-2-64", NewKernels(KernelConfig{TableBudget: -1}), word.Random(2, 64, rng), word.Random(2, 64, rng)},
		{"packed-4-32", NewKernels(KernelConfig{TableBudget: -1}), word.Random(4, 32, rng), word.Random(4, 32, rng)},
		{"packed-multi-2-200", NewKernels(KernelConfig{TableBudget: -1}), word.Random(2, 200, rng), word.Random(2, 200, rng)},
		{"table-2-6", NewKernels(KernelConfig{SyncTableBuild: true}), word.Random(2, 6, rng), word.Random(2, 6, rng)},
	}
	for _, p := range probes {
		t.Run(p.name, func(t *testing.T) {
			kn, x, y := p.kn, p.x, p.y
			if _, err := kn.UndirectedDistance(x, y); err != nil {
				t.Fatal(err)
			}
			if _, _, err := kn.NextHopUndirected(x, y); err != nil {
				t.Fatal(err)
			}
			if a := testing.AllocsPerRun(200, func() {
				if _, err := kn.UndirectedDistance(x, y); err != nil {
					t.Fatal(err)
				}
			}); a != 0 {
				t.Errorf("UndirectedDistance: %v allocs/op, want 0", a)
			}
			if a := testing.AllocsPerRun(200, func() {
				if _, err := kn.DirectedDistance(x, y); err != nil {
					t.Fatal(err)
				}
			}); a != 0 {
				t.Errorf("DirectedDistance: %v allocs/op, want 0", a)
			}
			if a := testing.AllocsPerRun(200, func() {
				if _, _, err := kn.NextHopUndirected(x, y); err != nil {
					t.Fatal(err)
				}
			}); a != 0 {
				t.Errorf("NextHopUndirected: %v allocs/op, want 0", a)
			}
			if a := testing.AllocsPerRun(200, func() {
				if _, err := kn.RouteUndirected(x, y); err != nil {
					t.Fatal(err)
				}
			}); a > 1 {
				t.Errorf("RouteUndirected: %v allocs/op, want <= 1", a)
			}
		})
	}

	// The frame: once warm, a whole add-and-evaluate batch allocates
	// nothing (paths excepted, so the batch below asks distances and
	// next hops only).
	t.Run("frame-batch", func(t *testing.T) {
		kn := NewKernels(KernelConfig{TableBudget: -1})
		src := word.Random(2, 64, rng)
		dsts := make([]word.Word, 16)
		for i := range dsts {
			dsts[i] = word.Random(2, 64, rng)
		}
		batch := func() {
			f := kn.Frame()
			for _, d := range dsts {
				i, err := f.Add(src, d)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.UndirectedDistance(i); err != nil {
					t.Fatal(err)
				}
				if _, _, err := f.NextHopUndirected(i); err != nil {
					t.Fatal(err)
				}
			}
		}
		batch() // warm the frame buffers
		if a := testing.AllocsPerRun(100, batch); a != 0 {
			t.Errorf("warm frame batch: %v allocs/run, want 0", a)
		}
	})
}
