package core

import (
	"math/rand"
	"slices"
	"testing"

	"repro/internal/graph"
	"repro/internal/word"
)

// FuzzDistanceEquivalence throws arbitrary digit material at the three
// undirected distance evaluations and the route generators: they must
// agree with each other and produce walks of the claimed length.
func FuzzDistanceEquivalence(f *testing.F) {
	f.Add(uint8(2), []byte{0, 1, 1, 0}, []byte{1, 0, 0, 1})
	f.Add(uint8(3), []byte{0, 1, 2}, []byte{2, 1, 0})
	f.Add(uint8(2), []byte{0}, []byte{1})
	f.Fuzz(func(t *testing.T, base uint8, xd, yd []byte) {
		if len(xd) != len(yd) || len(xd) == 0 || len(xd) > 64 {
			return
		}
		x, err := word.New(int(base), xd)
		if err != nil {
			return
		}
		y, err := word.New(int(base), yd)
		if err != nil {
			return
		}
		quad, err := UndirectedDistance(x, y)
		if err != nil {
			t.Fatal(err)
		}
		lin, err := UndirectedDistanceLinear(x, y)
		if err != nil {
			t.Fatal(err)
		}
		cor, err := UndirectedDistanceCorollary(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if quad != lin || quad != cor {
			t.Fatalf("distances disagree for (%v,%v): quad %d lin %d cor %d", x, y, quad, lin, cor)
		}
		for name, route := range map[string]func(a, b word.Word) (Path, error){
			"alg2": RouteUndirected,
			"alg4": RouteUndirectedLinear,
		} {
			p, err := route(x, y)
			if err != nil {
				t.Fatal(err)
			}
			if p.Len() != quad {
				t.Fatalf("%s: path length %d, want %d", name, p.Len(), quad)
			}
			end, err := p.Apply(x, FirstDigit)
			if err != nil {
				t.Fatal(err)
			}
			if !end.Equal(y) {
				t.Fatalf("%s: walk ends at %v, want %v", name, end, y)
			}
		}
	})
}

// FuzzDirectedAgainstBFS compares Property 1 with BFS on small graphs
// reachable from fuzzed digit material.
func FuzzDirectedAgainstBFS(f *testing.F) {
	f.Add([]byte{0, 1, 1}, []byte{1, 1, 0})
	f.Fuzz(func(t *testing.T, xd, yd []byte) {
		if len(xd) != len(yd) || len(xd) == 0 || len(xd) > 8 {
			return
		}
		x, err := word.New(2, xd)
		if err != nil {
			return
		}
		y, err := word.New(2, yd)
		if err != nil {
			return
		}
		got, err := DirectedDistance(x, y)
		if err != nil {
			t.Fatal(err)
		}
		g, err := graph.DeBruijn(graph.Directed, 2, x.Len())
		if err != nil {
			t.Fatal(err)
		}
		want, err := g.Distance(graph.DeBruijnVertex(x), graph.DeBruijnVertex(y))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("D(%v,%v) = %d, BFS %d", x, y, got, want)
		}
	})
}

// FuzzKernelTierEquivalence throws arbitrary digit material at the
// tier ladder: a scratch-forced, a packed-forced, and a table-admitting
// engine (plus the packed engine's batch frame) must return identical
// distances, paths, and next hops for every input.
func FuzzKernelTierEquivalence(f *testing.F) {
	f.Add(uint8(2), []byte{0, 1, 1, 0, 1, 0}, []byte{1, 0, 0, 1, 1, 1})
	f.Add(uint8(3), []byte{0, 1, 2, 2}, []byte{2, 1, 0, 0})
	f.Add(uint8(4), []byte{0, 3, 1, 2}, []byte{2, 0, 3, 1})
	f.Add(uint8(2), []byte{0}, []byte{1})
	f.Fuzz(func(t *testing.T, base uint8, xd, yd []byte) {
		if len(xd) != len(yd) || len(xd) == 0 || len(xd) > 96 {
			return
		}
		if base < 2 || base > 6 {
			return
		}
		x, err := word.New(int(base), xd)
		if err != nil {
			return
		}
		y, err := word.New(int(base), yd)
		if err != nil {
			return
		}
		engines := map[string]*Kernels{
			"scratch": NewKernels(KernelConfig{TableBudget: -1, DisablePacked: true}),
			"packed":  NewKernels(KernelConfig{TableBudget: -1}),
			"table":   NewKernels(KernelConfig{SyncTableBuild: true}),
		}
		ref := engines["scratch"]
		wantU, err := ref.UndirectedDistance(x, y)
		if err != nil {
			t.Fatal(err)
		}
		wantD, err := ref.DirectedDistance(x, y)
		if err != nil {
			t.Fatal(err)
		}
		wantP, err := ref.RouteUndirected(x, y)
		if err != nil {
			t.Fatal(err)
		}
		wantH, wantOK, err := ref.NextHopUndirected(x, y)
		if err != nil {
			t.Fatal(err)
		}
		for name, kn := range engines {
			gotU, err := kn.UndirectedDistance(x, y)
			if err != nil || gotU != wantU {
				t.Fatalf("%s: UndirectedDistance(%v,%v) = %d,%v want %d", name, x, y, gotU, err, wantU)
			}
			gotD, err := kn.DirectedDistance(x, y)
			if err != nil || gotD != wantD {
				t.Fatalf("%s: DirectedDistance(%v,%v) = %d,%v want %d", name, x, y, gotD, err, wantD)
			}
			gotP, err := kn.RouteUndirected(x, y)
			if err != nil || !slices.Equal(gotP, wantP) {
				t.Fatalf("%s: RouteUndirected(%v,%v) = %v,%v want %v", name, x, y, gotP, err, wantP)
			}
			gotH, gotOK, err := kn.NextHopUndirected(x, y)
			if err != nil || gotOK != wantOK || gotH != wantH {
				t.Fatalf("%s: NextHopUndirected(%v,%v) = %v,%v,%v want %v,%v", name, x, y, gotH, gotOK, err, wantH, wantOK)
			}
			fr := kn.Frame()
			i, err := fr.Add(x, y)
			if err != nil {
				t.Fatal(err)
			}
			gotU, err = fr.UndirectedDistance(i)
			if err != nil || gotU != wantU {
				t.Fatalf("%s frame: UndirectedDistance(%v,%v) = %d,%v want %d", name, x, y, gotU, err, wantU)
			}
			gotH, gotOK, err = fr.NextHopUndirected(i)
			if err != nil || gotOK != wantOK || gotH != wantH {
				t.Fatalf("%s frame: NextHopUndirected(%v,%v) = %v,%v,%v want %v,%v", name, x, y, gotH, gotOK, err, wantH, wantOK)
			}
		}
	})
}

// FuzzFaultReroute drives the arborescence fault router with
// arbitrary failure sets strictly smaller than the tree count: no
// such set may strand a pair. Delivered walks must stay within the
// hop bound, cross only live real arcs, and convert to a concrete
// detour path that replays src→dst.
func FuzzFaultReroute(f *testing.F) {
	f.Add(uint8(2), uint8(4), uint16(3), uint16(9), int64(1))
	f.Add(uint8(3), uint8(3), uint16(0), uint16(25), int64(7))
	f.Add(uint8(4), uint8(2), uint16(15), uint16(1), int64(-3))
	f.Add(uint8(5), uint8(1), uint16(2), uint16(4), int64(11))
	f.Fuzz(func(t *testing.T, d, k uint8, srcRaw, dstRaw uint16, seed int64) {
		if d < 2 || d > 6 || k < 1 || k > 6 {
			return
		}
		fr, err := NewFaultRouter(int(d), int(k))
		if err != nil {
			return // oversize (d,k), not a finding
		}
		n := fr.NumVertices()
		src, dst := int(srcRaw)%n, int(dstRaw)%n
		g := fr.Graph()

		// Derive a failure set of size < Trees from the seed.
		rng := rand.New(rand.NewSource(seed))
		fcount := 0
		if fr.Trees() > 1 {
			fcount = rng.Intn(fr.Trees())
		}
		set := map[[2]int]bool{}
		for len(set) < fcount {
			u := rng.Intn(n)
			nbrs := g.OutNeighbors(u)
			if len(nbrs) == 0 {
				return
			}
			set[[2]int{u, int(nbrs[rng.Intn(len(nbrs))])}] = true
		}
		failed := func(u, v int) bool { return set[[2]int{u, v}] }

		w, err := fr.Walk(src, dst, failed)
		if err != nil {
			t.Fatal(err)
		}
		if !w.Delivered {
			t.Fatalf("DG(%d,%d) %d→%d stranded by %d < %d failures: %s", d, k, src, dst, fcount, fr.Trees(), w.Reason)
		}
		if w.Hops > fr.HopBound() {
			t.Fatalf("walk took %d hops, bound %d", w.Hops, fr.HopBound())
		}
		for i := 1; i < len(w.Verts); i++ {
			u, v := int(w.Verts[i-1]), int(w.Verts[i])
			if !g.HasEdge(u, v) || failed(u, v) {
				t.Fatalf("walk crossed dead arc %d→%d", u, v)
			}
		}
		sw, err := word.Unrank(int(d), int(k), uint64(src))
		if err != nil {
			t.Fatal(err)
		}
		dw, err := word.Unrank(int(d), int(k), uint64(dst))
		if err != nil {
			t.Fatal(err)
		}
		p, _, err := fr.DetourPath(sw, dw, failed)
		if err != nil {
			t.Fatal(err)
		}
		end, err := p.Apply(sw, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !end.Equal(dw) {
			t.Fatalf("detour path ends at %v, want %v", end, dw)
		}
	})
}
