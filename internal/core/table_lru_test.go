package core

import (
	"testing"

	"repro/internal/word"
)

// resetTableStore empties the process-wide table store and sets the
// cap, returning a restore func. The store is package-global, so
// these tests must not run in parallel with anything that builds
// tables — none of the core tests use t.Parallel.
func resetTableStore(t *testing.T, cap int64) {
	t.Helper()
	tableStore.Lock()
	oldCap := tableStoreCap
	tableStore.m = map[tableKey]*tableEntry{}
	tableStore.bytes = 0
	tableStore.clock = 0
	tableStoreCap = cap
	tableStore.Unlock()
	t.Cleanup(func() {
		tableStore.Lock()
		tableStore.m = map[tableKey]*tableEntry{}
		tableStore.bytes = 0
		tableStore.clock = 0
		tableStoreCap = oldCap
		tableStore.Unlock()
	})
}

func tableStoreState() (keys map[tableKey]bool, bytes int64) {
	tableStore.Lock()
	defer tableStore.Unlock()
	keys = make(map[tableKey]bool, len(tableStore.m))
	for k := range tableStore.m {
		keys[k] = true
	}
	return keys, tableStore.bytes
}

// Cycling through more (d,k) pairs than the cap can hold must stay
// bounded (evicting the least recently used table) and keep serving
// correct tables for whatever is asked, rebuilding evicted ones.
func TestTableStoreLRUCycling(t *testing.T) {
	// Sizes (n²·7): (2,3)=448, (3,2)=567, (2,4)=1792, (2,5)=7168.
	s23, _ := tableSize(2, 3)
	s32, _ := tableSize(3, 2)
	s24, _ := tableSize(2, 4)
	s25, _ := tableSize(2, 5)
	// Room for the three small tables together, or for (2,5) plus
	// only the smallest — admitting (2,5) must force eviction.
	resetTableStore(t, s23+s25)

	get := func(d, k int) *rankTable {
		t.Helper()
		size, ok := tableSize(d, k)
		if !ok {
			t.Fatalf("tableSize(%d,%d) unrepresentable", d, k)
		}
		tab, pending := getTable(d, k, size, true)
		if pending {
			t.Fatalf("getTable(%d,%d, wait) reported pending", d, k)
		}
		if tab == nil {
			t.Fatalf("getTable(%d,%d) returned no table", d, k)
		}
		if tab.d != d || tab.k != k {
			t.Fatalf("getTable(%d,%d) returned table for (%d,%d)", d, k, tab.d, tab.k)
		}
		return tab
	}

	get(2, 3)
	get(3, 2)
	get(2, 4)
	keys, bytes := tableStoreState()
	if want := s23 + s32 + s24; bytes != want {
		t.Fatalf("store bytes = %d, want %d", bytes, want)
	}

	// Touch (2,3) so (3,2) becomes the LRU victim, then admit (2,5):
	// it needs more room than any single table, so (3,2) and (2,4)
	// both go, in that order.
	get(2, 3)
	get(2, 5)
	keys, bytes = tableStoreState()
	if keys[tableKey{3, 2}] || keys[tableKey{2, 4}] {
		t.Fatalf("LRU victims not evicted, store has %v", keys)
	}
	if !keys[tableKey{2, 3}] || !keys[tableKey{2, 5}] {
		t.Fatalf("recently used tables evicted, store has %v", keys)
	}
	if want := s23 + s25; bytes != want {
		t.Fatalf("store bytes = %d, want %d", bytes, want)
	}

	// Evicted tables rebuild on demand and answer correctly.
	tab := get(3, 2)
	x := word.MustNew(3, []byte{0, 1})
	y := word.MustNew(3, []byte{1, 2})
	if d := tab.udist[tab.index(x, y)]; d == 0 {
		t.Fatalf("rebuilt (3,2) table has zero distance for distinct vertices")
	}

	// Many cycles: bytes never exceed the cap.
	for i := 0; i < 6; i++ {
		for _, dk := range [][2]int{{2, 3}, {3, 2}, {2, 4}, {2, 5}} {
			get(dk[0], dk[1])
			if _, b := tableStoreState(); b > tableStoreCap {
				t.Fatalf("store bytes %d exceed cap %d", b, tableStoreCap)
			}
		}
	}
}

// A table larger than the whole cap must be refused without trashing
// the resident tables.
func TestTableStoreOversizeRefused(t *testing.T) {
	s23, _ := tableSize(2, 3)
	resetTableStore(t, s23)

	if tab, pending := getTable(2, 3, s23, true); tab == nil || pending {
		t.Fatalf("(2,3) should fit exactly: tab=%v pending=%v", tab, pending)
	}
	s25, _ := tableSize(2, 5)
	if tab, _ := getTable(2, 5, s25, true); tab != nil {
		t.Fatalf("oversize table admitted")
	}
	keys, _ := tableStoreState()
	if !keys[tableKey{2, 3}] {
		t.Fatalf("resident table evicted for an oversize request")
	}
}
