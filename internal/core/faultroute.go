package core

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/graph"
	"repro/internal/word"
)

// Fault-aware routing over arc-disjoint in-arborescences (the
// deterministic circular routing of Chiesa et al., instantiated on
// the undirected de Bruijn graph). For each destination, FaultTrees
// arc-disjoint spanning in-arborescences rooted there are
// precomputed; a message carries only the index of the tree it is
// currently following, walks parent pointers toward the root, and on
// meeting a failed arc rotates deterministically to the next tree
// without moving. Because the trees are arc-disjoint, each failed arc
// blocks at most one tree, so any failure set smaller than the tree
// count leaves every vertex at least one live parent arc and the walk
// provably delivers — with stretch bounded by HopBound (= n·trees,
// since the deterministic walk can never repeat a (vertex, tree)
// state without livelocking, which f < trees failures cannot force).
//
// Failures are directed arcs: on the undirected graph each edge {u,v}
// is the two arcs u→v and v→u, failed independently. A failed vertex
// is modelled as all arcs into it failing.

// ErrFaultRoute is wrapped by all fault-routing errors.
var ErrFaultRoute = errors.New("core: fault routing")

// maxFaultRouteVertices bounds the graphs a FaultRouter will
// materialize: the mode needs the explicit graph plus per-destination
// parent arrays, so it is for fabric-sized DG(d,k), not the huge
// identifier spaces the arithmetic kernels serve.
const maxFaultRouteVertices = 1 << 16

// FaultTrees returns the number of arc-disjoint spanning
// in-arborescences the fault router packs per destination of DG(d,k):
// d for k ≥ 2 (undirected minimum degree 2d-2 ≥ d, so Edmonds'
// theorem applies), d-1 for k = 1 (DG(d,1) = K_d: the root has only
// d-1 incoming arcs). The router tolerates any FaultTrees-1 failed
// arcs with guaranteed delivery.
func FaultTrees(d, k int) int {
	if k == 1 {
		return d - 1
	}
	return d
}

// FaultRouter answers fault-tolerant routing questions for one
// DG(d,k). It is safe for concurrent use; decompositions are built on
// demand and cached process-wide under an LRU budget.
type FaultRouter struct {
	d, k, n int
	trees   int
	g       *graph.Graph
}

// NewFaultRouter builds the fault router for the undirected DG(d,k).
func NewFaultRouter(d, k int) (*FaultRouter, error) {
	n, err := word.Count(d, k)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFaultRoute, err)
	}
	if n > maxFaultRouteVertices {
		return nil, fmt.Errorf("%w: DG(%d,%d) has %d vertices, fault routing supports at most %d", ErrFaultRoute, d, k, n, maxFaultRouteVertices)
	}
	trees := FaultTrees(d, k)
	if trees < 1 {
		return nil, fmt.Errorf("%w: DG(%d,%d) supports no arborescence packing", ErrFaultRoute, d, k)
	}
	g, err := graph.DeBruijn(graph.Undirected, d, k)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFaultRoute, err)
	}
	return &FaultRouter{d: d, k: k, n: n, trees: trees, g: g}, nil
}

// Trees returns the number of arc-disjoint arborescences per
// destination; any failure set smaller than this is survivable.
func (fr *FaultRouter) Trees() int { return fr.trees }

// HopBound returns the documented worst-case walk length (and so the
// stretch bound): n·Trees hops, one per (vertex, tree) state.
func (fr *FaultRouter) HopBound() int { return fr.n * fr.trees }

// NumVertices returns the vertex count of the routed graph.
func (fr *FaultRouter) NumVertices() int { return fr.n }

// Graph returns the undirected DG(d,k) the router walks. Callers must
// not modify it.
func (fr *FaultRouter) Graph() *graph.Graph { return fr.g }

// decompSeed fixes the arborescence builder's seed per destination so
// every process derives the identical decomposition — dbcheck
// verdicts stay byte-identical and distributed nodes agree on trees
// without coordination.
func decompSeed(d, k, root int) int64 {
	return int64(d)<<40 ^ int64(k)<<28 ^ int64(root)<<1 ^ 0x5bd1e995
}

// The process-wide decomposition store: parent arrays are ~4·n·trees
// bytes per destination, too much to precompute for every root of a
// 4096-vertex graph, so they build on demand and evict LRU under a
// budget (mirroring the kernel table store).
var decompStoreCap = int64(32 << 20)

type decompKey struct{ d, k, root int }

type decompEntry struct {
	trees   [][]int32
	size    int64
	lastUse int64
}

var decompStore = struct {
	sync.Mutex
	m     map[decompKey]*decompEntry
	bytes int64
	clock int64
}{m: map[decompKey]*decompEntry{}}

// Decomposition returns the arc-disjoint in-arborescences rooted at
// root (parent arrays indexed [tree][vertex], parent[root] = -1),
// building and caching them on first use. The result is shared and
// must not be modified.
func (fr *FaultRouter) Decomposition(root int) ([][]int32, error) {
	if root < 0 || root >= fr.n {
		return nil, fmt.Errorf("%w: root %d out of range [0,%d)", ErrFaultRoute, root, fr.n)
	}
	key := decompKey{fr.d, fr.k, root}
	decompStore.Lock()
	if e := decompStore.m[key]; e != nil {
		decompStore.clock++
		e.lastUse = decompStore.clock
		decompStore.Unlock()
		return e.trees, nil
	}
	decompStore.Unlock()

	// Built outside the lock: concurrent callers may race to build the
	// same key, but the seeded builder is deterministic so both get
	// the identical family and the second insert is a no-op.
	trees, err := graph.Arborescences(fr.g, root, fr.trees, decompSeed(fr.d, fr.k, root))
	if err != nil {
		return nil, fmt.Errorf("%w: root %d: %v", ErrFaultRoute, root, err)
	}
	size := int64(fr.trees) * int64(fr.n) * 4

	decompStore.Lock()
	defer decompStore.Unlock()
	if e := decompStore.m[key]; e != nil {
		decompStore.clock++
		e.lastUse = decompStore.clock
		return e.trees, nil
	}
	if size <= decompStoreCap {
		for decompStore.bytes+size > decompStoreCap {
			var victimKey decompKey
			var victim *decompEntry
			for k, e := range decompStore.m {
				if victim == nil || e.lastUse < victim.lastUse {
					victim, victimKey = e, k
				}
			}
			if victim == nil {
				break
			}
			delete(decompStore.m, victimKey)
			decompStore.bytes -= victim.size
		}
		decompStore.clock++
		decompStore.m[key] = &decompEntry{trees: trees, size: size, lastUse: decompStore.clock}
		decompStore.bytes += size
	}
	return trees, nil
}

// Walk failure reasons.
const (
	// WalkReasonNoLiveArc: every tree's parent arc at some vertex is
	// failed — only possible when the failure set has ≥ Trees arcs.
	WalkReasonNoLiveArc = "no live parent arc"
	// WalkReasonHopBudget: the walk exceeded HopBound hops — only
	// possible under ≥ Trees failures or failures mutating mid-walk.
	WalkReasonHopBudget = "hop budget exhausted"
)

// FaultWalk is the outcome of one fault-routed delivery attempt.
type FaultWalk struct {
	Delivered bool
	Reason    string // empty when Delivered; a WalkReason* otherwise
	Hops      int    // arcs crossed
	Switches  int    // tree rotations (the O(1) failover events)
	Tree      int    // tree index in effect at the end of the walk
	Verts     []int32
}

// Walk routes from src to dst along the dst-rooted arborescences,
// deterministically rotating to the next tree on each failed arc.
// failed reports whether the directed arc u→v is currently down (nil
// means no failures). The walk starts on tree src mod Trees, crosses
// only live arcs, and either delivers or reports why not; with a
// static failure set smaller than Trees it always delivers within
// HopBound hops.
func (fr *FaultRouter) Walk(src, dst int, failed func(u, v int) bool) (FaultWalk, error) {
	if src < 0 || src >= fr.n || dst < 0 || dst >= fr.n {
		return FaultWalk{}, fmt.Errorf("%w: pair (%d,%d) out of range [0,%d)", ErrFaultRoute, src, dst, fr.n)
	}
	tree := src % fr.trees
	w := FaultWalk{Tree: tree, Verts: []int32{int32(src)}}
	if src == dst {
		w.Delivered = true
		return w, nil
	}
	dec, err := fr.Decomposition(dst)
	if err != nil {
		return FaultWalk{}, err
	}
	bound := fr.HopBound()
	cur := src
	for cur != dst {
		if w.Hops >= bound {
			w.Reason = WalkReasonHopBudget
			w.Tree = tree
			return w, nil
		}
		p := dec[tree][cur]
		for sw := 0; failed != nil && failed(cur, int(p)); {
			if sw++; sw >= fr.trees {
				w.Reason = WalkReasonNoLiveArc
				w.Tree = tree
				return w, nil
			}
			tree = (tree + 1) % fr.trees
			w.Switches++
			p = dec[tree][cur]
		}
		cur = int(p)
		w.Hops++
		w.Verts = append(w.Verts, p)
	}
	w.Delivered = true
	w.Tree = tree
	return w, nil
}

// DetourPath routes from src to dst under the failure predicate and
// returns the surviving route as a concrete hop path (the wire shape
// the serve detour rung and the network engine replay). The walk is
// returned alongside so callers can read stretch and switch counts;
// when it did not deliver, the path is nil.
func (fr *FaultRouter) DetourPath(src, dst word.Word, failed func(u, v int) bool) (Path, FaultWalk, error) {
	if src.Base() != fr.d || dst.Base() != fr.d || src.Len() != fr.k || dst.Len() != fr.k {
		return nil, FaultWalk{}, fmt.Errorf("%w: words %v,%v do not fit DG(%d,%d)", ErrFaultRoute, src, dst, fr.d, fr.k)
	}
	s, err := src.Rank()
	if err != nil {
		return nil, FaultWalk{}, fmt.Errorf("%w: %v", ErrFaultRoute, err)
	}
	t, err := dst.Rank()
	if err != nil {
		return nil, FaultWalk{}, fmt.Errorf("%w: %v", ErrFaultRoute, err)
	}
	w, err := fr.Walk(int(s), int(t), failed)
	if err != nil || !w.Delivered {
		return nil, w, err
	}
	p := make(Path, 0, w.Hops)
	hi := fr.n / fr.d
	for i := 1; i < len(w.Verts); i++ {
		u, v := int(w.Verts[i-1]), int(w.Verts[i])
		// Rank arithmetic of the two shifts (see check.replayConcrete):
		// a left shift appending b maps u to (u·d mod n) + b, a right
		// shift prepending b maps u to b·(n/d) + ⌊u/d⌋.
		if b := v % fr.d; (u*fr.d)%fr.n+b == v {
			p = append(p, L(byte(b)))
			continue
		}
		if b := v / hi; b*hi+u/fr.d == v {
			p = append(p, R(byte(b)))
			continue
		}
		return nil, w, fmt.Errorf("%w: walk crossed %d→%d, not a shift arc", ErrFaultRoute, u, v)
	}
	return p, w, nil
}
