package suffixtree

import (
	"math/rand"
	"sort"
	"testing"
)

// mark appends a unique endmarker (0xFF) to s.
func mark(s string) []byte {
	return append([]byte(s), 0xFF)
}

func TestBuildRejectsEmpty(t *testing.T) {
	if _, err := Build(nil); err == nil {
		t.Error("Build accepted empty string")
	}
}

func TestBuildRejectsNonUniqueEndmarker(t *testing.T) {
	if _, err := Build([]byte("aba")); err == nil {
		t.Error("Build accepted repeated final symbol")
	}
	if _, err := BuildNaive([]byte("aba")); err == nil {
		t.Error("BuildNaive accepted repeated final symbol")
	}
}

func TestLeafPerPosition(t *testing.T) {
	for _, s := range []string{"a", "aaaa", "abab", "banana", "mississippi"} {
		tr, err := Build(mark(s))
		if err != nil {
			t.Fatal(err)
		}
		n := len(s) + 1
		if got := tr.NumLeaves(); got != n {
			t.Errorf("%q: %d leaves, want %d", s, got, n)
		}
		// Every position has exactly one leaf.
		seen := make(map[int]bool)
		tr.Walk(func(nd *Node) {
			if nd.IsLeaf() {
				if seen[nd.LeafPos] {
					t.Errorf("%q: duplicate leaf for position %d", s, nd.LeafPos)
				}
				seen[nd.LeafPos] = true
			}
		})
		for i := 0; i < n; i++ {
			if !seen[i] {
				t.Errorf("%q: no leaf for position %d", s, i)
			}
		}
	}
}

func TestCompactness(t *testing.T) {
	// Compact prefix tree has O(n) vertices (≤ 2n) and no unary
	// internal vertices except possibly the root.
	for _, s := range []string{"aaaa", "abcabc", "banana", "aabaabaab"} {
		tr, err := Build(mark(s))
		if err != nil {
			t.Fatal(err)
		}
		n := len(s) + 1
		if got := tr.NumNodes(); got > 2*n {
			t.Errorf("%q: %d nodes exceeds 2n=%d", s, got, 2*n)
		}
		tr.Walk(func(nd *Node) {
			if !nd.IsLeaf() && nd != tr.Root() && len(nd.Children) < 2 {
				t.Errorf("%q: internal non-root vertex with %d children (chain not condensed)", s, len(nd.Children))
			}
		})
	}
}

func TestUkkonenMatchesNaive(t *testing.T) {
	fixed := []string{
		"a", "ab", "aa", "aba", "abab", "aabb", "banana", "mississippi",
		"aaaaaaaa", "abababab", "abcabcabc", "aabaabaa",
	}
	for _, s := range fixed {
		fast, err := Build(mark(s))
		if err != nil {
			t.Fatal(err)
		}
		slow, err := BuildNaive(mark(s))
		if err != nil {
			t.Fatal(err)
		}
		if !fast.Equal(slow) {
			t.Errorf("%q: Ukkonen and naive trees differ\nfast:\n%s\nslow:\n%s", s, fast.Dump(), slow.Dump())
		}
	}
}

func TestUkkonenMatchesNaiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 400; iter++ {
		n := 1 + rng.Intn(24)
		base := 2 + rng.Intn(3)
		s := make([]byte, n, n+1)
		for i := range s {
			s[i] = byte(rng.Intn(base))
		}
		s = append(s, 0xFF)
		fast, err := Build(s)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := BuildNaive(s)
		if err != nil {
			t.Fatal(err)
		}
		if !fast.Equal(slow) {
			t.Fatalf("random %v: trees differ\nfast:\n%s\nslow:\n%s", s, fast.Dump(), slow.Dump())
		}
	}
}

func TestUkkonenMatchesNaiveTwoEndmarkers(t *testing.T) {
	// Algorithm 4 uses S = X ⊥ Y ⊤ with two distinct endmarkers in the
	// middle and at the end; exercise exactly that shape.
	rng := rand.New(rand.NewSource(12))
	for iter := 0; iter < 300; iter++ {
		k := 1 + rng.Intn(12)
		s := make([]byte, 0, 2*k+2)
		for i := 0; i < k; i++ {
			s = append(s, byte(rng.Intn(2)))
		}
		s = append(s, 0xFE)
		for i := 0; i < k; i++ {
			s = append(s, byte(rng.Intn(2)))
		}
		s = append(s, 0xFF)
		fast, err := Build(s)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := BuildNaive(s)
		if err != nil {
			t.Fatal(err)
		}
		if !fast.Equal(slow) {
			t.Fatalf("S=%v: trees differ\nfast:\n%s\nslow:\n%s", s, fast.Dump(), slow.Dump())
		}
	}
}

func TestContains(t *testing.T) {
	tr, err := Build(mark("banana"))
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{"", "b", "banana", "ana", "nan", "a"} {
		if !tr.Contains([]byte(sub)) {
			t.Errorf("Contains(%q) = false", sub)
		}
	}
	for _, sub := range []string{"x", "bananas", "ab", "nab"} {
		if tr.Contains([]byte(sub)) {
			t.Errorf("Contains(%q) = true", sub)
		}
	}
}

func TestOccurrences(t *testing.T) {
	tr, err := Build(mark("banana"))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		sub  string
		want []int
	}{
		{"ana", []int{1, 3}},
		{"a", []int{1, 3, 5}},
		{"na", []int{2, 4}},
		{"banana", []int{0}},
		{"xyz", nil},
	}
	for _, c := range cases {
		got := tr.Occurrences([]byte(c.sub))
		if !intsEq(got, c.want) {
			t.Errorf("Occurrences(%q) = %v, want %v", c.sub, got, c.want)
		}
	}
}

func TestOccurrencesRandomAgainstScan(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 200; iter++ {
		n := 2 + rng.Intn(30)
		s := make([]byte, n)
		for i := range s {
			s[i] = byte('a' + rng.Intn(2))
		}
		tr, err := Build(append(append([]byte(nil), s...), 0xFF))
		if err != nil {
			t.Fatal(err)
		}
		m := 1 + rng.Intn(4)
		sub := make([]byte, m)
		for i := range sub {
			sub[i] = byte('a' + rng.Intn(2))
		}
		var want []int
		for i := 0; i+m <= n; i++ {
			if string(s[i:i+m]) == string(sub) {
				want = append(want, i)
			}
		}
		got := tr.Occurrences(sub)
		if !intsEq(got, want) {
			t.Fatalf("Occurrences(%q in %q) = %v, want %v", sub, s, got, want)
		}
	}
}

func TestLongestRepeatedSubstring(t *testing.T) {
	cases := []struct{ s, want string }{
		{"banana", "ana"},
		{"aaaa", "aaa"},
		{"abcd", ""},
		{"abcabcab", "abcab"},
	}
	for _, c := range cases {
		tr, err := Build(mark(c.s))
		if err != nil {
			t.Fatal(err)
		}
		got := string(tr.LongestRepeatedSubstring())
		if got != c.want {
			t.Errorf("LongestRepeatedSubstring(%q) = %q, want %q", c.s, got, c.want)
		}
	}
}

func TestPrefixIdentifier(t *testing.T) {
	// For S = banana⊥: the prefix identifier of position 0 is "b"
	// (unique), of position 1 is "anan" ("ana" occurs twice), of
	// position 5 is "a⊥".
	tr, err := Build(mark("banana"))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		pos  int
		want string
	}{
		{0, "b"},
		{1, "anan"},
		{2, "nan"},
		{3, "ana\xff"},
		{5, "a\xff"},
		{6, "\xff"},
	}
	for _, c := range cases {
		got := string(tr.PrefixIdentifier(c.pos))
		if got != c.want {
			t.Errorf("PrefixIdentifier(%d) = %q, want %q", c.pos, got, c.want)
		}
	}
}

func TestPrefixIdentifierIsUniqueAndShortest(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for iter := 0; iter < 100; iter++ {
		n := 2 + rng.Intn(16)
		s := make([]byte, n, n+1)
		for i := range s {
			s[i] = byte('a' + rng.Intn(2))
		}
		s = append(s, 0xFF)
		tr, err := Build(s)
		if err != nil {
			t.Fatal(err)
		}
		for pos := 0; pos < len(s); pos++ {
			id := tr.PrefixIdentifier(pos)
			if occ := countOcc(s, id); occ != 1 {
				t.Fatalf("identifier %q of pos %d in %q occurs %d times", id, pos, s, occ)
			}
			if len(id) > 1 {
				shorter := id[:len(id)-1]
				if countOcc(s, shorter) < 2 {
					t.Fatalf("identifier %q of pos %d in %q not shortest", id, pos, s)
				}
			}
		}
	}
}

func countOcc(s, sub []byte) int {
	count := 0
	for i := 0; i+len(sub) <= len(s); i++ {
		if string(s[i:i+len(sub)]) == string(sub) {
			count++
		}
	}
	return count
}

func TestDepthsAreLabelPathLengths(t *testing.T) {
	tr, err := Build(mark("abcabcab"))
	if err != nil {
		t.Fatal(err)
	}
	var check func(n *Node, depth int)
	check = func(n *Node, depth int) {
		if n.Depth != depth {
			t.Errorf("node depth %d, want %d", n.Depth, depth)
		}
		for _, c := range n.Children {
			check(c, depth+(c.End-c.Start))
		}
	}
	check(tr.Root(), 0)
}

func TestWalkIsPostOrderDeterministic(t *testing.T) {
	tr, err := Build(mark("abab"))
	if err != nil {
		t.Fatal(err)
	}
	var a, b []int
	tr.Walk(func(n *Node) { a = append(a, n.Depth) })
	tr.Walk(func(n *Node) { b = append(b, n.Depth) })
	if len(a) != len(b) {
		t.Fatal("Walk visited different node counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Walk order not deterministic")
		}
	}
	// Root (depth 0) must come last in post-order.
	if a[len(a)-1] != 0 {
		t.Error("Walk did not finish at the root")
	}
}

func TestLCPViaTreeMatchesDirect(t *testing.T) {
	// The depth of the meet of two leaves is the LCP of the suffixes —
	// the property Proposition 5 relies on.
	rng := rand.New(rand.NewSource(15))
	for iter := 0; iter < 100; iter++ {
		n := 2 + rng.Intn(20)
		s := make([]byte, n, n+1)
		for i := range s {
			s[i] = byte(rng.Intn(2))
		}
		s = append(s, 0xFF)
		tr, err := Build(s)
		if err != nil {
			t.Fatal(err)
		}
		meets := leafMeetDepths(tr)
		for i := 0; i < len(s); i++ {
			for j := i + 1; j < len(s); j++ {
				want := directLCP(s, i, j)
				if got := meets[i][j]; got != want {
					t.Fatalf("meet depth of %d,%d in %v = %d, want %d", i, j, s, got, want)
				}
			}
		}
	}
}

// leafMeetDepths computes, for every pair of leaf positions, the
// string depth of their lowest common ancestor by bottom-up merging.
func leafMeetDepths(tr *Tree) map[int]map[int]int {
	out := make(map[int]map[int]int)
	set := func(i, j, d int) {
		if i > j {
			i, j = j, i
		}
		if out[i] == nil {
			out[i] = make(map[int]int)
		}
		out[i][j] = d
	}
	var visit func(n *Node) []int
	visit = func(n *Node) []int {
		if n.IsLeaf() {
			return []int{n.LeafPos}
		}
		var all []int
		for _, c := range sortedChildren(n) {
			leaves := visit(c)
			for _, a := range all {
				for _, b := range leaves {
					set(a, b, n.Depth)
				}
			}
			all = append(all, leaves...)
		}
		return all
	}
	visit(tr.Root())
	return out
}

func directLCP(s []byte, i, j int) int {
	n := 0
	for i+n < len(s) && j+n < len(s) && s[i+n] == s[j+n] {
		n++
	}
	return n
}

func intsEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	sort.Ints(a)
	sort.Ints(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
