// Package suffixtree implements the compact prefix tree of Weiner used
// by the paper's Algorithm 4 (Section 3.3).
//
// For a string S terminated by a unique endmarker, the prefix
// identifier of position i is the shortest substring that occurs in S
// only at position i; the prefix tree is the trie of all prefix
// identifiers, and the compact prefix tree condenses its unary chains.
// That structure is exactly the suffix tree of S: each leaf corresponds
// to one position (suffix), each internal vertex to a right-extensible
// repeated substring, and the depth D(v) recorded on a condensed vertex
// (the depth of the deepest chain vertex, as the paper prescribes)
// equals the string depth of the suffix-tree node.
//
// Substitution note (see DESIGN.md): the paper builds the tree with
// Weiner's 1973 right-to-left algorithm; we build the identical
// structure with Ukkonen's left-to-right on-line algorithm, which is
// also linear in time and space for a fixed alphabet. BuildNaive
// constructs the same tree in O(n²) and is used as the structural
// oracle in tests.
package suffixtree

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrEmpty is returned when building a tree over an empty string.
var ErrEmpty = errors.New("suffixtree: empty string")

// Node is a vertex of the compact prefix tree. Leaves carry the
// 0-based position of the suffix they identify; internal nodes carry
// LeafPos == -1. Depth is the string depth: the total label length on
// the path from the root, i.e. the paper's D(v) annotation.
type Node struct {
	// Start and End delimit the incoming edge label S[Start:End]
	// (End exclusive). The root has Start == End == 0.
	Start, End int
	// Depth is the string depth of the node (paper's D(v)).
	Depth int
	// LeafPos is the suffix position for leaves, -1 for internal nodes.
	LeafPos int
	// Children maps the first symbol of each outgoing edge label to
	// the child node. Empty for leaves.
	Children map[byte]*Node

	suffixLink *Node
}

// IsLeaf reports whether n identifies a single position of S.
func (n *Node) IsLeaf() bool { return n.LeafPos >= 0 }

// Tree is a compact prefix tree (suffix tree) over a byte string.
type Tree struct {
	s    []byte
	root *Node
}

// String returns the underlying string (including any endmarkers).
func (t *Tree) Bytes() []byte { return t.s }

// Root returns the root node.
func (t *Tree) Root() *Node { return t.root }

// Build constructs the compact prefix tree of s in O(len(s)) time for
// a fixed alphabet using Ukkonen's on-line algorithm. The caller must
// ensure the final symbol of s is unique within s (an endmarker), so
// that every position has a prefix identifier and hence its own leaf;
// Build verifies this and returns an error otherwise.
func Build(s []byte) (*Tree, error) {
	if err := checkEndmarker(s); err != nil {
		return nil, err
	}
	t := &Tree{s: s}
	t.build()
	t.annotate()
	return t, nil
}

// BuildNaive constructs the same tree by inserting each suffix into a
// compact trie, in O(n²) time. It exists as the reference oracle: a
// structurally independent implementation against which Build is
// cross-checked.
func BuildNaive(s []byte) (*Tree, error) {
	if err := checkEndmarker(s); err != nil {
		return nil, err
	}
	t := &Tree{s: s}
	t.root = &Node{LeafPos: -1, Children: make(map[byte]*Node)}
	for i := range s {
		t.insertSuffixNaive(i)
	}
	t.annotate()
	return t, nil
}

func checkEndmarker(s []byte) error {
	if len(s) == 0 {
		return ErrEmpty
	}
	last := s[len(s)-1]
	for i := 0; i < len(s)-1; i++ {
		if s[i] == last {
			return fmt.Errorf("suffixtree: final symbol %d is not unique (also at position %d)", last, i)
		}
	}
	return nil
}

func (t *Tree) insertSuffixNaive(pos int) {
	cur := t.root
	i := pos
	for {
		c := t.s[i]
		child, ok := cur.Children[c]
		if !ok {
			cur.Children[c] = &Node{Start: i, End: len(t.s), LeafPos: pos}
			return
		}
		// Walk down the edge as far as it matches.
		j := child.Start
		for j < child.End && i < len(t.s) && t.s[j] == t.s[i] {
			j++
			i++
		}
		if j == child.End {
			cur = child
			continue
		}
		// Split the edge at j.
		mid := &Node{Start: child.Start, End: j, LeafPos: -1, Children: make(map[byte]*Node)}
		cur.Children[c] = mid
		child.Start = j
		mid.Children[t.s[j]] = child
		mid.Children[t.s[i]] = &Node{Start: i, End: len(t.s), LeafPos: pos}
		return
	}
}

// build is Ukkonen's algorithm. The tree uses open leaves (End ==
// len(s)); because the final symbol is unique, every suffix ends at a
// leaf when the scan completes, and leaf positions are recovered in
// annotate from string depths.
func (t *Tree) build() {
	s := t.s
	n := len(s)
	root := &Node{LeafPos: -1, Children: make(map[byte]*Node)}
	t.root = root

	activeNode := root
	activeEdge := 0 // index into s of the active edge's first symbol
	activeLen := 0
	remainder := 0

	for i := 0; i < n; i++ {
		var lastInternal *Node
		remainder++
		for remainder > 0 {
			if activeLen == 0 {
				activeEdge = i
			}
			child, ok := activeNode.Children[s[activeEdge]]
			if !ok {
				// Rule 2: new leaf from activeNode.
				activeNode.Children[s[activeEdge]] = &Node{Start: i, End: n, LeafPos: -1}
				if lastInternal != nil {
					lastInternal.suffixLink = activeNode
					lastInternal = nil
				}
			} else {
				edgeLen := child.End - child.Start
				if activeLen >= edgeLen {
					// Walk down.
					activeEdge += edgeLen
					activeLen -= edgeLen
					activeNode = child
					continue
				}
				if s[child.Start+activeLen] == s[i] {
					// Rule 3: current symbol already present; extend
					// the active point and stop this phase.
					activeLen++
					if lastInternal != nil {
						lastInternal.suffixLink = activeNode
					}
					break
				}
				// Rule 2 with split.
				mid := &Node{
					Start:    child.Start,
					End:      child.Start + activeLen,
					LeafPos:  -1,
					Children: make(map[byte]*Node),
				}
				activeNode.Children[s[activeEdge]] = mid
				child.Start += activeLen
				mid.Children[s[child.Start]] = child
				mid.Children[s[i]] = &Node{Start: i, End: n, LeafPos: -1}
				if lastInternal != nil {
					lastInternal.suffixLink = mid
				}
				lastInternal = mid
			}
			remainder--
			if activeNode == root && activeLen > 0 {
				activeLen--
				activeEdge = i - remainder + 1
			} else if activeNode != root {
				if activeNode.suffixLink != nil {
					activeNode = activeNode.suffixLink
				} else {
					activeNode = root
				}
			}
		}
	}
}

// annotate computes string depths and leaf positions with an iterative
// depth-first traversal (recursion depth can reach the string length
// for highly repetitive inputs, so an explicit stack is used).
func (t *Tree) annotate() {
	n := len(t.s)
	type frame struct {
		node  *Node
		depth int
	}
	stack := []frame{{t.root, 0}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		f.node.Depth = f.depth
		if len(f.node.Children) == 0 {
			// Leaf: the suffix position is n minus the string depth.
			f.node.LeafPos = n - f.depth
		} else {
			f.node.LeafPos = -1
			for _, c := range f.node.Children {
				stack = append(stack, frame{c, f.depth + (c.End - c.Start)})
			}
		}
	}
}

// Walk visits every node in depth-first post-order (children before
// parents), invoking fn for each. Children are visited in increasing
// edge-symbol order, so traversals are deterministic.
func (t *Tree) Walk(fn func(*Node)) {
	var visit func(n *Node)
	visit = func(n *Node) {
		for _, c := range sortedChildren(n) {
			visit(c)
		}
		fn(n)
	}
	visit(t.root)
}

// SortedChildren returns n's children ordered by their edge's first
// symbol, giving callers a deterministic traversal order.
func SortedChildren(n *Node) []*Node { return sortedChildren(n) }

func sortedChildren(n *Node) []*Node {
	if len(n.Children) == 0 {
		return nil
	}
	keys := make([]int, 0, len(n.Children))
	for k := range n.Children {
		keys = append(keys, int(k))
	}
	sort.Ints(keys)
	out := make([]*Node, len(keys))
	for i, k := range keys {
		out[i] = n.Children[byte(k)]
	}
	return out
}

// NumNodes returns the total number of vertices; the compact prefix
// tree of a string of length n has O(n) of them (≤ 2n).
func (t *Tree) NumNodes() int {
	count := 0
	t.Walk(func(*Node) { count++ })
	return count
}

// NumLeaves returns the number of leaves, one per position of S.
func (t *Tree) NumLeaves() int {
	count := 0
	t.Walk(func(n *Node) {
		if n.IsLeaf() {
			count++
		}
	})
	return count
}

// Contains reports whether sub occurs in S, by walking from the root.
func (t *Tree) Contains(sub []byte) bool {
	node := t.root
	i := 0
	for i < len(sub) {
		child, ok := node.Children[sub[i]]
		if !ok {
			return false
		}
		for j := child.Start; j < child.End && i < len(sub); j++ {
			if t.s[j] != sub[i] {
				return false
			}
			i++
		}
		node = child
	}
	return true
}

// Occurrences returns the sorted positions where sub occurs in S: the
// leaf labels of the subtree below the locus of sub. This is the
// paper's observation that "the leaves in the subtree ... correspond
// to the positions where the substring occurs".
func (t *Tree) Occurrences(sub []byte) []int {
	node := t.root
	i := 0
	for i < len(sub) {
		child, ok := node.Children[sub[i]]
		if !ok {
			return nil
		}
		for j := child.Start; j < child.End && i < len(sub); j++ {
			if t.s[j] != sub[i] {
				return nil
			}
			i++
		}
		node = child
	}
	var out []int
	collectLeaves(node, &out)
	sort.Ints(out)
	return out
}

func collectLeaves(n *Node, out *[]int) {
	if n.IsLeaf() {
		*out = append(*out, n.LeafPos)
		return
	}
	for _, c := range n.Children {
		collectLeaves(c, out)
	}
}

// PrefixIdentifier returns Weiner's prefix identifier of position i:
// the shortest substring of S that identifies position i (occurs only
// there). Its length is one more than the string depth of the leaf's
// parent, capped at the suffix length.
func (t *Tree) PrefixIdentifier(i int) []byte {
	// Locate the leaf for position i and its parent depth by walking
	// down the suffix.
	node := t.root
	parentDepth := 0
	pos := i
	for {
		child := node.Children[t.s[pos]]
		if child.IsLeaf() {
			idLen := parentDepth + 1
			if idLen > len(t.s)-i {
				idLen = len(t.s) - i
			}
			return append([]byte(nil), t.s[i:i+idLen]...)
		}
		parentDepth = child.Depth
		pos = i + child.Depth
		node = child
	}
}

// LongestRepeatedSubstring returns the deepest internal vertex's path
// label — the paper's example application of the prefix tree. Returns
// nil when no substring repeats.
func (t *Tree) LongestRepeatedSubstring() []byte {
	best := 0
	bestPos := -1
	t.Walk(func(n *Node) {
		if !n.IsLeaf() && n.Depth > best {
			best = n.Depth
			// Recover a starting position from the deepest internal
			// node's edge: the label path ends at index n.End, so the
			// substring starts at n.End-depth.
			bestPos = n.End - n.Depth
		}
	})
	if bestPos < 0 {
		return nil
	}
	return append([]byte(nil), t.s[bestPos:bestPos+best]...)
}

// Equal reports whether two trees are structurally identical: same
// string, same shape, same edge labels, same depths and leaf labels.
func (t *Tree) Equal(o *Tree) bool {
	if string(t.s) != string(o.s) {
		return false
	}
	return nodeEqual(t.s, t.root, o.root)
}

func nodeEqual(s []byte, a, b *Node) bool {
	if a.Depth != b.Depth || a.LeafPos != b.LeafPos {
		return false
	}
	if string(s[a.Start:a.End]) != string(s[b.Start:b.End]) {
		return false
	}
	if len(a.Children) != len(b.Children) {
		return false
	}
	for k, ca := range a.Children {
		cb, ok := b.Children[k]
		if !ok || !nodeEqual(s, ca, cb) {
			return false
		}
	}
	return true
}

// Dump renders the tree as an indented listing for debugging.
func (t *Tree) Dump() string {
	var b strings.Builder
	var visit func(n *Node, indent int)
	visit = func(n *Node, indent int) {
		b.WriteString(strings.Repeat("  ", indent))
		if n == t.root {
			b.WriteString("(root)")
		} else {
			fmt.Fprintf(&b, "%q", t.s[n.Start:n.End])
		}
		if n.IsLeaf() {
			fmt.Fprintf(&b, " leaf=%d", n.LeafPos)
		}
		fmt.Fprintf(&b, " depth=%d\n", n.Depth)
		for _, c := range sortedChildren(n) {
			visit(c, indent+1)
		}
	}
	visit(t.root, 0)
	return b.String()
}
