package suffixtree

import "sort"

// SuffixArray returns the suffix array of the tree's string: the leaf
// positions in lexicographic order of their suffixes, read off a
// depth-first traversal with children ordered by edge symbol. O(n)
// given the built tree.
func (t *Tree) SuffixArray() []int {
	sa := make([]int, 0, len(t.s))
	var visit func(n *Node)
	visit = func(n *Node) {
		if n.IsLeaf() {
			sa = append(sa, n.LeafPos)
			return
		}
		for _, c := range sortedChildren(n) {
			visit(c)
		}
	}
	visit(t.root)
	return sa
}

// LCPArray returns lcp[i] = length of the longest common prefix of
// the suffixes at SuffixArray()[i-1] and SuffixArray()[i] (lcp[0] =
// 0): the string depth of the meet of adjacent leaves, computed
// during the same traversal.
func (t *Tree) LCPArray() []int {
	lcp := make([]int, 0, len(t.s))
	first := true
	// The meet of consecutive leaves in DFS order is the deepest
	// node on the stack that separates them: track the minimum depth
	// seen between leaf emissions.
	var visit func(n *Node, depthAbove int)
	pendingMin := 0
	visit = func(n *Node, depthAbove int) {
		if n.IsLeaf() {
			if first {
				lcp = append(lcp, 0)
				first = false
			} else {
				lcp = append(lcp, pendingMin)
			}
			pendingMin = depthAbove
			return
		}
		for _, c := range sortedChildren(n) {
			if n.Depth < pendingMin {
				pendingMin = n.Depth
			}
			visit(c, n.Depth)
		}
	}
	visit(t.root, 0)
	return lcp
}

// NaiveSuffixArray builds the suffix array by sorting, the oracle for
// SuffixArray.
func NaiveSuffixArray(s []byte) []int {
	sa := make([]int, len(s))
	for i := range sa {
		sa[i] = i
	}
	sort.Slice(sa, func(a, b int) bool {
		return string(s[sa[a]:]) < string(s[sa[b]:])
	})
	return sa
}
