package suffixtree

import (
	"math/rand"
	"testing"
)

func TestSuffixArrayMatchesNaive(t *testing.T) {
	fixed := []string{"a", "banana", "mississippi", "aaaa", "abababab"}
	for _, s := range fixed {
		tr, err := Build(mark(s))
		if err != nil {
			t.Fatal(err)
		}
		got := tr.SuffixArray()
		want := NaiveSuffixArray(mark(s))
		if !sliceEq(got, want) {
			t.Errorf("%q: SA = %v, want %v", s, got, want)
		}
	}
	rng := rand.New(rand.NewSource(111))
	for iter := 0; iter < 200; iter++ {
		n := 1 + rng.Intn(30)
		s := make([]byte, n, n+1)
		for i := range s {
			s[i] = byte(rng.Intn(3))
		}
		s = append(s, 0xFF)
		tr, err := Build(s)
		if err != nil {
			t.Fatal(err)
		}
		if !sliceEq(tr.SuffixArray(), NaiveSuffixArray(s)) {
			t.Fatalf("SA mismatch for %v", s)
		}
	}
}

func TestLCPArrayMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	for iter := 0; iter < 200; iter++ {
		n := 1 + rng.Intn(24)
		s := make([]byte, n, n+1)
		for i := range s {
			s[i] = byte(rng.Intn(2))
		}
		s = append(s, 0xFF)
		tr, err := Build(s)
		if err != nil {
			t.Fatal(err)
		}
		sa := tr.SuffixArray()
		lcp := tr.LCPArray()
		if len(lcp) != len(sa) {
			t.Fatalf("lengths differ: %d vs %d", len(lcp), len(sa))
		}
		if lcp[0] != 0 {
			t.Fatalf("lcp[0] = %d", lcp[0])
		}
		for i := 1; i < len(sa); i++ {
			want := directLCP(s, sa[i-1], sa[i])
			if lcp[i] != want {
				t.Fatalf("s=%v: lcp[%d] (suffixes %d,%d) = %d, want %d", s, i, sa[i-1], sa[i], lcp[i], want)
			}
		}
	}
}

func TestSuffixArrayIsPermutation(t *testing.T) {
	tr, err := Build(mark("abracadabra"))
	if err != nil {
		t.Fatal(err)
	}
	sa := tr.SuffixArray()
	seen := make([]bool, len(sa))
	for _, v := range sa {
		if v < 0 || v >= len(sa) || seen[v] {
			t.Fatalf("SA not a permutation: %v", sa)
		}
		seen[v] = true
	}
}

func sliceEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
