package suffixtree

import (
	"math/rand"
	"testing"
)

// randEndmarked returns a random string over a small alphabet with a
// unique 0xFF endmarker appended.
func randEndmarked(rng *rand.Rand, base, n int) []byte {
	s := make([]byte, n+1)
	for i := 0; i < n; i++ {
		s[i] = byte(rng.Intn(base))
	}
	s[n] = 0xFF
	return s
}

// randPairString mimics core's X⊥Y⊤ generalized-string layout: two
// length-k words over base d joined by the markers 0xFE and 0xFF.
func randPairString(rng *rand.Rand, d, k int) []byte {
	s := make([]byte, 0, 2*k+2)
	for i := 0; i < k; i++ {
		s = append(s, byte(rng.Intn(d)))
	}
	s = append(s, 0xFE)
	for i := 0; i < k; i++ {
		s = append(s, byte(rng.Intn(d)))
	}
	return append(s, 0xFF)
}

// TestArenaMatchesPointerBuild cross-checks the arena builder against
// both pointer builders on random strings, reusing ONE Scratch for the
// whole sweep so stale-arena bugs would surface.
func TestArenaMatchesPointerBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	var sc Scratch
	check := func(s []byte) {
		t.Helper()
		at, err := sc.Build(s)
		if err != nil {
			t.Fatalf("Scratch.Build(%v): %v", s, err)
		}
		pt, err := Build(s)
		if err != nil {
			t.Fatalf("Build(%v): %v", s, err)
		}
		if !at.EqualTree(pt) {
			t.Fatalf("arena tree differs from pointer tree for %v:\n%s", s, pt.Dump())
		}
		nt, err := BuildNaive(s)
		if err != nil {
			t.Fatalf("BuildNaive(%v): %v", s, err)
		}
		if !at.EqualTree(nt) {
			t.Fatalf("arena tree differs from naive tree for %v:\n%s", s, nt.Dump())
		}
		if at.NumNodes() != pt.NumNodes() {
			t.Fatalf("NumNodes: arena %d, pointer %d", at.NumNodes(), pt.NumNodes())
		}
	}
	// Degenerate small cases.
	check([]byte{0xFF})
	check([]byte{0, 0xFF})
	check([]byte{0, 0, 0, 0, 0, 0xFF})
	check([]byte{0, 1, 0, 1, 0, 1, 0xFF})
	for iter := 0; iter < 200; iter++ {
		check(randEndmarked(rng, 1+rng.Intn(4), 1+rng.Intn(60)))
	}
	for iter := 0; iter < 200; iter++ {
		check(randPairString(rng, 2+rng.Intn(3), 1+rng.Intn(24)))
	}
}

// TestArenaBuildErrors pins the endmarker contract shared with Build.
func TestArenaBuildErrors(t *testing.T) {
	var sc Scratch
	if _, err := sc.Build(nil); err == nil {
		t.Error("Build(nil): want error, got nil")
	}
	if _, err := sc.Build([]byte{1, 2, 1}); err == nil {
		t.Error("Build with repeated final symbol: want error, got nil")
	}
	// The scratch must still work after a failed build.
	at, err := sc.Build([]byte{1, 2, 0xFF})
	if err != nil {
		t.Fatalf("Build after failures: %v", err)
	}
	pt, _ := Build([]byte{1, 2, 0xFF})
	if !at.EqualTree(pt) {
		t.Error("arena tree differs from pointer tree after failed builds")
	}
}

// TestArenaBuildAllocFree pins the property the arena buys: once warm,
// rebuilding performs zero heap allocations.
func TestArenaBuildAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	rng := rand.New(rand.NewSource(82))
	s := randPairString(rng, 2, 64)
	var sc Scratch
	if _, err := sc.Build(s); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := sc.Build(s); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0 {
		t.Errorf("warm Scratch.Build allocates %v per run, want 0", allocs)
	}
}
