//go:build !race

package suffixtree

// See race_on_test.go.
const raceEnabled = false
