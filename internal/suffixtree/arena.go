package suffixtree

// Arena construction: the same compact prefix tree as Build, laid out
// in a flat node slice owned by a reusable Scratch instead of one heap
// object per vertex. Children hang off sorted first-child/next-sibling
// lists (first edge symbols within one parent are unique, so "sorted"
// is well defined), which keeps traversals deterministic — the order
// SortedChildren gives on the pointer tree — without maps or sorting.
// Algorithm 4's hot path (core.UndirectedDistanceLinear and friends)
// builds one of these per query; with a warm Scratch the construction
// performs no heap allocation at all, which is where the bulk of the
// one-shot routing APIs' ~721 allocs/op at k=64 used to come from.

// NoANode marks an absent arena-node reference (no child, no sibling,
// no suffix link).
const NoANode int32 = -1

// ANode is one vertex of an arena tree. Field meaning matches Node:
// the incoming edge is S[Start:End], Depth is the string depth (the
// paper's D(v)), LeafPos the identified position for leaves and -1 for
// internal vertices. FirstChild/NextSibling thread the child lists in
// increasing first-edge-symbol order.
type ANode struct {
	Start, End  int32
	Depth       int32
	LeafPos     int32
	FirstChild  int32
	NextSibling int32

	suffixLink int32
}

// IsLeaf reports whether the node identifies a single position of S.
func (n *ANode) IsLeaf() bool { return n.LeafPos >= 0 }

// ArenaTree is a compact prefix tree whose vertices live in a Scratch
// arena. Nodes[RootID] is the root. The tree aliases the Scratch it
// was built from and is invalidated by that Scratch's next Build.
type ArenaTree struct {
	S     []byte
	Nodes []ANode
}

// RootID is the arena index of the root node.
const RootID int32 = 0

// Scratch owns the reusable arena storage: the node slice and the
// traversal stack. The zero value is ready to use; one Build's tree is
// invalidated by the next. Not safe for concurrent use.
type Scratch struct {
	nodes []ANode
	stack []int32
}

// Build constructs the compact prefix tree of s into the scratch
// arena with Ukkonen's algorithm — the same structure as the
// package-level Build, O(len(s)) time, zero heap allocation once the
// arena has grown to the largest string seen. The endmarker contract
// is the same as Build's.
func (sc *Scratch) Build(s []byte) (ArenaTree, error) {
	if err := checkEndmarker(s); err != nil {
		return ArenaTree{}, err
	}
	n := len(s)
	sc.nodes = sc.nodes[:0]
	sc.newNode(0, 0) // root

	activeNode := RootID
	activeEdge := 0 // index into s of the active edge's first symbol
	activeLen := 0
	remainder := 0

	for i := 0; i < n; i++ {
		lastInternal := NoANode
		remainder++
		for remainder > 0 {
			if activeLen == 0 {
				activeEdge = i
			}
			child := sc.findChild(s, activeNode, s[activeEdge])
			if child == NoANode {
				// Rule 2: new leaf from activeNode.
				leaf := sc.newNode(int32(i), int32(n))
				sc.insertChild(s, activeNode, leaf)
				if lastInternal != NoANode {
					sc.nodes[lastInternal].suffixLink = activeNode
					lastInternal = NoANode
				}
			} else {
				edgeLen := int(sc.nodes[child].End - sc.nodes[child].Start)
				if activeLen >= edgeLen {
					// Walk down.
					activeEdge += edgeLen
					activeLen -= edgeLen
					activeNode = child
					continue
				}
				if s[int(sc.nodes[child].Start)+activeLen] == s[i] {
					// Rule 3: current symbol already present; extend the
					// active point and stop this phase.
					activeLen++
					if lastInternal != NoANode {
						sc.nodes[lastInternal].suffixLink = activeNode
					}
					break
				}
				// Rule 2 with split.
				mid := sc.newNode(sc.nodes[child].Start, sc.nodes[child].Start+int32(activeLen))
				sc.replaceChild(activeNode, child, mid)
				sc.nodes[child].Start += int32(activeLen)
				sc.nodes[child].NextSibling = NoANode
				sc.insertChild(s, mid, child)
				leaf := sc.newNode(int32(i), int32(n))
				sc.insertChild(s, mid, leaf)
				if lastInternal != NoANode {
					sc.nodes[lastInternal].suffixLink = mid
				}
				lastInternal = mid
			}
			remainder--
			if activeNode == RootID && activeLen > 0 {
				activeLen--
				activeEdge = i - remainder + 1
			} else if activeNode != RootID {
				if sl := sc.nodes[activeNode].suffixLink; sl != NoANode {
					activeNode = sl
				} else {
					activeNode = RootID
				}
			}
		}
	}
	sc.annotate(n)
	return ArenaTree{S: s, Nodes: sc.nodes}, nil
}

func (sc *Scratch) newNode(start, end int32) int32 {
	sc.nodes = append(sc.nodes, ANode{
		Start: start, End: end,
		LeafPos:    -1,
		FirstChild: NoANode, NextSibling: NoANode,
		suffixLink: NoANode,
	})
	return int32(len(sc.nodes) - 1)
}

// findChild returns the child of parent whose edge starts with c, or
// NoANode. Linear in the alphabet (child lists are short and sorted).
func (sc *Scratch) findChild(s []byte, parent int32, c byte) int32 {
	for id := sc.nodes[parent].FirstChild; id != NoANode; id = sc.nodes[id].NextSibling {
		if first := s[sc.nodes[id].Start]; first == c {
			return id
		} else if first > c {
			return NoANode // sorted list: passed the slot
		}
	}
	return NoANode
}

// insertChild links id into parent's child list at its sorted slot.
func (sc *Scratch) insertChild(s []byte, parent, id int32) {
	c := s[sc.nodes[id].Start]
	prev := NoANode
	cur := sc.nodes[parent].FirstChild
	for cur != NoANode && s[sc.nodes[cur].Start] < c {
		prev, cur = cur, sc.nodes[cur].NextSibling
	}
	sc.nodes[id].NextSibling = cur
	if prev == NoANode {
		sc.nodes[parent].FirstChild = id
	} else {
		sc.nodes[prev].NextSibling = id
	}
}

// replaceChild swaps repl into old's position in parent's child list
// (the split case: repl keeps old's first edge symbol, so sortedness
// is preserved).
func (sc *Scratch) replaceChild(parent, old, repl int32) {
	sc.nodes[repl].NextSibling = sc.nodes[old].NextSibling
	if sc.nodes[parent].FirstChild == old {
		sc.nodes[parent].FirstChild = repl
		return
	}
	for id := sc.nodes[parent].FirstChild; id != NoANode; id = sc.nodes[id].NextSibling {
		if sc.nodes[id].NextSibling == old {
			sc.nodes[id].NextSibling = repl
			return
		}
	}
}

// annotate computes string depths and leaf positions iteratively on
// the arena, reusing the scratch stack.
func (sc *Scratch) annotate(n int) {
	sc.stack = append(sc.stack[:0], RootID)
	sc.nodes[RootID].Depth = 0
	for len(sc.stack) > 0 {
		id := sc.stack[len(sc.stack)-1]
		sc.stack = sc.stack[:len(sc.stack)-1]
		node := &sc.nodes[id]
		if node.FirstChild == NoANode {
			// Leaf: the suffix position is n minus the string depth.
			node.LeafPos = int32(n) - node.Depth
			continue
		}
		node.LeafPos = -1
		for c := node.FirstChild; c != NoANode; c = sc.nodes[c].NextSibling {
			sc.nodes[c].Depth = node.Depth + (sc.nodes[c].End - sc.nodes[c].Start)
			sc.stack = append(sc.stack, c)
		}
	}
}

// NumNodes returns the vertex count.
func (t ArenaTree) NumNodes() int { return len(t.Nodes) }

// EqualTree reports whether the arena tree is structurally identical
// to a pointer tree over the same string: same shape, edge labels,
// depths and leaf labels. The oracle hook for cross-checking the two
// builders.
func (t ArenaTree) EqualTree(o *Tree) bool {
	if string(t.S) != string(o.s) {
		return false
	}
	var eq func(id int32, n *Node) bool
	eq = func(id int32, n *Node) bool {
		a := &t.Nodes[id]
		if a.Depth != int32(n.Depth) || a.LeafPos != int32(n.LeafPos) {
			return false
		}
		if string(t.S[a.Start:a.End]) != string(o.s[n.Start:n.End]) {
			return false
		}
		kids := sortedChildren(n)
		i := 0
		for c := a.FirstChild; c != NoANode; c = t.Nodes[c].NextSibling {
			if i >= len(kids) || !eq(c, kids[i]) {
				return false
			}
			i++
		}
		return i == len(kids)
	}
	return eq(RootID, o.root)
}
