package embed

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/word"
)

func TestRingIsDilationOne(t *testing.T) {
	for _, dk := range [][2]int{{2, 3}, {2, 5}, {3, 3}} {
		d, k := dk[0], dk[1]
		ring, err := Ring(d, k)
		if err != nil {
			t.Fatal(err)
		}
		g, err := graph.DeBruijn(graph.Directed, d, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(ring) != g.NumVertices() {
			t.Fatalf("ring covers %d of %d vertices", len(ring), g.NumVertices())
		}
		for i := range ring {
			u := graph.DeBruijnVertex(ring[i])
			v := graph.DeBruijnVertex(ring[(i+1)%len(ring)])
			if !g.HasEdge(u, v) {
				t.Fatalf("ring step %v→%v not an arc", ring[i], ring[(i+1)%len(ring)])
			}
		}
	}
}

func TestLinearArrayIsDilationOne(t *testing.T) {
	d, k := 2, 6
	arr, err := LinearArray(d, k)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.DeBruijn(graph.Directed, d, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(arr) != 64 {
		t.Fatalf("array has %d vertices", len(arr))
	}
	for i := 1; i < len(arr); i++ {
		if !g.HasEdge(graph.DeBruijnVertex(arr[i-1]), graph.DeBruijnVertex(arr[i])) {
			t.Fatalf("array step %v→%v not an arc", arr[i-1], arr[i])
		}
	}
}

func TestTreeVertexInjective(t *testing.T) {
	d, k := 2, 5
	levels, err := TreeLevels(d, k)
	if err != nil {
		t.Fatal(err)
	}
	want, err := TreeSize(d, k)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	total := 0
	for m, level := range levels {
		if len(level) != 1<<m {
			t.Errorf("level %d has %d nodes, want %d", m, len(level), 1<<m)
		}
		for _, w := range level {
			if seen[w.String()] {
				t.Fatalf("vertex %v used twice", w)
			}
			seen[w.String()] = true
			total++
		}
	}
	if total != want {
		t.Errorf("tree has %d nodes, want %d", total, want)
	}
}

func TestTreeEdgesAreAdjacent(t *testing.T) {
	d, k := 2, 5
	g, err := graph.DeBruijn(graph.Undirected, d, k)
	if err != nil {
		t.Fatal(err)
	}
	var rec func(sigma []byte)
	rec = func(sigma []byte) {
		if len(sigma) == k-1 {
			return
		}
		parent, err := TreeVertex(d, k, sigma)
		if err != nil {
			t.Fatal(err)
		}
		for b := byte(0); int(b) < d; b++ {
			child, err := TreeVertex(d, k, append(sigma, b))
			if err != nil {
				t.Fatal(err)
			}
			// Child edge: one left shift.
			got, err := TreeChildPath(b).Apply(parent, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(child) {
				t.Fatalf("child path from %v gives %v, want %v", parent, got, child)
			}
			// Parent edge: one right shift.
			back, err := TreeParentPath().Apply(child, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !back.Equal(parent) {
				t.Fatalf("parent path from %v gives %v, want %v", child, back, parent)
			}
			if !g.HasEdge(graph.DeBruijnVertex(parent), graph.DeBruijnVertex(child)) {
				t.Fatalf("tree edge %v–%v not in graph", parent, child)
			}
			rec(append(sigma, b))
		}
	}
	rec(nil)
}

func TestTreeVertexTernary(t *testing.T) {
	// d = 3: complete ternary tree of (3^3-1)/2 = 13 nodes in DG(3,3).
	n, err := TreeSize(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if n != 13 {
		t.Errorf("TreeSize(3,3) = %d, want 13", n)
	}
	levels, err := TreeLevels(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(levels[2]) != 9 {
		t.Errorf("ternary level 2 has %d nodes", len(levels[2]))
	}
}

func TestTreeVertexRejectsBadLabels(t *testing.T) {
	if _, err := TreeVertex(2, 3, []byte{0, 1, 0}); err == nil {
		t.Error("accepted label deeper than k-1")
	}
	if _, err := TreeVertex(2, 3, []byte{2}); err == nil {
		t.Error("accepted out-of-alphabet branch digit")
	}
	if _, err := TreeVertex(2, 0, nil); err == nil {
		t.Error("accepted k=0")
	}
}

func TestShuffleIsRotation(t *testing.T) {
	x := word.MustParse(2, "0110")
	s, p := Shuffle(x)
	if s.String() != "1100" {
		t.Errorf("Shuffle = %v", s)
	}
	end, err := p.Apply(x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !end.Equal(s) {
		t.Errorf("path gives %v, want %v", end, s)
	}
	// k rotations return to start.
	cur := x
	for i := 0; i < 4; i++ {
		cur, _ = Shuffle(cur)
	}
	if !cur.Equal(x) {
		t.Errorf("4 shuffles of %v = %v", x, cur)
	}
}

func TestUnshuffleInvertsShuffle(t *testing.T) {
	x := word.MustParse(3, "0212")
	s, _ := Shuffle(x)
	back, p := Unshuffle(s)
	if !back.Equal(x) {
		t.Errorf("Unshuffle(Shuffle(%v)) = %v", x, back)
	}
	end, err := p.Apply(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !end.Equal(x) {
		t.Errorf("path gives %v", end)
	}
}

func TestExchangeRewritesLastDigit(t *testing.T) {
	x := word.MustParse(2, "0110")
	got, p, err := ExchangeBinary(x)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "0111" {
		t.Errorf("Exchange = %v", got)
	}
	if p.Len() != 2 {
		t.Errorf("dilation = %d, want 2", p.Len())
	}
	// Path lands on the target under any wildcard resolution.
	for digit := byte(0); digit < 2; digit++ {
		d := digit
		end, err := p.Apply(x, func(int, word.Word, core.Hop) byte { return d })
		if err != nil {
			t.Fatal(err)
		}
		if !end.Equal(got) {
			t.Errorf("wildcard %d: path gives %v, want %v", d, end, got)
		}
	}
}

func TestExchangeGeneralDigit(t *testing.T) {
	x := word.MustParse(3, "021")
	got, _, err := Exchange(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "022" {
		t.Errorf("Exchange = %v", got)
	}
	if _, _, err := Exchange(x, 3); err == nil {
		t.Error("accepted out-of-base digit")
	}
	if _, _, err := ExchangeBinary(x); err == nil {
		t.Error("ExchangeBinary accepted base 3")
	}
}

func TestExchangeDegenerateK1(t *testing.T) {
	x := word.MustParse(2, "0")
	got, p, err := ExchangeBinary(x)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "1" || p.Len() != 1 {
		t.Errorf("k=1 exchange = %v via %v", got, p)
	}
}

func TestShuffleExchangeEmulationReachesAll(t *testing.T) {
	// Shuffle+exchange generate the whole binary SE network: from 0^k,
	// repeated (exchange, shuffle) steps reach every vertex.
	k := 4
	start := word.MustParse(2, "0000")
	seen := map[string]bool{start.String(): true}
	frontier := []word.Word{start}
	for len(frontier) > 0 {
		var next []word.Word
		for _, w := range frontier {
			s, _ := Shuffle(w)
			e, _, err := ExchangeBinary(w)
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range []word.Word{s, e} {
				if !seen[n.String()] {
					seen[n.String()] = true
					next = append(next, n)
				}
			}
		}
		frontier = next
	}
	if len(seen) != 1<<k {
		t.Errorf("shuffle-exchange closure reached %d of %d vertices", len(seen), 1<<k)
	}
}
