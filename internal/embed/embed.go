// Package embed realizes the architecture embeddings the paper's
// introduction cites from Samatham–Pradhan [9]: the de Bruijn network
// contains linear arrays, rings and complete trees, and emulates the
// shuffle-exchange network, so workloads written for those topologies
// run on DN(d,k) directly.
//
//   - Ring / LinearArray: dilation-1 embeddings from a Hamiltonian
//     cycle/path (package dbseq).
//   - Complete d-ary tree: the node with path label σ (|σ| ≤ k-1) maps
//     to the vertex 0^{k-1-|σ|} 1 σ; each child edge is a single left
//     shift (dilation 1).
//   - Shuffle-exchange: shuffle(X) is the left rotation X⁻(x_1)
//     (dilation 1); exchange(X) rewrites the last digit via one right
//     shift followed by one left shift (dilation 2).
package embed

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/dbseq"
	"repro/internal/word"
)

// ErrLabel is returned for malformed tree path labels.
var ErrLabel = errors.New("embed: invalid tree path label")

// Ring returns all d^k vertices in a cyclic order in which every
// consecutive pair (including last→first) is adjacent in the directed
// (hence also undirected) DN(d,k): a dilation-1 ring embedding.
func Ring(d, k int) ([]word.Word, error) {
	cycle, err := dbseq.HamiltonianCycle(d, k)
	if err != nil {
		return nil, err
	}
	return cycle[:len(cycle)-1], nil
}

// LinearArray returns all d^k vertices in an order in which every
// consecutive pair is adjacent: a dilation-1 linear-array embedding.
func LinearArray(d, k int) ([]word.Word, error) {
	return dbseq.HamiltonianPath(d, k)
}

// TreeVertex maps the complete d-ary tree node with path label sigma
// (digits of the root-to-node path; the root is the empty label) to
// its de Bruijn vertex 0^{k-1-|σ|} 1 σ in DG(d,k). Requires
// |σ| ≤ k-1 and digits < d. Distinct labels map to distinct vertices,
// and the parent of a node is one right shift away (the child is the
// parent's left shift inserting the branch digit).
func TreeVertex(d, k int, sigma []byte) (word.Word, error) {
	if k < 1 {
		return word.Word{}, fmt.Errorf("embed: k must be ≥ 1, got %d", k)
	}
	if len(sigma) > k-1 {
		return word.Word{}, fmt.Errorf("%w: depth %d exceeds k-1 = %d", ErrLabel, len(sigma), k-1)
	}
	digits := make([]byte, 0, k)
	for i := 0; i < k-1-len(sigma); i++ {
		digits = append(digits, 0)
	}
	digits = append(digits, 1)
	digits = append(digits, sigma...)
	w, err := word.New(d, digits)
	if err != nil {
		return word.Word{}, fmt.Errorf("%w: %w", ErrLabel, err)
	}
	return w, nil
}

// TreeSize returns the number of nodes of the embedded complete d-ary
// tree of depth k-1: (d^k - 1)/(d-1).
func TreeSize(d, k int) (int, error) {
	n, err := word.Count(d, k)
	if err != nil {
		return 0, err
	}
	return (n - 1) / (d - 1), nil
}

// TreeLevels enumerates the embedded tree level by level:
// levels[m][i] is the vertex of the i-th node at depth m, ordered by
// path label. Level m has d^m nodes.
func TreeLevels(d, k int) ([][]word.Word, error) {
	if _, err := word.Count(d, k); err != nil {
		return nil, err
	}
	levels := make([][]word.Word, k)
	var rec func(sigma []byte) error
	rec = func(sigma []byte) error {
		w, err := TreeVertex(d, k, sigma)
		if err != nil {
			return err
		}
		levels[len(sigma)] = append(levels[len(sigma)], w)
		if len(sigma) == k-1 {
			return nil
		}
		for b := 0; b < d; b++ {
			if err := rec(append(sigma, byte(b))); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(make([]byte, 0, k)); err != nil {
		return nil, err
	}
	return levels, nil
}

// TreeChildPath returns the one-hop routing path from the tree node
// with label sigma to its child sigma·b: a single left shift.
func TreeChildPath(b byte) core.Path { return core.Path{core.L(b)} }

// TreeParentPath returns the one-hop routing path from the tree node
// with label sigma (non-root) to its parent: a single right shift
// re-inserting the digit the parent carries at its front, which is 0
// unless the parent is the root's child boundary case — concretely,
// the parent vertex 0^{k-m}1σ' is reached from 0^{k-1-m}1σ'b by a
// right shift inserting 0.
func TreeParentPath() core.Path { return core.Path{core.R(0)} }

// Shuffle returns the shuffle-exchange "shuffle" neighbor of X — the
// left rotation — and the one-hop de Bruijn path realizing it.
func Shuffle(x word.Word) (word.Word, core.Path) {
	p := core.Path{core.L(x.Digit(0))}
	return x.ShiftLeft(x.Digit(0)), p
}

// Unshuffle returns the right rotation and its one-hop path.
func Unshuffle(x word.Word) (word.Word, core.Path) {
	last := x.Digit(x.Len() - 1)
	return x.ShiftRight(last), core.Path{core.R(last)}
}

// Exchange returns the shuffle-exchange "exchange" neighbor of X —
// the last digit rewritten to b — and a two-hop de Bruijn path
// realizing it (right shift inserting a wildcard, then left shift
// appending b): dilation 2. For the classical binary network, b is
// the complement of the last digit.
func Exchange(x word.Word, b byte) (word.Word, core.Path, error) {
	if int(b) >= x.Base() {
		return word.Word{}, nil, fmt.Errorf("embed: exchange digit %d out of base %d", b, x.Base())
	}
	k := x.Len()
	target, err := word.New(x.Base(), append(x.Prefix(k-1), b))
	if err != nil {
		return word.Word{}, nil, err
	}
	if k == 1 {
		// Degenerate: one left shift reaches (b) directly.
		return target, core.Path{core.L(b)}, nil
	}
	p := core.Path{core.RStar(), core.L(b)}
	return target, p, nil
}

// ExchangeBinary flips the last bit of a binary word, the classical
// exchange edge.
func ExchangeBinary(x word.Word) (word.Word, core.Path, error) {
	if x.Base() != 2 {
		return word.Word{}, nil, fmt.Errorf("embed: ExchangeBinary needs base 2, got %d", x.Base())
	}
	return Exchange(x, 1-x.Digit(x.Len()-1))
}
