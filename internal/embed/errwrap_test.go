package embed

import (
	"errors"
	"testing"

	"repro/internal/word"
)

// TestTreeVertexErrorWrapsCause pins the %w chain: a branch digit
// outside the alphabet must surface ErrLabel and the underlying
// word.ErrBadDigit.
func TestTreeVertexErrorWrapsCause(t *testing.T) {
	_, err := TreeVertex(2, 4, []byte{0, 5})
	if !errors.Is(err, ErrLabel) {
		t.Fatalf("err = %v, want ErrLabel", err)
	}
	if !errors.Is(err, word.ErrBadDigit) {
		t.Fatalf("err = %v does not expose word.ErrBadDigit", err)
	}
}
