package obs

import (
	"strings"
	"testing"
	"time"
)

func sampleTrace() Trace {
	return Trace{
		{Hop: 0, Cause: CauseInject, Site: "0010", Digit: -1},
		{Hop: 1, Cause: CauseForward, Site: "0101", Link: "L", Digit: 1, Wait: 12 * time.Microsecond},
		{Hop: 1, Cause: CauseReroute, Site: "0101", Detail: "next site 1011 failed"},
		{Hop: 2, Cause: CauseForward, Site: "1010", Link: "R", Digit: 0, Wildcard: true},
		{Hop: 2, Cause: CauseDeliver, Site: "1010", Digit: -1},
	}
}

func TestTraceSitesAndHops(t *testing.T) {
	tr := sampleTrace()
	sites := tr.Sites()
	want := []string{"0010", "0101", "1010"}
	if len(sites) != len(want) {
		t.Fatalf("sites = %v, want %v", sites, want)
	}
	for i := range want {
		if sites[i] != want[i] {
			t.Errorf("site %d = %q, want %q", i, sites[i], want[i])
		}
	}
	if tr.Hops() != 2 {
		t.Errorf("hops = %d, want 2", tr.Hops())
	}
}

func TestTraceRender(t *testing.T) {
	out := sampleTrace().String()
	for _, want := range []string{
		"inject  0010",
		"L(1)    0101",
		"wait=12µs",
		"reroute @0101  next site 1011 failed",
		"R(*→0)  1010",
		"✓ delivered at 1010 after 2 hops",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTraceRenderDrop(t *testing.T) {
	tr := Trace{
		{Hop: 0, Cause: CauseInject, Site: "00", Digit: -1},
		{Hop: 0, Cause: CauseDrop, Site: "00", Detail: "ttl exceeded", Digit: -1},
	}
	if out := tr.String(); !strings.Contains(out, "✗ dropped at 00 after 0 hops: ttl exceeded") {
		t.Errorf("drop render:\n%s", out)
	}
}
