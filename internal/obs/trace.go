package obs

import (
	"fmt"
	"strings"
	"time"
)

// Causes of a HopEvent. A message trace is a sequence of events:
// exactly one CauseInject, zero or more CauseForward (one per link
// crossed) possibly interleaved with CauseReroute markers, and one
// terminal CauseDeliver or CauseDrop.
const (
	// CauseInject marks the message entering the network at its source.
	CauseInject = "inject"
	// CauseForward marks one link crossing.
	CauseForward = "forward"
	// CauseReroute marks a mid-flight route recomputation (the site is
	// unchanged; Detail names the failed next site routed around).
	CauseReroute = "reroute"
	// CauseDeliver marks acceptance at the destination.
	CauseDeliver = "deliver"
	// CauseDrop marks a discard; Detail carries the reason.
	CauseDrop = "drop"
)

// HopEvent is one structured step of a message's journey — the
// upgrade of the bare visited-site list to per-hop observability.
type HopEvent struct {
	// Hop is the number of links crossed up to and including this
	// event (0 for the injection event).
	Hop int `json:"hop"`
	// Cause is one of the Cause* constants.
	Cause string `json:"cause"`
	// Site is the address of the site holding the message after the
	// event.
	Site string `json:"site"`
	// Link is "L" or "R" for forward events, empty otherwise.
	Link string `json:"link,omitempty"`
	// Digit is the digit inserted by a forward event (-1 otherwise).
	Digit int `json:"digit"`
	// Wildcard reports that the hop was a (a,*) pair before the
	// forwarding site resolved it to Digit.
	Wildcard bool `json:"wildcard,omitempty"`
	// Wait is the queue wait before the event was processed (only the
	// concurrent Cluster engine measures it).
	Wait time.Duration `json:"wait_ns,omitempty"`
	// Layer is the distance-layer index B_i of the site relative to the
	// destination (Fàbrega et al.): the remaining distance, counting
	// down to 0 as the message closes in. Zero means "at the
	// destination" — or "not computed", for producers that predate
	// layers (the network engines leave it unset; the serving stack's
	// sampled route traces always fill it).
	Layer int `json:"layer,omitempty"`
	// Detail carries reroute causes and drop reasons.
	Detail string `json:"detail,omitempty"`
}

// Trace is the structured per-hop event sequence of one message.
type Trace []HopEvent

// Sites returns the visited site addresses in order (inject and
// forward events only) — the bare site list the trace replaces.
func (t Trace) Sites() []string {
	out := make([]string, 0, len(t))
	for _, ev := range t {
		if ev.Cause == CauseInject || ev.Cause == CauseForward {
			out = append(out, ev.Site)
		}
	}
	return out
}

// Hops returns the number of forward events.
func (t Trace) Hops() int {
	n := 0
	for _, ev := range t {
		if ev.Cause == CauseForward {
			n++
		}
	}
	return n
}

// String renders the trace compactly, one event per line:
//
//	hop  event   site
//	  0  inject  001011
//	  1  L(1)    010111   wait=12µs
//	  2  L(*→0)  101110
//	     reroute @101110  next site 011100 failed
//	  ✓ delivered at 101110 after 2 hops
func (t Trace) String() string {
	var b strings.Builder
	b.WriteString("hop  event   site\n")
	for _, ev := range t {
		switch ev.Cause {
		case CauseInject:
			fmt.Fprintf(&b, "%3d  inject  %s\n", ev.Hop, ev.Site)
		case CauseForward:
			op := fmt.Sprintf("%s(%d)", ev.Link, ev.Digit)
			if ev.Wildcard {
				op = fmt.Sprintf("%s(*→%d)", ev.Link, ev.Digit)
			}
			fmt.Fprintf(&b, "%3d  %-6s  %s", ev.Hop, op, ev.Site)
			if ev.Wait > 0 {
				fmt.Fprintf(&b, "   wait=%v", ev.Wait)
			}
			b.WriteByte('\n')
		case CauseReroute:
			fmt.Fprintf(&b, "     reroute @%s  %s\n", ev.Site, ev.Detail)
		case CauseDeliver:
			fmt.Fprintf(&b, "  ✓ delivered at %s after %d hops\n", ev.Site, ev.Hop)
		case CauseDrop:
			fmt.Fprintf(&b, "  ✗ dropped at %s after %d hops: %s\n", ev.Site, ev.Hop, ev.Detail)
		default:
			fmt.Fprintf(&b, "%3d  %-6s  %s  %s\n", ev.Hop, ev.Cause, ev.Site, ev.Detail)
		}
	}
	return b.String()
}
