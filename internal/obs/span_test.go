package obs

import (
	"encoding/json"
	"testing"
	"time"
)

func TestTraceIDRoundTrip(t *testing.T) {
	for _, id := range []TraceID{0, 1, 0xdeadbeef, ^TraceID(0)} {
		b, err := json.Marshal(id)
		if err != nil {
			t.Fatalf("marshal %v: %v", id, err)
		}
		var got TraceID
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if got != id {
			t.Errorf("round trip %v -> %s -> %v", id, b, got)
		}
	}
	if _, err := ParseTraceID("not hex"); err == nil {
		t.Error("ParseTraceID accepted garbage")
	}
	if s := TraceID(0).String(); s != "" {
		t.Errorf("zero id String = %q, want empty", s)
	}
	if s := TraceID(0xab).String(); s != "00000000000000ab" {
		t.Errorf("String = %q, want 16 digits", s)
	}
}

func TestTraceIDFromBytes(t *testing.T) {
	a := TraceIDFromBytes([]byte("hello"))
	b := TraceIDFromBytes([]byte("hello"))
	c := TraceIDFromBytes([]byte("world"))
	if a == 0 || a != b {
		t.Errorf("hash not deterministic: %v vs %v", a, b)
	}
	if a == c {
		t.Error("distinct inputs collided")
	}
	if TraceIDFromBytes(nil) == 0 {
		t.Error("empty input hashed to zero")
	}
}

func TestSamplerDeterminism(t *testing.T) {
	s1 := NewSampler(64, 42)
	s2 := NewSampler(64, 42)
	s3 := NewSampler(64, 43)
	hits, diverged := 0, false
	for i := TraceID(1); i <= 64*64; i++ {
		if s1.Sample(i) != s2.Sample(i) {
			t.Fatalf("same seed diverged at id %v", i)
		}
		if s1.Sample(i) {
			hits++
		}
		if s1.Sample(i) != s3.Sample(i) {
			diverged = true
		}
	}
	// 1-in-64 over 4096 ids: expect ~64 hits; require the rate to be in
	// the right ballpark, not exact.
	if hits < 16 || hits > 256 {
		t.Errorf("1-in-64 sampler hit %d of 4096", hits)
	}
	if !diverged {
		t.Error("different seeds sampled identically across 4096 ids")
	}
}

func TestSamplerEdges(t *testing.T) {
	var zero Sampler
	if zero.Enabled() || zero.Sample(123) {
		t.Error("zero-value sampler not disabled")
	}
	off := NewSampler(0, 1)
	if off.Enabled() || off.Sample(123) {
		t.Error("every=0 sampler not disabled")
	}
	neg := NewSampler(-5, 1)
	if neg.Enabled() || neg.Sample(123) {
		t.Error("negative-every sampler not disabled")
	}
	all := NewSampler(1, 99)
	for i := TraceID(0); i < 100; i++ {
		if !all.Sample(i) {
			t.Fatalf("every=1 sampler rejected id %v", i)
		}
	}
}

func TestReqTraceSpansAndCanonical(t *testing.T) {
	start := time.Unix(100, 0)
	tr := NewReqTrace(0xab, "route", "undirected", start)
	tr.Batch = 2
	tr.AddSpan(SpanAdmission, start, start.Add(time.Microsecond), LayerNone, "")
	tr.CurSub = 1
	tr.AddSpan(SpanKernel+"/route", start.Add(2*time.Microsecond), start.Add(5*time.Microsecond), 3, "")
	tr.CurSub = 2
	tr.AddSpan(SpanCache, start.Add(5*time.Microsecond), start.Add(5*time.Microsecond), LayerNone, "hit")
	tr.CurSub = 0
	tr.AddHops(Trace{
		{Hop: 0, Cause: CauseInject, Site: "0101", Layer: 2},
		{Hop: 1, Cause: CauseForward, Site: "1010", Layer: 1},
		{Hop: 2, Cause: CauseDeliver, Site: "0100"},
	})
	tr.SetOutcome("answered")
	tr.Finish(start.Add(9 * time.Microsecond))
	tr.Finish(start.Add(7 * time.Microsecond)) // longest offset wins
	if tr.EndNs != 9000 {
		t.Errorf("EndNs = %d, want 9000", tr.EndNs)
	}
	if got := len(tr.Spans); got != 3 {
		t.Fatalf("span count = %d, want 3", got)
	}
	if tr.Spans[1].Sub != 1 || tr.Spans[2].Sub != 2 {
		t.Errorf("sub tags = %d,%d, want 1,2", tr.Spans[1].Sub, tr.Spans[2].Sub)
	}
	want := "00000000000000ab route/undirected batch=2 answered" +
		" admission kernel/route#1@3 cache#2(hit)" +
		" inject:0101 forward:1010 deliver:0100"
	if got := tr.Canonical(); got != want {
		t.Errorf("Canonical:\n got %q\nwant %q", got, want)
	}

	// Canonical must not depend on timings: same structure, different
	// clock offsets.
	tr2 := NewReqTrace(0xab, "route", "undirected", start.Add(time.Hour))
	tr2.Batch = 2
	tr2.AddSpan(SpanAdmission, tr2.Start, tr2.Start.Add(time.Millisecond), LayerNone, "")
	tr2.CurSub = 1
	tr2.AddSpan(SpanKernel+"/route", tr2.Start, tr2.Start.Add(time.Second), 3, "")
	tr2.CurSub = 2
	tr2.AddSpan(SpanCache, tr2.Start, tr2.Start, LayerNone, "hit")
	tr2.CurSub = 0
	tr2.AddHops(tr.Hops)
	tr2.SetOutcome("answered")
	tr2.Finish(tr2.Start.Add(time.Minute))
	if tr.Canonical() != tr2.Canonical() {
		t.Errorf("Canonical depends on timing:\n%q\n%q", tr.Canonical(), tr2.Canonical())
	}
}

func TestReqTraceNilSafe(t *testing.T) {
	var tr *ReqTrace
	tr.AddSpan(SpanAdmission, time.Now(), time.Now(), LayerNone, "")
	tr.AddHops(Trace{{Cause: CauseInject}})
	tr.SetOutcome("answered")
	tr.Finish(time.Now())
}

func TestReqTraceSitesRecovery(t *testing.T) {
	// Satellite: the hop vocabulary is shared with Delivery.Trace, so
	// Sites() recovers the visited-site list from a sampled serve trace.
	tr := NewReqTrace(1, "route", "directed", time.Unix(0, 0))
	tr.AddHops(Trace{
		{Hop: 0, Cause: CauseInject, Site: "000", Layer: 2},
		{Hop: 1, Cause: CauseForward, Site: "001", Link: "L", Digit: 1, Layer: 1},
		{Hop: 2, Cause: CauseForward, Site: "011", Link: "L", Digit: 1, Layer: 0},
		{Hop: 2, Cause: CauseDeliver, Site: "011"},
	})
	got := tr.Hops.Sites()
	want := []string{"000", "001", "011"}
	if len(got) != len(want) {
		t.Fatalf("Sites = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Sites[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if tr.Hops.Hops() != 2 {
		t.Errorf("Hops = %d, want 2", tr.Hops.Hops())
	}
}

func TestTraceBuffer(t *testing.T) {
	b := NewTraceBuffer(3)
	for i := 1; i <= 5; i++ {
		b.Add(NewReqTrace(TraceID(i), "distance", "", time.Unix(0, 0)))
	}
	if b.Total() != 5 {
		t.Errorf("Total = %d, want 5", b.Total())
	}
	rec := b.Recent()
	if len(rec) != 3 {
		t.Fatalf("Recent len = %d, want 3", len(rec))
	}
	for i, want := range []TraceID{3, 4, 5} {
		if rec[i].ID != want {
			t.Errorf("Recent[%d].ID = %v, want %v (oldest first)", i, rec[i].ID, want)
		}
	}
	snap := b.Snapshot()
	if snap.Total != 5 || len(snap.Traces) != 3 {
		t.Errorf("Snapshot = total %d / %d traces, want 5 / 3", snap.Total, len(snap.Traces))
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not marshalable: %v", err)
	}
}

func TestTraceBufferDisabled(t *testing.T) {
	if NewTraceBuffer(0) != nil {
		t.Error("NewTraceBuffer(0) != nil")
	}
	var b *TraceBuffer
	b.Add(NewReqTrace(1, "distance", "", time.Unix(0, 0)))
	if b.Total() != 0 || b.Recent() != nil {
		t.Error("nil buffer retained something")
	}
	snap := b.Snapshot()
	if snap.Total != 0 || snap.Traces == nil || len(snap.Traces) != 0 {
		t.Errorf("nil buffer snapshot = %+v, want empty non-nil Traces", snap)
	}
}
