package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// FlightEvent kinds.
const (
	// FlightTrace is a completed sampled request (Name is its outcome,
	// Value its latency in nanoseconds, TraceID set).
	FlightTrace = "trace"
	// FlightMetric is one monitor-window measurement (Name is the
	// metric, Value its reading).
	FlightMetric = "metric"
	// FlightTrigger is the anomaly that froze the recorder.
	FlightTrigger = "trigger"
)

// FlightEvent is one entry of the flight recorder: a compact record of
// a trace outcome, a metric window, or the freezing trigger.
type FlightEvent struct {
	Seq     uint64  `json:"seq"`
	TimeNs  int64   `json:"time_ns"` // unix nanoseconds
	Kind    string  `json:"kind"`
	TraceID TraceID `json:"trace_id,omitempty"`
	Name    string  `json:"name"`
	Value   float64 `json:"value,omitempty"`
	Detail  string  `json:"detail,omitempty"`
}

// flightSlot is one ring entry. The per-slot mutex makes concurrent
// writers race-free without a global lock: writers contend only when
// two of them land on the same slot modulo the ring size, i.e. after a
// full wrap — negligible at any realistic ring size.
type flightSlot struct {
	mu   sync.Mutex
	ev   FlightEvent
	full bool
}

// FlightRecorder is a fixed-size, lock-light ring buffer of
// trace/metric events that freezes on the first anomaly trigger. While
// unfrozen it continuously overwrites its oldest entries; Trigger
// atomically freezes it exactly once, snapshotting the ring so the
// moments leading up to the anomaly survive for postmortems without
// re-running the workload. A nil *FlightRecorder is disabled: every
// method is a no-op.
type FlightRecorder struct {
	slots []flightSlot
	seq   atomic.Uint64
	froze atomic.Bool

	mu      sync.Mutex // guards the frozen snapshot
	trigger FlightEvent
	snap    []FlightEvent
	missed  atomic.Int64 // triggers after the freeze
}

// NewFlightRecorder returns a recorder holding n events (n < 1 yields
// nil: disabled).
func NewFlightRecorder(n int) *FlightRecorder {
	if n < 1 {
		return nil
	}
	return &FlightRecorder{slots: make([]flightSlot, n)}
}

// Record appends one event, overwriting the oldest once the ring is
// full. Seq and TimeNs are stamped here (TimeNs only when zero, so
// tests can pin times). Events recorded after the freeze are dropped —
// the frozen snapshot is the postmortem, not a live feed.
func (r *FlightRecorder) Record(ev FlightEvent) {
	if r == nil || r.froze.Load() {
		return
	}
	ev.Seq = r.seq.Add(1)
	if ev.TimeNs == 0 {
		ev.TimeNs = time.Now().UnixNano()
	}
	sl := &r.slots[ev.Seq%uint64(len(r.slots))]
	sl.mu.Lock()
	sl.ev = ev
	sl.full = true
	sl.mu.Unlock()
}

// Trigger fires an anomaly: the first call freezes the recorder,
// snapshots the ring, and stores the trigger event; it returns true
// exactly once. Later calls (and concurrent racers) are counted as
// missed and return false.
func (r *FlightRecorder) Trigger(name, detail string, value float64) bool {
	if r == nil {
		return false
	}
	// The freeze flag and the snapshot are published under one mutex so
	// a concurrent Snapshot never observes "frozen" with the postmortem
	// still unset. Record stays lock-light: it reads only the flag.
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.froze.CompareAndSwap(false, true) {
		r.missed.Add(1)
		return false
	}
	ev := FlightEvent{
		Seq:    r.seq.Add(1),
		TimeNs: time.Now().UnixNano(),
		Kind:   FlightTrigger,
		Name:   name,
		Value:  value,
		Detail: detail,
	}
	r.trigger = ev
	r.snap = append(r.collect(), ev)
	return true
}

// Frozen reports whether a trigger has fired.
func (r *FlightRecorder) Frozen() bool { return r != nil && r.froze.Load() }

// MissedTriggers counts triggers that fired after the freeze.
func (r *FlightRecorder) MissedTriggers() int64 {
	if r == nil {
		return 0
	}
	return r.missed.Load()
}

// collect copies the resident events in sequence order. Writers that
// claimed a sequence number before the freeze but had not finished
// their slot write may be missing — an accepted race: every event in
// the result is complete, per-slot locking guarantees no torn reads.
func (r *FlightRecorder) collect() []FlightEvent {
	out := make([]FlightEvent, 0, len(r.slots))
	for i := range r.slots {
		sl := &r.slots[i]
		sl.mu.Lock()
		if sl.full {
			out = append(out, sl.ev)
		}
		sl.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// FlightSnapshot is the /debug/flight JSON document. Unfrozen it is a
// live view of the ring; frozen it is the immutable postmortem.
type FlightSnapshot struct {
	Frozen         bool          `json:"frozen"`
	Trigger        *FlightEvent  `json:"trigger,omitempty"`
	MissedTriggers int64         `json:"missed_triggers,omitempty"`
	TotalEvents    uint64        `json:"total_events"`
	Events         []FlightEvent `json:"events"`
}

// Snapshot freezes the recorder state for exposition.
func (r *FlightRecorder) Snapshot() FlightSnapshot {
	s := FlightSnapshot{Events: []FlightEvent{}}
	if r == nil {
		return s
	}
	s.TotalEvents = r.seq.Load()
	s.MissedTriggers = r.missed.Load()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.froze.Load() {
		trig := r.trigger
		s.Events = append(s.Events, r.snap...)
		s.Frozen = true
		s.Trigger = &trig
		return s
	}
	s.Events = r.collect()
	return s
}
