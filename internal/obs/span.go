package obs

import (
	"encoding/json"
	"fmt"
	"strconv"
	"sync"
	"time"
)

// Request-scoped tracing: a TraceID travels with one request from wire
// decode to response write, a deterministic Sampler decides which
// requests record a ReqTrace (a sequence of Spans plus the routing-hop
// events of package trace.go), and a TraceBuffer retains the most
// recent sampled traces for /debug/traces.
//
// Determinism is a design requirement, not an accident: the sampling
// decision is a pure function of (trace id, seed), and trace ids are
// either supplied on the wire or derived by hashing the request frame
// bytes, so replaying a seeded load run yields the identical sampled
// set — the property the serve tests pin byte-for-byte.

// TraceID is a 64-bit request trace identifier. It marshals as a
// 16-digit lowercase hex JSON string ("" and 0 mean "no trace"), so it
// survives JSON decoders that truncate large integers.
type TraceID uint64

// String renders the id as 16 hex digits (empty for zero).
func (id TraceID) String() string {
	if id == 0 {
		return ""
	}
	return fmt.Sprintf("%016x", uint64(id))
}

// MarshalJSON renders the id as a hex string.
func (id TraceID) MarshalJSON() ([]byte, error) {
	return json.Marshal(id.String())
}

// UnmarshalJSON accepts a hex string (empty means zero).
func (id *TraceID) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("obs: trace id: %w", err)
	}
	v, err := ParseTraceID(s)
	if err != nil {
		return err
	}
	*id = v
	return nil
}

// ParseTraceID parses the String/MarshalJSON form ("" is zero).
func ParseTraceID(s string) (TraceID, error) {
	if s == "" {
		return 0, nil
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("obs: trace id %q: %w", s, err)
	}
	return TraceID(v), nil
}

// fnvOffset and fnvPrime are the FNV-1a 64-bit parameters.
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

// TraceIDFromBytes derives a trace id from a request frame body
// (FNV-1a). The result is never zero, so a derived id always reads as
// "present".
func TraceIDFromBytes(b []byte) TraceID {
	h := uint64(fnvOffset)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	if h == 0 {
		h = fnvOffset
	}
	return TraceID(h)
}

// mix64 is the splitmix64 finalizer — a cheap, well-distributed bijection
// used to decorrelate trace ids from the sampling decision.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Sampler is a deterministic 1-in-N head sampler: Sample(id) depends
// only on (id, seed), so identical request streams sample identically
// across runs and across nodes sharing a seed. The zero value is a
// disabled sampler.
type Sampler struct {
	every uint64
	seed  uint64
}

// NewSampler returns a sampler keeping one trace in every (1 for all,
// 0 or negative for none), keyed by seed.
func NewSampler(every int, seed uint64) Sampler {
	if every < 0 {
		every = 0
	}
	return Sampler{every: uint64(every), seed: seed}
}

// Enabled reports whether the sampler can ever say yes.
func (s Sampler) Enabled() bool { return s.every > 0 }

// Sample decides whether the trace with this id is recorded.
func (s Sampler) Sample(id TraceID) bool {
	if s.every == 0 {
		return false
	}
	if s.every == 1 {
		return true
	}
	return mix64(uint64(id)^s.seed)%s.every == 0
}

// Span names used by the serving stack. A trace is a sequence of
// spans in request order: admission (frame decode + enqueue), queue
// (bounded-queue wait), cache (LRU lookup), kernel/* (routing
// computation, carrying the distance-layer index), write (response
// frame write).
const (
	SpanAdmission = "admission"
	SpanQueue     = "queue"
	SpanCache     = "cache"
	SpanKernel    = "kernel" // prefix: kernel/distance, kernel/route, ...
	SpanWrite     = "write"
	// SpanForward is the remote round trip of a request proxied to a
	// cluster peer; its detail names the peer. The forwarded request
	// keeps its trace id across the hop, so the spans recorded at
	// every node of the forward chain stitch into one cross-node
	// trace.
	SpanForward = "forward"
)

// LayerNone marks a span that has no distance-layer index (admission,
// queue, cache, write — everything but the kernels).
const LayerNone = -1

// Span is one stage of a sampled request. StartNs/DurNs are offsets
// from the trace start, so spans order and nest without wall-clock
// context. Layer is the distance-layer index B_i of the answer the
// stage produced (the Fàbrega et al. decomposition: the destination of
// a distance-d query lies in layer B_d around the source); LayerNone
// for stages without one. Sub tags batch sub-queries (1-based; 0 for
// scalar requests).
type Span struct {
	Name    string `json:"name"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
	Layer   int    `json:"layer"`
	Sub     int    `json:"sub,omitempty"`
	Detail  string `json:"detail,omitempty"`
}

// ReqTrace is one sampled request, from wire decode to response write.
// It is built by a single goroutine at a time (reader → worker →
// writer ownership hand-off follows the request), so methods are not
// concurrency-safe; publication into a TraceBuffer is.
type ReqTrace struct {
	ID      TraceID   `json:"trace_id"`
	Kind    string    `json:"kind"`
	Mode    string    `json:"mode,omitempty"`
	Batch   int       `json:"batch,omitempty"` // sub-query count, 0 scalar
	Start   time.Time `json:"start"`
	Outcome string    `json:"outcome,omitempty"` // answered | degraded:<mode> | shed:<reason>
	EndNs   int64     `json:"end_ns"`            // trace duration at publication
	Spans   []Span    `json:"spans"`
	// Hops are the routing-hop events of route answers, in the same
	// HopEvent vocabulary as the network engines' Delivery.Trace — so
	// Trace.Sites() recovers the visited-site list from a sampled serve
	// trace exactly as it does from a simulator delivery.
	Hops Trace `json:"hops,omitempty"`

	// CurSub tags spans added while processing a batch sub-query
	// (1-based); 0 outside batches. Not serialized — it lands on each
	// Span.Sub.
	CurSub int `json:"-"`
}

// NewReqTrace starts a trace. kind/mode are wire labels ("route",
// "directed", ...); start anchors every span offset.
func NewReqTrace(id TraceID, kind, mode string, start time.Time) *ReqTrace {
	return &ReqTrace{ID: id, Kind: kind, Mode: mode, Start: start}
}

// AddSpan records one completed stage. Zero-duration spans are kept:
// a cache hit's kernel-free trace is the interesting shape, not noise.
func (t *ReqTrace) AddSpan(name string, start, end time.Time, layer int, detail string) {
	if t == nil {
		return
	}
	t.Spans = append(t.Spans, Span{
		Name:    name,
		StartNs: start.Sub(t.Start).Nanoseconds(),
		DurNs:   end.Sub(start).Nanoseconds(),
		Layer:   layer,
		Sub:     t.CurSub,
		Detail:  detail,
	})
}

// AddHops appends routing-hop events (each route answer contributes an
// inject → forward* → deliver segment; batches concatenate segments).
func (t *ReqTrace) AddHops(hops Trace) {
	if t == nil || len(hops) == 0 {
		return
	}
	t.Hops = append(t.Hops, hops...)
}

// SetOutcome records the request's single conservation outcome.
func (t *ReqTrace) SetOutcome(outcome string) {
	if t == nil {
		return
	}
	t.Outcome = outcome
}

// Finish stamps the trace duration; idempotent (the longest offset
// wins, so a late write span extends it).
func (t *ReqTrace) Finish(end time.Time) {
	if t == nil {
		return
	}
	if ns := end.Sub(t.Start).Nanoseconds(); ns > t.EndNs {
		t.EndNs = ns
	}
}

// Canonical renders the structural content of the trace — id, labels,
// outcome, span names/layers/subs/details, hop sites — with every
// timing field omitted. Two runs of the same seeded workload produce
// identical Canonical strings for their sampled traces, which is the
// determinism contract the serve tests pin.
func (t *ReqTrace) Canonical() string {
	b := make([]byte, 0, 64+16*len(t.Spans))
	b = append(b, t.ID.String()...)
	b = append(b, ' ')
	b = append(b, t.Kind...)
	b = append(b, '/')
	b = append(b, t.Mode...)
	if t.Batch > 0 {
		b = append(b, " batch="...)
		b = strconv.AppendInt(b, int64(t.Batch), 10)
	}
	b = append(b, ' ')
	b = append(b, t.Outcome...)
	for _, sp := range t.Spans {
		b = append(b, ' ')
		b = append(b, sp.Name...)
		if sp.Sub > 0 {
			b = append(b, '#')
			b = strconv.AppendInt(b, int64(sp.Sub), 10)
		}
		if sp.Layer != LayerNone {
			b = append(b, '@')
			b = strconv.AppendInt(b, int64(sp.Layer), 10)
		}
		if sp.Detail != "" {
			b = append(b, '(')
			b = append(b, sp.Detail...)
			b = append(b, ')')
		}
	}
	for _, ev := range t.Hops {
		b = append(b, ' ')
		b = append(b, ev.Cause...)
		b = append(b, ':')
		b = append(b, ev.Site...)
	}
	return string(b)
}

// TraceBuffer retains the most recent published traces, oldest first.
// A nil *TraceBuffer drops everything (the disabled state). Publication
// takes one short mutex on the sampled path only.
type TraceBuffer struct {
	mu    sync.Mutex
	buf   []*ReqTrace // ring; buf[next] is the oldest once full
	next  int
	n     int
	total uint64
}

// NewTraceBuffer retains up to n traces (n < 1 yields nil: disabled).
func NewTraceBuffer(n int) *TraceBuffer {
	if n < 1 {
		return nil
	}
	return &TraceBuffer{buf: make([]*ReqTrace, n)}
}

// Add publishes one completed trace. The buffer takes ownership: the
// caller must not mutate t afterwards.
func (b *TraceBuffer) Add(t *ReqTrace) {
	if b == nil || t == nil {
		return
	}
	b.mu.Lock()
	b.buf[b.next] = t
	b.next = (b.next + 1) % len(b.buf)
	if b.n < len(b.buf) {
		b.n++
	}
	b.total++
	b.mu.Unlock()
}

// Total returns the number of traces ever published.
func (b *TraceBuffer) Total() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total
}

// Recent returns the retained traces, oldest first.
func (b *TraceBuffer) Recent() []*ReqTrace {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]*ReqTrace, 0, b.n)
	start := b.next - b.n
	if start < 0 {
		start += len(b.buf)
	}
	for i := 0; i < b.n; i++ {
		out = append(out, b.buf[(start+i)%len(b.buf)])
	}
	return out
}

// TracesSnapshot is the /debug/traces JSON document.
type TracesSnapshot struct {
	Total  uint64      `json:"total_sampled"`
	Traces []*ReqTrace `json:"traces"`
}

// Snapshot freezes the buffer for exposition.
func (b *TraceBuffer) Snapshot() TracesSnapshot {
	s := TracesSnapshot{Traces: []*ReqTrace{}}
	if b == nil {
		return s
	}
	s.Traces = b.Recent()
	s.Total = b.Total()
	return s
}
