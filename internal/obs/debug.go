package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns the debug mux: /metrics (Prometheus text),
// /metrics.json, and the /debug/pprof/ profiling endpoints. A nil
// registry serves empty metric pages (pprof still works), so binaries
// can expose profiling without enabling metrics.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug binds addr (e.g. "localhost:6060"; ":0" picks a free
// port) and serves Handler(reg) in a background goroutine. It returns
// the server (Close it to stop) and the bound address.
func ServeDebug(addr string, reg *Registry) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: Handler(reg)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
