package obs

import (
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// DebugOptions selects what the debug mux exposes beyond pprof. Every
// field is optional: nil components serve empty documents, so binaries
// can expose profiling without enabling metrics or tracing.
type DebugOptions struct {
	// Registry backs /metrics and /metrics.json.
	Registry *Registry
	// Traces backs /debug/traces (recent sampled request traces, JSON).
	Traces *TraceBuffer
	// Flight backs /debug/flight (the flight-recorder ring: a live view
	// while unfrozen, the frozen postmortem after a trigger).
	Flight *FlightRecorder
}

// Handler returns the debug mux: /metrics (Prometheus text),
// /metrics.json, and the /debug/pprof/ profiling endpoints. A nil
// registry serves empty metric pages (pprof still works), so binaries
// can expose profiling without enabling metrics.
func Handler(reg *Registry) http.Handler {
	return HandlerOpts(DebugOptions{Registry: reg})
}

// HandlerOpts returns the debug mux with every configured endpoint:
// /metrics, /metrics.json, /debug/traces, /debug/flight, and
// /debug/pprof/.
func HandlerOpts(opts DebugOptions) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = opts.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = opts.Registry.WriteJSON(w)
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, _ *http.Request) {
		writeDebugJSON(w, opts.Traces.Snapshot())
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, _ *http.Request) {
		writeDebugJSON(w, opts.Flight.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeDebugJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// DebugServer is a running debug endpoint. It wraps the http.Server
// so serve-loop failures — previously discarded inside the background
// goroutine — are captured and reported: Err returns the failure after
// the loop exits (Done signals when), and Close is idempotent.
type DebugServer struct {
	srv  *http.Server
	ln   net.Listener
	addr string

	done chan struct{} // closed when the serve loop exits

	mu       sync.Mutex
	closing  chan struct{} // non-nil after the first Close; closed once its outcome is stashed
	closeErr error
	serveErr error
}

// ServeDebug binds addr (e.g. "localhost:6060"; ":0" picks a free
// port) and serves Handler(reg) in a background goroutine. Bind
// failures are returned directly; failures of the serve loop itself
// are available from Err once Done is closed.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	return ServeDebugOpts(addr, DebugOptions{Registry: reg})
}

// ServeDebugOpts is ServeDebug with the full endpoint set of
// HandlerOpts (traces and flight recorder included).
func ServeDebugOpts(addr string, opts DebugOptions) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ds := &DebugServer{
		srv:  &http.Server{Handler: HandlerOpts(opts)},
		ln:   ln,
		addr: ln.Addr().String(),
		done: make(chan struct{}),
	}
	go func() {
		err := ds.srv.Serve(ln)
		if errors.Is(err, http.ErrServerClosed) {
			err = nil // orderly Close, not a failure
		}
		ds.mu.Lock()
		ds.serveErr = err
		ds.mu.Unlock()
		close(ds.done)
	}()
	return ds, nil
}

// Addr returns the bound address (useful with ":0").
func (ds *DebugServer) Addr() string { return ds.addr }

// Done is closed when the serve loop has exited — after Close, or
// after a serve failure. Select on it to detect an endpoint dying
// behind a long-running process.
func (ds *DebugServer) Done() <-chan struct{} { return ds.done }

// Err returns the serve-loop failure, nil while the loop is still
// running or when it exited by an orderly Close.
func (ds *DebugServer) Err() error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.serveErr
}

// Close stops the server and waits for the serve loop to exit. It is
// idempotent: extra calls return the first outcome. The error is the
// close failure or, if the loop had already died on its own, the
// serve failure.
func (ds *DebugServer) Close() error {
	ds.mu.Lock()
	if ds.closing != nil {
		ch := ds.closing
		ds.mu.Unlock()
		<-ch
		ds.mu.Lock()
		defer ds.mu.Unlock()
		return ds.closeErr
	}
	ch := make(chan struct{})
	ds.closing = ch
	ds.mu.Unlock()

	err := ds.srv.Close()
	<-ds.done // wait for the serve loop even when Close itself errored
	ds.mu.Lock()
	if err == nil {
		err = ds.serveErr
	}
	ds.closeErr = err
	ds.mu.Unlock()
	close(ch)
	return err
}
