// Package obs is the dependency-free observability layer of the
// routing stack: a registry of atomic counters, gauges and bucketed
// histograms with Prometheus-text and JSON exposition, a hop-level
// trace event schema shared by the network engines, and an opt-in
// debug HTTP endpoint (metrics + pprof).
//
// The package makes the §4 remark — "the constant factors of our
// linear algorithms are low enough to make these algorithms of
// practical use" — measurable as the system grows: every engine
// threads a *Registry through its hot path, and a nil *Registry (the
// default) degrades every instrument to a single nil check, so the
// disabled overhead on the routing hot path stays within noise.
//
// All instrument handles (*Counter, *Gauge, *Histogram) and the
// *Registry itself are nil-safe: methods on nil receivers are no-ops
// returning zero values. Engines therefore resolve their instruments
// once at construction and call them unconditionally.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta (negative deltas are ignored: counters only go up).
func (c *Counter) Add(delta int64) {
	if c == nil || delta < 0 {
		return
	}
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 instantaneous value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta to the current value.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into cumulative-style buckets with
// fixed upper bounds (a final +Inf bucket is implicit). Observation
// and snapshotting are lock-free. Each bucket additionally retains an
// exemplar — the trace id of the most recent sampled observation that
// landed in it — so a latency outlier in a bucket can be chased down
// to the full per-request trace that produced it.
type Histogram struct {
	bounds    []float64       // sorted upper bounds
	counts    []atomic.Int64  // len(bounds)+1; last is the +Inf bucket
	exemplars []atomic.Uint64 // len(bounds)+1 trace ids; 0 = none
	count     atomic.Int64
	sum       atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) { h.ObserveExemplar(v, 0) }

// ObserveExemplar records one observation and, when id is nonzero,
// stores it as the covering bucket's exemplar (most recent wins).
func (h *Histogram) ObserveExemplar(v float64, id TraceID) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	if id != 0 {
		h.exemplars[i].Store(uint64(id))
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// HopBuckets suits hop-count distributions (diameter-scale values).
var HopBuckets = []float64{1, 2, 4, 8, 16, 24, 32, 48, 64, 128}

// NsBuckets suits nanosecond latency distributions: 100ns to ~1s,
// roughly one bucket per half decade.
var NsBuckets = ExpBuckets(100, 4, 12)

// ExpBuckets returns n exponentially spaced bucket bounds starting at
// start and multiplying by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Registry holds named instruments. The zero value is not usable; a
// nil *Registry is: every lookup returns a nil instrument whose
// methods are no-ops, which is how instrumentation is disabled.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (registering on first use) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (registering on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (registering on first use) the named histogram.
// The bounds of the first registration win; they are copied and
// sorted.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		h = &Histogram{
			bounds:    bs,
			counts:    make([]atomic.Int64, len(bs)+1),
			exemplars: make([]atomic.Uint64, len(bs)+1),
		}
		r.hists[name] = h
	}
	return h
}

// Label returns name{key="value"} — the convention for labelled
// counter names in this registry (the exposition writers emit the
// name verbatim, which is valid Prometheus text).
func Label(name, key, value string) string {
	return fmt.Sprintf("%s{%s=%q}", name, key, value)
}

// baseName strips a {label...} suffix.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// WritePrometheus renders every instrument in the Prometheus text
// exposition format, names sorted. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	snap := r.Snapshot()
	var names []string
	for n := range snap.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	lastType := ""
	for _, n := range names {
		if b := baseName(n); b != lastType {
			lastType = b
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", b); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", n, snap.Counters[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range snap.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", baseName(n), n, formatFloat(snap.Gauges[n])); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range snap.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := snap.Histograms[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		cum := int64(0)
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, formatFloat(b), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
			n, h.Count, n, formatFloat(h.Sum), n, h.Count); err != nil {
			return err
		}
	}
	return nil
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteJSON renders a Snapshot of every instrument as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// HistogramSnapshot is the frozen state of one histogram. Exemplars
// holds, per bucket (last entry is +Inf), the trace id of the most
// recent sampled observation that landed there; zero means none.
type HistogramSnapshot struct {
	Bounds    []float64 `json:"bounds"`
	Counts    []int64   `json:"counts"` // per-bucket (not cumulative); last is +Inf
	Exemplars []TraceID `json:"exemplars,omitempty"`
	Sum       float64   `json:"sum"`
	Count     int64     `json:"count"`
}

// Quantile estimates the q-quantile from the bucket counts: rank-walk
// to the covering bucket, then interpolate linearly inside it. These
// are estimates, not exact order statistics, but enough to compare
// against bucket-scale SLOs. Edge cases are pinned, not implicit:
//
//   - An empty snapshot (zero Count, no Counts, or no finite Bounds)
//     returns 0.
//   - q is clamped into [0, 1]; NaN is treated as 0.
//   - q = 0 returns the lower edge of the first occupied bucket (0 for
//     the first bucket).
//   - q = 1 returns the upper bound of the last occupied bucket;
//     observations in the +Inf bucket clamp to the last finite bound,
//     which is also the fallback whenever the rank walk runs off the
//     end.
//   - A single-bucket histogram interpolates inside [0, Bounds[0]]
//     like any other bucket.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 || len(h.Counts) == 0 {
		return 0
	}
	if math.IsNaN(q) || q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var cum float64
	for i, c := range h.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(h.Bounds) {
			break // +Inf bucket
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		frac := (rank - prev) / float64(c)
		return lo + frac*(h.Bounds[i]-lo)
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Diff returns the histogram of observations made since prev (counts
// and sum subtracted bucket-wise; exemplars keep the current,
// most-recent values). Mismatched bucket layouts return h unchanged.
func (h HistogramSnapshot) Diff(prev HistogramSnapshot) HistogramSnapshot {
	if len(prev.Counts) != len(h.Counts) {
		return h
	}
	d := HistogramSnapshot{
		Bounds:    append([]float64(nil), h.Bounds...),
		Counts:    append([]int64(nil), h.Counts...),
		Exemplars: append([]TraceID(nil), h.Exemplars...),
		Sum:       h.Sum - prev.Sum,
		Count:     h.Count - prev.Count,
	}
	for i := range d.Counts {
		d.Counts[i] -= prev.Counts[i]
	}
	return d
}

// Snapshot is a frozen copy of a registry, comparable across time.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot freezes the registry. A nil registry yields empty maps.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range r.hists {
		hs := HistogramSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Sum:    h.Sum(),
			Count:  h.Count(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		for i := range h.exemplars {
			if id := h.exemplars[i].Load(); id != 0 {
				if hs.Exemplars == nil {
					hs.Exemplars = make([]TraceID, len(h.exemplars))
				}
				hs.Exemplars[i] = TraceID(id)
			}
		}
		s.Histograms[n] = hs
	}
	return s
}

// Counter returns the snapshotted value of a counter (0 if absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns the snapshotted value of a gauge (0 if absent).
func (s Snapshot) Gauge(name string) float64 { return s.Gauges[name] }

// Histogram returns the snapshotted state of a histogram (zero value
// if absent).
func (s Snapshot) Histogram(name string) HistogramSnapshot { return s.Histograms[name] }

// CounterSum sums every counter whose base name (label-stripped)
// equals base — e.g. all dn_drops_total{reason=...} series.
func (s Snapshot) CounterSum(base string) int64 {
	var sum int64
	for n, v := range s.Counters {
		if baseName(n) == base {
			sum += v
		}
	}
	return sum
}

// Diff returns a snapshot holding the change since prev: counter and
// histogram counts are subtracted, gauges keep their current value.
// The diff API is how tests assert "this operation incremented
// exactly these metrics".
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for n, v := range s.Counters {
		if d := v - prev.Counters[n]; d != 0 {
			out.Counters[n] = d
		}
	}
	for n, v := range s.Gauges {
		out.Gauges[n] = v
	}
	for n, h := range s.Histograms {
		p, ok := prev.Histograms[n]
		d := HistogramSnapshot{
			Bounds: append([]float64(nil), h.Bounds...),
			Counts: append([]int64(nil), h.Counts...),
			// Exemplars are most-recent-wins, not cumulative: the diff
			// keeps the current ones.
			Exemplars: append([]TraceID(nil), h.Exemplars...),
			Sum:       h.Sum,
			Count:     h.Count,
		}
		if ok && len(p.Counts) == len(h.Counts) {
			for i := range d.Counts {
				d.Counts[i] -= p.Counts[i]
			}
			d.Sum -= p.Sum
			d.Count -= p.Count
		}
		if d.Count != 0 {
			out.Histograms[n] = d
		}
	}
	return out
}
