package obs

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestFlightRecorderRingOverwrite(t *testing.T) {
	r := NewFlightRecorder(4)
	for i := 1; i <= 10; i++ {
		r.Record(FlightEvent{Kind: FlightTrace, Name: "answered", Value: float64(i), TimeNs: int64(i)})
	}
	snap := r.Snapshot()
	if snap.Frozen {
		t.Fatal("recorder frozen without a trigger")
	}
	if snap.TotalEvents != 10 {
		t.Errorf("TotalEvents = %d, want 10", snap.TotalEvents)
	}
	if len(snap.Events) != 4 {
		t.Fatalf("retained %d events, want ring size 4", len(snap.Events))
	}
	for i, ev := range snap.Events {
		if want := uint64(7 + i); ev.Seq != want {
			t.Errorf("event %d Seq = %d, want %d (oldest retained first)", i, ev.Seq, want)
		}
	}
}

func TestFlightRecorderFreezeOnce(t *testing.T) {
	r := NewFlightRecorder(8)
	r.Record(FlightEvent{Kind: FlightMetric, Name: "shed_rate", Value: 0.9, TimeNs: 1})
	if !r.Trigger("shed_spike", "shed rate 0.9 over last window", 0.9) {
		t.Fatal("first trigger returned false")
	}
	if r.Trigger("shed_spike", "again", 0.95) {
		t.Fatal("second trigger returned true")
	}
	if !r.Frozen() {
		t.Fatal("not frozen after trigger")
	}
	if r.MissedTriggers() != 1 {
		t.Errorf("MissedTriggers = %d, want 1", r.MissedTriggers())
	}
	// Post-freeze records are dropped: the snapshot is a postmortem.
	r.Record(FlightEvent{Kind: FlightTrace, Name: "late", TimeNs: 99})
	snap := r.Snapshot()
	if !snap.Frozen || snap.Trigger == nil {
		t.Fatalf("snapshot = %+v, want frozen with trigger", snap)
	}
	if snap.Trigger.Name != "shed_spike" || snap.Trigger.Kind != FlightTrigger {
		t.Errorf("trigger = %+v", snap.Trigger)
	}
	last := snap.Events[len(snap.Events)-1]
	if last.Kind != FlightTrigger || last.Name != "shed_spike" {
		t.Errorf("last event = %+v, want the trigger itself", last)
	}
	for _, ev := range snap.Events {
		if ev.Name == "late" {
			t.Error("post-freeze event leaked into the snapshot")
		}
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not marshalable: %v", err)
	}
}

func TestFlightRecorderConcurrentTrigger(t *testing.T) {
	r := NewFlightRecorder(16)
	for i := 0; i < 8; i++ {
		r.Record(FlightEvent{Kind: FlightTrace, Name: "answered", TimeNs: int64(i + 1)})
	}
	var wg sync.WaitGroup
	wins := make(chan bool, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wins <- r.Trigger("shed_spike", "storm", 1)
		}()
	}
	wg.Wait()
	close(wins)
	won := 0
	for w := range wins {
		if w {
			won++
		}
	}
	if won != 1 {
		t.Fatalf("%d triggers won, want exactly 1", won)
	}
	if r.MissedTriggers() != 31 {
		t.Errorf("MissedTriggers = %d, want 31", r.MissedTriggers())
	}
	snap := r.Snapshot()
	if !snap.Frozen || snap.Trigger == nil {
		t.Fatal("not frozen with trigger after concurrent storm")
	}
	// 8 pre-freeze events + the trigger; concurrent losers add nothing.
	if len(snap.Events) != 9 {
		t.Errorf("snapshot holds %d events, want 9", len(snap.Events))
	}
}

func TestFlightRecorderConcurrentRecord(t *testing.T) {
	r := NewFlightRecorder(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Record(FlightEvent{Kind: FlightTrace, Name: "answered"})
			}
		}()
	}
	wg.Wait()
	snap := r.Snapshot()
	if snap.TotalEvents != 1600 {
		t.Errorf("TotalEvents = %d, want 1600", snap.TotalEvents)
	}
	if len(snap.Events) != 32 {
		t.Errorf("retained %d, want 32", len(snap.Events))
	}
	for i := 1; i < len(snap.Events); i++ {
		if snap.Events[i].Seq <= snap.Events[i-1].Seq {
			t.Fatalf("events out of order at %d: %d then %d", i, snap.Events[i-1].Seq, snap.Events[i].Seq)
		}
	}
}

func TestFlightRecorderDisabled(t *testing.T) {
	if NewFlightRecorder(0) != nil {
		t.Error("NewFlightRecorder(0) != nil")
	}
	var r *FlightRecorder
	r.Record(FlightEvent{Kind: FlightTrace})
	if r.Trigger("shed_spike", "", 0) {
		t.Error("nil recorder trigger returned true")
	}
	if r.Frozen() || r.MissedTriggers() != 0 {
		t.Error("nil recorder has state")
	}
	snap := r.Snapshot()
	if snap.Frozen || snap.Events == nil || len(snap.Events) != 0 {
		t.Errorf("nil recorder snapshot = %+v, want empty non-nil Events", snap)
	}
}
