package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("msgs_total")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("msgs_total") != c {
		t.Error("second lookup returned a different counter")
	}

	g := r.Gauge("depth")
	g.Set(2.5)
	g.Add(-0.5)
	if got := g.Value(); got != 2.0 {
		t.Errorf("gauge = %v, want 2", got)
	}

	h := r.Histogram("hops", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 2, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("hist count = %d, want 5", h.Count())
	}
	if h.Sum() != 106.5 {
		t.Errorf("hist sum = %v, want 106.5", h.Sum())
	}
	snap := r.Snapshot()
	hs := snap.Histograms["hops"]
	want := []int64{2, 1, 1, 1} // ≤1, ≤2, ≤4, +Inf
	for i, w := range want {
		if hs.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (%v)", i, hs.Counts[i], w, hs.Counts)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("a").Inc()
	r.Gauge("b").Set(1)
	r.Histogram("c", HopBuckets).Observe(3)
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || snap.Counter("a") != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", snap)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("dn_sent_total").Add(7)
	r.Counter(Label("dn_drops_total", "reason", "ttl exceeded")).Inc()
	r.Gauge("dn_gini").Set(0.25)
	r.Histogram("dn_hops", []float64{1, 2}).Observe(2)
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE dn_sent_total counter\ndn_sent_total 7\n",
		"dn_drops_total{reason=\"ttl exceeded\"} 1",
		"# TYPE dn_gini gauge\ndn_gini 0.25\n",
		"dn_hops_bucket{le=\"2\"} 1",
		"dn_hops_bucket{le=\"+Inf\"} 1",
		"dn_hops_sum 2",
		"dn_hops_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestJSONExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(3)
	r.Histogram("h", []float64{1}).Observe(0.5)
	var b bytes.Buffer
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(b.Bytes(), &snap); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if snap.Counter("a_total") != 3 {
		t.Errorf("round-tripped counter = %d", snap.Counter("a_total"))
	}
	if snap.Histograms["h"].Count != 1 {
		t.Errorf("round-tripped histogram = %+v", snap.Histograms["h"])
	}
}

func TestSnapshotDiff(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total")
	h := r.Histogram("lat", []float64{10, 100})
	c.Add(2)
	h.Observe(5)
	before := r.Snapshot()
	c.Add(3)
	h.Observe(50)
	h.Observe(50)
	r.Gauge("depth").Set(9)
	diff := r.Snapshot().Diff(before)
	if diff.Counter("ops_total") != 3 {
		t.Errorf("diff counter = %d, want 3", diff.Counter("ops_total"))
	}
	if d := diff.Histograms["lat"]; d.Count != 2 || d.Counts[1] != 2 || d.Sum != 100 {
		t.Errorf("diff histogram = %+v", d)
	}
	if diff.Gauge("depth") != 9 {
		t.Errorf("diff gauge = %v, want current value 9", diff.Gauge("depth"))
	}
}

func TestCounterSum(t *testing.T) {
	r := NewRegistry()
	r.Counter(Label("drops_total", "reason", "a")).Add(2)
	r.Counter(Label("drops_total", "reason", "b")).Add(5)
	r.Counter("other_total").Add(100)
	if got := r.Snapshot().CounterSum("drops_total"); got != 7 {
		t.Errorf("CounterSum = %d, want 7", got)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c_total").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", HopBuckets).Observe(float64(j % 64))
			}
		}()
	}
	wg.Wait()
	snap := r.Snapshot()
	if snap.Counter("c_total") != 8000 {
		t.Errorf("counter = %d, want 8000", snap.Counter("c_total"))
	}
	if snap.Gauge("g") != 8000 {
		t.Errorf("gauge = %v, want 8000", snap.Gauge("g"))
	}
	if snap.Histograms["h"].Count != 8000 {
		t.Errorf("histogram count = %d, want 8000", snap.Histograms["h"].Count)
	}
}

func TestHistogramSnapshotQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", []float64{10, 100, 1000})
	for i := 0; i < 90; i++ {
		h.Observe(5)
	}
	for i := 0; i < 10; i++ {
		h.Observe(500)
	}
	snap := r.Snapshot().Histogram("q")
	if p50 := snap.Quantile(0.50); p50 <= 0 || p50 > 10 {
		t.Errorf("p50 = %v, want in (0, 10]", p50)
	}
	if p99 := snap.Quantile(0.99); p99 <= 100 || p99 > 1000 {
		t.Errorf("p99 = %v, want in (100, 1000]", p99)
	}
	// Observations beyond the last finite bound clamp to it.
	for i := 0; i < 100; i++ {
		h.Observe(5000)
	}
	if p99 := r.Snapshot().Histogram("q").Quantile(0.99); p99 != 1000 {
		t.Errorf("p99 with +Inf mass = %v, want clamp to 1000", p99)
	}
	// Empty and absent histograms report 0.
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
	if got := r.Snapshot().Histogram("absent").Quantile(0.5); got != 0 {
		t.Errorf("absent Quantile = %v, want 0", got)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	r := NewRegistry()

	// Registered but never observed: Count == 0 reports 0.
	empty := r.Histogram("empty", []float64{1, 2})
	_ = empty
	if got := r.Snapshot().Histogram("empty").Quantile(0.5); got != 0 {
		t.Errorf("unobserved Quantile = %v, want 0", got)
	}

	// Single bucket: interpolation inside [0, bound].
	single := r.Histogram("single", []float64{10})
	for i := 0; i < 4; i++ {
		single.Observe(5)
	}
	snap := r.Snapshot().Histogram("single")
	if got := snap.Quantile(0.5); got != 5 {
		t.Errorf("single-bucket p50 = %v, want 5 (midpoint of [0,10])", got)
	}
	if got := snap.Quantile(0); got != 0 {
		t.Errorf("single-bucket q=0 = %v, want lower edge 0", got)
	}
	if got := snap.Quantile(1); got != 10 {
		t.Errorf("single-bucket q=1 = %v, want upper bound 10", got)
	}

	// q=0 lands on the lower edge of the first occupied bucket; q=1 on
	// the upper bound of the last occupied one.
	multi := r.Histogram("multi", []float64{1, 10, 100})
	multi.Observe(5)  // bucket (1,10]
	multi.Observe(50) // bucket (10,100]
	ms := r.Snapshot().Histogram("multi")
	if got := ms.Quantile(0); got != 1 {
		t.Errorf("q=0 = %v, want 1 (lower edge of first occupied bucket)", got)
	}
	if got := ms.Quantile(1); got != 100 {
		t.Errorf("q=1 = %v, want 100 (upper bound of last occupied bucket)", got)
	}

	// Out-of-range and NaN q are clamped, never panic.
	if got := ms.Quantile(-3); got != ms.Quantile(0) {
		t.Errorf("q=-3 = %v, want clamp to q=0 (%v)", got, ms.Quantile(0))
	}
	if got := ms.Quantile(7); got != ms.Quantile(1) {
		t.Errorf("q=7 = %v, want clamp to q=1 (%v)", got, ms.Quantile(1))
	}
	if got := ms.Quantile(math.NaN()); got != ms.Quantile(0) {
		t.Errorf("q=NaN = %v, want clamp to q=0 (%v)", got, ms.Quantile(0))
	}

	// All mass in +Inf clamps to the last finite bound.
	inf := r.Histogram("inf", []float64{1, 2})
	inf.Observe(1e9)
	if got := r.Snapshot().Histogram("inf").Quantile(0.5); got != 2 {
		t.Errorf("+Inf-only p50 = %v, want last finite bound 2", got)
	}
}

func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{10, 100})

	// Unsampled observations leave no exemplars (and allocate none in
	// the snapshot).
	h.Observe(5)
	if ex := r.Snapshot().Histogram("lat").Exemplars; ex != nil {
		t.Errorf("exemplars without sampled observations = %v, want nil", ex)
	}

	// A sampled observation pins its trace id at the covering bucket;
	// most recent wins.
	h.ObserveExemplar(5, 0xaaa)
	h.ObserveExemplar(7, 0xbbb)
	h.ObserveExemplar(50, 0xccc)
	h.ObserveExemplar(1e9, 0xddd) // +Inf bucket
	ex := r.Snapshot().Histogram("lat").Exemplars
	if len(ex) != 3 {
		t.Fatalf("exemplars len = %d, want 3 (2 bounds + Inf)", len(ex))
	}
	if ex[0] != 0xbbb || ex[1] != 0xccc || ex[2] != 0xddd {
		t.Errorf("exemplars = %v, want [bbb ccc ddd]", ex)
	}

	// ObserveExemplar with id 0 counts but never clears an exemplar.
	h.ObserveExemplar(5, 0)
	if got := r.Snapshot().Histogram("lat").Exemplars[0]; got != 0xbbb {
		t.Errorf("exemplar after unsampled observation = %v, want 0xbbb kept", got)
	}

	// Exemplars survive Snapshot.Diff (most-recent-wins, not subtracted)
	// and round-trip through JSON as hex strings.
	before := Snapshot{Histograms: map[string]HistogramSnapshot{}}
	diff := r.Snapshot().Diff(before)
	if got := diff.Histogram("lat").Exemplars; len(got) != 3 || got[1] != 0xccc {
		t.Errorf("diff exemplars = %v", got)
	}
	b, err := json.Marshal(r.Snapshot().Histogram("lat"))
	if err != nil {
		t.Fatal(err)
	}
	var back HistogramSnapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Exemplars) != 3 || back.Exemplars[2] != 0xddd {
		t.Errorf("round-tripped exemplars = %v", back.Exemplars)
	}

	// Nil histogram stays a no-op.
	var nh *Histogram
	nh.ObserveExemplar(1, 0x1)
}
