package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("msgs_total")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("msgs_total") != c {
		t.Error("second lookup returned a different counter")
	}

	g := r.Gauge("depth")
	g.Set(2.5)
	g.Add(-0.5)
	if got := g.Value(); got != 2.0 {
		t.Errorf("gauge = %v, want 2", got)
	}

	h := r.Histogram("hops", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 2, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("hist count = %d, want 5", h.Count())
	}
	if h.Sum() != 106.5 {
		t.Errorf("hist sum = %v, want 106.5", h.Sum())
	}
	snap := r.Snapshot()
	hs := snap.Histograms["hops"]
	want := []int64{2, 1, 1, 1} // ≤1, ≤2, ≤4, +Inf
	for i, w := range want {
		if hs.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (%v)", i, hs.Counts[i], w, hs.Counts)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("a").Inc()
	r.Gauge("b").Set(1)
	r.Histogram("c", HopBuckets).Observe(3)
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || snap.Counter("a") != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", snap)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("dn_sent_total").Add(7)
	r.Counter(Label("dn_drops_total", "reason", "ttl exceeded")).Inc()
	r.Gauge("dn_gini").Set(0.25)
	r.Histogram("dn_hops", []float64{1, 2}).Observe(2)
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE dn_sent_total counter\ndn_sent_total 7\n",
		"dn_drops_total{reason=\"ttl exceeded\"} 1",
		"# TYPE dn_gini gauge\ndn_gini 0.25\n",
		"dn_hops_bucket{le=\"2\"} 1",
		"dn_hops_bucket{le=\"+Inf\"} 1",
		"dn_hops_sum 2",
		"dn_hops_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestJSONExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(3)
	r.Histogram("h", []float64{1}).Observe(0.5)
	var b bytes.Buffer
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(b.Bytes(), &snap); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if snap.Counter("a_total") != 3 {
		t.Errorf("round-tripped counter = %d", snap.Counter("a_total"))
	}
	if snap.Histograms["h"].Count != 1 {
		t.Errorf("round-tripped histogram = %+v", snap.Histograms["h"])
	}
}

func TestSnapshotDiff(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total")
	h := r.Histogram("lat", []float64{10, 100})
	c.Add(2)
	h.Observe(5)
	before := r.Snapshot()
	c.Add(3)
	h.Observe(50)
	h.Observe(50)
	r.Gauge("depth").Set(9)
	diff := r.Snapshot().Diff(before)
	if diff.Counter("ops_total") != 3 {
		t.Errorf("diff counter = %d, want 3", diff.Counter("ops_total"))
	}
	if d := diff.Histograms["lat"]; d.Count != 2 || d.Counts[1] != 2 || d.Sum != 100 {
		t.Errorf("diff histogram = %+v", d)
	}
	if diff.Gauge("depth") != 9 {
		t.Errorf("diff gauge = %v, want current value 9", diff.Gauge("depth"))
	}
}

func TestCounterSum(t *testing.T) {
	r := NewRegistry()
	r.Counter(Label("drops_total", "reason", "a")).Add(2)
	r.Counter(Label("drops_total", "reason", "b")).Add(5)
	r.Counter("other_total").Add(100)
	if got := r.Snapshot().CounterSum("drops_total"); got != 7 {
		t.Errorf("CounterSum = %d, want 7", got)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c_total").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", HopBuckets).Observe(float64(j % 64))
			}
		}()
	}
	wg.Wait()
	snap := r.Snapshot()
	if snap.Counter("c_total") != 8000 {
		t.Errorf("counter = %d, want 8000", snap.Counter("c_total"))
	}
	if snap.Gauge("g") != 8000 {
		t.Errorf("gauge = %v, want 8000", snap.Gauge("g"))
	}
	if snap.Histograms["h"].Count != 8000 {
		t.Errorf("histogram count = %d, want 8000", snap.Histograms["h"].Count)
	}
}

func TestHistogramSnapshotQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", []float64{10, 100, 1000})
	for i := 0; i < 90; i++ {
		h.Observe(5)
	}
	for i := 0; i < 10; i++ {
		h.Observe(500)
	}
	snap := r.Snapshot().Histogram("q")
	if p50 := snap.Quantile(0.50); p50 <= 0 || p50 > 10 {
		t.Errorf("p50 = %v, want in (0, 10]", p50)
	}
	if p99 := snap.Quantile(0.99); p99 <= 100 || p99 > 1000 {
		t.Errorf("p99 = %v, want in (100, 1000]", p99)
	}
	// Observations beyond the last finite bound clamp to it.
	for i := 0; i < 100; i++ {
		h.Observe(5000)
	}
	if p99 := r.Snapshot().Histogram("q").Quantile(0.99); p99 != 1000 {
		t.Errorf("p99 with +Inf mass = %v, want clamp to 1000", p99)
	}
	// Empty and absent histograms report 0.
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
	if got := r.Snapshot().Histogram("absent").Quantile(0.5); got != 0 {
		t.Errorf("absent Quantile = %v, want 0", got)
	}
}
