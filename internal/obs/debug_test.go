package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServeDebug(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dn_sent_total").Add(11)
	srv, addr, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if body := get("/metrics"); !strings.Contains(body, "dn_sent_total 11") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if body := get("/metrics.json"); !strings.Contains(body, "\"dn_sent_total\": 11") {
		t.Errorf("/metrics.json missing counter:\n%s", body)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index unexpected:\n%s", body)
	}
}
