package obs

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestServeDebug(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dn_sent_total").Add(11)
	srv, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if body := get("/metrics"); !strings.Contains(body, "dn_sent_total 11") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if body := get("/metrics.json"); !strings.Contains(body, "\"dn_sent_total\": 11") {
		t.Errorf("/metrics.json missing counter:\n%s", body)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index unexpected:\n%s", body)
	}
}

func TestServeDebugBindFailure(t *testing.T) {
	// Occupy a port, then ask ServeDebug for the same one.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if _, err := ServeDebug(ln.Addr().String(), nil); err == nil {
		t.Fatal("bind to an occupied port succeeded")
	}
}

func TestServeDebugCloseIdempotent(t *testing.T) {
	srv, err := ServeDebug("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := srv.Close(); err != nil {
			t.Fatalf("Close #%d after orderly shutdown: %v", i+2, err)
		}
	}
	select {
	case <-srv.Done():
	default:
		t.Fatal("Done not closed after Close returned")
	}
	if err := srv.Err(); err != nil {
		t.Fatalf("orderly Close surfaced a serve error: %v", err)
	}
	// The socket must actually be released.
	if _, err := net.DialTimeout("tcp", srv.Addr(), 100*time.Millisecond); err == nil {
		t.Fatal("address still accepting connections after Close")
	}
}

// TestServeDebugCloseConcurrent pins the shared-outcome contract:
// however many callers race into Close, all of them wait for the serve
// loop to exit and return the same outcome as the call that won.
func TestServeDebugCloseConcurrent(t *testing.T) {
	srv, err := ServeDebug("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() { errs <- srv.Close() }()
	}
	for i := 0; i < 4; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("concurrent Close: %v", err)
		}
		select {
		case <-srv.Done():
		default:
			t.Fatal("Close returned before the serve loop exited")
		}
	}
}

func TestServeDebugSurfacesServeFailure(t *testing.T) {
	srv, err := ServeDebug("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the listener out from under the serve loop: Serve returns a
	// real error (not ErrServerClosed), and the wrapper must surface it
	// instead of swallowing it — the bug this type exists to fix.
	srv.ln.Close()
	select {
	case <-srv.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("serve loop did not exit after its listener died")
	}
	if err := srv.Err(); err == nil {
		t.Fatal("serve failure swallowed: Err() is nil after the listener died")
	}
	// Close after the loop already died reports that same failure, and
	// stays idempotent.
	if err := srv.Close(); err == nil {
		t.Fatal("Close after serve failure must report it")
	}
	if err := srv.Close(); err == nil {
		t.Fatal("second Close must report the same failure")
	}
}

func TestServeDebugOptsTraceEndpoints(t *testing.T) {
	reg := NewRegistry()
	traces := NewTraceBuffer(4)
	tr := NewReqTrace(0xfeed, "route", "undirected", time.Unix(0, 0))
	tr.SetOutcome("answered")
	traces.Add(tr)
	flight := NewFlightRecorder(8)
	flight.Record(FlightEvent{Kind: FlightMetric, Name: "shed_rate", Value: 0.1, TimeNs: 1})
	flight.Trigger("shed_spike", "test storm", 0.9)

	srv, err := ServeDebugOpts("127.0.0.1:0", DebugOptions{Registry: reg, Traces: traces, Flight: flight})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	getJSON := func(path string, v any) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("GET %s: content type %q", path, ct)
		}
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: invalid JSON: %v", path, err)
		}
	}

	var ts TracesSnapshot
	getJSON("/debug/traces", &ts)
	if ts.Total != 1 || len(ts.Traces) != 1 || ts.Traces[0].ID != 0xfeed {
		t.Errorf("/debug/traces = %+v", ts)
	}
	var fs FlightSnapshot
	getJSON("/debug/flight", &fs)
	if !fs.Frozen || fs.Trigger == nil || fs.Trigger.Name != "shed_spike" {
		t.Errorf("/debug/flight = %+v", fs)
	}
}

func TestServeDebugOptsNilComponents(t *testing.T) {
	// Every component optional: nil traces/flight serve empty documents.
	srv, err := ServeDebugOpts("127.0.0.1:0", DebugOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{"/debug/traces", "/debug/flight"} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		var v map[string]any
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("GET %s: invalid JSON: %v", path, err)
		}
	}
}
