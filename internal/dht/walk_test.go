package dht

import (
	"math/rand"
	"testing"

	"repro/internal/word"
)

// driveWalk runs a Step loop by hand — the exact loop a forwarding
// cluster node executes — and returns the visited path, hop counts,
// and owner.
func driveWalk(t *testing.T, r *Ring, start *Node, st WalkState) (owner *Node, hops, dbHops int, path []word.Word) {
	t.Helper()
	cur := start
	path = []word.Word{cur.ID()}
	guard := 4*r.k + 2*len(r.nodes) + 4
	for step := 0; ; step++ {
		if step > guard {
			t.Fatalf("walk did not converge within %d steps", guard)
		}
		sr, err := r.Step(cur, st)
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		if sr.Next == nil {
			return cur, hops, dbHops, path
		}
		cur = sr.Next
		st = sr.State
		hops++
		if sr.DeBruijn {
			dbHops++
		}
		path = append(path, cur.ID())
		if sr.Final {
			return cur, hops, dbHops, path
		}
	}
}

// TestStepWalkMatchesLookup pins the tentpole equivalence: the
// resumable Step walk visits the same nodes as Lookup, hop for hop,
// for both the basic and the optimized imaginary start, across ring
// shapes and keys.
func TestStepWalkMatchesLookup(t *testing.T) {
	cases := []struct{ d, k, n int }{
		{2, 6, 1}, {2, 6, 2}, {2, 6, 10}, {2, 8, 16}, {3, 4, 7}, {2, 12, 32},
	}
	for _, tc := range cases {
		r := randomRing(t, tc.d, tc.k, tc.n, int64(tc.d*100+tc.k*10+tc.n))
		rng := rand.New(rand.NewSource(int64(tc.n)))
		for trial := 0; trial < 50; trial++ {
			key := word.Random(tc.d, tc.k, rng)
			start := r.nodes[rng.Intn(len(r.nodes))]
			for _, opt := range []bool{false, true} {
				var res LookupResult
				var st WalkState
				var err error
				if opt {
					res, err = r.LookupOptimized(start, key)
					if err == nil {
						st, err = r.StartWalkOptimized(start, key)
					}
				} else {
					res, err = r.Lookup(start, key)
					if err == nil {
						st, err = r.StartWalk(start, key)
					}
				}
				if err != nil {
					t.Fatalf("DG(%d,%d) n=%d opt=%v: %v", tc.d, tc.k, tc.n, opt, err)
				}
				owner, hops, dbHops, path := driveWalk(t, r, start, st)
				if owner != res.Owner || hops != res.Hops || dbHops != res.DeBruijnHops {
					t.Fatalf("DG(%d,%d) n=%d opt=%v key=%v from %v:\n step walk: owner=%v hops=%d db=%d\n lookup:    owner=%v hops=%d db=%d",
						tc.d, tc.k, tc.n, opt, key, start.ID(),
						owner.ID(), hops, dbHops, res.Owner.ID(), res.Hops, res.DeBruijnHops)
				}
				if len(path) != len(res.Path) {
					t.Fatalf("path lengths differ: %v vs %v", path, res.Path)
				}
				for i := range path {
					if path[i].String() != res.Path[i].String() {
						t.Fatalf("paths diverge at hop %d: %v vs %v", i, path, res.Path)
					}
				}
			}
		}
	}
}

// TestStepFinalTerminates pins the Final contract: the receiver of a
// Final hop is the owner and must not step again (its own Step would
// move past the key).
func TestStepFinalTerminates(t *testing.T) {
	r := randomRing(t, 2, 8, 16, 42)
	rng := rand.New(rand.NewSource(43))
	finals := 0
	for trial := 0; trial < 200; trial++ {
		key := word.Random(2, 8, rng)
		start := r.nodes[rng.Intn(len(r.nodes))]
		owner, err := r.Owner(key)
		if err != nil {
			t.Fatal(err)
		}
		st, err := r.StartWalk(start, key)
		if err != nil {
			t.Fatal(err)
		}
		cur := start
		for {
			sr, serr := r.Step(cur, st)
			if serr != nil {
				t.Fatal(serr)
			}
			if sr.Next == nil {
				if cur != owner {
					t.Fatalf("walk stopped at %v; owner is %v", cur.ID(), owner.ID())
				}
				break
			}
			if sr.Final {
				finals++
				if sr.Next != owner {
					t.Fatalf("final hop lands on %v; owner is %v", sr.Next.ID(), owner.ID())
				}
				break
			}
			cur, st = sr.Next, sr.State
		}
	}
	if finals == 0 {
		t.Fatal("no walk ended on a Final hop; test exercises nothing")
	}
}

// TestStepValidates covers the defensive paths.
func TestStepValidates(t *testing.T) {
	r := randomRing(t, 2, 4, 4, 7)
	key := word.MustParse(2, "0110")
	if _, err := r.Step(nil, WalkState{Key: key}); err == nil {
		t.Error("accepted nil node")
	}
	bad := word.MustParse(3, "012")
	if _, err := r.Step(r.nodes[0], WalkState{Key: bad}); err == nil {
		t.Error("accepted mismatched key")
	}
	if _, err := r.Step(r.nodes[0], WalkState{Key: key, Imaginary: key, Remaining: 99}); err == nil {
		t.Error("accepted out-of-range remaining count")
	}
	if _, err := r.StartWalk(nil, key); err == nil {
		t.Error("StartWalk accepted nil node")
	}
	if _, err := r.StartWalkOptimized(r.nodes[0], bad); err == nil {
		t.Error("StartWalkOptimized accepted mismatched key")
	}
}
