package dht

import (
	"math/rand"
	"testing"

	"repro/internal/obs"
	"repro/internal/word"
)

func TestRingObserver(t *testing.T) {
	const d, k = 2, 6
	rng := rand.New(rand.NewSource(7))
	ids := make([]word.Word, 0, 12)
	for len(ids) < 12 {
		ids = append(ids, word.Random(d, k, rng))
	}
	r, err := NewRing(d, k, ids)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	r.SetObserver(reg)

	key := word.Random(d, k, rng)
	totalHops, debruijn := 0, 0
	for _, n := range r.Nodes() {
		res, err := r.Lookup(n, key)
		if err != nil {
			t.Fatal(err)
		}
		totalHops += res.Hops
		debruijn += res.DeBruijnHops
	}

	snap := reg.Snapshot()
	want := int64(r.NumNodes())
	if got := snap.Counter("dht_lookups_total"); got != want {
		t.Errorf("lookups = %d, want %d", got, want)
	}
	if got := snap.Histograms["dht_lookup_hops"].Count; got != want {
		t.Errorf("lookup hop observations = %d, want %d", got, want)
	}
	if got := snap.Counter("dht_debruijn_hops_total"); got != int64(debruijn) {
		t.Errorf("de Bruijn hops = %d, want %d", got, debruijn)
	}
	succ := snap.Counter("dht_successor_hops_total")
	if int(succ)+debruijn != totalHops {
		t.Errorf("successor (%d) + de Bruijn (%d) hops != total %d", succ, debruijn, totalHops)
	}

	// Churn counters.
	var extra word.Word
	for {
		extra = word.Random(d, k, rng)
		if _, exists := r.NodeAt(extra); !exists {
			break
		}
	}
	if _, err := r.AddNode(extra); err != nil {
		t.Fatal(err)
	}
	if err := r.RemoveNode(extra); err != nil {
		t.Fatal(err)
	}
	snap = reg.Snapshot()
	if got := snap.Counter("dht_joins_total"); got != 1 {
		t.Errorf("joins = %d, want 1", got)
	}
	if got := snap.Counter("dht_leaves_total"); got != 1 {
		t.Errorf("leaves = %d, want 1", got)
	}
}
