// Package dht implements a Koorde-style distributed hash table on the
// de Bruijn graph — the modern setting in which the paper's routing
// survives. Identifiers are d-ary words of length k (the vertices of
// DG(d,k)); only a sparse subset of identifiers host real nodes. Each
// node keeps two pointers — its ring successor and its de Bruijn
// finger, the node preceding its type-L image m⁻(0) — and lookups walk
// *imaginary* de Bruijn hops: the current real node simulates the
// shift-register move of an imaginary identifier it stands in for,
// injecting one digit of the key per de Bruijn hop (exactly the
// paper's Algorithm 1 path y_{l+1}…y_k, executed over a sparse ring).
//
// With N real nodes this resolves lookups in O(k + N-segment walks)
// hops — O(log_d(ID space) + log N) expected for random node sets —
// using constant state per node, against the O(N)-entry tables a
// naive DHT would need. (Koorde: Kaashoek & Karger, IPTPS 2003; the
// imaginary-node trick is their contribution, the routing is the
// paper's.)
package dht

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/word"
)

// DHT metric names (README.md § Observability).
const (
	metricLookups       = "dht_lookups_total"
	metricLookupHops    = "dht_lookup_hops"
	metricDeBruijnHops  = "dht_debruijn_hops_total"
	metricSuccessorHops = "dht_successor_hops_total"
	metricTimeouts      = "dht_lookup_timeouts_total"
	metricJoins         = "dht_joins_total"
	metricLeaves        = "dht_leaves_total"
)

// ringMetrics are pre-resolved instrument handles; all nil when
// observation is off.
type ringMetrics struct {
	lookups, debruijnHops, successorHops *obs.Counter
	timeouts, joins, leaves              *obs.Counter
	lookupHops                           *obs.Histogram
}

// Node is one DHT participant.
type Node struct {
	id   word.Word
	rank uint64
	// successor is the next real node clockwise on the identifier
	// ring.
	successor *Node
	// finger is the real node preceding id⁻(0), the start of this
	// node's de Bruijn image block.
	finger *Node
}

// ID returns the node's identifier.
func (n *Node) ID() word.Word { return n.id }

// Successor returns the clockwise neighbor.
func (n *Node) Successor() *Node { return n.successor }

// Finger returns the de Bruijn finger.
func (n *Node) Finger() *Node { return n.finger }

// Ring is a static Koorde ring over DG(d,k) identifiers.
type Ring struct {
	d, k  int
	nodes []*Node // sorted by rank
	m     ringMetrics
}

// SetObserver attaches a metrics registry: lookup counts and hop
// histograms, de Bruijn vs successor hop split, convergence-guard
// timeouts, and churn events land in it. A nil registry detaches.
func (r *Ring) SetObserver(reg *obs.Registry) {
	if reg == nil {
		r.m = ringMetrics{}
		return
	}
	r.m = ringMetrics{
		lookups:       reg.Counter(metricLookups),
		debruijnHops:  reg.Counter(metricDeBruijnHops),
		successorHops: reg.Counter(metricSuccessorHops),
		timeouts:      reg.Counter(metricTimeouts),
		joins:         reg.Counter(metricJoins),
		leaves:        reg.Counter(metricLeaves),
		lookupHops:    reg.Histogram(metricLookupHops, obs.HopBuckets),
	}
}

// Errors returned by the ring.
var (
	ErrNoNodes = errors.New("dht: ring needs at least one node")
	ErrBadID   = errors.New("dht: identifier does not match the ring")
)

// NewRing builds a ring from the given node identifiers (duplicates
// are merged). All identifiers must be d-ary words of length k.
func NewRing(d, k int, ids []word.Word) (*Ring, error) {
	if len(ids) == 0 {
		return nil, ErrNoNodes
	}
	if _, err := word.Count(d, k); err != nil {
		return nil, err
	}
	seen := make(map[uint64]bool, len(ids))
	r := &Ring{d: d, k: k}
	for _, id := range ids {
		if id.Base() != d || id.Len() != k {
			return nil, fmt.Errorf("%w: %v for DG(%d,%d)", ErrBadID, id, d, k)
		}
		rank := id.MustRank()
		if seen[rank] {
			continue
		}
		seen[rank] = true
		r.nodes = append(r.nodes, &Node{id: id, rank: rank})
	}
	sort.Slice(r.nodes, func(i, j int) bool { return r.nodes[i].rank < r.nodes[j].rank })
	for i, n := range r.nodes {
		n.successor = r.nodes[(i+1)%len(r.nodes)]
		n.finger = r.predecessorOfRank(n.id.ShiftLeft(0).MustRank())
	}
	return r, nil
}

// NumNodes returns the number of real nodes.
func (r *Ring) NumNodes() int { return len(r.nodes) }

// Nodes returns the nodes in ring order.
func (r *Ring) Nodes() []*Node {
	out := make([]*Node, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// predecessorOfRank returns the last node with rank ≤ target, wrapping
// to the highest-ranked node below the ring's smallest identifier.
func (r *Ring) predecessorOfRank(target uint64) *Node {
	i := sort.Search(len(r.nodes), func(i int) bool { return r.nodes[i].rank > target })
	if i == 0 {
		return r.nodes[len(r.nodes)-1]
	}
	return r.nodes[i-1]
}

// Owner returns the node responsible for key: the successor of key on
// the ring (ground truth for Lookup).
func (r *Ring) Owner(key word.Word) (*Node, error) {
	if key.Base() != r.d || key.Len() != r.k {
		return nil, fmt.Errorf("%w: %v", ErrBadID, key)
	}
	target := key.MustRank()
	i := sort.Search(len(r.nodes), func(i int) bool { return r.nodes[i].rank >= target })
	if i == len(r.nodes) {
		return r.nodes[0], nil
	}
	return r.nodes[i], nil
}

// NodeAt returns the node with exactly the given identifier, if any.
func (r *Ring) NodeAt(id word.Word) (*Node, bool) {
	if id.Base() != r.d || id.Len() != r.k {
		return nil, false
	}
	target := id.MustRank()
	i := sort.Search(len(r.nodes), func(i int) bool { return r.nodes[i].rank >= target })
	if i < len(r.nodes) && r.nodes[i].rank == target {
		return r.nodes[i], true
	}
	return nil, false
}

// inHalfOpen reports whether x lies in the cyclic interval (a, b].
func inHalfOpen(a, b, x uint64) bool {
	if a == b {
		return true // single-node ring: the whole circle
	}
	if a < b {
		return a < x && x <= b
	}
	return x > a || x <= b
}

// inBlock reports whether x lies in the cyclic interval [a, b): the
// identifiers node a stands in for (a's block runs to its successor).
func inBlock(a, b, x uint64) bool {
	if a == b {
		return true
	}
	if a < b {
		return a <= x && x < b
	}
	return x >= a || x < b
}

// LookupResult reports one resolved lookup.
type LookupResult struct {
	Owner *Node
	// Hops counts messages: successor-walk hops plus de Bruijn hops.
	Hops int
	// DeBruijnHops counts only the imaginary shift steps.
	DeBruijnHops int
	// Path lists the real nodes visited, starting with the origin.
	Path []word.Word
}

// Lookup resolves the owner of key starting at node start with the
// basic Koorde walk: the imaginary identifier begins at the start
// node's own identifier, and each de Bruijn hop injects the key's next
// digit (the paper's Algorithm 1 path y_1…y_k executed over the sparse
// ring), interleaved with successor hops. Exactly k de Bruijn hops
// resolve any key. Deterministic.
func (r *Ring) Lookup(start *Node, key word.Word) (LookupResult, error) {
	if start == nil {
		return LookupResult{}, errors.New("dht: nil start node")
	}
	if key.Base() != r.d || key.Len() != r.k {
		return LookupResult{}, fmt.Errorf("%w: %v", ErrBadID, key)
	}
	st, err := r.StartWalk(start, key)
	if err != nil {
		return LookupResult{}, err
	}
	return r.lookup(start, st)
}

// LookupOptimized is Koorde's "best imaginary starting node"
// refinement: instead of the node's own identifier, the walk starts
// from the identifier inside the start node's block that minimizes
// the paper's Property 1 distance to the key — the block member with
// the longest suffix matching the key's prefix. With N random nodes
// the blocks have size ≈ d^k/N, so ≈ log_d N digit injections remain
// instead of k.
func (r *Ring) LookupOptimized(start *Node, key word.Word) (LookupResult, error) {
	if start == nil {
		return LookupResult{}, errors.New("dht: nil start node")
	}
	if key.Base() != r.d || key.Len() != r.k {
		return LookupResult{}, fmt.Errorf("%w: %v", ErrBadID, key)
	}
	st, err := r.StartWalkOptimized(start, key)
	if err != nil {
		return LookupResult{}, err
	}
	return r.lookup(start, st)
}

// lookup runs the Koorde walk as a Step loop — the same transition a
// cluster node applies per forwarded hop, so in-process lookups and
// distributed walks agree hop-for-hop by construction.
func (r *Ring) lookup(start *Node, st WalkState) (LookupResult, error) {
	cur := start
	res := LookupResult{Path: []word.Word{start.id}}
	guard := 4*r.k + 2*len(r.nodes) + 4
	for step := 0; ; step++ {
		if step > guard {
			r.m.timeouts.Inc()
			return LookupResult{}, fmt.Errorf("dht: lookup did not converge within %d steps", guard)
		}
		sr, err := r.Step(cur, st)
		if err != nil {
			return LookupResult{}, err
		}
		if sr.Next == nil {
			res.Owner = cur
			r.observeLookup(res)
			return res, nil
		}
		cur = sr.Next
		st = sr.State
		if sr.DeBruijn {
			res.DeBruijnHops++
		}
		res.Hops++
		res.Path = append(res.Path, cur.id)
		if sr.Final {
			res.Owner = cur
			r.observeLookup(res)
			return res, nil
		}
	}
}

// observeLookup records one resolved lookup in the registry.
func (r *Ring) observeLookup(res LookupResult) {
	r.m.lookups.Inc()
	r.m.lookupHops.Observe(float64(res.Hops))
	r.m.debruijnHops.Add(int64(res.DeBruijnHops))
	r.m.successorHops.Add(int64(res.Hops - res.DeBruijnHops))
}

// bestImaginary returns the identifier in start's block [start,
// successor) whose directed de Bruijn distance to key (Property 1) is
// minimal, together with the key digits still to inject (the last
// D(i,key) digits of the key). Searches overlap lengths longest-first
// with modular arithmetic over the block.
func (r *Ring) bestImaginary(start *Node, key word.Word) (word.Word, []byte, error) {
	a := start.rank
	b := start.successor.rank
	size, err := word.Count(r.d, r.k)
	if err != nil {
		return word.Word{}, nil, err
	}
	n := uint64(size)
	blockLen := (b - a + n) % n
	if blockLen == 0 {
		blockLen = n // single node: whole ring
	}
	for s := r.k; s >= 0; s-- {
		// Need i ∈ [a, a+blockLen) with i ≡ prefix_s(key) mod d^s.
		m := uint64(1)
		overflow := false
		for j := 0; j < s; j++ {
			m *= uint64(r.d)
			if m > n {
				overflow = true
				break
			}
		}
		if overflow {
			continue
		}
		var p uint64
		for j := 0; j < s; j++ {
			p = p*uint64(r.d) + uint64(key.Digit(j))
		}
		// Smallest i ≥ a with i ≡ p (mod m), working modulo n (n is a
		// multiple of m, so congruence classes tile the ring).
		delta := (p + n - a%m) % m
		if delta < blockLen {
			i := (a + delta) % n
			img, err := word.Unrank(r.d, r.k, i)
			if err != nil {
				return word.Word{}, nil, err
			}
			return img, key.Digits()[s:], nil
		}
	}
	return start.id, key.Digits(), nil
}

// LookupFromAll resolves key from every node and returns the worst
// and mean hop counts — the DHT experiment's summary statistic.
func (r *Ring) LookupFromAll(key word.Word) (maxHops int, meanHops float64, err error) {
	total := 0
	for _, n := range r.nodes {
		res, lerr := r.Lookup(n, key)
		if lerr != nil {
			return 0, 0, lerr
		}
		owner, oerr := r.Owner(key)
		if oerr != nil {
			return 0, 0, oerr
		}
		if res.Owner != owner {
			return 0, 0, fmt.Errorf("dht: lookup from %v found %v, owner is %v", n.id, res.Owner.id, owner.id)
		}
		total += res.Hops
		if res.Hops > maxHops {
			maxHops = res.Hops
		}
	}
	return maxHops, float64(total) / float64(len(r.nodes)), nil
}
