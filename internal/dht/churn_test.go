package dht

import (
	"math/rand"
	"testing"

	"repro/internal/word"
)

func TestAddRemoveNodeKeepsLookupsCorrect(t *testing.T) {
	r := randomRing(t, 2, 8, 8, 31)
	rng := rand.New(rand.NewSource(32))
	for round := 0; round < 30; round++ {
		// Random churn step.
		if rng.Intn(2) == 0 || r.NumNodes() <= 2 {
			id := word.Random(2, 8, rng)
			if _, exists := r.NodeAt(id); !exists {
				if _, err := r.AddNode(id); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			victim := r.Nodes()[rng.Intn(r.NumNodes())]
			if err := r.RemoveNode(victim.ID()); err != nil {
				t.Fatal(err)
			}
		}
		// Lookups stay correct after every step.
		for trial := 0; trial < 20; trial++ {
			key := word.Random(2, 8, rng)
			start := r.Nodes()[rng.Intn(r.NumNodes())]
			res, err := r.LookupOptimized(start, key)
			if err != nil {
				t.Fatal(err)
			}
			owner, err := r.Owner(key)
			if err != nil {
				t.Fatal(err)
			}
			if res.Owner != owner {
				t.Fatalf("round %d: lookup(%v) = %v, owner %v", round, key, res.Owner.ID(), owner.ID())
			}
		}
	}
}

func TestAddNodeValidates(t *testing.T) {
	r := randomRing(t, 2, 4, 3, 33)
	existing := r.Nodes()[0].ID()
	if _, err := r.AddNode(existing); err == nil {
		t.Error("accepted duplicate identifier")
	}
	if _, err := r.AddNode(word.MustParse(2, "01")); err == nil {
		t.Error("accepted short identifier")
	}
	n, err := r.AddNode(word.MustParse(2, "0110"))
	if err != nil {
		if _, exists := r.NodeAt(word.MustParse(2, "0110")); !exists {
			t.Fatal(err)
		}
	} else if !n.ID().Equal(word.MustParse(2, "0110")) {
		t.Errorf("added node has id %v", n.ID())
	}
}

func TestRemoveNodeValidates(t *testing.T) {
	r, err := NewRing(2, 4, []word.Word{word.MustParse(2, "0001")})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RemoveNode(word.MustParse(2, "1111")); err == nil {
		t.Error("removed absent node")
	}
	if err := r.RemoveNode(word.MustParse(2, "0001")); err == nil {
		t.Error("removed the last node")
	}
}

func TestChurnMaintainsFingerInvariant(t *testing.T) {
	r := randomRing(t, 2, 6, 6, 34)
	if _, err := r.AddNode(word.MustParse(2, "111000")); err != nil {
		t.Fatal(err)
	}
	for _, n := range r.Nodes() {
		img := n.ID().ShiftLeft(0).MustRank()
		f := n.Finger()
		if f.rank == img {
			continue
		}
		for _, m := range r.Nodes() {
			if m == f {
				continue
			}
			if inHalfOpen(f.rank, img, m.rank) && m.rank != img {
				t.Fatalf("after churn: node %v between finger %v and image %d", m.ID(), f.ID(), img)
			}
		}
	}
}
