package dht

import (
	"fmt"

	"repro/internal/word"
)

// Churn operations. Koorde maintains pointers incrementally with
// Chord-style stabilization; this static model rebuilds the two
// pointers of every node on membership change — O(N log N), fine for
// simulation and clearly correct. The lookup path is identical either
// way, which is what the experiments measure.

// AddNode inserts a node with the given identifier and rebuilds the
// ring pointers. Adding an existing identifier is an error.
func (r *Ring) AddNode(id word.Word) (*Node, error) {
	if id.Base() != r.d || id.Len() != r.k {
		return nil, fmt.Errorf("%w: %v", ErrBadID, id)
	}
	if _, exists := r.NodeAt(id); exists {
		return nil, fmt.Errorf("dht: node %v already present", id)
	}
	ids := make([]word.Word, 0, len(r.nodes)+1)
	for _, n := range r.nodes {
		ids = append(ids, n.id)
	}
	ids = append(ids, id)
	rebuilt, err := NewRing(r.d, r.k, ids)
	if err != nil {
		return nil, err
	}
	r.nodes = rebuilt.nodes
	r.m.joins.Inc()
	n, _ := r.NodeAt(id)
	return n, nil
}

// RemoveNode deletes the node with the given identifier and rebuilds
// the ring; the last node cannot be removed.
func (r *Ring) RemoveNode(id word.Word) error {
	if _, exists := r.NodeAt(id); !exists {
		return fmt.Errorf("dht: node %v not present", id)
	}
	if len(r.nodes) == 1 {
		return fmt.Errorf("dht: cannot remove the last node")
	}
	ids := make([]word.Word, 0, len(r.nodes)-1)
	for _, n := range r.nodes {
		if !n.id.Equal(id) {
			ids = append(ids, n.id)
		}
	}
	rebuilt, err := NewRing(r.d, r.k, ids)
	if err != nil {
		return err
	}
	r.nodes = rebuilt.nodes
	r.m.leaves.Inc()
	return nil
}
