package dht

import (
	"errors"
	"fmt"

	"repro/internal/word"
)

// Resumable lookups. Lookup resolves a key in one call on one machine;
// a cluster of real servers cannot — each node only decides the next
// hop and ships the walk's state to it. StartWalk/Step factor the
// Koorde walk into exactly that shape: Step is the pure per-node
// transition, WalkState is what travels on the wire between nodes, and
// Lookup itself is re-expressed as StartWalk + a Step loop, so the
// distributed walk is hop-for-hop the walk the in-process tests and
// experiments measure — same owners, same hop counts, same paths.

// WalkState is the portable state of a Koorde walk between hops: the
// key being resolved, the imaginary identifier the current node stands
// in for, and how many of the key's digits are still to inject. The
// inject sequence is always a suffix of the key's digits (StartWalk
// begins with all k, the optimized start with fewer), so Remaining
// fully determines it — which is what keeps the state cheap to
// serialize for inter-node forwarding.
type WalkState struct {
	Key       word.Word
	Imaginary word.Word
	Remaining int
}

// inject returns the key digits still to inject.
func (st WalkState) inject() []byte {
	digits := st.Key.Digits()
	return digits[len(digits)-st.Remaining:]
}

// StepResult is one node's routing decision for a walk.
type StepResult struct {
	// Next is the node the walk moves to; nil when the stepping node
	// owns the key and the walk is done.
	Next *Node
	// Final reports that Next is the key's owner: the receiver must
	// answer without stepping again (its own Step would walk past —
	// ownership of a key in (predecessor, id] is only visible from the
	// predecessor's side).
	Final bool
	// DeBruijn reports an imaginary shift hop (digit injected);
	// false is a successor hop.
	DeBruijn bool
	// State is the walk state to hand to Next.
	State WalkState
}

// StartWalk begins the basic Koorde walk at start: the imaginary
// identifier is the node's own, and all k key digits remain to inject.
func (r *Ring) StartWalk(start *Node, key word.Word) (WalkState, error) {
	if start == nil {
		return WalkState{}, errors.New("dht: nil start node")
	}
	if key.Base() != r.d || key.Len() != r.k {
		return WalkState{}, fmt.Errorf("%w: %v", ErrBadID, key)
	}
	return WalkState{Key: key, Imaginary: start.id, Remaining: r.k}, nil
}

// StartWalkOptimized begins the walk from the best imaginary
// identifier in start's block (Koorde's refinement): the block member
// whose suffix overlaps the key's prefix longest, leaving only the
// unmatched digits to inject.
func (r *Ring) StartWalkOptimized(start *Node, key word.Word) (WalkState, error) {
	if start == nil {
		return WalkState{}, errors.New("dht: nil start node")
	}
	if key.Base() != r.d || key.Len() != r.k {
		return WalkState{}, fmt.Errorf("%w: %v", ErrBadID, key)
	}
	img, remaining, err := r.bestImaginary(start, key)
	if err != nil {
		return WalkState{}, err
	}
	return WalkState{Key: key, Imaginary: img, Remaining: len(remaining)}, nil
}

// Step is one node's transition of the walk: given that cur holds
// state st, it returns where the walk goes next. It mutates nothing —
// the caller (a lookup loop in-process, a forwarding server in a
// cluster) owns progress and termination. The transition order is the
// Koorde walk's: ownership, successor-interval termination, de Bruijn
// digit injection, successor catch-up.
func (r *Ring) Step(cur *Node, st WalkState) (StepResult, error) {
	if cur == nil {
		return StepResult{}, errors.New("dht: nil current node")
	}
	if st.Key.Base() != r.d || st.Key.Len() != r.k {
		return StepResult{}, fmt.Errorf("%w: %v", ErrBadID, st.Key)
	}
	if st.Remaining < 0 || st.Remaining > r.k {
		return StepResult{}, fmt.Errorf("dht: walk state has %d digits remaining for DG(%d,%d)", st.Remaining, r.d, r.k)
	}
	keyRank := st.Key.MustRank()
	if keyRank == cur.rank {
		return StepResult{State: st}, nil
	}
	if inHalfOpen(cur.rank, cur.successor.rank, keyRank) {
		return StepResult{Next: cur.successor, Final: true, State: st}, nil
	}
	if st.Remaining > 0 && inBlock(cur.rank, cur.successor.rank, st.Imaginary.MustRank()) {
		// The imaginary identifier lives in cur's block: take a
		// de Bruijn hop injecting the key's next digit. The next
		// holder is the image's predecessor (cur's finger points at
		// the start of the image block; predecessorOfRank resolves
		// the exact member).
		img := st.Imaginary.ShiftLeft(st.inject()[0])
		next := r.predecessorOfRank(img.MustRank())
		return StepResult{
			Next:     next,
			DeBruijn: true,
			State:    WalkState{Key: st.Key, Imaginary: img, Remaining: st.Remaining - 1},
		}, nil
	}
	return StepResult{Next: cur.successor, State: st}, nil
}
