package dht

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/word"
)

func randomRing(t *testing.T, d, k, n int, seed int64) *Ring {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ids := make([]word.Word, n)
	for i := range ids {
		ids[i] = word.Random(d, k, rng)
	}
	r, err := NewRing(d, k, ids)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRingValidates(t *testing.T) {
	if _, err := NewRing(2, 3, nil); err == nil {
		t.Error("accepted empty ring")
	}
	if _, err := NewRing(2, 3, []word.Word{word.MustParse(2, "01")}); err == nil {
		t.Error("accepted short identifier")
	}
	if _, err := NewRing(2, 80, []word.Word{}); err == nil {
		t.Error("accepted overflowing space")
	}
}

func TestRingDeduplicatesAndSorts(t *testing.T) {
	ids := []word.Word{
		word.MustParse(2, "110"),
		word.MustParse(2, "001"),
		word.MustParse(2, "110"),
	}
	r, err := NewRing(2, 3, ids)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumNodes() != 2 {
		t.Fatalf("nodes = %d", r.NumNodes())
	}
	nodes := r.Nodes()
	if nodes[0].ID().String() != "001" || nodes[1].ID().String() != "110" {
		t.Errorf("order: %v, %v", nodes[0].ID(), nodes[1].ID())
	}
	if nodes[0].Successor() != nodes[1] || nodes[1].Successor() != nodes[0] {
		t.Error("successor ring broken")
	}
}

func TestFingerIsPredecessorOfImage(t *testing.T) {
	r := randomRing(t, 2, 6, 12, 1)
	for _, n := range r.Nodes() {
		img := n.ID().ShiftLeft(0).MustRank()
		f := n.Finger()
		if f.rank == img {
			continue // finger sits exactly on the image
		}
		// f must be the last node with rank ≤ img (cyclically).
		for _, m := range r.Nodes() {
			if m == f {
				continue
			}
			// No node strictly between f and img.
			if inHalfOpen(f.rank, img, m.rank) && m.rank != img {
				t.Fatalf("node %v lies between finger %v and image %d", m.ID(), f.ID(), img)
			}
		}
	}
}

func TestOwnerConvention(t *testing.T) {
	r, err := NewRing(2, 3, []word.Word{
		word.MustParse(2, "010"), // 2
		word.MustParse(2, "101"), // 5
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		key  string
		want string
	}{
		{"000", "010"}, {"010", "010"}, {"011", "101"},
		{"101", "101"}, {"110", "010"}, {"111", "010"},
	}
	for _, c := range cases {
		owner, err := r.Owner(word.MustParse(2, c.key))
		if err != nil {
			t.Fatal(err)
		}
		if owner.ID().String() != c.want {
			t.Errorf("Owner(%s) = %v, want %s", c.key, owner.ID(), c.want)
		}
	}
	if _, err := r.Owner(word.MustParse(2, "01")); err == nil {
		t.Error("accepted short key")
	}
}

func TestLookupFindsOwnerExhaustive(t *testing.T) {
	// Every key, from every node, on several random rings, both
	// variants.
	for seed := int64(1); seed <= 4; seed++ {
		r := randomRing(t, 2, 6, 10, seed)
		if _, err := word.ForEach(2, 6, func(key word.Word) bool {
			owner, err := r.Owner(key)
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range r.Nodes() {
				for name, fn := range map[string]func(*Node, word.Word) (LookupResult, error){
					"basic":     r.Lookup,
					"optimized": r.LookupOptimized,
				} {
					res, err := fn(n, key)
					if err != nil {
						t.Fatalf("%s lookup(%v from %v): %v", name, key, n.ID(), err)
					}
					if res.Owner != owner {
						t.Fatalf("%s lookup(%v from %v) = %v, owner %v", name, key, n.ID(), res.Owner.ID(), owner.ID())
					}
					if res.Hops != len(res.Path)-1 {
						t.Fatalf("%s: hops %d vs path %d", name, res.Hops, len(res.Path))
					}
				}
			}
			return true
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLookupTernaryRing(t *testing.T) {
	r := randomRing(t, 3, 4, 7, 9)
	if _, err := word.ForEach(3, 4, func(key word.Word) bool {
		owner, err := r.Owner(key)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.LookupOptimized(r.Nodes()[0], key)
		if err != nil {
			t.Fatal(err)
		}
		if res.Owner != owner {
			t.Fatalf("lookup(%v) = %v, owner %v", key, res.Owner.ID(), owner.ID())
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleNodeRing(t *testing.T) {
	r, err := NewRing(2, 4, []word.Word{word.MustParse(2, "0110")})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Lookup(r.Nodes()[0], word.MustParse(2, "1111"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Owner != r.Nodes()[0] {
		t.Error("single node does not own everything")
	}
}

func TestFullRingLookupMatchesDirectedDistance(t *testing.T) {
	// With every identifier hosting a node, the optimized walk
	// degenerates to pure de Bruijn routing: de Bruijn hops =
	// D(start, key) of Property 1.
	var ids []word.Word
	if _, err := word.ForEach(2, 4, func(w word.Word) bool {
		ids = append(ids, w)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(2, 4, ids)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range r.Nodes() {
		if _, err := word.ForEach(2, 4, func(key word.Word) bool {
			res, err := r.LookupOptimized(n, key)
			if err != nil {
				t.Fatal(err)
			}
			want, err := core.DirectedDistance(n.ID(), key)
			if err != nil {
				t.Fatal(err)
			}
			// Successor pointers can replace trailing injections
			// (e.g. when the owner is the immediate successor), so
			// the walk never needs MORE than Property 1's distance:
			// de Bruijn hops ≤ D, and total hops ≤ D + 1.
			if res.DeBruijnHops > want {
				t.Fatalf("full ring: %v→%v used %d de Bruijn hops, Property 1 allows %d",
					n.ID(), key, res.DeBruijnHops, want)
			}
			if res.Hops > want+1 {
				t.Fatalf("full ring: %v→%v took %d hops, distance %d",
					n.ID(), key, res.Hops, want)
			}
			return true
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOptimizedUsesFewerInjections(t *testing.T) {
	// On a sparse ring the optimized variant must use at most the
	// basic variant's k injections, and fewer on average.
	r := randomRing(t, 2, 12, 32, 3)
	rng := rand.New(rand.NewSource(4))
	totalBasic, totalOpt := 0, 0
	for i := 0; i < 200; i++ {
		key := word.Random(2, 12, rng)
		n := r.Nodes()[rng.Intn(r.NumNodes())]
		basic, err := r.Lookup(n, key)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := r.LookupOptimized(n, key)
		if err != nil {
			t.Fatal(err)
		}
		// Per-instance comparisons are invalid (either variant can
		// terminate early through a lucky successor block); the
		// aggregate must favor the optimized start.
		totalBasic += basic.DeBruijnHops
		totalOpt += opt.DeBruijnHops
	}
	if totalOpt >= totalBasic {
		t.Errorf("optimized total %d not below basic %d", totalOpt, totalBasic)
	}
}

func TestLookupFromAll(t *testing.T) {
	r := randomRing(t, 2, 8, 16, 5)
	maxHops, mean, err := r.LookupFromAll(word.MustParse(2, "10101010"))
	if err != nil {
		t.Fatal(err)
	}
	if mean <= 0 || float64(maxHops) < mean {
		t.Errorf("max %d mean %v", maxHops, mean)
	}
}

func TestNodeAt(t *testing.T) {
	r := randomRing(t, 2, 6, 8, 6)
	for _, n := range r.Nodes() {
		got, ok := r.NodeAt(n.ID())
		if !ok || got != n {
			t.Errorf("NodeAt(%v) = %v, %v", n.ID(), got, ok)
		}
	}
	if _, ok := r.NodeAt(word.MustParse(2, "01")); ok {
		t.Error("NodeAt accepted short id")
	}
}

func TestLookupValidates(t *testing.T) {
	r := randomRing(t, 2, 4, 4, 7)
	if _, err := r.Lookup(nil, word.MustParse(2, "0000")); err == nil {
		t.Error("accepted nil start")
	}
	if _, err := r.Lookup(r.Nodes()[0], word.MustParse(3, "0000")); err == nil {
		t.Error("accepted wrong-base key")
	}
	if _, err := r.LookupOptimized(nil, word.MustParse(2, "0000")); err == nil {
		t.Error("optimized accepted nil start")
	}
}
