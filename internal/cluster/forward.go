package cluster

import (
	"context"
	"time"

	"repro/internal/dht"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/word"
)

// forwarder implements serve.Forwarder on top of the node: it decides
// for each admitted request whether this node answers or the query
// takes one more hop along the Koorde walk toward its owner. It is
// the Node under a different method set, installed into the embedded
// server's Config.
type forwarder Node

// fnv64a hashes the placement-key bytes.
func fnv64a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// placementKey maps a query to its identifier-space word: FNV-64a
// over the canonical cache-key bytes, reduced onto DG(d,k). Hashing
// the cache key makes the partition exactly a partition of the cache
// key space — each node's LRU holds its own slice, so the cluster
// cache is additive.
func (n *Node) placementKey(q serve.Query) (word.Word, error) {
	rank := fnv64a(q.AppendKey(nil)) % n.space
	return word.Unrank(n.cfg.IDBase, n.cfg.IDLen, rank)
}

// holdsLocked reports whether this node is in the replica set of key:
// the key's owner or one of the Replication-1 ring successors after
// it. Caller holds n.mu.
func (n *Node) holdsLocked(key word.Word) bool {
	owner, err := n.ring.Owner(key)
	if err != nil {
		return true // malformed key: answer locally, never loop
	}
	node := owner
	for i := 0; i < n.cfg.Replication; i++ {
		if node == n.self {
			return true
		}
		node = node.Successor()
		if node == owner {
			break // wrapped: fewer nodes than replicas
		}
	}
	return false
}

// Forward routes one request. The walk is distributed literally: this
// node applies one dht.Ring.Step and ships the resulting WalkState to
// the next real node as a plain wire request, so the chain of
// forwards visits exactly the nodes Lookup would visit in-process —
// same owners, same hop counts.
func (f *forwarder) Forward(ctx context.Context, req serve.Request, qs []serve.Query, deadline time.Time, tr *obs.ReqTrace) (serve.Response, serve.ForwardVerdict) {
	n := (*Node)(f)

	// Batches stay local: their sub-queries hash to many owners, and
	// any node computes any answer — splitting a batch across the
	// fabric would trade one admission for Q forwards.
	if len(req.Batch) > 0 || len(qs) != 1 {
		return serve.Response{}, serve.ForwardLocal
	}

	var st dht.WalkState
	var origin string
	hops, ttl := 0, n.cfg.MaxHops
	if fwd := req.Fwd; fwd != nil {
		// A mid-walk arrival: resume the state from the wire.
		hops, ttl = fwd.Hops, fwd.TTL
		if fwd.Final || ttl <= 0 {
			return n.localVerdict(hops)
		}
		key, err := word.Parse(n.cfg.IDBase, fwd.Key)
		if err != nil || key.Len() != n.cfg.IDLen {
			return n.localVerdict(hops)
		}
		imag, err := word.Parse(n.cfg.IDBase, fwd.Imag)
		if err != nil || imag.Len() != n.cfg.IDLen {
			return n.localVerdict(hops)
		}
		origin = fwd.Origin
		st = dht.WalkState{Key: key, Imaginary: imag, Remaining: fwd.Remaining}
		n.mu.Lock()
		if n.closed || n.holdsLocked(st.Key) {
			n.mu.Unlock()
			return n.localVerdict(hops)
		}
		n.mu.Unlock()
	} else {
		key, err := n.placementKey(qs[0])
		if err != nil {
			return serve.Response{}, serve.ForwardLocal
		}
		origin = n.idStr
		n.mu.Lock()
		if n.closed || n.holdsLocked(key) {
			n.mu.Unlock()
			return serve.Response{}, serve.ForwardLocal
		}
		if n.cfg.Redirect {
			// Redirect mode: name the owner and let the client go
			// there itself. The owner is known from the membership
			// view — redirects skip the walk entirely.
			owner, oerr := n.ring.Owner(key)
			var addr string
			if oerr == nil {
				if m, ok := n.mem.find(owner.ID().String()); ok {
					addr = m.ClientAddr
				}
			}
			n.mu.Unlock()
			if addr == "" {
				return serve.Response{}, serve.ForwardLocal
			}
			n.m.redirects.Inc()
			n.m.forwarded.Inc()
			return serve.Response{Status: serve.StatusRedirect, RedirectAddr: addr}, serve.ForwardRedirected
		}
		wst, werr := n.ring.StartWalkOptimized(n.self, key)
		n.mu.Unlock()
		if werr != nil {
			return serve.Response{}, serve.ForwardLocal
		}
		st = wst
	}

	// One Step of the walk at this node.
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return n.localVerdict(hops)
	}
	sr, err := n.ring.Step(n.self, st)
	var next Member
	nextOK := false
	if err == nil && sr.Next != nil && sr.Next != n.self {
		next, nextOK = n.mem.find(sr.Next.ID().String())
	}
	n.mu.Unlock()
	if err != nil || !nextOK {
		return n.localVerdict(hops)
	}

	remaining := time.Until(deadline)
	if remaining <= 0 {
		n.m.fwdDeadline.Inc()
		return serve.Response{}, serve.ForwardDeadline
	}
	out := req
	out.Fwd = &serve.ForwardState{
		Origin:    origin,
		Key:       st.Key.String(),
		Imag:      sr.State.Imaginary.String(),
		Remaining: sr.State.Remaining,
		Final:     sr.Final,
		Hops:      hops + 1,
		TTL:       ttl - 1,
	}
	// The deadline travels as remaining budget, not an absolute
	// instant, so it is immune to clock skew between nodes; each hop
	// re-anchors it on its own clock.
	ms := remaining.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	out.DeadlineMS = ms

	client, cerr := n.peerClient(next.ClientAddr)
	if cerr != nil {
		n.forwardFailed(next)
		return n.localVerdict(hops)
	}
	t0 := time.Now()
	resp, derr := client.Do(ctx, out)
	tr.AddSpan(obs.SpanForward, t0, time.Now(), obs.LayerNone, next.ID)
	if derr != nil {
		if ctx.Err() != nil {
			// The request's deadline expired mid-forward: shed here,
			// with reason deadline, instead of letting the client's
			// origin time out on its own.
			n.m.fwdDeadline.Inc()
			return serve.Response{}, serve.ForwardDeadline
		}
		n.dropClient(next.ClientAddr, client)
		n.forwardFailed(next)
		return n.localVerdict(hops)
	}
	n.m.forwarded.Inc()
	return resp, serve.ForwardProxied
}

// forwardFailed records a dead peer: fallback metric now, eviction
// gossip in the background.
func (n *Node) forwardFailed(m Member) {
	n.m.fallback.Inc()
	n.markFailed(m.ID)
}

// localVerdict resolves a forwarded-in request locally, observing its
// inter-node hop count (the walk ended here — by ownership, final
// hop, TTL, or fallback).
func (n *Node) localVerdict(hops int) (serve.Response, serve.ForwardVerdict) {
	if hops > 0 {
		n.m.forwardHops.Observe(float64(hops))
		n.hopSum.Add(int64(hops))
		n.hopCount.Add(1)
	}
	return serve.Response{}, serve.ForwardLocal
}
