package cluster

import "sort"

// Member is one cluster node as the others see it.
type Member struct {
	// ID is the node's identifier word (digit-string form).
	ID string `json:"id"`
	// ClientAddr accepts query connections; PeerAddr accepts control
	// connections.
	ClientAddr string `json:"client_addr"`
	PeerAddr   string `json:"peer_addr"`
}

// Membership is a full-state membership view: the complete member
// list under a (Version, Origin) stamp. Views are totally ordered by
// the stamp — higher version wins, ties broken by origin id — and
// every change ships the whole list, so applying the maximum view
// converges all nodes without per-entry merge rules. Versions move
// forward only: a node making a change stamps max(seen)+1 with itself
// as origin.
type Membership struct {
	Version uint64   `json:"version"`
	Origin  string   `json:"origin"`
	Members []Member `json:"members"`
}

// Newer reports whether m supersedes old.
func (m Membership) Newer(old Membership) bool {
	if m.Version != old.Version {
		return m.Version > old.Version
	}
	return m.Origin > old.Origin
}

// find returns the member with the given id, if present.
func (m Membership) find(id string) (Member, bool) {
	for _, mem := range m.Members {
		if mem.ID == id {
			return mem, true
		}
	}
	return Member{}, false
}

// withMember returns a copy of the member list with mem added or
// replaced, sorted by ID for deterministic broadcasts.
func (m Membership) withMember(mem Member) []Member {
	out := make([]Member, 0, len(m.Members)+1)
	for _, x := range m.Members {
		if x.ID != mem.ID {
			out = append(out, x)
		}
	}
	out = append(out, mem)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// withoutMember returns a copy of the member list with id removed.
func (m Membership) withoutMember(id string) []Member {
	out := make([]Member, 0, len(m.Members))
	for _, x := range m.Members {
		if x.ID != id {
			out = append(out, x)
		}
	}
	return out
}
