package cluster

import "repro/internal/obs"

// Cluster metric names (README.md § Observability). Registered with
// Config.Serve.Registry alongside the node's serve metrics, so one
// /metrics scrape shows both layers.
const (
	// metricForwarded counts queries this node resolved via a peer
	// (proxied or redirected) — the cluster-layer view of the serve
	// forwarded outcome.
	metricForwarded = "dn_cluster_forwarded_total"
	// metricForwardHops is the inter-node hop count of forwarded
	// queries, observed at the node that finally answers. Its mean is
	// the acceptance statistic compared against the Koorde bound.
	metricForwardHops = "dn_cluster_forward_hops"
	// metricFallback counts forwards that failed (peer dead, link
	// severed, walk stuck) and were answered by local compute instead.
	metricFallback = "dn_cluster_fallback_local_total"
	// metricRedirects counts redirect responses issued (Redirect mode).
	metricRedirects = "dn_cluster_redirects_total"
	// metricFwdDeadline counts forwards abandoned because the request
	// deadline expired mid-flight (the origin sheds reason deadline).
	metricFwdDeadline = "dn_cluster_forward_deadline_total"
	// Membership churn counters and gauges.
	metricJoins    = "dn_cluster_joins_total"
	metricLeaves   = "dn_cluster_leaves_total"
	metricFailures = "dn_cluster_failures_total"
	metricMembers  = "dn_cluster_members"
	metricVersion  = "dn_cluster_membership_version"
)

// clusterMetrics are one node's pre-resolved instrument handles; all
// nil-safe when the registry is absent.
type clusterMetrics struct {
	forwarded   *obs.Counter
	forwardHops *obs.Histogram
	fallback    *obs.Counter
	redirects   *obs.Counter
	fwdDeadline *obs.Counter
	joins       *obs.Counter
	leaves      *obs.Counter
	failures    *obs.Counter
	members     *obs.Gauge
	version     *obs.Gauge
}

func newClusterMetrics(reg *obs.Registry) clusterMetrics {
	return clusterMetrics{
		forwarded:   reg.Counter(metricForwarded),
		forwardHops: reg.Histogram(metricForwardHops, obs.HopBuckets),
		fallback:    reg.Counter(metricFallback),
		redirects:   reg.Counter(metricRedirects),
		fwdDeadline: reg.Counter(metricFwdDeadline),
		joins:       reg.Counter(metricJoins),
		leaves:      reg.Counter(metricLeaves),
		failures:    reg.Counter(metricFailures),
		members:     reg.Gauge(metricMembers),
		version:     reg.Gauge(metricVersion),
	}
}
