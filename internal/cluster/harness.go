package cluster

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/word"
)

// Harness is a whole in-memory cluster over one MemTransport: real
// nodes, real wire frames, channel-link connections — the TCP
// deployment with the sockets swapped out. Node identifiers come from
// a seeded generator, so a harness run is reproducible end to end.
type Harness struct {
	Transport *serve.MemTransport
	// Chaos is the fault-injecting decorator over Transport, present
	// only when HarnessConfig.Chaos was set. It boots disabled — the
	// cluster forms on clean links — and the test flips it on once
	// converged. When present, every node and every Client dial runs
	// through it.
	Chaos    *serve.ChaosTransport
	cfg      HarnessConfig
	rng      *rand.Rand
	used     map[string]bool
	nextAddr int
	nodes    []*Node         // Kill/Leave leave nil holes; index = node number
	regs     []*obs.Registry // per-node registries, parallel to nodes
}

// HarnessConfig shapes a harness cluster.
type HarnessConfig struct {
	// Nodes is the initial node count (≥ 1).
	Nodes int
	// Seed drives identifier generation.
	Seed int64
	// IDBase/IDLen default to the cluster defaults; small tests use a
	// small space.
	IDBase, IDLen int
	// Replication, MaxHops, Redirect pass through to every node.
	Replication int
	MaxHops     int
	Redirect    bool
	// Serve is the per-node server config template. Registry must be
	// nil: each node gets its own registry so per-node metrics stay
	// separable.
	Serve serve.Config
	// PeerIOTimeout passes through to every node (0 keeps the cluster
	// default; tests use short values so wedged-peer recovery is fast).
	PeerIOTimeout time.Duration
	// GossipInterval passes through to every node (0 keeps the
	// cluster default; negative disables the anti-entropy loop).
	GossipInterval time.Duration
	// Chaos, when non-nil, wraps the fabric in a ChaosTransport with
	// this config (initially disabled — enable via Harness.Chaos after
	// the cluster converges).
	Chaos *serve.ChaosConfig
}

// NewHarness boots an n-node converged cluster.
func NewHarness(cfg HarnessConfig) (*Harness, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("cluster: harness needs ≥ 1 node, got %d", cfg.Nodes)
	}
	if cfg.Serve.Registry != nil {
		return nil, fmt.Errorf("cluster: harness owns per-node registries")
	}
	if cfg.IDBase == 0 {
		cfg.IDBase = DefaultIDBase
	}
	if cfg.IDLen == 0 {
		cfg.IDLen = DefaultIDLen
	}
	h := &Harness{
		Transport: serve.NewMemTransport(),
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		used:      make(map[string]bool),
	}
	if cfg.Chaos != nil {
		h.Chaos = serve.NewChaosTransport(h.Transport, *cfg.Chaos)
	}
	for i := 0; i < cfg.Nodes; i++ {
		if _, err := h.Join(); err != nil {
			h.Close()
			return nil, err
		}
	}
	if err := h.WaitConverged(5 * time.Second); err != nil {
		h.Close()
		return nil, err
	}
	return h, nil
}

// freshID draws an unused identifier from the seeded generator.
func (h *Harness) freshID() word.Word {
	for {
		w := word.Random(h.cfg.IDBase, h.cfg.IDLen, h.rng)
		if !h.used[w.String()] {
			h.used[w.String()] = true
			return w
		}
	}
}

// Join boots one more node (seeded through every live peer) and
// returns its index.
func (h *Harness) Join() (int, error) {
	var seeds []string
	for _, n := range h.nodes {
		if n != nil {
			seeds = append(seeds, n.PeerAddr())
		}
	}
	i := len(h.nodes)
	scfg := h.cfg.Serve
	scfg.Registry = obs.NewRegistry()
	node, err := New(Config{
		ID:             h.freshID().String(),
		IDBase:         h.cfg.IDBase,
		IDLen:          h.cfg.IDLen,
		ClientAddr:     fmt.Sprintf("client-%d", i),
		PeerAddr:       fmt.Sprintf("peer-%d", i),
		Transport:      h.link(),
		Replication:    h.cfg.Replication,
		MaxHops:        h.cfg.MaxHops,
		Redirect:       h.cfg.Redirect,
		Seeds:          seeds,
		Serve:          scfg,
		PeerIOTimeout:  h.cfg.PeerIOTimeout,
		GossipInterval: h.cfg.GossipInterval,
	})
	if err != nil {
		return 0, err
	}
	h.nodes = append(h.nodes, node)
	h.regs = append(h.regs, scfg.Registry)
	return i, nil
}

// Node returns node i (nil after Kill/Leave).
func (h *Harness) Node(i int) *Node { return h.nodes[i] }

// Registry returns node i's metrics registry. It outlives the node —
// a killed node's final counters stay readable.
func (h *Harness) Registry(i int) *obs.Registry { return h.regs[i] }

// Live returns the running nodes.
func (h *Harness) Live() []*Node {
	var out []*Node
	for _, n := range h.nodes {
		if n != nil {
			out = append(out, n)
		}
	}
	return out
}

// link is the transport everything dials through: the chaos decorator
// when configured, the bare fabric otherwise.
func (h *Harness) link() serve.Transport {
	if h.Chaos != nil {
		return h.Chaos
	}
	return h.Transport
}

// Client dials node i's query listener (through the chaos decorator
// when configured).
func (h *Harness) Client(i int) (*serve.Client, error) {
	n := h.nodes[i]
	if n == nil {
		return nil, fmt.Errorf("cluster: node %d is down", i)
	}
	return serve.DialTransport(h.link(), n.ClientAddr())
}

// Kill crashes node i: listeners close, established connections
// sever, no goodbye. Returns the node's final conservation counts
// (exact: the dying server drains its queue shedding shutdown).
func (h *Harness) Kill(i int) (serve.Counts, error) {
	n := h.nodes[i]
	if n == nil {
		return serve.Counts{}, fmt.Errorf("cluster: node %d already down", i)
	}
	h.nodes[i] = nil
	err := n.Close()
	if err != nil {
		return serve.Counts{}, err
	}
	return n.Counts(), nil
}

// Leave departs node i cleanly (membership gossiped before shutdown).
func (h *Harness) Leave(i int) (serve.Counts, error) {
	n := h.nodes[i]
	if n == nil {
		return serve.Counts{}, fmt.Errorf("cluster: node %d already down", i)
	}
	h.nodes[i] = nil
	err := n.Leave()
	if err != nil {
		return serve.Counts{}, err
	}
	return n.Counts(), nil
}

// Storm is a correlated churn burst: kills crash victims concurrently
// (chosen by the harness rng from the live nodes, skipping indices
// < protect so driver-facing nodes survive), then joins fresh nodes.
// It returns the final conservation counts of every victim — the
// caller folds them into Counts so the cluster-wide identity still
// covers the dead. The burst is the point: every victim's connections
// sever at once, mid-frame for any frame in flight, while the
// survivors' forwards and gossip are still aimed at them.
func (h *Harness) Storm(kills, joins, protect int) ([]serve.Counts, error) {
	var victims []int
	for i := protect; i < len(h.nodes); i++ {
		if h.nodes[i] != nil {
			victims = append(victims, i)
		}
	}
	if kills > len(victims) {
		return nil, fmt.Errorf("cluster: storm wants %d kills, only %d unprotected nodes", kills, len(victims))
	}
	h.rng.Shuffle(len(victims), func(i, j int) { victims[i], victims[j] = victims[j], victims[i] })
	victims = victims[:kills]

	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		killed []serve.Counts
		kerr   error
	)
	for _, i := range victims {
		n := h.nodes[i]
		h.nodes[i] = nil
		wg.Add(1)
		go func(n *Node) {
			defer wg.Done()
			err := n.Close()
			mu.Lock()
			defer mu.Unlock()
			if err != nil && kerr == nil {
				kerr = err
			}
			killed = append(killed, n.Counts())
		}(n)
	}
	wg.Wait()
	if kerr != nil {
		return killed, kerr
	}
	for j := 0; j < joins; j++ {
		if _, err := h.Join(); err != nil {
			return killed, err
		}
	}
	return killed, nil
}

// WaitConverged blocks until the live nodes share one membership view.
func (h *Harness) WaitConverged(timeout time.Duration) error {
	live := h.Live()
	if len(live) == 0 {
		return nil
	}
	return WaitConverged(timeout, live...)
}

// Close shuts every live node down.
func (h *Harness) Close() {
	for i, n := range h.nodes {
		if n != nil {
			n.Close()
			h.nodes[i] = nil
		}
	}
}

// ClusterCounts aggregates conservation counters cluster-wide.
// PerNode holds every node that ever served (killed ones included —
// their final counts still participate in the identity).
type ClusterCounts struct {
	PerNode                                                []serve.Counts
	Sent, Answered, Degraded, Shed, Forwarded, ForwardedIn int64
}

// Add folds one node's counts in.
func (c *ClusterCounts) Add(n serve.Counts) {
	c.PerNode = append(c.PerNode, n)
	c.Sent += n.Sent
	c.Answered += n.Answered
	c.Degraded += n.Degraded
	c.Shed += n.Shed
	c.Forwarded += n.Forwarded
	c.ForwardedIn += n.ForwardedIn
}

// Conserved reports the cluster-wide outcome identity.
func (c ClusterCounts) Conserved() bool {
	return c.Sent == c.Answered+c.Degraded+c.Shed+c.Forwarded
}

// HopConserved reports the hop-by-hop forward identity of a quiesced,
// failure-free run: every forwarded outcome was admitted somewhere as
// a forwarded-in. (Under churn the identity relaxes to Forwarded ≤
// ForwardedIn: a peer can admit a forward whose origin then sheds on
// deadline or falls back when the response is lost.)
func (c ClusterCounts) HopConserved() bool {
	return c.Forwarded == c.ForwardedIn
}

// Counts aggregates the live nodes plus any extra (killed) counts the
// caller retained.
func (h *Harness) Counts(extra ...serve.Counts) ClusterCounts {
	var c ClusterCounts
	for _, n := range h.nodes {
		if n != nil {
			c.Add(n.Counts())
		}
	}
	for _, e := range extra {
		c.Add(e)
	}
	return c
}
