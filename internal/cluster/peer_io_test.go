package cluster

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/word"
)

// settleGoroutines waits for the goroutine count to return to at most
// baseline plus a small slack.
func settleGoroutines(t *testing.T, baseline int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s", n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// writePartialFrame writes a frame header promising n bytes followed
// by fewer — the wire state of a peer that died mid-frame.
func writePartialFrame(t *testing.T, conn net.Conn, promised, delivered int) {
	t.Helper()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(promised))
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(make([]byte, delivered)); err != nil {
		t.Fatal(err)
	}
}

// TestPeerDeadlineUnparksHalfOpenControlConn is the control-plane half
// of the peer-I/O hang bugfix: a connection that goes silent mid-frame
// used to park its handlePeer goroutine forever; with PeerIOTimeout it
// must be reaped, the node staying fully responsive.
func TestPeerDeadlineUnparksHalfOpenControlConn(t *testing.T) {
	h := testHarness(t, HarnessConfig{
		Nodes:         1,
		Seed:          31,
		IDLen:         8,
		PeerIOTimeout: 200 * time.Millisecond,
	})
	n0 := h.Node(0)
	time.Sleep(50 * time.Millisecond)
	before := runtime.NumGoroutine()

	// Half-open control connection: a frame header promising 100 bytes,
	// 10 delivered, then silence — the connection stays open.
	conn, err := h.Transport.Dial(n0.PeerAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	writePartialFrame(t, conn, 100, 10)

	// The handler must give up within the deadline (plus slack), not
	// park forever holding the goroutine.
	settleGoroutines(t, before, 5*time.Second)

	// And the node is still serving control RPCs.
	st, err := RemoteStatus(h.Transport, n0.PeerAddr(), time.Second)
	if err != nil {
		t.Fatalf("node wedged after half-open conn: %v", err)
	}
	if len(st.Membership.Members) != 1 {
		t.Fatalf("membership = %+v", st.Membership)
	}
}

// TestPeerErrorEnvelopeType pins the unmarshal-error reply: the frame
// that failed to decode cannot supply a type, so the reply must carry
// the dedicated error type instead of echoing "".
func TestPeerErrorEnvelopeType(t *testing.T) {
	h := testHarness(t, HarnessConfig{Nodes: 1, Seed: 33, IDLen: 8})
	conn, err := h.Transport.Dial(h.Node(0).PeerAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	garbage := []byte("this is not json")
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(garbage)))
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(garbage); err != nil {
		t.Fatal(err)
	}
	body, err := serve.ReadFrame(conn, maxEnvelope)
	if err != nil {
		t.Fatal(err)
	}
	var resp envelope
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Type != envError {
		t.Fatalf("error reply type = %q, want %q", resp.Type, envError)
	}
	if resp.Err == "" {
		t.Fatal("error reply carries no error text")
	}
}

// TestSingleShardRejected pins the E23 finding as a guard: a forward
// parks its worker shard for a full round trip, so one shard is a
// self-deadlock waiting to happen — explicit single-shard configs are
// refused outright.
func TestSingleShardRejected(t *testing.T) {
	mem := serve.NewMemTransport()
	_, err := New(Config{
		ClientAddr: "c",
		PeerAddr:   "p",
		Transport:  mem,
		Serve:      serve.Config{Shards: 1},
	})
	if !errors.Is(err, ErrSingleShard) {
		t.Fatalf("Shards=1 accepted (err=%v), want ErrSingleShard", err)
	}
}

// TestForwardUnsticksFromStalledPeer is the data-plane half of the
// peer-I/O hang bugfix under -race: a member whose query listener
// accepts and then never reads a byte used to park a worker shard in
// the forward's frame write until TCP keepalive (forever, on a pipe).
// With the pooled client's write timeout the forward fails fast, the
// peer is marked failed, and the query is answered locally — within
// its deadline, with conservation exact and no leaked goroutines.
func TestForwardUnsticksFromStalledPeer(t *testing.T) {
	mem := serve.NewMemTransport()
	n0, err := New(Config{
		ID:            "00000000",
		IDBase:        2,
		IDLen:         8,
		ClientAddr:    "real-c",
		PeerAddr:      "real-p",
		Transport:     mem,
		Replication:   1,
		PeerIOTimeout: 250 * time.Millisecond,
		Serve: serve.Config{
			Shards:          2,
			QueueDepth:      64,
			DefaultDeadline: 5 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n0.Close()

	// The stalled peer: a query listener that accepts connections and
	// never reads from them, wedging any writer on the synchronous
	// pipe. No control listener — membership pushes to it just fail,
	// which broadcast ignores.
	stalledLn, err := mem.Listen("stalled-c")
	if err != nil {
		t.Fatal(err)
	}
	defer stalledLn.Close()
	stopAccept := make(chan struct{})
	defer close(stopAccept)
	go func() {
		for {
			conn, err := stalledLn.Accept()
			if err != nil {
				return
			}
			go func() {
				<-stopAccept
				conn.Close()
			}()
		}
	}()

	// Register the stalled peer as a member through the join RPC, as a
	// joining node would.
	fake := Member{ID: "11111111", ClientAddr: "stalled-c", PeerAddr: "stalled-p"}
	resp, err := rpcOverTransport(mem, "real-p", time.Second, envelope{Type: envJoin, From: fake.ID, Member: &fake})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err != "" {
		t.Fatalf("join: %s", resp.Err)
	}

	time.Sleep(50 * time.Millisecond)
	before := runtime.NumGoroutine()

	c, err := serve.DialTransport(mem, "real-c")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Half the key space places on the stalled member (R=1, two
	// members): drive enough distinct queries that several must
	// forward — every one must still resolve within its deadline.
	rngWords := []string{
		"00001111", "11110000", "01010101", "10101010",
		"00110011", "11001100", "01100110", "10011001",
	}
	start := time.Now()
	for i, sw := range rngWords {
		for j, dw := range rngWords {
			if i == j {
				continue
			}
			src := word.MustParse(2, sw)
			dst := word.MustParse(2, dw)
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			resp, err := c.Do(ctx, serve.DistanceRequest(src, dst, serve.Undirected))
			cancel()
			if err != nil {
				t.Fatalf("query %s→%s: %v (worker parked on stalled peer?)", sw, dw, err)
			}
			if resp.Status != serve.StatusOK {
				t.Fatalf("query %s→%s: %+v", sw, dw, resp)
			}
		}
	}
	elapsed := time.Since(start)

	// The first forward pays one write timeout before falling back;
	// after markFailed the stalled peer is out of the ring and
	// everything is local. Far more than a few timeouts worth of
	// elapsed time means workers were parking.
	if elapsed > 5*time.Second {
		t.Fatalf("56 queries took %v: forwards are parking workers", elapsed)
	}

	// The stalled peer must have been judged dead and evicted.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, ok := n0.Membership().find(fake.ID); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stalled peer still in membership after write-timeout fallback")
		}
		time.Sleep(20 * time.Millisecond)
	}

	counts := n0.Counts()
	if !counts.Conserved() {
		t.Fatalf("conservation broken after stalled-peer fallback: %+v", counts)
	}
	if counts.Answered+counts.Degraded == 0 {
		t.Fatalf("nothing answered: %+v", counts)
	}

	c.Close()
	settleGoroutines(t, before, 5*time.Second)
}

// TestStormConservation drives a churn storm — a correlated kill burst
// plus joins under live load — and requires the ≤-form cluster
// identities to hold once quiesced, with the victims' final counts
// folded in.
func TestStormConservation(t *testing.T) {
	h := testHarness(t, HarnessConfig{
		Nodes:         6,
		Seed:          47,
		IDLen:         10,
		Replication:   2,
		PeerIOTimeout: 500 * time.Millisecond,
		Serve: serve.Config{
			Shards:          2,
			QueueDepth:      128,
			CacheSize:       128,
			DefaultDeadline: 2 * time.Second,
		},
	})

	stop := make(chan struct{})
	errCh := make(chan error, 2)
	for d := 0; d < 2; d++ {
		c, err := h.Client(d)
		if err != nil {
			t.Fatal(err)
		}
		go func(d int, c *serve.Client) {
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(900 + d)))
			n := 0
			for {
				select {
				case <-stop:
					errCh <- nil
					return
				default:
				}
				src := word.Random(2, 10, rng)
				dst := word.Random(2, 10, rng)
				ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
				_, err := c.Do(ctx, serve.DistanceRequest(src, dst, serve.Undirected))
				cancel()
				if err != nil {
					// Driver nodes are protected from the storm, so
					// their connections must stay alive.
					errCh <- fmt.Errorf("driver %d request %d: %w", d, n, err)
					return
				}
				n++
			}
		}(d, c)
	}

	time.Sleep(100 * time.Millisecond)
	killed, err := h.Storm(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(killed) != 2 {
		t.Fatalf("storm killed %d nodes, want 2", len(killed))
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	for d := 0; d < 2; d++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}

	if err := h.WaitConverged(5 * time.Second); err != nil {
		t.Fatalf("cluster did not re-converge after storm: %v", err)
	}

	// Quiesce, then check the identities: exact outcome conservation
	// (including the dead), and the ≤-form hop identity (a killed peer
	// can admit a forward whose origin fell back).
	deadline := time.Now().Add(5 * time.Second)
	for {
		agg := h.Counts(killed...)
		if agg.Conserved() && agg.Forwarded <= agg.ForwardedIn {
			for _, pn := range agg.PerNode {
				if !pn.Conserved() {
					t.Fatalf("per-node conservation broken: %+v", pn)
				}
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster identities violated after storm: %+v", agg)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestWrongfulEvictionRejoins pins the gossip liveness fix: a live
// node evicted by a peer (a transient forward failure judged it dead)
// must rejoin under a bumped version, and the whole cluster must
// re-converge on a view that contains it. Before the fix the evicted
// node silently retained itself at the peers' version — same
// (version, origin), different member set — a divergence no
// push-pull exchange could ever repair.
func TestWrongfulEvictionRejoins(t *testing.T) {
	h, err := NewHarness(HarnessConfig{
		Nodes:          3,
		Seed:           71,
		IDLen:          10,
		Replication:    1,
		GossipInterval: 20 * time.Millisecond,
		Serve: serve.Config{
			Shards: 2, QueueDepth: 64,
			DefaultDeadline: time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	victim := h.Node(2).ID().String()
	h.Node(0).markFailed(victim)
	if _, ok := h.Node(0).Membership().find(victim); ok {
		t.Fatal("markFailed did not evict the victim from node 0's view")
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		healed := h.WaitConverged(time.Second) == nil
		for i := 0; healed && i < 3; i++ {
			_, ok := h.Node(i).Membership().find(victim)
			healed = ok
		}
		if healed {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("wrongfully evicted node never rejoined; views: %+v, %+v, %+v",
				h.Node(0).Membership(), h.Node(1).Membership(), h.Node(2).Membership())
		}
	}
}
