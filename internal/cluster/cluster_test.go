package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/word"
)

// testHarness boots a converged in-memory cluster and tears it down
// with the test.
func testHarness(t *testing.T, cfg HarnessConfig) *Harness {
	t.Helper()
	if cfg.Serve.Shards == 0 {
		cfg.Serve.Shards = 4
	}
	if cfg.Serve.QueueDepth == 0 {
		cfg.Serve.QueueDepth = 256
	}
	if cfg.Serve.CacheSize == 0 {
		cfg.Serve.CacheSize = 512
	}
	if cfg.Serve.DefaultDeadline == 0 {
		cfg.Serve.DefaultDeadline = 5 * time.Second
	}
	h, err := NewHarness(cfg)
	if err != nil {
		t.Fatalf("NewHarness: %v", err)
	}
	t.Cleanup(h.Close)
	return h
}

// allPairs enumerates every (src, dst) query pair of DG(2,5).
func allPairs(t *testing.T) [][2]word.Word {
	t.Helper()
	const d, k = 2, 5
	n, err := word.Count(d, k)
	if err != nil {
		t.Fatal(err)
	}
	pairs := make([][2]word.Word, 0, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			src, _ := word.Unrank(d, k, uint64(i))
			dst, _ := word.Unrank(d, k, uint64(j))
			pairs = append(pairs, [2]word.Word{src, dst})
		}
	}
	return pairs
}

// respKey canonicalizes the comparable content of a response.
func respKey(r serve.Response) string {
	return fmt.Sprintf("%s|%s|%d|%v|%s|%v|%v|%s|%s",
		r.Status, r.Degrade, r.Distance, r.Path, r.NextHop, r.Done, r.Bounds, r.ShedReason, r.Error)
}

// TestClusterDifferential is the acceptance check: a 3-node cluster,
// asked at a single node, answers every query of DG(2,5) — all kinds,
// both modes — byte-identically to a single-node server.
func TestClusterDifferential(t *testing.T) {
	h := testHarness(t, HarnessConfig{Nodes: 3, Seed: 1, IDLen: 8, Replication: 1})
	single := serve.NewServer(serve.Config{Shards: 2, QueueDepth: 256, CacheSize: 512, DefaultDeadline: 5 * time.Second})
	defer single.Close()
	oracle, err := single.SelfClient()
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()
	cc, err := h.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	ctx := context.Background()
	for _, pair := range allPairs(t) {
		for _, mode := range []serve.Mode{serve.Undirected, serve.Directed} {
			for _, mk := range []func(a, b word.Word, m serve.Mode) serve.Request{
				serve.DistanceRequest, serve.RouteRequest, serve.NextHopRequest,
			} {
				req := mk(pair[0], pair[1], mode)
				want, err := oracle.Do(ctx, req)
				if err != nil {
					t.Fatalf("oracle Do: %v", err)
				}
				got, err := cc.Do(ctx, req)
				if err != nil {
					t.Fatalf("cluster Do: %v", err)
				}
				if respKey(got) != respKey(want) {
					t.Fatalf("%s %s %v→%v:\n cluster: %s\n single:  %s",
						req.Kind, req.Mode, pair[0], pair[1], respKey(got), respKey(want))
				}
			}
		}
	}

	// The cluster actually exercised the fabric: with R=1 on 3 nodes,
	// about two thirds of the keys are remote to node 0.
	c := h.Counts()
	if c.Forwarded == 0 {
		t.Fatal("no query was forwarded; the differential proved nothing about the fabric")
	}
	if !c.Conserved() {
		t.Fatalf("cluster conservation violated: %+v", c)
	}
	if !c.HopConserved() {
		t.Fatalf("hop conservation violated: forwarded %d ≠ forwarded_in %d", c.Forwarded, c.ForwardedIn)
	}
}

// TestClusterHopsMatchLookup pins the distributed walk to the DHT
// oracle, query by query: a forwarded query takes at most the hops
// dht's in-process LookupOptimized reports for the same key from the
// same start (fewer only when the walk passes through a node that
// already holds the key and stops early — an exit Lookup lacks), most
// queries take exactly that many, and the mean stays within the
// identifier length, the Koorde bound.
func TestClusterHopsMatchLookup(t *testing.T) {
	h := testHarness(t, HarnessConfig{Nodes: 8, Seed: 7, IDLen: 10, Replication: 1})
	n0 := h.Node(0)
	cc, err := h.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	// Rebuild the oracle ring from node 0's converged view.
	view := n0.Membership()
	ids := make([]word.Word, 0, len(view.Members))
	for _, m := range view.Members {
		ids = append(ids, word.MustParse(DefaultIDBase, m.ID))
	}
	ring := mustRing(t, DefaultIDBase, 10, ids)
	self, ok := ring.NodeAt(n0.ID())
	if !ok {
		t.Fatal("node 0 missing from oracle ring")
	}

	ctx := context.Background()
	totalHops, forwardedQ, exact := 0, 0, 0
	for _, pair := range allPairs(t)[:400] {
		req := serve.DistanceRequest(pair[0], pair[1], serve.Undirected)
		q, err := serve.ParseQuery(req)
		if err != nil {
			t.Fatal(err)
		}
		key, err := n0.placementKey(q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ring.LookupOptimized(self, key)
		if err != nil {
			t.Fatal(err)
		}
		before := sumHops(h)
		if _, err := cc.Do(ctx, req); err != nil {
			t.Fatalf("Do: %v", err)
		}
		got := sumHops(h) - before
		owned := want.Owner == self
		if owned && got != 0 {
			t.Fatalf("key %v owned by node 0 but walked %d hops", key, got)
		}
		if !owned {
			if got < 1 || got > int64(want.Hops) {
				t.Fatalf("key %v: distributed walk took %d hops, LookupOptimized bound is %d", key, got, want.Hops)
			}
			if got == int64(want.Hops) {
				exact++
			}
			totalHops += int(got)
			forwardedQ++
		}
	}
	if forwardedQ == 0 {
		t.Fatal("no query left node 0; hop comparison proved nothing")
	}
	if exact == 0 {
		t.Fatal("every walk exited early; the oracle comparison never bit")
	}
	if mean := float64(totalHops) / float64(forwardedQ); mean > 10 {
		t.Fatalf("mean forward hops %.2f exceeds the identifier length 10", mean)
	}
	c := h.Counts()
	if !c.Conserved() || !c.HopConserved() {
		t.Fatalf("conservation violated: %+v", c)
	}
}

// sumHops totals the per-node forwarded-hop sums.
func sumHops(h *Harness) int64 {
	var total int64
	for _, n := range h.Live() {
		s, _ := n.ForwardHopStats()
		total += s
	}
	return total
}

// TestClusterDeadlinePropagation is satellite 2 end to end: the
// deadline rides the wire as remaining budget, and when a forward
// cannot complete inside it, the proxying node sheds with reason
// deadline instead of leaving the client to time out.
func TestClusterDeadlinePropagation(t *testing.T) {
	h := testHarness(t, HarnessConfig{Nodes: 3, Seed: 3, IDLen: 8, Replication: 1})
	n0 := h.Node(0)
	cc, err := h.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	// Find a query node 0 does not hold, so it must forward.
	var req serve.Request
	found := false
	for _, pair := range allPairs(t) {
		r := serve.DistanceRequest(pair[0], pair[1], serve.Undirected)
		q, err := serve.ParseQuery(r)
		if err != nil {
			t.Fatal(err)
		}
		key, err := n0.placementKey(q)
		if err != nil {
			t.Fatal(err)
		}
		n0.mu.Lock()
		holds := n0.holdsLocked(key)
		n0.mu.Unlock()
		if !holds {
			req = r
			found = true
			break
		}
	}
	if !found {
		t.Fatal("node 0 holds every key; cannot exercise forwarding")
	}

	// Slow every other node's query link far past the budget.
	for _, n := range h.Live()[1:] {
		h.Transport.SetLinkDelay(n.ClientAddr(), 80*time.Millisecond)
	}
	req.DeadlineMS = 25
	resp, err := cc.Do(context.Background(), req)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if resp.Status != serve.StatusShed || resp.ShedReason != "deadline" {
		t.Fatalf("resp = %+v; want shed:deadline from the proxying node", resp)
	}
	counts := n0.Counts()
	if counts.ShedByReason["deadline"] != 1 || counts.Forwarded != 0 {
		t.Fatalf("node 0 counts = %+v; want one deadline shed, no forwarded outcome", counts)
	}
	if !counts.Conserved() {
		t.Fatalf("node 0 conservation violated: %+v", counts)
	}
}

// TestClusterRedirect covers redirect mode: a miss names the owner
// instead of proxying, and the named node answers first-hand.
func TestClusterRedirect(t *testing.T) {
	h := testHarness(t, HarnessConfig{Nodes: 3, Seed: 5, IDLen: 8, Replication: 1, Redirect: true})
	cc, err := h.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	ctx := context.Background()
	redirected := 0
	for _, pair := range allPairs(t)[:200] {
		req := serve.DistanceRequest(pair[0], pair[1], serve.Undirected)
		resp, err := cc.Do(ctx, req)
		if err != nil {
			t.Fatalf("Do: %v", err)
		}
		if resp.Status != serve.StatusRedirect {
			continue
		}
		redirected++
		if resp.RedirectAddr == "" {
			t.Fatal("redirect without an address")
		}
		rc, err := serve.DialTransport(h.Transport, resp.RedirectAddr)
		if err != nil {
			t.Fatalf("dial redirect target: %v", err)
		}
		resp2, err := rc.Do(ctx, req)
		rc.Close()
		if err != nil {
			t.Fatalf("redirected Do: %v", err)
		}
		if resp2.Status != serve.StatusOK {
			t.Fatalf("redirect target answered %q (%+v)", resp2.Status, resp2)
		}
	}
	if redirected == 0 {
		t.Fatal("no query redirected; mode untested")
	}
	c := h.Counts()
	if !c.Conserved() {
		t.Fatalf("conservation violated: %+v", c)
	}
	// Redirects never ride the fabric, so nothing was forwarded in.
	if c.ForwardedIn != 0 {
		t.Fatalf("redirect mode admitted %d forwards", c.ForwardedIn)
	}
}

// TestClusterTraceStitching follows one trace id across the fabric:
// the origin's sampled trace carries a forward span and outcome
// forwarded; the answering node's trace shares the id with outcome
// answered — one logical trace, recorded at every hop.
func TestClusterTraceStitching(t *testing.T) {
	h := testHarness(t, HarnessConfig{
		Nodes: 3, Seed: 9, IDLen: 8, Replication: 1,
		Serve: serve.Config{TraceSample: 1},
	})
	n0 := h.Node(0)
	cc, err := h.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	// A request node 0 must forward.
	var req serve.Request
	for _, pair := range allPairs(t) {
		r := serve.DistanceRequest(pair[0], pair[1], serve.Undirected)
		q, _ := serve.ParseQuery(r)
		key, _ := n0.placementKey(q)
		n0.mu.Lock()
		holds := n0.holdsLocked(key)
		n0.mu.Unlock()
		if !holds {
			req = r
			break
		}
	}
	const id = obs.TraceID(0x1122334455667788)
	req.TraceID = id
	resp, err := cc.Do(context.Background(), req)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if resp.Status != serve.StatusOK || resp.TraceID != id {
		t.Fatalf("resp = %+v; want ok with trace id %s", resp, id)
	}

	find := func(n *Node, wantOutcome string) *obs.ReqTrace {
		deadline := time.Now().Add(5 * time.Second)
		for {
			for _, trc := range n.Server().Traces().Recent() {
				if trc.ID == id && trc.Outcome == wantOutcome {
					return trc
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("no trace %s with outcome %q on node %v", id, wantOutcome, n.ID())
			}
			time.Sleep(time.Millisecond)
		}
	}
	origin := find(n0, "forwarded")
	hasForward := false
	for _, sp := range origin.Spans {
		if sp.Name == obs.SpanForward {
			hasForward = true
		}
	}
	if !hasForward {
		t.Fatalf("origin trace lacks a forward span: %s", origin.Canonical())
	}
	answered := false
	for _, n := range h.Live()[1:] {
		for _, trc := range n.Server().Traces().Recent() {
			if trc.ID == id && trc.Outcome == "answered" {
				answered = true
			}
		}
	}
	if !answered {
		t.Fatal("no peer recorded the answering half of the trace")
	}
}

// TestClusterBatchStaysLocal pins the batch policy: batches are
// answered where they land, never split across the fabric.
func TestClusterBatchStaysLocal(t *testing.T) {
	h := testHarness(t, HarnessConfig{Nodes: 3, Seed: 11, IDLen: 8, Replication: 1})
	cc, err := h.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	pairs := allPairs(t)
	req := serve.BatchRequest(
		serve.DistanceRequest(pairs[3][0], pairs[3][1], serve.Undirected),
		serve.RouteRequest(pairs[77][0], pairs[77][1], serve.Directed),
		serve.NextHopRequest(pairs[501][0], pairs[501][1], serve.Undirected),
	)
	resp, err := cc.Do(context.Background(), req)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if resp.Status != serve.StatusOK || len(resp.Batch) != 3 {
		t.Fatalf("resp = %+v", resp)
	}
	c := h.Counts()
	if c.Forwarded != 0 || c.ForwardedIn != 0 {
		t.Fatalf("batch rode the fabric: %+v", c)
	}
}
