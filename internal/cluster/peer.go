package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"time"

	"repro/internal/serve"
)

// Control-plane envelope types. The peer listener speaks
// length-prefixed JSON envelopes (the serve frame format) — one
// request, one response per frame, multiple RPCs per connection.
const (
	envJoin       = "join"       // Member → Membership (or error)
	envMembership = "membership" // Membership push → ack with local view
	envStatus     = "status"     // → Status
	envPing       = "ping"       // → ping
	envError      = "error"      // reply to a frame that didn't decode
)

// envelope is one control frame.
type envelope struct {
	Type   string      `json:"type"`
	From   string      `json:"from,omitempty"`
	Member *Member     `json:"member,omitempty"`
	Mem    *Membership `json:"membership,omitempty"`
	Status *Status     `json:"status,omitempty"`
	Err    string      `json:"error,omitempty"`
}

// errIDCollision is the join rejection for an identifier already held
// by a different node. The digit string is the whole identity, so the
// wire form is matched by substring.
var errIDCollision = errors.New("cluster: identifier already in use")

// maxEnvelope bounds a control frame (a full membership view of a
// large cluster fits comfortably).
const maxEnvelope = 1 << 20

// servePeers accepts control connections until the listener closes.
func (n *Node) servePeers() {
	for {
		conn, err := n.peerLn.Accept()
		if err != nil {
			return
		}
		go n.handlePeer(conn)
	}
}

// handlePeer answers envelope RPCs on one connection until EOF. Every
// frame read and write carries a deadline: a peer that stalls mid-frame
// — or a half-open connection that will never deliver another byte —
// must not park this goroutine forever, it must surface as an I/O
// error that closes the connection. (The serve data plane has the same
// property via Config.WriteTimeout and the forwarder's client write
// timeout; without deadlines, one wedged peer is a permanent goroutine
// leak per connection.)
func (n *Node) handlePeer(conn net.Conn) {
	defer conn.Close()
	timeout := n.cfg.PeerIOTimeout
	for {
		if timeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(timeout))
		}
		body, err := serve.ReadFrame(conn, maxEnvelope)
		if err != nil {
			return
		}
		var env envelope
		if err := json.Unmarshal(body, &env); err != nil {
			// Reply with the dedicated error type: env.Type came from
			// the frame that failed to decode, so echoing it would
			// always send "".
			if timeout > 0 {
				_ = conn.SetWriteDeadline(time.Now().Add(timeout))
			}
			_ = serve.WriteFrame(conn, envelope{Type: envError, Err: err.Error()})
			return
		}
		if timeout > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(timeout))
		}
		if err := serve.WriteFrame(conn, n.handleEnvelope(env)); err != nil {
			return
		}
	}
}

// handleEnvelope executes one control RPC.
func (n *Node) handleEnvelope(env envelope) envelope {
	switch env.Type {
	case envJoin:
		if env.Member == nil {
			return envelope{Type: envJoin, Err: "join without member"}
		}
		return n.handleJoin(*env.Member)
	case envMembership:
		if env.Mem == nil {
			return envelope{Type: envMembership, Err: "membership without view"}
		}
		n.mu.Lock()
		err := n.applyMembershipLocked(*env.Mem)
		view := n.mem
		n.mu.Unlock()
		if err != nil {
			return envelope{Type: envMembership, Err: err.Error()}
		}
		return envelope{Type: envMembership, From: n.idStr, Mem: &view}
	case envStatus:
		st := n.Status()
		return envelope{Type: envStatus, From: n.idStr, Status: &st}
	case envPing:
		return envelope{Type: envPing, From: n.idStr}
	default:
		return envelope{Type: env.Type, Err: fmt.Sprintf("unknown envelope type %q", env.Type)}
	}
}

// handleJoin admits a new member and gossips the grown view. An
// identifier held by a different address is rejected — identifiers
// are the placement identity, and silently replacing one would
// reroute another node's key slice.
func (n *Node) handleJoin(m Member) envelope {
	n.mu.Lock()
	defer n.mu.Unlock()
	if existing, ok := n.mem.find(m.ID); ok && (existing.ClientAddr != m.ClientAddr || existing.PeerAddr != m.PeerAddr) {
		return envelope{Type: envJoin, Err: errIDCollision.Error()}
	}
	n.m.joins.Inc()
	if err := n.bumpLocked(n.mem.withMember(m)); err != nil {
		return envelope{Type: envJoin, Err: err.Error()}
	}
	view := n.mem
	return envelope{Type: envJoin, From: n.idStr, Mem: &view}
}

// joinVia runs the join RPC against one seed.
func (n *Node) joinVia(seed string, self Member) (Membership, error) {
	resp, err := n.peerRPC(seed, envelope{Type: envJoin, From: self.ID, Member: &self})
	if err != nil {
		return Membership{}, err
	}
	if resp.Err != "" {
		if strings.Contains(resp.Err, errIDCollision.Error()) {
			return Membership{}, fmt.Errorf("%w (via %s)", errIDCollision, seed)
		}
		return Membership{}, fmt.Errorf("cluster: join via %s: %s", seed, resp.Err)
	}
	if resp.Mem == nil {
		return Membership{}, fmt.Errorf("cluster: join via %s: empty view", seed)
	}
	return *resp.Mem, nil
}

// peerRPC dials addr's control listener, runs one envelope exchange,
// and closes. Control traffic is rare (joins, leaves, gossip), so
// per-RPC connections keep the failure model trivial: any dead peer
// fails the dial.
func (n *Node) peerRPC(addr string, env envelope) (envelope, error) {
	return rpcOverTransport(n.cfg.Transport, addr, n.cfg.JoinTimeout, env)
}

// rpcOverTransport is one envelope exchange against a control listener
// from any client (a node or an external tool).
func rpcOverTransport(tr serve.Transport, addr string, timeout time.Duration, env envelope) (envelope, error) {
	conn, err := tr.Dial(addr)
	if err != nil {
		return envelope{}, err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(timeout))
	if err := serve.WriteFrame(conn, env); err != nil {
		return envelope{}, err
	}
	body, err := serve.ReadFrame(conn, maxEnvelope)
	if err != nil {
		return envelope{}, err
	}
	var resp envelope
	if err := json.Unmarshal(body, &resp); err != nil {
		return envelope{}, err
	}
	return resp, nil
}

// RemoteStatus runs the status RPC against a node's control address —
// the client side of dbcluster -status and the CI smoke assertions.
// A non-positive timeout means 5s.
func RemoteStatus(tr serve.Transport, addr string, timeout time.Duration) (Status, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	resp, err := rpcOverTransport(tr, addr, timeout, envelope{Type: envStatus})
	if err != nil {
		return Status{}, err
	}
	if resp.Err != "" {
		return Status{}, fmt.Errorf("cluster: status from %s: %s", addr, resp.Err)
	}
	if resp.Status == nil {
		return Status{}, fmt.Errorf("cluster: status from %s: empty reply", addr)
	}
	return *resp.Status, nil
}
