package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dht"
	"repro/internal/serve"
	"repro/internal/word"
)

// ErrNodeClosed is returned by operations on a closed node.
var ErrNodeClosed = errors.New("cluster: node closed")

// Node is one cluster member: an embedded serve.Server whose
// Forwarder routes misses over the de Bruijn fabric, plus a control
// listener for membership traffic.
type Node struct {
	cfg   Config
	id    word.Word
	idStr string
	space uint64 // d^k of the identifier space
	srv   *serve.Server
	m     clusterMetrics

	clientLn net.Listener
	peerLn   net.Listener

	mu      sync.Mutex
	mem     Membership
	ring    *dht.Ring
	self    *dht.Node
	clients map[string]*serve.Client // peer ClientAddr → pooled connection
	closed  bool

	// hopSum/hopCount aggregate the inter-node hop counts of
	// forwarded queries answered here (the histogram's raw moments,
	// exposed via Status for oracles that need exact means).
	hopSum   atomic.Int64
	hopCount atomic.Int64

	bg   sync.WaitGroup // broadcast goroutines
	gw   sync.WaitGroup // the anti-entropy gossip loop
	stop chan struct{}  // closed by Close; parks the gossip loop
}

// New boots a node: listeners up, server answering, membership either
// standalone or joined through cfg.Seeds. On join-ID collision the
// derived identifier is re-derived with an attempt counter; an
// explicit Config.ID collision is an error (the operator asked for an
// identity another node holds).
func New(cfg Config) (*Node, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	n := &Node{
		cfg:     cfg,
		m:       newClusterMetrics(cfg.Serve.Registry),
		clients: make(map[string]*serve.Client),
		stop:    make(chan struct{}),
	}
	size, _ := word.Count(cfg.IDBase, cfg.IDLen)
	n.space = uint64(size)
	if cfg.ID != "" {
		n.id, err = word.Parse(cfg.IDBase, cfg.ID)
		if err != nil {
			return nil, fmt.Errorf("cluster: Config.ID: %w", err)
		}
		if n.id.Len() != cfg.IDLen {
			return nil, fmt.Errorf("cluster: Config.ID %q is not length %d", cfg.ID, cfg.IDLen)
		}
	} else {
		n.id = DeriveID(cfg.IDBase, cfg.IDLen, cfg.ClientAddr, 0)
	}
	n.idStr = n.id.String()

	n.clientLn, err = cfg.Transport.Listen(cfg.ClientAddr)
	if err != nil {
		return nil, fmt.Errorf("cluster: client listener: %w", err)
	}
	n.peerLn, err = cfg.Transport.Listen(cfg.PeerAddr)
	if err != nil {
		n.clientLn.Close()
		return nil, fmt.Errorf("cluster: peer listener: %w", err)
	}
	// Listeners may have resolved ephemeral addresses ("mem:0",
	// ":0"); the bound ones are what peers must dial.
	n.cfg.ClientAddr = n.clientLn.Addr().String()
	n.cfg.PeerAddr = n.peerLn.Addr().String()

	serveCfg := cfg.Serve
	serveCfg.Forwarder = (*forwarder)(n)
	n.srv = serve.NewServer(serveCfg)

	if err := n.bootstrap(); err != nil {
		n.srv.Close()
		n.clientLn.Close()
		n.peerLn.Close()
		return nil, err
	}
	go n.srv.Serve(n.clientLn)
	go n.servePeers()
	if cfg.GossipInterval > 0 {
		n.gw.Add(1)
		go n.gossipLoop()
	}
	return n, nil
}

// bootstrap establishes the initial membership: standalone when no
// seed answers (or none is configured), otherwise the view returned
// by the join RPC.
func (n *Node) bootstrap() error {
	self := Member{ID: n.idStr, ClientAddr: n.cfg.ClientAddr, PeerAddr: n.cfg.PeerAddr}
	var lastErr error
	for attempt := 0; attempt < 8; attempt++ {
		joined := false
		for _, seed := range n.cfg.Seeds {
			mem, err := n.joinVia(seed, self)
			if err != nil {
				if errors.Is(err, errIDCollision) && n.cfg.ID == "" {
					// Derived identity taken: re-derive and retry the
					// whole seed list under the new one.
					n.id = DeriveID(n.cfg.IDBase, n.cfg.IDLen, n.cfg.ClientAddr, attempt+1)
					n.idStr = n.id.String()
					self.ID = n.idStr
					lastErr = err
					break
				}
				lastErr = err
				continue
			}
			n.mu.Lock()
			err = n.applyMembershipLocked(mem)
			n.mu.Unlock()
			if err != nil {
				return err
			}
			joined = true
			break
		}
		if joined {
			return nil
		}
		if lastErr == nil || !errors.Is(lastErr, errIDCollision) {
			break
		}
	}
	if len(n.cfg.Seeds) > 0 && lastErr != nil {
		return fmt.Errorf("cluster: join failed: %w", lastErr)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.applyMembershipLocked(Membership{
		Version: 1,
		Origin:  n.idStr,
		Members: []Member{self},
	})
}

// applyMembershipLocked installs a view if it supersedes the current
// one, rebuilding the ring. Caller holds n.mu.
func (n *Node) applyMembershipLocked(mem Membership) error {
	if !mem.Newer(n.mem) {
		return nil
	}
	rejoin := false
	if _, ok := mem.find(n.idStr); !ok {
		// A view that evicts this node: a peer judged it dead after a
		// failed forward, but this node is demonstrably alive. Rejoin
		// by installing the peers' view with ourselves re-added under
		// a bumped version, and gossip it back. Retaining self without
		// the bump would leave this view permanently divergent — same
		// version and origin as the peers', different member set — a
		// state no push-pull exchange can repair. A transiently flaky
		// node may flap (evict, rejoin, evict…), but every round is a
		// strictly newer view, so gossip converges as soon as the
		// forwards stop failing.
		mem.Version++
		mem.Origin = n.idStr
		mem.Members = mem.withMember(Member{ID: n.idStr, ClientAddr: n.cfg.ClientAddr, PeerAddr: n.cfg.PeerAddr})
		rejoin = true
	}
	ids := make([]word.Word, 0, len(mem.Members))
	for _, m := range mem.Members {
		w, err := word.Parse(n.cfg.IDBase, m.ID)
		if err != nil {
			return fmt.Errorf("cluster: member id %q: %w", m.ID, err)
		}
		ids = append(ids, w)
	}
	ring, err := dht.NewRing(n.cfg.IDBase, n.cfg.IDLen, ids)
	if err != nil {
		return fmt.Errorf("cluster: membership ring: %w", err)
	}
	self, ok := ring.NodeAt(n.id)
	if !ok {
		return fmt.Errorf("cluster: own id %s missing from ring", n.idStr)
	}
	n.mem = mem
	n.ring = ring
	n.self = self
	n.m.members.Set(float64(len(mem.Members)))
	n.m.version.Set(float64(mem.Version))
	if rejoin {
		n.broadcastLocked()
	}
	return nil
}

// bumpLocked stamps a new view with the given member list and
// broadcasts it. Caller holds n.mu.
func (n *Node) bumpLocked(members []Member) error {
	next := Membership{Version: n.mem.Version + 1, Origin: n.idStr, Members: members}
	if err := n.applyMembershipLocked(next); err != nil {
		return err
	}
	n.broadcastLocked()
	return nil
}

// broadcastLocked pushes the current view to every other member,
// asynchronously (failures are ignored here; the forwarding path
// detects dead peers and the anti-entropy loop repairs lost pushes).
// The exchange is push-pull: a peer holding a newer view returns it,
// and the returned view is installed here. Caller holds n.mu.
func (n *Node) broadcastLocked() {
	view := n.mem
	for _, m := range view.Members {
		if m.ID == n.idStr {
			continue
		}
		addr := m.PeerAddr
		n.bg.Add(1)
		go func() {
			defer n.bg.Done()
			n.pushView(addr, view)
		}()
	}
}

// pushView sends one membership view to a peer and installs whatever
// (possibly newer) view the peer replies with. Errors are ignored:
// the push is repaired by the next anti-entropy tick.
func (n *Node) pushView(addr string, view Membership) {
	env := envelope{Type: envMembership, From: n.idStr, Mem: &view}
	reply, err := n.peerRPC(addr, env)
	if err != nil || reply.Mem == nil {
		return
	}
	n.mu.Lock()
	if !n.closed {
		_ = n.applyMembershipLocked(*reply.Mem)
	}
	n.mu.Unlock()
}

// gossipLoop is the anti-entropy pump: every GossipInterval it
// push-pulls the local view with one peer, rotating round-robin
// through the membership. Event-time broadcasts are best-effort — a
// push that races a crash, a join, or a competing same-version bump
// can be lost, and with purely event-driven gossip the cluster would
// then sit divergent until the next membership event. The loop bounds
// that divergence to a few intervals.
func (n *Node) gossipLoop() {
	defer n.gw.Done()
	t := time.NewTicker(n.cfg.GossipInterval)
	defer t.Stop()
	next := 0
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			return
		}
		view := n.mem
		var peers []string
		for _, m := range view.Members {
			if m.ID != n.idStr {
				peers = append(peers, m.PeerAddr)
			}
		}
		n.mu.Unlock()
		if len(peers) == 0 {
			continue
		}
		n.pushView(peers[next%len(peers)], view)
		next++
	}
}

// ID returns the node's identifier word.
func (n *Node) ID() word.Word { return n.id }

// ClientAddr returns the bound query address; PeerAddr the bound
// control address.
func (n *Node) ClientAddr() string { return n.cfg.ClientAddr }
func (n *Node) PeerAddr() string   { return n.cfg.PeerAddr }

// Server exposes the embedded serve.Server (metrics, traces, counts).
func (n *Node) Server() *serve.Server { return n.srv }

// Counts snapshots the node's serve conservation counters.
func (n *Node) Counts() serve.Counts { return n.srv.Counts() }

// Membership returns the node's current view.
func (n *Node) Membership() Membership {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.mem
}

// ForwardHopStats returns the sum and count of inter-node hop counts
// of forwarded queries answered at this node — the exact moments
// behind the dn_cluster_forward_hops histogram.
func (n *Node) ForwardHopStats() (sum, count int64) {
	return n.hopSum.Load(), n.hopCount.Load()
}

// Status is the control-plane status document (peer RPC and
// dbcluster status).
type Status struct {
	ID         string       `json:"id"`
	ClientAddr string       `json:"client_addr"`
	PeerAddr   string       `json:"peer_addr"`
	Membership Membership   `json:"membership"`
	Counts     serve.Counts `json:"counts"`
	HopSum     int64        `json:"forward_hop_sum"`
	HopCount   int64        `json:"forward_hop_count"`
}

// Status snapshots the node.
func (n *Node) Status() Status {
	sum, count := n.ForwardHopStats()
	return Status{
		ID:         n.idStr,
		ClientAddr: n.cfg.ClientAddr,
		PeerAddr:   n.cfg.PeerAddr,
		Membership: n.Membership(),
		Counts:     n.Counts(),
		HopSum:     sum,
		HopCount:   count,
	}
}

// markFailed removes a peer judged dead (dial or RPC failure on the
// forwarding path) and gossips the shrunken view.
func (n *Node) markFailed(id string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	if _, ok := n.mem.find(id); !ok {
		return
	}
	n.m.failures.Inc()
	_ = n.bumpLocked(n.mem.withoutMember(id))
}

// peerClient returns a pooled client connection to a peer's query
// address, dialing on first use.
func (n *Node) peerClient(addr string) (*serve.Client, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrNodeClosed
	}
	if c, ok := n.clients[addr]; ok {
		n.mu.Unlock()
		return c, nil
	}
	n.mu.Unlock()
	c, err := serve.DialTransport(n.cfg.Transport, addr)
	if err != nil {
		return nil, err
	}
	// Forward round trips ride this pooled client from worker shards;
	// a peer that dies mid-frame (or stops reading) must fail the
	// write, not park the shard until TCP keepalive.
	c.SetWriteTimeout(n.cfg.PeerIOTimeout)
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		c.Close()
		return nil, ErrNodeClosed
	}
	if prev, ok := n.clients[addr]; ok {
		n.mu.Unlock()
		c.Close()
		return prev, nil
	}
	n.clients[addr] = c
	n.mu.Unlock()
	return c, nil
}

// dropClient discards a pooled connection that returned an error.
func (n *Node) dropClient(addr string, c *serve.Client) {
	n.mu.Lock()
	if n.clients[addr] == c {
		delete(n.clients, addr)
	}
	n.mu.Unlock()
	c.Close()
}

// Leave announces departure (the view without this node is gossiped)
// and shuts the node down cleanly.
func (n *Node) Leave() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrNodeClosed
	}
	n.m.leaves.Inc()
	members := n.mem.withoutMember(n.idStr)
	if len(members) > 0 {
		view := Membership{Version: n.mem.Version + 1, Origin: n.idStr, Members: members}
		for _, m := range members {
			addr := m.PeerAddr
			n.bg.Add(1)
			go func() {
				defer n.bg.Done()
				_, _ = n.peerRPC(addr, envelope{Type: envMembership, From: n.idStr, Mem: &view})
			}()
		}
	}
	n.mu.Unlock()
	n.bg.Wait()
	return n.Close()
}

// Close shuts the node down without announcing departure — from the
// peers' point of view this is a crash (connections sever, the next
// forward through this node fails and evicts it). The embedded server
// drains its queue shedding reason shutdown, so the node's
// conservation identity stays exact through the kill.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrNodeClosed
	}
	n.closed = true
	close(n.stop)
	clients := n.clients
	n.clients = nil
	n.mu.Unlock()

	n.clientLn.Close()
	n.peerLn.Close()
	err := n.srv.Close()
	for _, c := range clients {
		c.Close()
	}
	n.bg.Wait()
	n.gw.Wait()
	return err
}

// WaitConverged blocks until every node in views agrees on one
// membership version (and member count), or the timeout elapses.
// Test/harness helper.
func WaitConverged(timeout time.Duration, nodes ...*Node) error {
	deadline := time.Now().Add(timeout)
	for {
		ok := true
		var first Membership
		for i, n := range nodes {
			v := n.Membership()
			if i == 0 {
				first = v
				continue
			}
			if v.Version != first.Version || v.Origin != first.Origin || len(v.Members) != len(first.Members) {
				ok = false
				break
			}
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: %d nodes did not converge within %v", len(nodes), timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
