// Package cluster runs N serving nodes as one logical route-query
// service, routed over its own de Bruijn fabric. Each node owns a
// slice of the query key space by consistent placement on a DG(d,k)
// identifier space — the same space the paper's routing works in —
// and misses are forwarded between nodes with the Koorde walk of
// internal/dht (successor + finger pointers, imaginary de Bruijn
// hops), one dht.Ring.Step per real hop. The system that serves
// queries about de Bruijn routing is itself routed by it.
//
// Any node answers any query: a node that does not hold a key either
// proxies the query hop-by-hop toward the owner (default) or
// redirects the client to it. Forwards ride the ordinary client wire
// protocol with a resumable ForwardState attached, so every hop is a
// plain admitted request and the serve conservation identity extends
// cluster-wide:
//
//	Σ sent = Σ answered + Σ degraded + Σ shed + Σ forwarded
//
// per node and in sum, always — and hop-by-hop, every forwarded
// outcome at one node is a forwarded_in admission at another, so in a
// quiesced failure-free cluster Σ forwarded = Σ forwarded_in exactly.
// internal/check's cluster oracle gates both.
//
// Placement keys hash the query's canonical cache-key bytes, so the
// partition is exactly a partition of the cache key space: the
// cluster's caches form one additive cluster-wide LRU with no
// duplication (modulo replication). Because any node can compute any
// answer, ownership is a locality optimization, never a liveness
// dependency: a forward that fails — peer crashed, link severed —
// falls back to computing locally, and the failure is gossiped so the
// ring heals.
package cluster

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro/internal/serve"
	"repro/internal/word"
)

// Defaults for Config zero values.
const (
	DefaultIDBase      = 2
	DefaultIDLen       = 16
	DefaultReplication = 2
)

// Config describes one cluster node.
type Config struct {
	// ID is the node's identifier in the DG(IDBase, IDLen) space, as
	// a digit string ("0110..."). Empty derives one by hashing
	// ClientAddr — fine for ad-hoc clusters, but explicit IDs are
	// what make placements reproducible across restarts.
	ID string
	// IDBase and IDLen shape the identifier space DG(d,k); all nodes
	// of a cluster must agree. Defaults 2 and 16 (65536 identifiers).
	IDBase, IDLen int
	// ClientAddr is the query listener (the dbserve wire protocol);
	// PeerAddr is the control listener (join/leave/membership/status).
	ClientAddr, PeerAddr string
	// Transport carries both listeners and all outbound connections:
	// serve.TCP for real clusters, serve.NewMemTransport for
	// in-process ones. Required.
	Transport serve.Transport
	// Replication is the replica-set size R: a key is held by its
	// owner plus the R-1 following ring nodes, any of which answers
	// without forwarding. Default 2.
	Replication int
	// MaxHops bounds a forward chain (TTL); a node receiving an
	// exhausted budget answers locally. Default 4*IDLen + 16,
	// comfortably above the Koorde walk's guard for sane N.
	MaxHops int
	// Redirect switches miss handling from proxying to redirecting:
	// the client gets StatusRedirect naming the owner's ClientAddr
	// instead of a proxied answer. Forwarded-in requests are always
	// proxied; only client-fresh misses redirect.
	Redirect bool
	// Seeds are peer addresses of existing members to join through
	// (tried in order). Empty boots a standalone single-node cluster.
	Seeds []string
	// Serve configures the embedded per-node server. Its Forwarder
	// is owned by the cluster and must be nil; its Registry, when
	// set, also receives the cluster metrics.
	Serve serve.Config
	// JoinTimeout bounds each join attempt (default 5s).
	JoinTimeout time.Duration
	// PeerIOTimeout bounds every control-plane frame read/write in
	// handlePeer and every data-plane forward frame write (via the
	// pooled peer clients' write timeout). Without it, a peer that
	// stalls or goes half-open mid-frame parks a goroutine — or a
	// worker shard — forever. Default 10s; negative disables (tests
	// only).
	PeerIOTimeout time.Duration
	// GossipInterval paces the anti-entropy loop: each tick the node
	// pushes its membership view to one peer (round-robin) and
	// installs the newer view the reply carries. Event-time
	// broadcasts are best-effort — a push lost to a dying peer or a
	// mid-join race would otherwise leave views divergent forever.
	// Default 100ms; negative disables (tests only).
	GossipInterval time.Duration
}

// ErrSingleShard rejects a cluster node configured with exactly one
// worker shard: a forward parks the shard for a full round trip, so a
// single-shard node deadlocks against itself the moment a forwarded
// request and the request it forwards contend for the only worker
// (the E23 finding). See DESIGN §11.
var ErrSingleShard = errors.New("cluster: Serve.Shards == 1 cannot forward safely; use ≥ 2 shards")

// withDefaults validates and fills cfg.
func (cfg Config) withDefaults() (Config, error) {
	if cfg.Transport == nil {
		return cfg, errors.New("cluster: Config.Transport is required")
	}
	if cfg.ClientAddr == "" || cfg.PeerAddr == "" {
		return cfg, errors.New("cluster: ClientAddr and PeerAddr are required")
	}
	if cfg.Serve.Forwarder != nil {
		return cfg, errors.New("cluster: Serve.Forwarder is owned by the cluster")
	}
	if cfg.Serve.Shards == 1 {
		return cfg, ErrSingleShard
	}
	if cfg.Serve.Shards == 0 {
		// The serve default (GOMAXPROCS) resolves to 1 on a single-CPU
		// machine, which is exactly the self-deadlock ErrSingleShard
		// guards against — pin the floor at 2 here.
		cfg.Serve.Shards = runtime.GOMAXPROCS(0)
		if cfg.Serve.Shards < 2 {
			cfg.Serve.Shards = 2
		}
	}
	if cfg.IDBase == 0 {
		cfg.IDBase = DefaultIDBase
	}
	if cfg.IDLen == 0 {
		cfg.IDLen = DefaultIDLen
	}
	if _, err := word.Count(cfg.IDBase, cfg.IDLen); err != nil {
		return cfg, fmt.Errorf("cluster: identifier space: %w", err)
	}
	if cfg.Replication == 0 {
		cfg.Replication = DefaultReplication
	}
	if cfg.Replication < 1 {
		return cfg, fmt.Errorf("cluster: Replication %d < 1", cfg.Replication)
	}
	if cfg.MaxHops == 0 {
		cfg.MaxHops = 4*cfg.IDLen + 16
	}
	if cfg.JoinTimeout <= 0 {
		cfg.JoinTimeout = 5 * time.Second
	}
	if cfg.PeerIOTimeout == 0 {
		cfg.PeerIOTimeout = 10 * time.Second
	}
	if cfg.PeerIOTimeout < 0 {
		cfg.PeerIOTimeout = 0
	}
	if cfg.GossipInterval == 0 {
		cfg.GossipInterval = 100 * time.Millisecond
	}
	if cfg.GossipInterval < 0 {
		cfg.GossipInterval = 0
	}
	return cfg, nil
}

// DeriveID hashes seed text into an identifier of DG(d,k) — the
// default node identity (seeded by ClientAddr) and the retry path on
// join collisions (seeded by addr plus an attempt counter).
func DeriveID(d, k int, seed string, attempt int) word.Word {
	h := uint64(14695981039346656037) // FNV-64a offset
	for i := 0; i < len(seed); i++ {
		h ^= uint64(seed[i])
		h *= 1099511628211
	}
	h ^= uint64(attempt) * 0x9e3779b97f4a7c15
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	size, err := word.Count(d, k)
	if err != nil {
		panic(err) // caller validated the space
	}
	w, err := word.Unrank(d, k, h%uint64(size))
	if err != nil {
		panic(err)
	}
	return w
}
