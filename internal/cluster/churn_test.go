package cluster

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/dht"
	"repro/internal/serve"
	"repro/internal/word"
)

func mustRing(t *testing.T, d, k int, ids []word.Word) *dht.Ring {
	t.Helper()
	r, err := dht.NewRing(d, k, ids)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestClusterChurnConservation is satellite 3: a seeded cluster under
// load with a mid-run crash and a mid-run join, where every request
// still resolves to exactly one outcome and the cluster-wide
// conservation identity — killed node included — holds exactly.
func TestClusterChurnConservation(t *testing.T) {
	h := testHarness(t, HarnessConfig{Nodes: 5, Seed: 42, IDLen: 10, Replication: 2})
	pairs := allPairs(t)

	// Clients attach to nodes 0 and 1 only; node 4 is the crash
	// victim, so no client connection dies with it.
	var clients []*serve.Client
	for i := 0; i < 2; i++ {
		c, err := h.Client(i)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients = append(clients, c)
	}

	const (
		drivers   = 4
		perDriver = 300
		churnAt   = 100 // requests per driver before the churn events
	)
	var mu sync.Mutex
	outcomes := map[string]int{}
	var wg sync.WaitGroup
	var churnOnce sync.Once
	killed := make(chan serve.Counts, 1)
	churn := func() {
		counts, err := h.Kill(4)
		if err != nil {
			t.Errorf("Kill: %v", err)
		}
		killed <- counts
		if _, err := h.Join(); err != nil {
			t.Errorf("Join: %v", err)
		}
	}
	for d := 0; d < drivers; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + d)))
			c := clients[d%len(clients)]
			for i := 0; i < perDriver; i++ {
				if i == churnAt && d == 0 {
					churnOnce.Do(churn)
				}
				pair := pairs[rng.Intn(len(pairs))]
				var req serve.Request
				switch i % 3 {
				case 0:
					req = serve.DistanceRequest(pair[0], pair[1], serve.Undirected)
				case 1:
					req = serve.RouteRequest(pair[0], pair[1], serve.Directed)
				default:
					req = serve.NextHopRequest(pair[0], pair[1], serve.Undirected)
				}
				resp, err := c.Do(context.Background(), req)
				if err != nil {
					t.Errorf("driver %d: Do: %v", d, err)
					return
				}
				mu.Lock()
				outcomes[resp.Status]++
				mu.Unlock()
			}
		}(d)
	}
	wg.Wait()

	killedCounts := <-killed
	if !killedCounts.Conserved() {
		t.Fatalf("killed node's identity broken: %+v", killedCounts)
	}

	// Quiesce: no new requests; in-flight forwards have resolved once
	// every driver returned. The identity must hold exactly, per node
	// and in sum, with the crashed node's final counts folded in.
	c := h.Counts(killedCounts)
	for i, per := range c.PerNode {
		if !per.Conserved() {
			t.Fatalf("node %d identity broken: %+v", i, per)
		}
	}
	if !c.Conserved() {
		t.Fatalf("cluster conservation violated: %+v", c)
	}
	// Every client request resolved to exactly one response.
	total := 0
	for _, v := range outcomes {
		total += v
	}
	if want := drivers * perDriver; total != want {
		t.Fatalf("clients saw %d responses for %d requests", total, want)
	}
	if outcomes["ok"] == 0 {
		t.Fatal("no request answered ok under churn")
	}
	// Hop conservation relaxes under churn only toward admitted-but-
	// unconsumed forwards; the reverse direction would mean invented
	// outcomes.
	if c.Forwarded > c.ForwardedIn {
		t.Fatalf("more forwarded outcomes (%d) than admitted forwards (%d)", c.Forwarded, c.ForwardedIn)
	}
	if c.ForwardedIn == 0 {
		t.Fatal("nothing rode the fabric; churn test proved nothing")
	}
	if err := h.WaitConverged(5 * time.Second); err != nil {
		t.Fatalf("membership did not re-converge after churn: %v", err)
	}
	for _, n := range h.Live() {
		if got := len(n.Membership().Members); got != 5 {
			t.Fatalf("node %v sees %d members after kill+join; want 5", n.ID(), got)
		}
	}
}

// TestMembershipOrdering pins the total order of views.
func TestMembershipOrdering(t *testing.T) {
	a := Membership{Version: 3, Origin: "aaa"}
	b := Membership{Version: 4, Origin: "000"}
	if !b.Newer(a) || a.Newer(b) {
		t.Fatal("higher version must win")
	}
	c := Membership{Version: 3, Origin: "bbb"}
	if !c.Newer(a) || a.Newer(c) {
		t.Fatal("origin must break version ties")
	}
	if a.Newer(a) {
		t.Fatal("a view does not supersede itself")
	}
}

// TestDeriveIDDeterministic pins identifier derivation: pure in
// (seed, attempt), different across attempts.
func TestDeriveIDDeterministic(t *testing.T) {
	a := DeriveID(2, 16, "127.0.0.1:4600", 0)
	b := DeriveID(2, 16, "127.0.0.1:4600", 0)
	if a.String() != b.String() {
		t.Fatal("derivation not deterministic")
	}
	c := DeriveID(2, 16, "127.0.0.1:4600", 1)
	if a.String() == c.String() {
		t.Fatal("attempt counter changed nothing")
	}
}

// TestPlacementStability pins that a query's placement key is a pure
// function of the query (the property that makes the partition a
// cache partition).
func TestPlacementStability(t *testing.T) {
	h := testHarness(t, HarnessConfig{Nodes: 2, Seed: 13, IDLen: 8})
	req := serve.DistanceRequest(word.MustParse(2, "00110"), word.MustParse(2, "11010"), serve.Undirected)
	q, err := serve.ParseQuery(req)
	if err != nil {
		t.Fatal(err)
	}
	k0, err := h.Node(0).placementKey(q)
	if err != nil {
		t.Fatal(err)
	}
	k1, err := h.Node(1).placementKey(q)
	if err != nil {
		t.Fatal(err)
	}
	if k0.String() != k1.String() {
		t.Fatalf("nodes disagree on placement: %v vs %v", k0, k1)
	}
	q2, _ := serve.ParseQuery(serve.DistanceRequest(word.MustParse(2, "00110"), word.MustParse(2, "11010"), serve.Directed))
	k2, _ := h.Node(0).placementKey(q2)
	if k0.String() == k2.String() {
		t.Log("directed/undirected hash to the same identifier (possible, just unlikely)")
	}
}

// TestJoinCollisionRejected pins the identity guard: a join with an
// identifier another address holds is refused.
func TestJoinCollisionRejected(t *testing.T) {
	h := testHarness(t, HarnessConfig{Nodes: 1, Seed: 17, IDLen: 8})
	n0 := h.Node(0)
	scfg := serve.Config{Shards: 2, QueueDepth: 16}
	_, err := New(Config{
		ID:         n0.ID().String(),
		IDBase:     DefaultIDBase,
		IDLen:      8,
		ClientAddr: "collide-c",
		PeerAddr:   "collide-p",
		Transport:  h.Transport,
		Seeds:      []string{n0.PeerAddr()},
		Serve:      scfg,
	})
	if err == nil {
		t.Fatal("join with a taken explicit identifier succeeded")
	}
	if errors.Is(err, ErrSingleShard) {
		t.Fatalf("wrong rejection: %v", err)
	}
}
