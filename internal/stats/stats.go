// Package stats provides the small statistical toolkit used by the
// experiment harness: streaming moments, integer histograms, and
// fixed-width table rendering for the regenerated tables and figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Accumulator collects streaming first and second moments. The zero
// value is ready to use.
type Accumulator struct {
	n          int
	sum, sumSq float64
	min, max   float64
}

// Add records one observation.
func (a *Accumulator) Add(x float64) {
	if a.n == 0 || x < a.min {
		a.min = x
	}
	if a.n == 0 || x > a.max {
		a.max = x
	}
	a.n++
	a.sum += x
	a.sumSq += x * x
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Sum returns the total.
func (a *Accumulator) Sum() float64 { return a.sum }

// Mean returns the sample mean (0 when empty).
func (a *Accumulator) Mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}

// Variance returns the population variance (0 when empty).
func (a *Accumulator) Variance() float64 {
	if a.n == 0 {
		return 0
	}
	m := a.Mean()
	v := a.sumSq/float64(a.n) - m*m
	if v < 0 {
		return 0
	}
	return v
}

// StdDev returns the population standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// StdErr returns the standard error of the mean.
func (a *Accumulator) StdErr() float64 {
	if a.n == 0 {
		return 0
	}
	return a.StdDev() / math.Sqrt(float64(a.n))
}

// Min returns the smallest observation (0 when empty).
func (a *Accumulator) Min() float64 {
	return a.min
}

// Max returns the largest observation (0 when empty).
func (a *Accumulator) Max() float64 {
	return a.max
}

// Histogram counts non-negative integer observations.
type Histogram struct {
	counts []int
	total  int
}

// Add records one observation; negative values are rejected.
func (h *Histogram) Add(v int) error {
	if v < 0 {
		return fmt.Errorf("stats: negative histogram value %d", v)
	}
	for len(h.counts) <= v {
		h.counts = append(h.counts, 0)
	}
	h.counts[v]++
	h.total++
	return nil
}

// Count returns the number of observations equal to v.
func (h *Histogram) Count(v int) int {
	if v < 0 || v >= len(h.counts) {
		return 0
	}
	return h.counts[v]
}

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// MaxValue returns the largest recorded value (-1 when empty).
func (h *Histogram) MaxValue() int {
	for v := len(h.counts) - 1; v >= 0; v-- {
		if h.counts[v] > 0 {
			return v
		}
	}
	return -1
}

// Mean returns the mean of the recorded values.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var sum float64
	for v, c := range h.counts {
		sum += float64(v) * float64(c)
	}
	return sum / float64(h.total)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the recorded values.
func (h *Histogram) Quantile(q float64) int {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int(math.Ceil(q * float64(h.total)))
	if target < 1 {
		target = 1
	}
	cum := 0
	for v, c := range h.counts {
		cum += c
		if cum >= target {
			return v
		}
	}
	return len(h.counts) - 1
}

// Counts returns a copy of the per-value counts.
func (h *Histogram) Counts() []int {
	out := make([]int, len(h.counts))
	copy(out, h.counts)
	return out
}

// Table renders rows of columns with right-aligned fixed widths — the
// output format of the experiment binaries.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are stringified with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table. Rows wider than the header get unheaded
// columns rather than a panic; short rows leave their tail blank.
func (t *Table) String() string {
	cols := len(t.header)
	for _, row := range t.rows {
		if len(row) > cols {
			cols = len(row)
		}
	}
	widths := make([]int, cols)
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Gini computes the Gini coefficient of a set of non-negative loads:
// 0 is perfectly balanced, →1 maximally skewed. Used by the wildcard
// load-balancing experiment (E7).
func Gini(loads []int) float64 {
	if len(loads) == 0 {
		return 0
	}
	sorted := make([]int, len(loads))
	copy(sorted, loads)
	sort.Ints(sorted)
	var cum, weighted float64
	for i, v := range sorted {
		cum += float64(v)
		weighted += float64(v) * float64(i+1)
	}
	if cum == 0 {
		return 0
	}
	n := float64(len(sorted))
	return (2*weighted - (n+1)*cum) / (n * cum)
}
