package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestAccumulatorMoments(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Variance() != 0 || a.StdErr() != 0 {
		t.Error("zero-value accumulator not zero")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 || a.Sum() != 40 {
		t.Errorf("N=%d Sum=%v", a.N(), a.Sum())
	}
	if a.Mean() != 5 {
		t.Errorf("Mean = %v", a.Mean())
	}
	if math.Abs(a.Variance()-4) > 1e-12 {
		t.Errorf("Variance = %v, want 4", a.Variance())
	}
	if math.Abs(a.StdDev()-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", a.StdDev())
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("Min=%v Max=%v", a.Min(), a.Max())
	}
	if math.Abs(a.StdErr()-2/math.Sqrt(8)) > 1e-12 {
		t.Errorf("StdErr = %v", a.StdErr())
	}
}

func TestAccumulatorNegativeValues(t *testing.T) {
	var a Accumulator
	a.Add(-3)
	a.Add(3)
	if a.Mean() != 0 || a.Min() != -3 || a.Max() != 3 {
		t.Errorf("mean=%v min=%v max=%v", a.Mean(), a.Min(), a.Max())
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	if h.MaxValue() != -1 || h.Mean() != 0 {
		t.Error("empty histogram wrong")
	}
	for _, v := range []int{0, 1, 1, 2, 2, 2, 5} {
		if err := h.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Add(-1); err == nil {
		t.Error("accepted negative value")
	}
	if h.Total() != 7 || h.Count(2) != 3 || h.Count(3) != 0 || h.Count(99) != 0 {
		t.Errorf("histogram counts wrong: %v", h.Counts())
	}
	if h.MaxValue() != 5 {
		t.Errorf("MaxValue = %d", h.MaxValue())
	}
	if want := 13.0 / 7.0; math.Abs(h.Mean()-want) > 1e-12 {
		t.Errorf("Mean = %v, want %v", h.Mean(), want)
	}
	if h.Quantile(0.5) != 2 {
		t.Errorf("median = %d, want 2", h.Quantile(0.5))
	}
	if h.Quantile(0) != 0 || h.Quantile(1) != 5 {
		t.Errorf("extreme quantiles %d %d", h.Quantile(0), h.Quantile(1))
	}
	if h.Quantile(-1) != 0 || h.Quantile(2) != 5 {
		t.Error("out-of-range quantiles not clamped")
	}
}

func TestHistogramCountsIsCopy(t *testing.T) {
	var h Histogram
	_ = h.Add(1)
	c := h.Counts()
	c[1] = 99
	if h.Count(1) != 1 {
		t.Error("Counts returned aliased storage")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("k", "mean")
	tb.AddRow(3, 2.25)
	tb.AddRow(10, 9.0001)
	got := tb.String()
	if !strings.Contains(got, "k") || !strings.Contains(got, "2.2500") || !strings.Contains(got, "9.0001") {
		t.Errorf("table:\n%s", got)
	}
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines, want 4", len(lines))
	}
	// All rows align to the same width.
	for _, l := range lines[1:] {
		if len(l) != len(lines[0]) {
			t.Errorf("misaligned row %q vs header %q", l, lines[0])
		}
	}
}

func TestGini(t *testing.T) {
	if g := Gini([]int{5, 5, 5, 5}); math.Abs(g) > 1e-12 {
		t.Errorf("uniform Gini = %v, want 0", g)
	}
	// All load on one of n: Gini = (n-1)/n.
	if g := Gini([]int{0, 0, 0, 12}); math.Abs(g-0.75) > 1e-12 {
		t.Errorf("concentrated Gini = %v, want 0.75", g)
	}
	if g := Gini(nil); g != 0 {
		t.Errorf("empty Gini = %v", g)
	}
	if g := Gini([]int{0, 0}); g != 0 {
		t.Errorf("all-zero Gini = %v", g)
	}
}

func TestGiniBoundsProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		loads := make([]int, len(raw))
		for i, v := range raw {
			loads[i] = int(v)
		}
		g := Gini(loads)
		return g >= -1e-12 && g < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccumulatorMatchesQuickVariance(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		var a Accumulator
		var sum float64
		for _, v := range raw {
			a.Add(float64(v))
			sum += float64(v)
		}
		mean := sum / float64(len(raw))
		var vv float64
		for _, v := range raw {
			vv += (float64(v) - mean) * (float64(v) - mean)
		}
		vv /= float64(len(raw))
		return math.Abs(a.Variance()-vv) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
