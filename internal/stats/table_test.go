package stats

import (
	"strings"
	"testing"
)

// Regression: a row with more cells than the header used to index
// past the widths slice and panic in String.
func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow(1, 2, 3, "extra-wide-cell")
	tb.AddRow(4)
	out := tb.String()
	for _, want := range []string{"a", "b", "3", "extra-wide-cell", "4"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, separator, two rows
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), out)
	}
}

func TestTableEmptyHeaderWideRows(t *testing.T) {
	tb := NewTable()
	tb.AddRow("x", 1.5)
	out := tb.String()
	if !strings.Contains(out, "x") || !strings.Contains(out, "1.5000") {
		t.Errorf("unexpected render:\n%s", out)
	}
}
