package word

import "testing"

func FuzzParseRoundTrip(f *testing.F) {
	f.Add(2, "0110")
	f.Add(3, "0212")
	f.Add(36, "z9a")
	f.Add(2, "")
	f.Add(1, "0")
	f.Add(16, "A3")
	f.Fuzz(func(t *testing.T, base int, s string) {
		w, err := Parse(base, s)
		if err != nil {
			return // invalid input is fine; it must just not panic
		}
		back, err := Parse(base, w.String())
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", w, err)
		}
		if !back.Equal(w) {
			t.Fatalf("round trip changed %q to %q", w, back)
		}
		if w.Base() != base || w.Len() != len(s) {
			t.Fatalf("metadata wrong for %q", s)
		}
	})
}

func FuzzShiftInverses(f *testing.F) {
	f.Add(uint8(2), []byte{0, 1, 1, 0}, uint8(1))
	f.Add(uint8(3), []byte{2, 0, 1}, uint8(2))
	f.Fuzz(func(t *testing.T, base uint8, digits []byte, a uint8) {
		w, err := New(int(base), digits)
		if err != nil {
			return
		}
		if int(a) >= int(base) {
			return
		}
		k := w.Len()
		if got := w.ShiftRight(a).ShiftLeft(w.Digit(k - 1)); !got.Equal(w) {
			t.Fatalf("shift inverse broken for %v", w)
		}
		if got := w.ShiftLeft(a).ShiftRight(w.Digit(0)); !got.Equal(w) {
			t.Fatalf("shift inverse broken for %v", w)
		}
	})
}
