package word

import (
	"math/rand"
	"testing"
)

func TestPackedBits(t *testing.T) {
	cases := map[int]int{2: 1, 3: 2, 4: 2, 5: 0, 10: 0, 36: 0}
	for base, want := range cases {
		if got := PackedBits(base); got != want {
			t.Errorf("PackedBits(%d) = %d, want %d", base, got, want)
		}
	}
	if got := PackedWords(2, 64); got != 1 {
		t.Errorf("PackedWords(2,64) = %d, want 1", got)
	}
	if got := PackedWords(2, 65); got != 2 {
		t.Errorf("PackedWords(2,65) = %d, want 2", got)
	}
	if got := PackedWords(4, 32); got != 1 {
		t.Errorf("PackedWords(4,32) = %d, want 1", got)
	}
	if got := PackedWords(4, 33); got != 2 {
		t.Errorf("PackedWords(4,33) = %d, want 2", got)
	}
	if got := PackedWords(7, 10); got != 0 {
		t.Errorf("PackedWords(7,10) = %d, want 0", got)
	}
}

// TestPackedRoundTrip packs and unpacks words across the packable
// bases, exhaustively for small k and randomly for the sizes that
// exercise the d=2 whole-element and 8-at-a-time fast paths.
func TestPackedRoundTrip(t *testing.T) {
	for _, d := range []int{2, 3, 4} {
		for k := 1; k <= 8; k++ {
			if _, err := ForEach(d, k, func(w Word) bool {
				packed := w.AppendPacked(nil)
				got, err := UnpackPacked(d, k, packed)
				if err != nil {
					t.Fatalf("UnpackPacked(%d,%d,%v): %v", d, k, w, err)
				}
				if !got.Equal(w) {
					t.Fatalf("round trip DG(%d,%d): %v != %v", d, k, got, w)
				}
				return true
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct{ d, k int }{
		{2, 63}, {2, 64}, {2, 65}, {2, 100}, {2, 128}, {2, 200}, {2, 1024},
		{3, 31}, {3, 32}, {3, 33}, {3, 100},
		{4, 32}, {4, 33}, {4, 512},
	} {
		for trial := 0; trial < 20; trial++ {
			w := Random(tc.d, tc.k, rng)
			packed := w.AppendPacked(nil)
			if want := PackedWords(tc.d, tc.k); len(packed) != want {
				t.Fatalf("DG(%d,%d): packed length %d, want %d", tc.d, tc.k, len(packed), want)
			}
			got, err := UnpackPacked(tc.d, tc.k, packed)
			if err != nil {
				t.Fatalf("UnpackPacked(%d,%d): %v", tc.d, tc.k, err)
			}
			if !got.Equal(w) {
				t.Fatalf("round trip DG(%d,%d): %v != %v", tc.d, tc.k, got, w)
			}
		}
	}
}

// TestPackedLayout pins the bit layout: digit i occupies bits
// [i·b, (i+1)·b) counting from bit 0 of element 0.
func TestPackedLayout(t *testing.T) {
	w := MustParse(2, "1101")
	packed := w.AppendPacked(nil)
	if len(packed) != 1 || packed[0] != 0b1011 {
		t.Fatalf("pack(1101 base 2) = %b, want 1011", packed)
	}
	w = MustParse(4, "123")
	packed = w.AppendPacked(nil)
	if len(packed) != 1 || packed[0] != 1|2<<2|3<<4 {
		t.Fatalf("pack(123 base 4) = %b, want %b", packed, 1|2<<2|3<<4)
	}
}

func TestPackedErrors(t *testing.T) {
	if _, err := UnpackPacked(5, 4, []uint64{0}); err == nil {
		t.Error("UnpackPacked accepted unpackable base 5")
	}
	if _, err := UnpackPacked(2, 0, nil); err == nil {
		t.Error("UnpackPacked accepted k = 0")
	}
	if _, err := UnpackPacked(2, 65, []uint64{0}); err == nil {
		t.Error("UnpackPacked accepted short vector")
	}
	// Base 3 digit value 3 is representable in 2 bits but invalid.
	if _, err := UnpackPacked(3, 2, []uint64{3}); err == nil {
		t.Error("UnpackPacked accepted out-of-base digit")
	}
	// Set bits past k·b are corruption, not padding.
	if _, err := UnpackPacked(2, 4, []uint64{1 << 4}); err == nil {
		t.Error("UnpackPacked accepted set padding bits")
	}
	defer func() {
		if recover() == nil {
			t.Error("AppendPacked did not panic on unpackable base")
		}
	}()
	MustParse(5, "1234").AppendPacked(nil)
}

func TestAppendDigits(t *testing.T) {
	w := MustParse(4, "3210")
	buf := make([]byte, 0, 8)
	got := w.AppendDigits(buf)
	if string(got) != string([]byte{3, 2, 1, 0}) {
		t.Fatalf("AppendDigits = %v", got)
	}
	got2 := w.AppendDigits(got)
	if len(got2) != 8 || &got2[0] != &got[0] {
		t.Fatalf("AppendDigits did not extend in place")
	}
}
