// Package word implements d-ary words of fixed length k, the vertex
// labels of the de Bruijn graph DG(d,k).
//
// A word X = (x_1, ..., x_k) with digits x_i in {0, ..., d-1} denotes a
// vertex. The two shift-register moves of the paper are provided:
//
//	X⁻(a) = (x_2, ..., x_k, a)   — ShiftLeft, the type-L neighbor
//	X⁺(a) = (a, x_1, ..., x_k-1) — ShiftRight, the type-R neighbor
//
// The paper indexes digits 1..k; this package is 0-based: Digit(i)
// returns x_{i+1}.
package word

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
)

// MaxBase is the largest supported alphabet size. Digits are rendered
// with the characters 0-9 then a-z, so bases beyond 36 have no textual
// form; the routing algorithms themselves do not care, but keeping a
// printable alphabet makes every vertex name round-trippable.
const MaxBase = 36

const digitChars = "0123456789abcdefghijklmnopqrstuvwxyz"

// Errors returned by constructors and parsers.
var (
	ErrBadBase   = errors.New("word: base must be in [2, 36]")
	ErrEmpty     = errors.New("word: length must be at least 1")
	ErrBadDigit  = errors.New("word: digit out of range for base")
	ErrBaseMixed = errors.New("word: operands have different bases")
	ErrLenMixed  = errors.New("word: operands have different lengths")
)

// Word is a fixed-length word over the alphabet {0, ..., base-1}. The
// zero value is not a valid Word; construct values with New, Parse,
// Unrank, Random or the shift methods. Words are immutable: every
// operation returns a fresh value and never aliases the receiver's
// backing storage with a caller-visible mutation path.
type Word struct {
	base   int
	digits []byte
}

// New builds a Word from explicit digits. The digit slice is copied.
func New(base int, digits []byte) (Word, error) {
	if base < 2 || base > MaxBase {
		return Word{}, fmt.Errorf("%w: got %d", ErrBadBase, base)
	}
	if len(digits) == 0 {
		return Word{}, ErrEmpty
	}
	d := make([]byte, len(digits))
	for i, v := range digits {
		if int(v) >= base {
			return Word{}, fmt.Errorf("%w: digit %d at position %d, base %d", ErrBadDigit, v, i, base)
		}
		d[i] = v
	}
	return Word{base: base, digits: d}, nil
}

// MustNew is New for programmer-controlled literals; it panics on error.
func MustNew(base int, digits []byte) Word {
	w, err := New(base, digits)
	if err != nil {
		panic(err)
	}
	return w
}

// Parse decodes a textual word such as "0110" (base 2) or "a3f" (base
// 16). Characters 0-9 and a-z encode digit values 0-35.
func Parse(base int, s string) (Word, error) {
	if base < 2 || base > MaxBase {
		return Word{}, fmt.Errorf("%w: got %d", ErrBadBase, base)
	}
	if s == "" {
		return Word{}, ErrEmpty
	}
	digits := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		var v int
		switch {
		case c >= '0' && c <= '9':
			v = int(c - '0')
		case c >= 'a' && c <= 'z':
			v = int(c-'a') + 10
		default:
			return Word{}, fmt.Errorf("%w: character %q at position %d", ErrBadDigit, c, i)
		}
		if v >= base {
			return Word{}, fmt.Errorf("%w: digit %d at position %d, base %d", ErrBadDigit, v, i, base)
		}
		digits[i] = byte(v)
	}
	return Word{base: base, digits: digits}, nil
}

// MustParse is Parse for programmer-controlled literals; it panics on
// error.
func MustParse(base int, s string) Word {
	w, err := Parse(base, s)
	if err != nil {
		panic(err)
	}
	return w
}

// Zeros returns the all-zero word of length k, the vertex (0, ..., 0).
func Zeros(base, k int) (Word, error) {
	if k < 1 {
		return Word{}, ErrEmpty
	}
	return New(base, make([]byte, k))
}

// Base returns the alphabet size d.
func (w Word) Base() int { return w.base }

// Len returns the word length k (the diameter of DG(d,k)).
func (w Word) Len() int { return len(w.digits) }

// IsZero reports whether w is the invalid zero value.
func (w Word) IsZero() bool { return w.base == 0 }

// Digit returns x_{i+1}, the digit at 0-based position i.
func (w Word) Digit(i int) byte { return w.digits[i] }

// Digits returns a copy of the digit slice.
func (w Word) Digits() []byte {
	d := make([]byte, len(w.digits))
	copy(d, w.digits)
	return d
}

// AppendDigits appends the word's digits to buf and returns the
// extended slice — the zero-allocation alternative to Digits for hot
// paths: once the caller's buffer has grown to length k, reloading a
// word is a single copy with no fresh slice. The appended bytes are a
// copy; mutating them cannot reach the word's backing storage.
func (w Word) AppendDigits(buf []byte) []byte {
	return append(buf, w.digits...)
}

// String renders the word with the characters 0-9a-z.
func (w Word) String() string {
	var b strings.Builder
	b.Grow(len(w.digits))
	for _, d := range w.digits {
		b.WriteByte(digitChars[d])
	}
	return b.String()
}

// Equal reports whether two words have the same base and digits.
func (w Word) Equal(o Word) bool {
	if w.base != o.base || len(w.digits) != len(o.digits) {
		return false
	}
	for i := range w.digits {
		if w.digits[i] != o.digits[i] {
			return false
		}
	}
	return true
}

// Compare orders words of equal base and length lexicographically,
// returning -1, 0 or +1.
func (w Word) Compare(o Word) int {
	for i := 0; i < len(w.digits) && i < len(o.digits); i++ {
		switch {
		case w.digits[i] < o.digits[i]:
			return -1
		case w.digits[i] > o.digits[i]:
			return 1
		}
	}
	switch {
	case len(w.digits) < len(o.digits):
		return -1
	case len(w.digits) > len(o.digits):
		return 1
	}
	return 0
}

// ShiftLeft returns X⁻(a) = (x_2, ..., x_k, a), the type-L neighbor of
// X reached by a left shift inserting digit a on the right.
// It panics if a is out of range for the base (programmer error; digit
// values originate from the same alphabet in all call sites).
func (w Word) ShiftLeft(a byte) Word {
	w.mustDigit(a)
	d := make([]byte, len(w.digits))
	copy(d, w.digits[1:])
	d[len(d)-1] = a
	return Word{base: w.base, digits: d}
}

// ShiftRight returns X⁺(a) = (a, x_1, ..., x_{k-1}), the type-R
// neighbor of X reached by a right shift inserting digit a on the left.
// It panics if a is out of range for the base.
func (w Word) ShiftRight(a byte) Word {
	w.mustDigit(a)
	d := make([]byte, len(w.digits))
	copy(d[1:], w.digits[:len(w.digits)-1])
	d[0] = a
	return Word{base: w.base, digits: d}
}

func (w Word) mustDigit(a byte) {
	if int(a) >= w.base {
		panic(fmt.Sprintf("word: digit %d out of range for base %d", a, w.base))
	}
}

// Reverse returns the mirror word (x_k, ..., x_1), written X̄ in the
// paper's Algorithm 4.
func (w Word) Reverse() Word {
	d := make([]byte, len(w.digits))
	for i, v := range w.digits {
		d[len(d)-1-i] = v
	}
	return Word{base: w.base, digits: d}
}

// Prefix returns the length-n prefix digits (x_1, ..., x_n) as a fresh
// slice. n must be in [0, k].
func (w Word) Prefix(n int) []byte {
	d := make([]byte, n)
	copy(d, w.digits[:n])
	return d
}

// Suffix returns the length-n suffix digits (x_{k-n+1}, ..., x_k) as a
// fresh slice. n must be in [0, k].
func (w Word) Suffix(n int) []byte {
	d := make([]byte, n)
	copy(d, w.digits[len(w.digits)-n:])
	return d
}

// Rank returns the index of the word in the lexicographic enumeration
// of all d-ary words of length k, with x_1 most significant. Ranks fit
// in a uint64 only while d^k does; callers enumerate graphs of at most
// a few million vertices, far below the overflow point, but Rank
// reports an error beyond 2^63 to keep misuse loud.
func (w Word) Rank() (uint64, error) {
	var r uint64
	for _, d := range w.digits {
		nr := r*uint64(w.base) + uint64(d)
		if nr < r || nr > 1<<63 {
			return 0, fmt.Errorf("word: rank overflow for base %d length %d", w.base, len(w.digits))
		}
		r = nr
	}
	return r, nil
}

// MustRank is Rank for graph sizes already validated by the caller.
func (w Word) MustRank() uint64 {
	r, err := w.Rank()
	if err != nil {
		panic(err)
	}
	return r
}

// Unrank is the inverse of Rank: it returns the r-th word of length k
// over base d in lexicographic order.
func Unrank(base, k int, r uint64) (Word, error) {
	if base < 2 || base > MaxBase {
		return Word{}, fmt.Errorf("%w: got %d", ErrBadBase, base)
	}
	if k < 1 {
		return Word{}, ErrEmpty
	}
	digits := make([]byte, k)
	for i := k - 1; i >= 0; i-- {
		digits[i] = byte(r % uint64(base))
		r /= uint64(base)
	}
	if r != 0 {
		return Word{}, fmt.Errorf("word: rank out of range for base %d length %d", base, k)
	}
	return Word{base: base, digits: digits}, nil
}

// Count returns d^k, the number of vertices of DG(d,k), or an error if
// it does not fit in an int.
func Count(base, k int) (int, error) {
	if base < 2 || base > MaxBase {
		return 0, fmt.Errorf("%w: got %d", ErrBadBase, base)
	}
	if k < 1 {
		return 0, ErrEmpty
	}
	n := 1
	for i := 0; i < k; i++ {
		if n > (1<<62)/base {
			return 0, fmt.Errorf("word: %d^%d overflows", base, k)
		}
		n *= base
	}
	return n, nil
}

// Random returns a uniformly random word of length k over base d drawn
// from rng. Deterministic given the rng seed.
func Random(base, k int, rng *rand.Rand) Word {
	digits := make([]byte, k)
	for i := range digits {
		digits[i] = byte(rng.Intn(base))
	}
	return Word{base: base, digits: digits}
}

// ForEach enumerates every word of length k over base d in
// lexicographic order, invoking fn for each; enumeration stops early if
// fn returns false. It reports whether the enumeration ran to
// completion.
func ForEach(base, k int, fn func(Word) bool) (bool, error) {
	n, err := Count(base, k)
	if err != nil {
		return false, err
	}
	digits := make([]byte, k)
	for i := 0; i < n; i++ {
		w := Word{base: base, digits: digits}
		// fn receives a copy-on-write view: hand it a fresh slice so
		// the in-place increment below cannot mutate a retained Word.
		cp := make([]byte, k)
		copy(cp, digits)
		w.digits = cp
		if !fn(w) {
			return false, nil
		}
		// Increment digits as a base-d counter.
		for j := k - 1; j >= 0; j-- {
			digits[j]++
			if int(digits[j]) < base {
				break
			}
			digits[j] = 0
		}
	}
	return true, nil
}

// Append returns the word (x_1, ..., x_k, extra...) of a longer
// length; used by sequence and embedding helpers to splice words.
func (w Word) Append(extra ...byte) (Word, error) {
	d := make([]byte, 0, len(w.digits)+len(extra))
	d = append(d, w.digits...)
	d = append(d, extra...)
	return New(w.base, d)
}

// OverlapSuffixPrefix returns the largest s in [0, k] such that the
// length-s suffix of x equals the length-s prefix of y — the quantity l
// of the paper's equation (2), computed naively in O(k²). The match
// package provides the linear-time version; this one is the reference
// oracle used in tests.
func OverlapSuffixPrefix(x, y Word) (int, error) {
	if x.base != y.base {
		return 0, ErrBaseMixed
	}
	if len(x.digits) != len(y.digits) {
		return 0, ErrLenMixed
	}
	k := len(x.digits)
	for s := k; s >= 1; s-- {
		match := true
		for t := 0; t < s; t++ {
			if x.digits[k-s+t] != y.digits[t] {
				match = false
				break
			}
		}
		if match {
			return s, nil
		}
	}
	return 0, nil
}
