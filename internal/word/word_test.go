package word

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidatesBase(t *testing.T) {
	for _, base := range []int{-1, 0, 1, 37, 100} {
		if _, err := New(base, []byte{0}); err == nil {
			t.Errorf("New(base=%d) accepted invalid base", base)
		}
	}
	for _, base := range []int{2, 3, 10, 36} {
		if _, err := New(base, []byte{0, 1}); err != nil {
			t.Errorf("New(base=%d) rejected valid base: %v", base, err)
		}
	}
}

func TestNewValidatesDigits(t *testing.T) {
	if _, err := New(2, []byte{0, 2}); err == nil {
		t.Error("New accepted digit 2 in base 2")
	}
	if _, err := New(2, nil); err == nil {
		t.Error("New accepted empty digit slice")
	}
}

func TestNewCopiesDigits(t *testing.T) {
	src := []byte{0, 1, 0}
	w := MustNew(2, src)
	src[0] = 1
	if w.Digit(0) != 0 {
		t.Error("New aliased the caller's slice")
	}
}

func TestParseRoundTrip(t *testing.T) {
	cases := []struct {
		base int
		s    string
	}{
		{2, "0"}, {2, "0110"}, {2, "1111"},
		{3, "0212"}, {10, "90210"}, {16, "a3f0"}, {36, "z0a9"},
	}
	for _, c := range cases {
		w, err := Parse(c.base, c.s)
		if err != nil {
			t.Fatalf("Parse(%d, %q): %v", c.base, c.s, err)
		}
		if got := w.String(); got != c.s {
			t.Errorf("Parse(%d, %q).String() = %q", c.base, c.s, got)
		}
	}
}

func TestParseRejectsBadInput(t *testing.T) {
	if _, err := Parse(2, "012"); err == nil {
		t.Error("Parse accepted digit 2 in base 2")
	}
	if _, err := Parse(2, ""); err == nil {
		t.Error("Parse accepted empty string")
	}
	if _, err := Parse(2, "0 1"); err == nil {
		t.Error("Parse accepted a space")
	}
	if _, err := Parse(16, "A3"); err == nil {
		t.Error("Parse accepted uppercase digit")
	}
}

func TestShiftLeft(t *testing.T) {
	// X = 0110, X⁻(1) = 1101.
	x := MustParse(2, "0110")
	if got := x.ShiftLeft(1).String(); got != "1101" {
		t.Errorf("ShiftLeft = %q, want 1101", got)
	}
	if got := x.ShiftLeft(0).String(); got != "1100" {
		t.Errorf("ShiftLeft = %q, want 1100", got)
	}
	// Original untouched (immutability).
	if x.String() != "0110" {
		t.Error("ShiftLeft mutated receiver")
	}
}

func TestShiftRight(t *testing.T) {
	// X = 0110, X⁺(1) = 1011.
	x := MustParse(2, "0110")
	if got := x.ShiftRight(1).String(); got != "1011" {
		t.Errorf("ShiftRight = %q, want 1011", got)
	}
	if got := x.ShiftRight(0).String(); got != "0011" {
		t.Errorf("ShiftRight = %q, want 0011", got)
	}
	if x.String() != "0110" {
		t.Error("ShiftRight mutated receiver")
	}
}

func TestShiftsAreInverse(t *testing.T) {
	// X⁺(a) then dropping the inserted digit via ShiftLeft(old last)
	// restores X: ShiftLeft(x_k)(X⁺(a)) == X.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		base := 2 + rng.Intn(4)
		k := 1 + rng.Intn(8)
		x := Random(base, k, rng)
		a := byte(rng.Intn(base))
		last := x.Digit(k - 1)
		if got := x.ShiftRight(a).ShiftLeft(last); !got.Equal(x) {
			t.Fatalf("ShiftRight(%d) then ShiftLeft(%d) of %v = %v", a, last, x, got)
		}
		first := x.Digit(0)
		if got := x.ShiftLeft(a).ShiftRight(first); !got.Equal(x) {
			t.Fatalf("ShiftLeft(%d) then ShiftRight(%d) of %v = %v", a, first, x, got)
		}
	}
}

func TestShiftPanicsOnBadDigit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ShiftLeft did not panic on out-of-range digit")
		}
	}()
	MustParse(2, "01").ShiftLeft(2)
}

func TestReverse(t *testing.T) {
	if got := MustParse(2, "0110").Reverse().String(); got != "0110" {
		t.Errorf("Reverse palindrome = %q", got)
	}
	if got := MustParse(2, "0010").Reverse().String(); got != "0100" {
		t.Errorf("Reverse = %q, want 0100", got)
	}
	if got := MustParse(3, "012").Reverse().String(); got != "210" {
		t.Errorf("Reverse = %q, want 210", got)
	}
}

func TestReverseInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := Random(2+rng.Intn(9), 1+rng.Intn(12), rng)
		return w.Reverse().Reverse().Equal(w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRankUnrankRoundTrip(t *testing.T) {
	for _, base := range []int{2, 3, 5} {
		for k := 1; k <= 5; k++ {
			n, err := Count(base, k)
			if err != nil {
				t.Fatal(err)
			}
			for r := 0; r < n; r++ {
				w, err := Unrank(base, k, uint64(r))
				if err != nil {
					t.Fatalf("Unrank(%d,%d,%d): %v", base, k, r, err)
				}
				if got := w.MustRank(); got != uint64(r) {
					t.Fatalf("Rank(Unrank(%d)) = %d", r, got)
				}
			}
		}
	}
}

func TestUnrankOutOfRange(t *testing.T) {
	if _, err := Unrank(2, 3, 8); err == nil {
		t.Error("Unrank accepted rank d^k")
	}
}

func TestCount(t *testing.T) {
	cases := []struct{ base, k, want int }{
		{2, 1, 2}, {2, 10, 1024}, {3, 4, 81}, {10, 3, 1000},
	}
	for _, c := range cases {
		got, err := Count(c.base, c.k)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Count(%d,%d) = %d, want %d", c.base, c.k, got, c.want)
		}
	}
	if _, err := Count(2, 200); err == nil {
		t.Error("Count accepted overflowing 2^200")
	}
}

func TestForEachEnumeratesAllDistinct(t *testing.T) {
	seen := make(map[string]bool)
	var prev Word
	done, err := ForEach(3, 3, func(w Word) bool {
		if seen[w.String()] {
			t.Fatalf("duplicate word %v", w)
		}
		seen[w.String()] = true
		if !prev.IsZero() && prev.Compare(w) >= 0 {
			t.Fatalf("enumeration not strictly increasing: %v then %v", prev, w)
		}
		prev = w
		return true
	})
	if err != nil || !done {
		t.Fatalf("ForEach: done=%v err=%v", done, err)
	}
	if len(seen) != 27 {
		t.Errorf("enumerated %d words, want 27", len(seen))
	}
}

func TestForEachEarlyStop(t *testing.T) {
	count := 0
	done, err := ForEach(2, 4, func(w Word) bool {
		count++
		return count < 5
	})
	if err != nil {
		t.Fatal(err)
	}
	if done || count != 5 {
		t.Errorf("early stop: done=%v count=%d", done, count)
	}
}

func TestForEachWordsAreIndependent(t *testing.T) {
	var all []Word
	if _, err := ForEach(2, 2, func(w Word) bool {
		all = append(all, w)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"00", "01", "10", "11"}
	for i, w := range all {
		if w.String() != want[i] {
			t.Errorf("retained word %d = %q, want %q (mutation by enumeration?)", i, w, want[i])
		}
	}
}

func TestPrefixSuffix(t *testing.T) {
	w := MustParse(2, "01101")
	if got := string(mustStr(w.Prefix(3))); got != "011" {
		t.Errorf("Prefix(3) = %q", got)
	}
	if got := string(mustStr(w.Suffix(2))); got != "01" {
		t.Errorf("Suffix(2) = %q", got)
	}
	if len(w.Prefix(0)) != 0 || len(w.Suffix(0)) != 0 {
		t.Error("zero-length prefix/suffix not empty")
	}
}

func mustStr(digits []byte) []byte {
	out := make([]byte, len(digits))
	for i, d := range digits {
		out[i] = '0' + d
	}
	return out
}

func TestOverlapSuffixPrefix(t *testing.T) {
	cases := []struct {
		x, y string
		want int
	}{
		{"0110", "0110", 4}, // X == Y
		{"0110", "1101", 3},
		{"0110", "1010", 2},
		{"0110", "0011", 1},
		{"0000", "1111", 0},
		{"0101", "0101", 4},
		{"1100", "0011", 2},
	}
	for _, c := range cases {
		got, err := OverlapSuffixPrefix(MustParse(2, c.x), MustParse(2, c.y))
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Overlap(%s,%s) = %d, want %d", c.x, c.y, got, c.want)
		}
	}
}

func TestOverlapMixedOperands(t *testing.T) {
	if _, err := OverlapSuffixPrefix(MustParse(2, "01"), MustParse(3, "01")); err == nil {
		t.Error("accepted mixed bases")
	}
	if _, err := OverlapSuffixPrefix(MustParse(2, "01"), MustParse(2, "011")); err == nil {
		t.Error("accepted mixed lengths")
	}
}

func TestRandomIsInAlphabet(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		w := Random(3, 6, rng)
		if w.Base() != 3 || w.Len() != 6 {
			t.Fatalf("Random produced %v", w)
		}
		for j := 0; j < w.Len(); j++ {
			if w.Digit(j) >= 3 {
				t.Fatalf("Random digit out of range: %v", w)
			}
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(2, 16, rand.New(rand.NewSource(42)))
	b := Random(2, 16, rand.New(rand.NewSource(42)))
	if !a.Equal(b) {
		t.Error("Random not deterministic for equal seeds")
	}
}

func TestAppend(t *testing.T) {
	w := MustParse(2, "01")
	got, err := w.Append(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "0110" {
		t.Errorf("Append = %q", got)
	}
	if _, err := w.Append(2); err == nil {
		t.Error("Append accepted out-of-alphabet digit")
	}
}

func TestCompare(t *testing.T) {
	a, b := MustParse(2, "010"), MustParse(2, "011")
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Error("Compare ordering wrong")
	}
}

func TestZeros(t *testing.T) {
	w, err := Zeros(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if w.String() != "0000" {
		t.Errorf("Zeros = %q", w)
	}
	if _, err := Zeros(2, 0); err == nil {
		t.Error("Zeros accepted k=0")
	}
}

func TestDigitsCopy(t *testing.T) {
	w := MustParse(2, "0110")
	d := w.Digits()
	d[0] = 1
	if w.Digit(0) != 0 {
		t.Error("Digits returned aliased storage")
	}
}

func TestPropertyShiftLengthPreserved(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := 2 + rng.Intn(9)
		k := 1 + rng.Intn(10)
		w := Random(base, k, rng)
		a := byte(rng.Intn(base))
		return w.ShiftLeft(a).Len() == k && w.ShiftRight(a).Len() == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyRankOrderAgreesWithCompare(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := 2 + rng.Intn(4)
		k := 1 + rng.Intn(8)
		a, b := Random(base, k, rng), Random(base, k, rng)
		ra, rb := a.MustRank(), b.MustRank()
		switch a.Compare(b) {
		case -1:
			return ra < rb
		case 1:
			return ra > rb
		default:
			return ra == rb
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
