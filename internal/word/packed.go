package word

import (
	"encoding/binary"
	"fmt"
)

// Packed representation: for small alphabets a word's digits pack into
// machine words, so the shift-register overlap machinery of the
// routing kernels can compare whole 64-bit lanes with XOR instead of
// walking digits one byte at a time. Digit x_{i+1} (0-based position
// i) occupies bits [i·b, (i+1)·b) of the vector, counting from bit 0
// of element 0 — little-endian in both bit and element order, so a
// digit shift of c positions is a bit shift of c·b.

// PackedBits returns the number of bits one digit occupies in the
// packed representation of base-d words: 1 for d = 2, 2 for d in
// {3, 4}, and 0 for every larger base (not packable — the kernels
// fall back to the byte-digit scratch path).
func PackedBits(base int) int {
	switch {
	case base == 2:
		return 1
	case base == 3 || base == 4:
		return 2
	default:
		return 0
	}
}

// PackedWords returns the number of uint64 elements the packed form of
// a base-d length-k word occupies, or 0 if the base is not packable.
func PackedWords(base, k int) int {
	b := PackedBits(base)
	if b == 0 {
		return 0
	}
	return (k*b + 63) / 64
}

// bitGather packs the low bit of each of the 8 bytes of v into the low
// 8 bits of the result, byte i to bit i. Multiplying by the magic
// constant lands byte i's bit at position 56+i (every other (i,j) byte
// pair of the product falls below 56 or past bit 63, where modular
// multiplication discards it), so one shift extracts all eight.
func bitGather(v uint64) uint64 {
	return (v * 0x0102040810204080) >> 56
}

// AppendPacked appends the packed form of w to dst and returns the
// extended slice: PackedWords(d,k) elements, digit i at bits
// [i·b, (i+1)·b) of the vector. Allocation-free once dst has capacity.
// It panics if the base is not packable (programmer error; callers
// gate on PackedBits, mirroring the digit-range panics of the shift
// methods).
func (w Word) AppendPacked(dst []uint64) []uint64 {
	b := PackedBits(w.base)
	if b == 0 {
		panic(fmt.Sprintf("word: base %d is not packable", w.base))
	}
	d := w.digits
	if b == 1 {
		// Base 2: gather 8 digit bytes per multiply, 64 per element.
		for len(d) >= 64 {
			var cur uint64
			for o := 0; o < 64; o += 8 {
				cur |= bitGather(binary.LittleEndian.Uint64(d[o:])) << uint(o)
			}
			dst = append(dst, cur)
			d = d[64:]
		}
		if len(d) > 0 {
			var cur uint64
			i := 0
			for ; i+8 <= len(d); i += 8 {
				cur |= bitGather(binary.LittleEndian.Uint64(d[i:])) << uint(i)
			}
			for ; i < len(d); i++ {
				cur |= uint64(d[i]) << uint(i)
			}
			dst = append(dst, cur)
		}
		return dst
	}
	var cur uint64
	shift := 0
	for _, v := range d {
		cur |= uint64(v) << uint(shift)
		shift += b
		if shift == 64 {
			dst = append(dst, cur)
			cur, shift = 0, 0
		}
	}
	if shift > 0 {
		dst = append(dst, cur)
	}
	return dst
}

// UnpackPacked reconstructs the base-d length-k word from its packed
// form — the inverse of AppendPacked. It rejects unpackable bases,
// short vectors, digit values outside the base (base 3 can see field
// value 3 only through corruption), and set padding bits past k·b.
func UnpackPacked(base, k int, packed []uint64) (Word, error) {
	b := PackedBits(base)
	if b == 0 {
		return Word{}, fmt.Errorf("%w: base %d is not packable", ErrBadBase, base)
	}
	if k < 1 {
		return Word{}, ErrEmpty
	}
	if want := (k*b + 63) / 64; len(packed) != want {
		return Word{}, fmt.Errorf("word: packed form of DG(%d,%d) needs %d elements, got %d", base, k, want, len(packed))
	}
	digits := make([]byte, k)
	mask := uint64(1)<<uint(b) - 1
	for i := 0; i < k; i++ {
		bit := i * b
		v := byte(packed[bit>>6] >> uint(bit&63) & mask)
		if int(v) >= base {
			return Word{}, fmt.Errorf("%w: packed digit %d at position %d, base %d", ErrBadDigit, v, i, base)
		}
		digits[i] = v
	}
	if tail := uint(k * b & 63); tail != 0 {
		if packed[len(packed)-1]>>tail != 0 {
			return Word{}, fmt.Errorf("word: packed form of DG(%d,%d) has set bits past digit %d", base, k, k)
		}
	}
	return Word{base: base, digits: digits}, nil
}
