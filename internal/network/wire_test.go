package network

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/word"
)

func msgEqual(a, b Message) bool {
	if a.Control != b.Control || a.Payload != b.Payload {
		return false
	}
	if !a.Source.Equal(b.Source) || !a.Dest.Equal(b.Dest) {
		return false
	}
	if len(a.Route) != len(b.Route) {
		return false
	}
	for i := range a.Route {
		if a.Route[i] != b.Route[i] {
			return false
		}
	}
	return true
}

func TestWireRoundTripBasic(t *testing.T) {
	m := Message{
		Control: ControlData,
		Source:  word.MustParse(2, "0110"),
		Dest:    word.MustParse(2, "1001"),
		Route:   core.Path{core.L(1), core.RStar(), core.R(0)},
		Payload: "hello de Bruijn",
	}
	buf, err := MarshalMessage(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalMessage(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !msgEqual(m, got) {
		t.Errorf("round trip: %+v != %+v", got, m)
	}
}

func TestWireRoundTripProperty(t *testing.T) {
	f := func(seed int64, control byte, payload string) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(35)
		k := 1 + rng.Intn(20)
		m := Message{
			Control: control,
			Source:  word.Random(d, k, rng),
			Dest:    word.Random(d, k, rng),
			Payload: payload,
		}
		nHops := rng.Intn(3 * k)
		for i := 0; i < nHops; i++ {
			h := core.Hop{Digit: byte(rng.Intn(d))}
			if rng.Intn(2) == 1 {
				h.Type = core.TypeR
			}
			if rng.Intn(4) == 0 {
				h.Wildcard = true
				h.Digit = 0
			}
			m.Route = append(m.Route, h)
		}
		buf, err := MarshalMessage(m)
		if err != nil {
			return false
		}
		got, err := UnmarshalMessage(buf)
		if err != nil {
			return false
		}
		return msgEqual(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWireRoundTripRealRoutes(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for i := 0; i < 100; i++ {
		d := 2 + rng.Intn(3)
		k := 1 + rng.Intn(12)
		src, dst := word.Random(d, k, rng), word.Random(d, k, rng)
		route, err := core.RouteUndirectedLinear(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		m := Message{Control: ControlPing, Source: src, Dest: dst, Route: route, Payload: "p"}
		buf, err := MarshalMessage(m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalMessage(buf)
		if err != nil {
			t.Fatal(err)
		}
		if !msgEqual(m, got) {
			t.Fatalf("round trip failed for %v→%v", src, dst)
		}
	}
}

func TestWireRejectsBadMessages(t *testing.T) {
	good := Message{
		Control: ControlData,
		Source:  word.MustParse(2, "01"),
		Dest:    word.MustParse(2, "10"),
	}
	if _, err := MarshalMessage(Message{}); err == nil {
		t.Error("marshalled zero-value addresses")
	}
	bad := good
	bad.Dest = word.MustParse(3, "10")
	if _, err := MarshalMessage(bad); err == nil {
		t.Error("marshalled mixed-base addresses")
	}
	bad = good
	bad.Route = core.Path{core.Hop{Type: core.HopType(9)}}
	if _, err := MarshalMessage(bad); err == nil {
		t.Error("marshalled invalid hop type")
	}
	bad = good
	bad.Route = core.Path{core.L(5)}
	if _, err := MarshalMessage(bad); err == nil {
		t.Error("marshalled out-of-base hop digit")
	}
}

func TestWireRejectsBadBytes(t *testing.T) {
	good, err := MarshalMessage(Message{
		Control: ControlData,
		Source:  word.MustParse(2, "01"),
		Dest:    word.MustParse(2, "10"),
		Route:   core.Path{core.L(1)},
		Payload: "x",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalMessage(nil); err == nil {
		t.Error("decoded empty buffer")
	}
	if _, err := UnmarshalMessage(good[:5]); err == nil {
		t.Error("decoded truncated header")
	}
	if _, err := UnmarshalMessage(good[:len(good)-1]); err == nil {
		t.Error("decoded truncated payload")
	}
	long := append(append([]byte(nil), good...), 0xEE)
	if _, err := UnmarshalMessage(long); err == nil {
		t.Error("decoded over-long buffer")
	}
	badMagic := append([]byte(nil), good...)
	badMagic[0] = 0x00
	if _, err := UnmarshalMessage(badMagic); err == nil {
		t.Error("decoded bad magic")
	}
	// Corrupt a source digit to an out-of-base value.
	badDigit := append([]byte(nil), good...)
	badDigit[6] = 9
	if _, err := UnmarshalMessage(badDigit); err == nil {
		t.Error("decoded out-of-base source digit")
	}
}

func TestWireDecodedMessageRoutes(t *testing.T) {
	// A decoded message is directly injectable.
	n := mustNet(t, Config{D: 2, K: 4})
	src, dst := word.MustParse(2, "0011"), word.MustParse(2, "1100")
	route, err := core.RouteUndirectedLinear(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := MarshalMessage(Message{Control: ControlData, Source: src, Dest: dst, Route: route, Payload: "w"})
	if err != nil {
		t.Fatal(err)
	}
	m, err := UnmarshalMessage(buf)
	if err != nil {
		t.Fatal(err)
	}
	del, err := n.Inject(m)
	if err != nil {
		t.Fatal(err)
	}
	if !del.Delivered {
		t.Errorf("decoded message dropped: %s", del.DropReason)
	}
}
