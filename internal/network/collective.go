package network

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/word"
)

// Collective operations over the spanning tree — the §1 motivation
// ("the de Bruijn network ... can be used to solve efficiently many
// problems") in executable form. Gather pulls one value per site to a
// root; Reduce combines values pairwise on the way (N-1 messages,
// eccentricity-many rounds, combining at internal sites instead of
// shipping everything to the root).

// CollectiveResult reports the cost of a collective operation.
type CollectiveResult struct {
	// Messages is the number of link crossings.
	Messages int
	// Rounds is the depth of the schedule (parallel time).
	Rounds int
	// Participants counts contributing sites.
	Participants int
}

// Reduce combines one integer value per site into a single result at
// root using the pairwise-associative function combine, along the BFS
// spanning tree of the live topology: leaves send up, internal sites
// combine their subtree before forwarding. Failed sites neither
// contribute nor forward (their subtrees re-attach via other parents
// only if the BFS tree allows; with failures the reachable live set
// participates).
func (n *Network) Reduce(root word.Word, values map[string]int, combine func(a, b int) int) (int, CollectiveResult, error) {
	if combine == nil {
		return 0, CollectiveResult{}, fmt.Errorf("network: nil combine function")
	}
	rootV, err := n.vertex(root)
	if err != nil {
		return 0, CollectiveResult{}, err
	}
	if n.failed[rootV] {
		return 0, CollectiveResult{}, fmt.Errorf("network: reduce root %v failed", root)
	}
	// BFS tree from the root over live sites (tree edges point
	// child→parent for the reduction flow; the de Bruijn graph is
	// connected, and undirected BFS trees reach every live site
	// whenever the failures stay below the connectivity).
	parent := make([]int32, n.g.NumVertices())
	order := make([]int32, 0, n.g.NumVertices())
	for i := range parent {
		parent[i] = -2
	}
	parent[rootV] = -1
	queue := []int32{int32(rootV)}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range n.g.OutNeighbors(int(u)) {
			if parent[v] == -2 && !n.failed[int(v)] {
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	// Depth of each site = reduction round at which its value moves up.
	depth := make([]int, n.g.NumVertices())
	maxDepth := 0
	for _, v := range order[1:] {
		depth[v] = depth[parent[v]] + 1
		if depth[v] > maxDepth {
			maxDepth = depth[v]
		}
	}
	// Fold leaves-first (reverse BFS order), accumulating into the
	// parent and accounting one message per tree edge.
	acc := make(map[int32]int, len(order))
	has := make(map[int32]bool, len(order))
	res := CollectiveResult{}
	for _, v := range order {
		w, err := graph.DeBruijnWord(n.cfg.D, n.cfg.K, int(v))
		if err != nil {
			return 0, CollectiveResult{}, err
		}
		if val, ok := values[w.String()]; ok {
			acc[v] = val
			has[v] = true
			res.Participants++
		}
	}
	for i := len(order) - 1; i >= 1; i-- {
		v := order[i]
		if !has[v] {
			continue
		}
		p := parent[v]
		if has[p] {
			acc[p] = combine(acc[p], acc[v])
		} else {
			acc[p] = acc[v]
			has[p] = true
		}
		res.Messages++
		n.linkLoad[[2]int{int(v), int(p)}]++
		n.siteLoad[p]++
	}
	res.Rounds = maxDepth
	if !has[int32(rootV)] {
		return 0, res, fmt.Errorf("network: no values reached the root")
	}
	return acc[int32(rootV)], res, nil
}

// Gather collects every live site's value at the root, returning them
// keyed by site address: the unreduced collective (Θ(N · mean depth)
// messages, versus Reduce's N-1).
func (n *Network) Gather(root word.Word, values map[string]int) (map[string]int, CollectiveResult, error) {
	rootV, err := n.vertex(root)
	if err != nil {
		return nil, CollectiveResult{}, err
	}
	if n.failed[rootV] {
		return nil, CollectiveResult{}, fmt.Errorf("network: gather root %v failed", root)
	}
	out := make(map[string]int, len(values))
	res := CollectiveResult{}
	// Deterministic site order.
	keys := make([]string, 0, len(values))
	for s := range values {
		keys = append(keys, s)
	}
	sort.Strings(keys)
	for _, s := range keys {
		src, err := word.Parse(n.cfg.D, s)
		if err != nil {
			return nil, CollectiveResult{}, fmt.Errorf("network: gather key %q: %w", s, err)
		}
		if n.failed[graph.DeBruijnVertex(src)] {
			continue
		}
		del, err := n.Send(src, root, s)
		if err != nil {
			return nil, CollectiveResult{}, err
		}
		if !del.Delivered {
			continue
		}
		out[s] = values[s]
		res.Participants++
		res.Messages += del.Hops
		if del.Hops > res.Rounds {
			res.Rounds = del.Hops
		}
	}
	return out, res, nil
}
