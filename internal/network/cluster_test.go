package network

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/word"
)

func TestClusterDeliversAllUniformTraffic(t *testing.T) {
	c, err := NewCluster(ClusterConfig{D: 2, K: 5, Seed: 9, MaxInflight: 64})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	rng := rand.New(rand.NewSource(77))
	type pair struct{ src, dst word.Word }
	var sent []pair
	for i := 0; i < 500; i++ {
		s, d := word.Random(2, 5, rng), word.Random(2, 5, rng)
		if err := c.Send(s, d, "m"); err != nil {
			t.Fatal(err)
		}
		sent = append(sent, pair{s, d})
	}
	c.Drain()
	ds := c.Deliveries()
	if len(ds) != len(sent) {
		t.Fatalf("delivered records %d, sent %d", len(ds), len(sent))
	}
	for _, d := range ds {
		if !d.Delivered {
			t.Fatalf("message dropped: %+v", d)
		}
		want, err := core.UndirectedDistance(d.Msg.Source, d.Msg.Dest)
		if err != nil {
			t.Fatal(err)
		}
		if d.Hops != want {
			t.Fatalf("%v→%v took %d hops, want %d", d.Msg.Source, d.Msg.Dest, d.Hops, want)
		}
	}
	if c.MaxLinkLoad() < 1 {
		t.Error("no link load recorded")
	}
}

func TestClusterUnidirectional(t *testing.T) {
	c, err := NewCluster(ClusterConfig{D: 2, K: 4, Unidirectional: true, MaxInflight: 16})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	rng := rand.New(rand.NewSource(78))
	for i := 0; i < 200; i++ {
		s, d := word.Random(2, 4, rng), word.Random(2, 4, rng)
		if err := c.Send(s, d, "m"); err != nil {
			t.Fatal(err)
		}
	}
	c.Drain()
	for _, d := range c.Deliveries() {
		if !d.Delivered {
			t.Fatalf("dropped: %+v", d)
		}
		want, err := core.DirectedDistance(d.Msg.Source, d.Msg.Dest)
		if err != nil {
			t.Fatal(err)
		}
		if d.Hops != want {
			t.Fatalf("%v→%v took %d hops, want %d", d.Msg.Source, d.Msg.Dest, d.Hops, want)
		}
	}
}

func TestClusterRandomWildcards(t *testing.T) {
	c, err := NewCluster(ClusterConfig{D: 3, K: 3, Seed: 4, MaxInflight: 32, RandomWildcard: true})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	rng := rand.New(rand.NewSource(79))
	for i := 0; i < 300; i++ {
		s, d := word.Random(3, 3, rng), word.Random(3, 3, rng)
		if err := c.Send(s, d, "m"); err != nil {
			t.Fatal(err)
		}
	}
	c.Drain()
	for _, d := range c.Deliveries() {
		if !d.Delivered {
			t.Fatalf("dropped: %+v", d)
		}
	}
}

func TestClusterSendBeforeStartFails(t *testing.T) {
	c, err := NewCluster(ClusterConfig{D: 2, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(word.MustParse(2, "00"), word.MustParse(2, "11"), "m"); err == nil {
		t.Error("Send before Start succeeded")
	}
	c.Start()
	defer c.Stop()
	if err := c.Send(word.MustParse(2, "0"), word.MustParse(2, "11"), "m"); err == nil {
		t.Error("Send accepted short address")
	}
}

func TestClusterStopIdempotentAndSendAfterStop(t *testing.T) {
	c, err := NewCluster(ClusterConfig{D: 2, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Start() // no-op
	c.Stop()
	c.Stop() // no-op
	if err := c.Send(word.MustParse(2, "00"), word.MustParse(2, "11"), "m"); err == nil {
		t.Error("Send after Stop succeeded")
	}
}

func TestClusterValidatesConfig(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{D: 1, K: 2}); err == nil {
		t.Error("accepted d=1")
	}
	if _, err := NewCluster(ClusterConfig{D: 2, K: 2, MaxInflight: -1}); err == nil {
		t.Error("accepted negative MaxInflight")
	}
}

func TestClusterBackpressure(t *testing.T) {
	// With MaxInflight 1, sends serialize but all deliver.
	c, err := NewCluster(ClusterConfig{D: 2, K: 3, MaxInflight: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	rng := rand.New(rand.NewSource(80))
	for i := 0; i < 100; i++ {
		s, d := word.Random(2, 3, rng), word.Random(2, 3, rng)
		if err := c.Send(s, d, "m"); err != nil {
			t.Fatal(err)
		}
	}
	c.Drain()
	if got := len(c.Deliveries()); got != 100 {
		t.Errorf("deliveries = %d", got)
	}
}

func TestClusterFailures(t *testing.T) {
	c, err := NewCluster(ClusterConfig{D: 2, K: 3, MaxInflight: 8})
	if err != nil {
		t.Fatal(err)
	}
	mid := word.MustParse(2, "001")
	if err := c.FailSite(mid); err != nil {
		t.Fatal(err)
	}
	if err := c.FailSite(word.MustParse(2, "01")); err == nil {
		t.Error("accepted short failure address")
	}
	c.Start()
	defer c.Stop()
	if err := c.FailSite(word.MustParse(2, "010")); err == nil {
		t.Error("accepted FailSite after Start")
	}
	// Sending FROM the failed site errors.
	if err := c.Send(mid, word.MustParse(2, "111"), "m"); err == nil {
		t.Error("accepted failed source")
	}
	// A route through the failed site drops; others deliver.
	if err := c.Send(word.MustParse(2, "000"), word.MustParse(2, "011"), "through"); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(word.MustParse(2, "000"), word.MustParse(2, "100"), "around"); err != nil {
		t.Fatal(err)
	}
	c.Drain()
	dropped, delivered := 0, 0
	for _, d := range c.Deliveries() {
		if d.Delivered {
			delivered++
		} else {
			dropped++
		}
	}
	if dropped != 1 || delivered != 1 {
		t.Errorf("dropped %d delivered %d", dropped, delivered)
	}
}
