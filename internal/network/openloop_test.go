package network

import "testing"

func TestOpenLoopLowLoadNearUncontended(t *testing.T) {
	res, err := RunOpenLoop(OpenLoopConfig{D: 2, K: 6, Rate: 0.02, Rounds: 120, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Saturated {
		t.Fatal("low load saturated")
	}
	if res.Offered == 0 || res.Delivered != res.Offered {
		t.Fatalf("offered %d delivered %d", res.Offered, res.Delivered)
	}
	// Near-uncontended: slowdown close to 1.
	if res.MeanSlowdown > 1.3 {
		t.Errorf("low-load slowdown %v too high", res.MeanSlowdown)
	}
}

func TestOpenLoopLatencyGrowsWithLoad(t *testing.T) {
	low, err := RunOpenLoop(OpenLoopConfig{D: 2, K: 6, Rate: 0.05, Rounds: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	high, err := RunOpenLoop(OpenLoopConfig{D: 2, K: 6, Rate: 0.30, Rounds: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if low.Saturated {
		t.Fatal("rate 0.05 saturated")
	}
	if !(high.MeanLatency > low.MeanLatency) {
		t.Errorf("latency did not grow: %v → %v", low.MeanLatency, high.MeanLatency)
	}
}

func TestOpenLoopSaturationDetected(t *testing.T) {
	// Absurd offered load must either saturate or show extreme
	// slowdown; the run must terminate regardless.
	res, err := RunOpenLoop(OpenLoopConfig{D: 2, K: 5, Rate: 3.0, Rounds: 60, Seed: 3, MaxRounds: 300})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated && res.MeanSlowdown < 2 {
		t.Errorf("overload neither saturated nor slow: %+v", res)
	}
}

func TestOpenLoopDeterministic(t *testing.T) {
	run := func() OpenLoopResult {
		res, err := RunOpenLoop(OpenLoopConfig{D: 2, K: 5, Rate: 0.1, Rounds: 60, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(), run(); a != b {
		t.Errorf("runs differ: %+v vs %+v", a, b)
	}
}

func TestOpenLoopValidates(t *testing.T) {
	if _, err := RunOpenLoop(OpenLoopConfig{D: 1, K: 3, Rate: 0.1, Rounds: 10}); err == nil {
		t.Error("accepted d=1")
	}
	if _, err := RunOpenLoop(OpenLoopConfig{D: 2, K: 3, Rate: 0, Rounds: 10}); err == nil {
		t.Error("accepted zero rate")
	}
	if _, err := RunOpenLoop(OpenLoopConfig{D: 2, K: 3, Rate: 0.1, Rounds: 0}); err == nil {
		t.Error("accepted zero rounds")
	}
	if _, err := RunOpenLoop(OpenLoopConfig{D: 2, K: 3, Rate: 0.1, Rounds: 5, LinkCapacity: -2}); err == nil {
		t.Error("accepted negative capacity")
	}
}
