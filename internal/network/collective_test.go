package network

import (
	"testing"

	"repro/internal/word"
)

func allValues(t *testing.T, d, k int) map[string]int {
	t.Helper()
	values := make(map[string]int)
	i := 0
	if _, err := word.ForEach(d, k, func(w word.Word) bool {
		values[w.String()] = i
		i++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return values
}

func TestReduceSumsEverySite(t *testing.T) {
	n := mustNet(t, Config{D: 2, K: 5})
	values := allValues(t, 2, 5)
	wantSum := 0
	for _, v := range values {
		wantSum += v
	}
	root := word.MustParse(2, "01010")
	got, res, err := n.Reduce(root, values, func(a, b int) int { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	if got != wantSum {
		t.Errorf("reduce sum = %d, want %d", got, wantSum)
	}
	if res.Participants != 32 {
		t.Errorf("participants = %d", res.Participants)
	}
	if res.Messages != 31 {
		t.Errorf("messages = %d, want N-1", res.Messages)
	}
	if res.Rounds < 1 || res.Rounds > 5 {
		t.Errorf("rounds = %d", res.Rounds)
	}
}

func TestReduceMax(t *testing.T) {
	n := mustNet(t, Config{D: 3, K: 2})
	values := allValues(t, 3, 2)
	root := word.MustParse(3, "00")
	got, _, err := n.Reduce(root, values, func(a, b int) int {
		if a > b {
			return a
		}
		return b
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 8 {
		t.Errorf("reduce max = %d, want 8", got)
	}
}

func TestReducePartialParticipation(t *testing.T) {
	n := mustNet(t, Config{D: 2, K: 3})
	values := map[string]int{"000": 5, "111": 7}
	got, res, err := n.Reduce(word.MustParse(2, "010"), values, func(a, b int) int { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	if got != 12 || res.Participants != 2 {
		t.Errorf("got %d participants %d", got, res.Participants)
	}
}

func TestReduceWithFailures(t *testing.T) {
	n := mustNet(t, Config{D: 2, K: 4})
	if err := n.FailSite(word.MustParse(2, "1111")); err != nil {
		t.Fatal(err)
	}
	values := allValues(t, 2, 4)
	root := word.MustParse(2, "0000")
	got, res, err := n.Reduce(root, values, func(a, b int) int { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	// The failed site's value (15) must be missing.
	wantSum := 0
	for i := 0; i < 16; i++ {
		wantSum += i
	}
	wantSum -= 15
	if got != wantSum || res.Participants != 15 {
		t.Errorf("sum %d participants %d", got, res.Participants)
	}
	if err := n.FailSite(root); err != nil {
		t.Fatal(err)
	}
	if _, _, err := n.Reduce(root, values, func(a, b int) int { return a + b }); err == nil {
		t.Error("reduce accepted failed root")
	}
}

func TestReduceValidates(t *testing.T) {
	n := mustNet(t, Config{D: 2, K: 3})
	if _, _, err := n.Reduce(word.MustParse(2, "000"), nil, nil); err == nil {
		t.Error("accepted nil combine")
	}
	if _, _, err := n.Reduce(word.MustParse(2, "00"), map[string]int{}, func(a, b int) int { return a }); err == nil {
		t.Error("accepted short root")
	}
	if _, _, err := n.Reduce(word.MustParse(2, "000"), map[string]int{}, func(a, b int) int { return a }); err == nil {
		t.Error("accepted empty values (no root value)")
	}
}

func TestGatherCollectsAll(t *testing.T) {
	n := mustNet(t, Config{D: 2, K: 4})
	values := allValues(t, 2, 4)
	root := word.MustParse(2, "0000")
	got, res, err := n.Gather(root, values)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 16 || res.Participants != 16 {
		t.Errorf("gathered %d, participants %d", len(got), res.Participants)
	}
	for s, v := range values {
		if got[s] != v {
			t.Errorf("value %s = %d, want %d", s, got[s], v)
		}
	}
	// Gather ships every value the whole way: strictly more messages
	// than Reduce's N-1 (the root's own value costs 0).
	if res.Messages <= 15 {
		t.Errorf("gather messages = %d, expected > N-1", res.Messages)
	}
}

func TestGatherRejectsBadKeys(t *testing.T) {
	n := mustNet(t, Config{D: 2, K: 3})
	if _, _, err := n.Gather(word.MustParse(2, "000"), map[string]int{"zz": 1}); err == nil {
		t.Error("accepted unparsable key")
	}
}

func TestGatherSkipsFailedSites(t *testing.T) {
	n := mustNet(t, Config{D: 2, K: 3})
	if err := n.FailSite(word.MustParse(2, "111")); err != nil {
		t.Fatal(err)
	}
	got, res, err := n.Gather(word.MustParse(2, "000"), allValues(t, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 || res.Participants != 7 {
		t.Errorf("gathered %d", len(got))
	}
}
