package network

import (
	"testing"

	"repro/internal/word"
)

func TestTreeBroadcastReachesAllEfficiently(t *testing.T) {
	for _, cfg := range []Config{
		{D: 2, K: 5},
		{D: 2, K: 5, Unidirectional: true},
		{D: 3, K: 3},
	} {
		n := mustNet(t, cfg)
		src := word.MustParse(cfg.D, mustZeroString(cfg.K))
		res, err := n.TreeBroadcast(src)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reached != n.NumSites() {
			t.Errorf("cfg %+v: reached %d of %d", cfg, res.Reached, n.NumSites())
		}
		if res.Messages != n.NumSites()-1 {
			t.Errorf("cfg %+v: %d messages, want N-1 = %d", cfg, res.Messages, n.NumSites()-1)
		}
		if res.Rounds > cfg.K || res.Rounds < 1 {
			t.Errorf("cfg %+v: %d rounds (diameter %d)", cfg, res.Rounds, cfg.K)
		}
	}
}

func TestFloodBroadcastReachesAllExpensively(t *testing.T) {
	n := mustNet(t, Config{D: 2, K: 5})
	src := word.MustParse(2, "00000")
	flood, err := n.FloodBroadcast(src)
	if err != nil {
		t.Fatal(err)
	}
	if flood.Reached != 32 {
		t.Errorf("flood reached %d", flood.Reached)
	}
	n.ResetStats()
	tree, err := n.TreeBroadcast(src)
	if err != nil {
		t.Fatal(err)
	}
	if flood.Messages <= tree.Messages {
		t.Errorf("flood %d messages not above tree %d", flood.Messages, tree.Messages)
	}
	if flood.Rounds != tree.Rounds {
		t.Errorf("flood rounds %d != tree rounds %d (both are BFS depth)", flood.Rounds, tree.Rounds)
	}
}

func TestBroadcastWithFailures(t *testing.T) {
	n := mustNet(t, Config{D: 2, K: 4})
	if err := n.FailSite(word.MustParse(2, "1111")); err != nil {
		t.Fatal(err)
	}
	src := word.MustParse(2, "0000")
	res, err := n.TreeBroadcast(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached != 15 {
		t.Errorf("reached %d, want 15 (one failed site)", res.Reached)
	}
	if err := n.FailSite(src); err != nil {
		t.Fatal(err)
	}
	if _, err := n.TreeBroadcast(src); err == nil {
		t.Error("broadcast from failed source succeeded")
	}
	if _, err := n.FloodBroadcast(src); err == nil {
		t.Error("flood from failed source succeeded")
	}
}

func TestMulticastSharesPrefixes(t *testing.T) {
	n := mustNet(t, Config{D: 2, K: 4})
	src := word.MustParse(2, "0000")
	dsts := []word.Word{
		word.MustParse(2, "0011"),
		word.MustParse(2, "0010"),
		word.MustParse(2, "0001"),
	}
	res, err := n.Multicast(src, dsts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached != 3 {
		t.Errorf("reached %d", res.Reached)
	}
	// Individual optimal routes: 0000→0001 (1 hop), 0000→0001→0010?
	// Routes to 0001, 0010, 0011 share the first link 0000→0001 etc.;
	// the union must be strictly below the sum of route lengths.
	sum := 0
	for _, dst := range dsts {
		del, err := mustNet(t, Config{D: 2, K: 4}).Send(src, dst, "x")
		if err != nil {
			t.Fatal(err)
		}
		sum += del.Hops
	}
	if res.Messages >= sum {
		t.Errorf("multicast union %d not below route sum %d", res.Messages, sum)
	}
	if res.Rounds < 1 || res.Rounds > 4 {
		t.Errorf("rounds = %d", res.Rounds)
	}
}

func TestMulticastSkipsFailedBranches(t *testing.T) {
	n := mustNet(t, Config{D: 2, K: 3})
	if err := n.FailSite(word.MustParse(2, "011")); err != nil {
		t.Fatal(err)
	}
	src := word.MustParse(2, "000")
	res, err := n.Multicast(src, []word.Word{
		word.MustParse(2, "011"), // failed destination
		word.MustParse(2, "100"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached != 1 {
		t.Errorf("reached %d, want 1", res.Reached)
	}
}

func TestMulticastValidates(t *testing.T) {
	n := mustNet(t, Config{D: 2, K: 3})
	src := word.MustParse(2, "000")
	if _, err := n.Multicast(src, []word.Word{word.MustParse(2, "01")}); err == nil {
		t.Error("accepted short destination")
	}
	res, err := n.Multicast(src, nil)
	if err != nil || res.Reached != 0 || res.Messages != 0 {
		t.Errorf("empty multicast = %+v, %v", res, err)
	}
}

func mustZeroString(k int) string {
	s := make([]byte, k)
	for i := range s {
		s[i] = '0'
	}
	return string(s)
}
