package network

import (
	"repro/internal/obs"
)

// Drop reasons. Delivery.DropReason always holds one of these stable
// codes (Delivery.DropDetail carries the free-form context), and the
// registry counts one dn_drops_total{reason=...} series per code, so
// sent = delivered + Σ drops-by-reason holds exactly.
const (
	// DropSourceFailed: the message was injected at a failed site.
	DropSourceFailed = "source failed"
	// DropRouteExhausted: the routing-path field emptied away from the
	// destination.
	DropRouteExhausted = "route exhausted"
	// DropTTLExceeded: the hop budget (Config.TTL; 0 means 4k) ran out.
	DropTTLExceeded = "ttl exceeded"
	// DropSiteFailed: the next site is failed and the engine is not
	// adaptive.
	DropSiteFailed = "next site failed"
	// DropNoReroute: adaptive mode found no failure-avoiding route.
	DropNoReroute = "no reroute"
	// DropTypeRUnidirectional: a type-R hop in a uni-directional
	// network.
	DropTypeRUnidirectional = "type-R in uni-directional"
	// DropInvalidHop: a hop with an invalid type byte (Cluster engine;
	// the synchronous engine reports it as an error).
	DropInvalidHop = "invalid hop"
	// DropLinkFailed: the next link is failed and the engine has no
	// fault-routing mode to switch structures (Config.FaultRoute off).
	DropLinkFailed = "link failed"
	// DropNoDetour: fault-routing mode could not deliver — the failure
	// set exceeds the tolerance (≥ FaultTrees arcs down around some
	// vertex) or mutated mid-walk; the detail carries the walk reason.
	DropNoDetour = "no detour"
)

// Registry metric names of the synchronous engine (prefix dn_) and
// the concurrent engine (prefix dn_cluster_). Documented in
// README.md § Observability.
const (
	metricSent         = "dn_messages_sent_total"
	metricDelivered    = "dn_messages_delivered_total"
	metricDropped      = "dn_messages_dropped_total"
	metricDrops        = "dn_drops_total" // labelled by reason
	metricLinksCrossed = "dn_links_crossed_total"
	metricReroutes     = "dn_reroutes_total"
	metricHops         = "dn_hops"
	metricRouteNs      = "dn_route_ns"
	metricLinkGini     = "dn_link_load_gini"
	metricFailedSites  = "dn_failed_sites"
	metricFailedLinks  = "dn_failed_links"
	metricFaultInject  = "dn_fault_injections_total"
	metricTreeSwitches = "dn_tree_switches_total"

	metricClusterSent         = "dn_cluster_messages_sent_total"
	metricClusterDelivered    = "dn_cluster_messages_delivered_total"
	metricClusterDropped      = "dn_cluster_messages_dropped_total"
	metricClusterDrops        = "dn_cluster_drops_total" // labelled by reason
	metricClusterLinksCrossed = "dn_cluster_links_crossed_total"
	metricClusterHops         = "dn_cluster_hops"
	metricClusterQueueWait    = "dn_cluster_queue_wait_ns"
	metricClusterInflight     = "dn_cluster_inflight"
)

var dropReasons = []string{
	DropSourceFailed, DropRouteExhausted, DropTTLExceeded,
	DropSiteFailed, DropNoReroute, DropTypeRUnidirectional, DropInvalidHop,
	DropLinkFailed, DropNoDetour,
}

// engineMetrics are the pre-resolved instrument handles of one engine.
// Built once at construction; with a nil registry every handle is nil
// and each call degrades to a single nil check, keeping the disabled
// overhead on the forwarding hot path within noise.
type engineMetrics struct {
	sent, delivered, dropped *obs.Counter
	linksCrossed, reroutes   *obs.Counter
	dropBy                   map[string]*obs.Counter
	hops                     *obs.Histogram
	queueWait                *obs.Histogram
	inflight                 *obs.Gauge
}

func newEngineMetrics(reg *obs.Registry, sent, delivered, dropped, drops, links, hops string) engineMetrics {
	m := engineMetrics{
		sent:         reg.Counter(sent),
		delivered:    reg.Counter(delivered),
		dropped:      reg.Counter(dropped),
		linksCrossed: reg.Counter(links),
		hops:         reg.Histogram(hops, obs.HopBuckets),
	}
	if reg != nil {
		m.dropBy = make(map[string]*obs.Counter, len(dropReasons))
		for _, r := range dropReasons {
			m.dropBy[r] = reg.Counter(obs.Label(drops, "reason", r))
		}
	}
	return m
}

// countDrop increments the aggregate and the per-reason drop counters.
func (m *engineMetrics) countDrop(reason string) {
	m.dropped.Inc()
	if c := m.dropBy[reason]; c != nil {
		c.Inc()
	}
}
