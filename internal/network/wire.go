package network

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/word"
)

// Wire format for the paper's five-field message, so simulated sites
// could exchange real bytes. Layout (big endian):
//
//	magic   uint16  0xDB17
//	control uint8
//	d       uint8   alphabet size
//	k       uint16  word length
//	source  k bytes (one digit per byte)
//	dest    k bytes
//	nHops   uint16
//	route   nHops bytes: bit 7 = type (0 L, 1 R), bit 6 = wildcard,
//	        bits 0-5 = digit
//	payload uint32 length + bytes
//
// One digit per byte wastes bits for small d but keeps every d ≤ 36
// uniform and the codec trivially seekable.

const wireMagic = 0xDB17

// Wire-format errors.
var (
	ErrWireTruncated = errors.New("network: truncated wire message")
	ErrWireMagic     = errors.New("network: bad magic")
	ErrWireField     = errors.New("network: invalid field")
)

// MarshalMessage encodes m into the wire format.
func MarshalMessage(m Message) ([]byte, error) {
	if m.Source.IsZero() || m.Dest.IsZero() {
		return nil, fmt.Errorf("%w: zero-value address", ErrWireField)
	}
	d, k := m.Source.Base(), m.Source.Len()
	if m.Dest.Base() != d || m.Dest.Len() != k {
		return nil, fmt.Errorf("%w: source and destination address different networks", ErrWireField)
	}
	if k > 0xFFFF || len(m.Route) > 0xFFFF {
		return nil, fmt.Errorf("%w: length field overflow", ErrWireField)
	}
	if len(m.Payload) > 0x7FFFFFFF {
		return nil, fmt.Errorf("%w: payload too large", ErrWireField)
	}
	buf := make([]byte, 0, 8+2*k+2+len(m.Route)+4+len(m.Payload))
	buf = binary.BigEndian.AppendUint16(buf, wireMagic)
	buf = append(buf, m.Control, byte(d))
	buf = binary.BigEndian.AppendUint16(buf, uint16(k))
	buf = append(buf, m.Source.Digits()...)
	buf = append(buf, m.Dest.Digits()...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Route)))
	for i, h := range m.Route {
		var b byte
		switch h.Type {
		case core.TypeL:
		case core.TypeR:
			b |= 0x80
		default:
			return nil, fmt.Errorf("%w: hop %d has invalid type", ErrWireField, i)
		}
		if h.Wildcard {
			b |= 0x40
		} else {
			if int(h.Digit) >= d {
				return nil, fmt.Errorf("%w: hop %d digit %d out of base %d", ErrWireField, i, h.Digit, d)
			}
			b |= h.Digit & 0x3F
		}
		buf = append(buf, b)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Payload)))
	buf = append(buf, m.Payload...)
	return buf, nil
}

// UnmarshalMessage decodes a wire-format message, validating every
// field (addresses are re-checked against the alphabet).
func UnmarshalMessage(buf []byte) (Message, error) {
	var m Message
	if len(buf) < 6 {
		return m, ErrWireTruncated
	}
	if binary.BigEndian.Uint16(buf) != wireMagic {
		return m, ErrWireMagic
	}
	m.Control = buf[2]
	d := int(buf[3])
	k := int(binary.BigEndian.Uint16(buf[4:]))
	if k == 0 {
		return m, fmt.Errorf("%w: k = 0", ErrWireField)
	}
	pos := 6
	if len(buf) < pos+2*k+2 {
		return m, ErrWireTruncated
	}
	src, err := word.New(d, buf[pos:pos+k])
	if err != nil {
		return m, fmt.Errorf("%w: source: %w", ErrWireField, err)
	}
	pos += k
	dst, err := word.New(d, buf[pos:pos+k])
	if err != nil {
		return m, fmt.Errorf("%w: dest: %w", ErrWireField, err)
	}
	pos += k
	m.Source, m.Dest = src, dst
	nHops := int(binary.BigEndian.Uint16(buf[pos:]))
	pos += 2
	if len(buf) < pos+nHops+4 {
		return m, ErrWireTruncated
	}
	if nHops > 0 {
		m.Route = make(core.Path, nHops)
		for i := 0; i < nHops; i++ {
			b := buf[pos+i]
			h := core.Hop{}
			if b&0x80 != 0 {
				h.Type = core.TypeR
			}
			if b&0x40 != 0 {
				h.Wildcard = true
				if b&0x3F != 0 {
					// Non-canonical: wildcard hops carry no digit.
					// Rejecting keeps decode∘encode a fixpoint.
					return Message{}, fmt.Errorf("%w: hop %d sets digit bits under wildcard", ErrWireField, i)
				}
			} else {
				h.Digit = b & 0x3F
				if int(h.Digit) >= d {
					return Message{}, fmt.Errorf("%w: hop %d digit %d out of base %d", ErrWireField, i, h.Digit, d)
				}
			}
			m.Route[i] = h
		}
	}
	pos += nHops
	plen := int(binary.BigEndian.Uint32(buf[pos:]))
	pos += 4
	if len(buf) != pos+plen {
		return Message{}, fmt.Errorf("%w: payload length %d, %d bytes remain", ErrWireTruncated, plen, len(buf)-pos)
	}
	m.Payload = string(buf[pos:])
	return m, nil
}
