package network

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/word"
)

// Store-and-forward contention model. The Send/Inject engine moves one
// message at a time, so links never contend; this engine injects a
// whole batch and advances it in synchronous rounds with a per-link
// capacity: every round, each directed link transmits at most
// LinkCapacity queued messages (FIFO, deterministic tie-break by
// arrival order) and the rest wait. Latency = delivery round; the
// paper's wildcard remark ("traffic could be more or less balanced")
// becomes measurable as a latency/saturation difference between
// policies.

// ContentionConfig parameterizes a contention run.
type ContentionConfig struct {
	D, K int
	// Unidirectional restricts links to type-L moves.
	Unidirectional bool
	// LinkCapacity is the number of messages one directed link can
	// carry per round. Defaults to 1.
	LinkCapacity int
	// Policy resolves wildcard hops at injection time (routes are
	// fixed before queueing); PolicyFirst when nil. PolicyLeastLoaded
	// balances against the *planned* load of already-routed messages.
	Policy ContentionPolicy
	// Seed drives random policies and workload draws.
	Seed int64
	// MaxRounds aborts pathological runs; defaults to 64·k + #messages.
	MaxRounds int
}

// ContentionPolicy resolves a wildcard hop during route planning.
type ContentionPolicy interface {
	// Choose picks the digit for wildcard hop h at site cur, given the
	// planned per-link loads so far.
	Choose(sim *Contention, cur word.Word, h core.Hop) byte
	// Name identifies the policy in output.
	Name() string
}

// PlanFirst resolves every wildcard to digit 0.
type PlanFirst struct{}

// Choose implements ContentionPolicy.
func (PlanFirst) Choose(*Contention, word.Word, core.Hop) byte { return 0 }

// Name implements ContentionPolicy.
func (PlanFirst) Name() string { return "first" }

// PlanRandom resolves wildcards uniformly at random.
type PlanRandom struct{}

// Choose implements ContentionPolicy.
func (PlanRandom) Choose(sim *Contention, _ word.Word, _ core.Hop) byte {
	return byte(sim.rng.Intn(sim.cfg.D))
}

// Name implements ContentionPolicy.
func (PlanRandom) Name() string { return "random" }

// PlanLeastLoaded resolves each wildcard toward the link with the
// least planned traffic.
type PlanLeastLoaded struct{}

// Choose implements ContentionPolicy.
func (PlanLeastLoaded) Choose(sim *Contention, cur word.Word, h core.Hop) byte {
	curV := graph.DeBruijnVertex(cur)
	best := byte(0)
	bestLoad := -1
	for b := 0; b < sim.cfg.D; b++ {
		var next word.Word
		if h.Type == core.TypeL {
			next = cur.ShiftLeft(byte(b))
		} else {
			next = cur.ShiftRight(byte(b))
		}
		load := sim.planned[[2]int{curV, graph.DeBruijnVertex(next)}]
		if bestLoad < 0 || load < bestLoad {
			best, bestLoad = byte(b), load
		}
	}
	return best
}

// Name implements ContentionPolicy.
func (PlanLeastLoaded) Name() string { return "least-loaded" }

// Contention is the batch store-and-forward simulator.
type Contention struct {
	cfg     ContentionConfig
	rng     *rand.Rand
	planned map[[2]int]int
	flows   []*flow
}

type flow struct {
	id    int
	walk  []word.Word // full planned site sequence
	pos   int         // index of the site currently holding the message
	done  int         // delivery round, -1 while in flight
	queue int         // FIFO arrival counter at the current link
}

// NewContention validates the configuration.
func NewContention(cfg ContentionConfig) (*Contention, error) {
	if _, err := word.Count(cfg.D, cfg.K); err != nil {
		return nil, fmt.Errorf("network: %w", err)
	}
	if cfg.LinkCapacity == 0 {
		cfg.LinkCapacity = 1
	}
	if cfg.LinkCapacity < 1 {
		return nil, fmt.Errorf("network: link capacity %d must be positive", cfg.LinkCapacity)
	}
	if cfg.Policy == nil {
		cfg.Policy = PlanFirst{}
	}
	return &Contention{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		planned: make(map[[2]int]int),
	}, nil
}

// Add routes one message (optimal route, wildcards resolved by the
// policy against planned load) and enqueues it for the next Run.
func (c *Contention) Add(src, dst word.Word) error {
	if src.Base() != c.cfg.D || src.Len() != c.cfg.K || dst.Base() != c.cfg.D || dst.Len() != c.cfg.K {
		return fmt.Errorf("network: words do not address DN(%d,%d)", c.cfg.D, c.cfg.K)
	}
	var route core.Path
	var err error
	if c.cfg.Unidirectional {
		route, err = core.RouteDirected(src, dst)
	} else {
		route, err = core.RouteUndirectedLinear(src, dst)
	}
	if err != nil {
		return err
	}
	conc, err := route.Concrete(src, func(_ int, cur word.Word, h core.Hop) byte {
		return c.cfg.Policy.Choose(c, cur, h)
	})
	if err != nil {
		return err
	}
	walk, err := conc.Vertices(src)
	if err != nil {
		return err
	}
	for i := 1; i < len(walk); i++ {
		link := [2]int{graph.DeBruijnVertex(walk[i-1]), graph.DeBruijnVertex(walk[i])}
		c.planned[link]++
	}
	c.flows = append(c.flows, &flow{id: len(c.flows), walk: walk, done: -1})
	return nil
}

// AddUniform enqueues count uniform-random messages.
func (c *Contention) AddUniform(count int) error {
	if count < 1 {
		return fmt.Errorf("network: need at least one message, got %d", count)
	}
	for i := 0; i < count; i++ {
		src := word.Random(c.cfg.D, c.cfg.K, c.rng)
		dst := word.Random(c.cfg.D, c.cfg.K, c.rng)
		if err := c.Add(src, dst); err != nil {
			return err
		}
	}
	return nil
}

// ContentionResult summarizes a batch run.
type ContentionResult struct {
	Messages     int
	Rounds       int     // rounds until the last delivery
	MeanLatency  float64 // mean delivery round
	P95Latency   int
	MaxLatency   int
	MeanSlowdown float64 // mean latency / hop-count ratio (≥ 1)
	MaxQueue     int     // peak messages waiting on one link in one round
}

// Run advances synchronous rounds until every message is delivered.
// Each round, each directed link moves its LinkCapacity oldest waiting
// messages one hop. Deterministic given the configuration.
func (c *Contention) Run() (ContentionResult, error) {
	maxRounds := c.cfg.MaxRounds
	if maxRounds == 0 {
		maxRounds = 64*c.cfg.K + len(c.flows)
	}
	res := ContentionResult{Messages: len(c.flows)}
	var latency stats.Accumulator
	var slowdown stats.Accumulator
	var p95 stats.Histogram
	remaining := 0
	for _, f := range c.flows {
		if len(f.walk) == 1 {
			f.done = 0
			latency.Add(0)
			slowdown.Add(1)
			if err := p95.Add(0); err != nil {
				return res, err
			}
		} else {
			remaining++
		}
	}
	arrival := 0
	for _, f := range c.flows {
		f.queue = arrival
		arrival++
	}
	for round := 1; remaining > 0; round++ {
		if round > maxRounds {
			return res, errors.New("network: contention run exceeded round budget")
		}
		// Group in-flight flows by their next link.
		byLink := make(map[[2]int][]*flow)
		for _, f := range c.flows {
			if f.done >= 0 {
				continue
			}
			link := [2]int{
				graph.DeBruijnVertex(f.walk[f.pos]),
				graph.DeBruijnVertex(f.walk[f.pos+1]),
			}
			byLink[link] = append(byLink[link], f)
		}
		// Deterministic link order: the arrival counters handed out
		// below seed later FIFO tie-breaks, so map order must not leak.
		links := make([][2]int, 0, len(byLink))
		for link := range byLink {
			links = append(links, link)
		}
		sort.Slice(links, func(i, j int) bool {
			if links[i][0] != links[j][0] {
				return links[i][0] < links[j][0]
			}
			return links[i][1] < links[j][1]
		})
		for _, link := range links {
			queued := byLink[link]
			sort.Slice(queued, func(i, j int) bool { return queued[i].queue < queued[j].queue })
			if len(queued) > res.MaxQueue {
				res.MaxQueue = len(queued)
			}
			moved := c.cfg.LinkCapacity
			if moved > len(queued) {
				moved = len(queued)
			}
			for _, f := range queued[:moved] {
				f.pos++
				f.queue = arrival // re-enqueue order at the next link
				arrival++
				if f.pos == len(f.walk)-1 {
					f.done = round
					remaining--
					latency.Add(float64(round))
					slowdown.Add(float64(round) / float64(len(f.walk)-1))
					if err := p95.Add(round); err != nil {
						return res, err
					}
					if round > res.MaxLatency {
						res.MaxLatency = round
					}
					if round > res.Rounds {
						res.Rounds = round
					}
				}
			}
		}
	}
	res.MeanLatency = latency.Mean()
	res.MeanSlowdown = slowdown.Mean()
	res.P95Latency = p95.Quantile(0.95)
	return res, nil
}

// PlannedMaxLinkLoad returns the heaviest planned per-link message
// count — the static congestion the run resolves over time.
func (c *Contention) PlannedMaxLinkLoad() int {
	best := 0
	for _, v := range c.planned {
		if v > best {
			best = v
		}
	}
	return best
}
