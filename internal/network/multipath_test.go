package network

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/word"
)

func payloads(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("p%d", i)
	}
	return out
}

func TestSendMultipathAllOptimal(t *testing.T) {
	n := mustNet(t, Config{D: 2, K: 6})
	src := word.MustParse(2, "000010")
	dst := word.MustParse(2, "110001")
	want, err := core.UndirectedDistance(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	dels, err := n.SendMultipath(src, dst, payloads(40), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(dels) != 40 {
		t.Fatalf("deliveries = %d", len(dels))
	}
	for _, d := range dels {
		if !d.Delivered || d.Hops != want {
			t.Fatalf("delivery %+v, want %d hops", d, want)
		}
	}
}

func TestSendMultipathSpreadsLoad(t *testing.T) {
	// Repeating the same pair: multipath must not concentrate load
	// more than single-path, and should reduce the max link load when
	// several shapes exist.
	src := word.MustParse(2, "000010")
	dst := word.MustParse(2, "110001")
	routes, err := core.MultiRouteUndirected(src, dst, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) < 2 {
		t.Skip("pair has a unique route shape; pick another pair")
	}
	single := mustNet(t, Config{D: 2, K: 6})
	for i := 0; i < 60; i++ {
		if _, err := single.Send(src, dst, "s"); err != nil {
			t.Fatal(err)
		}
	}
	multi := mustNet(t, Config{D: 2, K: 6})
	if _, err := multi.SendMultipath(src, dst, payloads(60), 8); err != nil {
		t.Fatal(err)
	}
	if multi.Stats().MaxLinkLoad >= single.Stats().MaxLinkLoad {
		t.Errorf("multipath max link load %d not below single-path %d",
			multi.Stats().MaxLinkLoad, single.Stats().MaxLinkLoad)
	}
}

func TestSendMultipathValidates(t *testing.T) {
	n := mustNet(t, Config{D: 2, K: 4})
	src, dst := word.MustParse(2, "0000"), word.MustParse(2, "1111")
	if _, err := n.SendMultipath(src, dst, nil, 4); err == nil {
		t.Error("accepted empty payloads")
	}
	if _, err := n.SendMultipath(word.MustParse(2, "00"), dst, payloads(1), 4); err == nil {
		t.Error("accepted short source")
	}
	uni := mustNet(t, Config{D: 2, K: 4, Unidirectional: true})
	if _, err := uni.SendMultipath(src, dst, payloads(1), 4); err == nil {
		t.Error("accepted unidirectional network")
	}
	// width clamp
	dels, err := n.SendMultipath(src, dst, payloads(3), 0)
	if err != nil || len(dels) != 3 {
		t.Errorf("clamped width: %v, %v", dels, err)
	}
}
