package network

import (
	"testing"

	"repro/internal/word"
)

func FuzzUnmarshalMessage(f *testing.F) {
	good, err := MarshalMessage(Message{
		Control: ControlData,
		Source:  word.MustParse(2, "0110"),
		Dest:    word.MustParse(2, "1001"),
		Payload: "seed",
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0xDB, 0x17})
	f.Add(good[:len(good)-2])
	f.Fuzz(func(t *testing.T, buf []byte) {
		m, err := UnmarshalMessage(buf)
		if err != nil {
			return // rejecting garbage is correct; panicking is not
		}
		// Anything that decodes must re-encode to the same bytes.
		back, err := MarshalMessage(m)
		if err != nil {
			t.Fatalf("re-marshal of decoded message failed: %v", err)
		}
		if string(back) != string(buf) {
			t.Fatalf("decode/encode not a fixpoint:\n in  %x\n out %x", buf, back)
		}
	})
}
