package network

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/word"
)

// TestLeastLoadedPrefersLiveNeighbor: with one candidate failed, the
// policy must pick the live one regardless of load.
func TestLeastLoadedPrefersLiveNeighbor(t *testing.T) {
	n := mustNet(t, Config{D: 2, K: 4, Policy: PolicyLeastLoaded{}})
	cur := word.MustParse(2, "0110")
	dead := cur.ShiftLeft(0) // 1100
	if err := n.FailSite(dead); err != nil {
		t.Fatal(err)
	}
	// Load the live digit-1 link heavily: liveness must still win.
	live := cur.ShiftLeft(1)
	n.linkLoad[[2]int{graph.DeBruijnVertex(cur), graph.DeBruijnVertex(live)}] = 100
	h := core.Hop{Type: core.TypeL, Wildcard: true}
	if got := (PolicyLeastLoaded{}).Choose(n, cur, h); got != 1 {
		t.Fatalf("Choose = %d, want the live digit 1", got)
	}
}

// TestLeastLoadedAllFailedFallsBackToLeastLoaded is the regression
// test for the all-candidates-failed case: the policy used to return
// digit 0 unconditionally, ignoring link load. It must instead apply
// the same least-loaded rule over the (all doomed) candidates.
func TestLeastLoadedAllFailedFallsBackToLeastLoaded(t *testing.T) {
	// Unidirectional: every route out of cur crosses a left-shift
	// neighbor, so failing both of them guarantees the drop below.
	n := mustNet(t, Config{D: 2, K: 4, Unidirectional: true, Policy: PolicyLeastLoaded{}})
	cur := word.MustParse(2, "0110")
	for b := 0; b < 2; b++ {
		if err := n.FailSite(cur.ShiftLeft(byte(b))); err != nil {
			t.Fatal(err)
		}
	}
	// Digit 0's link has carried traffic; digit 1's has not.
	zeroNext := cur.ShiftLeft(0)
	n.linkLoad[[2]int{graph.DeBruijnVertex(cur), graph.DeBruijnVertex(zeroNext)}] = 5
	h := core.Hop{Type: core.TypeL, Wildcard: true}
	if got := (PolicyLeastLoaded{}).Choose(n, cur, h); got != 1 {
		t.Fatalf("Choose = %d, want least-loaded digit 1 in the all-failed fallback", got)
	}
	// And the message is still dropped at the failed hop — the fallback
	// changes which dead link carries it, not the outcome.
	dst := word.MustParse(2, "0000")
	del, err := n.Send(cur, dst, "probe")
	if err != nil {
		t.Fatal(err)
	}
	if del.Delivered {
		t.Fatal("message delivered through a failed neighborhood")
	}
}
