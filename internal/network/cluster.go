package network

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/word"
)

// ClusterConfig parameterizes the concurrent engine.
type ClusterConfig struct {
	D, K int
	// Unidirectional restricts links to type-L moves.
	Unidirectional bool
	// Seed drives the per-site wildcard generators.
	Seed int64
	// MaxInflight bounds the number of undelivered messages; Send
	// blocks when the bound is reached. Inbox channels are sized to
	// this bound, which guarantees forwarding never blocks
	// indefinitely (every in-flight message occupies at most one
	// buffer slot). Defaults to 1024.
	MaxInflight int
	// RandomWildcard resolves wildcard hops with the site's own
	// seeded generator instead of digit 0.
	RandomWildcard bool
	// Trace records structured per-hop events (including per-hop
	// queue wait) on each Delivery.
	Trace bool
	// Obs receives engine metrics (dn_cluster_* series, including the
	// queue-wait histogram and the inflight gauge); nil disables
	// instrumentation.
	Obs *obs.Registry
}

// Cluster simulates DN(d,k) with one goroutine per site, links being
// buffered channels: the same Section 3 forwarding rule as Network,
// executed concurrently. Use it as:
//
//	c, _ := NewCluster(cfg)
//	c.Start()
//	c.Send(...) ...
//	c.Drain()          // wait for all in-flight deliveries
//	c.Stop()           // terminate site goroutines
//	ds := c.Deliveries()
type Cluster struct {
	cfg     ClusterConfig
	g       *graph.Graph
	inboxes []chan envelope
	quit    chan struct{}
	sites   sync.WaitGroup
	flight  sync.WaitGroup
	slots   chan struct{}

	started bool
	stopped bool
	failed  map[int]bool

	m         engineMetrics
	timestamp bool // stamp envelopes with enqueue time (metrics or trace on)

	mu         sync.Mutex
	deliveries []Delivery
	linkLoad   map[[2]int]int
}

type envelope struct {
	msg      Message
	cur      word.Word
	left     core.Path
	hops     int
	trace    obs.Trace
	enqueued time.Time // zero unless queue-wait measurement is on
}

// NewCluster validates the configuration and builds the cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	kind := graph.Undirected
	if cfg.Unidirectional {
		kind = graph.Directed
	}
	g, err := graph.DeBruijn(kind, cfg.D, cfg.K)
	if err != nil {
		return nil, fmt.Errorf("network: %w", err)
	}
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = 1024
	}
	if cfg.MaxInflight < 1 {
		return nil, fmt.Errorf("network: MaxInflight %d must be positive", cfg.MaxInflight)
	}
	m := newEngineMetrics(cfg.Obs, metricClusterSent, metricClusterDelivered,
		metricClusterDropped, metricClusterDrops, metricClusterLinksCrossed, metricClusterHops)
	m.queueWait = cfg.Obs.Histogram(metricClusterQueueWait, obs.NsBuckets)
	m.inflight = cfg.Obs.Gauge(metricClusterInflight)
	c := &Cluster{
		cfg:       cfg,
		g:         g,
		inboxes:   make([]chan envelope, g.NumVertices()),
		quit:      make(chan struct{}),
		slots:     make(chan struct{}, cfg.MaxInflight),
		failed:    make(map[int]bool),
		m:         m,
		timestamp: cfg.Obs != nil || cfg.Trace,
		linkLoad:  make(map[[2]int]int),
	}
	for i := range c.inboxes {
		c.inboxes[i] = make(chan envelope, cfg.MaxInflight)
	}
	return c, nil
}

// FailSite marks a site as failed before the cluster starts: its
// goroutine never launches (messages addressed into it are dropped by
// the sender side). Calling FailSite after Start is an error — the
// static failure set keeps the concurrent engine race-free.
func (c *Cluster) FailSite(w word.Word) error {
	if c.started {
		return errors.New("network: FailSite must be called before Start")
	}
	if w.Base() != c.cfg.D || w.Len() != c.cfg.K {
		return fmt.Errorf("network: word %v does not address DN(%d,%d)", w, c.cfg.D, c.cfg.K)
	}
	c.failed[graph.DeBruijnVertex(w)] = true
	c.cfg.Obs.Counter(metricFaultInject).Inc()
	c.cfg.Obs.Gauge(metricFailedSites).Set(float64(len(c.failed)))
	return nil
}

// Start launches one goroutine per site. It must be called exactly
// once before Send.
func (c *Cluster) Start() {
	if c.started {
		return
	}
	c.started = true
	for v := range c.inboxes {
		if c.failed[v] {
			continue
		}
		c.sites.Add(1)
		siteRng := rand.New(rand.NewSource(c.cfg.Seed + int64(v)*7919))
		go c.runSite(v, siteRng)
	}
}

func (c *Cluster) runSite(v int, rng *rand.Rand) {
	defer c.sites.Done()
	for {
		select {
		case <-c.quit:
			return
		case env := <-c.inboxes[v]:
			c.process(env, rng)
		}
	}
}

func (c *Cluster) process(env envelope, rng *rand.Rand) {
	var wait time.Duration
	if c.timestamp {
		wait = time.Since(env.enqueued)
		c.m.queueWait.Observe(float64(wait))
	}
	if len(env.left) == 0 {
		delivered := env.cur.Equal(env.msg.Dest)
		del := Delivery{Msg: env.msg, Delivered: delivered, Hops: env.hops, Trace: env.trace}
		if !delivered {
			del.DropReason = DropRouteExhausted
			del.DropDetail = fmt.Sprintf("at %v", env.cur)
		}
		c.record(del, env.cur)
		return
	}
	hop := env.left[0]
	env.left = env.left[1:]
	digit := hop.Digit
	if hop.Wildcard {
		if c.cfg.RandomWildcard {
			digit = byte(rng.Intn(c.cfg.D))
		} else {
			digit = 0
		}
	}
	var next word.Word
	switch hop.Type {
	case core.TypeL:
		next = env.cur.ShiftLeft(digit)
	case core.TypeR:
		if c.cfg.Unidirectional {
			c.record(Delivery{Msg: env.msg, Hops: env.hops, Trace: env.trace,
				DropReason: DropTypeRUnidirectional, DropDetail: fmt.Sprintf("at %v", env.cur)}, env.cur)
			return
		}
		next = env.cur.ShiftRight(digit)
	default:
		c.record(Delivery{Msg: env.msg, Hops: env.hops, Trace: env.trace,
			DropReason: DropInvalidHop, DropDetail: fmt.Sprintf("hop type %d", hop.Type)}, env.cur)
		return
	}
	nextV := graph.DeBruijnVertex(next)
	if c.failed[nextV] {
		// The failure set is immutable after Start, so reading it
		// without the mutex is race-free.
		c.record(Delivery{Msg: env.msg, Hops: env.hops, Trace: env.trace,
			DropReason: DropSiteFailed, DropDetail: fmt.Sprintf("next site %v", next)}, env.cur)
		return
	}
	c.mu.Lock()
	c.linkLoad[[2]int{graph.DeBruijnVertex(env.cur), nextV}]++
	c.mu.Unlock()
	c.m.linksCrossed.Inc()
	env.cur = next
	env.hops++
	if c.cfg.Trace {
		env.trace = append(env.trace, obs.HopEvent{
			Hop: env.hops, Cause: obs.CauseForward, Site: next.String(),
			Link: hop.Type.String(), Digit: int(digit), Wildcard: hop.Wildcard,
			Wait: wait,
		})
	}
	if c.timestamp {
		env.enqueued = time.Now()
	}
	c.inboxes[nextV] <- env
}

// record finalizes one delivery (site is where the message ended).
func (c *Cluster) record(d Delivery, site word.Word) {
	if d.Delivered {
		c.m.delivered.Inc()
		c.m.hops.Observe(float64(d.Hops))
	} else {
		c.m.countDrop(d.DropReason)
	}
	if c.cfg.Trace {
		ev := obs.HopEvent{Hop: d.Hops, Site: site.String(), Digit: -1}
		if d.Delivered {
			ev.Cause = obs.CauseDeliver
		} else {
			ev.Cause = obs.CauseDrop
			ev.Detail = d.DropReason
			if d.DropDetail != "" {
				ev.Detail += " (" + d.DropDetail + ")"
			}
		}
		d.Trace = append(d.Trace, ev)
	}
	c.mu.Lock()
	c.deliveries = append(c.deliveries, d)
	c.mu.Unlock()
	c.m.inflight.Add(-1)
	<-c.slots
	c.flight.Done()
}

// Send routes a message with the optimal routing algorithm and injects
// it at the source site. It blocks while MaxInflight messages are
// undelivered.
func (c *Cluster) Send(src, dst word.Word, payload string) error {
	if !c.started || c.stopped {
		return errors.New("network: cluster not running")
	}
	if src.Base() != c.cfg.D || src.Len() != c.cfg.K || dst.Base() != c.cfg.D || dst.Len() != c.cfg.K {
		return fmt.Errorf("network: words do not address DN(%d,%d)", c.cfg.D, c.cfg.K)
	}
	if c.failed[graph.DeBruijnVertex(src)] {
		// A failed site has no goroutine; queueing there would strand
		// the message and hang Drain.
		return fmt.Errorf("network: source site %v failed", src)
	}
	var route core.Path
	var err error
	if c.cfg.Unidirectional {
		route, err = core.RouteDirected(src, dst)
	} else {
		route, err = core.RouteUndirectedLinear(src, dst)
	}
	if err != nil {
		return err
	}
	msg := Message{Control: ControlData, Source: src, Dest: dst, Route: route, Payload: payload}
	c.slots <- struct{}{}
	c.flight.Add(1)
	c.m.sent.Inc()
	c.m.inflight.Add(1)
	env := envelope{msg: msg, cur: src, left: route}
	if c.cfg.Trace {
		env.trace = obs.Trace{{Cause: obs.CauseInject, Site: src.String(), Digit: -1}}
	}
	if c.timestamp {
		env.enqueued = time.Now()
	}
	c.inboxes[graph.DeBruijnVertex(src)] <- env
	return nil
}

// Drain blocks until every message sent so far has been delivered or
// dropped.
func (c *Cluster) Drain() { c.flight.Wait() }

// Stop terminates the site goroutines and waits for them to exit.
// Call Drain first; messages still in flight at Stop are abandoned.
func (c *Cluster) Stop() {
	if !c.started || c.stopped {
		return
	}
	c.stopped = true
	close(c.quit)
	c.sites.Wait()
}

// Deliveries returns a copy of the delivery records so far.
func (c *Cluster) Deliveries() []Delivery {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Delivery, len(c.deliveries))
	copy(out, c.deliveries)
	return out
}

// MaxLinkLoad returns the heaviest directed-link counter.
func (c *Cluster) MaxLinkLoad() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	best := 0
	for _, v := range c.linkLoad {
		if v > best {
			best = v
		}
	}
	return best
}
