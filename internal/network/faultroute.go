package network

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/word"
)

// Link-failure injection and the arborescence failover mode. Links
// fail as undirected cables: FailLink takes down both directed arcs
// of the edge {u,v}. The failover walk itself is arc-granular (see
// core.FaultRouter), so the delivery guarantee — fewer than
// core.FaultTrees(d,k) failed arcs never strand a message — counts
// each failed link as two arcs, and a failed site as all arcs into
// it.

// FailLink marks the link {u,v} as failed in both directions.
// Messages meeting it are dropped (DropLinkFailed), or detoured along
// the destination's arc-disjoint arborescences when Config.FaultRoute
// is set.
func (n *Network) FailLink(u, v word.Word) error {
	uv, vv, err := n.linkVertices(u, v)
	if err != nil {
		return err
	}
	n.failedLinks[[2]int{uv, vv}] = true
	n.failedLinks[[2]int{vv, uv}] = true
	n.faultInject.Inc()
	n.failedLinksG.Set(float64(len(n.failedLinks)))
	return nil
}

// RepairLink clears a link failure in both directions.
func (n *Network) RepairLink(u, v word.Word) error {
	uv, vv, err := n.linkVertices(u, v)
	if err != nil {
		return err
	}
	delete(n.failedLinks, [2]int{uv, vv})
	delete(n.failedLinks, [2]int{vv, uv})
	n.failedLinksG.Set(float64(len(n.failedLinks)))
	return nil
}

// FailedLinks returns the number of currently failed directed arcs
// (two per failed link).
func (n *Network) FailedLinks() int { return len(n.failedLinks) }

func (n *Network) linkVertices(u, v word.Word) (int, int, error) {
	uv, err := n.vertex(u)
	if err != nil {
		return 0, 0, err
	}
	vv, err := n.vertex(v)
	if err != nil {
		return 0, 0, err
	}
	if !n.g.HasEdge(uv, vv) {
		return 0, 0, fmt.Errorf("network: %v and %v are not linked", u, v)
	}
	return uv, vv, nil
}

func (n *Network) linkFailed(u, v int) bool { return n.failedLinks[[2]int{u, v}] }

// arcDead is the failover walk's failure predicate: an arc is dead if
// its link is failed or it enters a failed site.
func (n *Network) arcDead(u, v int) bool {
	return n.failedLinks[[2]int{u, v}] || n.failed[v]
}

// faultDetour computes the arborescence failover path from cur to dst
// under the current failure set. A nil path with a nil error means
// the walk could not deliver; the returned walk carries the reason
// and the tree-switch count.
func (n *Network) faultDetour(cur, dst word.Word) (core.Path, core.FaultWalk, error) {
	path, walk, err := n.frouter.DetourPath(cur, dst, n.arcDead)
	if err != nil {
		return nil, walk, fmt.Errorf("network: %w", err)
	}
	if !walk.Delivered {
		return nil, walk, nil
	}
	return path, walk, nil
}

// SendFaultRouted routes one message from src to dst entirely along
// the destination's arc-disjoint arborescences under the current
// failure set — the pure fault-routing mode, as opposed to Send,
// which uses the optimal route and fails over only on contact with a
// failure. Requires Config.FaultRoute.
func (n *Network) SendFaultRouted(src, dst word.Word, payload string) (Delivery, error) {
	if !n.cfg.FaultRoute {
		return Delivery{}, fmt.Errorf("network: SendFaultRouted needs Config.FaultRoute")
	}
	srcV, err := n.vertex(src)
	if err != nil {
		return Delivery{}, err
	}
	dstV, err := n.vertex(dst)
	if err != nil {
		return Delivery{}, err
	}
	n.m.sent.Inc()
	msg := Message{Control: ControlData, Source: src, Dest: dst, Payload: payload}
	if n.failed[srcV] {
		del := Delivery{Msg: msg}
		n.drop(&del, src, DropSourceFailed, "")
		return del, nil
	}
	if n.failed[dstV] {
		del := Delivery{Msg: msg}
		n.drop(&del, src, DropSiteFailed, fmt.Sprintf("destination %v failed", dst))
		return del, nil
	}
	path, walk, err := n.faultDetour(src, dst)
	if err != nil {
		return Delivery{}, err
	}
	if path == nil && !src.Equal(dst) {
		del := Delivery{Msg: msg}
		n.drop(&del, src, DropNoDetour, walk.Reason)
		return del, nil
	}
	n.treeSwitches.Add(int64(walk.Switches))
	msg.Route = path
	del, err := n.forward(msg)
	if err != nil {
		return del, err
	}
	del.Rerouted += walk.Switches
	return del, nil
}

// FaultRouter exposes the engine's arborescence router (nil unless
// Config.FaultRoute); experiments read tree counts and hop bounds
// from it.
func (n *Network) FaultRouter() *core.FaultRouter { return n.frouter }
