package network

import (
	"testing"

	"repro/internal/word"
)

func TestContentionSingleMessageLatencyIsDistance(t *testing.T) {
	c, err := NewContention(ContentionConfig{D: 2, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	src := word.MustParse(2, "0000")
	dst := word.MustParse(2, "0111")
	if err := c.Add(src, dst); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 1 || res.MeanSlowdown != 1 {
		t.Errorf("res = %+v", res)
	}
	// Uncontended latency equals the hop count.
	if res.MaxLatency != 3 {
		t.Errorf("latency %d, want 3", res.MaxLatency)
	}
}

func TestContentionSelfMessage(t *testing.T) {
	c, err := NewContention(ContentionConfig{D: 2, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	x := word.MustParse(2, "010")
	if err := c.Add(x, x); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxLatency != 0 || res.Rounds != 0 {
		t.Errorf("res = %+v", res)
	}
}

func TestContentionSerializesSharedLink(t *testing.T) {
	// Two messages over the same single link: capacity 1 forces the
	// second to wait one round.
	c, err := NewContention(ContentionConfig{D: 2, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	src := word.MustParse(2, "000")
	dst := word.MustParse(2, "001")
	if err := c.Add(src, dst); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(src, dst); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 2 || res.MaxLatency != 2 || res.MaxQueue != 2 {
		t.Errorf("res = %+v", res)
	}
	// Capacity 2 clears both in one round.
	c2, err := NewContention(ContentionConfig{D: 2, K: 3, LinkCapacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	_ = c2.Add(src, dst)
	_ = c2.Add(src, dst)
	res2, err := c2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Rounds != 1 {
		t.Errorf("capacity-2 res = %+v", res2)
	}
}

func TestContentionDeterministic(t *testing.T) {
	run := func() ContentionResult {
		c, err := NewContention(ContentionConfig{D: 2, K: 6, Seed: 5, Policy: PlanRandom{}})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.AddUniform(400); err != nil {
			t.Fatal(err)
		}
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("runs differ: %+v vs %+v", a, b)
	}
}

func TestContentionLatencyAtLeastHops(t *testing.T) {
	c, err := NewContention(ContentionConfig{D: 2, K: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddUniform(300); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanSlowdown < 1 {
		t.Errorf("slowdown %v below 1", res.MeanSlowdown)
	}
	if res.P95Latency > res.MaxLatency || res.MeanLatency > float64(res.MaxLatency) {
		t.Errorf("latency stats inconsistent: %+v", res)
	}
}

func TestContentionBalancedPolicyHelpsUnderLoad(t *testing.T) {
	// With heavy uniform load, planning wildcards least-loaded must
	// not be worse than always-first on planned max link load, and
	// should improve mean latency.
	run := func(p ContentionPolicy) (int, float64) {
		c, err := NewContention(ContentionConfig{D: 2, K: 6, Seed: 11, Policy: p})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.AddUniform(1500); err != nil {
			t.Fatal(err)
		}
		plannedMax := c.PlannedMaxLinkLoad()
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return plannedMax, res.MeanLatency
	}
	firstMax, firstLatency := run(PlanFirst{})
	llMax, llLatency := run(PlanLeastLoaded{})
	if llMax > firstMax {
		t.Errorf("least-loaded planned max %d above first %d", llMax, firstMax)
	}
	if llLatency > firstLatency {
		t.Errorf("least-loaded latency %v above first %v", llLatency, firstLatency)
	}
}

func TestContentionUnidirectional(t *testing.T) {
	c, err := NewContention(ContentionConfig{D: 2, K: 4, Unidirectional: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddUniform(100); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 100 || res.MeanSlowdown < 1 {
		t.Errorf("res = %+v", res)
	}
}

func TestContentionValidates(t *testing.T) {
	if _, err := NewContention(ContentionConfig{D: 1, K: 3}); err == nil {
		t.Error("accepted d=1")
	}
	if _, err := NewContention(ContentionConfig{D: 2, K: 3, LinkCapacity: -1}); err == nil {
		t.Error("accepted negative capacity")
	}
	c, err := NewContention(ContentionConfig{D: 2, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Add(word.MustParse(2, "01"), word.MustParse(2, "010")); err == nil {
		t.Error("accepted short source")
	}
	if err := c.AddUniform(0); err == nil {
		t.Error("accepted zero messages")
	}
	empty, err := c.Run()
	if err != nil || empty.Messages != 0 {
		t.Errorf("empty run: %+v, %v", empty, err)
	}
}

func TestContentionRoundBudget(t *testing.T) {
	c, err := NewContention(ContentionConfig{D: 2, K: 4, MaxRounds: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddUniform(50); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err == nil {
		t.Error("round budget not enforced")
	}
}
