package network

import (
	"math/rand"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/word"
)

// TestRegistrySentEqualsDeliveredPlusDropped checks the bookkeeping
// invariant on the synchronous engine: every injected message is
// counted exactly once as sent and exactly once as delivered or as a
// drop with a reason, even under failures and adaptive rerouting.
func TestRegistrySentEqualsDeliveredPlusDropped(t *testing.T) {
	reg := obs.NewRegistry()
	n, err := New(Config{D: 2, K: 5, Adaptive: true, Seed: 3, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 40; i++ {
		if err := n.FailSite(word.Random(2, 5, rng)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 300; i++ {
		src, dst := word.Random(2, 5, rng), word.Random(2, 5, rng)
		if _, err := n.Send(src, dst, ""); err != nil {
			t.Fatal(err)
		}
	}
	// A destination-routed message exercises the adaptive fallback
	// path, which re-enters forwarding without re-counting the send.
	if _, err := n.SendDestinationRouted(word.Random(2, 5, rng), word.Random(2, 5, rng), ""); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	sent := snap.Counter("dn_messages_sent_total")
	delivered := snap.Counter("dn_messages_delivered_total")
	dropped := snap.Counter("dn_messages_dropped_total")
	if sent != 301 {
		t.Errorf("sent = %d, want 301", sent)
	}
	if sent != delivered+dropped {
		t.Errorf("sent %d != delivered %d + dropped %d", sent, delivered, dropped)
	}
	if byReason := snap.CounterSum("dn_drops_total"); byReason != dropped {
		t.Errorf("drops by reason sum to %d, dropped counter says %d", byReason, dropped)
	}
	if delivered == 0 || dropped == 0 {
		t.Errorf("want a mix of outcomes, got delivered=%d dropped=%d", delivered, dropped)
	}
	if snap.Histograms["dn_hops"].Count != delivered {
		t.Errorf("hops histogram count %d != delivered %d", snap.Histograms["dn_hops"].Count, delivered)
	}
}

// TestClusterRegistryInvariant checks the same invariant on the
// concurrent engine.
func TestClusterRegistryInvariant(t *testing.T) {
	reg := obs.NewRegistry()
	c, err := NewCluster(ClusterConfig{D: 2, K: 4, Seed: 3, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	failed := word.MustParse(2, "0110")
	if err := c.FailSite(failed); err != nil {
		t.Fatal(err)
	}
	c.Start()
	rng := rand.New(rand.NewSource(5))
	sent := 0
	for sent < 200 {
		src, dst := word.Random(2, 4, rng), word.Random(2, 4, rng)
		if src.Equal(failed) {
			continue
		}
		if err := c.Send(src, dst, ""); err != nil {
			t.Fatal(err)
		}
		sent++
	}
	c.Drain()
	c.Stop()

	snap := reg.Snapshot()
	if got := snap.Counter("dn_cluster_messages_sent_total"); got != int64(sent) {
		t.Errorf("sent = %d, want %d", got, sent)
	}
	delivered := snap.Counter("dn_cluster_messages_delivered_total")
	dropped := snap.Counter("dn_cluster_messages_dropped_total")
	if delivered+dropped != int64(sent) {
		t.Errorf("delivered %d + dropped %d != sent %d", delivered, dropped, sent)
	}
	if byReason := snap.CounterSum("dn_cluster_drops_total"); byReason != dropped {
		t.Errorf("drops by reason sum to %d, dropped counter says %d", byReason, dropped)
	}
	if got := snap.Gauge("dn_cluster_inflight"); got != 0 {
		t.Errorf("inflight gauge = %v after drain, want 0", got)
	}
	if snap.Histograms["dn_cluster_queue_wait_ns"].Count == 0 {
		t.Error("queue wait histogram empty with registry attached")
	}
}

// TestTTLZeroMeansFourK covers the documented default: TTL 0 resolves
// to 4k, generous enough that a bi-directional message at d=2, k=6
// survives worst-case adaptive rerouting around a failed site.
func TestTTLZeroMeansFourK(t *testing.T) {
	const d, k = 2, 6
	reg := obs.NewRegistry()
	n, err := New(Config{D: d, K: k, Adaptive: true, Seed: 11, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Config().TTL; got != 4*k {
		t.Fatalf("TTL 0 resolved to %d, want %d", got, 4*k)
	}
	failed := word.MustParse(d, "010101")
	if err := n.FailSite(failed); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	rerouted := 0
	for i := 0; i < 200; i++ {
		src, dst := word.Random(d, k, rng), word.Random(d, k, rng)
		if src.Equal(failed) || dst.Equal(failed) {
			continue
		}
		del, err := n.Send(src, dst, "")
		if err != nil {
			t.Fatal(err)
		}
		if !del.Delivered {
			t.Fatalf("%v -> %v dropped (%s %s) under adaptive rerouting with TTL %d",
				src, dst, del.DropReason, del.DropDetail, n.Config().TTL)
		}
		if del.Hops > 4*k {
			t.Fatalf("%v -> %v took %d hops, above TTL %d", src, dst, del.Hops, 4*k)
		}
		rerouted += del.Rerouted
	}
	if rerouted == 0 {
		t.Error("no reroutes triggered; the worst case was not exercised")
	}
	if got := reg.Snapshot().Counter(obs.Label("dn_drops_total", "reason", DropTTLExceeded)); got != 0 {
		t.Errorf("ttl drops = %d before the forced expiry, want 0", got)
	}

	// Force a TTL expiry with a deliberately over-long route and check
	// it lands in its own labelled drop counter.
	// All-1 digits converge on the 111111 self-loop, away from the
	// failed site, so only the TTL can stop the message.
	long := make(core.Path, 4*k+6)
	for i := range long {
		long[i] = core.Hop{Type: core.TypeL, Digit: 1}
	}
	src := word.MustParse(d, "110011")
	del, err := n.Inject(Message{Control: ControlData, Source: src, Dest: word.MustParse(d, "000000"), Route: long})
	if err != nil {
		t.Fatal(err)
	}
	if del.Delivered || del.DropReason != DropTTLExceeded {
		t.Fatalf("over-long route: delivered=%v reason=%q, want TTL drop", del.Delivered, del.DropReason)
	}
	if got := reg.Snapshot().Counter(obs.Label("dn_drops_total", "reason", DropTTLExceeded)); got != 1 {
		t.Errorf("ttl drop counter = %d, want 1", got)
	}
}

// TestNoPackageGlobalRand guards the determinism contract across the
// simulation packages: every random choice must flow from a seeded
// *rand.Rand, so the only math/rand selectors allowed in non-test
// sources are the constructors. The scan covers this package and its
// seeded-simulation siblings (internal/fault documents the same
// guarantee but had no guard before).
func TestNoPackageGlobalRand(t *testing.T) {
	// Zipf/NewZipf are safe by signature: the constructor takes an
	// explicit *rand.Rand, so a Zipf can never draw from the global
	// source.
	allowed := map[string]bool{"New": true, "NewSource": true, "Rand": true, "Source": true, "Zipf": true, "NewZipf": true}
	sel := regexp.MustCompile(`\brand\.(\w+)`)
	dirs := []string{".", "../fault", "../deflect", "../dht", "../serve", "../experiments"}
	for _, dir := range dirs {
		files, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		if len(files) == 0 {
			t.Fatalf("no sources under %s — directory moved?", dir)
		}
		for _, f := range files {
			if strings.HasSuffix(f, "_test.go") {
				continue
			}
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			for _, line := range strings.Split(string(src), "\n") {
				if i := strings.Index(line, "//"); i >= 0 {
					line = line[:i]
				}
				for _, m := range sel.FindAllStringSubmatch(line, -1) {
					if !allowed[m[1]] {
						t.Errorf("%s: package-global rand.%s — use a seeded *rand.Rand", f, m[1])
					}
				}
			}
		}
	}
}

// traceWalk compares the structured trace of one delivery against the
// expected vertex walk.
func traceWalk(t *testing.T, del Delivery, want []word.Word) {
	t.Helper()
	sites := del.TraceSites()
	if len(sites) != len(want) {
		t.Fatalf("%v -> %v: trace has %d sites, path has %d", del.Msg.Source, del.Msg.Dest, len(sites), len(want))
	}
	for i := range sites {
		if !sites[i].Equal(want[i]) {
			t.Fatalf("%v -> %v: trace site %d = %v, path says %v", del.Msg.Source, del.Msg.Dest, i, sites[i], want[i])
		}
	}
}

// expectedWalk recomputes the optimal route for a delivered message
// and expands it to vertices, resolving wildcards with digit 0 (the
// PolicyFirst / non-RandomWildcard default both engines use here).
func expectedWalk(t *testing.T, unidirectional bool, src, dst word.Word) []word.Word {
	t.Helper()
	var route core.Path
	var err error
	if unidirectional {
		route, err = core.RouteDirected(src, dst)
	} else {
		route, err = core.RouteUndirectedLinear(src, dst)
	}
	if err != nil {
		t.Fatal(err)
	}
	conc, err := route.Concrete(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	walk, err := conc.Vertices(src)
	if err != nil {
		t.Fatal(err)
	}
	return walk
}

// TestTraceFidelityNetwork checks, for 100 random pairs in both
// directionalities, that the synchronous engine's structured trace
// reproduces the computed route's site sequence hop for hop.
func TestTraceFidelityNetwork(t *testing.T) {
	for _, uni := range []bool{false, true} {
		n, err := New(Config{D: 2, K: 6, Unidirectional: uni, Trace: true, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 100; i++ {
			src, dst := word.Random(2, 6, rng), word.Random(2, 6, rng)
			del, err := n.Send(src, dst, "")
			if err != nil {
				t.Fatal(err)
			}
			if !del.Delivered {
				t.Fatalf("uni=%v %v -> %v dropped: %s", uni, src, dst, del.DropReason)
			}
			traceWalk(t, del, expectedWalk(t, uni, src, dst))
			if got := del.Trace.Hops(); got != del.Hops {
				t.Fatalf("trace counts %d hops, delivery says %d", got, del.Hops)
			}
		}
	}
}

// TestTraceFidelityCluster runs the same fidelity check through the
// concurrent engine.
func TestTraceFidelityCluster(t *testing.T) {
	c, err := NewCluster(ClusterConfig{D: 2, K: 6, Seed: 7, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 100; i++ {
		if err := c.Send(word.Random(2, 6, rng), word.Random(2, 6, rng), ""); err != nil {
			t.Fatal(err)
		}
	}
	c.Drain()
	c.Stop()
	deliveries := c.Deliveries()
	if len(deliveries) != 100 {
		t.Fatalf("recorded %d deliveries, want 100", len(deliveries))
	}
	for _, del := range deliveries {
		if !del.Delivered {
			t.Fatalf("%v -> %v dropped: %s", del.Msg.Source, del.Msg.Dest, del.DropReason)
		}
		traceWalk(t, del, expectedWalk(t, false, del.Msg.Source, del.Msg.Dest))
	}
}

// TestTraceFidelityAdaptiveFault checks the trace under an injected
// fault with Adaptive set: delivered messages must show a valid walk
// that avoids the failed site, with one trace site per hop.
func TestTraceFidelityAdaptiveFault(t *testing.T) {
	n, err := New(Config{D: 2, K: 6, Adaptive: true, Trace: true, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	failed := word.MustParse(2, "011011")
	if err := n.FailSite(failed); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(19))
	rerouted := 0
	for i := 0; i < 100; i++ {
		src, dst := word.Random(2, 6, rng), word.Random(2, 6, rng)
		if src.Equal(failed) || dst.Equal(failed) {
			continue
		}
		del, err := n.Send(src, dst, "")
		if err != nil {
			t.Fatal(err)
		}
		if !del.Delivered {
			t.Fatalf("%v -> %v dropped: %s %s", src, dst, del.DropReason, del.DropDetail)
		}
		sites := del.TraceSites()
		if len(sites) != del.Hops+1 {
			t.Fatalf("%v -> %v: %d trace sites for %d hops", src, dst, len(sites), del.Hops)
		}
		if !sites[0].Equal(src) || !sites[len(sites)-1].Equal(dst) {
			t.Fatalf("%v -> %v: trace runs %v .. %v", src, dst, sites[0], sites[len(sites)-1])
		}
		for j := 1; j < len(sites); j++ {
			if sites[j].Equal(failed) {
				t.Fatalf("%v -> %v: trace crosses failed site %v", src, dst, failed)
			}
			if _, ok := core.HopBetween(sites[j-1], sites[j]); !ok {
				t.Fatalf("%v -> %v: %v and %v are not neighbors", src, dst, sites[j-1], sites[j])
			}
		}
		rerouted += del.Rerouted
	}
	if rerouted == 0 {
		t.Error("no reroutes observed; the fault was never in the way")
	}
}
