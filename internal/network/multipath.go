package network

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/word"
)

// SendMultipath delivers one message per payload from src to dst,
// rotating through up to width distinct shortest routes (the optimal
// anchor shapes of core.MultiRouteUndirected). Every copy still takes
// D(src,dst) hops; repeated traffic between one pair spreads across
// parallel shortest paths instead of hammering one. Only available on
// bi-directional networks (the uni-directional shortest path shape is
// unique up to nothing — Algorithm 1's route is THE route).
func (n *Network) SendMultipath(src, dst word.Word, payloads []string, width int) ([]Delivery, error) {
	if n.cfg.Unidirectional {
		return nil, fmt.Errorf("network: multipath needs the bi-directional network")
	}
	if len(payloads) == 0 {
		return nil, fmt.Errorf("network: no payloads")
	}
	if width < 1 {
		width = 1
	}
	if _, err := n.vertex(src); err != nil {
		return nil, err
	}
	if _, err := n.vertex(dst); err != nil {
		return nil, err
	}
	routes, err := core.MultiRouteUndirected(src, dst, width)
	if err != nil {
		return nil, err
	}
	out := make([]Delivery, 0, len(payloads))
	for i, payload := range payloads {
		msg := Message{
			Control: ControlData,
			Source:  src,
			Dest:    dst,
			Route:   routes[i%len(routes)],
			Payload: payload,
		}
		del, err := n.Inject(msg)
		if err != nil {
			return nil, err
		}
		out = append(out, del)
	}
	return out, nil
}
