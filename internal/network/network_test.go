package network

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/word"
)

func mustNet(t *testing.T, cfg Config) *Network {
	t.Helper()
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestSendDeliversWithOptimalHops(t *testing.T) {
	// E7: delivered hop counts equal the distance function, for both
	// directionalities, over all pairs of DN(2,4) and DN(3,2).
	for _, cfg := range []Config{
		{D: 2, K: 4, Unidirectional: true},
		{D: 2, K: 4},
		{D: 3, K: 2, Unidirectional: true},
		{D: 3, K: 2},
	} {
		n := mustNet(t, cfg)
		var words []word.Word
		_, err := word.ForEach(cfg.D, cfg.K, func(w word.Word) bool {
			words = append(words, w)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, src := range words {
			for _, dst := range words {
				del, err := n.Send(src, dst, "x")
				if err != nil {
					t.Fatal(err)
				}
				if !del.Delivered {
					t.Fatalf("cfg %+v: %v→%v dropped: %s", cfg, src, dst, del.DropReason)
				}
				var want int
				if cfg.Unidirectional {
					want, err = core.DirectedDistance(src, dst)
				} else {
					want, err = core.UndirectedDistance(src, dst)
				}
				if err != nil {
					t.Fatal(err)
				}
				if del.Hops != want {
					t.Fatalf("cfg %+v: %v→%v took %d hops, want %d", cfg, src, dst, del.Hops, want)
				}
			}
		}
		s := n.Stats()
		if s.Delivered != len(words)*len(words) || s.Dropped != 0 {
			t.Errorf("stats = %+v", s)
		}
	}
}

func TestTraceFollowsGraphEdges(t *testing.T) {
	n := mustNet(t, Config{D: 2, K: 5, Trace: true, Seed: 3, Policy: PolicyRandom{}})
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 50; i++ {
		src, dst := word.Random(2, 5, rng), word.Random(2, 5, rng)
		del, err := n.Send(src, dst, "t")
		if err != nil {
			t.Fatal(err)
		}
		sites := del.TraceSites()
		if len(sites) != del.Hops+1 {
			t.Fatalf("trace %v for %d hops", sites, del.Hops)
		}
		if !sites[0].Equal(src) || !sites[len(sites)-1].Equal(dst) {
			t.Fatalf("trace endpoints %v", sites)
		}
		for j := 1; j < len(sites); j++ {
			if _, ok := core.HopBetween(sites[j-1], sites[j]); !ok {
				t.Fatalf("trace step %v→%v not a shift", sites[j-1], sites[j])
			}
		}
	}
}

func TestSendValidatesAddresses(t *testing.T) {
	n := mustNet(t, Config{D: 2, K: 3})
	if _, err := n.Send(word.MustParse(2, "01"), word.MustParse(2, "010"), "x"); err == nil {
		t.Error("accepted wrong-length source")
	}
	if _, err := n.Send(word.MustParse(2, "010"), word.MustParse(3, "010"), "x"); err == nil {
		t.Error("accepted wrong-base destination")
	}
}

func TestFailedSiteDropsWithoutAdaptive(t *testing.T) {
	n := mustNet(t, Config{D: 2, K: 3})
	src := word.MustParse(2, "000")
	dst := word.MustParse(2, "011")
	// The optimal route 000→001→011 passes through 001; fail it.
	if err := n.FailSite(word.MustParse(2, "001")); err != nil {
		t.Fatal(err)
	}
	del, err := n.Send(src, dst, "x")
	if err != nil {
		t.Fatal(err)
	}
	if del.Delivered {
		t.Error("message delivered through failed site")
	}
	if !strings.Contains(del.DropReason, "failed") {
		t.Errorf("drop reason %q", del.DropReason)
	}
	if n.Stats().Dropped != 1 {
		t.Errorf("stats = %+v", n.Stats())
	}
}

func TestFailedSourceDrops(t *testing.T) {
	n := mustNet(t, Config{D: 2, K: 3})
	src := word.MustParse(2, "000")
	if err := n.FailSite(src); err != nil {
		t.Fatal(err)
	}
	del, err := n.Send(src, word.MustParse(2, "111"), "x")
	if err != nil {
		t.Fatal(err)
	}
	if del.Delivered || del.DropReason != "source failed" {
		t.Errorf("delivery = %+v", del)
	}
}

func TestAdaptiveReroutesAroundFailure(t *testing.T) {
	n := mustNet(t, Config{D: 2, K: 3, Adaptive: true})
	if err := n.FailSite(word.MustParse(2, "001")); err != nil {
		t.Fatal(err)
	}
	src := word.MustParse(2, "000")
	dst := word.MustParse(2, "011")
	del, err := n.Send(src, dst, "x")
	if err != nil {
		t.Fatal(err)
	}
	if !del.Delivered {
		t.Fatalf("adaptive send dropped: %s", del.DropReason)
	}
	if del.Rerouted == 0 {
		t.Error("no reroute recorded")
	}
	if del.Hops < 2 {
		t.Errorf("suspicious hop count %d", del.Hops)
	}
}

func TestRepairSiteRestoresDelivery(t *testing.T) {
	n := mustNet(t, Config{D: 2, K: 3})
	mid := word.MustParse(2, "001")
	if err := n.FailSite(mid); err != nil {
		t.Fatal(err)
	}
	if n.FailedSites() != 1 {
		t.Error("FailedSites != 1")
	}
	if err := n.RepairSite(mid); err != nil {
		t.Fatal(err)
	}
	del, err := n.Send(word.MustParse(2, "000"), word.MustParse(2, "011"), "x")
	if err != nil {
		t.Fatal(err)
	}
	if !del.Delivered {
		t.Errorf("dropped after repair: %s", del.DropReason)
	}
}

func TestUnidirectionalRejectsTypeRRoutes(t *testing.T) {
	n := mustNet(t, Config{D: 2, K: 3, Unidirectional: true})
	msg := Message{
		Control: ControlData,
		Source:  word.MustParse(2, "000"),
		Dest:    word.MustParse(2, "100"),
		Route:   core.Path{core.R(1)},
	}
	del, err := n.Inject(msg)
	if err != nil {
		t.Fatal(err)
	}
	if del.Delivered || !strings.Contains(del.DropReason, "type-R") {
		t.Errorf("delivery = %+v", del)
	}
}

func TestInjectCustomSuboptimalRoute(t *testing.T) {
	// A valid but longer route still delivers, with its own length.
	n := mustNet(t, Config{D: 2, K: 2})
	src := word.MustParse(2, "00")
	dst := word.MustParse(2, "00")
	route := core.Path{core.L(1), core.R(0)} // 00→01→00
	del, err := n.Inject(Message{Control: ControlData, Source: src, Dest: dst, Route: route})
	if err != nil {
		t.Fatal(err)
	}
	if !del.Delivered || del.Hops != 2 {
		t.Errorf("delivery = %+v", del)
	}
}

func TestRouteExhaustedDrop(t *testing.T) {
	n := mustNet(t, Config{D: 2, K: 2})
	del, err := n.Inject(Message{
		Control: ControlData,
		Source:  word.MustParse(2, "00"),
		Dest:    word.MustParse(2, "11"),
		Route:   core.Path{core.L(1)}, // stops at 01
	})
	if err != nil {
		t.Fatal(err)
	}
	if del.Delivered || !strings.Contains(del.DropReason, "route exhausted") {
		t.Errorf("delivery = %+v", del)
	}
}

func TestTTLBound(t *testing.T) {
	n := mustNet(t, Config{D: 2, K: 2, TTL: 2})
	// A 3-hop custom loop exceeds TTL 2.
	route := core.Path{core.L(1), core.L(0), core.L(0)}
	del, err := n.Inject(Message{
		Control: ControlData,
		Source:  word.MustParse(2, "00"),
		Dest:    word.MustParse(2, "00"),
		Route:   route,
	})
	if err != nil {
		t.Fatal(err)
	}
	if del.Delivered || del.DropReason != "ttl exceeded" {
		t.Errorf("delivery = %+v", del)
	}
	if _, err := New(Config{D: 2, K: 4, TTL: 2}); err == nil {
		t.Error("accepted TTL below diameter")
	}
}

func TestLinkLoadAccounting(t *testing.T) {
	n := mustNet(t, Config{D: 2, K: 2})
	src := word.MustParse(2, "00")
	dst := word.MustParse(2, "01")
	for i := 0; i < 5; i++ {
		if _, err := n.Send(src, dst, "x"); err != nil {
			t.Fatal(err)
		}
	}
	load, err := n.LinkLoad(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if load != 5 {
		t.Errorf("link load = %d, want 5", load)
	}
	s := n.Stats()
	if s.MaxLinkLoad != 5 || s.MaxSiteLoad != 5 {
		t.Errorf("stats = %+v", s)
	}
	n.ResetStats()
	if n.Stats().MaxLinkLoad != 0 || n.Stats().Delivered != 0 {
		t.Error("ResetStats incomplete")
	}
}

func TestPolicyLeastLoadedSpreadsTraffic(t *testing.T) {
	// E7: wildcard hops occur in the middle blocks of Algorithm 2/4
	// routes; resolving them least-loaded must spread traffic (lower
	// Gini) versus always choosing digit 0. (Max link load toward a
	// hotspot is a structural bottleneck — the final hop is concrete —
	// so the whole-network Gini is the discriminating metric.)
	run := func(p Policy) (int, float64) {
		n := mustNet(t, Config{D: 2, K: 6, Policy: p, Seed: 17})
		sum, err := RunWorkload(n, Uniform{D: 2, K: 6}, 3000)
		if err != nil {
			t.Fatal(err)
		}
		if sum.Dropped != 0 {
			t.Fatalf("policy %s dropped %d", p.Name(), sum.Dropped)
		}
		return sum.Net.MaxLinkLoad, sum.Net.LoadGini
	}
	firstMax, firstGini := run(PolicyFirst{})
	llMax, llGini := run(PolicyLeastLoaded{})
	if llGini >= firstGini {
		t.Errorf("least-loaded Gini %v not below first-digit %v", llGini, firstGini)
	}
	if llMax > firstMax {
		t.Errorf("least-loaded max link load %d above first-digit %d", llMax, firstMax)
	}
}

func TestPolicyRandomDeterministicBySeed(t *testing.T) {
	run := func() Stats {
		n := mustNet(t, Config{D: 2, K: 5, Policy: PolicyRandom{}, Seed: 23})
		if _, err := RunWorkload(n, Uniform{D: 2, K: 5}, 500); err != nil {
			t.Fatal(err)
		}
		return n.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("runs differ: %+v vs %+v", a, b)
	}
}

func TestWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u := Uniform{D: 2, K: 4}
	s, d := u.Next(rng)
	if s.Len() != 4 || d.Len() != 4 {
		t.Error("uniform workload bad words")
	}
	target := word.MustParse(2, "1111")
	h := Hotspot{D: 2, K: 4, Target: target, Fraction: 1.0}
	_, d = h.Next(rng)
	if !d.Equal(target) {
		t.Error("hotspot fraction 1 missed target")
	}
	b := BitReversal{D: 2, K: 4}
	s, d = b.Next(rng)
	if !d.Equal(s.Reverse()) {
		t.Error("bit reversal mismatch")
	}
	if u.Name() == "" || h.Name() == "" || b.Name() == "" {
		t.Error("workload names empty")
	}
}

func TestRunWorkloadValidates(t *testing.T) {
	n := mustNet(t, Config{D: 2, K: 3})
	if _, err := RunWorkload(n, nil, 5); err == nil {
		t.Error("accepted nil workload")
	}
	if _, err := RunWorkload(n, Uniform{D: 2, K: 3}, 0); err == nil {
		t.Error("accepted zero messages")
	}
}

func TestRunWorkloadSummary(t *testing.T) {
	n := mustNet(t, Config{D: 2, K: 4, Seed: 5})
	sum, err := RunWorkload(n, Uniform{D: 2, K: 4}, 400)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Messages != 400 || sum.Delivered != 400 || sum.Dropped != 0 {
		t.Errorf("summary = %+v", sum)
	}
	if sum.MeanHops <= 0 || sum.MeanHops > 4 || sum.MaxHops > 4 {
		t.Errorf("hops stats: mean %v max %d", sum.MeanHops, sum.MaxHops)
	}
}

func TestFailValidatesAddress(t *testing.T) {
	n := mustNet(t, Config{D: 2, K: 3})
	if err := n.FailSite(word.MustParse(2, "01")); err == nil {
		t.Error("accepted short address")
	}
	if err := n.RepairSite(word.MustParse(3, "010")); err == nil {
		t.Error("accepted wrong base")
	}
}
