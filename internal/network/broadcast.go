package network

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/word"
)

// BroadcastResult reports a one-to-all dissemination.
type BroadcastResult struct {
	// Reached counts sites holding the message at the end (including
	// the source).
	Reached int
	// Rounds is the number of synchronous forwarding rounds.
	Rounds int
	// Messages is the number of link crossings consumed.
	Messages int
}

// FloodBroadcast disseminates from src by flooding: in each
// synchronous round, every site that first received the message in the
// previous round retransmits it on all its outgoing links. Duplicate
// receptions cost messages but add no reach — the baseline a
// tree-based broadcast is compared against. Failed sites neither
// receive nor forward.
func (n *Network) FloodBroadcast(src word.Word) (BroadcastResult, error) {
	srcV, err := n.vertex(src)
	if err != nil {
		return BroadcastResult{}, err
	}
	if n.failed[srcV] {
		return BroadcastResult{}, fmt.Errorf("network: broadcast source %v failed", src)
	}
	informed := make([]bool, n.g.NumVertices())
	informed[srcV] = true
	frontier := []int32{int32(srcV)}
	res := BroadcastResult{Reached: 1}
	for len(frontier) > 0 {
		var next []int32
		for _, u := range frontier {
			for _, v := range n.g.OutNeighbors(int(u)) {
				if n.failed[int(v)] {
					continue
				}
				res.Messages++
				n.linkLoad[[2]int{int(u), int(v)}]++
				n.siteLoad[v]++
				if !informed[v] {
					informed[v] = true
					res.Reached++
					next = append(next, v)
				}
			}
		}
		if len(next) > 0 {
			res.Rounds++
		}
		frontier = next
	}
	return res, nil
}

// TreeBroadcast disseminates from src along a breadth-first spanning
// tree of the live topology: every site receives the message exactly
// once, so Messages = Reached - 1 and Rounds equals the source's
// eccentricity — the efficient alternative flooding is measured
// against. (On the binary network, the §1 Samatham–Pradhan complete
// binary tree embedding realizes the same bound for the tree's nodes;
// the BFS tree covers every site of any DN(d,k).)
func (n *Network) TreeBroadcast(src word.Word) (BroadcastResult, error) {
	srcV, err := n.vertex(src)
	if err != nil {
		return BroadcastResult{}, err
	}
	if n.failed[srcV] {
		return BroadcastResult{}, fmt.Errorf("network: broadcast source %v failed", src)
	}
	informed := make([]bool, n.g.NumVertices())
	informed[srcV] = true
	frontier := []int32{int32(srcV)}
	res := BroadcastResult{Reached: 1}
	for len(frontier) > 0 {
		var next []int32
		for _, u := range frontier {
			for _, v := range n.g.OutNeighbors(int(u)) {
				if n.failed[int(v)] || informed[v] {
					continue
				}
				informed[v] = true
				res.Reached++
				res.Messages++
				n.linkLoad[[2]int{int(u), int(v)}]++
				n.siteLoad[v]++
				next = append(next, v)
			}
		}
		if len(next) > 0 {
			res.Rounds++
		}
		frontier = next
	}
	return res, nil
}

// Multicast delivers one message from src to every destination in
// dsts along the union of optimal source routes (shared prefixes are
// transmitted once). Returns the link crossings used and the number of
// destinations reached; failed sites on a route drop that branch
// unless the network is adaptive.
func (n *Network) Multicast(src word.Word, dsts []word.Word) (BroadcastResult, error) {
	srcV, err := n.vertex(src)
	if err != nil {
		return BroadcastResult{}, err
	}
	if n.failed[srcV] {
		return BroadcastResult{}, fmt.Errorf("network: multicast source %v failed", src)
	}
	usedLinks := make(map[[2]int]bool)
	reached := make(map[int]bool)
	res := BroadcastResult{}
	maxDepth := 0
	for _, dst := range dsts {
		dstV, err := n.vertex(dst)
		if err != nil {
			return BroadcastResult{}, err
		}
		if n.failed[dstV] {
			continue
		}
		route, err := n.Route(src, dst)
		if err != nil {
			return BroadcastResult{}, err
		}
		// Wildcards resolve to digit 0 so shared route prefixes
		// coincide and are transmitted once (a fixed multicast tree).
		conc, err := route.Concrete(src, nil)
		if err != nil {
			return BroadcastResult{}, err
		}
		walk, err := conc.Vertices(src)
		if err != nil {
			return BroadcastResult{}, err
		}
		blocked := false
		for _, w := range walk[1:] {
			if n.failed[graph.DeBruijnVertex(w)] {
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		if !reached[dstV] {
			reached[dstV] = true
			res.Reached++
		}
		if len(walk)-1 > maxDepth {
			maxDepth = len(walk) - 1
		}
		for i := 1; i < len(walk); i++ {
			link := [2]int{graph.DeBruijnVertex(walk[i-1]), graph.DeBruijnVertex(walk[i])}
			if !usedLinks[link] {
				usedLinks[link] = true
				res.Messages++
				n.linkLoad[link]++
				n.siteLoad[link[1]]++
			}
		}
	}
	res.Rounds = maxDepth
	return res, nil
}
