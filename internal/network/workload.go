package network

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/word"
)

// Workload generates source/destination pairs for traffic experiments.
type Workload interface {
	// Next draws one src→dst pair from rng.
	Next(rng *rand.Rand) (src, dst word.Word)
	// Name identifies the workload in experiment output.
	Name() string
}

// Uniform draws source and destination independently and uniformly —
// the all-to-all background traffic of experiment E7.
type Uniform struct {
	D, K int
}

// Next implements Workload.
func (u Uniform) Next(rng *rand.Rand) (word.Word, word.Word) {
	return word.Random(u.D, u.K, rng), word.Random(u.D, u.K, rng)
}

// Name implements Workload.
func (u Uniform) Name() string { return "uniform" }

// Hotspot sends a fraction of the traffic to one destination site and
// the rest uniformly — the congestion workload that separates wildcard
// policies.
type Hotspot struct {
	D, K     int
	Target   word.Word
	Fraction float64 // in [0,1]
}

// Next implements Workload.
func (h Hotspot) Next(rng *rand.Rand) (word.Word, word.Word) {
	src := word.Random(h.D, h.K, rng)
	if rng.Float64() < h.Fraction {
		return src, h.Target
	}
	return src, word.Random(h.D, h.K, rng)
}

// Name implements Workload.
func (h Hotspot) Name() string { return "hotspot" }

// BitReversal pairs each source with its digit-reversed word — a
// classical adversarial permutation for shift-based topologies.
type BitReversal struct {
	D, K int
}

// Next implements Workload.
func (b BitReversal) Next(rng *rand.Rand) (word.Word, word.Word) {
	src := word.Random(b.D, b.K, rng)
	return src, src.Reverse()
}

// Name implements Workload.
func (b BitReversal) Name() string { return "bit-reversal" }

// Summary aggregates a workload run.
type Summary struct {
	Messages  int
	Delivered int
	Dropped   int
	MeanHops  float64
	MaxHops   int
	Rerouted  int
	Net       Stats
}

// RunWorkload pushes count messages from the workload through the
// network and aggregates the results. The network's seeded generator
// drives the draws, so runs are reproducible.
func RunWorkload(n *Network, w Workload, count int) (Summary, error) {
	if w == nil {
		return Summary{}, errors.New("network: nil workload")
	}
	if count < 1 {
		return Summary{}, fmt.Errorf("network: need at least one message, got %d", count)
	}
	var sum Summary
	totalHops := 0
	for i := 0; i < count; i++ {
		src, dst := w.Next(n.rng)
		del, err := n.Send(src, dst, fmt.Sprintf("%s-%d", w.Name(), i))
		if err != nil {
			return Summary{}, err
		}
		sum.Messages++
		if del.Delivered {
			sum.Delivered++
			totalHops += del.Hops
			if del.Hops > sum.MaxHops {
				sum.MaxHops = del.Hops
			}
		} else {
			sum.Dropped++
		}
		sum.Rerouted += del.Rerouted
	}
	if sum.Delivered > 0 {
		sum.MeanHops = float64(totalHops) / float64(sum.Delivered)
	}
	sum.Net = n.Stats()
	return sum, nil
}
