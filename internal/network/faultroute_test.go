package network

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/word"
)

func faultNet(t *testing.T, d, k int, reg *obs.Registry) *Network {
	t.Helper()
	n, err := New(Config{D: d, K: k, FaultRoute: true, Seed: 1, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func wordOf(t *testing.T, d, k, v int) word.Word {
	t.Helper()
	w, err := graph.DeBruijnWord(d, k, v)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// Fewer than FaultTrees failed links: every message still delivers,
// by both entries (optimal-until-contact Send and pure
// SendFaultRouted), within the walk's hop bound.
func TestFaultRouteDeliversUnderLinkFailures(t *testing.T) {
	reg := obs.NewRegistry()
	d, k := 3, 3
	nw := faultNet(t, d, k, reg)
	fr := nw.FaultRouter()
	g := nw.Graph()
	rng := rand.New(rand.NewSource(5))
	sites := nw.NumSites()

	// Fail Trees-1 distinct links (2 arcs each is fine: the guarantee
	// is per-arc, but these tests assert empirically via the oracle
	// replay — every delivery must be real, every drop explained).
	failedLinks := 0
	for failedLinks < fr.Trees()-1 {
		u := rng.Intn(sites)
		nbrs := g.OutNeighbors(u)
		v := int(nbrs[rng.Intn(len(nbrs))])
		uw, vw := wordOf(t, d, k, u), wordOf(t, d, k, v)
		if err := nw.FailLink(uw, vw); err != nil {
			t.Fatal(err)
		}
		failedLinks++
	}

	sent, delivered := 0, 0
	for trial := 0; trial < 300; trial++ {
		s, dst := rng.Intn(sites), rng.Intn(sites)
		sw, dw := wordOf(t, d, k, s), wordOf(t, d, k, dst)
		for _, send := range []func() (Delivery, error){
			func() (Delivery, error) { return nw.Send(sw, dw, "x") },
			func() (Delivery, error) { return nw.SendFaultRouted(sw, dw, "x") },
		} {
			del, err := send()
			if err != nil {
				t.Fatal(err)
			}
			sent++
			if !del.Delivered {
				t.Fatalf("%v→%v dropped under tolerable failures: %s (%s)", sw, dw, del.DropReason, del.DropDetail)
			}
			delivered++
			if del.Hops > fr.HopBound() {
				t.Fatalf("%v→%v took %d hops, bound %d", sw, dw, del.Hops, fr.HopBound())
			}
		}
	}
	if snap := reg.Snapshot(); snap.Counters[metricSent] != int64(sent) ||
		snap.Counters[metricDelivered] != int64(delivered) {
		t.Fatalf("conservation: sent=%d delivered=%d, registry %v / %v",
			sent, delivered, snap.Counters[metricSent], snap.Counters[metricDelivered])
	}
}

// A failed link on the clean optimal route must trigger the detour
// (visible as Rerouted and the tree-switch counter), and repairing it
// must restore the optimal path.
func TestFaultRouteDetourAndRepair(t *testing.T) {
	d, k := 2, 4
	nw := faultNet(t, d, k, nil)
	src := word.MustParse(d, "0000")
	dst := word.MustParse(d, "1111")

	clean, err := nw.Send(src, dst, "x")
	if err != nil {
		t.Fatal(err)
	}
	if !clean.Delivered || clean.Rerouted != 0 {
		t.Fatalf("clean send: %+v", clean)
	}

	// Fail the first link of the optimal route.
	route, err := nw.Route(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	first, err := route[:1].Apply(src, core.FirstDigit)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.FailLink(src, first); err != nil {
		t.Fatal(err)
	}

	det, err := nw.Send(src, dst, "x")
	if err != nil {
		t.Fatal(err)
	}
	if !det.Delivered {
		t.Fatalf("detour send dropped: %s (%s)", det.DropReason, det.DropDetail)
	}
	if det.Rerouted == 0 {
		t.Fatalf("failed link on the optimal route did not trigger a detour")
	}
	if det.Hops < clean.Hops {
		t.Fatalf("detour %d hops beat the optimal %d", det.Hops, clean.Hops)
	}

	if err := nw.RepairLink(src, first); err != nil {
		t.Fatal(err)
	}
	again, err := nw.Send(src, dst, "x")
	if err != nil {
		t.Fatal(err)
	}
	if !again.Delivered || again.Rerouted != 0 || again.Hops != clean.Hops {
		t.Fatalf("after repair: %+v, want clean %d-hop delivery", again, clean.Hops)
	}
}

// Without FaultRoute, a failed link is an explicit drop with its own
// reason — and conservation still holds.
func TestLinkFailureDropsWithoutFaultRoute(t *testing.T) {
	reg := obs.NewRegistry()
	d, k := 2, 3
	nw, err := New(Config{D: d, K: k, Seed: 1, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	src := word.MustParse(d, "000")
	dst := word.MustParse(d, "111")
	route, err := nw.Route(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	first, err := route[:1].Apply(src, core.FirstDigit)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.FailLink(src, first); err != nil {
		t.Fatal(err)
	}
	del, err := nw.Send(src, dst, "x")
	if err != nil {
		t.Fatal(err)
	}
	if del.Delivered || del.DropReason != DropLinkFailed {
		t.Fatalf("want DropLinkFailed, got %+v", del)
	}
	snap := reg.Snapshot()
	if snap.Counters[obs.Label(metricDrops, "reason", DropLinkFailed)] != 1 {
		t.Fatalf("link-failed drop not counted: %v", snap.Counters)
	}
	if snap.Counters[metricSent] != snap.Counters[metricDelivered]+snap.Counters[metricDropped] {
		t.Fatalf("conservation broken: %v", snap.Counters)
	}
}

// Overwhelming failures (every link at the source down) must produce
// an explicit DropNoDetour, never a hang or an unexplained loss.
func TestFaultRouteNoDetourExplicit(t *testing.T) {
	d, k := 2, 3
	nw := faultNet(t, d, k, nil)
	src := word.MustParse(d, "010")
	dst := word.MustParse(d, "111")
	srcV := graph.DeBruijnVertex(src)
	for _, v := range nw.Graph().OutNeighbors(srcV) {
		if err := nw.FailLink(src, wordOf(t, d, k, int(v))); err != nil {
			t.Fatal(err)
		}
	}
	del, err := nw.SendFaultRouted(src, dst, "x")
	if err != nil {
		t.Fatal(err)
	}
	if del.Delivered || del.DropReason != DropNoDetour {
		t.Fatalf("want DropNoDetour, got %+v", del)
	}
	if del.DropDetail == "" {
		t.Fatalf("no-detour drop lacks the walk reason")
	}
}

// Failed sites are handled by the same failover: messages detour
// around them, and messages *to* them drop with the site reason.
func TestFaultRouteAroundFailedSite(t *testing.T) {
	d, k := 3, 2
	nw := faultNet(t, d, k, nil)
	rng := rand.New(rand.NewSource(3))
	bad := wordOf(t, d, k, 4)
	if err := nw.FailSite(bad); err != nil {
		t.Fatal(err)
	}
	sites := nw.NumSites()
	for trial := 0; trial < 200; trial++ {
		s, dst := rng.Intn(sites), rng.Intn(sites)
		if s == 4 {
			continue
		}
		del, err := nw.SendFaultRouted(wordOf(t, d, k, s), wordOf(t, d, k, dst), "x")
		if err != nil {
			t.Fatal(err)
		}
		if dst == 4 {
			if del.Delivered || del.DropReason != DropSiteFailed {
				t.Fatalf("send to failed site: %+v", del)
			}
			continue
		}
		// One failed site of degree 2d-2 exceeds the per-arc tolerance
		// in principle, but DG(3,2) keeps min-degree connectivity high
		// enough that the walk should still find its way; accept
		// explicit no-detour drops, reject anything unexplained.
		if !del.Delivered && del.DropReason != DropNoDetour {
			t.Fatalf("unexplained drop: %+v", del)
		}
	}
}

func TestFaultRouteRejectsUnidirectional(t *testing.T) {
	if _, err := New(Config{D: 2, K: 3, Unidirectional: true, FaultRoute: true}); err == nil {
		t.Fatal("unidirectional fault routing accepted")
	}
}
