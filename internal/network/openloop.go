package network

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/word"
)

// Open-loop load/latency simulation: messages arrive continuously at a
// configured rate (per site per round) for a warm/measure window, and
// the engine reports steady-state latency — the latency-vs-offered-load
// curve that characterizes an interconnection network. Complements the
// closed batch engine (Contention): there the backlog drains, here the
// arrival process pushes the network toward saturation.

// OpenLoopConfig parameterizes an open-loop run.
type OpenLoopConfig struct {
	D, K int
	// Rate is the expected number of new messages per site per round
	// (Bernoulli arrivals per site).
	Rate float64
	// Rounds is the measurement window; messages injected within it
	// are tracked to delivery (the run continues past the window until
	// all tracked messages drain).
	Rounds int
	// LinkCapacity per round; defaults to 1.
	LinkCapacity int
	// Seed drives arrivals, destinations and wildcard resolution.
	Seed int64
	// MaxRounds aborts unstable runs (offered load beyond capacity);
	// defaults to 40·Rounds + 64·k.
	MaxRounds int
}

// OpenLoopResult summarizes an open-loop run.
type OpenLoopResult struct {
	Offered      int // messages injected during the window
	Delivered    int
	MeanLatency  float64 // rounds from injection to delivery
	P95Latency   int
	MaxLatency   int
	MeanSlowdown float64 // latency / hop-count, ≥ 1
	Saturated    bool    // true when the run hit MaxRounds undrained
}

type openMsg struct {
	walk     []word.Word
	pos      int
	injected int
	queue    int
}

// RunOpenLoop executes the open-loop simulation. When the offered
// load exceeds what the topology can carry, the run reports
// Saturated=true with statistics over the messages that did deliver.
func RunOpenLoop(cfg OpenLoopConfig) (OpenLoopResult, error) {
	if _, err := word.Count(cfg.D, cfg.K); err != nil {
		return OpenLoopResult{}, fmt.Errorf("network: %w", err)
	}
	if cfg.Rate <= 0 {
		return OpenLoopResult{}, errors.New("network: rate must be positive")
	}
	if cfg.Rounds < 1 {
		return OpenLoopResult{}, errors.New("network: need at least one round")
	}
	if cfg.LinkCapacity == 0 {
		cfg.LinkCapacity = 1
	}
	if cfg.LinkCapacity < 1 {
		return OpenLoopResult{}, errors.New("network: link capacity must be positive")
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = 40*cfg.Rounds + 64*cfg.K
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n, err := word.Count(cfg.D, cfg.K)
	if err != nil {
		return OpenLoopResult{}, err
	}
	sites := make([]word.Word, n)
	for i := range sites {
		w, err := word.Unrank(cfg.D, cfg.K, uint64(i))
		if err != nil {
			return OpenLoopResult{}, err
		}
		sites[i] = w
	}
	var res OpenLoopResult
	var latency, slowdown stats.Accumulator
	var p95 stats.Histogram
	var inflight []*openMsg
	arrival := 0
	remaining := 0
	for round := 1; ; round++ {
		if round > cfg.MaxRounds {
			res.Saturated = true
			break
		}
		// Arrivals during the measurement window.
		if round <= cfg.Rounds {
			for _, src := range sites {
				if rng.Float64() >= cfg.Rate {
					continue
				}
				dst := word.Random(cfg.D, cfg.K, rng)
				route, err := core.RouteUndirectedLinear(src, dst)
				if err != nil {
					return OpenLoopResult{}, err
				}
				conc, err := route.Concrete(src, func(int, word.Word, core.Hop) byte {
					return byte(rng.Intn(cfg.D))
				})
				if err != nil {
					return OpenLoopResult{}, err
				}
				walk, err := conc.Vertices(src)
				if err != nil {
					return OpenLoopResult{}, err
				}
				res.Offered++
				m := &openMsg{walk: walk, injected: round, queue: arrival}
				arrival++
				if len(walk) == 1 {
					res.Delivered++
					latency.Add(0)
					slowdown.Add(1)
					if err := p95.Add(0); err != nil {
						return OpenLoopResult{}, err
					}
					continue
				}
				inflight = append(inflight, m)
				remaining++
			}
		} else if remaining == 0 {
			break
		}
		// One synchronous forwarding round (same discipline as the
		// batch engine: per-link FIFO with capacity).
		byLink := make(map[[2]int][]*openMsg)
		for _, m := range inflight {
			if m.pos >= len(m.walk)-1 {
				continue
			}
			link := [2]int{
				graph.DeBruijnVertex(m.walk[m.pos]),
				graph.DeBruijnVertex(m.walk[m.pos+1]),
			}
			byLink[link] = append(byLink[link], m)
		}
		links := make([][2]int, 0, len(byLink))
		for link := range byLink {
			links = append(links, link)
		}
		sort.Slice(links, func(i, j int) bool {
			if links[i][0] != links[j][0] {
				return links[i][0] < links[j][0]
			}
			return links[i][1] < links[j][1]
		})
		progressed := false
		for _, link := range links {
			queued := byLink[link]
			sort.Slice(queued, func(i, j int) bool { return queued[i].queue < queued[j].queue })
			moved := cfg.LinkCapacity
			if moved > len(queued) {
				moved = len(queued)
			}
			for _, m := range queued[:moved] {
				m.pos++
				m.queue = arrival
				arrival++
				progressed = true
				if m.pos == len(m.walk)-1 {
					remaining--
					res.Delivered++
					lat := round - m.injected + 1
					latency.Add(float64(lat))
					slowdown.Add(float64(lat) / float64(len(m.walk)-1))
					if err := p95.Add(lat); err != nil {
						return OpenLoopResult{}, err
					}
					if lat > res.MaxLatency {
						res.MaxLatency = lat
					}
				}
			}
		}
		if round > cfg.Rounds && !progressed && remaining > 0 {
			return OpenLoopResult{}, errors.New("network: open loop stalled (internal error)")
		}
		// Compact delivered messages occasionally.
		if len(inflight) > 4096 {
			kept := inflight[:0]
			for _, m := range inflight {
				if m.pos < len(m.walk)-1 {
					kept = append(kept, m)
				}
			}
			inflight = kept
		}
	}
	res.MeanLatency = latency.Mean()
	res.MeanSlowdown = slowdown.Mean()
	res.P95Latency = p95.Quantile(0.95)
	return res, nil
}
