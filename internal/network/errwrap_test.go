package network

import (
	"errors"
	"testing"

	"repro/internal/word"
)

// TestWireFieldErrorsWrapCause pins the %w chain of the wire decoder:
// a corrupt address digit must surface both the package-level
// ErrWireField and the underlying word validation error, so callers
// can classify failures without string matching.
func TestWireFieldErrorsWrapCause(t *testing.T) {
	src := word.MustParse(2, "0110")
	dst := word.MustParse(2, "1001")
	buf, err := MarshalMessage(Message{Source: src, Dest: dst})
	if err != nil {
		t.Fatal(err)
	}
	// Header is magic(2) control(1) d(1) k(2); source digits follow.
	const srcOff = 6
	k := src.Len()

	corrupt := append([]byte(nil), buf...)
	corrupt[srcOff] = 9 // digit 9 in base 2
	_, err = UnmarshalMessage(corrupt)
	if !errors.Is(err, ErrWireField) {
		t.Fatalf("source corruption: err = %v, want ErrWireField", err)
	}
	if !errors.Is(err, word.ErrBadDigit) {
		t.Fatalf("source corruption: err = %v does not expose word.ErrBadDigit", err)
	}

	corrupt = append([]byte(nil), buf...)
	corrupt[srcOff+k] = 9 // first dest digit
	_, err = UnmarshalMessage(corrupt)
	if !errors.Is(err, ErrWireField) || !errors.Is(err, word.ErrBadDigit) {
		t.Fatalf("dest corruption: err = %v, want ErrWireField wrapping word.ErrBadDigit", err)
	}
}
