package network

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/word"
)

// SendDestinationRouted forwards a message with destination-based
// self-routing: the header carries no path field; every site derives
// its next hop locally from (current site, destination) with the
// distance functions (core.NextHopDirected / NextHopUndirected),
// resolving wildcard decisions with the configured policy. Hop counts
// match source-routed delivery exactly — per-hop recomputation
// contracts the distance by one regardless of wildcard resolution.
func (n *Network) SendDestinationRouted(src, dst word.Word, payload string) (Delivery, error) {
	srcV, err := n.vertex(src)
	if err != nil {
		return Delivery{}, err
	}
	if _, err := n.vertex(dst); err != nil {
		return Delivery{}, err
	}
	msg := Message{Control: ControlData, Source: src, Dest: dst, Payload: payload}
	del := Delivery{Msg: msg}
	if n.cfg.Trace {
		del.Trace = append(del.Trace, src)
	}
	if n.failed[srcV] {
		del.DropReason = "source failed"
		n.dropped++
		return del, nil
	}
	cur := src
	for {
		if cur.Equal(dst) {
			del.Delivered = true
			n.delivered++
			n.totalHops += del.Hops
			return del, nil
		}
		if del.Hops >= n.cfg.TTL {
			del.DropReason = "ttl exceeded"
			n.dropped++
			return del, nil
		}
		var hop core.Hop
		var more bool
		if n.cfg.Unidirectional {
			hop, more, err = core.NextHopDirected(cur, dst)
		} else {
			hop, more, err = core.NextHopUndirected(cur, dst)
		}
		if err != nil {
			return Delivery{}, err
		}
		if !more {
			// Unreachable: cur != dst was checked above.
			return Delivery{}, fmt.Errorf("network: next-hop reported done at %v ≠ %v", cur, dst)
		}
		digit := hop.Digit
		if hop.Wildcard {
			digit = n.cfg.Policy.Choose(n, cur, hop)
			if int(digit) >= n.cfg.D {
				return Delivery{}, fmt.Errorf("network: policy chose digit %d outside base %d", digit, n.cfg.D)
			}
		}
		var next word.Word
		if hop.Type == core.TypeL {
			next = cur.ShiftLeft(digit)
		} else {
			next = cur.ShiftRight(digit)
		}
		nextV := graph.DeBruijnVertex(next)
		if n.failed[nextV] {
			if !n.cfg.Adaptive {
				del.DropReason = fmt.Sprintf("next site %v failed", next)
				n.dropped++
				return del, nil
			}
			// Failure fallback: a purely greedy single-step detour can
			// ping-pong against the failed region, so the site attaches
			// a full failure-avoiding source route and the message
			// follows it to the destination (bounded, loop-free).
			detour, ok := n.rerouteAround(cur, dst)
			if !ok {
				del.DropReason = fmt.Sprintf("no route around failures from %v", cur)
				n.dropped++
				return del, nil
			}
			del.Rerouted++
			prefixHops := del.Hops
			sub, err := n.Inject(Message{Control: msg.Control, Source: cur, Dest: dst, Route: detour, Payload: payload})
			if err != nil {
				return Delivery{}, err
			}
			del.Hops += sub.Hops
			del.Delivered = sub.Delivered
			del.DropReason = sub.DropReason
			del.Rerouted += sub.Rerouted
			if n.cfg.Trace && len(sub.Trace) > 1 {
				del.Trace = append(del.Trace, sub.Trace[1:]...)
			}
			// Inject counted the tail (delivery and sub.Hops); account
			// for the prefix hops walked before the failure was met.
			if sub.Delivered {
				n.totalHops += prefixHops
			}
			return del, nil
		}
		curV := graph.DeBruijnVertex(cur)
		n.linkLoad[[2]int{curV, nextV}]++
		n.siteLoad[nextV]++
		del.Hops++
		cur = next
		if n.cfg.Trace {
			del.Trace = append(del.Trace, cur)
		}
	}
}
