package network

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/word"
)

// SendDestinationRouted forwards a message with destination-based
// self-routing: the header carries no path field; every site derives
// its next hop locally from (current site, destination) with the
// distance functions (core.NextHopDirected / NextHopUndirected),
// resolving wildcard decisions with the configured policy. Hop counts
// match source-routed delivery exactly — per-hop recomputation
// contracts the distance by one regardless of wildcard resolution.
func (n *Network) SendDestinationRouted(src, dst word.Word, payload string) (Delivery, error) {
	srcV, err := n.vertex(src)
	if err != nil {
		return Delivery{}, err
	}
	if _, err := n.vertex(dst); err != nil {
		return Delivery{}, err
	}
	n.m.sent.Inc()
	msg := Message{Control: ControlData, Source: src, Dest: dst, Payload: payload}
	del := Delivery{Msg: msg}
	if n.cfg.Trace {
		del.Trace = append(del.Trace, obs.HopEvent{
			Cause: obs.CauseInject, Site: src.String(), Digit: -1,
		})
	}
	if n.failed[srcV] {
		n.drop(&del, src, DropSourceFailed, "")
		return del, nil
	}
	cur := src
	for {
		if cur.Equal(dst) {
			n.deliver(&del, cur)
			return del, nil
		}
		if del.Hops >= n.cfg.TTL {
			n.drop(&del, cur, DropTTLExceeded, fmt.Sprintf("ttl %d at %v", n.cfg.TTL, cur))
			return del, nil
		}
		var hop core.Hop
		var more bool
		if n.cfg.Unidirectional {
			hop, more, err = core.NextHopDirected(cur, dst)
		} else {
			hop, more, err = core.NextHopUndirected(cur, dst)
		}
		if err != nil {
			return Delivery{}, err
		}
		if !more {
			// Unreachable: cur != dst was checked above.
			return Delivery{}, fmt.Errorf("network: next-hop reported done at %v ≠ %v", cur, dst)
		}
		digit := hop.Digit
		if hop.Wildcard {
			digit = n.cfg.Policy.Choose(n, cur, hop)
			if int(digit) >= n.cfg.D {
				return Delivery{}, fmt.Errorf("network: policy chose digit %d outside base %d", digit, n.cfg.D)
			}
		}
		var next word.Word
		if hop.Type == core.TypeL {
			next = cur.ShiftLeft(digit)
		} else {
			next = cur.ShiftRight(digit)
		}
		nextV := graph.DeBruijnVertex(next)
		if n.failed[nextV] {
			if !n.cfg.Adaptive {
				n.drop(&del, cur, DropSiteFailed, fmt.Sprintf("next site %v", next))
				return del, nil
			}
			// Failure fallback: a purely greedy single-step detour can
			// ping-pong against the failed region, so the site attaches
			// a full failure-avoiding source route and the message
			// follows it to the destination (bounded, loop-free).
			detour, ok := n.rerouteAround(cur, dst)
			if !ok {
				n.drop(&del, cur, DropNoReroute, fmt.Sprintf("from %v", cur))
				return del, nil
			}
			del.Rerouted++
			n.m.reroutes.Inc()
			if n.cfg.Trace {
				del.Trace = append(del.Trace, obs.HopEvent{
					Hop: del.Hops, Cause: obs.CauseReroute, Site: cur.String(),
					Digit: -1, Detail: fmt.Sprintf("next site %v failed", next),
				})
			}
			prefixHops := del.Hops
			// forward (not Inject): the tail continuation is the same
			// message, already counted as sent.
			sub, err := n.forward(Message{Control: msg.Control, Source: cur, Dest: dst, Route: detour, Payload: payload})
			if err != nil {
				return Delivery{}, err
			}
			del.Hops += sub.Hops
			del.Delivered = sub.Delivered
			del.DropReason = sub.DropReason
			del.DropDetail = sub.DropDetail
			del.Rerouted += sub.Rerouted
			if n.cfg.Trace && len(sub.Trace) > 1 {
				// Skip the tail's injection event and renumber its hops
				// to continue the prefix walk.
				for _, ev := range sub.Trace[1:] {
					ev.Hop += prefixHops
					del.Trace = append(del.Trace, ev)
				}
			}
			// forward counted the tail (delivery and sub.Hops); account
			// for the prefix hops walked before the failure was met.
			if sub.Delivered {
				n.totalHops += prefixHops
			}
			return del, nil
		}
		n.crossLink(&del, cur, next, hop, digit)
		cur = next
	}
}
