package network

import (
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/word"
)

// Policy resolves a wildcard hop (a,*) at a forwarding site: it picks
// the digit b identifying which neighbor of the requested type
// receives the message. The paper's remark motivates this hook: "the
// site which transmits the message [is] able to select freely one of
// the neighbors of the specified type, so that the traffic could be
// more or less balanced."
type Policy interface {
	// Choose returns the digit for the wildcard hop taken at site cur.
	Choose(n *Network, cur word.Word, h core.Hop) byte
	// Name identifies the policy in experiment output.
	Name() string
}

// PolicyFirst always chooses digit 0 — the unbalanced baseline.
type PolicyFirst struct{}

// Choose implements Policy.
func (PolicyFirst) Choose(*Network, word.Word, core.Hop) byte { return 0 }

// Name implements Policy.
func (PolicyFirst) Name() string { return "first" }

// PolicyRandom chooses a uniformly random digit from the network's
// seeded generator — stateless spreading.
type PolicyRandom struct{}

// Choose implements Policy.
func (PolicyRandom) Choose(n *Network, _ word.Word, _ core.Hop) byte {
	return byte(n.rng.Intn(n.cfg.D))
}

// Name implements Policy.
func (PolicyRandom) Name() string { return "random" }

// PolicyLeastLoaded chooses the digit whose outgoing link from the
// current site has carried the fewest messages so far, preferring
// live sites — the locally load-balancing policy of experiment E7.
// When every candidate neighbor is failed no choice can avoid a dead
// site; the policy then falls back to the least-loaded link over all
// candidates (rather than silently returning digit 0, which biased the
// doomed hop toward the 0-neighbor) and the forwarding path records
// the delivery failure.
type PolicyLeastLoaded struct{}

// Choose implements Policy.
func (PolicyLeastLoaded) Choose(n *Network, cur word.Word, h core.Hop) byte {
	if b, ok := leastLoaded(n, cur, h, true); ok {
		return b
	}
	// All candidates failed: an explicit fallback, no liveness filter.
	b, _ := leastLoaded(n, cur, h, false)
	return b
}

// leastLoaded scans the wildcard candidates of h at cur, optionally
// skipping failed neighbors, and reports whether any candidate
// survived the filter.
func leastLoaded(n *Network, cur word.Word, h core.Hop, skipFailed bool) (byte, bool) {
	curV := graph.DeBruijnVertex(cur)
	best := byte(0)
	bestLoad := -1
	for b := 0; b < n.cfg.D; b++ {
		var next word.Word
		if h.Type == core.TypeL {
			next = cur.ShiftLeft(byte(b))
		} else {
			next = cur.ShiftRight(byte(b))
		}
		nextV := graph.DeBruijnVertex(next)
		if skipFailed && n.failed[nextV] {
			continue
		}
		load := n.linkLoad[[2]int{curV, nextV}]
		if bestLoad < 0 || load < bestLoad {
			best, bestLoad = byte(b), load
		}
	}
	return best, bestLoad >= 0
}

// Name implements Policy.
func (PolicyLeastLoaded) Name() string { return "least-loaded" }
