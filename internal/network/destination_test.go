package network

import (
	"testing"

	"repro/internal/core"
	"repro/internal/word"
)

func TestDestinationRoutingMatchesDistancesExhaustive(t *testing.T) {
	for _, cfg := range []Config{
		{D: 2, K: 4, Unidirectional: true},
		{D: 2, K: 4},
		{D: 3, K: 2},
	} {
		n := mustNet(t, cfg)
		var words []word.Word
		if _, err := word.ForEach(cfg.D, cfg.K, func(w word.Word) bool {
			words = append(words, w)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		for _, src := range words {
			for _, dst := range words {
				del, err := n.SendDestinationRouted(src, dst, "d")
				if err != nil {
					t.Fatal(err)
				}
				if !del.Delivered {
					t.Fatalf("%v→%v dropped: %s", src, dst, del.DropReason)
				}
				var want int
				if cfg.Unidirectional {
					want, err = core.DirectedDistance(src, dst)
				} else {
					want, err = core.UndirectedDistance(src, dst)
				}
				if err != nil {
					t.Fatal(err)
				}
				if del.Hops != want {
					t.Fatalf("%v→%v: %d hops, want %d", src, dst, del.Hops, want)
				}
			}
		}
	}
}

func TestDestinationRoutingWithPolicies(t *testing.T) {
	// Hop counts are policy-independent (every wildcard resolution
	// stays on a shortest path).
	for _, p := range []Policy{PolicyFirst{}, PolicyRandom{}, PolicyLeastLoaded{}} {
		n := mustNet(t, Config{D: 3, K: 3, Policy: p, Seed: 5})
		var words []word.Word
		if _, err := word.ForEach(3, 3, func(w word.Word) bool {
			words = append(words, w)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		for _, src := range words[:9] {
			for _, dst := range words {
				del, err := n.SendDestinationRouted(src, dst, "d")
				if err != nil {
					t.Fatal(err)
				}
				want, err := core.UndirectedDistance(src, dst)
				if err != nil {
					t.Fatal(err)
				}
				if !del.Delivered || del.Hops != want {
					t.Fatalf("policy %s: %v→%v hops %d want %d (%s)", p.Name(), src, dst, del.Hops, want, del.DropReason)
				}
			}
		}
	}
}

func TestDestinationRoutingFailures(t *testing.T) {
	mid := word.MustParse(2, "001")
	src := word.MustParse(2, "000")
	dst := word.MustParse(2, "011")

	drop := mustNet(t, Config{D: 2, K: 3})
	if err := drop.FailSite(mid); err != nil {
		t.Fatal(err)
	}
	del, err := drop.SendDestinationRouted(src, dst, "d")
	if err != nil {
		t.Fatal(err)
	}
	if del.Delivered {
		t.Error("delivered through failed site")
	}

	adaptive := mustNet(t, Config{D: 2, K: 3, Adaptive: true, Trace: true})
	if err := adaptive.FailSite(mid); err != nil {
		t.Fatal(err)
	}
	del, err = adaptive.SendDestinationRouted(src, dst, "d")
	if err != nil {
		t.Fatal(err)
	}
	if !del.Delivered || del.Rerouted == 0 {
		t.Fatalf("adaptive destination routing: %+v", del)
	}
	// Trace must avoid the failed site.
	sites := del.TraceSites()
	for _, w := range sites {
		if w.Equal(mid) {
			t.Error("trace crosses failed site")
		}
	}
	if len(sites) != del.Hops+1 {
		t.Errorf("trace %v vs hops %d", sites, del.Hops)
	}

	failedSrc := mustNet(t, Config{D: 2, K: 3})
	if err := failedSrc.FailSite(src); err != nil {
		t.Fatal(err)
	}
	del, err = failedSrc.SendDestinationRouted(src, dst, "d")
	if err != nil {
		t.Fatal(err)
	}
	if del.Delivered || del.DropReason != "source failed" {
		t.Errorf("delivery = %+v", del)
	}
}

func TestDestinationRoutingValidates(t *testing.T) {
	n := mustNet(t, Config{D: 2, K: 3})
	if _, err := n.SendDestinationRouted(word.MustParse(2, "01"), word.MustParse(2, "010"), "d"); err == nil {
		t.Error("accepted short source")
	}
}

func TestDestinationRoutingStatsConsistent(t *testing.T) {
	n := mustNet(t, Config{D: 2, K: 5, Seed: 3})
	total := 0
	for i := 0; i < 300; i++ {
		src := word.Random(2, 5, n.rng)
		dst := word.Random(2, 5, n.rng)
		del, err := n.SendDestinationRouted(src, dst, "d")
		if err != nil {
			t.Fatal(err)
		}
		total += del.Hops
	}
	s := n.Stats()
	if s.Delivered != 300 || s.TotalHops != total {
		t.Errorf("stats %+v, local total %d", s, total)
	}
}
