package graph

import (
	"errors"
	"fmt"
	"math/rand"
)

// Arc-disjoint in-arborescence packing: the structural backbone of the
// fault-routing mode (Chiesa et al.'s deterministic circular routing).
// An in-arborescence rooted at r is a spanning tree whose every arc is
// oriented toward r — vertex v stores one parent, and following
// parents from any vertex reaches r. A family of count such trees is
// arc-disjoint when no arc (v, parent) appears in two trees; routing
// then switches trees on a failed arc, and because each tree loses at
// most one arc per failure, f < count failures always leave some tree
// alive at every vertex.
//
// For an undirected graph, each edge {u,v} contributes the two
// anti-parallel arcs u→v and v→u, used independently: one tree may
// consume u→v while another consumes v→u. On the undirected de Bruijn
// graph DG(d,k), whose minimum degree is 2d-2 ≥ d for k ≥ 2, Edmonds'
// branching theorem guarantees d arc-disjoint in-arborescences per
// root; the builder below finds them greedily with seeded restarts and
// always validates the result, so a returned family is correct by
// construction *and* by check.

// ErrArborescence is wrapped by every packing failure.
var ErrArborescence = errors.New("graph: arborescence packing failed")

// arborescenceAttempts bounds the seeded restarts of one build.
const arborescenceAttempts = 48

// Arborescences builds count arc-disjoint in-arborescences of g rooted
// at root. Tree t of the result is a parent array: parent[v] is the
// vertex v forwards to on its way toward root (the arc v→parent[v] is
// an arc of g — for undirected g, an orientation of an incident edge),
// and parent[root] = -1. The same seed always yields the same family.
func Arborescences(g *Graph, root, count int, seed int64) ([][]int32, error) {
	n := g.NumVertices()
	if root < 0 || root >= n {
		return nil, fmt.Errorf("%w: %d", ErrVertexRange, root)
	}
	if count < 1 {
		return nil, fmt.Errorf("%w: need at least one tree, got %d", ErrArborescence, count)
	}
	for attempt := 0; attempt < arborescenceAttempts; attempt++ {
		trees, ok := packAttempt(g, root, count, seed+int64(attempt)*0x9E3779B97F4A7C)
		if !ok {
			continue
		}
		if err := ValidateArborescences(g, root, trees); err != nil {
			// The greedy packer produced something the validator
			// rejects — a builder bug, not a packing dead end.
			return nil, err
		}
		return trees, nil
	}
	return nil, fmt.Errorf("%w: root %d, %d trees, %d attempts", ErrArborescence, root, count, arborescenceAttempts)
}

// arcCand is one candidate arc v→p for a growing tree: p is already in
// the tree, v may join by taking the arc.
type arcCand struct{ v, p int32 }

// packAttempt runs one seeded round-robin greedy packing. All count
// trees grow simultaneously, one vertex per tree per round, drawing
// candidate arcs from per-tree queues that are filled (in seeded
// random order) whenever a vertex joins a tree. A candidate is
// discarded permanently once its vertex is in the tree or its arc is
// taken by another tree, so every arc is examined at most once per
// tree and an attempt costs O(count·E).
func packAttempt(g *Graph, root, count int, seed int64) ([][]int32, bool) {
	n := g.NumVertices()
	rng := rand.New(rand.NewSource(seed))

	// usedArc[v][i] marks the arc v→adj[v][i] as consumed by some tree.
	usedArc := make([][]bool, n)
	for v := range usedArc {
		usedArc[v] = make([]bool, len(g.adj[v]))
	}
	arcIndex := func(v, p int32) int {
		lst := g.adj[v]
		lo, hi := 0, len(lst)
		for lo < hi {
			mid := (lo + hi) / 2
			if lst[mid] < p {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo // callers only pass real arcs
	}

	trees := make([][]int32, count)
	inTree := make([][]bool, count)
	queues := make([][]arcCand, count)
	sizes := make([]int, count)
	// push enqueues every arc v→p (v an in-neighbor of p, so the arc
	// exists and points at p) as a candidate for tree t, in seeded
	// random order so restarts explore different packings.
	push := func(t int, p int32) {
		in := g.InNeighbors(int(p))
		order := rng.Perm(len(in))
		for _, i := range order {
			v := in[i]
			if !inTree[t][v] && !usedArc[v][arcIndex(v, p)] {
				queues[t] = append(queues[t], arcCand{v: v, p: p})
			}
		}
	}
	for t := 0; t < count; t++ {
		trees[t] = make([]int32, n)
		for v := range trees[t] {
			trees[t][v] = -1
		}
		inTree[t] = make([]bool, n)
		inTree[t][root] = true
		sizes[t] = 1
		push(t, int32(root))
	}

	remaining := count * (n - 1)
	for round := 0; remaining > 0; round++ {
		progress := false
		for i := 0; i < count; i++ {
			t := (round + i) % count
			if sizes[t] == n {
				continue
			}
			var got bool
			for len(queues[t]) > 0 {
				c := queues[t][0]
				queues[t] = queues[t][1:]
				if inTree[t][c.v] {
					continue
				}
				idx := arcIndex(c.v, c.p)
				if usedArc[c.v][idx] {
					continue
				}
				usedArc[c.v][idx] = true
				trees[t][c.v] = c.p
				inTree[t][c.v] = true
				sizes[t]++
				remaining--
				push(t, c.v)
				got = true
				break
			}
			if got {
				progress = true
			} else if sizes[t] < n {
				// Tree t's candidates are exhausted; no future event
				// can revive them, so this attempt is dead.
				return nil, false
			}
		}
		if !progress {
			return nil, false
		}
	}
	return trees, true
}

// ValidateArborescences checks that trees is a family of arc-disjoint
// spanning in-arborescences of g rooted at root: every tree spans all
// vertices, every parent pointer is a real arc of g, following parents
// always reaches root, and no arc is shared between two trees.
func ValidateArborescences(g *Graph, root int, trees [][]int32) error {
	n := g.NumVertices()
	if root < 0 || root >= n {
		return fmt.Errorf("%w: %d", ErrVertexRange, root)
	}
	used := make(map[[2]int32]int, len(trees)*n)
	depth := make([]int, n)
	for t, parent := range trees {
		if len(parent) != n {
			return fmt.Errorf("%w: tree %d has %d entries, graph has %d vertices", ErrArborescence, t, len(parent), n)
		}
		if parent[root] != -1 {
			return fmt.Errorf("%w: tree %d gives the root %d a parent", ErrArborescence, t, root)
		}
		// depth[v] = -1: unresolved this tree; ≥ 0: hops to root.
		for v := range depth {
			depth[v] = -1
		}
		depth[root] = 0
		for v := 0; v < n; v++ {
			if depth[v] >= 0 {
				continue
			}
			// Walk to the first resolved vertex, then unwind.
			steps := 0
			u := int32(v)
			for depth[u] < 0 {
				p := parent[u]
				if p < 0 || int(p) >= n {
					return fmt.Errorf("%w: tree %d vertex %d has parent %d", ErrArborescence, t, u, p)
				}
				if !g.HasEdge(int(u), int(p)) {
					return fmt.Errorf("%w: tree %d uses %d→%d, not an arc of the graph", ErrArborescence, t, u, p)
				}
				u = p
				if steps++; steps > n {
					return fmt.Errorf("%w: tree %d has a cycle through vertex %d", ErrArborescence, t, v)
				}
			}
			// Unwind: re-walk assigning depths.
			chain := make([]int32, 0, steps)
			u = int32(v)
			for depth[u] < 0 {
				chain = append(chain, u)
				u = parent[u]
			}
			base := depth[u]
			for i := len(chain) - 1; i >= 0; i-- {
				base++
				depth[chain[i]] = base
			}
		}
		for v := 0; v < n; v++ {
			if v == root {
				continue
			}
			arc := [2]int32{int32(v), parent[v]}
			if prev, dup := used[arc]; dup {
				return fmt.Errorf("%w: arc %d→%d in trees %d and %d", ErrArborescence, arc[0], arc[1], prev, t)
			}
			used[arc] = t
		}
	}
	return nil
}
