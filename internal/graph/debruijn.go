package graph

import (
	"fmt"

	"repro/internal/word"
)

// DeBruijn constructs the de Bruijn graph DG(d,k) of the requested
// kind: N = d^k vertices, one per d-ary word of length k, vertex v
// being the word of rank v. Arcs are the left-shift moves X → X⁻(a)
// (which also realize every right-shift arc X⁺(a) → X); the undirected
// graph drops directions. Redundant arcs — self loops at constant
// words and coincident left/right-shift edges at alternating words —
// are removed, as in the paper. Vertices are labelled with their word.
func DeBruijn(kind Kind, d, k int) (*Graph, error) {
	n, err := word.Count(d, k)
	if err != nil {
		return nil, fmt.Errorf("graph: DG(%d,%d): %w", d, k, err)
	}
	g, err := New(kind, n)
	if err != nil {
		return nil, err
	}
	if _, err := word.ForEach(d, k, func(w word.Word) bool {
		v := int(w.MustRank())
		if err := g.SetLabel(v, w.String()); err != nil {
			panic(err) // unreachable: v < n by construction
		}
		for a := 0; a < d; a++ {
			u := int(w.ShiftLeft(byte(a)).MustRank())
			if u == v {
				continue // self loop at a constant word
			}
			if err := g.AddEdge(v, u); err != nil {
				panic(err) // unreachable: endpoints in range, not a loop
			}
		}
		return true
	}); err != nil {
		return nil, err
	}
	return g, nil
}

// DeBruijnVertex returns the vertex number of w in DeBruijn graphs of
// matching d and k (its rank).
func DeBruijnVertex(w word.Word) int { return int(w.MustRank()) }

// DeBruijnWord is the inverse of DeBruijnVertex.
func DeBruijnWord(d, k, v int) (word.Word, error) {
	return word.Unrank(d, k, uint64(v))
}

// DeBruijnDegreeCensusWant predicts the degree census of DG(d,k) after
// redundancy removal, for k ≥ 2:
//
//   - directed: N-d vertices of degree 2d (d in + d out) and the d
//     constant words of degree 2d-2 (self loop removed);
//   - undirected: N-d² vertices of degree 2d, the d²-d alternating
//     words αβαβ… (α≠β) of degree 2d-1 (one left-shift neighbor
//     coincides with a right-shift neighbor), and the d constants of
//     degree 2d-2.
//
// The paper states this census below Figure 1 (the report's rendering
// of the undirected counts is garbled; the values returned here are
// re-derived and verified against enumeration in the tests and in
// experiment E1).
func DeBruijnDegreeCensusWant(kind Kind, d, k int) (map[int]int, error) {
	if k < 2 {
		return nil, fmt.Errorf("graph: census formula needs k ≥ 2, got %d", k)
	}
	n, err := word.Count(d, k)
	if err != nil {
		return nil, err
	}
	census := make(map[int]int)
	add := func(deg, count int) {
		if count > 0 {
			census[deg] += count
		}
	}
	if kind == Directed {
		add(2*d, n-d)
		add(2*d-2, d)
	} else {
		add(2*d, n-d*d)
		add(2*d-1, d*d-d)
		add(2*d-2, d)
	}
	return census, nil
}
