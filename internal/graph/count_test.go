package graph

import (
	"testing"
)

func TestCountShortestPathsSquare(t *testing.T) {
	// 4-cycle: two shortest paths to the opposite corner.
	g := mustNew(t, Undirected, 4)
	addEdges(t, g, [2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3}, [2]int{3, 0})
	counts, dist, err := g.CountShortestPathsFrom(0)
	if err != nil {
		t.Fatal(err)
	}
	if dist[2] != 2 || counts[2] != 2 {
		t.Errorf("opposite corner: dist %d count %d", dist[2], counts[2])
	}
	if counts[0] != 1 || counts[1] != 1 || counts[3] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestCountShortestPathsUnreachable(t *testing.T) {
	g := mustNew(t, Directed, 3)
	addEdges(t, g, [2]int{0, 1})
	counts, dist, err := g.CountShortestPathsFrom(0)
	if err != nil {
		t.Fatal(err)
	}
	if dist[2] != -1 || counts[2] != 0 {
		t.Errorf("unreachable: dist %d count %d", dist[2], counts[2])
	}
	if _, _, err := g.CountShortestPathsFrom(9); err == nil {
		t.Error("accepted out-of-range source")
	}
}

func TestCountShortestPathsDeBruijn(t *testing.T) {
	// Every pair at distance k has multiple shortest paths only if
	// the matching structure allows; verify counts against explicit
	// path enumeration on DG(2,3).
	g, err := DeBruijn(Undirected, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < g.NumVertices(); src++ {
		counts, dist, err := g.CountShortestPathsFrom(src)
		if err != nil {
			t.Fatal(err)
		}
		for dst := 0; dst < g.NumVertices(); dst++ {
			want := enumeratePaths(g, src, dst, dist[dst])
			if counts[dst] != int64(want) {
				t.Errorf("paths %d→%d: count %d, enumeration %d", src, dst, counts[dst], want)
			}
		}
	}
}

// enumeratePaths counts walks of exactly length L from src to dst that
// are shortest (L = dist); DFS over the BFS DAG.
func enumeratePaths(g *Graph, src, dst, L int) int {
	if L < 0 {
		return 0
	}
	if src == dst && L == 0 {
		return 1
	}
	dist, err := g.BFSFrom(src)
	if err != nil {
		return -1
	}
	var rec func(v, remaining int) int
	rec = func(v, remaining int) int {
		if remaining == 0 {
			if v == dst {
				return 1
			}
			return 0
		}
		total := 0
		for _, u := range g.OutNeighbors(v) {
			if dist[u] == dist[v]+1 {
				total += rec(int(u), remaining-1)
			}
		}
		return total
	}
	return rec(src, L)
}

func TestMooreBound(t *testing.T) {
	cases := []struct {
		deg, diam int
		want      int64
	}{
		{3, 1, 4},  // K4
		{3, 2, 10}, // Petersen
		{4, 2, 17},
		{2, 3, 7}, // cycle C7
		{1, 5, 2},
		{4, 1, 5},
	}
	for _, c := range cases {
		if got := MooreBound(c.deg, c.diam); got != c.want {
			t.Errorf("MooreBound(%d,%d) = %d, want %d", c.deg, c.diam, got, c.want)
		}
	}
	if MooreBound(0, 3) != 1 || MooreBound(3, 0) != 1 {
		t.Error("degenerate Moore bounds wrong")
	}
	if MooreBound(1000, 20) <= 0 {
		t.Error("Moore bound overflowed to non-positive")
	}
}

func TestMinDiameterFor(t *testing.T) {
	// N=10 deg 3: Petersen achieves diameter 2, bound says ≥ 2.
	if got := MinDiameterFor(10, 3); got != 2 {
		t.Errorf("MinDiameterFor(10,3) = %d", got)
	}
	if got := MinDiameterFor(11, 3); got != 3 {
		t.Errorf("MinDiameterFor(11,3) = %d", got)
	}
	if got := MinDiameterFor(1, 3); got != 1 {
		t.Errorf("MinDiameterFor(1,3) = %d", got)
	}
}

func TestDeBruijnNearOptimalDiameter(t *testing.T) {
	// §1 (Imase–Itoh): DG(d,k) with N = d^k vertices and max degree
	// 2d has diameter k = log_d N, while the Moore bound allows
	// ~log_{2d-1} N — within a factor ~2 for binary, approaching 1 as
	// d grows.
	for _, dk := range [][2]int{{2, 6}, {3, 4}, {4, 3}, {5, 3}} {
		d, k := dk[0], dk[1]
		n := int64(1)
		for i := 0; i < k; i++ {
			n *= int64(d)
		}
		lower := MinDiameterFor(n, 2*d)
		if lower > k {
			t.Errorf("DG(%d,%d): Moore lower bound %d exceeds actual diameter %d", d, k, lower, k)
		}
		if k > 2*lower+1 {
			t.Errorf("DG(%d,%d): diameter %d more than ~2× the Moore bound %d", d, k, k, lower)
		}
	}
}

func TestDirectedDeBruijnShortestPathsAreUnique(t *testing.T) {
	// In the directed DG(d,k) the shortest path between any ordered
	// pair is unique: a length-n walk X→Y forces the inserted digits
	// to be y_{k-n+1}…y_k and requires the overlap match at exactly
	// s = k-n. Hence route diversity — and wildcard balancing — is a
	// purely bi-directional phenomenon (contrast experiment E12).
	for _, dk := range [][2]int{{2, 3}, {2, 5}, {3, 3}, {4, 2}} {
		g, err := DeBruijn(Directed, dk[0], dk[1])
		if err != nil {
			t.Fatal(err)
		}
		for src := 0; src < g.NumVertices(); src++ {
			counts, dist, err := g.CountShortestPathsFrom(src)
			if err != nil {
				t.Fatal(err)
			}
			for dst, c := range counts {
				if dist[dst] < 0 {
					t.Fatalf("DG(%d,%d): %d unreachable from %d", dk[0], dk[1], dst, src)
				}
				if c != 1 {
					t.Fatalf("DG(%d,%d): %d→%d has %d shortest paths, want 1", dk[0], dk[1], src, dst, c)
				}
			}
		}
	}
}
