// Package graph provides the graph substrate of the reproduction:
// adjacency-list directed and undirected graphs, breadth-first search
// (the baseline shortest-path oracle the paper's distance functions are
// verified against), diameter and degree statistics, connectivity,
// vertex-disjoint paths, and Graphviz export for Figure 1.
package graph

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Kind discriminates directed from undirected graphs.
type Kind int

const (
	// Directed graphs store arcs; Degree is in-degree + out-degree.
	Directed Kind = iota + 1
	// Undirected graphs store symmetric edges.
	Undirected
)

func (k Kind) String() string {
	switch k {
	case Directed:
		return "directed"
	case Undirected:
		return "undirected"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Errors returned by constructors and accessors.
var (
	ErrVertexRange = errors.New("graph: vertex out of range")
	ErrKind        = errors.New("graph: invalid kind")
	ErrSelfLoop    = errors.New("graph: self loop rejected")
)

// Graph is a simple graph (no self loops, no parallel edges): the
// paper's convention after "removing the redundant arcs". Vertices are
// 0..N-1; optional string labels name them (de Bruijn words).
type Graph struct {
	kind   Kind
	adj    [][]int32 // out-neighbors (directed) or neighbors (undirected)
	radj   [][]int32 // in-neighbors; nil for undirected
	labels []string
	edges  int
}

// New returns an empty graph with n vertices.
func New(kind Kind, n int) (*Graph, error) {
	if kind != Directed && kind != Undirected {
		return nil, ErrKind
	}
	if n < 1 {
		return nil, fmt.Errorf("graph: need at least one vertex, got %d", n)
	}
	g := &Graph{kind: kind, adj: make([][]int32, n)}
	if kind == Directed {
		g.radj = make([][]int32, n)
	}
	return g, nil
}

// Kind returns whether the graph is directed.
func (g *Graph) Kind() Kind { return g.kind }

// NumVertices returns N.
func (g *Graph) NumVertices() int { return len(g.adj) }

// NumEdges returns the number of arcs (directed) or edges (undirected)
// after deduplication.
func (g *Graph) NumEdges() int { return g.edges }

// AddEdge inserts the arc u→v (directed) or edge {u,v} (undirected).
// Self loops are rejected and duplicates are ignored, mirroring the
// paper's removal of redundant arcs.
func (g *Graph) AddEdge(u, v int) error {
	n := len(g.adj)
	if u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("%w: (%d,%d) with n=%d", ErrVertexRange, u, v, n)
	}
	if u == v {
		return ErrSelfLoop
	}
	if g.hasArc(u, v) {
		return nil
	}
	g.adj[u] = insertSorted(g.adj[u], int32(v))
	if g.kind == Directed {
		g.radj[v] = insertSorted(g.radj[v], int32(u))
	} else {
		g.adj[v] = insertSorted(g.adj[v], int32(u))
	}
	g.edges++
	return nil
}

func (g *Graph) hasArc(u, v int) bool {
	lst := g.adj[u]
	i := sort.Search(len(lst), func(i int) bool { return lst[i] >= int32(v) })
	return i < len(lst) && lst[i] == int32(v)
}

func insertSorted(lst []int32, v int32) []int32 {
	i := sort.Search(len(lst), func(i int) bool { return lst[i] >= v })
	lst = append(lst, 0)
	copy(lst[i+1:], lst[i:])
	lst[i] = v
	return lst
}

// HasEdge reports whether the arc u→v (or edge {u,v}) exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj) {
		return false
	}
	return g.hasArc(u, v)
}

// OutNeighbors returns the sorted out-neighbors of v (its neighbors,
// for undirected graphs). The returned slice must not be modified.
func (g *Graph) OutNeighbors(v int) []int32 { return g.adj[v] }

// InNeighbors returns the sorted in-neighbors of v. For undirected
// graphs this equals OutNeighbors.
func (g *Graph) InNeighbors(v int) []int32 {
	if g.kind == Undirected {
		return g.adj[v]
	}
	return g.radj[v]
}

// Degree returns the paper's notion of vertex degree: the number of
// incident edges — out-degree plus in-degree for directed graphs.
func (g *Graph) Degree(v int) int {
	if g.kind == Directed {
		return len(g.adj[v]) + len(g.radj[v])
	}
	return len(g.adj[v])
}

// MaxDegree returns the degree of the graph: the maximum vertex degree.
func (g *Graph) MaxDegree() int {
	best := 0
	for v := range g.adj {
		if d := g.Degree(v); d > best {
			best = d
		}
	}
	return best
}

// DegreeCensus returns a histogram degree → number of vertices, the
// quantity discussed below Figure 1 of the paper.
func (g *Graph) DegreeCensus() map[int]int {
	census := make(map[int]int)
	for v := range g.adj {
		census[g.Degree(v)]++
	}
	return census
}

// SetLabel assigns a textual name to vertex v.
func (g *Graph) SetLabel(v int, label string) error {
	if v < 0 || v >= len(g.adj) {
		return fmt.Errorf("%w: %d", ErrVertexRange, v)
	}
	if g.labels == nil {
		g.labels = make([]string, len(g.adj))
	}
	g.labels[v] = label
	return nil
}

// Label returns the textual name of v, or its number if unnamed.
func (g *Graph) Label(v int) string {
	if g.labels != nil && g.labels[v] != "" {
		return g.labels[v]
	}
	return fmt.Sprintf("%d", v)
}

// BFSFrom returns the distance from src to every vertex along arcs
// (out-edges), with -1 for unreachable vertices.
func (g *Graph) BFSFrom(src int) ([]int, error) {
	return g.BFSFromAvoiding(src, nil)
}

// BFSFromAvoiding is BFSFrom with a set of failed (blocked) vertices
// that the search may not enter; src itself must not be blocked. The
// fault-tolerance experiments route around failed sites with it.
func (g *Graph) BFSFromAvoiding(src int, blocked map[int]bool) ([]int, error) {
	n := len(g.adj)
	if src < 0 || src >= n {
		return nil, fmt.Errorf("%w: %d", ErrVertexRange, src)
	}
	if blocked[src] {
		return nil, fmt.Errorf("graph: source %d is blocked", src)
	}
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int32, 0, n)
	queue = append(queue, int32(src))
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] < 0 && !blocked[int(v)] {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist, nil
}

// BFSFromAvoidingArcs returns the distance from src to every vertex
// using only arcs u→v for which failed(u, v) is false, with -1 for
// unreachable vertices. For undirected graphs each edge {u,v} is two
// independent arcs, matching the fault-routing failure model: failing
// u→v does not fail v→u unless the caller's predicate says so. A nil
// predicate makes this BFSFrom.
func (g *Graph) BFSFromAvoidingArcs(src int, failed func(u, v int) bool) ([]int, error) {
	n := len(g.adj)
	if src < 0 || src >= n {
		return nil, fmt.Errorf("%w: %d", ErrVertexRange, src)
	}
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int32, 0, n)
	queue = append(queue, int32(src))
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] < 0 && (failed == nil || !failed(int(u), int(v))) {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist, nil
}

// BFSToAvoidingArcs returns, for every vertex u, the length of the
// shortest path from u to dst using only arcs the predicate allows
// (-1 when no such path exists). One call answers "how far is every
// source from this destination on the faulted graph", which is how
// the faultroutes oracle prices a whole failure set with a single
// search instead of one BFS per source.
func (g *Graph) BFSToAvoidingArcs(dst int, failed func(u, v int) bool) ([]int, error) {
	n := len(g.adj)
	if dst < 0 || dst >= n {
		return nil, fmt.Errorf("%w: %d", ErrVertexRange, dst)
	}
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[dst] = 0
	queue := make([]int32, 0, n)
	queue = append(queue, int32(dst))
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		// u reaches dst through v via the arc u→v.
		for _, u := range g.InNeighbors(int(v)) {
			if dist[u] < 0 && (failed == nil || !failed(int(u), int(v))) {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist, nil
}

// ShortestPath returns one shortest vertex path from src to dst
// (inclusive of both), or nil if dst is unreachable.
func (g *Graph) ShortestPath(src, dst int) ([]int, error) {
	return g.ShortestPathAvoiding(src, dst, nil)
}

// ShortestPathAvoiding is ShortestPath restricted to vertices outside
// the blocked set.
func (g *Graph) ShortestPathAvoiding(src, dst int, blocked map[int]bool) ([]int, error) {
	n := len(g.adj)
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return nil, fmt.Errorf("%w: (%d,%d)", ErrVertexRange, src, dst)
	}
	if blocked[src] || blocked[dst] {
		return nil, nil
	}
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = -2 // unvisited
	}
	parent[src] = -1
	queue := []int32{int32(src)}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if int(u) == dst {
			break
		}
		for _, v := range g.adj[u] {
			if parent[v] == -2 && !blocked[int(v)] {
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	if parent[dst] == -2 {
		return nil, nil
	}
	var rev []int
	for v := int32(dst); v != -1; v = parent[v] {
		rev = append(rev, int(v))
	}
	path := make([]int, len(rev))
	for i, v := range rev {
		path[len(rev)-1-i] = v
	}
	return path, nil
}

// Distance returns the length of a shortest path from u to v, or -1
// if unreachable.
func (g *Graph) Distance(u, v int) (int, error) {
	dist, err := g.BFSFrom(u)
	if err != nil {
		return 0, err
	}
	if v < 0 || v >= len(dist) {
		return 0, fmt.Errorf("%w: %d", ErrVertexRange, v)
	}
	return dist[v], nil
}

// Diameter computes the maximum finite distance over all ordered pairs
// by running a BFS from every vertex: O(N(N+E)). Returns an error if
// the graph is not (strongly) connected.
func (g *Graph) Diameter() (int, error) {
	best := 0
	for v := range g.adj {
		dist, err := g.BFSFrom(v)
		if err != nil {
			return 0, err
		}
		for _, d := range dist {
			if d < 0 {
				return 0, errors.New("graph: not connected, diameter undefined")
			}
			if d > best {
				best = d
			}
		}
	}
	return best, nil
}

// AvgDistance computes the mean distance over all ordered pairs of
// distinct vertices via all-pairs BFS. Returns an error on
// disconnected graphs.
func (g *Graph) AvgDistance() (float64, error) {
	var sum float64
	n := len(g.adj)
	if n < 2 {
		return 0, nil
	}
	for v := range g.adj {
		dist, err := g.BFSFrom(v)
		if err != nil {
			return 0, err
		}
		for u, d := range dist {
			if u == v {
				continue
			}
			if d < 0 {
				return 0, errors.New("graph: not connected, average distance undefined")
			}
			sum += float64(d)
		}
	}
	return sum / float64(n*(n-1)), nil
}

// DistanceHistogram returns count[i] = number of ordered pairs (u,v),
// u ≠ v, at distance i, via all-pairs BFS.
func (g *Graph) DistanceHistogram() ([]int, error) {
	var hist []int
	for v := range g.adj {
		dist, err := g.BFSFrom(v)
		if err != nil {
			return nil, err
		}
		for u, d := range dist {
			if u == v || d < 0 {
				continue
			}
			for len(hist) <= d {
				hist = append(hist, 0)
			}
			hist[d]++
		}
	}
	return hist, nil
}

// IsConnected reports connectivity: strong connectivity for directed
// graphs (every vertex reaches every other along arcs), ordinary
// connectivity for undirected ones.
func (g *Graph) IsConnected() bool {
	return g.isConnectedAvoiding(nil)
}

// IsConnectedAvoiding reports whether the graph restricted to vertices
// outside blocked is (strongly) connected. Used by the Pradhan–Reddy
// fault-tolerance experiment (E8).
func (g *Graph) IsConnectedAvoiding(blocked map[int]bool) bool {
	return g.isConnectedAvoiding(blocked)
}

func (g *Graph) isConnectedAvoiding(blocked map[int]bool) bool {
	n := len(g.adj)
	src := -1
	alive := 0
	for v := 0; v < n; v++ {
		if !blocked[v] {
			alive++
			if src < 0 {
				src = v
			}
		}
	}
	if alive <= 1 {
		return true
	}
	if !g.reachesAll(src, g.adj, blocked, alive) {
		return false
	}
	if g.kind == Directed {
		return g.reachesAll(src, g.radj, blocked, alive)
	}
	return true
}

func (g *Graph) reachesAll(src int, adj [][]int32, blocked map[int]bool, alive int) bool {
	seen := make([]bool, len(adj))
	seen[src] = true
	queue := []int32{int32(src)}
	count := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if !seen[v] && !blocked[int(v)] {
				seen[v] = true
				count++
				queue = append(queue, v)
			}
		}
	}
	return count == alive
}

// VertexDisjointPaths returns the maximum number of internally
// vertex-disjoint paths from s to t (s ≠ t, not adjacent via a direct
// edge counting separately per Menger), computed by unit-capacity
// max-flow on the vertex-split graph. This lower-bounds the number of
// vertex failures needed to disconnect t from s.
func (g *Graph) VertexDisjointPaths(s, t int) (int, error) {
	n := len(g.adj)
	if s < 0 || s >= n || t < 0 || t >= n {
		return 0, fmt.Errorf("%w: (%d,%d)", ErrVertexRange, s, t)
	}
	if s == t {
		return 0, errors.New("graph: disjoint paths need distinct endpoints")
	}
	// Vertex splitting: v_in = 2v, v_out = 2v+1, capacity-1 arc
	// v_in→v_out for internal vertices, infinite for s and t. Each
	// graph arc u→v becomes u_out→v_in (both directions when
	// undirected).
	type edge struct {
		to, rev int32
		cap     int32
	}
	adj := make([][]edge, 2*n)
	addFlowEdge := func(u, v, c int) {
		adj[u] = append(adj[u], edge{to: int32(v), rev: int32(len(adj[v])), cap: int32(c)})
		adj[v] = append(adj[v], edge{to: int32(u), rev: int32(len(adj[u]) - 1), cap: 0})
	}
	for v := 0; v < n; v++ {
		c := 1
		if v == s || v == t {
			c = n // effectively infinite
		}
		addFlowEdge(2*v, 2*v+1, c)
	}
	// Each stored arc u→v becomes u_out→v_in; undirected adjacency is
	// symmetric, so both directions of every edge are covered.
	for u := 0; u < n; u++ {
		for _, v := range g.adj[u] {
			addFlowEdge(2*u+1, 2*int(v), 1)
		}
	}
	source, sink := 2*s+1, 2*t
	// Edmonds–Karp.
	flow := 0
	for {
		parentEdge := make([]int32, 2*n)
		parentNode := make([]int32, 2*n)
		for i := range parentNode {
			parentNode[i] = -2
		}
		parentNode[source] = -1
		queue := []int32{int32(source)}
		for len(queue) > 0 && parentNode[sink] == -2 {
			u := queue[0]
			queue = queue[1:]
			for ei, e := range adj[u] {
				if e.cap > 0 && parentNode[e.to] == -2 {
					parentNode[e.to] = u
					parentEdge[e.to] = int32(ei)
					queue = append(queue, e.to)
				}
			}
		}
		if parentNode[sink] == -2 {
			break
		}
		for v := int32(sink); parentNode[v] != -1; v = parentNode[v] {
			u := parentNode[v]
			e := &adj[u][parentEdge[v]]
			e.cap--
			adj[e.to][e.rev].cap++
		}
		flow++
		if flow > 4*n {
			return 0, errors.New("graph: flow runaway (internal error)")
		}
	}
	return flow, nil
}

// DOT renders the graph in Graphviz format, with de Bruijn word labels
// when present; the Figure 1 regeneration path.
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	arrow := " -> "
	if g.kind == Undirected {
		b.WriteString("graph ")
		arrow = " -- "
	} else {
		b.WriteString("digraph ")
	}
	fmt.Fprintf(&b, "%q {\n", name)
	for v := range g.adj {
		fmt.Fprintf(&b, "  n%d [label=%q];\n", v, g.Label(v))
	}
	for u := range g.adj {
		for _, v := range g.adj[u] {
			if g.kind == Undirected && int(v) < u {
				continue // emit each undirected edge once
			}
			fmt.Fprintf(&b, "  n%d%sn%d;\n", u, arrow, v)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
