package graph

import (
	"fmt"
	"math"
)

// CountShortestPathsFrom returns, for every vertex v, the number of
// distinct shortest paths from src to v along with the distances
// (-1/0 for unreachable). Standard BFS-DAG dynamic programming; counts
// saturate at math.MaxInt64 rather than overflowing (irrelevant at
// this repository's graph sizes but kept safe).
//
// The de Bruijn experiments use the counts as a route-diversity
// measure: pairs with many shortest paths give the wildcard policies
// room to balance load.
func (g *Graph) CountShortestPathsFrom(src int) ([]int64, []int, error) {
	n := len(g.adj)
	if src < 0 || src >= n {
		return nil, nil, fmt.Errorf("%w: %d", ErrVertexRange, src)
	}
	dist := make([]int, n)
	counts := make([]int64, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	counts[src] = 1
	queue := []int32{int32(src)}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			switch {
			case dist[v] < 0:
				dist[v] = dist[u] + 1
				counts[v] = counts[u]
				queue = append(queue, v)
			case dist[v] == dist[u]+1:
				if counts[v] > math.MaxInt64-counts[u] {
					counts[v] = math.MaxInt64
				} else {
					counts[v] += counts[u]
				}
			}
		}
	}
	return counts, dist, nil
}

// MooreBound returns the largest number of vertices any graph of
// maximum degree deg and diameter diam can have (the Moore bound):
// 1 + deg·Σ_{i=0}^{diam-1}(deg-1)^i. Saturates at MaxInt64. The §1
// claim (via Imase–Itoh) that de Bruijn graphs nearly minimize the
// diameter is quantified against it in experiment E10.
func MooreBound(deg, diam int) int64 {
	if deg < 1 || diam < 1 {
		return 1
	}
	if deg == 1 {
		return 2
	}
	if deg == 2 {
		return int64(2*diam + 1)
	}
	total := int64(1)
	term := int64(deg)
	for i := 0; i < diam; i++ {
		if total > math.MaxInt64-term {
			return math.MaxInt64
		}
		total += term
		if term > math.MaxInt64/int64(deg-1) {
			term = math.MaxInt64
		} else {
			term *= int64(deg - 1)
		}
	}
	return total
}

// MinDiameterFor returns the smallest diameter permitted by the Moore
// bound for a graph with n vertices and maximum degree deg.
func MinDiameterFor(n int64, deg int) int {
	for diam := 1; ; diam++ {
		if MooreBound(deg, diam) >= n {
			return diam
		}
		if diam > 128 {
			return diam // n beyond any practical bound; avoid spinning
		}
	}
}
