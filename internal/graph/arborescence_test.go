package graph

import (
	"errors"
	"testing"
)

// arborescenceTrees mirrors the fault-routing contract: DG(d,k) for
// k ≥ 2 has undirected minimum degree 2d-2 ≥ d and supports d
// arc-disjoint in-arborescences; DG(d,1) = K_d has degree d-1 and
// supports only d-1 (the root needs one incoming arc per tree).
func arborescenceTrees(d, k int) int {
	if k == 1 {
		return d - 1
	}
	return d
}

func TestArborescencesSmallGraphs(t *testing.T) {
	cases := [][2]int{{2, 1}, {3, 1}, {5, 1}, {2, 2}, {2, 3}, {2, 5}, {3, 2}, {3, 3}, {4, 2}, {5, 2}}
	for _, dk := range cases {
		d, k := dk[0], dk[1]
		g, err := DeBruijn(Undirected, d, k)
		if err != nil {
			t.Fatalf("DeBruijn(%d,%d): %v", d, k, err)
		}
		count := arborescenceTrees(d, k)
		for root := 0; root < g.NumVertices(); root++ {
			trees, err := Arborescences(g, root, count, 1)
			if err != nil {
				t.Fatalf("Arborescences(DG(%d,%d), root %d, %d trees): %v", d, k, root, count, err)
			}
			if len(trees) != count {
				t.Fatalf("DG(%d,%d) root %d: got %d trees, want %d", d, k, root, len(trees), count)
			}
			if err := ValidateArborescences(g, root, trees); err != nil {
				t.Fatalf("DG(%d,%d) root %d: %v", d, k, root, err)
			}
		}
	}
}

func TestArborescencesDeterministic(t *testing.T) {
	g, err := DeBruijn(Undirected, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Arborescences(g, 5, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Arborescences(g, 5, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	for t2 := range a {
		for v := range a[t2] {
			if a[t2][v] != b[t2][v] {
				t.Fatalf("same seed diverged: tree %d vertex %d: %d vs %d", t2, v, a[t2][v], b[t2][v])
			}
		}
	}
}

// DG(d,1) = K_d cannot support d in-arborescences: the root has only
// d-1 incoming arcs and each tree needs one.
func TestArborescencesCompleteGraphLimit(t *testing.T) {
	g, err := DeBruijn(Undirected, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Arborescences(g, 0, 3, 1); err != nil {
		t.Fatalf("K_4 should pack 3 trees: %v", err)
	}
	if _, err := Arborescences(g, 0, 4, 1); !errors.Is(err, ErrArborescence) {
		t.Fatalf("K_4 cannot pack 4 trees, got err = %v", err)
	}
}

func TestValidateArborescencesRejects(t *testing.T) {
	g, err := DeBruijn(Undirected, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	trees, err := Arborescences(g, 0, 2, 7)
	if err != nil {
		t.Fatal(err)
	}

	clone := func() [][]int32 {
		out := make([][]int32, len(trees))
		for i := range trees {
			out[i] = append([]int32(nil), trees[i]...)
		}
		return out
	}

	// Root with a parent.
	bad := clone()
	bad[0][0] = bad[1][1]
	if err := ValidateArborescences(g, 0, bad); !errors.Is(err, ErrArborescence) {
		t.Errorf("rooted root accepted: %v", err)
	}

	// Non-arc parent pointer: vertex 1 (001) and n-1 (111) are not
	// adjacent in DG(2,3).
	bad = clone()
	if g.HasEdge(1, n-1) {
		t.Fatal("test premise wrong: 1 and n-1 adjacent")
	}
	bad[0][1] = int32(n - 1)
	if err := ValidateArborescences(g, 0, bad); !errors.Is(err, ErrArborescence) {
		t.Errorf("non-arc parent accepted: %v", err)
	}

	// A two-cycle that never reaches the root.
	bad = clone()
	u, v := -1, -1
	for a := 1; a < n && u < 0; a++ {
		for _, b := range g.OutNeighbors(a) {
			if int(b) != 0 && b != int32(a) {
				u, v = a, int(b)
				break
			}
		}
	}
	bad[0][u] = int32(v)
	bad[0][v] = int32(u)
	if err := ValidateArborescences(g, 0, bad); !errors.Is(err, ErrArborescence) {
		t.Errorf("cycle accepted: %v", err)
	}

	// Duplicate arc across trees.
	bad = clone()
	for w := 1; w < n; w++ {
		if bad[0][w] == trees[1][w] {
			continue
		}
		bad[1][w] = bad[0][w]
		// Keep tree 1 valid apart from disjointness: parent is still a
		// real arc; reachability may break, so only assert the error.
		break
	}
	if err := ValidateArborescences(g, 0, bad); !errors.Is(err, ErrArborescence) {
		t.Errorf("duplicate arc accepted: %v", err)
	}
}

func TestBFSArcAvoidance(t *testing.T) {
	g, err := DeBruijn(Undirected, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	// No failures: both arc-avoiding searches agree with plain BFS.
	base, err := g.BFSFrom(3)
	if err != nil {
		t.Fatal(err)
	}
	from, err := g.BFSFromAvoidingArcs(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	to, err := g.BFSToAvoidingArcs(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		if from[v] != base[v] {
			t.Fatalf("BFSFromAvoidingArcs(nil) diverges at %d: %d vs %d", v, from[v], base[v])
		}
		// Undirected graph: distance to 3 equals distance from 3.
		if to[v] != base[v] {
			t.Fatalf("BFSToAvoidingArcs(nil) diverges at %d: %d vs %d", v, to[v], base[v])
		}
	}

	// Fail every arc out of the source: nothing but src reachable,
	// while arcs *into* the source still work for the reverse search.
	failedOut := func(u, v int) bool { return u == 3 }
	from, err = g.BFSFromAvoidingArcs(3, failedOut)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		want := -1
		if v == 3 {
			want = 0
		}
		if from[v] != want {
			t.Fatalf("with all out-arcs failed, dist[%d] = %d, want %d", v, from[v], want)
		}
	}
	to, err = g.BFSToAvoidingArcs(3, failedOut)
	if err != nil {
		t.Fatal(err)
	}
	if to[int(g.OutNeighbors(3)[0])] != 1 {
		t.Fatalf("arcs into 3 should survive failing arcs out of 3")
	}
}
