package graph

import (
	"math/rand"
	"strings"
	"testing"
)

func mustNew(t *testing.T, kind Kind, n int) *Graph {
	t.Helper()
	g, err := New(kind, n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func addEdges(t *testing.T, g *Graph, pairs ...[2]int) {
	t.Helper()
	for _, p := range pairs {
		if err := g.AddEdge(p[0], p[1]); err != nil {
			t.Fatalf("AddEdge(%d,%d): %v", p[0], p[1], err)
		}
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(Kind(0), 3); err == nil {
		t.Error("New accepted invalid kind")
	}
	if _, err := New(Directed, 0); err == nil {
		t.Error("New accepted zero vertices")
	}
}

func TestAddEdgeRejectsLoopAndRange(t *testing.T) {
	g := mustNew(t, Directed, 3)
	if err := g.AddEdge(1, 1); err == nil {
		t.Error("accepted self loop")
	}
	if err := g.AddEdge(0, 3); err == nil {
		t.Error("accepted out-of-range vertex")
	}
	if err := g.AddEdge(-1, 0); err == nil {
		t.Error("accepted negative vertex")
	}
}

func TestAddEdgeDeduplicates(t *testing.T) {
	g := mustNew(t, Undirected, 3)
	addEdges(t, g, [2]int{0, 1}, [2]int{1, 0}, [2]int{0, 1})
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
	d := mustNew(t, Directed, 3)
	addEdges(t, d, [2]int{0, 1}, [2]int{0, 1}, [2]int{1, 0})
	if d.NumEdges() != 2 {
		t.Errorf("directed NumEdges = %d, want 2 (mutual arcs distinct)", d.NumEdges())
	}
}

func TestDegreeDirectedCountsBothDirections(t *testing.T) {
	g := mustNew(t, Directed, 3)
	addEdges(t, g, [2]int{0, 1}, [2]int{1, 0}, [2]int{2, 1})
	if got := g.Degree(1); got != 3 {
		t.Errorf("Degree(1) = %d, want 3 (in 2 + out 1)", got)
	}
	if got := g.Degree(0); got != 2 {
		t.Errorf("Degree(0) = %d, want 2", got)
	}
}

func TestBFSPathDistanceLine(t *testing.T) {
	// 0-1-2-3 line.
	g := mustNew(t, Undirected, 4)
	addEdges(t, g, [2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3})
	dist, err := g.BFSFrom(0)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{0, 1, 2, 3} {
		if dist[i] != want {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], want)
		}
	}
	p, err := g.ShortestPath(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 4 || p[0] != 0 || p[3] != 3 {
		t.Errorf("ShortestPath = %v", p)
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := mustNew(t, Directed, 3)
	addEdges(t, g, [2]int{0, 1})
	dist, err := g.BFSFrom(1)
	if err != nil {
		t.Fatal(err)
	}
	if dist[0] != -1 || dist[2] != -1 {
		t.Errorf("expected -1 for unreachable, got %v", dist)
	}
	p, err := g.ShortestPath(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p != nil {
		t.Errorf("path to unreachable = %v", p)
	}
}

func TestBFSAvoidingBlocked(t *testing.T) {
	// 0-1-3 and 0-2-3; block 1, still reach 3 via 2 at distance 2.
	g := mustNew(t, Undirected, 4)
	addEdges(t, g, [2]int{0, 1}, [2]int{1, 3}, [2]int{0, 2}, [2]int{2, 3})
	dist, err := g.BFSFromAvoiding(0, map[int]bool{1: true})
	if err != nil {
		t.Fatal(err)
	}
	if dist[3] != 2 || dist[1] != -1 {
		t.Errorf("avoiding BFS = %v", dist)
	}
	if _, err := g.BFSFromAvoiding(1, map[int]bool{1: true}); err == nil {
		t.Error("accepted blocked source")
	}
	p, err := g.ShortestPathAvoiding(0, 3, map[int]bool{2: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 3 || p[1] != 1 {
		t.Errorf("ShortestPathAvoiding = %v", p)
	}
}

func TestDiameterAndAvg(t *testing.T) {
	// Cycle of 4: diameter 2, avg distance (1+1+2)*4 / 12 = 16/12.
	g := mustNew(t, Undirected, 4)
	addEdges(t, g, [2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3}, [2]int{3, 0})
	dia, err := g.Diameter()
	if err != nil {
		t.Fatal(err)
	}
	if dia != 2 {
		t.Errorf("Diameter = %d, want 2", dia)
	}
	avg, err := g.AvgDistance()
	if err != nil {
		t.Fatal(err)
	}
	if want := 16.0 / 12.0; avg < want-1e-12 || avg > want+1e-12 {
		t.Errorf("AvgDistance = %v, want %v", avg, want)
	}
}

func TestDiameterDisconnected(t *testing.T) {
	g := mustNew(t, Undirected, 3)
	addEdges(t, g, [2]int{0, 1})
	if _, err := g.Diameter(); err == nil {
		t.Error("Diameter accepted disconnected graph")
	}
	if _, err := g.AvgDistance(); err == nil {
		t.Error("AvgDistance accepted disconnected graph")
	}
}

func TestDistanceHistogram(t *testing.T) {
	g := mustNew(t, Undirected, 4)
	addEdges(t, g, [2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3}, [2]int{3, 0})
	hist, err := g.DistanceHistogram()
	if err != nil {
		t.Fatal(err)
	}
	// 8 ordered pairs at distance 1, 4 at distance 2.
	if len(hist) != 3 || hist[1] != 8 || hist[2] != 4 {
		t.Errorf("DistanceHistogram = %v", hist)
	}
}

func TestIsConnected(t *testing.T) {
	g := mustNew(t, Undirected, 3)
	addEdges(t, g, [2]int{0, 1})
	if g.IsConnected() {
		t.Error("disconnected graph reported connected")
	}
	addEdges(t, g, [2]int{1, 2})
	if !g.IsConnected() {
		t.Error("connected graph reported disconnected")
	}
	// Directed: 0→1→2 is weakly but not strongly connected.
	d := mustNew(t, Directed, 3)
	addEdges(t, d, [2]int{0, 1}, [2]int{1, 2})
	if d.IsConnected() {
		t.Error("non-strongly-connected digraph reported connected")
	}
	addEdges(t, d, [2]int{2, 0})
	if !d.IsConnected() {
		t.Error("strongly connected digraph reported disconnected")
	}
}

func TestIsConnectedAvoiding(t *testing.T) {
	// 0-1-2 line: removing 1 disconnects.
	g := mustNew(t, Undirected, 3)
	addEdges(t, g, [2]int{0, 1}, [2]int{1, 2})
	if !g.IsConnectedAvoiding(map[int]bool{0: true}) {
		t.Error("line minus endpoint should stay connected")
	}
	if g.IsConnectedAvoiding(map[int]bool{1: true}) {
		t.Error("line minus middle should disconnect")
	}
}

func TestVertexDisjointPaths(t *testing.T) {
	// Two disjoint 0→·→3 routes.
	g := mustNew(t, Undirected, 4)
	addEdges(t, g, [2]int{0, 1}, [2]int{1, 3}, [2]int{0, 2}, [2]int{2, 3})
	got, err := g.VertexDisjointPaths(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("VertexDisjointPaths = %d, want 2", got)
	}
	// Cut vertex: 0-1, 1-2 → only one path 0..2.
	h := mustNew(t, Undirected, 3)
	addEdges(t, h, [2]int{0, 1}, [2]int{1, 2})
	got, err = h.VertexDisjointPaths(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("VertexDisjointPaths = %d, want 1", got)
	}
	if _, err := h.VertexDisjointPaths(0, 0); err == nil {
		t.Error("accepted equal endpoints")
	}
}

func TestVertexDisjointPathsDirected(t *testing.T) {
	// 0→1→3, 0→2→3 and a reverse arc that must not help.
	g := mustNew(t, Directed, 4)
	addEdges(t, g, [2]int{0, 1}, [2]int{1, 3}, [2]int{0, 2}, [2]int{2, 3}, [2]int{3, 0})
	got, err := g.VertexDisjointPaths(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("directed VertexDisjointPaths = %d, want 2", got)
	}
}

func TestDOT(t *testing.T) {
	g := mustNew(t, Undirected, 2)
	addEdges(t, g, [2]int{0, 1})
	if err := g.SetLabel(0, "00"); err != nil {
		t.Fatal(err)
	}
	dot := g.DOT("t")
	if !strings.Contains(dot, "graph") || !strings.Contains(dot, "n0 -- n1") || !strings.Contains(dot, `"00"`) {
		t.Errorf("DOT output unexpected:\n%s", dot)
	}
	if strings.Contains(dot, "n1 -- n0") {
		t.Error("DOT emitted undirected edge twice")
	}
	d := mustNew(t, Directed, 2)
	addEdges(t, d, [2]int{0, 1}, [2]int{1, 0})
	ddot := d.DOT("t")
	if !strings.Contains(ddot, "digraph") || !strings.Contains(ddot, "n0 -> n1") || !strings.Contains(ddot, "n1 -> n0") {
		t.Errorf("directed DOT unexpected:\n%s", ddot)
	}
}

func TestLabelFallback(t *testing.T) {
	g := mustNew(t, Directed, 2)
	if g.Label(1) != "1" {
		t.Errorf("Label fallback = %q", g.Label(1))
	}
	if err := g.SetLabel(5, "x"); err == nil {
		t.Error("SetLabel accepted out-of-range vertex")
	}
}

func TestRandomGraphBFSSymmetry(t *testing.T) {
	// In undirected graphs dist(u,v) == dist(v,u).
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 30; iter++ {
		n := 2 + rng.Intn(20)
		g := mustNew(t, Undirected, n)
		for e := 0; e < 2*n; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				_ = g.AddEdge(u, v)
			}
		}
		du, err := g.BFSFrom(0)
		if err != nil {
			t.Fatal(err)
		}
		for v := range du {
			dv, err := g.BFSFrom(v)
			if err != nil {
				t.Fatal(err)
			}
			if dv[0] != du[v] {
				t.Fatalf("asymmetric distances: d(0,%d)=%d d(%d,0)=%d", v, du[v], v, dv[0])
			}
		}
	}
}
