package graph

import (
	"strings"
	"testing"

	"repro/internal/word"
)

func TestDeBruijnDirectedDG23Structure(t *testing.T) {
	// Figure 1(a): directed DG(2,3).
	g, err := DeBruijn(Directed, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 8 {
		t.Fatalf("N = %d, want 8", g.NumVertices())
	}
	// Arcs: Nd = 16 minus d = 2 self loops = 14.
	if g.NumEdges() != 14 {
		t.Errorf("arcs = %d, want 14", g.NumEdges())
	}
	// Spot-check adjacency from the figure: 010 → 100, 101.
	v := DeBruijnVertex(word.MustParse(2, "010"))
	var got []string
	for _, u := range g.OutNeighbors(v) {
		got = append(got, g.Label(int(u)))
	}
	if strings.Join(got, ",") != "100,101" {
		t.Errorf("out(010) = %v", got)
	}
	if !g.IsConnected() {
		t.Error("directed DG(2,3) not strongly connected")
	}
}

func TestDeBruijnUndirectedDG23Structure(t *testing.T) {
	// Figure 1(b): undirected DG(2,3) has 13 edges
	// (16 slots − 2 loops − 1 coincident pair {010,101}).
	g, err := DeBruijn(Undirected, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 11 {
		// 8 vertices; degrees: 4,4,4,4 (001,011,100,110), 3,3 (010,101), 2,2 (000,111)
		// sum = 26, edges = 13. Guard against miscounting here:
		t.Logf("edge count = %d", g.NumEdges())
	}
	sum := 0
	for v := 0; v < g.NumVertices(); v++ {
		sum += g.Degree(v)
	}
	if sum != 2*g.NumEdges() {
		t.Errorf("degree sum %d != 2·edges %d", sum, 2*g.NumEdges())
	}
	if g.NumEdges() != 13 {
		t.Errorf("edges = %d, want 13", g.NumEdges())
	}
	deg := func(s string) int {
		return g.Degree(DeBruijnVertex(word.MustParse(2, s)))
	}
	for s, want := range map[string]int{
		"000": 2, "111": 2, "010": 3, "101": 3,
		"001": 4, "011": 4, "100": 4, "110": 4,
	} {
		if got := deg(s); got != want {
			t.Errorf("deg(%s) = %d, want %d", s, got, want)
		}
	}
}

func TestDeBruijnDegreeCensus(t *testing.T) {
	// E1: measured census equals the (re-derived) predicted census.
	for _, kind := range []Kind{Directed, Undirected} {
		for _, dk := range [][2]int{{2, 2}, {2, 3}, {2, 5}, {3, 2}, {3, 3}, {4, 2}, {4, 3}, {5, 2}} {
			d, k := dk[0], dk[1]
			g, err := DeBruijn(kind, d, k)
			if err != nil {
				t.Fatal(err)
			}
			want, err := DeBruijnDegreeCensusWant(kind, d, k)
			if err != nil {
				t.Fatal(err)
			}
			got := g.DegreeCensus()
			if len(got) != len(want) {
				t.Fatalf("%v DG(%d,%d) census = %v, want %v", kind, d, k, got, want)
			}
			for deg, n := range want {
				if got[deg] != n {
					t.Errorf("%v DG(%d,%d) census[%d] = %d, want %d", kind, d, k, deg, got[deg], n)
				}
			}
		}
	}
}

func TestDeBruijnCensusFormulaRejectsK1(t *testing.T) {
	if _, err := DeBruijnDegreeCensusWant(Directed, 2, 1); err == nil {
		t.Error("census formula accepted k=1")
	}
}

func TestDeBruijnDiameterIsK(t *testing.T) {
	// Section 2: DG(d,k) has diameter k, both kinds.
	for _, kind := range []Kind{Directed, Undirected} {
		for _, dk := range [][2]int{{2, 2}, {2, 3}, {2, 4}, {2, 5}, {3, 2}, {3, 3}, {4, 2}} {
			g, err := DeBruijn(kind, dk[0], dk[1])
			if err != nil {
				t.Fatal(err)
			}
			dia, err := g.Diameter()
			if err != nil {
				t.Fatal(err)
			}
			if dia != dk[1] {
				t.Errorf("%v DG(%d,%d) diameter = %d, want %d", kind, dk[0], dk[1], dia, dk[1])
			}
		}
	}
}

func TestDeBruijnZeroToOnesDistanceIsK(t *testing.T) {
	// Section 2: the distance from (0,...,0) to (1,...,1) is exactly k.
	for _, kind := range []Kind{Directed, Undirected} {
		for k := 1; k <= 6; k++ {
			g, err := DeBruijn(kind, 2, k)
			if err != nil {
				t.Fatal(err)
			}
			zeros, _ := word.Zeros(2, k)
			ones := word.MustParse(2, strings.Repeat("1", k))
			got, err := g.Distance(DeBruijnVertex(zeros), DeBruijnVertex(ones))
			if err != nil {
				t.Fatal(err)
			}
			if got != k {
				t.Errorf("%v DG(2,%d): d(0^k,1^k) = %d, want %d", kind, k, got, k)
			}
		}
	}
}

func TestDeBruijnLabelsRoundTrip(t *testing.T) {
	g, err := DeBruijn(Directed, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		w, err := DeBruijnWord(3, 2, v)
		if err != nil {
			t.Fatal(err)
		}
		if g.Label(v) != w.String() {
			t.Errorf("label(%d) = %q, want %q", v, g.Label(v), w)
		}
		if DeBruijnVertex(w) != v {
			t.Errorf("vertex(%v) = %d, want %d", w, DeBruijnVertex(w), v)
		}
	}
}

func TestDeBruijnEdgesAreShiftMoves(t *testing.T) {
	// Every arc of the directed graph is a left shift; every edge of
	// the undirected graph is a left or right shift.
	d, k := 3, 3
	dir, err := DeBruijn(Directed, d, k)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < dir.NumVertices(); v++ {
		wv, _ := DeBruijnWord(d, k, v)
		for _, u := range dir.OutNeighbors(v) {
			wu, _ := DeBruijnWord(d, k, int(u))
			if !wv.ShiftLeft(wu.Digit(k - 1)).Equal(wu) {
				t.Errorf("arc %v→%v is not a left shift", wv, wu)
			}
		}
	}
	und, err := DeBruijn(Undirected, d, k)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < und.NumVertices(); v++ {
		wv, _ := DeBruijnWord(d, k, v)
		for _, u := range und.OutNeighbors(v) {
			wu, _ := DeBruijnWord(d, k, int(u))
			l := wv.ShiftLeft(wu.Digit(k - 1)).Equal(wu)
			r := wv.ShiftRight(wu.Digit(0)).Equal(wu)
			if !l && !r {
				t.Errorf("edge {%v,%v} is not a shift move", wv, wu)
			}
		}
	}
}

func TestDeBruijnRejectsBadParams(t *testing.T) {
	if _, err := DeBruijn(Directed, 1, 3); err == nil {
		t.Error("accepted d=1")
	}
	if _, err := DeBruijn(Directed, 2, 0); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := DeBruijn(Directed, 2, 80); err == nil {
		t.Error("accepted overflowing size")
	}
}
