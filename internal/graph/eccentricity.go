package graph

import (
	"errors"
	"fmt"
)

// Eccentricity returns the eccentricity of v: the maximum distance
// from v to any vertex. Errors if some vertex is unreachable.
func (g *Graph) Eccentricity(v int) (int, error) {
	dist, err := g.BFSFrom(v)
	if err != nil {
		return 0, err
	}
	best := 0
	for _, d := range dist {
		if d < 0 {
			return 0, fmt.Errorf("graph: vertex unreachable from %d, eccentricity undefined", v)
		}
		if d > best {
			best = d
		}
	}
	return best, nil
}

// Radius returns the minimum eccentricity over all vertices — the best
// placement for a coordinator in the "transmission proportional to
// distance" model of §1.
func (g *Graph) Radius() (int, error) {
	best := -1
	for v := range g.adj {
		e, err := g.Eccentricity(v)
		if err != nil {
			return 0, err
		}
		if best < 0 || e < best {
			best = e
		}
	}
	if best < 0 {
		return 0, errors.New("graph: empty graph")
	}
	return best, nil
}

// Center returns all vertices whose eccentricity equals the radius.
func (g *Graph) Center() ([]int, error) {
	radius, err := g.Radius()
	if err != nil {
		return nil, err
	}
	var center []int
	for v := range g.adj {
		e, err := g.Eccentricity(v)
		if err != nil {
			return nil, err
		}
		if e == radius {
			center = append(center, v)
		}
	}
	return center, nil
}

// EccentricityHistogram returns count[e] = number of vertices with
// eccentricity e.
func (g *Graph) EccentricityHistogram() (map[int]int, error) {
	hist := make(map[int]int)
	for v := range g.adj {
		e, err := g.Eccentricity(v)
		if err != nil {
			return nil, err
		}
		hist[e]++
	}
	return hist, nil
}
