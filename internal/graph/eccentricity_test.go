package graph

import (
	"testing"
)

func TestEccentricityLine(t *testing.T) {
	g := mustNew(t, Undirected, 4)
	addEdges(t, g, [2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3})
	for v, want := range []int{3, 2, 2, 3} {
		e, err := g.Eccentricity(v)
		if err != nil {
			t.Fatal(err)
		}
		if e != want {
			t.Errorf("ecc(%d) = %d, want %d", v, e, want)
		}
	}
	r, err := g.Radius()
	if err != nil {
		t.Fatal(err)
	}
	if r != 2 {
		t.Errorf("radius = %d, want 2", r)
	}
	center, err := g.Center()
	if err != nil {
		t.Fatal(err)
	}
	if len(center) != 2 || center[0] != 1 || center[1] != 2 {
		t.Errorf("center = %v", center)
	}
}

func TestEccentricityDisconnected(t *testing.T) {
	g := mustNew(t, Undirected, 3)
	addEdges(t, g, [2]int{0, 1})
	if _, err := g.Eccentricity(0); err == nil {
		t.Error("eccentricity accepted disconnected graph")
	}
	if _, err := g.Radius(); err == nil {
		t.Error("radius accepted disconnected graph")
	}
	if _, err := g.Center(); err == nil {
		t.Error("center accepted disconnected graph")
	}
	if _, err := g.EccentricityHistogram(); err == nil {
		t.Error("histogram accepted disconnected graph")
	}
}

func TestDeBruijnEccentricities(t *testing.T) {
	// De Bruijn graphs: every vertex has eccentricity k in the
	// directed graph (reaching the "opposite" constant word requires k
	// shifts from anywhere except... verify by enumeration), so radius
	// = diameter = k. Undirected graphs may have smaller radius.
	g, err := DeBruijn(Directed, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := g.EccentricityHistogram()
	if err != nil {
		t.Fatal(err)
	}
	if hist[4] != 16 || len(hist) != 1 {
		t.Errorf("directed DG(2,4) eccentricities = %v (all should be k)", hist)
	}
	u, err := DeBruijn(Undirected, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	r, err := u.Radius()
	if err != nil {
		t.Fatal(err)
	}
	dia, err := u.Diameter()
	if err != nil {
		t.Fatal(err)
	}
	if r > dia || dia != 4 {
		t.Errorf("undirected DG(2,4): radius %d diameter %d", r, dia)
	}
	sum := 0
	uh, err := u.EccentricityHistogram()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range uh {
		sum += c
	}
	if sum != 16 {
		t.Errorf("histogram covers %d vertices", sum)
	}
}
