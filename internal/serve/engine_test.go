package serve

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/word"
)

// TestEngineEquivalence pins Engine answers to the core one-shot
// functions across seeded pairs on several DG(d,k), both orientations,
// reusing one Engine throughout so buffer contamination would surface.
func TestEngineEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	eng := NewEngine(nil)
	// Canonical hop oracle on the scratch-forced tier: independent of
	// whatever tier the engine picks, but same canonical tie-break.
	refKn := core.NewKernels(core.KernelConfig{TableBudget: -1, DisablePacked: true})
	for _, dk := range [][2]int{{2, 3}, {2, 8}, {3, 4}, {4, 3}, {2, 16}} {
		d, k := dk[0], dk[1]
		for p := 0; p < 40; p++ {
			x := word.Random(d, k, rng)
			y := word.Random(d, k, rng)
			for _, mode := range []Mode{Undirected, Directed} {
				a, cached, err := eng.Answer(Query{Kind: KindDistance, Mode: mode, Src: x, Dst: y}, LevelFull)
				if err != nil || cached {
					t.Fatalf("distance(%v,%v,%v): cached=%v err=%v", x, y, mode, cached, err)
				}
				want := oracleDistance(t, mode, x, y)
				if a.Distance != want {
					t.Fatalf("distance(%v,%v,%v) = %d, want %d", x, y, mode, a.Distance, want)
				}

				ra, _, err := eng.Answer(Query{Kind: KindRoute, Mode: mode, Src: x, Dst: y}, LevelFull)
				if err != nil {
					t.Fatalf("route(%v,%v,%v): %v", x, y, mode, err)
				}
				if len(ra.Path) != want {
					t.Fatalf("route(%v,%v,%v) has %d hops, distance %d", x, y, mode, len(ra.Path), want)
				}
				end, err := ra.Path.Apply(x, core.FirstDigit)
				if err != nil || !end.Equal(y) {
					t.Fatalf("route(%v,%v,%v) applies to %v (%v)", x, y, mode, end, err)
				}

				ha, _, err := eng.Answer(Query{Kind: KindNextHop, Mode: mode, Src: x, Dst: y}, LevelFull)
				if err != nil {
					t.Fatalf("nexthop(%v,%v,%v): %v", x, y, mode, err)
				}
				if ha.HasHop != !x.Equal(y) {
					t.Fatalf("nexthop(%v,%v,%v): HasHop = %v", x, y, mode, ha.HasHop)
				}
				if ha.HasHop {
					var wantHop core.Hop
					var more bool
					if mode == Directed {
						wantHop, more, err = core.NextHopDirected(x, y)
					} else {
						wantHop, more, err = refKn.NextHopUndirected(x, y)
					}
					if err != nil || !more {
						t.Fatalf("oracle nexthop(%v,%v,%v): more=%v err=%v", x, y, mode, more, err)
					}
					if ha.Hop != wantHop {
						t.Fatalf("nexthop(%v,%v,%v) = %v, want %v", x, y, mode, ha.Hop, wantHop)
					}
				}
			}
		}
	}
}

func oracleDistance(t *testing.T, mode Mode, x, y word.Word) int {
	t.Helper()
	var want int
	var err error
	if mode == Directed {
		want, err = core.DirectedDistance(x, y)
	} else {
		want, err = core.UndirectedDistanceLinear(x, y)
	}
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// TestEngineDegradeLevels checks the ladder semantics: LevelDistance
// strips route paths but keeps exact distances; LevelBounds answers
// with the layer bounds only; and degraded answers are never cached.
func TestEngineDegradeLevels(t *testing.T) {
	x := word.MustParse(2, "01101")
	y := word.MustParse(2, "11010")
	cache := NewCache(16, nil)
	eng := NewEngine(cache)

	a, cached, err := eng.Answer(Query{Kind: KindRoute, Src: x, Dst: y}, LevelDistance)
	if err != nil || cached {
		t.Fatalf("degraded route: cached=%v err=%v", cached, err)
	}
	want, _ := core.UndirectedDistanceLinear(x, y)
	if a.Level != LevelDistance || a.Path != nil || a.Distance != want {
		t.Fatalf("LevelDistance answer = %+v, want distance %d, no path", a, want)
	}
	if cache.Len() != 0 {
		t.Fatalf("degraded answer was cached (len %d)", cache.Len())
	}

	a, _, err = eng.Answer(Query{Kind: KindDistance, Src: x, Dst: y}, LevelBounds)
	if err != nil {
		t.Fatal(err)
	}
	if a.Level != LevelBounds || a.Lo != 1 || a.Hi != x.Len() {
		t.Fatalf("LevelBounds answer = %+v, want [1,%d]", a, x.Len())
	}
	a, _, _ = eng.Answer(Query{Kind: KindDistance, Src: x, Dst: x}, LevelBounds)
	if a.Lo != 0 || a.Hi != 0 {
		t.Fatalf("LevelBounds self-pair = [%d,%d], want [0,0]", a.Lo, a.Hi)
	}
	if cache.Len() != 0 {
		t.Fatalf("bounds answers were cached (len %d)", cache.Len())
	}
}

// TestEngineCacheHit checks that a second identical query is served
// from cache with the identical full answer, and that cache hits
// short-circuit even when the requested level is degraded (a hit is
// cheaper than a bounds answer and strictly better).
func TestEngineCacheHit(t *testing.T) {
	x := word.MustParse(2, "0110")
	y := word.MustParse(2, "1011")
	eng := NewEngine(NewCache(16, nil))
	q := Query{Kind: KindRoute, Src: x, Dst: y}

	first, cached, err := eng.Answer(q, LevelFull)
	if err != nil || cached {
		t.Fatalf("first: cached=%v err=%v", cached, err)
	}
	second, cached, err := eng.Answer(q, LevelBounds) // degraded request...
	if err != nil || !cached {
		t.Fatalf("second: cached=%v err=%v", cached, err)
	}
	if second.Level != LevelFull || second.Distance != first.Distance || second.Path.String() != first.Path.String() {
		t.Fatalf("cache hit = %+v, want the stored full answer %+v", second, first)
	}
}

// TestEngineBadQuery checks validation wraps ErrBadQuery.
func TestEngineBadQuery(t *testing.T) {
	eng := NewEngine(nil)
	x := word.MustParse(2, "0110")
	z := word.MustParse(3, "0110")
	for _, q := range []Query{
		{Kind: KindDistance},                                          // zero words
		{Kind: KindDistance, Src: x, Dst: z},                          // mixed bases
		{Kind: KindBatch, Src: x, Dst: x},                             // not answerable
		{Kind: KindDistance, Src: x, Dst: word.MustParse(2, "01101")}, // mixed lengths
	} {
		if _, _, err := eng.Answer(q, LevelFull); !errors.Is(err, ErrBadQuery) {
			t.Errorf("Answer(%+v) error = %v, want ErrBadQuery", q, err)
		}
	}
}

// TestEngineAllocBudgets pins the serving hot path to the PR 4 kernel
// budgets: 0 allocs/op for a cache hit (any kind) and for distance /
// next-hop misses; 1 alloc/op — the returned path — for a route miss.
func TestEngineAllocBudgets(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	rng := rand.New(rand.NewSource(3))
	const d, k = 2, 64
	pairs := make([][2]word.Word, 32)
	for i := range pairs {
		pairs[i] = [2]word.Word{word.Random(d, k, rng), word.Random(d, k, rng)}
	}

	// Warm a cached engine over every pair and kind.
	cached := NewEngine(NewCache(4*len(pairs), nil))
	kinds := []Kind{KindDistance, KindRoute, KindNextHop}
	for _, p := range pairs {
		for _, kind := range kinds {
			if _, _, err := cached.Answer(Query{Kind: kind, Src: p[0], Dst: p[1]}, LevelFull); err != nil {
				t.Fatal(err)
			}
		}
	}
	uncached := NewEngine(nil)
	// Warm the uncached engine's scratch buffers too.
	for _, kind := range kinds {
		if _, _, err := uncached.Answer(Query{Kind: kind, Src: pairs[0][0], Dst: pairs[0][1]}, LevelFull); err != nil {
			t.Fatal(err)
		}
	}

	budgets := []struct {
		name string
		max  float64
		eng  *Engine
		kind Kind
	}{
		{"hit/distance", 0, cached, KindDistance},
		{"hit/route", 0, cached, KindRoute},
		{"hit/nexthop", 0, cached, KindNextHop},
		{"miss/distance", 0, uncached, KindDistance},
		{"miss/nexthop", 0, uncached, KindNextHop},
		{"miss/route", 1, uncached, KindRoute},
	}
	for _, b := range budgets {
		i := 0
		allocs := testing.AllocsPerRun(100, func() {
			p := pairs[i%len(pairs)]
			i++
			if _, _, err := b.eng.Answer(Query{Kind: b.kind, Src: p[0], Dst: p[1]}, LevelFull); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > b.max {
			t.Errorf("%s: %.1f allocs/op, budget %.0f", b.name, allocs, b.max)
		}
	}
}

// TestEngineBatchFrame pins the batch path to the scalar path: after
// BeginBatch, AnswerBatchTraced must return byte-identical answers —
// and a warm batch of distance/next-hop misses allocates nothing.
func TestEngineBatchFrame(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, dk := range [][2]int{{2, 64}, {2, 100}, {2, 8}, {5, 4}} {
		d, k := dk[0], dk[1]
		batch := NewEngine(nil)
		scalar := NewEngine(nil)
		src := word.Random(d, k, rng)
		qs := make([]Query, 0, 24)
		for i := 0; i < 8; i++ {
			dst := word.Random(d, k, rng)
			for _, kind := range []Kind{KindDistance, KindRoute, KindNextHop} {
				qs = append(qs, Query{Kind: kind, Src: src, Dst: dst})
			}
		}
		qs = append(qs, Query{Kind: KindDistance, Mode: Directed, Src: src, Dst: word.Random(d, k, rng)})
		batch.BeginBatch(qs)
		for i, q := range qs {
			got, _, err := batch.AnswerBatchTraced(i, q, LevelFull, nil)
			if err != nil {
				t.Fatalf("DG(%d,%d) batch[%d]: %v", d, k, i, err)
			}
			want, _, err := scalar.Answer(q, LevelFull)
			if err != nil {
				t.Fatalf("DG(%d,%d) scalar[%d]: %v", d, k, i, err)
			}
			if got.Distance != want.Distance || got.Hop != want.Hop || got.HasHop != want.HasHop ||
				len(got.Path) != len(want.Path) {
				t.Fatalf("DG(%d,%d) batch[%d] %+v != scalar %+v", d, k, i, got, want)
			}
			for j := range got.Path {
				if got.Path[j] != want.Path[j] {
					t.Fatalf("DG(%d,%d) batch[%d] path hop %d: %v != %v", d, k, i, j, got.Path[j], want.Path[j])
				}
			}
		}
	}

	// Allocation budget: a warm distance/next-hop batch is 0 allocs
	// end to end (BeginBatch included).
	eng := NewEngine(nil)
	src := word.Random(2, 64, rng)
	qs := make([]Query, 0, 16)
	for i := 0; i < 8; i++ {
		dst := word.Random(2, 64, rng)
		qs = append(qs, Query{Kind: KindDistance, Src: src, Dst: dst},
			Query{Kind: KindNextHop, Src: src, Dst: dst})
	}
	run := func() {
		eng.BeginBatch(qs)
		for i, q := range qs {
			if _, _, err := eng.AnswerBatchTraced(i, q, LevelFull, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	run() // warm frame and kernel buffers
	if allocs := testing.AllocsPerRun(100, run); allocs != 0 {
		t.Errorf("warm batch: %.1f allocs/run, want 0", allocs)
	}
}
